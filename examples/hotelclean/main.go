// Hotelclean: the paper's §1.2 intuition end to end — strict equality
// (FDs) both over- and under-reports on heterogeneous data, while the
// similarity family (MFD, DD, MD) separates representation variety from
// true veracity errors, deduplicates the multi-source relation of Table 6,
// and repairs what remains.
//
//	go run ./examples/hotelclean
package main

import (
	"fmt"

	"deptree/internal/apps/dedup"
	"deptree/internal/apps/detect"
	"deptree/internal/deps"
	"deptree/internal/deps/dd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/md"
	"deptree/internal/deps/mfd"
	"deptree/internal/gen"
)

func main() {
	r := gen.Table1()
	fmt.Println("== Table 1: strict equality vs. metric tolerance ==")
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	m := mfd.Must(r.Schema(), []string{"address"}, []string{"region"}, 4)
	for _, rule := range []deps.Dependency{f, m} {
		vs := rule.Violations(r, 0)
		fmt.Printf("%-4s %-30s -> %d violation(s)\n", rule.Kind(), rule, len(vs))
		for _, v := range vs {
			fmt.Printf("       %s\n", v)
		}
	}
	fmt.Println("\nThe FD flags (t5,t6) although \"Chicago\" = \"Chicago, IL\" — variety,")
	fmt.Println("not error. The MFD with δ=4 keeps only the true error (t3,t4).")

	// §1.2's second half: t7/t8 have SIMILAR addresses and different
	// regions — invisible to the FD, caught by a DD with a similarity LHS.
	fmt.Println("\n== DDs catch what FDs cannot ==")
	d := dd.DD{
		LHS:    dd.Pattern{dd.F(r.Schema(), "address", dd.OpLe, 2)},
		RHS:    dd.Pattern{dd.F(r.Schema(), "region", dd.OpLe, 4)},
		Schema: r.Schema(),
	}
	fmt.Printf("DD   %s\n", d)
	for _, v := range d.Violations(r, 0) {
		fmt.Printf("       %s\n", v)
	}

	// Table 6: multi-source dedup with the MD of §3.7.1.
	fmt.Println("\n== Table 6: matching dependencies for dedup ==")
	r6 := gen.Table6()
	m1 := md.MD{
		LHS:    []md.SimAttr{md.Sim(r6.Schema(), "name", 1), md.Sim(r6.Schema(), "address", 3)},
		RHS:    []int{r6.Schema().MustIndex("zip")},
		Schema: r6.Schema(),
	}
	fmt.Printf("MD   %s\n", m1)
	clusters := dedup.Clusters(r6, []md.MD{m1}, dedup.Options{BlockingCol: -1})
	for _, c := range clusters {
		fmt.Printf("  cluster: ")
		for _, row := range c {
			fmt.Printf("t%d(%s) ", row+1, r6.Value(row, r6.Schema().MustIndex("name")))
		}
		fmt.Println()
	}
	merged := dedup.Merge(r6, clusters)
	fmt.Printf("deduplicated: %d -> %d tuples\n", r6.Rows(), merged.Rows())

	// A final pass: violation summary over everything declared.
	fmt.Println("\n== Summary ranking of suspicious tuples (Table 1) ==")
	reports := detect.Run(r, []deps.Dependency{f, m, d}, detect.Options{})
	for _, row := range detect.RankTuples(reports) {
		fmt.Printf("  t%d implicated %d time(s)\n", row+1, detect.TupleScores(reports)[row])
	}
}
