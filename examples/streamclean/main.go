// Streamclean: the paper's §5 future directions, exercised — speed
// constraints on temporal data (SCREEN-style stream repair), functional
// dependencies over uncertain relations (horizontal vs vertical),
// neighborhood constraints on a vertex-labeled workflow graph, and
// incremental dependency discovery over an append stream (the
// internal/stream session API), with every step checked against a
// from-scratch re-run.
//
//	go run ./examples/streamclean
package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"

	"deptree/internal/discovery/registry"
	"deptree/internal/ext/graphdep"
	"deptree/internal/ext/speed"
	"deptree/internal/ext/uncertain"
	"deptree/internal/gen"
	"deptree/internal/relation"
	"deptree/internal/stream"
)

func main() {
	temporal()
	uncertainData()
	graphData()
	incremental()
}

// incremental streams an ordered relation with planted drift through the
// incremental session API, batch by batch, asserting after every batch
// that the maintained ruleset is byte-identical to discovery from
// scratch over the same rows — the differential contract, demonstrated.
func incremental() {
	fmt.Println("== §5.3 streams, revisited: incremental discovery under appends ==")
	plan := gen.AppendBatches(gen.AppendConfig{
		BaseRows: 200, BatchRows: 60, Batches: 4, DriftAt: 3, Seed: 17,
	})
	for _, algo := range []string{"tane", "od"} {
		sess, err := stream.NewSession(algo, plan.Base.Schema(), stream.Options{Workers: 2})
		if err != nil {
			panic(err)
		}
		shadow := relation.New("shadow", plan.Base.Schema())
		feed := func(label string, rows [][]relation.Value) {
			res, err := sess.AppendBatch(context.Background(), rows)
			if err != nil {
				panic(err)
			}
			for _, row := range rows {
				if err := shadow.Append(row); err != nil {
					panic(err)
				}
			}
			a, _ := registry.Lookup(algo)
			scratch := a.Run(context.Background(), shadow, registry.RunOptions{Workers: 2})
			if !reflect.DeepEqual(res.Lines, scratch.Lines) {
				panic(fmt.Sprintf("%s %s: incremental ruleset diverged from scratch", algo, label))
			}
			fmt.Printf("%s %-8s rows %4d  rules %2d  (+%d -%d)  == from-scratch ✓\n",
				algo, label, res.TotalRows, len(res.Lines), len(res.Added), len(res.Removed))
		}
		rows := make([][]relation.Value, plan.Base.Rows())
		for i := range rows {
			rows[i] = plan.Base.Tuple(i)
		}
		feed("base", rows)
		for i, b := range plan.Batches {
			label := fmt.Sprintf("batch %d", i+1)
			if i+1 == 3 {
				label += "*" // drift batch: rules demote here
			}
			feed(label, b)
		}
	}
	fmt.Println("(*) drift batch: a seq regression and duplicated keys demote rules;")
	fmt.Println("    re-discovery walks to minimal supersets, matching scratch exactly.")
}

func temporal() {
	fmt.Println("== §5.3 temporal data: speed constraints (SCREEN) ==")
	schema := relation.NewSchema(
		relation.Attribute{Name: "t", Kind: relation.KindInt},
		relation.Attribute{Name: "value", Kind: relation.KindFloat},
	)
	r := relation.New("stream", schema)
	rng := rand.New(rand.NewSource(1))
	v := 20.0
	for i := 0; i < 30; i++ {
		reading := v
		if i == 10 || i == 20 {
			reading += 80 // sensor spike
		}
		_ = r.Append([]relation.Value{relation.Int(i), relation.Float(reading)})
		v += rng.Float64()*2 - 1
	}
	c := speed.Constraint{Smin: -5, Smax: 5, TimeCol: 0, ValueCol: 1, Schema: schema}
	fmt.Printf("constraint: %s\n", c)
	fmt.Printf("violations before repair: %d\n", len(c.Violations(r, 0)))
	repaired, changed := c.Repair(r)
	fmt.Printf("greedy repair changed %d point(s); constraint holds: %v\n",
		len(changed), c.Holds(repaired))
	median, changedM := c.RepairMedian(r)
	fmt.Printf("median repair changed %d point(s); constraint holds: %v\n\n",
		len(changedM), c.Holds(median))
}

func uncertainData() {
	fmt.Println("== §5.1 uncertain data: horizontal vs vertical FDs ==")
	schema := relation.Strings("sensor", "room", "reading")
	u := uncertain.New(schema)
	s := relation.String
	_ = u.Add(
		[]relation.Value{s("A"), s("r1"), s("20")},
		[]relation.Value{s("A"), s("r1"), s("21")},
	)
	_ = u.Add(
		[]relation.Value{s("B"), s("r1"), s("30")},
		[]relation.Value{s("B"), s("r2"), s("30")},
	)
	fmt.Printf("uncertain relation with %d x-tuples, %d possible worlds\n",
		len(u.XTuples), u.Worlds(1000))
	f := uncertain.Must(schema, []string{"room"}, []string{"sensor"})
	fmt.Printf("%s horizontal: %v  vertical: %v\n", f, f.HoldsHorizontal(u), f.HoldsVertical(u))
	if w := f.ViolatingWorld(u); w != nil {
		fmt.Println("a violating possible world:")
		fmt.Println(w)
	}
}

func graphData() {
	fmt.Println("== §5.2 graph data: neighborhood constraints on a workflow ==")
	c := graphdep.NewConstraint(
		[2]string{"start", "task"},
		[2]string{"task", "task"},
		[2]string{"task", "end"},
	)
	g := graphdep.NewGraph(6)
	// Position 3 carries a misspelled event name — the §5.2 workflow-log
	// error: "tsak" is compatible with nothing.
	labels := []string{"start", "task", "task", "tsak", "task", "end"}
	copy(g.Labels, labels)
	for i := 1; i < 6; i++ {
		g.AddEdge(i-1, i)
	}
	fmt.Printf("workflow chain labels: %v\n", g.Labels)
	fmt.Printf("violations (misspelled event at position 4): %v\n", graphdep.Violations(g, c))
	changed := graphdep.Repair(g, c)
	fmt.Printf("repair relabeled %d vertex(es): %v; violations now: %v\n",
		changed, g.Labels, graphdep.Violations(g, c))
}
