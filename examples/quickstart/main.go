// Quickstart: the paper's §1.1 motivating scenario as a program.
//
// Load the hotel relation of Table 1, declare fd1: address → region,
// detect its violations (including the false positive on representation
// variety), and repair the instance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"deptree"
)

func main() {
	r := deptree.Table1()
	fmt.Println(r)

	// fd1: address → region (paper §1.1).
	fd1 := deptree.MustFD(r.Schema(), []string{"address"}, []string{"region"})
	fmt.Printf("declared %s: %s\n\n", fd1.Kind(), fd1)

	// Violation detection: fd1 flags (t3,t4) — a true error — and (t5,t6),
	// where "Chicago" vs "Chicago, IL" is mere representation variety.
	reports := deptree.Detect(r, []deptree.Dependency{fd1})
	for _, rep := range reports {
		fmt.Printf("%s is violated:\n", rep.Dep)
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
	}

	// g3 error: the fraction of tuples to delete for fd1 to hold.
	fmt.Printf("\ng3(fd1, r1) = %.3f\n", fd1.G3(r))

	// Repair by in-group majority (ties keep the first value).
	res := deptree.RepairFDs(r, []deptree.FD{fd1})
	fmt.Printf("\nrepaired with %d change(s):\n", len(res.Changes))
	for _, ch := range res.Changes {
		fmt.Printf("  %s\n", ch)
	}
	fmt.Printf("fd1 holds after repair: %v\n", fd1.Holds(res.Repaired))

	// Discovery: which exact FDs hold on the dirty instance?
	fmt.Println("\nminimal FDs discovered by TANE on r1:")
	for _, f := range deptree.DiscoverFDs(r) {
		fmt.Printf("  %s\n", f)
	}
}
