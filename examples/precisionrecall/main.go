// Precisionrecall: the paper's §2.7 trade-off, measured — strict FDs lose
// precision on heterogeneous data (variety flagged as error), metric rules
// recover it; adding more (approximate) rules raises recall and can cost
// precision. Ground truth comes from the synthetic generator's injected
// veracity errors.
//
//	go run ./examples/precisionrecall
package main

import (
	"fmt"

	"deptree/internal/apps/detect"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/mfd"
	"deptree/internal/gen"
)

func main() {
	fmt.Println("detection quality vs variety rate (error rate fixed at 5%)")
	fmt.Println("rule set          variety  precision  recall   f1")
	for _, variety := range []float64{0, 0.1, 0.2, 0.4} {
		r, truth := gen.HotelsWithTruth(gen.HotelConfig{
			Rows: 600, Seed: 99, ErrorRate: 0.05, VarietyRate: variety,
		})
		s := r.Schema()
		f := fd.Must(s, []string{"address"}, []string{"region"})
		m := mfd.Must(s, []string{"address"}, []string{"region"}, 6)

		for _, set := range []struct {
			name  string
			rules []deps.Dependency
		}{
			{"FD (strict)", []deps.Dependency{f}},
			{"MFD (δ=6)", []deps.Dependency{m}},
		} {
			q := detect.Evaluate(detect.Run(r, set.rules, detect.Options{}), truth, r.Rows())
			fmt.Printf("%-17s %5.0f%%   %8.3f  %6.3f  %5.3f\n",
				set.name, variety*100, q.Precision(), q.Recall(), q.F1())
		}
	}

	fmt.Println("\nrecall vs rule count (no variety, error rate 8%)")
	r, truth := gen.HotelsWithTruth(gen.HotelConfig{Rows: 600, Seed: 101, ErrorRate: 0.08})
	s := r.Schema()
	rules := []deps.Dependency{
		fd.Must(s, []string{"address"}, []string{"region"}),
		fd.Must(s, []string{"address"}, []string{"price"}),
		fd.Must(s, []string{"star"}, []string{"price"}),
	}
	for k := 1; k <= len(rules); k++ {
		q := detect.Evaluate(detect.Run(r, rules[:k], detect.Options{}), truth, r.Rows())
		fmt.Printf("%d rule(s): %s\n", k, q)
	}
	fmt.Println("\nThe shape matches §2.7: approximate/extra rules raise recall;")
	fmt.Println("strictness on heterogeneous data costs precision.")
}
