// Familytree: walk the paper's Fig 1 — print the extension tree with its
// embedding witnesses, verify every edge empirically on random data,
// reproduce the impact ranking (Fig 1B), the timeline (Fig 2) and the
// difficulty map (Fig 3), and answer the paper's §1 guidance question:
// which dependency should you use for repairing over categorical AND
// numerical data?
//
//	go run ./examples/familytree
package main

import (
	"fmt"

	"deptree/internal/core"
)

func main() {
	fmt.Print(core.RenderTree())

	fmt.Println("\nverifying every extension edge on random instances...")
	fails := core.VerifyAll(2026)
	if len(fails) == 0 {
		fmt.Printf("all %d edges verified: each special case agrees with its embedding\n",
			len(core.FamilyTree()))
	} else {
		for edge, err := range fails {
			fmt.Printf("FAIL %s: %v\n", edge, err)
		}
	}

	fmt.Println()
	fmt.Print(core.RenderImpact())
	fmt.Println()
	fmt.Print(core.RenderTimeline())
	fmt.Println()
	fmt.Print(core.RenderDifficulty())

	fmt.Println("\n== §1 guidance: pick a dependency by task and data types ==")
	for _, q := range []struct {
		task  string
		types []core.DataType
	}{
		{"Data repairing", []core.DataType{core.Categorical, core.Numerical}},
		{"Data deduplication", []core.DataType{core.Heterogeneous}},
		{"Violation detection", []core.DataType{core.Numerical}},
		{"Model fairness", []core.DataType{core.Categorical}},
	} {
		fmt.Printf("  %s over %v -> %v\n", q.task, q.types, core.SuggestFor(q.task, q.types...))
	}

	fmt.Println("\nGraphviz source for Fig 1A (pipe into `dot -Tsvg`):")
	fmt.Print(core.DOT())
}
