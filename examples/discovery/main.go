// Discovery: profile a synthetic multi-source hotel relation with the
// discovery algorithms the paper surveys — TANE and FastFD (exact FDs,
// cross-checked), approximate FDs, CORDS soft FDs, constant CFDs, order
// dependencies, denial constraints (FASTDC) and a sequential-dependency
// interval fit — the §1.4.2 landscape on one dataset.
//
//	go run ./examples/discovery
package main

import (
	"fmt"

	"deptree/internal/discovery/cfddisc"
	"deptree/internal/discovery/cords"
	"deptree/internal/discovery/fastdc"
	"deptree/internal/discovery/fastfd"
	"deptree/internal/discovery/oddisc"
	"deptree/internal/discovery/sddisc"
	"deptree/internal/discovery/tane"
	"deptree/internal/gen"
)

func main() {
	r := gen.Hotels(gen.HotelConfig{
		Rows: 120, Seed: 7,
		ErrorRate: 0.05, VarietyRate: 0.1, DuplicateRate: 0.1,
	})
	fmt.Printf("profiling %d tuples x %d attributes of dirty hotel data\n\n", r.Rows(), r.Cols())

	exact := tane.Discover(r, tane.Options{MaxLHS: 2})
	cross := fastfd.Discover(r)
	fmt.Printf("== exact minimal FDs: TANE found %d (FastFD agrees on the full lattice: %d) ==\n",
		len(exact), len(cross))
	for i, f := range exact {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(exact)-8)
			break
		}
		fmt.Printf("  %s\n", f)
	}

	approx := tane.Discover(r, tane.Options{MaxError: 0.05, MaxLHS: 1})
	fmt.Printf("\n== approximate FDs (g3 <= 0.05): %d ==\n", len(approx))
	for i, f := range approx {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(approx)-5)
			break
		}
		fmt.Printf("  %s  (g3=%.3f)\n", f, f.G3(r))
	}

	soft := cords.Discover(r, cords.Options{MinStrength: 0.9, SampleSize: 80})
	fmt.Printf("\n== CORDS soft FDs (strength >= 0.9, 80-row sample): %d ==\n", len(soft.SFDs))
	flagged := 0
	for _, c := range soft.Correlations {
		if c.Correlated {
			flagged++
		}
	}
	fmt.Printf("  chi-square flagged %d correlated column pairs\n", flagged)

	consts := cfddisc.ConstantCFDs(r, cfddisc.Options{MinSupport: 5, MaxLHS: 1})
	fmt.Printf("\n== constant CFDs (support >= 5): %d ==\n", len(consts))
	for i, c := range consts {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(consts)-5)
			break
		}
		fmt.Printf("  %s  (support %d)\n", c, c.Support(r))
	}

	ods := oddisc.Minimal(oddisc.Discover(r, oddisc.Options{}))
	fmt.Printf("\n== minimal order dependencies: %d ==\n", len(ods))
	for i, o := range ods {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(ods)-5)
			break
		}
		fmt.Printf("  %s\n", o)
	}

	dcs := fastdc.Discover(r.Select(func(i int) bool { return i < 60 }), fastdc.Options{MaxPredicates: 2})
	fmt.Printf("\n== FASTDC denial constraints (60-row sample, <= 2 predicates): %d ==\n", len(dcs))
	for i, d := range dcs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(dcs)-5)
			break
		}
		fmt.Printf("  %s\n", d)
	}

	series := gen.Series(300, 9, 11, 0.05, 7)
	g := sddisc.FitInterval(series, []int{0}, 1, 0.9)
	fmt.Printf("\n== sequential dependency fit on a polling series ==\n")
	fmt.Printf("  seq ->_%s value at 90%% confidence (true step interval: [9,11])\n", g)
}
