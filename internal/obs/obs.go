// Package obs is the run-scoped observability layer of the discovery
// engine: a metrics registry (counters, gauges, latency histograms) and a
// structured event log of run → phase → task spans, exportable as JSONL
// and as Prometheus text exposition.
//
// The package exists because a discovery run over an exponential lattice
// is otherwise a black box: budgets (DESIGN.md "Failure model") say *that*
// a run died, the registry says *where* — which lattice level, which cover
// search, how many cache misses it paid on the way.
//
// # No-op default
//
// Every handle in this package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram or *Span do nothing and allocate nothing.
// Instrumented code therefore carries an optional registry and never
// branches on it, and a run with no registry attached executes exactly the
// legacy path. Observation never feeds back into discovery decisions, so
// attaching a registry cannot change discovery output — workers=1 and
// workers=N stay byte-identical with observability on or off (the
// differential harness in internal/engine asserts the "on" case too).
//
// All registry operations are safe for concurrent use; discovery tasks on
// every pool worker update the same counters.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is one run's metric namespace. Metrics are created on first
// use and live for the registry's lifetime; names are dot-separated
// ("engine.tasks.completed"), lowercase, stable — deptool prints them and
// the Prometheus exposition derives metric names from them.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	trace  trace
	spanID atomic.Int64
}

// New creates an empty registry. The zero time base for span timestamps
// is the creation instant.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named monotonic counter, creating it on first use.
// On a nil registry it returns nil (a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns nil (a valid no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use. On a nil registry it returns nil (a valid no-op histogram).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (bytes resident, entries live, ...).
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease), atomically —
// the in-flight style of gauge, where concurrent holders increment on
// entry and decrement on exit. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets are the upper bounds (seconds) of the latency histogram
// buckets: exponential from 10µs to ~42s, wide enough for both a single
// partition product and a whole lattice level. A final implicit +Inf
// bucket catches the rest.
var histBuckets = [...]float64{
	10e-6, 40e-6, 160e-6, 640e-6,
	2.56e-3, 10.24e-3, 40.96e-3, 163.84e-3,
	655.36e-3, 2.62144, 10.48576, 41.94304,
}

// Histogram is a fixed-bucket latency histogram over seconds.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [len(histBuckets) + 1]int64
}

// Observe records one duration in seconds. No-op on nil.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	b := sort.SearchFloat64s(histBuckets[:], seconds)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || seconds < h.min {
		h.min = seconds
	}
	if h.count == 0 || seconds > h.max {
		h.max = seconds
	}
	h.count++
	h.sum += seconds
	h.buckets[b]++
}

// Start begins timing and returns a function that records the elapsed
// time when called. Usable on a nil histogram (the returned stop is a
// no-op), so call sites never branch:
//
//	defer reg.Histogram("tane.level.seconds").Start()()
func (h *Histogram) Start() (stop func()) {
	if h == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count         int64
	Sum, Min, Max float64
	// Buckets holds cumulative counts per upper bound, ending with the
	// +Inf bucket (== Count).
	Buckets []BucketCount
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound in seconds;
	// math.Inf(1) for the final bucket.
	UpperBound float64
	// Cumulative is the number of observations ≤ UpperBound.
	Cumulative int64
}

// MarshalJSON renders the bound as a string ("+Inf" for the final
// bucket): encoding/json rejects non-finite floats, and the snapshot
// must survive expvar publication (deptool -metrics-addr serves it at
// /debug/vars, where a marshal error would silently corrupt the dump).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	ub := "+Inf"
	if !math.IsInf(b.UpperBound, 0) {
		ub = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return []byte(`{"le":"` + ub + `","count":` + strconv.FormatInt(b.Cumulative, 10) + `}`), nil
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	cum := int64(0)
	for i, n := range h.buckets {
		cum += n
		ub := math.Inf(1)
		if i < len(histBuckets) {
			ub = histBuckets[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Cumulative: cum})
	}
	return s
}

// Snapshot is a deterministic (sorted-name) copy of a registry's metrics.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHistogram
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedHistogram is one histogram in a snapshot.
type NamedHistogram struct {
	Name string
	HistogramSnapshot
}

// Snapshot copies every metric under sorted names. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, NamedHistogram{Name: name, HistogramSnapshot: h.snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Format renders the snapshot for CLI output (deptool profile -v):
// counters and gauges one per line, histograms as count/total/min/max.
func (s Snapshot) Format(w io.Writer) {
	for _, c := range s.Counters {
		fmt.Fprintf(w, "  %-40s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "  %-40s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			fmt.Fprintf(w, "  %-40s count=0\n", h.Name)
			continue
		}
		fmt.Fprintf(w, "  %-40s count=%d total=%s min=%s max=%s mean=%s\n",
			h.Name, h.Count,
			fmtSeconds(h.Sum), fmtSeconds(h.Min), fmtSeconds(h.Max),
			fmtSeconds(h.Sum/float64(h.Count)))
	}
}

// String renders the snapshot as Format does.
func (s Snapshot) String() string {
	var b strings.Builder
	s.Format(&b)
	return b.String()
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
