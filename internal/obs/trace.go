package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span kinds, forming the fixed three-level hierarchy of a discovery run.
const (
	KindRun   = "run"   // one discovery invocation (tane, fastdc, ...)
	KindPhase = "phase" // one stage inside a run (lattice level, evidence scan)
	KindTask  = "task"  // one unit inside a phase (rarely used: high volume)
)

// Event is one finished span in the structured event log. Events are
// appended when a span Ends, so the log is ordered by completion time.
type Event struct {
	// ID is the span's registry-unique id; Parent the enclosing span's id
	// (0 for a root span).
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	// Start is the span's start offset from registry creation, in
	// nanoseconds; Duration the span's length in nanoseconds.
	Start    int64 `json:"start_ns"`
	Duration int64 `json:"dur_ns"`
	// Attrs carries span-scoped measurements (node counts, FDs found, a
	// stop reason) recorded via SetAttr.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// trace is the registry's append-only event log.
type trace struct {
	mu     sync.Mutex
	events []Event
}

// Span is an in-flight run/phase/task interval. A nil span (from a nil
// registry) accepts every call as a no-op.
type Span struct {
	reg    *Registry
	id     int64
	parent int64
	kind   string
	name   string
	begin  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan opens a root span (normally KindRun). On a nil registry it
// returns nil, a valid no-op span.
func (r *Registry) StartSpan(kind, name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		reg:   r,
		id:    r.spanID.Add(1),
		kind:  kind,
		name:  name,
		begin: time.Now(),
	}
}

// Child opens a sub-span of s. On a nil span it returns nil.
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.StartSpan(kind, name)
	c.parent = s.id
	return c
}

// SetAttr records a span attribute, overwriting any previous value for
// the key. No-op on nil and after End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span and appends its Event to the registry's log. End is
// idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	ev := Event{
		ID:       s.id,
		Parent:   s.parent,
		Kind:     s.kind,
		Name:     s.name,
		Start:    s.begin.Sub(s.reg.start).Nanoseconds(),
		Duration: time.Since(s.begin).Nanoseconds(),
		Attrs:    attrs,
	}
	t := &s.reg.trace
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the finished-span log in completion order. Nil
// registries return nil.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.trace.mu.Lock()
	defer r.trace.mu.Unlock()
	return append([]Event(nil), r.trace.events...)
}

// WriteTrace exports the event log as JSONL: one Event object per line,
// in completion order. On a nil registry it writes nothing.
func (r *Registry) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline JSONL needs
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
