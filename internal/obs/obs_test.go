package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp is the no-op-default contract: every handle
// reachable from a nil *Registry accepts every call.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(7)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	r.Histogram("h").Observe(0.5)
	r.Histogram("h").Start()()
	sp := r.StartSpan(KindRun, "nothing")
	sp.SetAttr("k", 1)
	sp.Child(KindPhase, "sub").End()
	sp.End()
	if ev := r.Events(); ev != nil {
		t.Errorf("nil registry events = %v", ev)
	}
	var b strings.Builder
	if err := r.WriteTrace(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WriteTrace wrote %q err %v", b.String(), err)
	}
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WritePrometheus wrote %q err %v", b.String(), err)
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc()
	if got := r.Counter("a.count").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("b.bytes").Set(10)
	r.Gauge("b.bytes").Set(6)
	if got := r.Gauge("b.bytes").Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
	h := r.Histogram("c.seconds")
	h.Observe(0.001)
	h.Observe(0.1)
	h.Observe(100) // beyond the last bound: +Inf bucket
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 3 || hs.Min != 0.001 || hs.Max != 100 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Cumulative != 3 {
		t.Errorf("+Inf bucket = %+v", last)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(hs.Buckets); i++ {
		if hs.Buckets[i].Cumulative < hs.Buckets[i-1].Cumulative {
			t.Errorf("bucket %d not cumulative: %+v", i, hs.Buckets)
		}
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := New()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Counter("m").Inc()
	s := r.Snapshot()
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		names[i] = c.Name
	}
	if strings.Join(names, ",") != "a,m,z" {
		t.Errorf("counter order = %v", names)
	}
	if !strings.Contains(s.String(), "a") {
		t.Errorf("Format missing counter: %q", s.String())
	}
}

func TestHistogramStart(t *testing.T) {
	r := New()
	stop := r.Histogram("d").Start()
	time.Sleep(time.Millisecond)
	stop()
	hs := r.Snapshot().Histograms[0]
	if hs.Count != 1 || hs.Sum <= 0 {
		t.Errorf("timed histogram = %+v", hs)
	}
}

func TestSpansAndTraceJSONL(t *testing.T) {
	r := New()
	run := r.StartSpan(KindRun, "tane")
	phase := run.Child(KindPhase, "level-2")
	phase.SetAttr("nodes", 12)
	phase.End()
	phase.End() // idempotent
	phase.SetAttr("late", true)
	run.SetAttr("fds", 3)
	run.End()

	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// Completion order: child first.
	if evs[0].Name != "level-2" || evs[0].Kind != KindPhase {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[0].Parent != evs[1].ID {
		t.Errorf("child parent = %d, run id = %d", evs[0].Parent, evs[1].ID)
	}
	if _, ok := evs[0].Attrs["late"]; ok {
		t.Error("SetAttr after End recorded")
	}
	if evs[0].Attrs["nodes"] != 12 {
		t.Errorf("attrs = %v", evs[0].Attrs)
	}

	var b strings.Builder
	if err := r.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Duration < 0 || ev.Start < 0 {
			t.Errorf("negative timing: %+v", ev)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("engine.tasks.completed").Add(9)
	r.Gauge("cache.bytes").Set(1024)
	r.Histogram("tane.level.seconds").Observe(0.01)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE deptree_engine_tasks_completed_total counter",
		"deptree_engine_tasks_completed_total 9",
		"# TYPE deptree_cache_bytes gauge",
		"deptree_cache_bytes 1024",
		"# TYPE deptree_tane_level_seconds histogram",
		`deptree_tane_level_seconds_bucket{le="+Inf"} 1`,
		"deptree_tane_level_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUse exercises the registry from many goroutines under
// -race: same counter, same histogram, interleaved spans.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(0.0001)
				sp := r.StartSpan(KindTask, "t")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Errorf("shared counter = %d, want 1600", got)
	}
	if got := len(r.Events()); got != 1600 {
		t.Errorf("events = %d, want 1600", got)
	}
}

// A snapshot must survive json.Marshal even with the +Inf bucket bound:
// deptool publishes it through expvar, where a marshal error silently
// corrupts the /debug/vars dump.
func TestSnapshotJSONSafe(t *testing.T) {
	r := New()
	r.Histogram("h.seconds").Observe(0.001)
	r.Counter("c").Inc()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Fatalf("missing +Inf bucket rendering:\n%s", data)
	}
	var round any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("snapshot JSON does not parse back: %v", err)
	}
}
