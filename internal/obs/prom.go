package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// promPrefix namespaces every exposed metric.
const promPrefix = "deptree_"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters with a _total suffix, gauges plain,
// histograms as cumulative _bucket{le=...}/_sum/_count series. Metric
// names are derived from registry names by mapping every character
// outside [a-zA-Z0-9_] to '_' and prefixing "deptree_". Output is
// deterministic (sorted names). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	for _, c := range s.Counters {
		name := promPrefix + promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promPrefix + promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promPrefix + promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Cumulative); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name to a valid Prometheus metric name suffix.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
