package gen

import (
	"fmt"
	"math/rand"

	"deptree/internal/relation"
)

// HotelConfig controls the synthetic hotel generator. Each knob maps to a
// phenomenon from the paper: VarietyRate injects alternative representation
// formats ("Chicago" vs "Chicago, IL", §1.2), ErrorRate injects true
// veracity errors (wrong region, zero price — the t7/t8 case), and
// DuplicateRate emits near-duplicate tuples from a second "source" with
// perturbed formats (the §3 dataspace setting).
type HotelConfig struct {
	// Rows is the number of tuples to generate.
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// Regions is the number of distinct regions (default 20).
	Regions int
	// AddrsPerRegion is the number of addresses per region (default 10);
	// address → region holds exactly on clean data.
	AddrsPerRegion int
	// VarietyRate is the fraction of rows whose region/name use an
	// alternative representation format. Variety is NOT an error.
	VarietyRate float64
	// ErrorRate is the fraction of rows with an injected veracity error
	// (region replaced by a wrong region, or price zeroed).
	ErrorRate float64
	// DuplicateRate is the fraction of rows that near-duplicate an earlier
	// row, with format perturbation, tagged source "s2".
	DuplicateRate float64
}

func (c HotelConfig) withDefaults() HotelConfig {
	if c.Regions == 0 {
		c.Regions = 20
	}
	if c.AddrsPerRegion == 0 {
		c.AddrsPerRegion = 10
	}
	return c
}

// HotelSchema is the schema produced by Hotels.
func HotelSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Attribute{Name: "source", Kind: relation.KindString},
		relation.Attribute{Name: "name", Kind: relation.KindString},
		relation.Attribute{Name: "address", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "star", Kind: relation.KindInt},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
		relation.Attribute{Name: "nights", Kind: relation.KindInt},
		relation.Attribute{Name: "subtotal", Kind: relation.KindInt},
		relation.Attribute{Name: "tax", Kind: relation.KindInt},
	)
}

var regionSuffixes = []string{"IL", "MA", "CA", "TX", "NY", "WA"}

// cityNames are pairwise edit-distant base region names, so an injected
// wrong-region error is metrically FAR from the true value while format
// variety (a ", XX" suffix) stays NEAR — the separation §1.2 relies on.
var cityNames = []string{
	"Ashford", "Brookfield", "Carlton", "Davenport", "Eastwood",
	"Fairview", "Glenhaven", "Hartwell", "Ironridge", "Jasperton",
	"Kingsley", "Lakewood", "Maplewood", "Northgate", "Oakhurst",
	"Pinecrest", "Quarrytown", "Riverton", "Stonebridge", "Telford",
}

// regionName maps a region index to its base name.
func regionName(reg int) string {
	name := cityNames[reg%len(cityNames)]
	if reg >= len(cityNames) {
		name = fmt.Sprintf("%s %d", name, reg/len(cityNames)+1)
	}
	return name
}

// Hotels generates a synthetic hotel relation. On clean rows the following
// dependencies hold by construction and can be rediscovered:
//
//   - FD  address → region (exactly, modulo variety/errors)
//   - FD  region → star band; star → price band (approximately)
//   - OD  nights ≤ → subtotal ≤ per hotel (subtotal = nights·price)
//   - DC  ¬(price < 100 ∧ star ≥ 4) style constraints
//   - MFD/DD tolerance: perturbed duplicates stay within small edit distance
func Hotels(cfg HotelConfig) *relation.Relation {
	r, _ := HotelsWithTruth(cfg)
	return r
}

// HotelsWithTruth is Hotels plus the ground truth: the set of row indices
// that received an injected veracity error. Rows with mere format variety
// are NOT in the set — they are correct data in an alternative
// representation, which is exactly the precision trap of §1.2.
func HotelsWithTruth(cfg HotelConfig) (*relation.Relation, map[int]bool) {
	return HotelsWithTruthRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// HotelsWithTruthRand is HotelsWithTruth drawing randomness from an
// injected source instead of cfg.Seed. Generators take a *rand.Rand rather
// than seeding any global state, so concurrent and differential test runs
// are reproducible per-source.
func HotelsWithTruthRand(rng *rand.Rand, cfg HotelConfig) (*relation.Relation, map[int]bool) {
	cfg = cfg.withDefaults()
	r := relation.New("hotels", HotelSchema())
	truth := map[int]bool{}

	type base struct {
		name, address, region string
		star, price           int
	}
	var rows []base
	mkBase := func() base {
		reg := rng.Intn(cfg.Regions)
		addr := rng.Intn(cfg.AddrsPerRegion)
		star := 1 + (reg+addr)%5
		price := 80 + star*100 + rng.Intn(40)
		return base{
			name:    fmt.Sprintf("Hotel %c%d", 'A'+reg%26, addr),
			address: fmt.Sprintf("No.%d, %d Street", addr+1, reg*10),
			region:  regionName(reg),
			star:    star,
			price:   price,
		}
	}

	for len(rows) < cfg.Rows {
		var b base
		src := "s1"
		if len(rows) > 0 && rng.Float64() < cfg.DuplicateRate {
			b = rows[rng.Intn(len(rows))]
			src = "s2"
			// Format perturbation on the duplicate: abbreviation-style edits.
			if len(b.name) > 3 {
				b.name = b.name[:len(b.name)-1]
			}
			b.address = "#" + b.address[3:]
		} else {
			b = mkBase()
		}
		rows = append(rows, b)

		region := b.region
		name := b.name
		price := b.price
		if rng.Float64() < cfg.VarietyRate {
			region = region + ", " + regionSuffixes[rng.Intn(len(regionSuffixes))]
		}
		if rng.Float64() < cfg.ErrorRate {
			if rng.Intn(2) == 0 {
				// Wrong region: a different base city, never the true one.
				region = regionName((rng.Intn(cfg.Regions-1) + 1 + indexOf(b.region, cfg.Regions)) % cfg.Regions)
			} else {
				price = 0 // the t8 "price 0" error
			}
			truth[len(rows)-1] = true
		}
		nights := 1 + rng.Intn(7)
		subtotal := nights * price
		tax := subtotal / 10
		err := r.Append([]relation.Value{
			relation.String(src),
			relation.String(name),
			relation.String(b.address),
			relation.String(region),
			relation.Int(b.star),
			relation.Int(price),
			relation.Int(nights),
			relation.Int(subtotal),
			relation.Int(tax),
		})
		if err != nil {
			panic(err) // static schema: cannot fail
		}
	}
	return r, truth
}

// CityIndex returns the region index whose base name equals the given
// string, or -1 when it is not a generator region name. Exposed so tests
// and examples can separate base names from variety suffixes.
func CityIndex(base string) int {
	for reg := 0; reg < 3*len(cityNames); reg++ {
		if regionName(reg) == base {
			return reg
		}
	}
	return -1
}

// indexOf recovers the region index of a base region name (inverse of
// regionName for the generator's own values).
func indexOf(region string, nRegions int) int {
	for reg := 0; reg < nRegions; reg++ {
		if regionName(reg) == region {
			return reg
		}
	}
	return 0
}

// Categorical generates a random categorical relation with the given number
// of rows and per-column cardinalities, for discovery scaling benchmarks
// (Fig 3). Column i is named c0, c1, ....
func Categorical(rows int, cards []int, seed int64) *relation.Relation {
	return CategoricalRand(rand.New(rand.NewSource(seed)), rows, cards)
}

// CategoricalRand is Categorical drawing randomness from an injected
// source.
func CategoricalRand(rng *rand.Rand, rows int, cards []int) *relation.Relation {
	attrs := make([]relation.Attribute, len(cards))
	for i := range cards {
		attrs[i] = relation.Attribute{Name: fmt.Sprintf("c%d", i), Kind: relation.KindString}
	}
	r := relation.New("categorical", relation.NewSchema(attrs...))
	row := make([]relation.Value, len(cards))
	for n := 0; n < rows; n++ {
		for i, card := range cards {
			row[i] = relation.String(fmt.Sprintf("v%d", rng.Intn(card)))
		}
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}

// WithFD generates a categorical relation where column "rhs" is a function
// of columns lhs (plus optional noise), so FD discovery has a planted
// target. noise is the fraction of rows whose rhs value is randomized.
func WithFD(rows int, lhsCards []int, noise float64, seed int64) *relation.Relation {
	return WithFDRand(rand.New(rand.NewSource(seed)), rows, lhsCards, noise)
}

// WithFDRand is WithFD drawing randomness from an injected source.
func WithFDRand(rng *rand.Rand, rows int, lhsCards []int, noise float64) *relation.Relation {
	attrs := make([]relation.Attribute, len(lhsCards)+1)
	for i := range lhsCards {
		attrs[i] = relation.Attribute{Name: fmt.Sprintf("x%d", i), Kind: relation.KindString}
	}
	attrs[len(lhsCards)] = relation.Attribute{Name: "y", Kind: relation.KindString}
	r := relation.New("withfd", relation.NewSchema(attrs...))
	row := make([]relation.Value, len(attrs))
	for n := 0; n < rows; n++ {
		h := 0
		for i, card := range lhsCards {
			v := rng.Intn(card)
			h = h*31 + v
			row[i] = relation.String(fmt.Sprintf("v%d", v))
		}
		y := h % 97
		if rng.Float64() < noise {
			y = rng.Intn(97)
		}
		row[len(lhsCards)] = relation.String(fmt.Sprintf("y%d", y))
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}

// Series generates an ordered numerical relation (seq, value) where value
// increases by a step drawn uniformly from [minStep, maxStep], with a
// violationRate fraction of steps drawn outside the interval — the workload
// shape of sequential dependencies (§4.4, network-polling audit).
func Series(rows int, minStep, maxStep float64, violationRate float64, seed int64) *relation.Relation {
	return SeriesRand(rand.New(rand.NewSource(seed)), rows, minStep, maxStep, violationRate)
}

// SeriesRand is Series drawing randomness from an injected source.
func SeriesRand(rng *rand.Rand, rows int, minStep, maxStep float64, violationRate float64) *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "seq", Kind: relation.KindInt},
		relation.Attribute{Name: "value", Kind: relation.KindFloat},
	)
	r := relation.New("series", schema)
	v := 0.0
	for n := 0; n < rows; n++ {
		if err := r.Append([]relation.Value{relation.Int(n), relation.Float(v)}); err != nil {
			panic(err)
		}
		step := minStep + rng.Float64()*(maxStep-minStep)
		if rng.Float64() < violationRate {
			if rng.Intn(2) == 0 {
				step = maxStep * 3 // too large
			} else {
				step = -minStep // drop / too small
			}
		}
		v += step
	}
	return r
}

// LargeOrdered generates a million-row-scale benchmark relation with
// planted order and functional structure over five numeric columns:
//
//	ts     strictly increasing int (a timestamp / primary order)
//	seq    strictly increasing float derived from ts — ts≤→seq≤ and
//	       seq≤→ts≤ both hold, the planted ODs
//	load   uniform noise — participates in no dependency
//	bucket low-cardinality int (8 values) — the bit-parallel partition
//	       shape, and the LHS of the planted FD
//	grp    bucket-derived (bucket mod 4) — FD bucket→grp holds
//
// The shape exercises exactly the million-row fast paths: set-based OD
// discovery amortizes one sort per column across all candidates,
// sample-then-verify proposes the planted structure from a small sample,
// and the bucket/grp partitions stay within the bitset class cap.
func LargeOrdered(rows int, seed int64) *relation.Relation {
	return LargeOrderedRand(rand.New(rand.NewSource(seed)), rows)
}

// LargeWide generates the adversarial companion to LargeOrdered: a wide
// numeric relation where almost every candidate OD is invalid but only
// refutable near the end of the relation. Columns:
//
//	ts           strictly increasing int (the primary order)
//	m1..m{ord-1} strictly increasing floats derived from ts — the
//	             ord-column family is mutually order-equivalent, so
//	             every asc→asc pair inside it is a planted OD
//	t1..t{tail}  "tail-noise" floats: equal to the monotone spine for
//	             the first 95% of rows, uniform noise for the last 5% —
//	             every candidate touching one is invalid, but its first
//	             violating neighbor pair sits in the final 5%, so a
//	             fail-fast scan pays ~0.95·n before refuting
//
// The shape separates full-relation discovery from sample-then-verify
// by design: full mode pays a near-full O(n) scan for each of the
// O((ord+tail)²) tail candidates, while a sampled run refutes them on
// the sample (the noise region is dense enough that any uniform sample
// witnesses it) and verifies only the small planted family.
func LargeWide(rows, ord, tail int, seed int64) *relation.Relation {
	return LargeWideRand(rand.New(rand.NewSource(seed)), rows, ord, tail)
}

// LargeWideRand is LargeWide drawing randomness from an injected source.
func LargeWideRand(rng *rand.Rand, rows, ord, tail int) *relation.Relation {
	attrs := []relation.Attribute{{Name: "ts", Kind: relation.KindInt}}
	for i := 1; i < ord; i++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("m%d", i), Kind: relation.KindFloat})
	}
	for i := 1; i <= tail; i++ {
		attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("t%d", i), Kind: relation.KindFloat})
	}
	schema := relation.NewSchema(attrs...)
	r := relation.New("large-wide", schema)
	cut := rows - rows/20 // last 5% of rows carry the noise region
	ts := int64(0)
	row := make([]relation.Value, len(attrs))
	for n := 0; n < rows; n++ {
		ts += 1 + int64(rng.Intn(5))
		row[0] = relation.Int(int(ts))
		for i := 1; i < ord; i++ {
			row[i] = relation.Float(float64(ts)*float64(i) + float64(i))
		}
		for i := 0; i < tail; i++ {
			if n < cut {
				row[ord+i] = relation.Float(float64(ts))
			} else {
				row[ord+i] = relation.Float(rng.Float64() * 1e9)
			}
		}
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}

// LargeOrderedRand is LargeOrdered drawing randomness from an injected
// source.
func LargeOrderedRand(rng *rand.Rand, rows int) *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "ts", Kind: relation.KindInt},
		relation.Attribute{Name: "seq", Kind: relation.KindFloat},
		relation.Attribute{Name: "load", Kind: relation.KindFloat},
		relation.Attribute{Name: "bucket", Kind: relation.KindInt},
		relation.Attribute{Name: "grp", Kind: relation.KindInt},
	)
	r := relation.New("large-ordered", schema)
	ts := int64(0)
	seq := 0.0
	row := make([]relation.Value, 5)
	for n := 0; n < rows; n++ {
		ts += 1 + int64(rng.Intn(5))
		seq += 0.5 + rng.Float64()
		bucket := rng.Intn(8)
		row[0] = relation.Int(int(ts))
		row[1] = relation.Float(seq)
		row[2] = relation.Float(rng.Float64() * 1000)
		row[3] = relation.Int(bucket)
		row[4] = relation.Int(bucket % 4)
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}
