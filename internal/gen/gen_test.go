package gen

import (
	"strings"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

func TestTable1Shape(t *testing.T) {
	r := Table1()
	if r.Rows() != 8 || r.Cols() != 5 {
		t.Fatalf("Table1 shape %dx%d", r.Rows(), r.Cols())
	}
	// t3/t4 (rows 2,3): equal address, different region — the fd1 violation.
	a := r.Schema().MustIndex("address")
	reg := r.Schema().MustIndex("region")
	if !r.Value(2, a).Equal(r.Value(3, a)) {
		t.Error("t3/t4 must share address")
	}
	if r.Value(2, reg).Equal(r.Value(3, reg)) {
		t.Error("t3/t4 must differ on region")
	}
	// t8 has the price-0 error.
	if !r.Value(7, r.Schema().MustIndex("price")).Equal(relation.Int(0)) {
		t.Error("t8 price must be 0")
	}
}

func TestTable5Measures(t *testing.T) {
	r := Table5()
	if r.Rows() != 4 {
		t.Fatalf("Table5 rows = %d", r.Rows())
	}
	// |dom(address)| = 2, |dom(address, region)| = 3 (paper §2.1.1).
	a := r.Schema().MustIndex("address")
	reg := r.Schema().MustIndex("region")
	if n := r.DistinctCount([]int{a}); n != 2 {
		t.Errorf("|dom(address)| = %d, want 2", n)
	}
	if n := r.DistinctCount([]int{a, reg}); n != 3 {
		t.Errorf("|dom(address,region)| = %d, want 3", n)
	}
	// name is constant: |dom(name)| = 1, |dom(name,address)| = 2.
	nm := r.Schema().MustIndex("name")
	if n := r.DistinctCount([]int{nm}); n != 1 {
		t.Errorf("|dom(name)| = %d, want 1", n)
	}
	if n := r.DistinctCount([]int{nm, a}); n != 2 {
		t.Errorf("|dom(name,address)| = %d, want 2", n)
	}
}

func TestTable6Shape(t *testing.T) {
	r := Table6()
	if r.Rows() != 6 || r.Cols() != 8 {
		t.Fatalf("Table6 shape %dx%d", r.Rows(), r.Cols())
	}
	src := r.Schema().MustIndex("source")
	n1, n2 := 0, 0
	for i := 0; i < r.Rows(); i++ {
		switch r.Value(i, src).Str() {
		case "s1":
			n1++
		case "s2":
			n2++
		}
	}
	if n1 != 3 || n2 != 3 {
		t.Errorf("sources: s1=%d s2=%d", n1, n2)
	}
}

func TestTable7Monotone(t *testing.T) {
	r := Table7()
	if r.Rows() != 4 {
		t.Fatalf("Table7 rows = %d", r.Rows())
	}
	// subtotal strictly increases, avg/night strictly decreases with nights.
	sub := r.Schema().MustIndex("subtotal")
	avg := r.Schema().MustIndex("avg/night")
	for i := 1; i < r.Rows(); i++ {
		if r.Value(i, sub).Num() <= r.Value(i-1, sub).Num() {
			t.Error("subtotal must increase")
		}
		if r.Value(i, avg).Num() >= r.Value(i-1, avg).Num() {
			t.Error("avg/night must decrease")
		}
	}
}

func TestDataspace(t *testing.T) {
	r := Dataspace()
	if r.Rows() != 3 || r.Cols() != 5 {
		t.Fatalf("Dataspace shape %dx%d", r.Rows(), r.Cols())
	}
	if !r.Value(0, r.Schema().MustIndex("city")).IsNull() {
		t.Error("t1 city must be null")
	}
}

func TestHotelsDeterministic(t *testing.T) {
	a := Hotels(HotelConfig{Rows: 50, Seed: 9})
	b := Hotels(HotelConfig{Rows: 50, Seed: 9})
	if a.Rows() != 50 {
		t.Fatalf("rows = %d", a.Rows())
	}
	for i := 0; i < a.Rows(); i++ {
		for c := 0; c < a.Cols(); c++ {
			if !a.Value(i, c).Equal(b.Value(i, c)) {
				t.Fatalf("nondeterministic at (%d,%d)", i, c)
			}
		}
	}
}

func TestHotelsCleanSatisfiesFD(t *testing.T) {
	r := Hotels(HotelConfig{Rows: 300, Seed: 1}) // no variety, no errors
	addr := attrset.Single(r.Schema().MustIndex("address"))
	p := partition.Build(r, addr)
	codes, _ := r.Codes(r.Schema().MustIndex("region"))
	if g3 := p.G3(codes); g3 != 0 {
		t.Errorf("clean data: g3(address→region) = %v, want 0", g3)
	}
	// subtotal = nights * price everywhere.
	ni := r.Schema().MustIndex("nights")
	pi := r.Schema().MustIndex("price")
	si := r.Schema().MustIndex("subtotal")
	for i := 0; i < r.Rows(); i++ {
		if r.Value(i, ni).Num()*r.Value(i, pi).Num() != r.Value(i, si).Num() {
			t.Fatalf("row %d: subtotal != nights*price", i)
		}
	}
}

func TestHotelsErrorInjection(t *testing.T) {
	r := Hotels(HotelConfig{Rows: 500, Seed: 2, ErrorRate: 0.2})
	addr := attrset.Single(r.Schema().MustIndex("address"))
	p := partition.Build(r, addr)
	codes, _ := r.Codes(r.Schema().MustIndex("region"))
	g3 := p.G3(codes)
	if g3 == 0 {
		t.Error("error injection should break address→region")
	}
	if g3 > 0.25 {
		t.Errorf("g3 = %v, implausibly high for ErrorRate 0.2", g3)
	}
}

func TestHotelsVarietyDistinctFromErrors(t *testing.T) {
	r := Hotels(HotelConfig{Rows: 400, Seed: 3, VarietyRate: 0.3})
	reg := r.Schema().MustIndex("region")
	suffixed := 0
	for i := 0; i < r.Rows(); i++ {
		if len(r.Value(i, reg).Str()) > len("Region00") {
			suffixed++
		}
	}
	if suffixed == 0 {
		t.Error("variety should produce suffixed regions")
	}
	// Variety breaks strict equality but every variant keeps its base city
	// name as a prefix — similarity-aware dependencies must still hold.
	for i := 0; i < r.Rows(); i++ {
		got := r.Value(i, reg).Str()
		base := got
		if idx := strings.IndexByte(got, ','); idx >= 0 {
			base = got[:idx]
		}
		if CityIndex(base) < 0 {
			t.Fatalf("region %q lost its base form", got)
		}
	}
}

func TestHotelsDuplicates(t *testing.T) {
	r := Hotels(HotelConfig{Rows: 300, Seed: 4, DuplicateRate: 0.3})
	src := r.Schema().MustIndex("source")
	dups := 0
	for i := 0; i < r.Rows(); i++ {
		if r.Value(i, src).Str() == "s2" {
			dups++
		}
	}
	if dups < 50 || dups > 150 {
		t.Errorf("duplicate count %d outside plausible band", dups)
	}
}

func TestCategorical(t *testing.T) {
	r := Categorical(100, []int{3, 5, 7}, 11)
	if r.Rows() != 100 || r.Cols() != 3 {
		t.Fatalf("shape %dx%d", r.Rows(), r.Cols())
	}
	for c, want := range []int{3, 5, 7} {
		if n := r.DistinctCount([]int{c}); n > want {
			t.Errorf("col %d cardinality %d > %d", c, n, want)
		}
	}
}

func TestWithFDPlantsFD(t *testing.T) {
	r := WithFD(400, []int{4, 4}, 0, 5)
	x := attrset.Of(0, 1)
	p := partition.Build(r, x)
	codes, _ := r.Codes(2)
	if g3 := p.G3(codes); g3 != 0 {
		t.Errorf("planted FD broken: g3 = %v", g3)
	}
	noisy := WithFD(400, []int{4, 4}, 0.3, 5)
	pn := partition.Build(noisy, x)
	codesN, _ := noisy.Codes(2)
	if g3 := pn.G3(codesN); g3 == 0 {
		t.Error("noise should break the planted FD")
	}
}

func TestSeries(t *testing.T) {
	r := Series(200, 9, 11, 0, 6)
	if r.Rows() != 200 {
		t.Fatalf("rows = %d", r.Rows())
	}
	for i := 1; i < r.Rows(); i++ {
		step := r.Value(i, 1).Num() - r.Value(i-1, 1).Num()
		if step < 9 || step > 11 {
			t.Fatalf("clean series step %v outside [9,11]", step)
		}
	}
	noisy := Series(500, 9, 11, 0.2, 7)
	bad := 0
	for i := 1; i < noisy.Rows(); i++ {
		step := noisy.Value(i, 1).Num() - noisy.Value(i-1, 1).Num()
		if step < 9 || step > 11 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("violationRate should inject out-of-interval steps")
	}
}
