// Append-batch plans for streaming discovery: a base relation plus a
// sequence of row batches continuing its planted structure, with
// rule-breaking drift planted in one configurable batch. The shapes
// mirror LargeOrdered / LargeWide so the streaming benchmarks measure
// the same partition and order structure the one-shot benchmarks do.
package gen

import (
	"math/rand"
	"strconv"

	"deptree/internal/relation"
)

// AppendConfig configures an append-batch plan.
type AppendConfig struct {
	// Wide selects the LargeWide-shaped plan (monotone spine plus tail
	// columns); default is the LargeOrdered shape (ts/seq/load/bucket/grp).
	Wide bool
	// Ord/Tail size the wide shape (defaults 4 and 12, as in the
	// million-row benchmarks).
	Ord, Tail int
	// BaseRows is the seed relation's size; Batches batches of BatchRows
	// rows follow.
	BaseRows  int
	BatchRows int
	Batches   int
	// DriftAt is the 1-based batch index that plants rule-breaking
	// drift (0 = none): for the ordered shape a seq regression (breaks
	// the planted ODs), a duplicated ts with diverging payload (breaks
	// the ts-as-key FDs, forcing superset re-discovery) and a
	// bucket→grp flip; for the wide shape the tail columns switch from
	// the monotone spine to noise (a demotion wave across every tail
	// OD).
	DriftAt int
	Seed    int64
}

func (c AppendConfig) withDefaults() AppendConfig {
	if c.Ord == 0 {
		c.Ord = 4
	}
	if c.Tail == 0 {
		c.Tail = 12
	}
	if c.BaseRows == 0 {
		c.BaseRows = 1000
	}
	if c.BatchRows == 0 {
		c.BatchRows = 100
	}
	if c.Batches == 0 {
		c.Batches = 4
	}
	return c
}

// AppendPlan is a generated base relation and its append batches.
type AppendPlan struct {
	Base    *relation.Relation
	Batches [][][]relation.Value
}

// AppendBatches generates an append plan per cfg. Generation state (the
// monotone counters) carries across the base and every batch, so the
// planted dependencies keep holding under appends until the drift batch
// breaks them.
func AppendBatches(cfg AppendConfig) AppendPlan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Wide {
		return appendWide(rng, cfg)
	}
	return appendOrdered(rng, cfg)
}

func appendOrdered(rng *rand.Rand, cfg AppendConfig) AppendPlan {
	schema := relation.NewSchema(
		relation.Attribute{Name: "ts", Kind: relation.KindInt},
		relation.Attribute{Name: "seq", Kind: relation.KindFloat},
		relation.Attribute{Name: "load", Kind: relation.KindFloat},
		relation.Attribute{Name: "bucket", Kind: relation.KindInt},
		relation.Attribute{Name: "grp", Kind: relation.KindInt},
	)
	ts := int64(0)
	seq := 0.0
	next := func() []relation.Value {
		ts += 1 + int64(rng.Intn(5))
		seq += 0.5 + rng.Float64()
		bucket := rng.Intn(8)
		return []relation.Value{
			relation.Int(int(ts)),
			relation.Float(seq),
			relation.Float(rng.Float64() * 1000),
			relation.Int(bucket),
			relation.Int(bucket % 4),
		}
	}
	base := relation.New("stream-ordered", schema)
	for n := 0; n < cfg.BaseRows; n++ {
		if err := base.Append(next()); err != nil {
			panic(err)
		}
	}
	plan := AppendPlan{Base: base}
	for b := 1; b <= cfg.Batches; b++ {
		var rows [][]relation.Value
		for n := 0; n < cfg.BatchRows; n++ {
			rows = append(rows, next())
		}
		if b == cfg.DriftAt && len(rows) > 0 {
			// Seq regression: ts advances, seq falls — breaks ts≤→seq≤
			// and seq≤→ts≤ at once.
			ts += 1
			rows = append(rows, []relation.Value{
				relation.Int(int(ts)), relation.Float(seq - 100),
				relation.Float(1), relation.Int(0), relation.Int(0),
			})
			// Duplicated ts with a diverging payload: every ts-as-key FD
			// (ts→seq, ts→load, ...) breaks, and the re-discovery has to
			// walk to strict supersets.
			seq += 1
			rows = append(rows, []relation.Value{
				relation.Int(int(ts)), relation.Float(seq),
				relation.Float(2), relation.Int(1), relation.Int(1),
			})
			// bucket→grp flip.
			ts += 1
			seq += 1
			rows = append(rows, []relation.Value{
				relation.Int(int(ts)), relation.Float(seq),
				relation.Float(3), relation.Int(2), relation.Int(3),
			})
		}
		plan.Batches = append(plan.Batches, rows)
	}
	return plan
}

func appendWide(rng *rand.Rand, cfg AppendConfig) AppendPlan {
	attrs := []relation.Attribute{{Name: "ts", Kind: relation.KindInt}}
	for i := 1; i < cfg.Ord; i++ {
		attrs = append(attrs, relation.Attribute{Name: "m" + strconv.Itoa(i), Kind: relation.KindFloat})
	}
	for i := 1; i <= cfg.Tail; i++ {
		attrs = append(attrs, relation.Attribute{Name: "t" + strconv.Itoa(i), Kind: relation.KindFloat})
	}
	schema := relation.NewSchema(attrs...)
	ts := int64(0)
	next := func(noisy bool) []relation.Value {
		ts += 1 + int64(rng.Intn(5))
		row := make([]relation.Value, len(attrs))
		row[0] = relation.Int(int(ts))
		for i := 1; i < cfg.Ord; i++ {
			row[i] = relation.Float(float64(ts)*float64(i) + float64(i))
		}
		for i := 0; i < cfg.Tail; i++ {
			if noisy {
				row[cfg.Ord+i] = relation.Float(rng.Float64() * 1e9)
			} else {
				row[cfg.Ord+i] = relation.Float(float64(ts))
			}
		}
		return row
	}
	base := relation.New("stream-wide", schema)
	for n := 0; n < cfg.BaseRows; n++ {
		if err := base.Append(next(false)); err != nil {
			panic(err)
		}
	}
	plan := AppendPlan{Base: base}
	for b := 1; b <= cfg.Batches; b++ {
		var rows [][]relation.Value
		noisy := cfg.DriftAt > 0 && b >= cfg.DriftAt
		for n := 0; n < cfg.BatchRows; n++ {
			rows = append(rows, next(noisy))
		}
		plan.Batches = append(plan.Batches, rows)
	}
	return plan
}
