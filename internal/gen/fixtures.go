// Package gen provides the paper's running-example relations (Tables 1, 5,
// 6 and 7) as exact fixtures, plus configurable synthetic generators that
// scale the same variety/veracity phenomena to discovery- and
// benchmark-sized workloads.
package gen

import "deptree/internal/relation"

func s(v string) relation.Value { return relation.String(v) }
func i(v int) relation.Value    { return relation.Int(v) }

// Table1 returns the paper's Table 1: relation r1 of hotels, containing the
// motivating examples of §1 — the fd1 violation between t3/t4, the
// false-positive "violation" between t5/t6 ("Chicago" vs "Chicago, IL"),
// and the undetectable true violation between t7/t8 (similar but unequal
// addresses). Row indices 0..7 correspond to tuples t1..t8.
func Table1() *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "name", Kind: relation.KindString},
		relation.Attribute{Name: "address", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "star", Kind: relation.KindInt},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
	)
	return relation.MustFromRows("r1", schema, [][]relation.Value{
		{s("New Center"), s("No.5, Central Park"), s("New York"), i(3), i(299)},
		{s("New Center Hotel"), s("No.5, Central Park"), s("New York"), i(3), i(299)},
		{s("St. Regis Hotel"), s("#3, West Lake Rd."), s("Boston"), i(3), i(319)},
		{s("St. Regis"), s("#3, West Lake Rd."), s("Chicago, MA"), i(3), i(319)},
		{s("West Wood Hotel"), s("Fifth Avenue, 61st Street"), s("Chicago"), i(4), i(499)},
		{s("West Wood"), s("Fifth Avenue, 61st Street"), s("Chicago, IL"), i(4), i(499)},
		{s("Christina Hotel"), s("No.7, West Lake Rd."), s("Boston, MA"), i(5), i(599)},
		{s("Christina"), s("#7, West Lake Rd."), s("San Francisco"), i(5), i(0)},
	})
}

// Table5 returns the paper's Table 5: relation r5 where address → region
// almost holds (strength 2/3, probability 3/4, g3 error 1/4) while
// name → address does not clearly hold (strength 1/2, probability 1/2,
// g3 error 1/2). Rows 0..3 are tuples t1..t4.
func Table5() *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "name", Kind: relation.KindString},
		relation.Attribute{Name: "address", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "rate", Kind: relation.KindInt},
	)
	return relation.MustFromRows("r5", schema, [][]relation.Value{
		{s("Hyatt"), s("175 North Jackson Street"), s("Jackson"), i(230)},
		{s("Hyatt"), s("175 North Jackson Street"), s("Jackson"), i(250)},
		{s("Hyatt"), s("6030 Gateway Boulevard E"), s("El Paso"), i(189)},
		{s("Hyatt"), s("6030 Gateway Boulevard E"), s("El Paso, TX"), i(189)},
	})
}

// Table6 returns the paper's Table 6: relation r6 with tuples from two
// heterogeneous sources s1 and s2, driving the §3 examples (mfd1, ned1,
// dd1/dd2, pac1, ffd1, md1). Rows 0..5 are tuples t1..t6.
func Table6() *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "source", Kind: relation.KindString},
		relation.Attribute{Name: "name", Kind: relation.KindString},
		relation.Attribute{Name: "street", Kind: relation.KindString},
		relation.Attribute{Name: "address", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "zip", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
		relation.Attribute{Name: "tax", Kind: relation.KindInt},
	)
	return relation.MustFromRows("r6", schema, [][]relation.Value{
		{s("s1"), s("NC"), s("CPark"), s("#5, Central Park"), s("New York"), s("10041"), i(299), i(29)},
		{s("s2"), s("NC"), s("12th St."), s("#2 Ave, 12th St."), s("San Jose"), s("95102"), i(300), i(20)},
		{s("s1"), s("Regis"), s("CPark"), s("#9, Central Park"), s("New York"), s("10041"), i(319), i(31)},
		{s("s2"), s("Chris"), s("61st St."), s("#5 Ave, 61st St."), s("Chicago"), s("60601"), i(499), i(49)},
		{s("s2"), s("WD"), s("12th St."), s("#6 Ave, 12th St."), s("San Jose"), s("95102"), i(399), i(27)},
		{s("s1"), s("NC"), s("12th Str"), s("#2 Aven, 12th St."), s("San Jose"), s("95102"), i(300), i(20)},
	})
}

// Table7 returns the paper's Table 7: relation r7 with multiple numerical
// attributes on hotel rates, driving the §4 examples (ofd1, od1, dc1, sd1).
// Rows 0..3 are tuples t1..t4.
func Table7() *relation.Relation {
	schema := relation.NewSchema(
		relation.Attribute{Name: "nights", Kind: relation.KindInt},
		relation.Attribute{Name: "avg/night", Kind: relation.KindInt},
		relation.Attribute{Name: "subtotal", Kind: relation.KindInt},
		relation.Attribute{Name: "taxes", Kind: relation.KindInt},
	)
	return relation.MustFromRows("r7", schema, [][]relation.Value{
		{i(1), i(190), i(190), i(38)},
		{i(2), i(185), i(370), i(74)},
		{i(3), i(180), i(540), i(108)},
		{i(4), i(175), i(700), i(140)},
	})
}

// Dataspace returns the 3-tuple dataspace of §3.4.1 used by the comparable
// dependency example cd1, with synonym attribute pairs (region, city) and
// (addr, post). Absent attributes are null — dataspaces are schemaless, and
// the co-existing heterogeneous schemas are folded into one wide relation.
func Dataspace() *relation.Relation {
	schema := relation.Strings("name", "region", "city", "addr", "post")
	n := relation.Null(relation.KindString)
	return relation.MustFromRows("dataspace", schema, [][]relation.Value{
		{s("Alice"), s("Petersburg"), n, s("#7 T Avenue"), n},
		{s("Alice"), n, s("St Petersburg"), n, s("#7 T Avenue")},
		{s("Alex"), s("St Petersburg"), n, n, s("No 7 T Ave")},
	})
}
