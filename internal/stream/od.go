// odEngine and lexEngine: incremental order-dependency revalidation.
//
// Set-based ODs are the easy case: validity is antitone in the rows and
// the candidate space is fixed (ordered column pairs), so the valid set
// only shrinks and no re-discovery ever happens. oddisc.Stream keeps
// per-column merge-maintained orders and re-decides each held OD against
// only the adjacent pairs involving appended rows; this engine is a thin
// adapter.
//
// Lexicographic ODs re-discover like FDs, but along the prefix chain:
// lexdisc outputs every valid (LHS list, marked RHS) whose proper LHS
// prefixes are all invalid, so when a held rule breaks, the only
// candidates that can newly enter the output are its one-column LHS
// extensions (their length-|LHS| prefix just became invalid; any rule
// with a still-valid shorter prefix stays implied). Extensions found
// invalid stay invalid forever, so seeds are cleared once their
// extensions have been checked. Demotion is localized to pairs involving
// appended rows — an old-old pair that violates now violated before.
package stream

import (
	"context"
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/discovery/oddisc"
	"deptree/internal/engine"
	"deptree/internal/relation"
)

type odEngine struct {
	st       *oddisc.Stream
	ingested int
}

func (e *odEngine) Lines() []string {
	if e.st == nil {
		return nil
	}
	return renderLines(oddisc.Minimal(e.st.Held()))
}

func (e *odEngine) Init(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	st, res := oddisc.NewStream(ctx, r, oddisc.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: opts.Obs})
	if st == nil {
		return true, res.Reason
	}
	e.st = st
	e.ingested = r.Rows()
	return false, ""
}

func (e *odEngine) Sync(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	if e.st == nil {
		return e.Init(ctx, r, fp, opts)
	}
	e.st.Ingest(e.ingested)
	e.ingested = r.Rows()
	_, res := e.st.Revalidate(ctx)
	return res.Partial, res.Reason
}

// lexMaxWidth mirrors lexdisc's default LHS width bound; the registry
// runs lexod with that default, and the differential tests pin the two
// against each other.
const lexMaxWidth = 2

// lexStripe is the fixed MapBudget stripe for extension checks,
// mirroring lexdisc's candidate stripe.
const lexStripe = 8

type lexSeed struct {
	lhs []od.Marked
	rhs od.Marked
}

type lexEngine struct {
	inited   bool
	ingested int
	cols     []int
	held     []od.LexOD
	seeds    []lexSeed
}

func (e *lexEngine) Lines() []string { return renderLines(e.held) }

func (e *lexEngine) Init(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	res := oddisc.DiscoverLexContext(ctx, r, oddisc.LexOptions{Workers: opts.Workers, Budget: opts.Budget, Obs: opts.Obs})
	if res.Partial {
		return true, res.Reason
	}
	e.held = res.ODs
	e.seeds = nil
	e.cols = nil
	for c := 0; c < r.Cols(); c++ {
		if r.Schema().Attr(c).Kind != relation.KindString {
			e.cols = append(e.cols, c)
		}
	}
	e.ingested = r.Rows()
	e.inited = true
	return false, ""
}

func (e *lexEngine) Sync(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	if !e.inited {
		return e.Init(ctx, r, fp, opts)
	}
	if n := r.Rows(); n > e.ingested {
		old := e.ingested
		e.ingested = n
		var kept []od.LexOD
		for _, o := range e.held {
			if lexCleanTail(r, o, old) {
				kept = append(kept, o)
			} else if len(o.LHS) < lexMaxWidth {
				e.seeds = append(e.seeds, lexSeed{lhs: o.LHS, rhs: o.RHS[0]})
			}
			// A broken rule at full width has no extensions to offer;
			// it simply leaves the output, as it would from scratch.
		}
		e.held = kept
	}
	if len(e.seeds) == 0 {
		return false, ""
	}
	return e.rediscover(ctx, r, opts)
}

// rediscover checks the one-column LHS extensions of every pending seed.
// Completion clears the seeds (an invalid extension can never become
// valid later); a budget stop keeps them, with the committed additions
// final for the same antitone reason as in fdEngine.
func (e *lexEngine) rediscover(ctx context.Context, r *relation.Relation, opts Options) (bool, string) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	pool := engine.NewObserved(ctx, workers, 0, opts.Budget, opts.Obs)
	defer pool.Close()
	heldKey := make(map[string]bool, len(e.held))
	for _, o := range e.held {
		heldKey[o.String()] = true
	}
	var cands []od.LexOD
	for _, s := range e.seeds {
		for _, c := range e.cols {
			if c == s.rhs.Col || inMarkedList(s.lhs, c) {
				continue
			}
			lhs := append(append([]od.Marked(nil), s.lhs...), od.Marked{Col: c})
			o := od.LexOD{LHS: lhs, RHS: []od.Marked{s.rhs}, Schema: r.Schema()}
			if k := o.String(); !heldKey[k] {
				heldKey[k] = true
				cands = append(cands, o)
			}
		}
	}
	hits, done, err := engine.MapBudget(pool, len(cands), lexStripe, func(i int) bool {
		return cands[i].Holds(r)
	})
	for i := 0; i < done; i++ {
		if hits[i] {
			e.held = append(e.held, cands[i])
		}
	}
	sort.Slice(e.held, func(i, j int) bool { return e.held[i].String() < e.held[j].String() })
	if err != nil {
		return true, engine.Reason(err)
	}
	e.seeds = nil
	return false, ""
}

func inMarkedList(ms []od.Marked, col int) bool {
	for _, m := range ms {
		if m.Col == col {
			return true
		}
	}
	return false
}

// lexCleanTail reports whether o has no violation among pairs involving
// a row ≥ oldRows. Old-old pairs were checked when the rule was last
// (re)validated and a lexicographic violation never heals under appends.
func lexCleanTail(r *relation.Relation, o od.LexOD, oldRows int) bool {
	n := r.Rows()
	for i := oldRows; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if lexViolates(r, i, j, o) || lexViolates(r, j, i, o) {
				return false
			}
		}
	}
	return true
}

// lexViolates mirrors od.LexOD.Violations' pair rule: X̄-ordered (≤ 0)
// but Ȳ-inverted (> 0).
func lexViolates(r *relation.Relation, i, j int, o od.LexOD) bool {
	return lexCmp(r, i, j, o.LHS) <= 0 && lexCmp(r, i, j, o.RHS) > 0
}

// lexCmp mirrors the od package's lexicographic marked-list comparison.
func lexCmp(r *relation.Relation, i, j int, ms []od.Marked) int {
	for _, m := range ms {
		cmp := r.Value(i, m.Col).Compare(r.Value(j, m.Col))
		if m.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}
