// Package stream implements incremental streaming discovery: a Session
// owns one relation fed by append batches (relation.Appender) and keeps
// a discoverer's ruleset current across batches without re-running
// discovery from scratch.
//
// The design rests on one monotonicity fact: for every dependency class
// served here (exact FDs, set-based ODs, lexicographic ODs), appending
// rows can only BREAK rules — a violating pair survives every later
// append, so valid(r after batch) ⊆ valid(r before batch). Incremental
// maintenance therefore decomposes into
//
//  1. delta refinement — per-attribute-set partition.Refiners absorb the
//     batch in O(delta + touched classes) and report exactly which
//     classes changed;
//  2. demotion — each held rule is re-decided against the touched
//     classes (or delta-involving pairs) only; untouched state cannot
//     create a violation;
//  3. bounded re-discovery — a demoted minimal rule seeds a level-wise
//     search over its strict supersets (FDs) or one-column LHS
//     extensions (lexicographic ODs); set-based ODs need no re-discovery
//     at all because their valid set only shrinks.
//
// All re-discovery fans out through engine.Pool/MapBudget with the
// repo's established prefix semantics: a budget-truncated sync commits a
// deterministic, worker-count-independent prefix (demotions always
// commit — they are monotone — and additions commit level by level), the
// unresolved seeds are retained, and the next batch or an explicit
// Revalidate retries idempotently. After every completed sync the held
// ruleset is byte-identical to what a from-scratch registry run over the
// same rows would print (the differential tests assert exactly that).
package stream

import (
	"context"
	"errors"
	"fmt"

	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// ErrNotIncremental marks an algorithm without an append-aware engine.
var ErrNotIncremental = errors.New("stream: algorithm has no incremental engine")

// Options configures a Session. Incremental revalidation is exact-only:
// approximate modes (g3 budgets, sampling) are not monotone under
// appends, so callers exposing those knobs must reject them before
// creating a session.
type Options struct {
	// Workers fans re-discovery checks out across goroutines; as
	// everywhere in the repo, the output is identical for any value.
	Workers int
	// Budget bounds each sync (per-batch), not the session lifetime. An
	// exhausted budget yields a Partial BatchResult; the session retains
	// its unresolved seeds and the next AppendBatch or Revalidate
	// continues from them.
	Budget engine.Budget
	// Limits bounds ingestion exactly like the CSV readers (row ceiling,
	// field bytes); a rejected batch leaves the session untouched.
	Limits relation.Limits
	// Obs optionally receives engine metrics; nil is a no-op.
	Obs *obs.Registry
}

// BatchResult reports one AppendBatch (or Revalidate) outcome.
type BatchResult struct {
	// Seq is the number of accepted non-empty batches so far.
	Seq int
	// Rows is this batch's row count; TotalRows the relation's.
	Rows      int
	TotalRows int
	// Fingerprint is the chained content fingerprint of the relation
	// state (relation.Appender).
	Fingerprint string
	// Lines is the current ruleset, rendered exactly as the registry
	// renders a from-scratch run over the same rows.
	Lines []string
	// Added/Removed are the ruleset diff against the previous batch.
	Added   []string
	Removed []string
	// Partial marks a budget/cancellation-truncated sync: Lines is then
	// a sound subset (survivors plus committed re-discoveries) and the
	// session expects a retry. Reason is the stable engine stop token.
	Partial bool
	Reason  string
}

// incEngine is one algorithm's append-aware revalidation engine. Init
// seeds it with a from-scratch run over the relation's current rows;
// Sync folds rows the engine has not yet ingested and revalidates. Both
// report (partial, reason) with the engine package's stop tokens; a
// partial Init leaves the engine unseeded for a later retry, a partial
// Sync retains its seeds.
type incEngine interface {
	Init(ctx context.Context, r *relation.Relation, fp string, opts Options) (partial bool, reason string)
	Sync(ctx context.Context, r *relation.Relation, fp string, opts Options) (partial bool, reason string)
	Lines() []string
}

// newEngine maps an algorithm name to its incremental engine, nil if the
// algorithm has none. The set must stay in lockstep with the registry's
// Incremental flags (a test enforces it).
func newEngine(algo string) incEngine {
	switch algo {
	case "tane", "fastfd":
		return &fdEngine{algo: algo}
	case "od":
		return &odEngine{}
	case "lexod":
		return &lexEngine{}
	}
	return nil
}

// Supported reports whether algo has an incremental engine.
func Supported(algo string) bool { return newEngine(algo) != nil }

// Session is one incremental discovery stream: a relation, its appender
// and one algorithm's engine. Not safe for concurrent use; callers
// serialize batches (the HTTP layer holds a per-session lock).
type Session struct {
	algo   string
	opts   Options
	app    *relation.Appender
	eng    incEngine
	inited bool
	lines  []string
}

// NewSession creates an empty session for algo over schema.
func NewSession(algo string, schema *relation.Schema, opts Options) (*Session, error) {
	eng := newEngine(algo)
	if eng == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotIncremental, algo)
	}
	r := relation.New("stream", schema)
	return &Session{algo: algo, opts: opts, app: relation.NewAppender(r, opts.Limits), eng: eng}, nil
}

// Algo returns the session's algorithm name.
func (s *Session) Algo() string { return s.algo }

// Relation returns the underlying relation (owned by the session).
func (s *Session) Relation() *relation.Relation { return s.app.Relation() }

// Schema returns the session's schema.
func (s *Session) Schema() *relation.Schema { return s.app.Relation().Schema() }

// Rows returns the current row count.
func (s *Session) Rows() int { return s.app.Rows() }

// Fingerprint returns the chained fingerprint of the current state.
func (s *Session) Fingerprint() string { return s.app.Fingerprint() }

// Lines returns the current ruleset (a copy).
func (s *Session) Lines() []string { return append([]string(nil), s.lines...) }

// SetRun overrides the per-sync workers and budget (the HTTP layer maps
// per-request knobs through this before each batch).
func (s *Session) SetRun(workers int, budget engine.Budget) {
	s.opts.Workers = workers
	s.opts.Budget = budget
}

// AppendBatch ingests one batch and brings the ruleset current. The
// batch is all-or-nothing: a validation error (width, kind, limits)
// leaves relation, fingerprint and ruleset untouched. A Partial result
// commits demotions and a deterministic prefix of re-discoveries; the
// caller retries via another AppendBatch or Revalidate.
func (s *Session) AppendBatch(ctx context.Context, rows [][]relation.Value) (BatchResult, error) {
	fp, err := s.app.AppendBatch(rows)
	if err != nil {
		return BatchResult{}, err
	}
	r := s.app.Relation()
	var partial bool
	var reason string
	if !s.inited {
		partial, reason = s.eng.Init(ctx, r, fp, s.opts)
		if !partial {
			s.inited = true
		}
	} else {
		partial, reason = s.eng.Sync(ctx, r, fp, s.opts)
	}
	old := s.lines
	s.lines = append([]string(nil), s.eng.Lines()...)
	added, removed := diffLines(old, s.lines)
	return BatchResult{
		Seq:         s.app.Batches(),
		Rows:        len(rows),
		TotalRows:   r.Rows(),
		Fingerprint: fp,
		Lines:       append([]string(nil), s.lines...),
		Added:       added,
		Removed:     removed,
		Partial:     partial,
		Reason:      reason,
	}, nil
}

// Revalidate retries a partial sync without new rows (the chaos-recovery
// path: cancel mid-batch, then resume). On a clean session it is a
// cheap no-op returning the current state.
func (s *Session) Revalidate(ctx context.Context) (BatchResult, error) {
	return s.AppendBatch(ctx, nil)
}

// diffLines computes the set difference between two rulesets, preserving
// each side's order.
func diffLines(old, new []string) (added, removed []string) {
	prev := make(map[string]bool, len(old))
	for _, l := range old {
		prev[l] = true
	}
	cur := make(map[string]bool, len(new))
	for _, l := range new {
		cur[l] = true
	}
	for _, l := range new {
		if !prev[l] {
			added = append(added, l)
		}
	}
	for _, l := range old {
		if !cur[l] {
			removed = append(removed, l)
		}
	}
	return added, removed
}

// renderLines renders dependencies exactly as the registry's render
// helper does (fmt.Sprint per element, nil for empty).
func renderLines[T fmt.Stringer](xs []T) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprint(x))
	}
	return out
}
