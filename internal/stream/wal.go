// Stream WAL: crash-safe persistence for streaming sessions, in the
// mold of the jobs WAL (append-only JSONL, O_APPEND writes, torn-tail
// truncation on replay). The log records session creations and accepted
// batches; replaying it through fresh Sessions reproduces every
// relation, chained fingerprint and ruleset bit for bit, which is what
// lets an HTTP stream session survive a server restart.
//
// Cells are encoded with relation.Value.Key — the injective canonical
// form the dictionary coders and the chained fingerprint are built on.
// A CSV re-encode would conflate NULL with the empty string and re-
// format floats, silently forking the fingerprint chain on replay.
package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"deptree/internal/relation"
)

// ErrWALNotReplayed is returned by appends before Replay has run: until
// a torn tail is truncated, an append could concatenate onto a partial
// record and destroy both.
var ErrWALNotReplayed = errors.New("stream: wal append before replay")

// WALRecord is one log entry: a session creation (Op "create", carrying
// the schema) or one accepted batch (Op "batch", carrying Key-encoded
// cells).
type WALRecord struct {
	Op      string     `json:"op"`
	Session string     `json:"session"`
	Algo    string     `json:"algo,omitempty"`
	Names   []string   `json:"names,omitempty"`
	Kinds   []int      `json:"kinds,omitempty"`
	Seq     int        `json:"seq,omitempty"`
	Cells   [][]string `json:"cells,omitempty"`
}

// WAL is the durable session log. Every append is written and fsynced
// before returning — batch acceptance is low-rate compared to the jobs
// queue, so group commit buys nothing here.
type WAL struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	replayed bool
	// truncatedTail counts torn tail records dropped at Replay.
	truncatedTail int
}

// OpenWAL opens (creating if absent) the JSONL log at path.
func OpenWAL(path string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{path: path, f: f}, nil
}

// Replay streams every whole record to fn in log order, truncates a
// torn tail (a record cut mid-line by a crash) and arms the WAL for
// appends. fn returning an error aborts the replay.
func (w *WAL) Replay(fn func(rec WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	var clean int64
	sc := bufio.NewScanner(w.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		var rec WALRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn or corrupt tail: drop it and everything after.
			w.truncatedTail++
			break
		}
		clean += int64(len(line)) + 1
		if fn != nil {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := w.f.Truncate(clean); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 2); err != nil {
		return err
	}
	w.replayed = true
	return nil
}

// TruncatedTail reports torn records dropped by Replay.
func (w *WAL) TruncatedTail() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncatedTail
}

// AppendCreate logs a session creation.
func (w *WAL) AppendCreate(session, algo string, schema *relation.Schema) error {
	rec := WALRecord{Op: "create", Session: session, Algo: algo}
	for i := 0; i < schema.Len(); i++ {
		at := schema.Attr(i)
		rec.Names = append(rec.Names, at.Name)
		rec.Kinds = append(rec.Kinds, int(at.Kind))
	}
	return w.append(rec)
}

// AppendBatch logs one accepted batch.
func (w *WAL) AppendBatch(session string, seq int, rows [][]relation.Value) error {
	rec := WALRecord{Op: "batch", Session: session, Seq: seq, Cells: EncodeRows(rows)}
	return w.append(rec)
}

func (w *WAL) append(rec WALRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("stream: wal append: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.replayed {
		return ErrWALNotReplayed
	}
	if w.f == nil {
		return errors.New("stream: wal closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// SchemaOf reconstructs a WAL create record's schema.
func (rec WALRecord) SchemaOf() (*relation.Schema, error) {
	if len(rec.Names) != len(rec.Kinds) {
		return nil, fmt.Errorf("stream: wal create record: %d names, %d kinds", len(rec.Names), len(rec.Kinds))
	}
	attrs := make([]relation.Attribute, len(rec.Names))
	for i := range rec.Names {
		attrs[i] = relation.Attribute{Name: rec.Names[i], Kind: relation.Kind(rec.Kinds[i])}
	}
	return relation.NewSchema(attrs...), nil
}

// RowsOf decodes a WAL batch record's cells back into values.
func (rec WALRecord) RowsOf() ([][]relation.Value, error) {
	rows := make([][]relation.Value, len(rec.Cells))
	for i, cells := range rec.Cells {
		row := make([]relation.Value, len(cells))
		for c, k := range cells {
			v, err := decodeKey(k)
			if err != nil {
				return nil, fmt.Errorf("stream: wal batch row %d col %d: %w", i, c, err)
			}
			row[c] = v
		}
		rows[i] = row
	}
	return rows, nil
}

// EncodeRows Key-encodes a batch's cells for the WAL.
func EncodeRows(rows [][]relation.Value) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for c, v := range row {
			cells[c] = v.Key()
		}
		out[i] = cells
	}
	return out
}

// decodeKey inverts relation.Value.Key. A decoded number comes back as a
// float value whatever the column kind — the Appender accepts numeric
// values cross-kind and both Key and Compare read the numeric payload
// only, so replayed fingerprints and rulesets match the originals.
func decodeKey(k string) (relation.Value, error) {
	switch {
	case k == "\x00null":
		return relation.Null(relation.KindString), nil
	case strings.HasPrefix(k, "s:"):
		return relation.String(k[2:]), nil
	case strings.HasPrefix(k, "n:"):
		f, err := strconv.ParseFloat(k[2:], 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("bad numeric key %q: %w", k, err)
		}
		return relation.Float(f), nil
	}
	return relation.Value{}, fmt.Errorf("bad cell key %q", k)
}
