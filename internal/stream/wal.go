// Stream WAL: crash-safe persistence for streaming sessions — a typed
// codec over the shared checksummed record log in internal/wal. The log
// records session creations and accepted batches; replaying it through
// fresh Sessions reproduces every relation, chained fingerprint and
// ruleset bit for bit, which is what lets an HTTP stream session survive
// a server restart. The framed format replaces the old JSONL log's two
// worst behaviours: a mid-log bit flip now surfaces as a typed
// *wal.ErrCorruptRecord instead of silently truncating acknowledged
// batches, and records larger than bufio.Scanner's 64 MiB ceiling
// round-trip instead of erroring at replay after being acknowledged at
// append. Pre-framing JSONL logs migrate in place on first replay.
//
// Cells are encoded with relation.Value.Key — the injective canonical
// form the dictionary coders and the chained fingerprint are built on.
// A CSV re-encode would conflate NULL with the empty string and re-
// format floats, silently forking the fingerprint chain on replay.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"deptree/internal/fsx"
	"deptree/internal/relation"
	"deptree/internal/wal"
)

// ErrWALNotReplayed is returned by appends before Replay has run: until
// the log's contents are verified, an append could land after damage
// and be unreachable. It is the shared wal.ErrNotReplayed sentinel.
var ErrWALNotReplayed = wal.ErrNotReplayed

// WALRecord is one log entry: a session creation (Op "create", carrying
// the schema) or one accepted batch (Op "batch", carrying Key-encoded
// cells).
type WALRecord struct {
	Op      string     `json:"op"`
	Session string     `json:"session"`
	Algo    string     `json:"algo,omitempty"`
	Names   []string   `json:"names,omitempty"`
	Kinds   []int      `json:"kinds,omitempty"`
	Seq     int        `json:"seq,omitempty"`
	Cells   [][]string `json:"cells,omitempty"`
}

// WALOptions tunes OpenWALWith.
type WALOptions struct {
	// FS is the filesystem the log lives on (nil = the real OS).
	FS fsx.FS
	// Quarantine opts replay into sidecarring mid-log corruption
	// instead of refusing; see wal.Options.Quarantine.
	Quarantine bool
}

// WAL is the durable session log. Every append is written and fsynced
// before returning — batch acceptance is low-rate compared to the jobs
// queue, so group commit buys nothing here.
type WAL struct {
	mu       sync.Mutex
	path     string
	opts     WALOptions
	log      *wal.Log
	replayed bool
}

// OpenWAL opens (creating if absent) the framed log at path on the real
// filesystem. Creation fsyncs the parent directory, so a crash right
// after cannot lose the log file itself.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALWith(path, WALOptions{})
}

// OpenWALWith opens the log with explicit options.
func OpenWALWith(path string, opts WALOptions) (*WAL, error) {
	l, err := wal.Open(path, wal.Options{FS: opts.FS, Quarantine: opts.Quarantine})
	if err != nil {
		return nil, err
	}
	return &WAL{path: path, opts: opts, log: l}, nil
}

// Replay streams every verified record to fn in log order, truncates a
// clean torn tail, and arms the WAL for appends. Mid-log corruption
// returns the typed *wal.ErrCorruptRecord (or is quarantined when the
// WAL was opened with Quarantine); fn returning an error aborts the
// replay. A pre-framing JSONL log is migrated first.
func (w *WAL) Replay(fn func(rec WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log == nil {
		return errors.New("stream: wal closed")
	}
	err := w.log.Replay(func(payload []byte) error {
		var rec WALRecord
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			return fmt.Errorf("stream: wal replay: undecodable record: %w", derr)
		}
		if fn != nil {
			return fn(rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	w.replayed = true
	return nil
}

// Reopen closes the underlying log, reopens it from disk and re-verifies
// its frames without re-delivering records. It is the bounded recovery
// step the server attempts once after an append failure before declaring
// the stream subsystem poisoned: a transient write error (brief ENOSPC,
// a hiccuping volume) heals here; real damage fails verification and the
// poisoning stands.
func (w *WAL) Reopen() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log != nil {
		w.log.Close()
		w.log = nil
	}
	l, err := wal.Open(w.path, wal.Options{FS: w.opts.FS, Quarantine: w.opts.Quarantine})
	if err != nil {
		return err
	}
	if err := l.Replay(nil); err != nil {
		l.Close()
		return err
	}
	w.log = l
	w.replayed = true
	return nil
}

// TruncatedTail reports torn tails truncated by Replay.
func (w *WAL) TruncatedTail() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log == nil {
		return 0
	}
	return w.log.TornTail()
}

// Quarantined reports corrupt suffixes sidecared by Replay (always 0
// unless opened with Quarantine).
func (w *WAL) Quarantined() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log == nil {
		return 0
	}
	return w.log.Quarantined()
}

// AppendCreate logs a session creation.
func (w *WAL) AppendCreate(session, algo string, schema *relation.Schema) error {
	rec := WALRecord{Op: "create", Session: session, Algo: algo}
	for i := 0; i < schema.Len(); i++ {
		at := schema.Attr(i)
		rec.Names = append(rec.Names, at.Name)
		rec.Kinds = append(rec.Kinds, int(at.Kind))
	}
	return w.append(rec)
}

// AppendBatch logs one accepted batch.
func (w *WAL) AppendBatch(session string, seq int, rows [][]relation.Value) error {
	rec := WALRecord{Op: "batch", Session: session, Seq: seq, Cells: EncodeRows(rows)}
	return w.append(rec)
}

func (w *WAL) append(rec WALRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("stream: wal append: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log == nil {
		return errors.New("stream: wal closed")
	}
	if !w.replayed {
		return ErrWALNotReplayed
	}
	return w.log.Append(payload, true)
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log == nil {
		return nil
	}
	err := w.log.Close()
	w.log = nil
	return err
}

// SchemaOf reconstructs a WAL create record's schema.
func (rec WALRecord) SchemaOf() (*relation.Schema, error) {
	if len(rec.Names) != len(rec.Kinds) {
		return nil, fmt.Errorf("stream: wal create record: %d names, %d kinds", len(rec.Names), len(rec.Kinds))
	}
	attrs := make([]relation.Attribute, len(rec.Names))
	for i := range rec.Names {
		attrs[i] = relation.Attribute{Name: rec.Names[i], Kind: relation.Kind(rec.Kinds[i])}
	}
	return relation.NewSchema(attrs...), nil
}

// RowsOf decodes a WAL batch record's cells back into values.
func (rec WALRecord) RowsOf() ([][]relation.Value, error) {
	rows := make([][]relation.Value, len(rec.Cells))
	for i, cells := range rec.Cells {
		row := make([]relation.Value, len(cells))
		for c, k := range cells {
			v, err := decodeKey(k)
			if err != nil {
				return nil, fmt.Errorf("stream: wal batch row %d col %d: %w", i, c, err)
			}
			row[c] = v
		}
		rows[i] = row
	}
	return rows, nil
}

// EncodeRows Key-encodes a batch's cells for the WAL.
func EncodeRows(rows [][]relation.Value) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for c, v := range row {
			cells[c] = v.Key()
		}
		out[i] = cells
	}
	return out
}

// decodeKey inverts relation.Value.Key. A decoded number comes back as a
// float value whatever the column kind — the Appender accepts numeric
// values cross-kind and both Key and Compare read the numeric payload
// only, so replayed fingerprints and rulesets match the originals.
func decodeKey(k string) (relation.Value, error) {
	switch {
	case k == "\x00null":
		return relation.Null(relation.KindString), nil
	case strings.HasPrefix(k, "s:"):
		return relation.String(k[2:]), nil
	case strings.HasPrefix(k, "n:"):
		f, err := strconv.ParseFloat(k[2:], 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("bad numeric key %q: %w", k, err)
		}
		return relation.Float(f), nil
	}
	return relation.Value{}, fmt.Errorf("bad cell key %q", k)
}
