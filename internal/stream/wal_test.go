package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deptree/internal/relation"
)

func walSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Attribute{Name: "n", Kind: relation.KindFloat},
		relation.Attribute{Name: "s", Kind: relation.KindString},
	)
}

// TestWALAppendBeforeReplay: the torn-tail gate.
func TestWALAppendBeforeReplay(t *testing.T) {
	w, err := OpenWAL(filepath.Join(t.TempDir(), "s.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendCreate("s1", "od", walSchema()); !errors.Is(err, ErrWALNotReplayed) {
		t.Fatalf("append before replay: %v", err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
}

// TestWALRoundTrip logs a session and replays it through a fresh
// Session, asserting identical fingerprints — the cell encoding is
// injective through Key, including null and the numeric/string split.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	rows := [][]relation.Value{
		{relation.Float(1.5), relation.String("x")},
		{relation.Int(2), relation.String("")}, // empty string != null
		{relation.Null(relation.KindFloat), relation.Null(relation.KindString)},
		{relation.Float(-0.0), relation.String("s:tricky\x1f")}, // key-prefix lookalikes
	}
	live, err := NewSession("od", walSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.AppendBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}

	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch("s1", 1, rows); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed *Session
	err = w2.Replay(func(rec WALRecord) error {
		switch rec.Op {
		case "create":
			schema, serr := rec.SchemaOf()
			if serr != nil {
				return serr
			}
			if schema.Len() != 2 || schema.Attr(0).Name != "n" || schema.Attr(1).Kind != relation.KindString {
				t.Fatalf("replayed schema %v", schema)
			}
			replayed, serr = NewSession(rec.Algo, schema, Options{})
			return serr
		case "batch":
			decoded, derr := rec.RowsOf()
			if derr != nil {
				return derr
			}
			_, derr = replayed.AppendBatch(context.Background(), decoded)
			return derr
		}
		t.Fatalf("unexpected op %q", rec.Op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed == nil {
		t.Fatal("create record not replayed")
	}
	if replayed.Fingerprint() != res.Fingerprint {
		t.Fatalf("replayed fingerprint %s != live %s", replayed.Fingerprint(), res.Fingerprint)
	}
	if !reflect.DeepEqual(replayed.Lines(), live.Lines()) {
		t.Fatalf("replayed ruleset %q != live %q", replayed.Lines(), live.Lines())
	}
}

// TestWALTornTail: a record cut mid-line is truncated on replay and the
// log accepts appends on the clean prefix afterwards.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"batch","session":"s1","cells":[["n:`)
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var ops []string
	if err := w2.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create"}) || w2.TruncatedTail() != 1 {
		t.Fatalf("ops %v truncated %d", ops, w2.TruncatedTail())
	}
	// The torn bytes are gone from disk: a new append starts on a clean
	// line boundary.
	if err := w2.AppendBatch("s1", 1, [][]relation.Value{{relation.Float(1), relation.String("x")}}); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	ops = nil
	if err := w3.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create", "batch"}) {
		t.Fatalf("ops after repair %v", ops)
	}
}

// TestDecodeKeyErrors: garbage cells fail loudly instead of silently
// becoming values.
func TestDecodeKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "x:1", "n:notanumber"} {
		rec := WALRecord{Op: "batch", Cells: [][]string{{bad}}}
		if _, err := rec.RowsOf(); err == nil {
			t.Errorf("cell %q decoded without error", bad)
		}
	}
}
