package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deptree/internal/relation"
	"deptree/internal/wal"
)

func walSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Attribute{Name: "n", Kind: relation.KindFloat},
		relation.Attribute{Name: "s", Kind: relation.KindString},
	)
}

// TestWALAppendBeforeReplay: the torn-tail gate.
func TestWALAppendBeforeReplay(t *testing.T) {
	w, err := OpenWAL(filepath.Join(t.TempDir(), "s.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendCreate("s1", "od", walSchema()); !errors.Is(err, ErrWALNotReplayed) {
		t.Fatalf("append before replay: %v", err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
}

// TestWALRoundTrip logs a session and replays it through a fresh
// Session, asserting identical fingerprints — the cell encoding is
// injective through Key, including null and the numeric/string split.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	rows := [][]relation.Value{
		{relation.Float(1.5), relation.String("x")},
		{relation.Int(2), relation.String("")}, // empty string != null
		{relation.Null(relation.KindFloat), relation.Null(relation.KindString)},
		{relation.Float(-0.0), relation.String("s:tricky\x1f")}, // key-prefix lookalikes
	}
	live, err := NewSession("od", walSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.AppendBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}

	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch("s1", 1, rows); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed *Session
	err = w2.Replay(func(rec WALRecord) error {
		switch rec.Op {
		case "create":
			schema, serr := rec.SchemaOf()
			if serr != nil {
				return serr
			}
			if schema.Len() != 2 || schema.Attr(0).Name != "n" || schema.Attr(1).Kind != relation.KindString {
				t.Fatalf("replayed schema %v", schema)
			}
			replayed, serr = NewSession(rec.Algo, schema, Options{})
			return serr
		case "batch":
			decoded, derr := rec.RowsOf()
			if derr != nil {
				return derr
			}
			_, derr = replayed.AppendBatch(context.Background(), decoded)
			return derr
		}
		t.Fatalf("unexpected op %q", rec.Op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed == nil {
		t.Fatal("create record not replayed")
	}
	if replayed.Fingerprint() != res.Fingerprint {
		t.Fatalf("replayed fingerprint %s != live %s", replayed.Fingerprint(), res.Fingerprint)
	}
	if !reflect.DeepEqual(replayed.Lines(), live.Lines()) {
		t.Fatalf("replayed ruleset %q != live %q", replayed.Lines(), live.Lines())
	}
}

// TestWALTornTail: a record cut mid-line is truncated on replay and the
// log accepts appends on the clean prefix afterwards.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := wal.EncodeFrame([]byte(`{"op":"batch","session":"s1","cells":[["n:1"]]}`))
	f.Write(frame[:len(frame)-9]) // crash mid-frame
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var ops []string
	if err := w2.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create"}) || w2.TruncatedTail() != 1 {
		t.Fatalf("ops %v truncated %d", ops, w2.TruncatedTail())
	}
	// The torn bytes are gone from disk: a new append starts on a clean
	// line boundary.
	if err := w2.AppendBatch("s1", 1, [][]relation.Value{{relation.Float(1), relation.String("x")}}); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	ops = nil
	if err := w3.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create", "batch"}) {
		t.Fatalf("ops after repair %v", ops)
	}
}

// TestDecodeKeyErrors: garbage cells fail loudly instead of silently
// becoming values.
func TestDecodeKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "x:1", "n:notanumber"} {
		rec := WALRecord{Op: "batch", Cells: [][]string{{bad}}}
		if _, err := rec.RowsOf(); err == nil {
			t.Errorf("cell %q decoded without error", bad)
		}
	}
}

// TestWALMidLogFlipDetected is the regression for the silent-loss bug:
// the old JSONL log treated a mid-log bit flip exactly like a torn
// tail, silently dropping every acknowledged batch after it. The framed
// log must report a typed *wal.ErrCorruptRecord instead.
func TestWALMidLogFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Replay(nil)
	w.AppendCreate("s1", "od", walSchema())
	for seq := 1; seq <= 3; seq++ {
		if err := w.AppendBatch("s1", seq, [][]relation.Value{{relation.Float(float64(seq)), relation.String("x")}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(data) / 2
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	f.Seek(int64(off), 0)
	f.Write([]byte{data[off] ^ 0x20})
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rerr := w2.Replay(nil)
	var corrupt *wal.ErrCorruptRecord
	if !errors.As(rerr, &corrupt) {
		t.Fatalf("mid-log flip replay = %v, want *wal.ErrCorruptRecord", rerr)
	}
	if corrupt.Offset <= 0 || corrupt.Offset >= int64(len(data)) {
		t.Fatalf("corrupt offset %d out of range", corrupt.Offset)
	}
}

// TestWALOversizedRecordRoundTrips is the regression for the 64 MiB
// bufio.Scanner cliff: the old Replay errored with ErrTooLong on any
// record over 1<<26 bytes even though AppendBatch had acknowledged it.
// The framed log must round-trip any batch admission accepts.
func TestWALOversizedRecordRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates ~130 MiB")
	}
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Replay(nil)
	big := strings.Repeat("v", 1<<26) // one 64 MiB cell -> record well past the old cliff
	rows := [][]relation.Value{{relation.Float(1), relation.String(big)}}
	if err := w.AppendBatch("s1", 1, rows); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got [][]relation.Value
	if err := w2.Replay(func(rec WALRecord) error {
		rows, rerr := rec.RowsOf()
		got = rows
		return rerr
	}); err != nil {
		t.Fatalf("oversized record replay: %v", err)
	}
	if len(got) != 1 || got[0][1].Key() != "s:"+big {
		t.Fatal("oversized record did not round-trip byte-identical")
	}
}

// TestWALLegacyJSONLMigrated: a pre-framing JSONL stream log converts in
// place on first replay.
func TestWALLegacyJSONLMigrated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	legacy := `{"op":"create","session":"s1","algo":"od","names":["n","s"],"kinds":[2,1]}` + "\n" +
		`{"op":"batch","session":"s1","seq":1,"cells":[["n:1","s:x"]]}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var ops []string
	if err := w.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create", "batch"}) {
		t.Fatalf("migrated ops %v", ops)
	}
	data, _ := os.ReadFile(path)
	if len(data) < 4 || string(data[:4]) != wal.Magic {
		t.Fatalf("log not migrated to framed format: %q", data[:8])
	}
}

// TestWALReopenRecovers: Reopen re-verifies the log from disk and arms
// appends — the bounded recovery step the server tries before
// poisoning the stream subsystem.
func TestWALReopenRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Replay(nil)
	if err := w.AppendCreate("s1", "od", walSchema()); err != nil {
		t.Fatal(err)
	}
	if err := w.Reopen(); err != nil {
		t.Fatal(err)
	}
	// Armed immediately after Reopen: no fresh Replay needed.
	if err := w.AppendBatch("s1", 1, [][]relation.Value{{relation.Float(1), relation.String("x")}}); err != nil {
		t.Fatal(err)
	}
	var ops []string
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Replay(func(rec WALRecord) error { ops = append(ops, rec.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []string{"create", "batch"}) {
		t.Fatalf("ops after reopen %v", ops)
	}
}

// TestWALReopenRefusesCorruption: Reopen must fail verification on a
// damaged log, so the server's one-shot recovery cannot resurrect a
// WAL whose history is untrustworthy.
func TestWALReopenRefusesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Replay(nil)
	w.AppendCreate("s1", "od", walSchema())
	w.AppendBatch("s1", 1, [][]relation.Value{{relation.Float(1), relation.String("x")}})

	data, _ := os.ReadFile(path)
	off := len(data) - 10
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	f.Seek(int64(off), 0)
	f.Write([]byte{data[off] ^ 0x01})
	f.Close()

	rerr := w.Reopen()
	var corrupt *wal.ErrCorruptRecord
	if !errors.As(rerr, &corrupt) {
		t.Fatalf("reopen over corruption = %v, want *wal.ErrCorruptRecord", rerr)
	}
	if err := w.AppendBatch("s1", 2, [][]relation.Value{{relation.Float(2), relation.String("y")}}); err == nil {
		t.Fatal("append accepted after failed reopen")
	}
}
