package stream_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"deptree/internal/discovery/registry"
	"deptree/internal/engine"
	"deptree/internal/gen"
	"deptree/internal/relation"
	"deptree/internal/stream"
)

// feedAndCheck appends rows to both the session and the from-scratch
// shadow relation, runs the registry from scratch and asserts the
// incremental ruleset is byte-identical.
func feedAndCheck(t *testing.T, sess *stream.Session, shadow *relation.Relation,
	algo string, workers int, rows [][]relation.Value, label string) {
	t.Helper()
	res, err := sess.AppendBatch(context.Background(), rows)
	if err != nil {
		t.Fatalf("%s: AppendBatch: %v", label, err)
	}
	if res.Partial {
		t.Fatalf("%s: unexpected partial sync (%s)", label, res.Reason)
	}
	for _, row := range rows {
		if err := shadow.Append(row); err != nil {
			t.Fatalf("%s: shadow append: %v", label, err)
		}
	}
	a, ok := registry.Lookup(algo)
	if !ok {
		t.Fatalf("unknown algo %q", algo)
	}
	out := a.Run(context.Background(), shadow, registry.RunOptions{Workers: workers})
	if out.Partial {
		t.Fatalf("%s: from-scratch run partial (%s)", label, out.Reason)
	}
	if !reflect.DeepEqual(res.Lines, out.Lines) {
		t.Fatalf("%s: incremental != from-scratch\nincremental: %q\nscratch:     %q",
			label, res.Lines, out.Lines)
	}
}

func tuples(r *relation.Relation) [][]relation.Value {
	rows := make([][]relation.Value, r.Rows())
	for i := range rows {
		rows[i] = r.Tuple(i)
	}
	return rows
}

// TestIncrementalMatchesScratch is the tentpole differential case: for
// every incremental discoverer, at workers 1 and 4, the session ruleset
// after every batch — including the drift batch that demotes rules and
// forces re-discovery — equals a from-scratch registry run over the
// same rows.
func TestIncrementalMatchesScratch(t *testing.T) {
	for _, algo := range []string{"tane", "fastfd", "od", "lexod"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", algo, workers), func(t *testing.T) {
				t.Parallel()
				plan := gen.AppendBatches(gen.AppendConfig{
					BaseRows: 120, BatchRows: 40, Batches: 5, DriftAt: 3, Seed: 7,
				})
				sess, err := stream.NewSession(algo, plan.Base.Schema(), stream.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				shadow := relation.New("shadow", plan.Base.Schema())
				feedAndCheck(t, sess, shadow, algo, workers, tuples(plan.Base), "base")
				for i, b := range plan.Batches {
					feedAndCheck(t, sess, shadow, algo, workers, b, fmt.Sprintf("batch %d", i+1))
				}
			})
		}
	}
}

// TestIncrementalWideShape runs the wide drift plan (a demotion wave
// across every tail OD) for the OD discoverers.
func TestIncrementalWideShape(t *testing.T) {
	for _, algo := range []string{"od", "tane"} {
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			plan := gen.AppendBatches(gen.AppendConfig{
				Wide: true, Ord: 3, Tail: 4, BaseRows: 150, BatchRows: 50, Batches: 4, DriftAt: 2, Seed: 11,
			})
			sess, err := stream.NewSession(algo, plan.Base.Schema(), stream.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			shadow := relation.New("shadow", plan.Base.Schema())
			feedAndCheck(t, sess, shadow, algo, 2, tuples(plan.Base), "base")
			for i, b := range plan.Batches {
				feedAndCheck(t, sess, shadow, algo, 2, b, fmt.Sprintf("batch %d", i+1))
			}
		})
	}
}

// TestIncrementalEmptyStart feeds a session created over an empty
// relation batch by batch — the engines must re-seed from the 0-row
// init and still match from scratch.
func TestIncrementalEmptyStart(t *testing.T) {
	for _, algo := range []string{"tane", "fastfd", "od", "lexod"} {
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			plan := gen.AppendBatches(gen.AppendConfig{
				BaseRows: 1, BatchRows: 30, Batches: 3, DriftAt: 2, Seed: 3,
			})
			sess, err := stream.NewSession(algo, plan.Base.Schema(), stream.Options{})
			if err != nil {
				t.Fatal(err)
			}
			shadow := relation.New("shadow", plan.Base.Schema())
			// Empty first batch: engines initialize over zero rows.
			feedAndCheck(t, sess, shadow, algo, 0, nil, "empty")
			feedAndCheck(t, sess, shadow, algo, 0, tuples(plan.Base), "base")
			for i, b := range plan.Batches {
				feedAndCheck(t, sess, shadow, algo, 0, b, fmt.Sprintf("batch %d", i+1))
			}
		})
	}
}

// TestSessionResumableAfterBudgetStop cancels/starves a sync mid-batch
// and asserts the session resumes to the exact from-scratch ruleset —
// the Partial/prefix contract for streams.
func TestSessionResumableAfterBudgetStop(t *testing.T) {
	for _, algo := range []string{"tane", "fastfd", "od", "lexod"} {
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			plan := gen.AppendBatches(gen.AppendConfig{
				BaseRows: 120, BatchRows: 40, Batches: 3, DriftAt: 2, Seed: 7,
			})
			sess, err := stream.NewSession(algo, plan.Base.Schema(), stream.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			shadow := relation.New("shadow", plan.Base.Schema())
			feedAndCheck(t, sess, shadow, algo, 2, tuples(plan.Base), "base")

			// Starve the drift batch: MaxTasks 1 cannot complete the
			// re-validation fan-out, so the sync must report partial
			// (or, for engines that need no pool work, complete).
			sess.SetRun(2, engine.Budget{MaxTasks: 1})
			res, err := sess.AppendBatch(context.Background(), plan.Batches[0])
			if err != nil {
				t.Fatal(err)
			}
			res2, err := sess.AppendBatch(context.Background(), plan.Batches[1])
			if err != nil {
				t.Fatal(err)
			}
			_ = res
			_ = res2

			// A cancelled context must also leave the session coherent.
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := sess.Revalidate(cctx); err != nil {
				t.Fatal(err)
			}

			// Resume with a workable budget: the retry must converge to
			// the from-scratch ruleset over all ingested rows.
			sess.SetRun(2, engine.Budget{})
			final, err := sess.Revalidate(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if final.Partial {
				t.Fatalf("resumed sync still partial (%s)", final.Reason)
			}
			for _, b := range plan.Batches[:2] {
				for _, row := range b {
					if err := shadow.Append(row); err != nil {
						t.Fatal(err)
					}
				}
			}
			a, _ := registry.Lookup(algo)
			out := a.Run(context.Background(), shadow, registry.RunOptions{Workers: 2})
			if !reflect.DeepEqual(final.Lines, out.Lines) {
				t.Fatalf("resumed ruleset != from-scratch\nincremental: %q\nscratch:     %q",
					final.Lines, out.Lines)
			}
			// And the stream keeps working after recovery.
			feedAndCheck(t, sess, shadow, algo, 2, plan.Batches[2], "post-recovery batch")
		})
	}
}

// TestSharedLHSDemotion is the regression for a vacuous tail check:
// when one sync's re-discovery commits several FDs over the SAME
// multi-attribute LHS, the next sync's demotion loop creates the LHS
// refiner while checking the first of them — and the second must not
// take the tails-only path against that just-built refiner, whose
// Touched() is empty until its first AppendRefine. The third batch
// below violates only ab→d; a vacuous check would keep it forever.
func TestSharedLHSDemotion(t *testing.T) {
	schema := relation.Strings("t", "a", "b", "c", "d")
	row := func(vs ...string) []relation.Value {
		out := make([]relation.Value, len(vs))
		for i, v := range vs {
			out[i] = relation.String(v)
		}
		return out
	}
	for _, algo := range []string{"tane", "fastfd"} {
		t.Run(algo, func(t *testing.T) {
			sess, err := stream.NewSession(algo, schema, stream.Options{})
			if err != nil {
				t.Fatal(err)
			}
			shadow := relation.New("shadow", schema)
			// a is a key: a→b, a→c, a→d are all minimal and held.
			feedAndCheck(t, sess, shadow, algo, 0, [][]relation.Value{
				row("t1", "a1", "b1", "c1", "d1"),
				row("t2", "a2", "b1", "c2", "d2"),
				row("t3", "a3", "b2", "c3", "d3"),
			}, "base")
			// a repeats with new b/c/d: every a→X demotes, and
			// re-discovery commits ab→c and ab→d in the same sync —
			// one shared LHS {a,b}, no refiner yet.
			feedAndCheck(t, sess, shadow, algo, 0, [][]relation.Value{
				row("t4", "a1", "b2", "c9", "d9"),
			}, "demote-a")
			// (a1,b1) recurs agreeing on c but not d: ab→c survives,
			// ab→d must demote on the very sync that creates the
			// shared refiner.
			feedAndCheck(t, sess, shadow, algo, 0, [][]relation.Value{
				row("t5", "a1", "b1", "c1", "d7"),
			}, "violate-abd")
		})
	}
}

// TestRegistryLockstep pins the registry's Incremental flags to the
// stream package's engine set.
func TestRegistryLockstep(t *testing.T) {
	for _, name := range registry.Names() {
		a, _ := registry.Lookup(name)
		if a.Incremental != stream.Supported(name) {
			t.Errorf("algo %s: registry Incremental=%v, stream.Supported=%v",
				name, a.Incremental, stream.Supported(name))
		}
	}
	if stream.Supported("nope") {
		t.Error("Supported(nope) = true")
	}
}

// TestDiffLines checks the per-batch ruleset diff.
func TestDiffLines(t *testing.T) {
	plan := gen.AppendBatches(gen.AppendConfig{
		BaseRows: 100, BatchRows: 30, Batches: 3, DriftAt: 2, Seed: 5,
	})
	sess, err := stream.NewSession("od", plan.Base.Schema(), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.AppendBatch(context.Background(), tuples(plan.Base))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) == 0 || len(res.Removed) != 0 {
		t.Fatalf("base batch diff: added %q removed %q", res.Added, res.Removed)
	}
	var removed []string
	for _, b := range plan.Batches {
		r, err := sess.AppendBatch(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		removed = append(removed, r.Removed...)
	}
	if len(removed) == 0 {
		t.Fatal("drift batches removed no ODs")
	}
}
