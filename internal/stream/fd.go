// fdEngine: incremental exact-FD revalidation for tane and fastfd. Both
// discoverers emit the same minimal singleton-RHS FD set in the same
// sort order, so one engine serves both; only Init's from-scratch seed
// run differs.
//
// Demotion is local: an exact FD X→A held before the batch can only
// break inside a class of π_X that received new rows, and because rows
// are ascending within a class the new rows form the class tail — each
// sync checks just those tails against the class representative, O(delta)
// per rule after the shared refinement.
//
// Re-discovery is the classic level-wise argument run from the demoted
// seeds. A new minimal X→A must strictly contain a demoted seed Y→A with
// every intermediate Y ⊂ W ⊂ X invalid (were some W valid, X would not
// be minimal — validity is antitone in the rows, so W valid now implies
// W valid before, contradicting Y's prior minimality). The BFS therefore
// expands only invalid sets, skips candidates covered by a held rule,
// and commits additions level by level: same-size sets cannot contain
// each other and all smaller levels are settled first, so every commit
// is minimal at commit time — and stays minimal forever, because its
// proper subsets can only become "more invalid" as rows arrive. That is
// what makes a budget-truncated sync safely resumable: survivors and
// committed additions are final, and the retained seeds regenerate the
// rest deterministically.
package stream

import (
	"context"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/discovery/fastfd"
	"deptree/internal/discovery/tane"
	"deptree/internal/engine"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// fdSeedBatch is the fixed MapBudget stripe for re-discovery validity
// checks — fixed so the truncation point is worker-count-independent.
const fdSeedBatch = 8

type fdEngine struct {
	algo string // "tane" or "fastfd"
	// ready gates the incremental path: false (after a complete Init)
	// means the relation is empty or too wide for attrset, and every
	// Sync falls back to a full re-run — correct, just not incremental.
	ready    bool
	ingested int // rows folded into the refiners
	held     []fd.FD
	colRef   []*partition.Refiner
	// setRef holds one refiner per multi-attribute held LHS, created
	// lazily (a rule added by re-discovery gets its refiner — and one
	// full validity check — on the next sync) and pruned when the last
	// rule over that LHS goes away.
	setRef map[attrset.Set]*partition.Refiner
	cache  *engine.PartitionCache
	// seeds are demoted minimal FDs pending re-discovery, per RHS
	// column; they survive partial syncs.
	seeds map[int]map[attrset.Set]bool
}

func (e *fdEngine) Lines() []string { return renderLines(e.held) }

func (e *fdEngine) Init(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	var fds []fd.FD
	switch e.algo {
	case "tane":
		res := tane.DiscoverContext(ctx, r, tane.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: opts.Obs})
		if res.Partial {
			return true, res.Reason
		}
		fds = res.FDs
	default:
		res := fastfd.DiscoverContext(ctx, r, fastfd.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: opts.Obs})
		if res.Partial {
			return true, res.Reason
		}
		fds = res.FDs
	}
	e.held = fds
	e.colRef, e.setRef, e.cache, e.seeds = nil, nil, nil, nil
	e.ingested = r.Rows()
	e.ready = r.Rows() > 0 && r.Cols() > 0 && r.Cols() <= attrset.MaxAttrs
	if !e.ready {
		return false, ""
	}
	e.colRef = make([]*partition.Refiner, r.Cols())
	e.cache = engine.NewPartitionCacheBudget(r, 0, opts.Budget.MaxCacheBytes)
	e.cache.SetObserver(opts.Obs)
	e.cache.SetFingerprint(fp)
	for c := 0; c < r.Cols(); c++ {
		e.colRef[c] = partition.NewRefiner(r, attrset.Single(c))
		// Seed the cache's singleton entries so every later Upgrade
		// refreshes them from the refiners in place instead of evicting.
		e.cache.Get(attrset.Single(c))
	}
	e.setRef = map[attrset.Set]*partition.Refiner{}
	e.seeds = map[int]map[attrset.Set]bool{}
	return false, ""
}

func (e *fdEngine) Sync(ctx context.Context, r *relation.Relation, fp string, opts Options) (bool, string) {
	if !e.ready {
		// Fallback: re-run from scratch (empty seed relation, or wider
		// than attrset can address — exactly what the registry would do).
		return e.Init(ctx, r, fp, opts)
	}
	if n := r.Rows(); n > e.ingested {
		old := e.ingested
		for _, ref := range e.colRef {
			ref.AppendRefine(r, old)
		}
		for _, ref := range e.setRef {
			ref.AppendRefine(r, old)
		}
		// Singletons upgrade in place from the refiners; multi-attribute
		// memos are dropped and rebuilt lazily as products of the
		// refreshed singletons if re-discovery needs them.
		e.cache.Upgrade(fp, func(x attrset.Set, _ *partition.Partition) *partition.Partition {
			if x.Len() == 1 {
				return e.colRef[x.First()].Partition()
			}
			return nil
		})
		e.ingested = n
		var kept []fd.FD
		// Refiners created during this loop have not been through an
		// AppendRefine, so their Touched() is empty — a second rule over
		// the same LHS must take the full check, not the vacuous tails
		// path.
		fresh := map[attrset.Set]bool{}
		for _, f := range e.held {
			if e.stillValid(r, f, old, fresh) {
				kept = append(kept, f)
			} else {
				a := f.RHS.First()
				if e.seeds[a] == nil {
					e.seeds[a] = map[attrset.Set]bool{}
				}
				e.seeds[a][f.LHS] = true
			}
		}
		e.held = kept
	}
	if len(e.seeds) == 0 {
		e.pruneRefiners()
		return false, ""
	}
	return e.rediscover(ctx, r, opts)
}

// stillValid re-decides one held FD against the last batch: only the
// delta tails of the touched classes of π_LHS can hide a fresh
// violation. A rule whose LHS refiner does not exist yet (added by a
// previous sync's re-discovery) gets a fresh refiner and one full
// check — and so does every further rule sharing that LHS this sync
// (fresh), because the new refiner's Touched() is empty until its
// first AppendRefine.
func (e *fdEngine) stillValid(r *relation.Relation, f fd.FD, oldRows int, fresh map[attrset.Set]bool) bool {
	a := f.RHS.First()
	switch f.LHS.Len() {
	case 0:
		// ∅→A: the column must be constant.
		return e.colRef[a].Cardinality() <= 1
	case 1:
		return uniformTails(r, e.colRef[f.LHS.First()], a, oldRows)
	}
	ref, ok := e.setRef[f.LHS]
	if !ok {
		ref = partition.NewRefiner(r, f.LHS)
		e.setRef[f.LHS] = ref
		fresh[f.LHS] = true
		return uniformAll(r, ref.Partition(), a)
	}
	if fresh[f.LHS] {
		return uniformAll(r, ref.Partition(), a)
	}
	return uniformTails(r, ref, a, oldRows)
}

// uniformTails checks that in every class the refiner touched this
// batch, the appended rows (the ascending-row-order tail ≥ oldRows)
// agree with the class representative on column a. The old prefix of an
// extended class was uniform before (the rule held) and appends never
// merge classes, so this is a complete violation check.
func uniformTails(r *relation.Relation, ref *partition.Refiner, a, oldRows int) bool {
	p := ref.Partition()
	for _, ci := range ref.Touched() {
		rows := p.Class(ci)
		rep := r.Value(int(rows[0]), a).Key()
		for k := len(rows) - 1; k >= 1; k-- {
			if int(rows[k]) < oldRows {
				break
			}
			if r.Value(int(rows[k]), a).Key() != rep {
				return false
			}
		}
	}
	return true
}

// uniformAll checks every class of p for agreement on column a (the
// one-time full check for a freshly created refiner). Stripped
// singletons are trivially uniform.
func uniformAll(r *relation.Relation, p *partition.Partition, a int) bool {
	for ci := 0; ci < p.NumClasses(); ci++ {
		rows := p.Class(ci)
		rep := r.Value(int(rows[0]), a).Key()
		for k := 1; k < len(rows); k++ {
			if r.Value(int(rows[k]), a).Key() != rep {
				return false
			}
		}
	}
	return true
}

// rediscover runs the seeded level-wise search for each RHS with pending
// seeds. Completion clears that RHS's seeds; a budget stop keeps them
// and reports partial, with everything committed so far final.
func (e *fdEngine) rediscover(ctx context.Context, r *relation.Relation, opts Options) (bool, string) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	pool := engine.NewObserved(ctx, workers, 0, opts.Budget, opts.Obs)
	defer pool.Close()
	cols := r.Cols()
	rhs := make([]int, 0, len(e.seeds))
	for a := range e.seeds {
		rhs = append(rhs, a)
	}
	sort.Ints(rhs)
	for _, a := range rhs {
		aSet := attrset.Single(a)
		var heldRHS []attrset.Set
		for _, f := range e.held {
			if f.RHS == aSet {
				heldRHS = append(heldRHS, f.LHS)
			}
		}
		visited := map[attrset.Set]bool{}
		levels := map[int][]attrset.Set{}
		expand := func(y attrset.Set) {
			for b := 0; b < cols; b++ {
				if b == a || y.Has(b) {
					continue
				}
				cand := y.Add(b)
				if !visited[cand] {
					visited[cand] = true
					levels[cand.Len()] = append(levels[cand.Len()], cand)
				}
			}
		}
		for y := range e.seeds[a] {
			expand(y)
		}
		for lev := 1; lev < cols; lev++ {
			cands := levels[lev]
			if len(cands) == 0 {
				continue
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			filtered := cands[:0]
			for _, x := range cands {
				covered := false
				for _, w := range heldRHS {
					if w.SubsetOf(x) {
						covered = true
						break
					}
				}
				if !covered {
					filtered = append(filtered, x)
				}
			}
			valid, done, err := engine.MapBudget(pool, len(filtered), fdSeedBatch, func(i int) bool {
				x := filtered[i]
				return partition.Refines(e.cache.Get(x), e.cache.Get(x.Union(aSet)))
			})
			for i := 0; i < done; i++ {
				x := filtered[i]
				if valid[i] {
					e.held = append(e.held, fd.FD{LHS: x, RHS: aSet, Schema: r.Schema()})
					heldRHS = append(heldRHS, x)
				} else {
					expand(x)
				}
			}
			if err != nil {
				sortFDs(e.held)
				return true, engine.Reason(err)
			}
		}
		delete(e.seeds, a)
	}
	sortFDs(e.held)
	e.pruneRefiners()
	return false, ""
}

// pruneRefiners drops multi-attribute refiners no held rule needs, so a
// stream that demotes rules over time sheds their O(|π|) state.
func (e *fdEngine) pruneRefiners() {
	for x := range e.setRef {
		needed := false
		for _, f := range e.held {
			if f.LHS == x {
				needed = true
				break
			}
		}
		if !needed {
			delete(e.setRef, x)
		}
	}
}

// sortFDs matches the shared output order of tane and fastfd.
func sortFDs(fds []fd.FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}
