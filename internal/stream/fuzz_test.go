package stream

import (
	"math"
	"strconv"
	"testing"

	"deptree/internal/relation"
)

// FuzzStreamKeyRoundTrip checks the WAL cell codec both ways. Forward:
// any value the stream layer can hold survives EncodeRows → decodeKey
// with its Key (the injective canonical form the chained fingerprint
// hashes) intact. Backward: any string decodeKey accepts re-encodes to
// the same key, so a WAL written by one process replays identically in
// the next — no silent fingerprint forks.
func FuzzStreamKeyRoundTrip(f *testing.F) {
	f.Add("hello", 1.5, uint8(0))
	f.Add("", math.Inf(-1), uint8(1))
	f.Add("s:lookalike\x1f", -0.0, uint8(2))
	f.Add("\x00null", 12345.678, uint8(0))
	f.Add("n:9", math.MaxFloat64, uint8(1))

	f.Fuzz(func(t *testing.T, s string, n float64, pick uint8) {
		var v relation.Value
		switch pick % 3 {
		case 0:
			v = relation.String(s)
		case 1:
			if math.IsNaN(n) {
				t.Skip("NaN has no canonical key")
			}
			v = relation.Float(n)
		case 2:
			v = relation.Null(relation.KindString)
		}

		// Forward: encode the cell as the WAL does, decode it back, and
		// the canonical Key must survive.
		cells := EncodeRows([][]relation.Value{{v}})
		back, err := decodeKey(cells[0][0])
		if err != nil {
			t.Fatalf("decodeKey rejected WAL-written cell %q: %v", cells[0][0], err)
		}
		if back.Key() != v.Key() {
			t.Fatalf("key changed through WAL codec: %q -> %q", v.Key(), back.Key())
		}

		// Backward: any accepted key re-encodes to itself. (ParseFloat
		// accepts multiple spellings of one number — "1e0" and "1" — so
		// compare keys, the form the fingerprint actually hashes.)
		if dv, err := decodeKey(s); err == nil {
			re := dv.Key()
			rv, err := decodeKey(re)
			if err != nil {
				t.Fatalf("re-encoded key %q rejected: %v", re, err)
			}
			if rv.Key() != re {
				t.Fatalf("decode/encode not idempotent: %q -> %q", re, rv.Key())
			}
		}

		// Numeric keys specifically: the float payload is preserved
		// exactly ('g'-format round-trips float64).
		if pick%3 == 1 {
			num, err := strconv.ParseFloat(cells[0][0][2:], 64)
			if err != nil || num != n {
				// -0.0 canonicalizes to 0: Compare and Key treat them equal.
				if !(n == 0 && num == 0) {
					t.Fatalf("numeric payload %v -> %v (%v)", n, num, err)
				}
			}
		}
	})
}
