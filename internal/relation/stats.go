package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ColumnStats summarizes one column — the catalog statistics that
// CORDS-style discovery (paper §2.1.3) and selectivity estimation consume.
type ColumnStats struct {
	// Name and Kind identify the column.
	Name string
	Kind Kind
	// Rows, Nulls and Distinct count tuples, null cells and distinct
	// non-null values.
	Rows, Nulls, Distinct int
	// Min and Max hold the numeric range (NaN for non-numeric columns).
	Min, Max float64
	// TopValues lists the most frequent values with counts, descending.
	TopValues []ValueCount
}

// ValueCount pairs a value with its frequency.
type ValueCount struct {
	Value Value
	Count int
}

// Uniqueness returns Distinct / (Rows − Nulls): 1.0 marks a key candidate.
func (s ColumnStats) Uniqueness() float64 {
	nonNull := s.Rows - s.Nulls
	if nonNull == 0 {
		return 0
	}
	return float64(s.Distinct) / float64(nonNull)
}

// IsConstant reports whether the column has at most one distinct value.
func (s ColumnStats) IsConstant() bool { return s.Distinct <= 1 }

// String renders the stats line.
func (s ColumnStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %d distinct", s.Name, s.Kind, s.Distinct)
	if s.Nulls > 0 {
		fmt.Fprintf(&b, ", %d null", s.Nulls)
	}
	if !math.IsNaN(s.Min) {
		fmt.Fprintf(&b, ", range [%g, %g]", s.Min, s.Max)
	}
	if len(s.TopValues) > 0 {
		fmt.Fprintf(&b, ", top %v (%d)", s.TopValues[0].Value, s.TopValues[0].Count)
	}
	return b.String()
}

// Stats computes column statistics with up to topK most frequent values
// per column (topK ≤ 0 keeps none).
func Stats(r *Relation, topK int) []ColumnStats {
	out := make([]ColumnStats, r.Cols())
	for c := 0; c < r.Cols(); c++ {
		attr := r.Schema().Attr(c)
		st := ColumnStats{Name: attr.Name, Kind: attr.Kind, Rows: r.Rows(), Min: math.NaN(), Max: math.NaN()}
		counts := map[string]int{}
		rep := map[string]Value{}
		for row := 0; row < r.Rows(); row++ {
			v := r.Value(row, c)
			if v.IsNull() {
				st.Nulls++
				continue
			}
			k := v.Key()
			counts[k]++
			rep[k] = v
			if v.IsNumeric() {
				if math.IsNaN(st.Min) || v.Num() < st.Min {
					st.Min = v.Num()
				}
				if math.IsNaN(st.Max) || v.Num() > st.Max {
					st.Max = v.Num()
				}
			}
		}
		st.Distinct = len(counts)
		if topK > 0 {
			keys := make([]string, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if counts[keys[i]] != counts[keys[j]] {
					return counts[keys[i]] > counts[keys[j]]
				}
				return keys[i] < keys[j]
			})
			if len(keys) > topK {
				keys = keys[:topK]
			}
			for _, k := range keys {
				st.TopValues = append(st.TopValues, ValueCount{Value: rep[k], Count: counts[k]})
			}
		}
		out[c] = st
	}
	return out
}
