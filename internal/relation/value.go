// Package relation provides the relational data model underlying every
// dependency class in the library: typed values, schemas, and in-memory
// column-oriented relation instances.
//
// The model deliberately mirrors the notation of the paper (Table 4): a
// relation scheme R with attributes, an instance r, and tuples t. Values are
// dynamically typed (string, float, int, or null) because the paper's
// dependency families span categorical data (equality), heterogeneous data
// (similarity metrics on strings and numbers) and numerical data (order).
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types supported by the data model.
type Kind int

const (
	// KindString is categorical / textual data.
	KindString Kind = iota
	// KindFloat is numerical data with fractional precision.
	KindFloat
	// KindInt is integral numerical data.
	KindInt
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single cell of a relation instance. The zero Value is a null
// string. Null values compare equal to each other and unequal to everything
// else, matching the SQL-free semantics used throughout the dependency
// literature surveyed by the paper.
type Value struct {
	kind Kind
	str  string
	num  float64
	null bool
}

// String constructs a categorical value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Float constructs a fractional numerical value.
func Float(f float64) Value { return Value{kind: KindFloat, num: f} }

// Int constructs an integral numerical value.
func Int(i int) Value { return Value{kind: KindInt, num: float64(i)} }

// Null constructs a null value of the given kind.
func Null(k Kind) Value { return Value{kind: k, null: true} }

// Kind reports the type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.null }

// IsNumeric reports whether the value kind admits arithmetic and order.
func (v Value) IsNumeric() bool { return v.kind == KindFloat || v.kind == KindInt }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// Num returns the numeric payload as float64. It is only meaningful for
// numeric kinds.
func (v Value) Num() float64 { return v.num }

// Equal reports value equality: same kind class (numerics compare across
// KindInt/KindFloat), same payload. Nulls are equal only to nulls.
func (v Value) Equal(w Value) bool {
	if v.null || w.null {
		return v.null && w.null
	}
	if v.kind == KindString || w.kind == KindString {
		return v.kind == w.kind && v.str == w.str
	}
	return v.num == w.num
}

// Compare orders two values: -1 if v < w, 0 if equal, +1 if v > w.
// Strings order lexicographically, numerics by value. Nulls order before
// every non-null value.
func (v Value) Compare(w Value) int {
	switch {
	case v.null && w.null:
		return 0
	case v.null:
		return -1
	case w.null:
		return 1
	}
	if v.kind == KindString && w.kind == KindString {
		switch {
		case v.str < w.str:
			return -1
		case v.str > w.str:
			return 1
		default:
			return 0
		}
	}
	if v.IsNumeric() && w.IsNumeric() {
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		default:
			return 0
		}
	}
	// Mixed kinds: order by kind to keep Compare total.
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	return 0
}

// Key returns a canonical string usable as a map key for grouping by equal
// values (dictionary encoding). Distinct in the Equal sense implies distinct
// keys and vice versa.
func (v Value) Key() string {
	if v.null {
		return "\x00null"
	}
	switch v.kind {
	case KindString:
		return "s:" + v.str
	default:
		return "n:" + strconv.FormatFloat(v.num, 'g', -1, 64)
	}
}

// String renders the value for display.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	default:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	}
}

// Distance returns |v-w| for numeric values and math.NaN for non-numeric or
// null operands. It is the default metric on numerical attributes used by
// MFDs, DDs, PACs and SDs (paper §3.3.1).
func (v Value) Distance(w Value) float64 {
	if v.null || w.null || !v.IsNumeric() || !w.IsNumeric() {
		return math.NaN()
	}
	return math.Abs(v.num - w.num)
}

// Parse converts a raw string into a Value of the requested kind. Empty
// strings parse to null.
func Parse(s string, k Kind) (Value, error) {
	if s == "" {
		return Null(k), nil
	}
	switch k {
	case KindString:
		return String(s), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse %q as float: %w", s, err)
		}
		return Float(f), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse %q as int: %w", s, err)
		}
		return Int(int(i)), nil
	default:
		return Value{}, fmt.Errorf("relation: unknown kind %v", k)
	}
}
