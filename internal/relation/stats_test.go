package relation

import (
	"math"
	"strings"
	"testing"
)

func statsFixture(t *testing.T) *Relation {
	t.Helper()
	s := NewSchema(
		Attribute{Name: "city", Kind: KindString},
		Attribute{Name: "price", Kind: KindInt},
		Attribute{Name: "id", Kind: KindString},
	)
	return MustFromRows("st", s, [][]Value{
		{String("NY"), Int(100), String("a")},
		{String("NY"), Int(250), String("b")},
		{String("LA"), Int(50), String("c")},
		{Null(KindString), Int(250), String("d")},
	})
}

func TestStatsBasics(t *testing.T) {
	r := statsFixture(t)
	stats := Stats(r, 2)
	city := stats[0]
	if city.Distinct != 2 || city.Nulls != 1 || city.Rows != 4 {
		t.Errorf("city stats = %+v", city)
	}
	if !math.IsNaN(city.Min) {
		t.Error("string column must have NaN range")
	}
	if len(city.TopValues) != 2 || !city.TopValues[0].Value.Equal(String("NY")) || city.TopValues[0].Count != 2 {
		t.Errorf("city top = %v", city.TopValues)
	}
	price := stats[1]
	if price.Min != 50 || price.Max != 250 || price.Distinct != 3 {
		t.Errorf("price stats = %+v", price)
	}
	id := stats[2]
	if id.Uniqueness() != 1 {
		t.Errorf("id uniqueness = %v", id.Uniqueness())
	}
	if city.Uniqueness() != 2.0/3 {
		t.Errorf("city uniqueness = %v", city.Uniqueness())
	}
}

func TestStatsEdgeCases(t *testing.T) {
	empty := New("e", Strings("a"))
	st := Stats(empty, 3)[0]
	if st.Distinct != 0 || st.Uniqueness() != 0 || !st.IsConstant() {
		t.Errorf("empty stats = %+v", st)
	}
	s := Strings("k")
	con := MustFromRows("c", s, [][]Value{{String("x")}, {String("x")}})
	cst := Stats(con, 0)[0]
	if !cst.IsConstant() || len(cst.TopValues) != 0 {
		t.Errorf("constant stats = %+v", cst)
	}
}

func TestStatsString(t *testing.T) {
	r := statsFixture(t)
	stats := Stats(r, 1)
	if got := stats[1].String(); !strings.Contains(got, "range [50, 250]") {
		t.Errorf("price String = %q", got)
	}
	if got := stats[0].String(); !strings.Contains(got, "1 null") || !strings.Contains(got, "top NY (2)") {
		t.Errorf("city String = %q", got)
	}
}
