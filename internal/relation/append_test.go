package relation

import (
	"errors"
	"strings"
	"testing"
)

func appendSchema() *Schema {
	return NewSchema(
		Attribute{Name: "a", Kind: KindInt},
		Attribute{Name: "b", Kind: KindString},
	)
}

func row(a int, b string) []Value { return []Value{Int(a), String(b)} }

// TestAppenderFingerprintDeterministic pins the chained fingerprint: a
// function of schema, row content and batch boundaries only.
func TestAppenderFingerprintDeterministic(t *testing.T) {
	mk := func(batches ...[][]Value) string {
		a := NewAppender(New("x", appendSchema()), Limits{})
		fp := a.Fingerprint()
		for _, b := range batches {
			var err error
			fp, err = a.AppendBatch(b)
			if err != nil {
				t.Fatal(err)
			}
		}
		return fp
	}
	b1 := [][]Value{row(1, "p"), row(2, "q")}
	b2 := [][]Value{row(3, "r")}

	if mk(b1, b2) != mk(b1, b2) {
		t.Fatal("same batches, different fingerprints")
	}
	if mk(b1, b2) == mk(b1) {
		t.Fatal("extra batch left the fingerprint unchanged")
	}
	// Batch boundaries are part of the identity: [b1;b2] as one batch is a
	// different history than b1 then b2.
	joined := append(append([][]Value{}, b1...), b2...)
	if mk(joined) == mk(b1, b2) {
		t.Fatal("batch boundaries not reflected in the fingerprint")
	}
	// Content matters: a different row in the same shape diverges.
	if mk([][]Value{row(1, "p"), row(2, "X")}) == mk(b1) {
		t.Fatal("different content, same fingerprint")
	}
}

// TestAppenderPreloadedSeed: wrapping a relation that already has rows
// equals an empty relation fed the same rows as one batch.
func TestAppenderPreloadedSeed(t *testing.T) {
	rows := [][]Value{row(1, "p"), row(2, "q"), row(3, "p")}
	pre := New("pre", appendSchema())
	for _, r := range rows {
		if err := pre.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	a1 := NewAppender(pre, Limits{})

	a2 := NewAppender(New("empty", appendSchema()), Limits{})
	if _, err := a2.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Fatalf("preloaded fingerprint %s != empty+batch %s", a1.Fingerprint(), a2.Fingerprint())
	}
	// And the histories stay in lockstep afterwards.
	next := [][]Value{row(4, "z")}
	fp1, err1 := a1.AppendBatch(next)
	fp2, err2 := a2.AppendBatch(next)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fp1 != fp2 {
		t.Fatal("fingerprints diverged after identical appends")
	}
}

// TestAppenderAtomicRejection: any invalid row rejects the whole batch
// with relation, fingerprint and batch counter untouched.
func TestAppenderAtomicRejection(t *testing.T) {
	cases := map[string][][]Value{
		"width":       {row(1, "p"), {Int(2)}},
		"kind":        {row(1, "p"), {String("not-an-int"), String("q")}},
		"kind middle": {{Int(1), Int(9)}, row(2, "q")},
	}
	for name, batch := range cases {
		a := NewAppender(New("x", appendSchema()), Limits{})
		if _, err := a.AppendBatch([][]Value{row(0, "seed")}); err != nil {
			t.Fatal(err)
		}
		fp, rows, seq := a.Fingerprint(), a.Rows(), a.Batches()
		if _, err := a.AppendBatch(batch); err == nil {
			t.Fatalf("%s: batch accepted", name)
		}
		if a.Fingerprint() != fp || a.Rows() != rows || a.Batches() != seq {
			t.Fatalf("%s: rejected batch mutated the appender", name)
		}
	}
}

// TestAppenderLimits: the row ceiling and field bound reject with the
// typed error, and cross-kind numerics are accepted.
func TestAppenderLimits(t *testing.T) {
	a := NewAppender(New("x", appendSchema()), Limits{MaxRows: 2})
	if _, err := a.AppendBatch([][]Value{row(1, "p"), row(2, "q")}); err != nil {
		t.Fatal(err)
	}
	_, err := a.AppendBatch([][]Value{row(3, "r")})
	var tooLarge *ErrInputTooLarge
	if !errors.As(err, &tooLarge) || tooLarge.What != "rows" {
		t.Fatalf("row ceiling: %v", err)
	}

	a = NewAppender(New("x", appendSchema()), Limits{MaxFieldBytes: 4})
	_, err = a.AppendBatch([][]Value{row(1, strings.Repeat("z", 10))})
	if !errors.As(err, &tooLarge) || tooLarge.What != "field bytes" {
		t.Fatalf("field bound: %v", err)
	}

	// Float into an int column (and null anywhere) is fine: Key and
	// Compare read the numeric payload only.
	a = NewAppender(New("x", appendSchema()), Limits{})
	if _, err := a.AppendBatch([][]Value{{Float(1.5), Null(KindString)}}); err != nil {
		t.Fatalf("cross-kind numeric/null: %v", err)
	}
}

// TestAppenderEmptyBatch: a no-op returning the current fingerprint.
func TestAppenderEmptyBatch(t *testing.T) {
	a := NewAppender(New("x", appendSchema()), Limits{})
	fp0 := a.Fingerprint()
	fp, err := a.AppendBatch(nil)
	if err != nil || fp != fp0 || a.Batches() != 0 {
		t.Fatalf("empty batch: fp %s (want %s), seq %d, err %v", fp, fp0, a.Batches(), err)
	}
}
