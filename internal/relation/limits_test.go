package relation

import (
	"errors"
	"strings"
	"testing"
)

const hotelsCSV = "name,city,stars\nAstoria,Wien,4\nHilton,Wien,5\nSacher,Wien,5\n"

func wantTooLarge(t *testing.T, err error, what string) {
	t.Helper()
	var tl *ErrInputTooLarge
	if !errors.As(err, &tl) {
		t.Fatalf("err = %v, want *ErrInputTooLarge", err)
	}
	if tl.What != what {
		t.Fatalf("ErrInputTooLarge.What = %q, want %q", tl.What, what)
	}
	if tl.Got <= tl.Limit {
		t.Fatalf("ErrInputTooLarge Got %d <= Limit %d", tl.Got, tl.Limit)
	}
}

func TestReadCSVLimitsUnlimitedZeroValue(t *testing.T) {
	r, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 3 || r.Cols() != 3 {
		t.Fatalf("got %dx%d, want 3x3", r.Rows(), r.Cols())
	}
	if !(Limits{}).Unlimited() {
		t.Fatal("zero Limits not Unlimited")
	}
}

func TestReadCSVLimitsMaxRows(t *testing.T) {
	if _, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{MaxRows: 2}); err == nil {
		t.Fatal("MaxRows=2 accepted 3 rows")
	} else {
		wantTooLarge(t, err, "rows")
	}
	if r, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{MaxRows: 3}); err != nil || r.Rows() != 3 {
		t.Fatalf("MaxRows=3 rejected exactly-3-row input: %v", err)
	}
}

func TestReadCSVLimitsMaxFieldBytes(t *testing.T) {
	if _, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{MaxFieldBytes: 6}); err == nil {
		t.Fatal("MaxFieldBytes=6 accepted field \"Astoria\"")
	} else {
		wantTooLarge(t, err, "field bytes")
	}
	// The header is bounded too.
	if _, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{MaxFieldBytes: 3}); err == nil {
		t.Fatal("MaxFieldBytes=3 accepted header column \"name\"")
	} else {
		wantTooLarge(t, err, "field bytes")
	}
}

func TestReadCSVLimitsMaxBytes(t *testing.T) {
	if _, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, Limits{MaxBytes: 20}); err == nil {
		t.Fatal("MaxBytes=20 accepted a longer input")
	} else {
		wantTooLarge(t, err, "bytes")
	}
	lim := Limits{MaxBytes: int64(len(hotelsCSV))}
	if r, err := ReadCSVLimits("hotels", strings.NewReader(hotelsCSV), nil, lim); err != nil || r.Rows() != 3 {
		t.Fatalf("MaxBytes == len(input) rejected input: %v", err)
	}
}

func TestEffectiveMaxRowsCeiling(t *testing.T) {
	cases := []struct {
		maxRows int
		want    int
	}{
		{0, MaxSupportedRows},                  // zero value: the ceiling still applies
		{-1, MaxSupportedRows},                 // negative: treated as unset
		{2, 2},                                 // tighter bounds stay in force
		{MaxSupportedRows, MaxSupportedRows},   // exactly the ceiling
		{MaxSupportedRows + 7, MaxSupportedRows}, // looser than representable: clamped
	}
	for _, tc := range cases {
		if got := (Limits{MaxRows: tc.maxRows}).effectiveMaxRows(); got != tc.want {
			t.Errorf("Limits{MaxRows: %d}.effectiveMaxRows() = %d, want %d", tc.maxRows, got, tc.want)
		}
	}
}

func TestAppendRejectsRowsPastCeiling(t *testing.T) {
	// A 2³¹-row relation cannot be materialized in a test, so forge the
	// row counter: Append must reject the first unrepresentable row with
	// the same typed error the CSV readers use.
	r := New("huge", NewSchema(Attribute{Name: "a", Kind: KindString}))
	r.cols[0] = []Value{} // storage stays empty; only the counter matters
	r.rows = MaxSupportedRows
	err := r.Append([]Value{String("x")})
	if err == nil {
		t.Fatal("Append accepted row past MaxSupportedRows")
	}
	wantTooLarge(t, err, "rows")
	if r.Rows() != MaxSupportedRows {
		t.Fatalf("rejected Append mutated row count: %d", r.Rows())
	}
}

func TestReadCSVAutoInfersKinds(t *testing.T) {
	r, err := ReadCSVAuto("hotels", []byte(hotelsCSV), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if k := r.Schema().Attr(0).Kind; k != KindString {
		t.Fatalf("column name kind = %v, want string", k)
	}
	if k := r.Schema().Attr(2).Kind; k != KindFloat {
		t.Fatalf("column stars kind = %v, want float", k)
	}
	if _, err := ReadCSVAuto("hotels", []byte(hotelsCSV), Limits{MaxBytes: 10}); err == nil {
		t.Fatal("ReadCSVAuto ignored MaxBytes")
	} else {
		wantTooLarge(t, err, "bytes")
	}
}
