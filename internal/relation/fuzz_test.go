// Fuzz harness for the CSV codec: any CSV that parses must survive a
// parse → render → parse round trip with the second render byte-identical
// to the first. The corpus is seeded with the paper's Table 1 hotel
// relation (the running example every pipeline starts from) plus edge
// cases: quoting, embedded separators, null cells, and numeric columns.
package relation_test

import (
	"bytes"
	"strings"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

// renderCSV encodes r, failing the test on error.
func renderCSV(t *testing.T, r *relation.Relation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := relation.WriteCSV(r, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.String()
}

func FuzzCSVRoundTrip(f *testing.F) {
	// Seed 1: the Table 1 hotel corpus, exactly as deptool would emit it.
	var table1 bytes.Buffer
	if err := relation.WriteCSV(gen.Table1(), &table1); err != nil {
		f.Fatal(err)
	}
	f.Add(table1.String())
	// Seed 2: a synthetic hotel relation with variety/veracity/duplicates.
	var hotels bytes.Buffer
	if err := relation.WriteCSV(gen.Hotels(gen.HotelConfig{
		Rows: 12, Seed: 3, ErrorRate: 0.2, VarietyRate: 0.3, DuplicateRate: 0.2,
	}), &hotels); err != nil {
		f.Fatal(err)
	}
	f.Add(hotels.String())
	// Edge-case seeds.
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("name,region\n\"Chicago, IL\",\"He said \"\"hi\"\"\"\n")
	f.Add("x\n\n")
	f.Add("x,y\n,\n")
	f.Add("h\nπ\n")

	f.Fuzz(func(t *testing.T, data string) {
		r1, err := relation.ReadCSV("fuzz", strings.NewReader(data), nil)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		out1 := renderCSV(t, r1)
		r2, err := relation.ReadCSV("fuzz2", strings.NewReader(out1), nil)
		if err != nil {
			t.Fatalf("re-parse of rendered CSV failed: %v\nrendered:\n%s", err, out1)
		}
		if r1.Rows() != r2.Rows() || r1.Cols() != r2.Cols() {
			t.Fatalf("shape changed: %dx%d -> %dx%d", r1.Rows(), r1.Cols(), r2.Rows(), r2.Cols())
		}
		for i := 0; i < r1.Rows(); i++ {
			for c := 0; c < r1.Cols(); c++ {
				v1, v2 := r1.Value(i, c), r2.Value(i, c)
				if !v1.Equal(v2) {
					t.Fatalf("cell (%d,%d) changed: %q -> %q", i, c, v1, v2)
				}
			}
		}
		out2 := renderCSV(t, r2)
		if out1 != out2 {
			t.Fatalf("render not stable:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}
