package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an in-memory instance r over a schema R. Storage is
// column-oriented: dependency validation and discovery are column-heavy
// (partition building, metric scans), and columnar layout keeps those scans
// cache-friendly and allows per-column dictionary encoding.
type Relation struct {
	name   string
	schema *Schema
	cols   [][]Value
	rows   int
}

// New creates an empty relation instance over the schema.
func New(name string, schema *Schema) *Relation {
	cols := make([][]Value, schema.Len())
	return &Relation{name: name, schema: schema, cols: cols}
}

// FromRows builds a relation from row-major values. Every row must match the
// schema width; kinds are checked.
func FromRows(name string, schema *Schema, rows [][]Value) (*Relation, error) {
	r := New(name, schema)
	for i, row := range rows {
		if err := r.Append(row); err != nil {
			return nil, fmt.Errorf("relation %s row %d: %w", name, i, err)
		}
	}
	return r, nil
}

// MustFromRows is FromRows for statically-known fixtures; it panics on error.
func MustFromRows(name string, schema *Schema, rows [][]Value) *Relation {
	r, err := FromRows(name, schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation scheme.
func (r *Relation) Schema() *Schema { return r.schema }

// Rows returns the number of tuples |r|.
func (r *Relation) Rows() int { return r.rows }

// Cols returns the number of attributes.
func (r *Relation) Cols() int { return r.schema.Len() }

// Value returns the cell at (row, col).
func (r *Relation) Value(row, col int) Value { return r.cols[col][row] }

// SetValue overwrites the cell at (row, col). It is used by repair
// algorithms, which modify instances in place on their own copies.
func (r *Relation) SetValue(row, col int, v Value) {
	if want := r.schema.Attr(col).Kind; !v.IsNull() && v.Kind() != want && !(v.IsNumeric() && (want == KindFloat || want == KindInt)) {
		panic(fmt.Sprintf("relation: kind mismatch writing %v to column %s (%v)", v.Kind(), r.schema.Attr(col).Name, want))
	}
	r.cols[col][row] = v
}

// Column returns the backing slice for a column. Callers must not modify it.
func (r *Relation) Column(col int) []Value { return r.cols[col] }

// Append adds one tuple.
func (r *Relation) Append(row []Value) error {
	if len(row) != r.schema.Len() {
		return fmt.Errorf("relation: row width %d != schema width %d", len(row), r.schema.Len())
	}
	if r.rows >= MaxSupportedRows {
		return fmt.Errorf("relation: append: %w",
			&ErrInputTooLarge{What: "rows", Limit: MaxSupportedRows, Got: int64(r.rows) + 1})
	}
	for i, v := range row {
		want := r.schema.Attr(i).Kind
		if !v.IsNull() && v.Kind() != want && !(v.IsNumeric() && (want == KindFloat || want == KindInt)) {
			return fmt.Errorf("relation: column %s expects %v, got %v (%v)", r.schema.Attr(i).Name, want, v.Kind(), v)
		}
	}
	for i, v := range row {
		r.cols[i] = append(r.cols[i], v)
	}
	r.rows++
	return nil
}

// Tuple returns row i as a value slice (a fresh copy).
func (r *Relation) Tuple(i int) []Value {
	t := make([]Value, r.Cols())
	for c := range r.cols {
		t[c] = r.cols[c][i]
	}
	return t
}

// Clone deep-copies the instance. Repair algorithms operate on clones so
// violation detection over the original stays valid.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.schema)
	c.rows = r.rows
	for i := range r.cols {
		c.cols[i] = append([]Value(nil), r.cols[i]...)
	}
	return c
}

// Project returns a new relation with only the given columns, preserving
// tuple order (a multiset projection: duplicates are kept).
func (r *Relation) Project(cols []int) *Relation {
	p := New(r.name, r.schema.Project(cols))
	p.rows = r.rows
	for i, c := range cols {
		p.cols[i] = append([]Value(nil), r.cols[c]...)
	}
	return p
}

// Select returns a new relation containing the rows for which keep returns
// true.
func (r *Relation) Select(keep func(row int) bool) *Relation {
	s := New(r.name, r.schema)
	for i := 0; i < r.rows; i++ {
		if keep(i) {
			t := make([]Value, r.Cols())
			for c := range r.cols {
				t[c] = r.cols[c][i]
			}
			if err := s.Append(t); err != nil {
				panic(err) // same schema: cannot fail
			}
		}
	}
	return s
}

// SortedIndex returns row indices ordered by the given columns
// (lexicographic over the column list, Value.Compare within a column).
// The relation itself is not modified. Sequential dependencies (§4.4) sort
// on the determinant attributes before checking consecutive distances.
func (r *Relation) SortedIndex(cols []int) []int {
	idx := make([]int, r.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, c := range cols {
			if cmp := r.cols[c][ia].Compare(r.cols[c][ib]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return idx
}

// Codes dictionary-encodes a column: equal values (in the Value.Equal sense)
// receive equal small integer codes in first-appearance order. It returns
// the code per row and the number of distinct codes. Partition construction
// (TANE et al.) and counting-based measures (SFD strength, PFD probability)
// all start from these codes.
func (r *Relation) Codes(col int) (codes []int, card int) {
	codes = make([]int, r.rows)
	dict := make(map[string]int)
	for i, v := range r.cols[col] {
		k := v.Key()
		c, ok := dict[k]
		if !ok {
			c = len(dict)
			dict[k] = c
		}
		codes[i] = c
	}
	return codes, len(dict)
}

// GroupCodes dictionary-encodes the concatenation of several columns:
// rows with equal values on all listed columns share a code. It returns the
// code per row and the number of distinct groups |dom(X)|_r.
func (r *Relation) GroupCodes(cols []int) (codes []int, card int) {
	codes = make([]int, r.rows)
	dict := make(map[string]int)
	var b strings.Builder
	for i := 0; i < r.rows; i++ {
		b.Reset()
		for _, c := range cols {
			b.WriteString(r.cols[c][i].Key())
			b.WriteByte('\x1f')
		}
		k := b.String()
		c, ok := dict[k]
		if !ok {
			c = len(dict)
			dict[k] = c
		}
		codes[i] = c
	}
	return codes, len(dict)
}

// DistinctCount returns |dom(X)|_r, the number of distinct value
// combinations over the listed columns (paper §2.1.1).
func (r *Relation) DistinctCount(cols []int) int {
	_, card := r.GroupCodes(cols)
	return card
}

// String renders the instance as an aligned text table (used by examples and
// the deptool CLI).
func (r *Relation) String() string {
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, r.rows)
	for i := 0; i < r.rows; i++ {
		cells[i] = make([]string, len(names))
		for c := range names {
			s := r.cols[c][i].String()
			cells[i][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.name)
	for c, n := range names {
		fmt.Fprintf(&b, "  %-*s", widths[c], n)
	}
	b.WriteByte('\n')
	for i := 0; i < r.rows; i++ {
		for c := range names {
			fmt.Fprintf(&b, "  %-*s", widths[c], cells[i][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
