package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if KindString.String() != "string" || KindFloat.String() != "float" || KindInt.String() != "int" {
		t.Error("kind names")
	}
	if !strings.Contains(Kind(9).String(), "Kind(9)") {
		t.Error("unknown kind")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("hi"), "hi"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Null(KindString), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSetValueKindPanics(t *testing.T) {
	s := NewSchema(Attribute{Name: "n", Kind: KindInt})
	r := MustFromRows("p", s, [][]Value{{Int(1)}})
	defer func() {
		if recover() == nil {
			t.Error("string into int column should panic")
		}
	}()
	r.SetValue(0, 0, String("oops"))
}

func TestSetValueNullAndCrossNumeric(t *testing.T) {
	s := NewSchema(Attribute{Name: "n", Kind: KindInt})
	r := MustFromRows("p", s, [][]Value{{Int(1)}})
	r.SetValue(0, 0, Null(KindInt))
	if !r.Value(0, 0).IsNull() {
		t.Error("null write failed")
	}
	r.SetValue(0, 0, Float(2)) // numeric cross-kind allowed
	if r.Value(0, 0).Num() != 2 {
		t.Error("cross-numeric write failed")
	}
}

func TestSchemaAttrsAndString(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "a", Kind: KindString},
		Attribute{Name: "b", Kind: KindInt},
	)
	attrs := s.Attrs()
	if len(attrs) != 2 || attrs[1].Name != "b" {
		t.Errorf("Attrs = %v", attrs)
	}
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "a" {
		t.Error("Attrs must return a copy")
	}
	if got := s.String(); got != "(a string, b int)" {
		t.Errorf("String = %q", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := Strings("a")
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing attribute should panic")
		}
	}()
	s.MustIndex("zzz")
}

func TestColumnAccessor(t *testing.T) {
	s := Strings("a")
	r := MustFromRows("c", s, [][]Value{{String("x")}, {String("y")}})
	col := r.Column(0)
	if len(col) != 2 || !col[1].Equal(String("y")) {
		t.Errorf("Column = %v", col)
	}
}

func TestFromRowsError(t *testing.T) {
	s := Strings("a")
	if _, err := FromRows("bad", s, [][]Value{{String("x"), String("y")}}); err == nil {
		t.Error("wide row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFromRows should panic on error")
		}
	}()
	MustFromRows("bad", s, [][]Value{{Int(1)}})
}

func TestWriteCSVNulls(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "a", Kind: KindString},
		Attribute{Name: "n", Kind: KindFloat},
	)
	r := MustFromRows("nulls", s, [][]Value{{Null(KindString), Null(KindFloat)}})
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("nulls", &buf, []Kind{KindString, KindFloat})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Value(0, 0).IsNull() || !back.Value(0, 1).IsNull() {
		t.Error("nulls did not round-trip through CSV")
	}
}
