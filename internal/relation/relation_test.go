package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{String(""), String(""), true},
		{Int(3), Int(3), true},
		{Int(3), Float(3), true},
		{Float(3.5), Float(3.5), true},
		{Float(3.5), Int(3), false},
		{String("3"), Int(3), false},
		{Null(KindString), Null(KindInt), true},
		{Null(KindString), String(""), false},
		{Null(KindFloat), Float(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Float(2), 0},
		{Float(1.5), Int(2), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Null(KindInt), Int(-100), -1},
		{Int(-100), Null(KindInt), 1},
		{Null(KindInt), Null(KindString), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := Float(a), Float(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := String(a), String(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyMatchesEqual(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := String(a), String(b)
		return va.Equal(vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		va, vb := Float(a), Float(b)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return va.Equal(vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueDistance(t *testing.T) {
	if d := Int(3).Distance(Int(7)); d != 4 {
		t.Errorf("Distance(3,7) = %v, want 4", d)
	}
	if d := Float(1.5).Distance(Float(-1.5)); d != 3 {
		t.Errorf("Distance(1.5,-1.5) = %v, want 3", d)
	}
	if d := String("a").Distance(Int(1)); !math.IsNaN(d) {
		t.Errorf("Distance(string, int) = %v, want NaN", d)
	}
	if d := Null(KindInt).Distance(Int(1)); !math.IsNaN(d) {
		t.Errorf("Distance(null, int) = %v, want NaN", d)
	}
}

func TestParse(t *testing.T) {
	v, err := Parse("3.25", KindFloat)
	if err != nil || !v.Equal(Float(3.25)) {
		t.Errorf("Parse float: %v, %v", v, err)
	}
	v, err = Parse("42", KindInt)
	if err != nil || !v.Equal(Int(42)) {
		t.Errorf("Parse int: %v, %v", v, err)
	}
	v, err = Parse("hi", KindString)
	if err != nil || !v.Equal(String("hi")) {
		t.Errorf("Parse string: %v, %v", v, err)
	}
	v, err = Parse("", KindFloat)
	if err != nil || !v.IsNull() {
		t.Errorf("Parse empty: %v, %v", v, err)
	}
	if _, err := Parse("abc", KindInt); err == nil {
		t.Error("Parse(abc, int) should fail")
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "name", Kind: KindString},
		Attribute{Name: "price", Kind: KindInt},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("price") != 1 || s.Index("missing") != -1 {
		t.Error("Index lookup failed")
	}
	if got := s.MustIndex("name"); got != 0 {
		t.Errorf("MustIndex(name) = %d", got)
	}
	if _, err := s.Indices("name", "nope"); err == nil {
		t.Error("Indices with unknown name should fail")
	}
	p := s.Project([]int{1})
	if p.Len() != 1 || p.Attr(0).Name != "price" {
		t.Errorf("Project: %v", p)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute should panic")
		}
	}()
	NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"})
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	s := NewSchema(
		Attribute{Name: "name", Kind: KindString},
		Attribute{Name: "city", Kind: KindString},
		Attribute{Name: "price", Kind: KindInt},
	)
	return MustFromRows("r", s, [][]Value{
		{String("a"), String("NY"), Int(100)},
		{String("b"), String("NY"), Int(200)},
		{String("a"), String("LA"), Int(100)},
		{String("c"), String("SF"), Int(50)},
	})
}

func TestRelationBasics(t *testing.T) {
	r := testRelation(t)
	if r.Rows() != 4 || r.Cols() != 3 {
		t.Fatalf("shape = %dx%d", r.Rows(), r.Cols())
	}
	if !r.Value(2, 1).Equal(String("LA")) {
		t.Errorf("Value(2,1) = %v", r.Value(2, 1))
	}
	tup := r.Tuple(3)
	if !tup[0].Equal(String("c")) || !tup[2].Equal(Int(50)) {
		t.Errorf("Tuple(3) = %v", tup)
	}
}

func TestRelationAppendErrors(t *testing.T) {
	r := testRelation(t)
	if err := r.Append([]Value{String("x")}); err == nil {
		t.Error("short row should fail")
	}
	if err := r.Append([]Value{Int(1), String("NY"), Int(1)}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := r.Append([]Value{Null(KindString), String("NY"), Float(3)}); err != nil {
		t.Errorf("null + numeric cross-kind should be accepted: %v", err)
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := testRelation(t)
	c := r.Clone()
	c.SetValue(0, 0, String("mutated"))
	if r.Value(0, 0).Equal(String("mutated")) {
		t.Error("Clone shares storage with original")
	}
}

func TestRelationProjectSelect(t *testing.T) {
	r := testRelation(t)
	p := r.Project([]int{2, 0})
	if p.Cols() != 2 || p.Schema().Attr(0).Name != "price" {
		t.Fatalf("Project schema: %v", p.Schema())
	}
	if !p.Value(1, 0).Equal(Int(200)) {
		t.Errorf("Project value: %v", p.Value(1, 0))
	}
	s := r.Select(func(row int) bool { return r.Value(row, 1).Equal(String("NY")) })
	if s.Rows() != 2 {
		t.Errorf("Select rows = %d, want 2", s.Rows())
	}
}

func TestRelationSortedIndex(t *testing.T) {
	r := testRelation(t)
	idx := r.SortedIndex([]int{2})
	want := []int{3, 0, 2, 1}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SortedIndex = %v, want %v", idx, want)
		}
	}
	// Stable tie-break: rows 0 and 2 share price 100 and keep input order.
	idx2 := r.SortedIndex([]int{2, 0})
	if idx2[1] != 0 || idx2[2] != 2 {
		t.Errorf("SortedIndex with tiebreak = %v", idx2)
	}
}

func TestRelationCodes(t *testing.T) {
	r := testRelation(t)
	codes, card := r.Codes(0)
	if card != 3 {
		t.Fatalf("card = %d, want 3", card)
	}
	if codes[0] != codes[2] || codes[0] == codes[1] {
		t.Errorf("codes = %v", codes)
	}
	gcodes, gcard := r.GroupCodes([]int{0, 2})
	if gcard != 3 {
		t.Errorf("group card = %d, want 3", gcard)
	}
	if gcodes[0] != gcodes[2] {
		t.Errorf("group codes = %v", gcodes)
	}
	if n := r.DistinctCount([]int{1}); n != 3 {
		t.Errorf("DistinctCount(city) = %d, want 3", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRelation(t)
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV("r", &buf, []Kind{KindString, KindString, KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rows() != r.Rows() || r2.Cols() != r.Cols() {
		t.Fatalf("round-trip shape %dx%d", r2.Rows(), r2.Cols())
	}
	for i := 0; i < r.Rows(); i++ {
		for c := 0; c < r.Cols(); c++ {
			if !r.Value(i, c).Equal(r2.Value(i, c)) {
				t.Errorf("cell (%d,%d): %v != %v", i, c, r.Value(i, c), r2.Value(i, c))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("r", strings.NewReader("a,b\n1"), nil); err == nil {
		t.Error("ragged CSV should fail")
	}
	if _, err := ReadCSV("r", strings.NewReader("a\nx"), []Kind{KindInt}); err == nil {
		t.Error("non-numeric int column should fail")
	}
	if _, err := ReadCSV("r", strings.NewReader(""), nil); err == nil {
		t.Error("empty input should fail on header")
	}
}

func TestRelationString(t *testing.T) {
	r := testRelation(t)
	s := r.String()
	if !strings.Contains(s, "price") || !strings.Contains(s, "NY") {
		t.Errorf("String() missing content:\n%s", s)
	}
}
