package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation scheme.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is a relation scheme R: an ordered list of attributes with unique
// names. Schemas are immutable after construction.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. It panics on
// duplicate attribute names: schemas are static program data and a duplicate
// is a programming error, not a runtime condition.
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a.Name))
		}
		s.index[a.Name] = i
	}
	return s
}

// Strings builds a schema of string attributes with the given names.
func Strings(names ...string) *Schema {
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		attrs[i] = Attribute{Name: n, Kind: KindString}
	}
	return NewSchema(attrs...)
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics on a missing attribute. Use it for
// statically-known attribute names (fixtures, tests, examples).
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: no attribute %q in schema (%s)", name, strings.Join(s.Names(), ", ")))
	}
	return i
}

// Indices maps attribute names to positions, failing on the first unknown
// name.
func (s *Schema) Indices(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("relation: no attribute %q in schema", n)
		}
		out[i] = j
	}
	return out, nil
}

// Project returns a new schema with the attributes at the given positions.
func (s *Schema) Project(cols []int) *Schema {
	attrs := make([]Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = s.attrs[c]
	}
	return NewSchema(attrs...)
}

// String renders the schema as "R(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteString(")")
	return b.String()
}
