// Appender: batch ingestion for streaming discovery. Batches are
// all-or-nothing (pre-validated before the first cell lands), bounded by
// the same Limits/int32 ceiling as the CSV readers, and identified by a
// chained content fingerprint: each batch hashes only its own canonical
// bytes, chained onto the previous fingerprint, so the identity of a
// million-row session advances in O(batch) instead of O(relation).
package relation

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Appender ingests row batches into one Relation and maintains the
// chained SHA-256 fingerprint
//
//	fp₀ = SHA-256(schema bytes)
//	fpᵢ = SHA-256(fpᵢ₋₁ ∥ canonical batch bytes)
//
// over the append history. Two sessions that ingest the same rows in the
// same batch boundaries share a fingerprint; the fingerprint is the
// content-addressed key streaming callers (the jobs result cache, the
// partition cache upgrade path) use to name the relation's current
// state. An Appender is not safe for concurrent use.
type Appender struct {
	r   *Relation
	lim Limits
	fp  [sha256.Size]byte
	// seq counts accepted batches (rejected batches leave both the
	// relation and the fingerprint untouched).
	seq int
}

// NewAppender wraps an existing relation. The seed fingerprint covers
// the schema and — when the relation already has rows — its current
// contents as one implicit initial batch, so a pre-loaded relation and
// an empty one fed the same rows end up with different histories but
// equal row data and consistent per-session identities.
func NewAppender(r *Relation, lim Limits) *Appender {
	a := &Appender{r: r, lim: lim}
	h := sha256.New()
	for i := 0; i < r.Cols(); i++ {
		at := r.Schema().Attr(i)
		fmt.Fprintf(h, "%s\x1f%d\x1e", at.Name, at.Kind)
	}
	h.Sum(a.fp[:0])
	if r.Rows() > 0 {
		rows := make([][]Value, r.Rows())
		for i := range rows {
			rows[i] = r.Tuple(i)
		}
		a.fp = chainFingerprint(a.fp, rows)
	}
	return a
}

// Relation returns the underlying relation.
func (a *Appender) Relation() *Relation { return a.r }

// Rows returns the current row count.
func (a *Appender) Rows() int { return a.r.Rows() }

// Batches returns the number of accepted batches (excluding the seed).
func (a *Appender) Batches() int { return a.seq }

// Fingerprint returns the hex chained fingerprint of the current state.
func (a *Appender) Fingerprint() string { return hex.EncodeToString(a.fp[:]) }

// AppendBatch ingests one batch atomically and returns the new
// fingerprint. The whole batch is validated first — row widths, column
// kinds, the Limits row bound and the int32 representation ceiling — and
// a rejected batch leaves the relation, the fingerprint and the batch
// counter exactly as they were. An empty batch is a no-op that returns
// the current fingerprint.
func (a *Appender) AppendBatch(rows [][]Value) (string, error) {
	if len(rows) == 0 {
		return a.Fingerprint(), nil
	}
	total := int64(a.r.Rows()) + int64(len(rows))
	if maxRows := a.lim.effectiveMaxRows(); total > int64(maxRows) {
		return "", fmt.Errorf("relation: append batch: %w",
			&ErrInputTooLarge{What: "rows", Limit: int64(maxRows), Got: total})
	}
	schema := a.r.Schema()
	for i, row := range rows {
		if len(row) != schema.Len() {
			return "", fmt.Errorf("relation: batch row %d width %d != schema width %d",
				i, len(row), schema.Len())
		}
		for c, v := range row {
			if a.lim.MaxFieldBytes > 0 && len(v.Key()) > a.lim.MaxFieldBytes+2 {
				return "", fmt.Errorf("relation: batch row %d: %w", i,
					&ErrInputTooLarge{What: "field bytes", Limit: int64(a.lim.MaxFieldBytes), Got: int64(len(v.Key()))})
			}
			want := schema.Attr(c).Kind
			if !v.IsNull() && v.Kind() != want && !(v.IsNumeric() && (want == KindFloat || want == KindInt)) {
				return "", fmt.Errorf("relation: batch row %d: column %s expects %v, got %v (%v)",
					i, schema.Attr(c).Name, want, v.Kind(), v)
			}
		}
	}
	for _, row := range rows {
		if err := a.r.Append(row); err != nil {
			// Unreachable after pre-validation; surface rather than hide.
			return "", fmt.Errorf("relation: append batch: %w", err)
		}
	}
	a.fp = chainFingerprint(a.fp, rows)
	a.seq++
	return a.Fingerprint(), nil
}

// chainFingerprint hashes one batch's canonical bytes onto the previous
// fingerprint. Cells are encoded with Value.Key — the same canonical
// form the dictionary coders group by, so surface formatting differences
// that cannot affect discovery output cannot split fingerprints either —
// with \x1f between cells and \x1e after each row.
func chainFingerprint(prev [sha256.Size]byte, rows [][]Value) [sha256.Size]byte {
	h := sha256.New()
	h.Write(prev[:])
	for _, row := range rows {
		for c, v := range row {
			if c > 0 {
				h.Write([]byte{0x1f})
			}
			h.Write([]byte(v.Key()))
		}
		h.Write([]byte{0x1e})
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
