package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV decodes a relation from CSV. The first record is the header. Kinds
// gives the type per column; if nil, every column is read as a string.
func ReadCSV(name string, src io.Reader, kinds []Kind) (*Relation, error) {
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read CSV header: %w", err)
	}
	if kinds == nil {
		kinds = make([]Kind, len(header))
	}
	if len(kinds) != len(header) {
		return nil, fmt.Errorf("relation: %d kinds for %d header columns", len(kinds), len(header))
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		attrs[i] = Attribute{Name: h, Kind: kinds[i]}
	}
	r := New(name, NewSchema(attrs...))
	row := make([]Value, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for c, field := range rec {
			v, err := Parse(field, kinds[c])
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, header[c], err)
			}
			row[c] = v
		}
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// WriteCSV encodes the relation as CSV with a header record.
func WriteCSV(r *Relation, dst io.Writer) error {
	cw := csv.NewWriter(dst)
	if err := cw.Write(r.Schema().Names()); err != nil {
		return fmt.Errorf("relation: write CSV header: %w", err)
	}
	rec := make([]string, r.Cols())
	for i := 0; i < r.Rows(); i++ {
		for c := 0; c < r.Cols(); c++ {
			v := r.Value(i, c)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
