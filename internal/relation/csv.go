package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV decodes a relation from CSV. The first record is the header. Kinds
// gives the type per column; if nil, every column is read as a string.
func ReadCSV(name string, src io.Reader, kinds []Kind) (*Relation, error) {
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read CSV header: %w", err)
	}
	if kinds == nil {
		kinds = make([]Kind, len(header))
	}
	if len(kinds) != len(header) {
		return nil, fmt.Errorf("relation: %d kinds for %d header columns", len(kinds), len(header))
	}
	attrs := make([]Attribute, len(header))
	seen := make(map[string]bool, len(header))
	for i, h := range header {
		if seen[h] {
			// NewSchema treats duplicate names as a programming error and
			// panics; for data read from the outside world it is an input
			// error instead.
			return nil, fmt.Errorf("relation: duplicate CSV header column %q", h)
		}
		seen[h] = true
		attrs[i] = Attribute{Name: h, Kind: kinds[i]}
	}
	r := New(name, NewSchema(attrs...))
	row := make([]Value, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for c, field := range rec {
			v, err := Parse(field, kinds[c])
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, header[c], err)
			}
			row[c] = v
		}
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// WriteCSV encodes the relation as CSV with a header record.
func WriteCSV(r *Relation, dst io.Writer) error {
	cw := csv.NewWriter(dst)
	writeRecord := func(rec []string, what string) error {
		// encoding/csv renders a lone empty field as a blank line, which
		// readers then skip as empty — the record would vanish on a round
		// trip (found by FuzzCSVRoundTrip). Emit an explicit "" instead.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("relation: write CSV %s: %w", what, err)
			}
			if _, err := io.WriteString(dst, "\"\"\n"); err != nil {
				return fmt.Errorf("relation: write CSV %s: %w", what, err)
			}
			return nil
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write CSV %s: %w", what, err)
		}
		return nil
	}
	if err := writeRecord(r.Schema().Names(), "header"); err != nil {
		return err
	}
	rec := make([]string, r.Cols())
	for i := 0; i < r.Rows(); i++ {
		for c := 0; c < r.Cols(); c++ {
			v := r.Value(i, c)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := writeRecord(rec, fmt.Sprintf("row %d", i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
