package relation

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// MaxSupportedRows is the hard ceiling on relation cardinality: row
// indices are int32 throughout the partition layer (CSR rows/offsets
// arrays), so a relation past 2³¹−1 rows cannot be represented. The CSV
// readers enforce the ceiling at ingest — even under zero-value Limits —
// so oversized input is a typed *ErrInputTooLarge instead of a panic deep
// inside partition construction.
const MaxSupportedRows = 1<<31 - 1

// Limits bounds CSV ingestion. The zero value is unlimited up to the
// representation ceiling: MaxSupportedRows always applies, because rows
// beyond it are unrepresentable, not merely unwelcome. Limits exist
// because discovery inputs arrive from the outside world (CLI files,
// served request bodies) and an oversized relation must fail crisply with
// *ErrInputTooLarge before it turns into an unbounded allocation inside
// an exponential search.
type Limits struct {
	// MaxBytes bounds the raw CSV bytes consumed from the source (0 =
	// unlimited).
	MaxBytes int64
	// MaxRows bounds the data rows decoded, excluding the header (0 =
	// unlimited up to MaxSupportedRows; values above the ceiling are
	// clamped to it).
	MaxRows int
	// MaxFieldBytes bounds the length of any single field, header
	// included (0 = unlimited).
	MaxFieldBytes int
}

// Unlimited reports whether the limits impose no bound at all (beyond
// the always-on MaxSupportedRows representation ceiling).
func (l Limits) Unlimited() bool {
	return l.MaxBytes == 0 && l.MaxRows == 0 && l.MaxFieldBytes == 0
}

// effectiveMaxRows resolves the row bound the readers enforce: the
// configured MaxRows when set, clamped by the MaxSupportedRows ceiling
// that always applies.
func (l Limits) effectiveMaxRows() int {
	if l.MaxRows > 0 && l.MaxRows < MaxSupportedRows {
		return l.MaxRows
	}
	return MaxSupportedRows
}

// ErrInputTooLarge is returned by the limited CSV readers when an input
// exceeds a Limits bound. It is a typed error so callers (the deptool
// CLI, the server's request decoder) can distinguish "input too big" from
// "input malformed" and answer with the right exit code or HTTP status.
type ErrInputTooLarge struct {
	// What names the exceeded bound: "bytes", "rows" or "field bytes".
	What string
	// Limit is the configured bound; Got is the observed value that
	// exceeded it (for the byte bound, Got is Limit+1: reading stops at
	// the first excess byte).
	Limit, Got int64
}

func (e *ErrInputTooLarge) Error() string {
	return fmt.Sprintf("relation: input too large: %d %s exceeds limit %d", e.Got, e.What, e.Limit)
}

// limitedReader wraps src to fail with *ErrInputTooLarge once more than
// max bytes have been consumed (io.LimitedReader's silent EOF would
// instead truncate the relation mid-record).
type limitedReader struct {
	src io.Reader
	max int64
	n   int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if l.n > l.max {
		return 0, &ErrInputTooLarge{What: "bytes", Limit: l.max, Got: l.n}
	}
	// Read at most one probe byte past the limit: an input of exactly
	// max bytes must still reach its EOF, while the first excess byte
	// trips the bound.
	if rem := l.max - l.n + 1; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := l.src.Read(p)
	l.n += int64(n)
	if l.n > l.max {
		return n, &ErrInputTooLarge{What: "bytes", Limit: l.max, Got: l.n}
	}
	return n, err
}

// ReadCSV decodes a relation from CSV. The first record is the header. Kinds
// gives the type per column; if nil, every column is read as a string.
func ReadCSV(name string, src io.Reader, kinds []Kind) (*Relation, error) {
	return ReadCSVLimits(name, src, kinds, Limits{})
}

// ReadCSVLimits is ReadCSV under ingestion Limits: exceeding any bound
// stops the read with a wrapped *ErrInputTooLarge instead of allocating
// without bound.
func ReadCSVLimits(name string, src io.Reader, kinds []Kind, lim Limits) (*Relation, error) {
	if lim.MaxBytes > 0 {
		src = &limitedReader{src: src, max: lim.MaxBytes}
	}
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read CSV header: %w", err)
	}
	if err := checkFields(header, lim); err != nil {
		return nil, err
	}
	if kinds == nil {
		kinds = make([]Kind, len(header))
	}
	if len(kinds) != len(header) {
		return nil, fmt.Errorf("relation: %d kinds for %d header columns", len(kinds), len(header))
	}
	attrs := make([]Attribute, len(header))
	seen := make(map[string]bool, len(header))
	for i, h := range header {
		if seen[h] {
			// NewSchema treats duplicate names as a programming error and
			// panics; for data read from the outside world it is an input
			// error instead.
			return nil, fmt.Errorf("relation: duplicate CSV header column %q", h)
		}
		seen[h] = true
		attrs[i] = Attribute{Name: h, Kind: kinds[i]}
	}
	r := New(name, NewSchema(attrs...))
	row := make([]Value, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *ErrInputTooLarge
			if errors.As(err, &tooLarge) {
				return nil, fmt.Errorf("relation: read CSV line %d: %w", line, tooLarge)
			}
			return nil, fmt.Errorf("relation: read CSV line %d: %w", line, err)
		}
		if maxRows := lim.effectiveMaxRows(); line-1 > maxRows {
			return nil, fmt.Errorf("relation: read CSV: %w",
				&ErrInputTooLarge{What: "rows", Limit: int64(maxRows), Got: int64(line - 1)})
		}
		if err := checkFields(rec, lim); err != nil {
			return nil, err
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for c, field := range rec {
			v, err := Parse(field, kinds[c])
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, header[c], err)
			}
			row[c] = v
		}
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// checkFields enforces the per-field byte bound on one CSV record.
func checkFields(rec []string, lim Limits) error {
	if lim.MaxFieldBytes <= 0 {
		return nil
	}
	for _, f := range rec {
		if len(f) > lim.MaxFieldBytes {
			return fmt.Errorf("relation: read CSV: %w",
				&ErrInputTooLarge{What: "field bytes", Limit: int64(lim.MaxFieldBytes), Got: int64(len(f))})
		}
	}
	return nil
}

// ReadCSVAuto decodes a relation from in-memory CSV bytes under Limits,
// inferring column kinds: a column whose every non-null value parses as
// numeric becomes KindFloat, everything else stays KindString. It is the
// single type-inference path shared by the deptool CLI and the server's
// request decoder, so a relation posted to the server types identically
// to the same bytes read from a file.
func ReadCSVAuto(name string, data []byte, lim Limits) (*Relation, error) {
	if lim.MaxBytes > 0 && int64(len(data)) > lim.MaxBytes {
		return nil, fmt.Errorf("relation: read CSV: %w",
			&ErrInputTooLarge{What: "bytes", Limit: lim.MaxBytes, Got: int64(len(data))})
	}
	raw, err := ReadCSVLimits(name, bytes.NewReader(data), nil, lim)
	if err != nil {
		return nil, err
	}
	kinds := make([]Kind, raw.Cols())
	for c := 0; c < raw.Cols(); c++ {
		kinds[c] = KindFloat
		for row := 0; row < raw.Rows(); row++ {
			v := raw.Value(row, c)
			if v.IsNull() {
				continue
			}
			if _, err := Parse(v.Str(), KindFloat); err != nil {
				kinds[c] = KindString
				break
			}
		}
	}
	return ReadCSVLimits(name, bytes.NewReader(data), kinds, lim)
}

// WriteCSV encodes the relation as CSV with a header record.
func WriteCSV(r *Relation, dst io.Writer) error {
	cw := csv.NewWriter(dst)
	writeRecord := func(rec []string, what string) error {
		// encoding/csv renders a lone empty field as a blank line, which
		// readers then skip as empty — the record would vanish on a round
		// trip (found by FuzzCSVRoundTrip). Emit an explicit "" instead.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("relation: write CSV %s: %w", what, err)
			}
			if _, err := io.WriteString(dst, "\"\"\n"); err != nil {
				return fmt.Errorf("relation: write CSV %s: %w", what, err)
			}
			return nil
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write CSV %s: %w", what, err)
		}
		return nil
	}
	if err := writeRecord(r.Schema().Names(), "header"); err != nil {
		return err
	}
	rec := make([]string, r.Cols())
	for i := 0; i < r.Rows(); i++ {
		for c := 0; c < r.Cols(); c++ {
			v := r.Value(i, c)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := writeRecord(rec, fmt.Sprintf("row %d", i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
