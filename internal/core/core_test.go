package core

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	// FD + the 24 surveyed classes of Table 2.
	if len(reg) != 24 {
		t.Fatalf("registry size = %d, want 24", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.Acronym] {
			t.Errorf("duplicate acronym %s", e.Acronym)
		}
		seen[e.Acronym] = true
		if e.Name == "" || e.Year == 0 || e.Package == "" {
			t.Errorf("incomplete entry %+v", e)
		}
	}
	for _, want := range []string{"FD", "SFD", "PFD", "AFD", "NUD", "CFD", "eCFD", "MVD", "FHD", "AMVD",
		"MFD", "NED", "DD", "CDD", "CD", "PAC", "FFD", "MD", "CMD", "OFD", "OD", "DC", "SD", "CSD"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	e, ok := Lookup("CFD")
	if !ok || e.Year != 2007 {
		t.Errorf("Lookup(CFD) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("XYZ"); ok {
		t.Error("Lookup(XYZ) should fail")
	}
}

func TestFamilyTreeStructure(t *testing.T) {
	edges := FamilyTree()
	if len(edges) != 24 {
		t.Fatalf("edges = %d, want 24", len(edges))
	}
	// Every endpoint is registered.
	for _, e := range edges {
		if _, ok := Lookup(e.From); !ok {
			t.Errorf("edge source %s not registered", e.From)
		}
		if _, ok := Lookup(e.To); !ok {
			t.Errorf("edge target %s not registered", e.To)
		}
		if e.Section == "" || e.Witness == "" {
			t.Errorf("edge %s→%s lacks documentation", e.From, e.To)
		}
	}
	// "Mostly rooted in FDs": roots are FD and OFD.
	roots := Roots()
	if len(roots) != 2 || roots[0] != "FD" || roots[1] != "OFD" {
		t.Errorf("roots = %v, want [FD OFD]", roots)
	}
}

func TestEveryEdgeVerifies(t *testing.T) {
	// The heart of the reproduction: every Fig 1A arrow is executable and
	// empirically correct.
	failures := VerifyAll(42)
	for edge, err := range failures {
		t.Errorf("edge %s: %v", edge, err)
	}
	// A second seed for robustness.
	for edge, err := range VerifyAll(1234) {
		t.Errorf("edge %s (seed 1234): %v", edge, err)
	}
}

func TestDescendants(t *testing.T) {
	d := Descendants("FD")
	// FD reaches everything except the OFD/OD-only region... via eCFD→DC
	// it reaches DC, SD? No: SD hangs off OD, not DC. FD reaches:
	// SFD PFD AFD NUD CFD eCFD MVD FHD AMVD MFD NED DD CDD CD PAC FFD MD
	// CMD DC = 19.
	if len(d) != 19 {
		t.Errorf("FD descendants = %d (%v), want 19", len(d), d)
	}
	has := map[string]bool{}
	for _, x := range d {
		has[x] = true
	}
	if !has["DC"] || has["SD"] || has["OFD"] {
		t.Errorf("descendants wrong: %v", d)
	}
	dOFD := Descendants("OFD")
	if len(dOFD) != 4 { // OD, DC, SD, CSD
		t.Errorf("OFD descendants = %v, want 4", dOFD)
	}
}

func TestByImpactAndTimeline(t *testing.T) {
	impact := ByImpact()
	for i := 1; i < len(impact); i++ {
		if impact[i].Publications > impact[i-1].Publications {
			t.Fatal("impact not sorted")
		}
	}
	if impact[0].Acronym != "FFD" {
		t.Errorf("most-used = %s, want FFD (496 in Table 2)", impact[0].Acronym)
	}
	tl := Timeline()
	for i := 1; i < len(tl); i++ {
		if tl[i].Year < tl[i-1].Year {
			t.Fatal("timeline not sorted")
		}
	}
	if tl[0].Acronym != "FD" {
		t.Errorf("timeline starts at %s, want FD", tl[0].Acronym)
	}
}

func TestDifficultyMap(t *testing.T) {
	m := DifficultyMap()
	if len(m) < 15 {
		t.Fatalf("difficulty map has %d entries", len(m))
	}
	// The paper's headline contrasts: CSD tableau discovery is polynomial;
	// CFD tableau generation NP-complete.
	csd := DifficultyFor("CSD")
	if len(csd) != 1 || csd[0].Class != Polynomial {
		t.Errorf("CSD difficulty = %v", csd)
	}
	cfds := DifficultyFor("CFD")
	foundNP := false
	for _, p := range cfds {
		if p.Class == NPComplete {
			foundNP = true
		}
	}
	if !foundNP {
		t.Errorf("CFD should have an NP-complete entry: %v", cfds)
	}
	for _, p := range m {
		if _, ok := Lookup(p.Acronym); !ok {
			t.Errorf("difficulty entry for unregistered %s", p.Acronym)
		}
	}
}

func TestApplications(t *testing.T) {
	apps := Applications()
	if len(apps) != 8 {
		t.Fatalf("applications = %d, want 8 (Table 3 rows)", len(apps))
	}
	for _, app := range apps {
		for dt, classes := range app.Supported {
			for _, a := range classes {
				if _, ok := Lookup(a); !ok && a != "OFD" {
					t.Errorf("%s/%s lists unregistered %s", app.Name, dt, a)
				}
			}
		}
	}
}

func TestSuggestForCrossType(t *testing.T) {
	// The paper's §1 example: repairing over categorical + numerical data
	// → DCs.
	got := SuggestFor("Data repairing", Categorical, Numerical)
	hasDC := false
	for _, a := range got {
		if a == "DC" {
			hasDC = true
		}
	}
	if !hasDC {
		t.Errorf("SuggestFor(repairing, cat+num) = %v, want DC included", got)
	}
	if got := SuggestFor("Nonexistent"); got != nil {
		t.Errorf("unknown task: %v", got)
	}
	single := SuggestFor("Model fairness", Categorical)
	hasMVD := false
	for _, a := range single {
		if a == "MVD" {
			hasMVD = true
		}
	}
	// MVD plus its generalizations FHD and AMVD are all capable.
	if !hasMVD || len(single) != 3 {
		t.Errorf("fairness suggestion = %v, want MVD+FHD+AMVD", single)
	}
}

func TestRenderers(t *testing.T) {
	t2 := RenderTable2()
	if !strings.Contains(t2, "| categorical | SFD |") || !strings.Contains(t2, "Conditional Sequential") {
		t.Errorf("Table 2 render:\n%s", t2)
	}
	t3 := RenderTable3()
	if !strings.Contains(t3, "Violation detection") || !strings.Contains(t3, "MFD, CD, CDD, PAC") {
		t.Errorf("Table 3 render:\n%s", t3)
	}
	impact := RenderImpact()
	if !strings.Contains(impact, "FFD") || !strings.Contains(impact, "#") {
		t.Errorf("Fig 1B render:\n%s", impact)
	}
	tl := RenderTimeline()
	if !strings.Contains(tl, "1971") || !strings.Contains(tl, "2020") {
		t.Errorf("Fig 2 render:\n%s", tl)
	}
	diff := RenderDifficulty()
	if !strings.Contains(diff, "NP-complete") || !strings.Contains(diff, "PTIME") {
		t.Errorf("Fig 3 render:\n%s", diff)
	}
	tree := RenderTree()
	if !strings.Contains(tree, "FD (root)") || !strings.Contains(tree, "OFD (root)") {
		t.Errorf("Fig 1A render:\n%s", tree)
	}
	dot := DOT()
	if !strings.Contains(dot, "digraph familytree") || !strings.Contains(dot, "FD -> SFD") {
		t.Errorf("DOT render:\n%s", dot)
	}
}
