package core

import "sort"

// Application is one row of Table 3: a data-quality or schema task and the
// dependency classes supporting it per data-type branch.
type Application struct {
	// Name of the application task.
	Name string
	// Supported maps each data type to the supporting acronyms.
	Supported map[DataType][]string
	// Package is the implementing package in this library (empty for
	// documentation-only rows).
	Package string
}

// Applications returns the application matrix of Table 3.
func Applications() []Application {
	return []Application{
		{Name: "Violation detection", Package: "internal/apps/detect", Supported: map[DataType][]string{
			Categorical:   {"FD", "PFD", "CFD", "eCFD"},
			Heterogeneous: {"MFD", "CD", "CDD", "PAC"},
			Numerical:     {"OD", "DC", "SD", "CSD"},
		}},
		{Name: "Data repairing", Package: "internal/apps/repair", Supported: map[DataType][]string{
			Categorical:   {"FD", "CFD", "eCFD", "MVD"},
			Heterogeneous: {"NED", "DD", "CDD", "MD", "CMD"},
			Numerical:     {"DC", "OD"},
		}},
		{Name: "Query optimization", Package: "internal/apps/qopt", Supported: map[DataType][]string{
			Categorical:   {"SFD", "AFD", "NUD", "AMVD"},
			Heterogeneous: {"DD", "CD", "PAC", "FFD"},
			Numerical:     {"OD"},
		}},
		{Name: "Consistent query answering", Package: "internal/apps/cqa", Supported: map[DataType][]string{
			Categorical:   {"FD"},
			Heterogeneous: {"OFD", "DC"}, // as printed in Table 3
		}},
		{Name: "Data deduplication", Package: "internal/apps/dedup", Supported: map[DataType][]string{
			Categorical:   {"CFD"},
			Heterogeneous: {"DD", "CD", "FFD", "MD", "CMD"},
		}},
		{Name: "Data partition", Package: "internal/apps/dedup", Supported: map[DataType][]string{
			Heterogeneous: {"DD", "MD"},
		}},
		{Name: "Schema normalization", Package: "internal/apps/normalize", Supported: map[DataType][]string{
			Categorical: {"FD", "PFD", "MVD", "FHD"},
		}},
		{Name: "Model fairness", Package: "internal/apps/fairness", Supported: map[DataType][]string{
			Categorical: {"MVD"},
		}},
	}
}

// SuggestFor returns the dependency classes Table 3 recommends for a task
// over given data types — the §1 usage ("data repairing over categorical
// and numerical values → DCs").
func SuggestFor(task string, types ...DataType) []string {
	for _, app := range Applications() {
		if app.Name != task {
			continue
		}
		if len(types) == 0 {
			types = []DataType{Categorical, Heterogeneous, Numerical}
		}
		// A class can serve a data type if Table 3 lists it for that type,
		// or if it generalizes (is a family-tree descendant of) a listed
		// class — that is how DCs, which extend eCFDs and ODs, serve
		// repairing over categorical AND numerical data (§1, §1.6).
		capable := make([]map[string]bool, len(types))
		for i, dt := range types {
			capable[i] = map[string]bool{}
			for _, a := range app.Supported[dt] {
				capable[i][a] = true
				for _, d := range Descendants(a) {
					capable[i][d] = true
				}
			}
		}
		count := map[string]int{}
		var order []string
		for i := range types {
			for a := range capable[i] {
				if count[a] == 0 {
					order = append(order, a)
				}
				count[a]++
			}
		}
		sort.Strings(order)
		var out []string
		for _, a := range order {
			if count[a] == len(types) {
				out = append(out, a)
			}
		}
		return out
	}
	return nil
}
