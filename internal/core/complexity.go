package core

// Difficulty is a complexity classification from Fig 3 (assuming P ≠ NP
// and NP ≠ co-NP).
type Difficulty string

// The classes appearing in Fig 3.
const (
	Polynomial   Difficulty = "PTIME"
	NPComplete   Difficulty = "NP-complete"
	NPHard       Difficulty = "NP-hard"
	CoNPComplete Difficulty = "co-NP-complete"
	Exponential  Difficulty = "output-exponential"
	Open         Difficulty = "open/unreported"
)

// Problem is one entry of the difficulty map.
type Problem struct {
	// Acronym of the dependency class.
	Acronym string
	// Task is the analyzed problem ("discovery", "implication",
	// "tableau generation", "validation").
	Task string
	// Class is the difficulty.
	Class Difficulty
	// Note cites the paper's statement.
	Note string
}

// DifficultyMap returns the discovery/implication difficulty entries the
// paper collects in Fig 3 and §1.4.2.
func DifficultyMap() []Problem {
	return []Problem{
		{Acronym: "FD", Task: "discovery", Class: Exponential,
			Note: "minimal cover can be exponential in the number of attributes [72],[73],[83]"},
		{Acronym: "FD", Task: "key-size decision", Class: NPComplete,
			Note: "key of size < k is NP-complete [5]"},
		{Acronym: "SFD", Task: "discovery", Class: Polynomial,
			Note: "CORDS sampling, sample size independent of |r| [55]"},
		{Acronym: "AFD", Task: "discovery", Class: Exponential,
			Note: "TANE adaptation, level-wise lattice [53],[54]"},
		{Acronym: "CFD", Task: "tableau generation", Class: NPComplete,
			Note: "optimal tableau for a given FD is NP-complete [49]"},
		{Acronym: "CFD", Task: "implication", Class: CoNPComplete,
			Note: "implication for CFDs is co-NP-complete [11]"},
		{Acronym: "eCFD", Task: "implication", Class: CoNPComplete,
			Note: "unchanged from CFDs [14]"},
		{Acronym: "NED", Task: "discovery", Class: NPHard,
			Note: "NP-hard in the number of attributes [4]"},
		{Acronym: "DD", Task: "discovery", Class: Exponential,
			Note: "minimal DDs can be exponentially many [86]"},
		{Acronym: "DD", Task: "implication", Class: CoNPComplete,
			Note: "implication for DDs is co-NP-complete [86]"},
		{Acronym: "CDD", Task: "discovery", Class: NPComplete,
			Note: "no easier than CFD discovery (CDDs subsume CFDs) [66]"},
		{Acronym: "CD", Task: "validation (g3 ≤ e)", Class: NPComplete,
			Note: "error validation NP-complete [91]"},
		{Acronym: "CD", Task: "validation (conf ≥ c)", Class: NPComplete,
			Note: "confidence validation NP-complete [91]"},
		{Acronym: "MD", Task: "matching-key set decision", Class: NPComplete,
			Note: "concise matching-key set of size ≤ k NP-complete [90]"},
		{Acronym: "CMD", Task: "validation (g3 ≤ e)", Class: NPComplete,
			Note: "error-rate decision NP-complete [110]"},
		{Acronym: "OD", Task: "implication", Class: CoNPComplete,
			Note: "implication for ODs is co-NP-complete [101]"},
		{Acronym: "DC", Task: "discovery", Class: NPComplete,
			Note: "no easier than CFD discovery (DCs subsume eCFDs) [19]"},
		{Acronym: "SD", Task: "discovery (confidence)", Class: Polynomial,
			Note: "efficient confidence computation [48]"},
		{Acronym: "CSD", Task: "tableau discovery", Class: Polynomial,
			Note: "exact DP, quadratic in candidate intervals [48]"},
	}
}

// DifficultyFor returns the entries for one dependency class.
func DifficultyFor(acronym string) []Problem {
	var out []Problem
	for _, p := range DifficultyMap() {
		if p.Acronym == acronym {
			out = append(out, p)
		}
	}
	return out
}
