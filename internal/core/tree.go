package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"deptree/internal/deps/afd"
	"deptree/internal/deps/cd"
	"deptree/internal/deps/cfd"
	"deptree/internal/deps/dc"
	"deptree/internal/deps/dd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/ffd"
	"deptree/internal/deps/md"
	"deptree/internal/deps/mfd"
	"deptree/internal/deps/mvd"
	"deptree/internal/deps/ned"
	"deptree/internal/deps/nud"
	"deptree/internal/deps/od"
	"deptree/internal/deps/ofd"
	"deptree/internal/deps/pac"
	"deptree/internal/deps/pfd"
	"deptree/internal/deps/sd"
	"deptree/internal/deps/sfd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// Edge is one extension arrow of Fig 1A: To generalizes/subsumes From.
type Edge struct {
	// From and To are acronyms of Registry entries.
	From, To string
	// Section is the paper section explaining the edge.
	Section string
	// Witness describes the special-case embedding.
	Witness string
	// Equivalence marks edges whose embedding is an exact semantic
	// equivalence (special.Holds ⟺ embedded.Holds on every instance);
	// otherwise the edge is a one-directional implication (e.g. every FD
	// is an MVD, but not vice versa).
	Equivalence bool
	// check empirically verifies the edge on a seeded random instance,
	// returning a non-nil error on any disagreement.
	check func(seed int64) error
}

// FamilyTree returns the extension edges of Fig 1A, each with an
// executable verification.
func FamilyTree() []Edge {
	return []Edge{
		{From: "FD", To: "SFD", Section: "2.1.2", Witness: "FD ≡ SFD with strength s=1", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), sfd.FromFD(f).Holds(r)
				})
			}},
		{From: "FD", To: "PFD", Section: "2.2.2", Witness: "FD ≡ PFD with probability p=1", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), pfd.FromFD(f).Holds(r)
				})
			}},
		{From: "FD", To: "AFD", Section: "2.3.2", Witness: "FD ≡ AFD with error ε=0", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), afd.FromFD(f).Holds(r)
				})
			}},
		{From: "FD", To: "NUD", Section: "2.4.2", Witness: "FD ≡ NUD with weight k=1", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), nud.FromFD(f).Holds(r)
				})
			}},
		{From: "FD", To: "CFD", Section: "2.5.2", Witness: "FD ≡ CFD with all-wildcard pattern tuple", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), cfd.FromFD(f.LHS.Cols(), f.RHS.Cols(), r.Schema()).Holds(r)
				})
			}},
		{From: "CFD", To: "eCFD", Section: "2.5.5", Witness: "CFD ≡ eCFD restricted to '=' predicates", Equivalence: true,
			check: func(seed int64) error {
				// Syntactic inclusion: a classic CFD is literally an eCFD
				// with equality cells; evaluate one constant CFD both ways.
				r := gen.Table5()
				c := cfd.Must(r.Schema(), []string{"region", "name"}, []string{"address"},
					[]cfd.Cell{cfd.Const(relation.String("Jackson")), cfd.Wildcard(), cfd.Wildcard()})
				if c.Extended() {
					return fmt.Errorf("classic CFD misclassified as extended")
				}
				e := cfd.Must(r.Schema(), []string{"region", "name"}, []string{"address"},
					[]cfd.Cell{cfd.Pred(cfd.OpEq, relation.String("Jackson")), cfd.Wildcard(), cfd.Wildcard()})
				if c.Holds(r) != e.Holds(r) {
					return fmt.Errorf("CFD and '='-eCFD disagree")
				}
				return nil
			}},
		{From: "FD", To: "MVD", Section: "2.6.2", Witness: "every FD X→Y is the MVD X↠Y (Y-set size 1)",
			check: func(seed int64) error {
				rng := rand.New(rand.NewSource(seed))
				for trial := 0; trial < 20; trial++ {
					r := gen.Categorical(12, []int{2, 2, 2}, rng.Int63())
					f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
					m := mvd.FromFD(f.LHS, f.RHS, r.Cols(), r.Schema())
					if f.Holds(r) && !m.Holds(r) {
						return fmt.Errorf("FD holds but MVD embedding fails")
					}
				}
				return nil
			}},
		{From: "MVD", To: "FHD", Section: "2.6.5", Witness: "MVD ≡ FHD with a single block (k=1)", Equivalence: true,
			check: func(seed int64) error {
				rng := rand.New(rand.NewSource(seed))
				for trial := 0; trial < 20; trial++ {
					r := gen.Categorical(12, []int{2, 2, 2}, rng.Int63())
					m := mvd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
					if m.Holds(r) != mvd.FromMVD(m).Holds(r) {
						return fmt.Errorf("MVD and single-block FHD disagree")
					}
				}
				return nil
			}},
		{From: "MVD", To: "AMVD", Section: "2.6.6", Witness: "MVD ≡ AMVD with accuracy ε=0", Equivalence: true,
			check: func(seed int64) error {
				rng := rand.New(rand.NewSource(seed))
				for trial := 0; trial < 20; trial++ {
					r := gen.Categorical(12, []int{2, 2, 2}, rng.Int63())
					m := mvd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
					if m.Holds(r) != mvd.FromMVDExact(m).Holds(r) {
						return fmt.Errorf("MVD and ε=0 AMVD disagree")
					}
				}
				return nil
			}},
		{From: "CFD", To: "CDD", Section: "3.3.5", Witness: "constant-condition CFD ≡ CDD with distance-0 functions", Equivalence: true,
			check: func(seed int64) error {
				r := mutateTable5(seed)
				c := cfd.Must(r.Schema(), []string{"region", "name"}, []string{"address"},
					[]cfd.Cell{cfd.Const(relation.String("Jackson")), cfd.Wildcard(), cfd.Wildcard()})
				conv, err := dd.FromCFD(c)
				if err != nil {
					return err
				}
				if c.Holds(r) != conv.Holds(r) {
					return fmt.Errorf("CFD and CDD embedding disagree")
				}
				return nil
			}},
		{From: "DD", To: "CDD", Section: "3.3.5", Witness: "DD ≡ CDD with empty condition", Equivalence: true,
			check: func(seed int64) error {
				return checkHet(seed, func(r *relation.Relation, n ned.NED) (bool, bool) {
					d := dd.FromNED(n)
					return d.Holds(r), dd.FromDD(d).Holds(r)
				})
			}},
		{From: "FD", To: "MFD", Section: "3.1.2", Witness: "FD ≡ MFD with distance threshold δ=0", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), mfd.FromFD(f).Holds(r)
				})
			}},
		{From: "MFD", To: "NED", Section: "3.2.2", Witness: "MFD ≡ NED with LHS thresholds α=0", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					m := mfd.FromFD(f)
					return m.Holds(r), ned.FromMFD(m).Holds(r)
				})
			}},
		{From: "NED", To: "DD", Section: "3.3.2", Witness: "NED ≡ DD with all-'similar' (≤) differential functions", Equivalence: true,
			check: func(seed int64) error {
				return checkHet(seed, func(r *relation.Relation, n ned.NED) (bool, bool) {
					return n.Holds(r), dd.FromNED(n).Holds(r)
				})
			}},
		{From: "NED", To: "CD", Section: "3.4.2", Witness: "NED ≡ CD with single-attribute similarity functions", Equivalence: true,
			check: func(seed int64) error {
				return checkHet(seed, func(r *relation.Relation, n ned.NED) (bool, bool) {
					c, err := cd.FromNED(n)
					if err != nil {
						panic(err)
					}
					return n.Holds(r), c.Holds(r)
				})
			}},
		{From: "NED", To: "PAC", Section: "3.5.2", Witness: "NED ≡ PAC with confidence δ=1", Equivalence: true,
			check: func(seed int64) error {
				return checkHet(seed, func(r *relation.Relation, n ned.NED) (bool, bool) {
					return n.Holds(r), pac.FromNED(n).Holds(r)
				})
			}},
		{From: "FD", To: "FFD", Section: "3.6.2", Witness: "FD ≡ FFD with crisp {0,1} resemblance", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), ffd.FromFD(f).Holds(r)
				})
			}},
		{From: "FD", To: "MD", Section: "3.7.2", Witness: "FD ≡ MD with equality similarity operators", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					return f.Holds(r), md.FromFD(f).Holds(r)
				})
			}},
		{From: "MD", To: "CMD", Section: "3.7.5", Witness: "MD ≡ CMD with empty condition", Equivalence: true,
			check: func(seed int64) error {
				return checkCat(seed, func(r *relation.Relation, f fd.FD) (bool, bool) {
					m := md.FromFD(f)
					return m.Holds(r), md.FromMD(m).Holds(r)
				})
			}},
		{From: "OFD", To: "OD", Section: "4.2.2", Witness: "pointwise OFD ≡ OD with all marks A≤", Equivalence: true,
			check: func(seed int64) error {
				return checkNum(seed, func(r *relation.Relation) (bool, bool) {
					o := ofd.Must(r.Schema(), []string{"seq"}, []string{"value"}, ofd.Pointwise)
					return o.Holds(r), od.FromOFD(o).Holds(r)
				})
			}},
		{From: "OD", To: "DC", Section: "4.3.2", Witness: "OD ≡ DC set ¬(X ordered ∧ Y disordered)", Equivalence: true,
			check: func(seed int64) error {
				return checkNum(seed, func(r *relation.Relation) (bool, bool) {
					o := od.OD{
						LHS:    []od.Marked{od.Asc(r.Schema(), "seq")},
						RHS:    []od.Marked{od.Asc(r.Schema(), "value")},
						Schema: r.Schema(),
					}
					return o.Holds(r), dc.HoldAll(dc.FromOD(o), r)
				})
			}},
		{From: "eCFD", To: "DC", Section: "4.3.3", Witness: "eCFD ≡ DC set with pattern predicates on t_α", Equivalence: true,
			check: func(seed int64) error {
				r := mutateTable5(seed)
				e := cfd.Must(r.Schema(), []string{"rate", "name"}, []string{"address"},
					[]cfd.Cell{cfd.Pred(cfd.OpLe, relation.Int(200)), cfd.Wildcard(), cfd.Wildcard()})
				if e.Holds(r) != dc.HoldAll(dc.FromECFD(e), r) {
					return fmt.Errorf("eCFD and DC embedding disagree")
				}
				return nil
			}},
		{From: "OD", To: "SD", Section: "4.4.2", Witness: "OD ≡ SD with gap [0,∞) or (−∞,0] on duplicate-free X", Equivalence: true,
			check: func(seed int64) error {
				return checkNum(seed, func(r *relation.Relation) (bool, bool) {
					o := od.OD{
						LHS:    []od.Marked{od.Asc(r.Schema(), "seq")},
						RHS:    []od.Marked{od.Asc(r.Schema(), "value")},
						Schema: r.Schema(),
					}
					s := sd.Must(r.Schema(), []string{"seq"}, "value", sd.Increasing())
					return o.Holds(r), s.Holds(r)
				})
			}},
		{From: "SD", To: "CSD", Section: "4.4.5", Witness: "SD ≡ CSD with empty tableau", Equivalence: true,
			check: func(seed int64) error {
				return checkNum(seed, func(r *relation.Relation) (bool, bool) {
					s := sd.Must(r.Schema(), []string{"seq"}, "value", sd.Interval{Lo: 9, Hi: 11})
					return s.Holds(r), sd.FromSD(s).Holds(r)
				})
			}},
	}
}

// checkCat verifies an equivalence on random categorical instances: the
// special dependency and its embedding must agree on Holds.
func checkCat(seed int64, pair func(r *relation.Relation, f fd.FD) (bool, bool)) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 20; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		a, b := pair(r, f)
		if a != b {
			return fmt.Errorf("trial %d: special=%v embedded=%v", trial, a, b)
		}
	}
	return nil
}

// checkHet verifies an equivalence on heterogeneous hotel instances via a
// representative NED.
func checkHet(seed int64, pair func(r *relation.Relation, n ned.NED) (bool, bool)) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 15; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), VarietyRate: 0.3, ErrorRate: 0.2})
		s := r.Schema()
		n := ned.NED{
			LHS:    ned.Predicate{ned.T(s, "address", 2)},
			RHS:    ned.Predicate{ned.T(s, "region", 5)},
			Schema: s,
		}
		a, b := pair(r, n)
		if a != b {
			return fmt.Errorf("trial %d: special=%v embedded=%v", trial, a, b)
		}
	}
	return nil
}

// checkNum verifies an equivalence on numerical series instances.
func checkNum(seed int64, pair func(r *relation.Relation) (bool, bool)) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 15; trial++ {
		r := gen.Series(12, 9, 11, 0.4, rng.Int63())
		a, b := pair(r)
		if a != b {
			return fmt.Errorf("trial %d: special=%v embedded=%v", trial, a, b)
		}
	}
	return nil
}

// mutateTable5 returns Table 5, randomly corrupted half the time so edge
// checks see both satisfying and violating instances.
func mutateTable5(seed int64) *relation.Relation {
	r := gen.Table5().Clone()
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 1 {
		col := r.Schema().MustIndex("address")
		r.SetValue(rng.Intn(r.Rows()), col, relation.String(fmt.Sprintf("corrupted %d", rng.Intn(10))))
	}
	return r
}

// VerifyEdge runs the edge's empirical check.
func VerifyEdge(e Edge, seed int64) error {
	if e.check == nil {
		return fmt.Errorf("edge %s→%s has no check", e.From, e.To)
	}
	return e.check(seed)
}

// VerifyAll checks every edge and returns the failures.
func VerifyAll(seed int64) map[string]error {
	out := map[string]error{}
	for _, e := range FamilyTree() {
		if err := VerifyEdge(e, seed); err != nil {
			out[e.From+"→"+e.To] = err
		}
	}
	return out
}

// Roots returns the acronyms with no inbound edge — the tree's roots
// ("mostly rooted in FDs": FD plus the order-branch root OFD).
func Roots() []string {
	hasIn := map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range FamilyTree() {
		hasIn[e.To] = true
		nodes[e.From] = true
		nodes[e.To] = true
	}
	var out []string
	for n := range nodes {
		if !hasIn[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Descendants returns every acronym reachable from the given one.
func Descendants(acronym string) []string {
	adj := map[string][]string{}
	for _, e := range FamilyTree() {
		adj[e.From] = append(adj[e.From], e.To)
	}
	visited := map[string]bool{}
	var stack []string
	stack = append(stack, acronym)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	var out []string
	for n := range visited {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DOT renders the family tree in Graphviz format, clustered by data type.
func DOT() string {
	var b strings.Builder
	b.WriteString("digraph familytree {\n  rankdir=BT;\n")
	byType := map[DataType][]Entry{}
	for _, e := range Registry() {
		byType[e.Type] = append(byType[e.Type], e)
	}
	for _, dt := range []DataType{Categorical, Heterogeneous, Numerical} {
		fmt.Fprintf(&b, "  subgraph cluster_%s {\n    label=%q;\n", dt, dt.String())
		for _, e := range byType[dt] {
			fmt.Fprintf(&b, "    %s [label=\"%s\\n%d\"];\n", e.Acronym, e.Acronym, e.Year)
		}
		b.WriteString("  }\n")
	}
	for _, e := range FamilyTree() {
		fmt.Fprintf(&b, "  %s -> %s [label=%q];\n", e.From, e.To, e.Section)
	}
	b.WriteString("}\n")
	return b.String()
}
