// Package core is the executable form of the paper's primary contribution:
// the family tree of data-dependency extensions (Fig 1A), the dependency
// index with publication impact (Table 2, Fig 1B), the proposal timeline
// (Fig 2), the discovery-difficulty map (Fig 3) and the application matrix
// (Table 3) — all as queryable data with renderers, plus executable
// verification of every extension edge.
package core

import "sort"

// DataType is the paper's top-level categorization (§1.3).
type DataType int

// The three data-type branches of the survey.
const (
	Categorical DataType = iota
	Heterogeneous
	Numerical
)

// String renders the data type.
func (d DataType) String() string {
	return [...]string{"categorical", "heterogeneous", "numerical"}[d]
}

// Entry is one dependency class of Table 2.
type Entry struct {
	// Acronym is the class tag used throughout ("FD", "CFD", ...).
	Acronym string
	// Name is the full name.
	Name string
	// Type is the data-type branch.
	Type DataType
	// Year of the defining proposal (Table 2 / Fig 2).
	Year int
	// Publications is the Google-Scholar usage count reported in Table 2 /
	// Fig 1B (0 = not reported).
	Publications int
	// DefinitionRefs, DiscoveryRefs, ApplicationRefs are the paper's
	// bracketed reference numbers.
	DefinitionRefs, DiscoveryRefs, ApplicationRefs []int
	// Package is the implementing package in this library.
	Package string
}

// Registry returns the dependency index of Table 2, extended with the root
// FD entry. Order follows the paper's table (categorical, heterogeneous,
// numerical).
func Registry() []Entry {
	return []Entry{
		{Acronym: "FD", Name: "Functional Dependencies", Type: Categorical, Year: 1971,
			DefinitionRefs: []int{24}, DiscoveryRefs: []int{53, 54, 112}, ApplicationRefs: []int{7, 24},
			Package: "internal/deps/fd"},
		{Acronym: "SFD", Name: "Soft Functional Dependencies", Type: Categorical, Year: 2004, Publications: 327,
			DefinitionRefs: []int{55}, DiscoveryRefs: []int{55, 60}, ApplicationRefs: []int{55, 60},
			Package: "internal/deps/sfd"},
		{Acronym: "PFD", Name: "Probabilistic Functional Dependencies", Type: Categorical, Year: 2009, Publications: 55,
			DefinitionRefs: []int{104}, DiscoveryRefs: []int{104}, ApplicationRefs: []int{104},
			Package: "internal/deps/pfd"},
		{Acronym: "AFD", Name: "Approximate Functional Dependencies", Type: Categorical, Year: 1995, Publications: 248,
			DefinitionRefs: []int{61}, DiscoveryRefs: []int{53, 54}, ApplicationRefs: []int{111},
			Package: "internal/deps/afd"},
		{Acronym: "NUD", Name: "Numerical Dependencies", Type: Categorical, Year: 1981,
			DefinitionRefs: []int{50}, ApplicationRefs: []int{22},
			Package: "internal/deps/nud"},
		{Acronym: "CFD", Name: "Conditional Functional Dependencies", Type: Categorical, Year: 2007, Publications: 404,
			DefinitionRefs: []int{11, 34}, DiscoveryRefs: []int{18, 35, 36, 49, 113}, ApplicationRefs: []int{25, 40},
			Package: "internal/deps/cfd"},
		{Acronym: "eCFD", Name: "Extended Conditional Functional Dependencies", Type: Categorical, Year: 2008, Publications: 76,
			DefinitionRefs: []int{14}, DiscoveryRefs: []int{114}, ApplicationRefs: []int{14},
			Package: "internal/deps/cfd"},
		{Acronym: "MVD", Name: "Multivalued Dependencies", Type: Categorical, Year: 1977, Publications: 471,
			DefinitionRefs: []int{30}, DiscoveryRefs: []int{82}, ApplicationRefs: []int{80, 30},
			Package: "internal/deps/mvd"},
		{Acronym: "FHD", Name: "Full Hierarchical Dependencies", Type: Categorical, Year: 1978, Publications: 191,
			DefinitionRefs: []int{27, 52},
			Package:        "internal/deps/mvd"},
		{Acronym: "AMVD", Name: "Approximate Multivalued Dependencies", Type: Categorical, Year: 2020, Publications: 1,
			DefinitionRefs: []int{59}, DiscoveryRefs: []int{59},
			Package: "internal/deps/mvd"},

		{Acronym: "MFD", Name: "Metric Functional Dependencies", Type: Heterogeneous, Year: 2009, Publications: 86,
			DefinitionRefs: []int{64}, DiscoveryRefs: []int{64}, ApplicationRefs: []int{64},
			Package: "internal/deps/mfd"},
		{Acronym: "NED", Name: "Neighborhood Dependencies", Type: Heterogeneous, Year: 2001, Publications: 15,
			DefinitionRefs: []int{4}, DiscoveryRefs: []int{4}, ApplicationRefs: []int{4},
			Package: "internal/deps/ned"},
		{Acronym: "DD", Name: "Differential Dependencies", Type: Heterogeneous, Year: 2011, Publications: 109,
			DefinitionRefs: []int{86}, DiscoveryRefs: []int{65, 86, 88, 89}, ApplicationRefs: []int{86, 93, 94, 95, 96},
			Package: "internal/deps/dd"},
		{Acronym: "CDD", Name: "Conditional Differential Dependencies", Type: Heterogeneous, Year: 2015, Publications: 3,
			DefinitionRefs: []int{66}, DiscoveryRefs: []int{66}, ApplicationRefs: []int{66},
			Package: "internal/deps/dd"},
		{Acronym: "CD", Name: "Comparable Dependencies", Type: Heterogeneous, Year: 2011, Publications: 18,
			DefinitionRefs: []int{91, 92}, DiscoveryRefs: []int{92}, ApplicationRefs: []int{92},
			Package: "internal/deps/cd"},
		{Acronym: "PAC", Name: "Probabilistic Approximate Constraints", Type: Heterogeneous, Year: 2003, Publications: 39,
			DefinitionRefs: []int{63}, DiscoveryRefs: []int{63}, ApplicationRefs: []int{63},
			Package: "internal/deps/pac"},
		{Acronym: "FFD", Name: "Fuzzy Functional Dependencies", Type: Heterogeneous, Year: 1988, Publications: 496,
			DefinitionRefs: []int{79}, DiscoveryRefs: []int{109, 108}, ApplicationRefs: []int{13, 56, 71},
			Package: "internal/deps/ffd"},
		{Acronym: "MD", Name: "Matching Dependencies", Type: Heterogeneous, Year: 2009, Publications: 197,
			DefinitionRefs: []int{33, 37}, DiscoveryRefs: []int{85, 87, 90}, ApplicationRefs: []int{37, 38, 41},
			Package: "internal/deps/md"},
		{Acronym: "CMD", Name: "Conditional Matching Dependencies", Type: Heterogeneous, Year: 2017, Publications: 15,
			DefinitionRefs: []int{110}, DiscoveryRefs: []int{110}, ApplicationRefs: []int{110},
			Package: "internal/deps/md"},

		{Acronym: "OFD", Name: "Ordered Functional Dependencies", Type: Numerical, Year: 1999, Publications: 27,
			DefinitionRefs: []int{76, 77}, ApplicationRefs: []int{75},
			Package: "internal/deps/ofd"},
		{Acronym: "OD", Name: "Order Dependencies", Type: Numerical, Year: 1982, Publications: 27,
			DefinitionRefs: []int{28}, DiscoveryRefs: []int{67, 99}, ApplicationRefs: []int{28, 100},
			Package: "internal/deps/od"},
		{Acronym: "DC", Name: "Denial Constraints", Type: Numerical, Year: 2005, Publications: 52,
			DefinitionRefs: []int{8, 9}, DiscoveryRefs: []int{10, 19, 21, 78}, ApplicationRefs: []int{8, 9, 20, 70, 98},
			Package: "internal/deps/dc"},
		{Acronym: "SD", Name: "Sequential Dependencies", Type: Numerical, Year: 2009, Publications: 97,
			DefinitionRefs: []int{48}, DiscoveryRefs: []int{48}, ApplicationRefs: []int{48},
			Package: "internal/deps/sd"},
		{Acronym: "CSD", Name: "Conditional Sequential Dependencies", Type: Numerical, Year: 2009, Publications: 97,
			DefinitionRefs: []int{48}, DiscoveryRefs: []int{48}, ApplicationRefs: []int{48},
			Package: "internal/deps/sd"},
	}
}

// Lookup finds an entry by acronym.
func Lookup(acronym string) (Entry, bool) {
	for _, e := range Registry() {
		if e.Acronym == acronym {
			return e, true
		}
	}
	return Entry{}, false
}

// ByImpact returns the registry entries sorted by publication count
// descending — the ranking of Fig 1B.
func ByImpact() []Entry {
	es := Registry()
	sort.SliceStable(es, func(i, j int) bool { return es[i].Publications > es[j].Publications })
	return es
}

// Timeline returns the entries sorted by proposal year — Fig 2.
func Timeline() []Entry {
	es := Registry()
	sort.SliceStable(es, func(i, j int) bool { return es[i].Year < es[j].Year })
	return es
}
