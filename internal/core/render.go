package core

import (
	"fmt"
	"strings"
)

// refs renders a reference list as "[11],[34]".
func refs(ns []int) string {
	if len(ns) == 0 {
		return "-"
	}
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprintf("[%d]", n)
	}
	return strings.Join(parts, ",")
}

// RenderTable2 regenerates Table 2 (the dependency index) as a Markdown
// table.
func RenderTable2() string {
	var b strings.Builder
	b.WriteString("| Type | Acronym | Dependency | Definition | Discovery | Application | Year | #Pubs |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, e := range Registry() {
		pubs := "-"
		if e.Publications > 0 {
			pubs = fmt.Sprintf("%d", e.Publications)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %d | %s |\n",
			e.Type, e.Acronym, e.Name, refs(e.DefinitionRefs), refs(e.DiscoveryRefs),
			refs(e.ApplicationRefs), e.Year, pubs)
	}
	return b.String()
}

// RenderTable3 regenerates Table 3 (the application matrix) as a Markdown
// table.
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("| Application | Categorical | Heterogeneous | Numerical |\n")
	b.WriteString("|---|---|---|---|\n")
	cell := func(app Application, dt DataType) string {
		if len(app.Supported[dt]) == 0 {
			return "-"
		}
		return strings.Join(app.Supported[dt], ", ")
	}
	for _, app := range Applications() {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
			app.Name, cell(app, Categorical), cell(app, Heterogeneous), cell(app, Numerical))
	}
	return b.String()
}

// RenderImpact regenerates Fig 1B (publication counts) as a text bar chart
// sorted by impact.
func RenderImpact() string {
	var b strings.Builder
	b.WriteString("Fig 1B — publications using each dependency (Google Scholar counts from Table 2)\n")
	max := 0
	for _, e := range Registry() {
		if e.Publications > max {
			max = e.Publications
		}
	}
	for _, e := range ByImpact() {
		if e.Publications == 0 {
			continue
		}
		width := e.Publications * 50 / max
		fmt.Fprintf(&b, "%6s %4d %s\n", e.Acronym, e.Publications, strings.Repeat("#", width))
	}
	return b.String()
}

// RenderTimeline regenerates Fig 2 (the proposal timeline) as text.
func RenderTimeline() string {
	var b strings.Builder
	b.WriteString("Fig 2 — timeline of data dependencies\n")
	lastYear := 0
	for _, e := range Timeline() {
		if e.Year != lastYear {
			fmt.Fprintf(&b, "%d:", e.Year)
			lastYear = e.Year
		} else {
			b.WriteString("     ")
		}
		fmt.Fprintf(&b, " %s (%s)\n", e.Acronym, e.Type)
	}
	return b.String()
}

// RenderDifficulty regenerates Fig 3 (the discovery-difficulty map) as a
// Markdown table.
func RenderDifficulty() string {
	var b strings.Builder
	b.WriteString("| Dependency | Problem | Difficulty | Source |\n|---|---|---|---|\n")
	for _, p := range DifficultyMap() {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", p.Acronym, p.Task, p.Class, p.Note)
	}
	return b.String()
}

// RenderTree renders Fig 1A as an indented text tree from each root, with
// the witness annotations.
func RenderTree() string {
	adj := map[string][]Edge{}
	for _, e := range FamilyTree() {
		adj[e.From] = append(adj[e.From], e)
	}
	var b strings.Builder
	b.WriteString("Fig 1A — family tree of extensions (child generalizes parent)\n")
	var walk func(node string, depth int, seen map[string]bool)
	walk = func(node string, depth int, seen map[string]bool) {
		for _, e := range adj[node] {
			fmt.Fprintf(&b, "%s%s -> %s  (%s, §%s)\n",
				strings.Repeat("  ", depth), e.From, e.To, e.Witness, e.Section)
			if !seen[e.To] {
				seen[e.To] = true
				walk(e.To, depth+1, seen)
			}
		}
	}
	for _, root := range Roots() {
		fmt.Fprintf(&b, "%s (root)\n", root)
		walk(root, 1, map[string]bool{})
	}
	return b.String()
}
