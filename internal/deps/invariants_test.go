// Cross-class contract tests: every one of the 24 dependency classes is
// exercised through the shared deps.Dependency interface on randomized
// instances, checking the invariants the rest of the library relies on:
//
//  1. Holds(r) ⟺ len(Violations(r, 1)) == 0
//  2. Violations(r, k) returns at most k witnesses, a prefix of the full
//     list
//  3. every violation references valid row indices
//  4. String() and Kind() are non-empty
//
// plus the measure⟺exactness equivalences tying the statistical
// extensions back to the FD root.
package deps_test

import (
	"math/rand"
	"testing"

	"deptree/internal/deps"
	"deptree/internal/deps/afd"
	"deptree/internal/deps/cd"
	"deptree/internal/deps/cfd"
	"deptree/internal/deps/dc"
	"deptree/internal/deps/dd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/ffd"
	"deptree/internal/deps/md"
	"deptree/internal/deps/mfd"
	"deptree/internal/deps/mvd"
	"deptree/internal/deps/ned"
	"deptree/internal/deps/nud"
	"deptree/internal/deps/od"
	"deptree/internal/deps/ofd"
	"deptree/internal/deps/pac"
	"deptree/internal/deps/pfd"
	"deptree/internal/deps/sd"
	"deptree/internal/deps/sfd"
	"deptree/internal/ext/speed"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// roster builds one representative dependency per class over the hotel
// schema (numerical classes use the series columns nights/subtotal).
func roster(r *relation.Relation) []deps.Dependency {
	s := r.Schema()
	f := fd.Must(s, []string{"address"}, []string{"region"})
	base := []deps.Dependency{
		f,
		sfd.SFD{LHS: f.LHS, RHS: f.RHS, MinStrength: 0.9, Schema: s},
		pfd.PFD{LHS: f.LHS, RHS: f.RHS, MinProb: 0.9, Schema: s},
		afd.AFD{LHS: f.LHS, RHS: f.RHS, MaxError: 0.05, Schema: s},
		nud.NUD{LHS: f.LHS, RHS: f.RHS, K: 1, Schema: s},
		cfd.Must(s, []string{"region"}, []string{"star"},
			[]cfd.Cell{cfd.Const(relation.String("Region01")), cfd.Wildcard()}),
		cfd.Must(s, []string{"price"}, []string{"star"},
			[]cfd.Cell{cfd.Pred(cfd.OpGe, relation.Int(400)), cfd.Wildcard()}),
		mvd.Must(s, []string{"address"}, []string{"region"}),
		mvd.FromMVD(mvd.Must(s, []string{"address"}, []string{"region"})),
		mvd.AMVD{MVD: mvd.Must(s, []string{"address"}, []string{"region"}), MaxSpurious: 0.1},
		mfd.Must(s, []string{"address"}, []string{"region"}, 4),
		ned.NED{
			LHS:    ned.Predicate{ned.T(s, "address", 1)},
			RHS:    ned.Predicate{ned.T(s, "region", 5)},
			Schema: s,
		},
		dd.DD{
			LHS:    dd.Pattern{dd.F(s, "address", dd.OpLe, 1)},
			RHS:    dd.Pattern{dd.F(s, "region", dd.OpLe, 5)},
			Schema: s,
		},
		dd.CDD{
			Conditions: []dd.Condition{{Col: s.MustIndex("source"), Value: relation.String("s1")}},
			DD: dd.DD{
				LHS:    dd.Pattern{dd.F(s, "address", dd.OpLe, 1)},
				RHS:    dd.Pattern{dd.F(s, "region", dd.OpLe, 5)},
				Schema: s,
			},
		},
		cd.CD{
			LHS:    []cd.SimilarityFunc{cd.Single(s, "address", 1)},
			RHS:    cd.Single(s, "region", 5),
			Schema: s,
		},
		pac.PAC{
			LHS:        []pac.Tolerance{pac.T(s, "price", 50)},
			RHS:        []pac.Tolerance{pac.T(s, "tax", 20)},
			Confidence: 0.8,
			Schema:     s,
		},
		ffd.FromFD(f),
		md.MD{
			LHS:    []md.SimAttr{md.Sim(s, "address", 1)},
			RHS:    []int{s.MustIndex("region")},
			Schema: s,
		},
		md.CMD{
			MD: md.MD{
				LHS:    []md.SimAttr{md.Sim(s, "address", 1)},
				RHS:    []int{s.MustIndex("region")},
				Schema: s,
			},
			Conditions: []md.Condition{{Col: s.MustIndex("source"), Value: relation.String("s1")}},
		},
		ofd.Must(s, []string{"nights"}, []string{"subtotal"}, ofd.Pointwise),
		od.OD{
			LHS:    []od.Marked{od.Asc(s, "nights")},
			RHS:    []od.Marked{od.Asc(s, "subtotal")},
			Schema: s,
		},
		od.LexOD{
			LHS:    []od.Marked{od.Asc(s, "nights")},
			RHS:    []od.Marked{od.Asc(s, "subtotal")},
			Schema: s,
		},
		dc.DC{
			Predicates: []dc.Predicate{
				dc.P(dc.Attr(dc.Alpha, s.MustIndex("price")), dc.OpLt, dc.Attr(dc.Beta, s.MustIndex("price"))),
				dc.P(dc.Attr(dc.Alpha, s.MustIndex("tax")), dc.OpGt, dc.Attr(dc.Beta, s.MustIndex("tax"))),
			},
			Schema: s,
		},
		sd.Must(s, []string{"nights"}, "subtotal", sd.Increasing()),
		sd.FromSD(sd.Must(s, []string{"nights"}, "subtotal", sd.Increasing())),
		speed.Constraint{Smin: -1000, Smax: 1000, TimeCol: s.MustIndex("nights"), ValueCol: s.MustIndex("subtotal"), Schema: s},
	}
	return base
}

func TestContractInvariantsAcrossAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	kinds := map[string]bool{}
	for trial := 0; trial < 12; trial++ {
		r := gen.Hotels(gen.HotelConfig{
			Rows: 20, Seed: rng.Int63(),
			ErrorRate: 0.3, VarietyRate: 0.3, DuplicateRate: 0.2,
		})
		for _, dep := range roster(r) {
			kinds[dep.Kind()] = true
			if dep.Kind() == "" || dep.String() == "" {
				t.Fatalf("%T: empty Kind/String", dep)
			}
			all := dep.Violations(r, 0)
			holds := dep.Holds(r)
			if holds != (len(all) == 0) {
				t.Fatalf("%s %s: Holds=%v but %d violations", dep.Kind(), dep, holds, len(all))
			}
			probe := dep.Violations(r, 1)
			if (len(probe) == 0) != (len(all) == 0) {
				t.Fatalf("%s: limit-1 probe disagrees with full enumeration", dep.Kind())
			}
			if len(all) >= 2 {
				two := dep.Violations(r, 2)
				if len(two) != 2 {
					t.Fatalf("%s: limit 2 returned %d", dep.Kind(), len(two))
				}
			}
			for _, v := range all {
				if len(v.Rows) == 0 {
					t.Fatalf("%s: violation without rows", dep.Kind())
				}
				for _, row := range v.Rows {
					if row < 0 || row >= r.Rows() {
						t.Fatalf("%s: row %d out of range", dep.Kind(), row)
					}
				}
				if v.String() == "" {
					t.Fatalf("%s: empty violation string", dep.Kind())
				}
			}
		}
	}
	// The roster really spans the classes.
	for _, want := range []string{"FD", "SFD", "PFD", "AFD", "NUD", "CFD", "eCFD",
		"MVD", "FHD", "AMVD", "MFD", "NED", "DD", "CDD", "CD", "PAC", "FFD",
		"MD", "CMD", "OFD", "OD", "DC", "SD", "CSD", "SC"} {
		if !kinds[want] {
			t.Errorf("roster missing class %s", want)
		}
	}
}

func TestMeasureExactnessEquivalences(t *testing.T) {
	// The statistical measures agree on what "exact" means: strength 1 ⟺
	// probability 1 ⟺ g3 0 ⟺ fanout ≤ 1 ⟺ the FD holds.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		holds := f.Holds(r)
		s := sfd.SFD{LHS: f.LHS, RHS: f.RHS, Schema: r.Schema()}
		p := pfd.PFD{LHS: f.LHS, RHS: f.RHS, Schema: r.Schema()}
		a := afd.AFD{LHS: f.LHS, RHS: f.RHS, Schema: r.Schema()}
		n := nud.NUD{LHS: f.LHS, RHS: f.RHS, K: 1, Schema: r.Schema()}
		if (s.Strength(r) == 1) != holds {
			t.Fatalf("trial %d: strength mismatch", trial)
		}
		if (p.Probability(r) == 1) != holds {
			t.Fatalf("trial %d: probability mismatch", trial)
		}
		if (a.G3(r) == 0) != holds {
			t.Fatalf("trial %d: g3 mismatch", trial)
		}
		if (n.MaxFanout(r) <= 1) != holds {
			t.Fatalf("trial %d: fanout mismatch", trial)
		}
	}
}

func TestMeasureMonotonicityUnderCleaning(t *testing.T) {
	// Removing a violating tuple never makes the g3 violation count grow.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		r := gen.Categorical(20, []int{3, 2}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		a := afd.AFD{LHS: f.LHS, RHS: f.RHS, Schema: r.Schema()}
		vs := a.Violations(r, 1)
		if len(vs) == 0 {
			continue
		}
		bad := vs[0].Rows[0]
		before := a.G3(r) * float64(r.Rows())
		smaller := r.Select(func(row int) bool { return row != bad })
		after := a.G3(smaller) * float64(smaller.Rows())
		if after > before+1e-9 {
			t.Fatalf("trial %d: removing a violating tuple raised the count %v -> %v",
				trial, before, after)
		}
	}
}

func TestThresholdMonotonicityAcrossClasses(t *testing.T) {
	// Loosening the threshold never turns a holding dependency into a
	// violated one: AFD in ε, SFD in s, PFD in p, NUD in k, PAC in δ.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), ErrorRate: 0.3})
		s := r.Schema()
		f := fd.Must(s, []string{"address"}, []string{"region"})
		for eps := 0.0; eps <= 1.0; eps += 0.25 {
			tight := afd.AFD{LHS: f.LHS, RHS: f.RHS, MaxError: eps, Schema: s}
			loose := afd.AFD{LHS: f.LHS, RHS: f.RHS, MaxError: eps + 0.25, Schema: s}
			if tight.Holds(r) && !loose.Holds(r) {
				t.Fatalf("AFD monotonicity broken at ε=%v", eps)
			}
		}
		for k := 1; k < 5; k++ {
			tight := nud.NUD{LHS: f.LHS, RHS: f.RHS, K: k, Schema: s}
			loose := nud.NUD{LHS: f.LHS, RHS: f.RHS, K: k + 1, Schema: s}
			if tight.Holds(r) && !loose.Holds(r) {
				t.Fatalf("NUD monotonicity broken at k=%d", k)
			}
		}
	}
}
