// Package deps defines the common contract every dependency class in the
// family tree implements: a dependency can be rendered, checked against a
// relation instance, and asked to enumerate its violations.
//
// The subpackages (fd, sfd, pfd, ..., dc, sd) implement the individual
// classes of the paper, one package per class, each with the special-case
// embeddings that witness the family-tree edges of Fig 1.
package deps

import (
	"fmt"
	"strings"

	"deptree/internal/relation"
)

// Dependency is a declared data-quality rule over a relation scheme.
type Dependency interface {
	// Kind returns the acronym of the dependency class ("FD", "CFD", ...).
	Kind() string
	// String renders the dependency in (approximately) the paper's notation.
	String() string
	// Holds reports whether the instance satisfies the dependency.
	Holds(r *relation.Relation) bool
	// Violations enumerates up to limit violations (limit <= 0: all).
	// Holds(r) is equivalent to len(Violations(r, 1)) == 0.
	Violations(r *relation.Relation, limit int) []Violation
}

// Violation is a witness that an instance does not satisfy a dependency:
// the offending rows plus a human-readable explanation.
type Violation struct {
	// Rows are the offending row indices (usually a pair, sometimes one row
	// for constant patterns or a whole group).
	Rows []int
	// Msg explains the violation in terms of the dependency.
	Msg string
}

// String renders the violation.
func (v Violation) String() string {
	rows := make([]string, len(v.Rows))
	for i, r := range v.Rows {
		rows[i] = fmt.Sprintf("t%d", r+1)
	}
	return fmt.Sprintf("[%s] %s", strings.Join(rows, ","), v.Msg)
}

// Pair builds the common two-row violation.
func Pair(i, j int, format string, args ...any) Violation {
	return Violation{Rows: []int{i, j}, Msg: fmt.Sprintf(format, args...)}
}

// HoldsByViolations implements Holds for types whose Violations is the
// source of truth.
func HoldsByViolations(d Dependency, r *relation.Relation) bool {
	return len(d.Violations(r, 1)) == 0
}
