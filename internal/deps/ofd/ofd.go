// Package ofd implements ordered functional dependencies X →^P Y (paper
// §4.1, Ng [76],[77]): attributes must be ordered consistently. Under the
// pointwise ordering, whenever t1[X] ≤ t2[X] on every X attribute,
// t1[Y] ≤ t2[Y] must hold on every Y attribute. The lexicographical
// variant of [76],[77] is provided as an option.
package ofd

import (
	"fmt"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/relation"
)

// Ordering selects how tuples are compared on an attribute list.
type Ordering int

const (
	// Pointwise requires ≤ on every attribute simultaneously.
	Pointwise Ordering = iota
	// Lexicographic compares attribute lists left to right.
	Lexicographic
)

// OFD is an ordered functional dependency X →^P Y.
type OFD struct {
	// LHS and RHS are the attribute sets X and Y (order matters for the
	// lexicographic variant; sets are used in ascending column order).
	LHS, RHS attrset.Set
	// Ordering is the comparison mode on both sides.
	Ordering Ordering
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// Must builds an OFD from attribute names, panicking on unknown names.
func Must(schema *relation.Schema, lhs, rhs []string, ord Ordering) OFD {
	l, err := schema.Indices(lhs...)
	if err != nil {
		panic(err)
	}
	r, err := schema.Indices(rhs...)
	if err != nil {
		panic(err)
	}
	return OFD{LHS: attrset.Of(l...), RHS: attrset.Of(r...), Ordering: ord, Schema: schema}
}

// Kind implements deps.Dependency.
func (o OFD) Kind() string { return "OFD" }

// String renders the OFD.
func (o OFD) String() string {
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	mode := "P"
	if o.Ordering == Lexicographic {
		mode = "L"
	}
	return fmt.Sprintf("%s ->^%s %s", o.LHS.Names(names), mode, o.RHS.Names(names))
}

// le reports whether row i ≤ row j on the columns under the ordering.
// For pointwise ordering the result is a partial order: ok is false when
// the rows are incomparable.
func le(r *relation.Relation, i, j int, cols []int, ord Ordering) (leq, ok bool) {
	switch ord {
	case Pointwise:
		for _, c := range cols {
			if r.Value(i, c).Compare(r.Value(j, c)) > 0 {
				return false, true
			}
		}
		return true, true
	default: // Lexicographic: total order.
		for _, c := range cols {
			if cmp := r.Value(i, c).Compare(r.Value(j, c)); cmp != 0 {
				return cmp < 0, true
			}
		}
		return true, true
	}
}

// Holds implements deps.Dependency.
func (o OFD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(o, r)
}

// Violations implements deps.Dependency: ordered pairs with
// t_i[X] ≤ t_j[X] but t_i[Y] ≰ t_j[Y].
func (o OFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	lhs, rhs := o.LHS.Cols(), o.RHS.Cols()
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			xle, _ := le(r, i, j, lhs, o.Ordering)
			if !xle {
				continue
			}
			yle, _ := le(r, i, j, rhs, o.Ordering)
			if !yle {
				out = append(out, deps.Pair(i, j,
					"%s ordered but %s not", o.LHS.Names(names), o.RHS.Names(names)))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
