package ofd

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestOFD1OnTable7(t *testing.T) {
	// ofd1: subtotal →^P taxes (paper §4.1.1): higher subtotal, higher taxes.
	r := gen.Table7()
	o := Must(r.Schema(), []string{"subtotal"}, []string{"taxes"}, Pointwise)
	if !o.Holds(r) {
		t.Errorf("ofd1 must hold on r7; violations: %v", o.Violations(r, 0))
	}
}

func TestOFDViolation(t *testing.T) {
	r := gen.Table7().Clone()
	// Lower t4's taxes below t3's: order broken.
	r.SetValue(3, r.Schema().MustIndex("taxes"), relation.Int(100))
	o := Must(r.Schema(), []string{"subtotal"}, []string{"taxes"}, Pointwise)
	vs := o.Violations(r, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 2 || vs[0].Rows[1] != 3 {
		t.Fatalf("violations = %v, want (t3,t4)", vs)
	}
	if got := o.Violations(r, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestPointwiseIncomparablePairsIgnored(t *testing.T) {
	// Pointwise ordering is partial: incomparable X pairs impose nothing.
	s := relation.NewSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("p", s, [][]relation.Value{
		{relation.Int(1), relation.Int(9), relation.Int(5)},
		{relation.Int(2), relation.Int(1), relation.Int(3)},
	})
	o := Must(s, []string{"a", "b"}, []string{"y"}, Pointwise)
	// (t1,t2) incomparable on (a,b): no constraint despite y decreasing.
	if !o.Holds(r) {
		t.Error("incomparable pairs must not violate a pointwise OFD")
	}
	lex := Must(s, []string{"a", "b"}, []string{"y"}, Lexicographic)
	// Lexicographically t1 < t2, y decreases: violation.
	if lex.Holds(r) {
		t.Error("lexicographic OFD must fail")
	}
}

func TestLexicographicOFD(t *testing.T) {
	r := gen.Table7()
	o := Must(r.Schema(), []string{"nights", "subtotal"}, []string{"subtotal", "taxes"}, Lexicographic)
	if !o.Holds(r) {
		t.Errorf("lexicographic OFD must hold on r7; violations: %v", o.Violations(r, 0))
	}
}

func TestTemporalApplication(t *testing.T) {
	// §4.1.2: experience increases with time.
	s := relation.NewSchema(
		relation.Attribute{Name: "year", Kind: relation.KindInt},
		relation.Attribute{Name: "experience", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("emp", s, [][]relation.Value{
		{relation.Int(2019), relation.Int(1)},
		{relation.Int(2020), relation.Int(2)},
		{relation.Int(2021), relation.Int(3)},
	})
	o := Must(s, []string{"year"}, []string{"experience"}, Pointwise)
	if !o.Holds(r) {
		t.Error("experience must increase with time")
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table7()
	o := Must(r.Schema(), []string{"subtotal"}, []string{"taxes"}, Pointwise)
	if o.Kind() != "OFD" {
		t.Error("Kind")
	}
	if got := o.String(); got != "subtotal ->^P taxes" {
		t.Errorf("String = %q", got)
	}
	l := Must(r.Schema(), []string{"subtotal"}, []string{"taxes"}, Lexicographic)
	if got := l.String(); got != "subtotal ->^L taxes" {
		t.Errorf("String = %q", got)
	}
}
