package dc

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/cfd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/od"
	"deptree/internal/deps/ofd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// dc1 is the paper's §4.3.1 example on r7:
// ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes > tβ.taxes).
func dc1(r *relation.Relation) DC {
	s := r.Schema()
	sub, tax := s.MustIndex("subtotal"), s.MustIndex("taxes")
	return DC{
		Predicates: []Predicate{
			P(Attr(Alpha, sub), OpLt, Attr(Beta, sub)),
			P(Attr(Alpha, tax), OpGt, Attr(Beta, tax)),
		},
		Schema: s,
	}
}

func TestDC1OnTable7(t *testing.T) {
	r := gen.Table7()
	d := dc1(r)
	if !d.Holds(r) {
		t.Errorf("dc1 must hold on r7; violations: %v", d.Violations(r, 0))
	}
	// Corrupt: t1 pays more taxes than t2 despite a lower subtotal.
	r2 := r.Clone()
	r2.SetValue(0, r.Schema().MustIndex("taxes"), relation.Int(100))
	vs := d.Violations(r2, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 0 || vs[0].Rows[1] != 1 {
		t.Fatalf("violations = %v, want (t1,t2)", vs)
	}
}

func TestConstantDC(t *testing.T) {
	// The §1.6 example: price must not be below 200 in region Chicago.
	r := gen.Table1()
	s := r.Schema()
	d := DC{
		Predicates: []Predicate{
			P(Attr(Alpha, s.MustIndex("region")), OpEq, Const(relation.String("Chicago"))),
			P(Attr(Alpha, s.MustIndex("price")), OpLt, Const(relation.Int(200))),
		},
		Schema: s,
	}
	if !d.SingleTuple() {
		t.Fatal("constant DC must be single-tuple")
	}
	if !d.Holds(r) {
		t.Errorf("no Chicago hotel under 200 in Table 1; violations: %v", d.Violations(r, 0))
	}
	r2 := r.Clone()
	r2.SetValue(4, s.MustIndex("price"), relation.Int(100))
	vs := d.Violations(r2, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 4 {
		t.Fatalf("violations = %v, want t5", vs)
	}
	if got := d.Violations(r2, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestODEmbeddingEdge(t *testing.T) {
	// Fig 1 edge OD → DC (dc2 in §4.3.2): the OD holds iff all its DCs do.
	r := gen.Table7()
	o := od.OD{
		LHS:    []od.Marked{od.Asc(r.Schema(), "nights")},
		RHS:    []od.Marked{od.Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	dcs := FromOD(o)
	if len(dcs) != 1 {
		t.Fatalf("FromOD produced %d DCs, want 1", len(dcs))
	}
	if o.Holds(r) != HoldAll(dcs, r) {
		t.Error("OD and its DC embedding disagree on r7")
	}
	rng := rand.New(rand.NewSource(241))
	for trial := 0; trial < 50; trial++ {
		rr := gen.Series(12, -5, 5, 0.5, rng.Int63())
		o2 := od.FromOFD(ofd.Must(rr.Schema(), []string{"seq"}, []string{"value"}, ofd.Pointwise))
		if got := HoldAll(FromOD(o2), rr); got != o2.Holds(rr) {
			t.Fatalf("trial %d: OD.Holds=%v but DC embedding=%v", trial, o2.Holds(rr), got)
		}
	}
}

func TestECFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge eCFD → DC (dc3 in §4.3.3): rate≤200, name=_ → address=_.
	r := gen.Table5()
	e := cfd.Must(r.Schema(), []string{"rate", "name"}, []string{"address"},
		[]cfd.Cell{cfd.Pred(cfd.OpLe, relation.Int(200)), cfd.Wildcard(), cfd.Wildcard()})
	dcs := FromECFD(e)
	if e.Holds(r) != HoldAll(dcs, r) {
		t.Error("eCFD and its DC embedding disagree on r5")
	}
	// Corrupt so the eCFD fails; the DCs must fail identically.
	r2 := r.Clone()
	r2.SetValue(3, r.Schema().MustIndex("rate"), relation.Int(189))
	r2.SetValue(3, r.Schema().MustIndex("address"), relation.String("elsewhere"))
	if e.Holds(r2) != HoldAll(dcs, r2) {
		t.Error("eCFD and DC embedding disagree on corrupted r5")
	}
}

func TestCFDEmbeddingRandomized(t *testing.T) {
	// Transitive FD → CFD → eCFD → DC on random instances, exercising
	// wildcard and constant patterns.
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		c := cfd.FromFD(f.LHS.Cols(), f.RHS.Cols(), r.Schema())
		if got := HoldAll(FromECFD(c), r); got != c.Holds(r) {
			t.Fatalf("trial %d: CFD.Holds=%v but DC embedding=%v", trial, c.Holds(r), got)
		}
	}
}

func TestConstantRHSCFDEmbedding(t *testing.T) {
	// CFD with a constant RHS cell: single-tuple DC component required.
	r := gen.Table5()
	c := cfd.Must(r.Schema(), []string{"region"}, []string{"rate"},
		[]cfd.Cell{cfd.Const(relation.String("Jackson")), cfd.Const(relation.Int(230))})
	dcs := FromECFD(c)
	if c.Holds(r) != HoldAll(dcs, r) {
		t.Error("constant-RHS CFD and DC embedding disagree (both should fail: t2 rate 250)")
	}
	if c.Holds(r) {
		t.Error("fixture expectation: the CFD should fail on r5")
	}
}

func TestDisjunctiveLHSEmbedding(t *testing.T) {
	r := gen.Table5()
	cell := cfd.AnyOf(
		cfd.Cond{Op: cfd.OpEq, Const: relation.String("Jackson")},
		cfd.Cond{Op: cfd.OpEq, Const: relation.String("El Paso")},
	)
	c := cfd.Must(r.Schema(), []string{"region"}, []string{"name"},
		[]cfd.Cell{cell, cfd.Wildcard()})
	dcs := FromECFD(c)
	if len(dcs) != 2 {
		t.Fatalf("disjunctive LHS should expand to 2 DCs, got %d", len(dcs))
	}
	if c.Holds(r) != HoldAll(dcs, r) {
		t.Error("disjunctive eCFD and DC embedding disagree")
	}
}

func TestOpNegation(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	vals := []relation.Value{relation.Int(1), relation.Int(2), relation.Int(3)}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %s", op)
		}
		for _, a := range vals {
			for _, b := range vals {
				if op.Eval(a, b) == op.Negate().Eval(a, b) {
					t.Errorf("%v %s %v and its negation agree", a, op, b)
				}
			}
		}
	}
}

func TestNullComparisons(t *testing.T) {
	null := relation.Null(relation.KindInt)
	if OpLt.Eval(null, relation.Int(1)) || OpGe.Eval(relation.Int(1), null) {
		t.Error("order comparisons with null must be false")
	}
	if !OpEq.Eval(null, null) {
		t.Error("null = null")
	}
}

func TestString(t *testing.T) {
	r := gen.Table7()
	d := dc1(r)
	if d.Kind() != "DC" {
		t.Error("Kind")
	}
	if got := d.String(); got != "¬(tα.subtotal<tβ.subtotal ∧ tα.taxes>tβ.taxes)" {
		t.Errorf("String = %q", got)
	}
}
