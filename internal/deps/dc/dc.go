// Package dc implements denial constraints (paper §4.3, Bertossi et al.
// [8],[9]): universally quantified negations of predicate conjunctions,
//
//	∀ t_α, t_β ∈ R : ¬(P_1 ∧ ... ∧ P_m),
//
// where each P_i compares a tuple attribute against another tuple attribute
// or a constant with an operator from {=, ≠, <, ≤, >, ≥}. DCs subsume ODs
// (§4.3.2) and eCFDs (§4.3.3), the two inbound edges of Fig 1; both
// embeddings are provided.
package dc

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/cfd"
	"deptree/internal/deps/od"
	"deptree/internal/relation"
)

// Op is a comparison operator of the negation-closed set.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Negate returns the complementary operator (the set is negation closed).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// Eval applies the operator to two values.
func (o Op) Eval(a, b relation.Value) bool {
	switch o {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	}
	if a.IsNull() || b.IsNull() {
		return false
	}
	cmp := a.Compare(b)
	switch o {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// TupleVar identifies which quantified tuple an operand refers to.
type TupleVar int

// The two tuple variables of a (binary) denial constraint.
const (
	Alpha TupleVar = iota
	Beta
)

// Operand is either a tuple attribute t.A or a constant.
type Operand struct {
	// IsConst selects the constant interpretation.
	IsConst bool
	// Tuple and Col identify t.A when IsConst is false.
	Tuple TupleVar
	Col   int
	// Const is the constant when IsConst is true.
	Const relation.Value
}

// Attr builds a tuple-attribute operand.
func Attr(t TupleVar, col int) Operand { return Operand{Tuple: t, Col: col} }

// Const builds a constant operand.
func Const(v relation.Value) Operand { return Operand{IsConst: true, Const: v} }

// value resolves the operand against a concrete pair of rows.
func (o Operand) value(r *relation.Relation, a, b int) relation.Value {
	if o.IsConst {
		return o.Const
	}
	if o.Tuple == Alpha {
		return r.Value(a, o.Col)
	}
	return r.Value(b, o.Col)
}

// String renders the operand.
func (o Operand) String(names []string) string {
	if o.IsConst {
		return fmt.Sprint(o.Const)
	}
	t := "tα"
	if o.Tuple == Beta {
		t = "tβ"
	}
	n := fmt.Sprintf("a%d", o.Col)
	if names != nil && o.Col < len(names) {
		n = names[o.Col]
	}
	return t + "." + n
}

// Predicate is one atom P_i = left op right.
type Predicate struct {
	Left  Operand
	Op    Op
	Right Operand
}

// P is shorthand for building a predicate.
func P(left Operand, op Op, right Operand) Predicate {
	return Predicate{Left: left, Op: op, Right: right}
}

// Eval evaluates the predicate for rows (a, b) bound to (t_α, t_β).
func (p Predicate) Eval(r *relation.Relation, a, b int) bool {
	return p.Op.Eval(p.Left.value(r, a, b), p.Right.value(r, a, b))
}

// String renders the predicate.
func (p Predicate) String(names []string) string {
	return fmt.Sprintf("%s%s%s", p.Left.String(names), p.Op, p.Right.String(names))
}

// DC is a denial constraint ¬(P_1 ∧ ... ∧ P_m).
type DC struct {
	Predicates []Predicate
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// Kind implements deps.Dependency.
func (d DC) Kind() string { return "DC" }

// String renders the DC in the paper's notation.
func (d DC) String() string {
	var names []string
	if d.Schema != nil {
		names = d.Schema.Names()
	}
	parts := make([]string, len(d.Predicates))
	for i, p := range d.Predicates {
		parts[i] = p.String(names)
	}
	return "¬(" + strings.Join(parts, " ∧ ") + ")"
}

// SingleTuple reports whether the DC mentions only t_α, in which case it is
// evaluated per row rather than per pair.
func (d DC) SingleTuple() bool {
	for _, p := range d.Predicates {
		if (!p.Left.IsConst && p.Left.Tuple == Beta) || (!p.Right.IsConst && p.Right.Tuple == Beta) {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency.
func (d DC) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(d, r)
}

// Violations implements deps.Dependency: rows (single-tuple DCs) or ordered
// row pairs (binary DCs) on which every predicate holds simultaneously.
func (d DC) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	if d.SingleTuple() {
		for i := 0; i < r.Rows(); i++ {
			if d.allTrue(r, i, i) {
				out = append(out, deps.Violation{Rows: []int{i}, Msg: "tuple satisfies all denied predicates"})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
		return out
	}
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			if d.allTrue(r, i, j) {
				out = append(out, deps.Pair(i, j, "pair satisfies all denied predicates"))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

func (d DC) allTrue(r *relation.Relation, a, b int) bool {
	for _, p := range d.Predicates {
		if !p.Eval(r, a, b) {
			return false
		}
	}
	return true
}

// FromOD embeds an order dependency as denial constraints (Fig 1: OD → DC):
// one DC per RHS marked attribute,
//
//	¬( t_α.X ordered ∧ t_α.B strictly-violates-order t_β.B ).
func FromOD(o od.OD) []DC {
	var lhs []Predicate
	for _, m := range o.LHS {
		op := OpLe
		if m.Desc {
			op = OpGe
		}
		lhs = append(lhs, P(Attr(Alpha, m.Col), op, Attr(Beta, m.Col)))
	}
	var out []DC
	for _, m := range o.RHS {
		bad := OpGt // ascending RHS violated when t_α.B > t_β.B
		if m.Desc {
			bad = OpLt
		}
		preds := append(append([]Predicate{}, lhs...), P(Attr(Alpha, m.Col), bad, Attr(Beta, m.Col)))
		out = append(out, DC{Predicates: preds, Schema: o.Schema})
	}
	return out
}

// FromECFD embeds a CFD or eCFD as denial constraints (Fig 1: eCFD → DC,
// and transitively FD → CFD → eCFD → DC). For each X attribute the pair
// must agree (t_α.A = t_β.A) and t_α must satisfy the pattern condition;
// for each Y attribute, one DC denies disagreement (wildcard cells) or a
// failed RHS condition (predicate cells — the condition appears negated,
// so disjunctive RHS cells expand into one conjunct per disjunct).
// Disjunctive LHS cells expand into the cross product of their disjuncts,
// one DC per combination.
func FromECFD(c cfd.CFD) []DC {
	// Build the common LHS predicate alternatives: agreement plus per-cell
	// conditions (cross product over disjunctive cells).
	lhsAlternatives := [][]Predicate{{}}
	for k, col := range c.X {
		// Pair agreement on X.
		for i := range lhsAlternatives {
			lhsAlternatives[i] = append(lhsAlternatives[i], P(Attr(Alpha, col), OpEq, Attr(Beta, col)))
		}
		cell := c.Pattern[k]
		if cell.IsWildcard() {
			continue
		}
		var expanded [][]Predicate
		for _, alt := range lhsAlternatives {
			for _, cond := range cell.Conds {
				withCond := append(append([]Predicate{}, alt...),
					P(Attr(Alpha, col), cfdOpToDC(cond.Op), Const(cond.Const)))
				expanded = append(expanded, withCond)
			}
		}
		lhsAlternatives = expanded
	}
	var out []DC
	for k, col := range c.Y {
		cell := c.Pattern[len(c.X)+k]
		// Pair component: matching tuples that agree on X must agree on Y.
		for _, alt := range lhsAlternatives {
			preds := append(append([]Predicate{}, alt...), P(Attr(Alpha, col), OpNe, Attr(Beta, col)))
			out = append(out, DC{Predicates: preds, Schema: c.Schema})
		}
		if cell.IsWildcard() {
			continue
		}
		// Single-tuple component: a matching tuple must satisfy the RHS
		// condition. ¬cell is the conjunction of negated disjuncts — all on
		// t_α, yielding single-tuple DCs (cross product over disjunctive
		// LHS cells, conditions only, no pair agreement).
		for _, alt := range singleTupleLHS(c) {
			preds := append([]Predicate{}, alt...)
			for _, cond := range cell.Conds {
				preds = append(preds, P(Attr(Alpha, col), cfdOpToDC(cond.Op).Negate(), Const(cond.Const)))
			}
			out = append(out, DC{Predicates: preds, Schema: c.Schema})
		}
	}
	return out
}

// singleTupleLHS expands the X pattern cells into per-disjunct condition
// lists on t_α only (no pair-agreement predicates).
func singleTupleLHS(c cfd.CFD) [][]Predicate {
	alts := [][]Predicate{{}}
	for k, col := range c.X {
		cell := c.Pattern[k]
		if cell.IsWildcard() {
			continue
		}
		var expanded [][]Predicate
		for _, alt := range alts {
			for _, cond := range cell.Conds {
				withCond := append(append([]Predicate{}, alt...),
					P(Attr(Alpha, col), cfdOpToDC(cond.Op), Const(cond.Const)))
				expanded = append(expanded, withCond)
			}
		}
		alts = expanded
	}
	return alts
}

func cfdOpToDC(o cfd.Op) Op {
	switch o {
	case cfd.OpEq:
		return OpEq
	case cfd.OpNe:
		return OpNe
	case cfd.OpLt:
		return OpLt
	case cfd.OpLe:
		return OpLe
	case cfd.OpGt:
		return OpGt
	default:
		return OpGe
	}
}

// HoldAll reports whether every DC in the set holds — embeddings map one
// dependency to a set of DCs.
func HoldAll(dcs []DC, r *relation.Relation) bool {
	for _, d := range dcs {
		if !d.Holds(r) {
			return false
		}
	}
	return true
}
