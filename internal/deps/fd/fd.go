// Package fd implements classical functional dependencies X → Y
// (paper §1.1), the root of the family tree: if two tuples agree on X they
// must agree on Y.
//
// Beyond satisfaction and violation enumeration, the package provides the
// classical inference machinery (attribute closure under Armstrong's
// axioms, implication, minimal cover, candidate keys) that schema
// normalization (§2.6.4, 3NF/BCNF) builds on.
package fd

import (
	"fmt"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// FD is a functional dependency X → Y over column indices of a schema.
type FD struct {
	// LHS is the determinant attribute set X.
	LHS attrset.Set
	// RHS is the dependent attribute set Y.
	RHS attrset.Set
	// Schema names the attributes for rendering; validation only needs the
	// column indices.
	Schema *relation.Schema
}

// New builds an FD from attribute names, resolving them against the schema.
func New(schema *relation.Schema, lhs []string, rhs []string) (FD, error) {
	l, err := schema.Indices(lhs...)
	if err != nil {
		return FD{}, fmt.Errorf("fd: %w", err)
	}
	r, err := schema.Indices(rhs...)
	if err != nil {
		return FD{}, fmt.Errorf("fd: %w", err)
	}
	return FD{LHS: attrset.Of(l...), RHS: attrset.Of(r...), Schema: schema}, nil
}

// Must is New for statically-known dependencies; it panics on error.
func Must(schema *relation.Schema, lhs []string, rhs []string) FD {
	f, err := New(schema, lhs, rhs)
	if err != nil {
		panic(err)
	}
	return f
}

// Kind implements deps.Dependency.
func (f FD) Kind() string { return "FD" }

// String renders the FD as "X -> Y".
func (f FD) String() string {
	names := f.names()
	return fmt.Sprintf("%s -> %s", f.LHS.Names(names), f.RHS.Names(names))
}

func (f FD) names() []string {
	if f.Schema != nil {
		return f.Schema.Names()
	}
	return nil
}

// Holds implements deps.Dependency using stripped partitions: X → Y holds
// iff |π_X| = |π_{X∪Y}| (TANE's criterion), which is O(n) after encoding.
func (f FD) Holds(r *relation.Relation) bool {
	px := partition.Build(r, f.LHS)
	pxy := partition.Build(r, f.LHS.Union(f.RHS))
	return partition.Refines(px, pxy)
}

// Violations implements deps.Dependency: pairs of tuples equal on X but
// unequal on Y.
func (f FD) Violations(r *relation.Relation, limit int) []deps.Violation {
	px := partition.Build(r, f.LHS)
	codes, _ := r.GroupCodes(f.RHS.Cols())
	pairs := px.ViolatingPairs(codes, limit)
	out := make([]deps.Violation, len(pairs))
	names := f.names()
	for i, p := range pairs {
		out[i] = deps.Pair(p[0], p[1],
			"agree on %s but differ on %s", f.LHS.Names(names), f.RHS.Names(names))
	}
	return out
}

// G3 returns the g3 error of the FD on r: the minimum fraction of tuples to
// remove so the FD holds (shared with AFDs, §2.3.1).
func (f FD) G3(r *relation.Relation) float64 {
	px := partition.Build(r, f.LHS)
	codes, _ := r.GroupCodes(f.RHS.Cols())
	return px.G3(codes)
}

// Trivial reports whether the FD is trivial (Y ⊆ X).
func (f FD) Trivial() bool { return f.RHS.SubsetOf(f.LHS) }

// ---- Inference: Armstrong machinery over sets of FDs ----

// Closure computes X+ under the given FDs: the set of attributes
// functionally determined by X.
func Closure(x attrset.Set, fds []FD) attrset.Set {
	closure := x
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.LHS.SubsetOf(closure) && !f.RHS.SubsetOf(closure) {
				closure = closure.Union(f.RHS)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether the FD set logically implies f (f ∈ F+), via the
// closure test RHS ⊆ LHS+.
func Implies(fds []FD, f FD) bool {
	return f.RHS.SubsetOf(Closure(f.LHS, fds))
}

// Equivalent reports whether two FD sets imply each other.
func Equivalent(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	return true
}

// MinimalCover computes a canonical cover of the FD set: singleton RHS, no
// extraneous LHS attributes, no redundant FDs. The result is equivalent to
// the input.
func MinimalCover(fds []FD) []FD {
	// 1. Split RHS into singletons.
	var work []FD
	for _, f := range fds {
		f.RHS.Minus(f.LHS).Each(func(a int) {
			work = append(work, FD{LHS: f.LHS, RHS: attrset.Single(a), Schema: f.Schema})
		})
	}
	// 2. Remove extraneous LHS attributes: A is extraneous in X→B if
	// B ∈ (X−A)+ under the current set.
	for i := range work {
		for {
			reduced := false
			lhs := work[i].LHS
			done := false
			lhs.Each(func(a int) {
				if done {
					return
				}
				smaller := lhs.Remove(a)
				if work[i].RHS.SubsetOf(Closure(smaller, work)) {
					work[i].LHS = smaller
					reduced = true
					done = true
				}
			})
			if !reduced {
				break
			}
		}
	}
	// 3. Remove redundant FDs.
	var out []FD
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}
	// Deduplicate identical FDs (splitting can create duplicates).
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f.LHS != out[i-1].LHS || f.RHS != out[i-1].RHS {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// CandidateKeys enumerates the candidate keys of a scheme with n attributes
// under the FD set: minimal X with X+ = R. Deciding whether a key smaller
// than k exists is NP-complete [5]; this exhaustive search is exponential in
// n and intended for the schema sizes of normalization workloads.
func CandidateKeys(n int, fds []FD) []attrset.Set {
	full := attrset.Full(n)
	// Attributes not on any RHS must be in every key; attributes on some
	// RHS but no LHS never help. Seed with the mandatory core.
	var inRHS, inLHS attrset.Set
	for _, f := range fds {
		inRHS = inRHS.Union(f.RHS.Minus(f.LHS))
		inLHS = inLHS.Union(f.LHS)
	}
	_ = inLHS
	core := full.Minus(inRHS)
	if Closure(core, fds) == full {
		return []attrset.Set{core}
	}
	// Enumerate supersets of the core in increasing size; a candidate that
	// contains an already-found key is not minimal and is skipped.
	rest := full.Minus(core)
	var subs []attrset.Set
	rest.Subsets(func(s attrset.Set) { subs = append(subs, s) })
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Len() != subs[j].Len() {
			return subs[i].Len() < subs[j].Len()
		}
		return subs[i] < subs[j]
	})
	var keys []attrset.Set
	for _, sub := range subs {
		x := core.Union(sub)
		minimal := true
		for _, k := range keys {
			if k.SubsetOf(x) {
				minimal = false
				break
			}
		}
		if minimal && Closure(x, fds) == full {
			keys = append(keys, x)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// IsSuperkey reports whether x determines all n attributes under fds.
func IsSuperkey(x attrset.Set, n int, fds []FD) bool {
	return Closure(x, fds) == attrset.Full(n)
}
