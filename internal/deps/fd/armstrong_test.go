package fd

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
)

func TestArmstrongSatisfiesExactlyImpliedFDs(t *testing.T) {
	fds := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1)},
		{LHS: attrset.Of(1, 2), RHS: attrset.Of(3)},
	}
	n := 4
	r, err := ArmstrongRelation(n, fds)
	if err != nil {
		t.Fatal(err)
	}
	// Every FD X→A: holds on r iff implied by the set.
	attrset.Full(n).Subsets(func(x attrset.Set) {
		for a := 0; a < n; a++ {
			if x.Has(a) {
				continue
			}
			f := FD{LHS: x, RHS: attrset.Single(a), Schema: r.Schema()}
			implied := Implies(fds, f)
			holds := f.Holds(r)
			if implied != holds {
				t.Errorf("FD %v: implied=%v but holds=%v", f, implied, holds)
			}
		}
	})
}

func TestArmstrongRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(2)
		var fds []FD
		for k := 0; k < 4; k++ {
			lhs := attrset.Set(rng.Intn(1<<n) | (1 << rng.Intn(n)))
			rhs := attrset.Single(rng.Intn(n))
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		r, err := ArmstrongRelation(n, fds)
		if err != nil {
			t.Fatal(err)
		}
		attrset.Full(n).Subsets(func(x attrset.Set) {
			for a := 0; a < n; a++ {
				if x.Has(a) {
					continue
				}
				f := FD{LHS: x, RHS: attrset.Single(a), Schema: r.Schema()}
				if Implies(fds, f) != f.Holds(r) {
					t.Fatalf("trial %d: FD %v disagreement", trial, f)
				}
			}
		})
	}
}

func TestArmstrongEmptyFDSet(t *testing.T) {
	r, err := ArmstrongRelation(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No non-trivial FD should hold.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a == b {
				continue
			}
			f := FD{LHS: attrset.Single(a), RHS: attrset.Single(b), Schema: r.Schema()}
			if f.Holds(r) {
				t.Errorf("spurious FD %v on FD-free Armstrong relation", f)
			}
		}
	}
}

func TestArmstrongBounds(t *testing.T) {
	if _, err := ArmstrongRelation(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ArmstrongRelation(17, nil); err == nil {
		t.Error("n=17 accepted")
	}
}
