package fd

import (
	"fmt"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/relation"
)

// ArmstrongRelation constructs an Armstrong relation for the FD set: an
// instance that satisfies exactly the FDs implied by the set (Beeri et al.
// [5] establish existence; this is the classical closed-set construction).
// The instance has one base row plus one row per distinct closed set C ⊂ R,
// agreeing with the base row exactly on C.
//
// Armstrong relations tie inference and discovery together: running TANE
// or FastFD on ArmstrongRelation(n, Σ) recovers a cover equivalent to Σ —
// a property the test suite checks. The construction enumerates all 2^n
// subsets; n is capped at 16.
func ArmstrongRelation(n int, fds []FD) (*relation.Relation, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("fd: Armstrong construction supports 1..16 attributes, got %d", n)
	}
	full := attrset.Full(n)
	// Distinct closed sets X+ over all X ⊆ R, excluding R itself (a row
	// agreeing with the base everywhere would be a duplicate).
	closedSet := map[attrset.Set]bool{}
	full.Subsets(func(x attrset.Set) {
		c := Closure(x, fds)
		if c != full {
			closedSet[c] = true
		}
	})
	closed := make([]attrset.Set, 0, len(closedSet))
	for c := range closedSet {
		closed = append(closed, c)
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i] < closed[j] })

	attrs := make([]relation.Attribute, n)
	for i := range attrs {
		attrs[i] = relation.Attribute{Name: fmt.Sprintf("a%d", i), Kind: relation.KindInt}
	}
	r := relation.New("armstrong", relation.NewSchema(attrs...))
	// Base row: all zeros.
	base := make([]relation.Value, n)
	for i := range base {
		base[i] = relation.Int(0)
	}
	if err := r.Append(base); err != nil {
		return nil, err
	}
	// One row per closed set: agree with base on C, fresh values elsewhere.
	fresh := 1
	for _, c := range closed {
		row := make([]relation.Value, n)
		for i := 0; i < n; i++ {
			if c.Has(i) {
				row[i] = relation.Int(0)
			} else {
				row[i] = relation.Int(fresh)
				fresh++
			}
		}
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}
