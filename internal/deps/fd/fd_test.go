package fd

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestFD1OnTable1(t *testing.T) {
	r := gen.Table1()
	f := Must(r.Schema(), []string{"address"}, []string{"region"})
	if f.Holds(r) {
		t.Error("fd1 must not hold on Table 1 (t3/t4 and t5/t6 violate)")
	}
	vs := f.Violations(r, 0)
	// Pairs that agree on address but differ on region: (t3,t4) and (t5,t6).
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	got := map[[2]int]bool{}
	for _, v := range vs {
		got[[2]int{v.Rows[0], v.Rows[1]}] = true
	}
	if !got[[2]int{2, 3}] || !got[[2]int{4, 5}] {
		t.Errorf("violating pairs = %v, want (t3,t4) and (t5,t6)", vs)
	}
}

func TestFD1HoldsAfterRestriction(t *testing.T) {
	r := gen.Table1()
	// On the first two tuples fd1 holds.
	sub := r.Select(func(row int) bool { return row < 2 })
	f := Must(r.Schema(), []string{"address"}, []string{"region"})
	if !f.Holds(sub) {
		t.Error("fd1 must hold on {t1,t2}")
	}
	if g3 := f.G3(sub); g3 != 0 {
		t.Errorf("g3 = %v, want 0", g3)
	}
}

func TestG3OnTable5(t *testing.T) {
	r := gen.Table5()
	addrRegion := Must(r.Schema(), []string{"address"}, []string{"region"})
	if g3 := addrRegion.G3(r); g3 != 0.25 {
		t.Errorf("g3(address→region, r5) = %v, want 1/4 (paper §2.3.1)", g3)
	}
	nameAddr := Must(r.Schema(), []string{"name"}, []string{"address"})
	if g3 := nameAddr.G3(r); g3 != 0.5 {
		t.Errorf("g3(name→address, r5) = %v, want 1/2 (paper §2.3.1)", g3)
	}
}

func TestViolationLimit(t *testing.T) {
	r := gen.Table1()
	f := Must(r.Schema(), []string{"address"}, []string{"region"})
	if vs := f.Violations(r, 1); len(vs) != 1 {
		t.Errorf("limit 1: got %d", len(vs))
	}
}

func TestTrivial(t *testing.T) {
	s := relation.Strings("a", "b")
	if !Must(s, []string{"a", "b"}, []string{"a"}).Trivial() {
		t.Error("ab→a is trivial")
	}
	if Must(s, []string{"a"}, []string{"b"}).Trivial() {
		t.Error("a→b is not trivial")
	}
}

func TestNewErrors(t *testing.T) {
	s := relation.Strings("a", "b")
	if _, err := New(s, []string{"nope"}, []string{"b"}); err == nil {
		t.Error("unknown LHS should fail")
	}
	if _, err := New(s, []string{"a"}, []string{"nope"}); err == nil {
		t.Error("unknown RHS should fail")
	}
}

func TestString(t *testing.T) {
	s := relation.Strings("address", "region")
	f := Must(s, []string{"address"}, []string{"region"})
	if got := f.String(); got != "address -> region" {
		t.Errorf("String = %q", got)
	}
	if f.Kind() != "FD" {
		t.Error("Kind")
	}
}

func TestClosure(t *testing.T) {
	// Classic example: R(A,B,C,D), A→B, B→C.
	fds := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1)},
		{LHS: attrset.Of(1), RHS: attrset.Of(2)},
	}
	if got := Closure(attrset.Of(0), fds); got != attrset.Of(0, 1, 2) {
		t.Errorf("A+ = %v", got)
	}
	if got := Closure(attrset.Of(3), fds); got != attrset.Of(3) {
		t.Errorf("D+ = %v", got)
	}
}

func TestImplies(t *testing.T) {
	fds := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1)},
		{LHS: attrset.Of(1), RHS: attrset.Of(2)},
	}
	if !Implies(fds, FD{LHS: attrset.Of(0), RHS: attrset.Of(2)}) {
		t.Error("transitivity should be implied")
	}
	if Implies(fds, FD{LHS: attrset.Of(2), RHS: attrset.Of(0)}) {
		t.Error("reverse should not be implied")
	}
	// Reflexivity and augmentation.
	if !Implies(nil, FD{LHS: attrset.Of(0, 1), RHS: attrset.Of(1)}) {
		t.Error("reflexivity")
	}
	if !Implies(fds, FD{LHS: attrset.Of(0, 3), RHS: attrset.Of(1, 3)}) {
		t.Error("augmentation")
	}
}

func TestMinimalCover(t *testing.T) {
	// A→BC, B→C, A→B, AB→C reduces to {A→B, B→C}.
	fds := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1, 2)},
		{LHS: attrset.Of(1), RHS: attrset.Of(2)},
		{LHS: attrset.Of(0), RHS: attrset.Of(1)},
		{LHS: attrset.Of(0, 1), RHS: attrset.Of(2)},
	}
	cover := MinimalCover(fds)
	if !Equivalent(cover, fds) {
		t.Fatal("cover not equivalent to input")
	}
	if len(cover) != 2 {
		t.Errorf("cover size = %d, want 2: %v", len(cover), cover)
	}
	for _, f := range cover {
		if f.RHS.Len() != 1 {
			t.Errorf("non-singleton RHS in cover: %v", f)
		}
	}
}

func TestMinimalCoverRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 5
		var fds []FD
		for k := 0; k < 6; k++ {
			lhs := attrset.Set(rng.Intn(1 << n))
			rhs := attrset.Set(rng.Intn(1 << n))
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		cover := MinimalCover(fds)
		if !Equivalent(cover, fds) {
			t.Fatalf("trial %d: cover not equivalent: %v vs %v", trial, cover, fds)
		}
		if len(cover) > 0 {
			// No FD in the cover is implied by the others.
			for i := range cover {
				rest := append(append([]FD{}, cover[:i]...), cover[i+1:]...)
				if Implies(rest, cover[i]) {
					t.Fatalf("trial %d: redundant FD %v in cover", trial, cover[i])
				}
			}
		}
	}
}

func TestCandidateKeys(t *testing.T) {
	// R(A,B,C): A→B, B→C. Key: {A}.
	fds := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1)},
		{LHS: attrset.Of(1), RHS: attrset.Of(2)},
	}
	keys := CandidateKeys(3, fds)
	if len(keys) != 1 || keys[0] != attrset.Of(0) {
		t.Errorf("keys = %v, want [{A}]", keys)
	}
	// R(A,B,C): A→BC, BC→A. Keys: {A} and {B,C} (different sizes).
	fds2 := []FD{
		{LHS: attrset.Of(0), RHS: attrset.Of(1, 2)},
		{LHS: attrset.Of(1, 2), RHS: attrset.Of(0)},
	}
	keys2 := CandidateKeys(3, fds2)
	if len(keys2) != 2 || keys2[0] != attrset.Of(0) || keys2[1] != attrset.Of(1, 2) {
		t.Errorf("keys = %v, want [{A},{B,C}]", keys2)
	}
	// No FDs: the whole scheme is the only key.
	keys3 := CandidateKeys(3, nil)
	if len(keys3) != 1 || keys3[0] != attrset.Full(3) {
		t.Errorf("keys = %v, want [R]", keys3)
	}
}

func TestCandidateKeysAreMinimalSuperkeys(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 5
		var fds []FD
		for k := 0; k < 5; k++ {
			lhs := attrset.Set(rng.Intn(1<<n) | 1)
			rhs := attrset.Set(rng.Intn(1 << n))
			if rhs.IsEmpty() {
				continue
			}
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		keys := CandidateKeys(n, fds)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no candidate key found", trial)
		}
		for _, k := range keys {
			if !IsSuperkey(k, n, fds) {
				t.Fatalf("trial %d: %v is not a superkey", trial, k)
			}
			k.ImmediateSubsets(func(sub attrset.Set) {
				if IsSuperkey(sub, n, fds) {
					t.Fatalf("trial %d: key %v not minimal (%v is a superkey)", trial, k, sub)
				}
			})
		}
		// Pairwise non-containment.
		for i := range keys {
			for j := range keys {
				if i != j && keys[i].SubsetOf(keys[j]) {
					t.Fatalf("trial %d: key %v ⊆ key %v", trial, keys[i], keys[j])
				}
			}
		}
	}
}

func TestHoldsMatchesPairwiseDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		r := gen.Categorical(30, []int{3, 3, 2}, rng.Int63())
		f := FD{LHS: attrset.Of(0), RHS: attrset.Of(1, 2), Schema: r.Schema()}
		want := true
	outer:
		for i := 0; i < r.Rows(); i++ {
			for j := i + 1; j < r.Rows(); j++ {
				if r.Value(i, 0).Equal(r.Value(j, 0)) {
					if !r.Value(i, 1).Equal(r.Value(j, 1)) || !r.Value(i, 2).Equal(r.Value(j, 2)) {
						want = false
						break outer
					}
				}
			}
		}
		if got := f.Holds(r); got != want {
			t.Fatalf("trial %d: Holds = %v, pairwise definition = %v", trial, got, want)
		}
	}
}
