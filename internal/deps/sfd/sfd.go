// Package sfd implements soft functional dependencies X →_s Y (paper §2.1,
// CORDS [55]): X determines Y not with certainty but with high probability,
// measured by counting domain values,
//
//	S(X → Y, r) = |dom(X)|_r / |dom(X,Y)|_r.
//
// An SFD holds when S ≥ s. FDs are exactly the SFDs with strength 1,
// witnessing the FD → SFD edge of the family tree.
package sfd

import (
	"fmt"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// SFD is a soft functional dependency X →_s Y.
type SFD struct {
	// LHS and RHS are the attribute sets X and Y.
	LHS, RHS attrset.Set
	// MinStrength is the threshold s ∈ (0, 1].
	MinStrength float64
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the special-case SFD with strength 1 (Fig 1:
// FD → SFD).
func FromFD(f fd.FD) SFD {
	return SFD{LHS: f.LHS, RHS: f.RHS, MinStrength: 1, Schema: f.Schema}
}

// Kind implements deps.Dependency.
func (s SFD) Kind() string { return "SFD" }

// String renders the SFD in the paper's notation.
func (s SFD) String() string {
	var names []string
	if s.Schema != nil {
		names = s.Schema.Names()
	}
	return fmt.Sprintf("%s ->_{s=%.3g} %s", s.LHS.Names(names), s.MinStrength, s.RHS.Names(names))
}

// Strength computes S(X → Y, r) = |dom(X)| / |dom(X,Y)|. An empty relation
// has strength 1 by convention (no evidence against the dependency).
func (s SFD) Strength(r *relation.Relation) float64 {
	if r.Rows() == 0 {
		return 1
	}
	domX := r.DistinctCount(s.LHS.Cols())
	domXY := r.DistinctCount(s.LHS.Union(s.RHS).Cols())
	return float64(domX) / float64(domXY)
}

// Holds implements deps.Dependency: S(X → Y, r) ≥ s.
func (s SFD) Holds(r *relation.Relation) bool {
	return s.Strength(r) >= s.MinStrength
}

// Violations implements deps.Dependency. When the strength is below the
// threshold, the witnesses are FD-violating pairs — the tuple pairs that
// inflate |dom(X,Y)| above |dom(X)|.
func (s SFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	if s.Holds(r) {
		return nil
	}
	px := partition.Build(r, s.LHS)
	codes, _ := r.GroupCodes(s.RHS.Cols())
	pairs := px.ViolatingPairs(codes, limit)
	out := make([]deps.Violation, len(pairs))
	for i, p := range pairs {
		out[i] = deps.Pair(p[0], p[1], "strength %.3f < %.3f", s.Strength(r), s.MinStrength)
	}
	return out
}
