package sfd

import (
	"math"
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
)

func TestStrengthOnTable5(t *testing.T) {
	r := gen.Table5()
	addrRegion := SFD{Schema: r.Schema()}
	addrRegion.LHS = addrRegion.LHS.Add(r.Schema().MustIndex("address"))
	addrRegion.RHS = addrRegion.RHS.Add(r.Schema().MustIndex("region"))
	if got := addrRegion.Strength(r); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("S(address→region, r5) = %v, want 2/3 (paper §2.1.1)", got)
	}
	nameAddr := SFD{Schema: r.Schema()}
	nameAddr.LHS = nameAddr.LHS.Add(r.Schema().MustIndex("name"))
	nameAddr.RHS = nameAddr.RHS.Add(r.Schema().MustIndex("address"))
	if got := nameAddr.Strength(r); got != 0.5 {
		t.Errorf("S(name→address, r5) = %v, want 1/2 (paper §2.1.1)", got)
	}
}

func TestHoldsThreshold(t *testing.T) {
	r := gen.Table5()
	s := SFD{MinStrength: 0.6, Schema: r.Schema()}
	s.LHS = s.LHS.Add(r.Schema().MustIndex("address"))
	s.RHS = s.RHS.Add(r.Schema().MustIndex("region"))
	if !s.Holds(r) {
		t.Error("strength 2/3 ≥ 0.6 should hold")
	}
	s.MinStrength = 0.7
	if s.Holds(r) {
		t.Error("strength 2/3 < 0.7 should not hold")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → SFD: for random instances, the FD holds iff its
	// strength-1 SFD embedding holds.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		s := FromFD(f)
		if f.Holds(r) != s.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but SFD(s=1).Holds=%v",
				trial, f.Holds(r), s.Holds(r))
		}
	}
}

func TestSFD1OnTable1(t *testing.T) {
	// sfd1: address →_1 region on r1. Strength < 1 because of t3/t4, t5/t6.
	r := gen.Table1()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	s := FromFD(f)
	if s.Holds(r) {
		t.Error("sfd1 with strength 1 must fail on Table 1")
	}
	if vs := s.Violations(r, 0); len(vs) != 2 {
		t.Errorf("violations = %d, want 2 pairs", len(vs))
	}
	if vs := s.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
	// On {t1, t2} strength is 1.
	sub := r.Select(func(row int) bool { return row < 2 })
	if !s.Holds(sub) {
		t.Error("sfd1 must hold on {t1,t2}")
	}
	if vs := s.Violations(sub, 0); vs != nil {
		t.Errorf("no violations expected, got %v", vs)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := gen.Table5().Select(func(int) bool { return false })
	s := SFD{MinStrength: 1, Schema: r.Schema()}
	s.LHS = s.LHS.Add(0)
	s.RHS = s.RHS.Add(1)
	if !s.Holds(r) {
		t.Error("empty relation satisfies every SFD")
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table5()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	s := FromFD(f)
	if s.Kind() != "SFD" {
		t.Error("Kind")
	}
	if got := s.String(); got != "address ->_{s=1} region" {
		t.Errorf("String = %q", got)
	}
}
