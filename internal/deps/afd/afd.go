// Package afd implements approximate functional dependencies X →_ε Y
// (paper §2.3, Kivinen & Mannila [61]): FDs that almost hold, with the g3
// error measure — the minimum fraction of tuples to remove so that X → Y
// holds exactly. An AFD holds when g3 ≤ ε. FDs are exactly the AFDs with
// ε = 0, witnessing the FD → AFD edge of the family tree.
package afd

import (
	"fmt"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// AFD is an approximate functional dependency X →_ε Y.
type AFD struct {
	// LHS and RHS are the attribute sets X and Y.
	LHS, RHS attrset.Set
	// MaxError is the threshold ε ∈ [0, 1).
	MaxError float64
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the special-case AFD with ε = 0 (Fig 1: FD → AFD).
func FromFD(f fd.FD) AFD {
	return AFD{LHS: f.LHS, RHS: f.RHS, MaxError: 0, Schema: f.Schema}
}

// Kind implements deps.Dependency.
func (a AFD) Kind() string { return "AFD" }

// String renders the AFD in the paper's notation.
func (a AFD) String() string {
	var names []string
	if a.Schema != nil {
		names = a.Schema.Names()
	}
	return fmt.Sprintf("%s ->_{ε=%.3g} %s", a.LHS.Names(names), a.MaxError, a.RHS.Names(names))
}

// G3 computes the error measure g3(X → Y, r) (paper §2.3.1).
func (a AFD) G3(r *relation.Relation) float64 {
	px := partition.Build(r, a.LHS)
	codes, _ := r.GroupCodes(a.RHS.Cols())
	return px.G3(codes)
}

// Holds implements deps.Dependency: g3(X → Y, r) ≤ ε.
func (a AFD) Holds(r *relation.Relation) bool {
	return a.G3(r) <= a.MaxError
}

// Violations implements deps.Dependency. When g3 exceeds ε, the witnesses
// are the minimum tuples whose removal would make the FD hold — the
// non-majority tuples of each X-group.
func (a AFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	g3 := a.G3(r)
	if g3 <= a.MaxError {
		return nil
	}
	px := partition.Build(r, a.LHS)
	codes, _ := r.GroupCodes(a.RHS.Cols())
	var out []deps.Violation
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		counts := make(map[int]int)
		for _, row := range class {
			counts[codes[row]]++
		}
		majority, best := -1, -1
		for y, c := range counts {
			if c > best {
				majority, best = y, c
			}
		}
		for _, row := range class {
			if codes[row] != majority {
				out = append(out, deps.Violation{
					Rows: []int{int(row)},
					Msg:  fmt.Sprintf("removal candidate (g3=%.3f > ε=%.3g)", g3, a.MaxError),
				})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
