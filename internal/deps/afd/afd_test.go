package afd

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
)

func mk(t *testing.T, lhs, rhs string) AFD {
	t.Helper()
	r := gen.Table5()
	a := AFD{Schema: r.Schema()}
	a.LHS = a.LHS.Add(r.Schema().MustIndex(lhs))
	a.RHS = a.RHS.Add(r.Schema().MustIndex(rhs))
	return a
}

func TestG3OnTable5(t *testing.T) {
	r := gen.Table5()
	// Paper §2.3.1: g3(address→region) = 1/4, g3(name→address) = 1/2.
	if got := mk(t, "address", "region").G3(r); got != 0.25 {
		t.Errorf("g3(address→region) = %v, want 1/4", got)
	}
	if got := mk(t, "name", "address").G3(r); got != 0.5 {
		t.Errorf("g3(name→address) = %v, want 1/2", got)
	}
}

func TestHoldsThreshold(t *testing.T) {
	r := gen.Table5()
	a := mk(t, "address", "region")
	a.MaxError = 0.25
	if !a.Holds(r) {
		t.Error("g3 1/4 ≤ 0.25 should hold")
	}
	a.MaxError = 0.2
	if a.Holds(r) {
		t.Error("g3 1/4 > 0.2 should not hold")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → AFD: FD holds iff the ε=0 embedding holds.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		a := FromFD(f)
		if f.Holds(r) != a.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but AFD(ε=0).Holds=%v",
				trial, f.Holds(r), a.Holds(r))
		}
	}
}

func TestViolationsCountMatchesG3(t *testing.T) {
	// The number of removal-candidate violations equals g3 · n.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		r := gen.Categorical(40, []int{4, 3}, rng.Int63())
		a := AFD{Schema: r.Schema()}
		a.LHS = a.LHS.Add(0)
		a.RHS = a.RHS.Add(1)
		g3 := a.G3(r)
		vs := a.Violations(r, 0)
		if got, want := len(vs), int(g3*float64(r.Rows())+0.5); got != want {
			t.Fatalf("trial %d: %d violations, g3·n = %d", trial, got, want)
		}
	}
}

func TestViolationLimit(t *testing.T) {
	r := gen.Table5()
	a := mk(t, "name", "address")
	if vs := a.Violations(r, 1); len(vs) != 1 {
		t.Errorf("limit 1: got %d", len(vs))
	}
}

func TestNoViolationsWhenHolds(t *testing.T) {
	r := gen.Table5()
	a := mk(t, "address", "region")
	a.MaxError = 0.5
	if vs := a.Violations(r, 0); vs != nil {
		t.Errorf("holds ⇒ no violations, got %v", vs)
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table5()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	a := FromFD(f)
	if a.Kind() != "AFD" {
		t.Error("Kind")
	}
	if got := a.String(); got != "address ->_{ε=0} region" {
		t.Errorf("String = %q", got)
	}
}
