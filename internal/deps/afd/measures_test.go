package afd

import (
	"math/rand"
	"testing"

	"deptree/internal/gen"
)

func TestG1G2OnTable5(t *testing.T) {
	r := gen.Table5()
	a := mk(t, "address", "region")
	// One violating pair (t3,t4) of 6 pairs; 2 involved tuples of 4.
	if got := a.G1(r); got != 1.0/6 {
		t.Errorf("g1 = %v, want 1/6", got)
	}
	if got := a.G2(r); got != 0.5 {
		t.Errorf("g2 = %v, want 1/2", got)
	}
	// name → address: name groups all 4 tuples; pairs violating: pairs
	// across the two addresses = 2·2 = 4 of 6; all 4 tuples involved.
	b := mk(t, "name", "address")
	if got := b.G1(r); got != 4.0/6 {
		t.Errorf("g1(name→address) = %v, want 2/3", got)
	}
	if got := b.G2(r); got != 1 {
		t.Errorf("g2(name→address) = %v, want 1", got)
	}
}

func TestMeasureOrderingG1G3G2(t *testing.T) {
	// Kivinen & Mannila: g1 ≤ g3 ≤ g2 on every instance.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		a := AFD{Schema: r.Schema()}
		a.LHS = a.LHS.Add(0)
		a.RHS = a.RHS.Add(1)
		g1, g3, g2 := a.G1(r), a.G3(r), a.G2(r)
		if g1 > g3+1e-12 || g3 > g2+1e-12 {
			t.Fatalf("trial %d: ordering broken g1=%v g3=%v g2=%v", trial, g1, g3, g2)
		}
		if (g1 == 0) != (g3 == 0) || (g3 == 0) != (g2 == 0) {
			t.Fatalf("trial %d: zero-sets differ g1=%v g3=%v g2=%v", trial, g1, g3, g2)
		}
	}
}

func TestMeasuresOnCleanAndTiny(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 30, Seed: 43})
	a := AFD{Schema: r.Schema()}
	a.LHS = a.LHS.Add(r.Schema().MustIndex("address"))
	a.RHS = a.RHS.Add(r.Schema().MustIndex("region"))
	if a.G1(r) != 0 || a.G2(r) != 0 {
		t.Error("clean data must have zero error")
	}
	empty := r.Select(func(int) bool { return false })
	if a.G1(empty) != 0 || a.G2(empty) != 0 {
		t.Error("empty relation must have zero error")
	}
	one := r.Select(func(i int) bool { return i == 0 })
	if a.G1(one) != 0 || a.G2(one) != 0 {
		t.Error("singleton relation must have zero error")
	}
}
