package afd

import (
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// Kivinen & Mannila [61] define three error measures for approximate FDs;
// the paper presents g3 (§2.3.1), and g1/g2 complete the family:
//
//	g1 — the fraction of tuple PAIRS violating the FD,
//	g2 — the fraction of TUPLES involved in at least one violation,
//	g3 — the minimum fraction of tuples to remove (the default measure).
//
// The measures are ordered g1 ≤ g3 ≤ g2 on every instance, a relationship
// the property tests verify.

// G1 returns the fraction of unordered tuple pairs that violate X → Y.
func (a AFD) G1(r *relation.Relation) float64 {
	n := r.Rows()
	if n < 2 {
		return 0
	}
	px := partition.Build(r, a.LHS)
	codes, _ := r.GroupCodes(a.RHS.Cols())
	violating := 0
	counts := map[int]int{}
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		for k := range counts {
			delete(counts, k)
		}
		for _, row := range class {
			counts[codes[row]]++
		}
		// Pairs within the class disagreeing on Y: total pairs − same-Y
		// pairs.
		total := len(class) * (len(class) - 1) / 2
		same := 0
		for _, c := range counts {
			same += c * (c - 1) / 2
		}
		violating += total - same
	}
	return float64(violating) / float64(n*(n-1)/2)
}

// G2 returns the fraction of tuples participating in at least one
// violating pair.
func (a AFD) G2(r *relation.Relation) float64 {
	n := r.Rows()
	if n == 0 {
		return 0
	}
	px := partition.Build(r, a.LHS)
	codes, _ := r.GroupCodes(a.RHS.Cols())
	involved := 0
	counts := map[int]int{}
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		for k := range counts {
			delete(counts, k)
		}
		for _, row := range class {
			counts[codes[row]]++
		}
		if len(counts) > 1 {
			// Every tuple of a mixed class has a disagreeing partner.
			involved += len(class)
		}
	}
	return float64(involved) / float64(n)
}
