package sd

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/relation"
)

// Span is a closed interval of X values conditioning a CSD tableau row.
type Span struct {
	Lo, Hi float64
}

// Contains reports whether x ∈ [Lo, Hi].
func (s Span) Contains(x float64) bool { return x >= s.Lo && x <= s.Hi }

// String renders the span.
func (s Span) String() string { return fmt.Sprintf("[%g,%g]", s.Lo, s.Hi) }

// CSD is a conditional sequential dependency (paper §4.4.5): an embedded SD
// plus a tableau of X-intervals; the gap constraint applies only to
// consecutive tuple pairs whose X values both fall inside one tableau span.
// The tableau mirrors the pattern tableau of CFDs, with intervals in place
// of constants. An empty tableau means the SD applies everywhere (the
// SD → CSD embedding).
type CSD struct {
	SD SD
	// Tableau is the list of conditioning spans over the first X column.
	Tableau []Span
}

// FromSD embeds an SD as the unconditional CSD (SD → CSD).
func FromSD(s SD) CSD { return CSD{SD: s} }

// Kind implements deps.Dependency.
func (c CSD) Kind() string { return "CSD" }

// String renders the CSD.
func (c CSD) String() string {
	if len(c.Tableau) == 0 {
		return c.SD.String()
	}
	spans := make([]string, len(c.Tableau))
	for i, s := range c.Tableau {
		spans[i] = s.String()
	}
	return fmt.Sprintf("%s on %s", c.SD.String(), strings.Join(spans, "∪"))
}

// inTableau reports whether the X value of a row falls inside some span
// (always true for the empty tableau).
func (c CSD) inTableau(r *relation.Relation, row int) (int, bool) {
	if len(c.Tableau) == 0 {
		return -1, true
	}
	x := r.Value(row, c.SD.X[0]).Num()
	for i, s := range c.Tableau {
		if s.Contains(x) {
			return i, true
		}
	}
	return -1, false
}

// Holds implements deps.Dependency.
func (c CSD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(c, r)
}

// Violations implements deps.Dependency: consecutive pairs inside a common
// tableau span whose delta escapes the gap interval.
func (c CSD) Violations(r *relation.Relation, limit int) []deps.Violation {
	idx, d := c.SD.deltas(r)
	var out []deps.Violation
	for k, delta := range d {
		si, ok1 := c.inTableau(r, idx[k])
		sj, ok2 := c.inTableau(r, idx[k+1])
		if !ok1 || !ok2 || (len(c.Tableau) > 0 && si != sj) {
			continue
		}
		if !c.SD.G.Contains(delta) {
			out = append(out, deps.Pair(idx[k], idx[k+1],
				"conditioned consecutive delta %g outside %s", delta, c.SD.G))
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}
