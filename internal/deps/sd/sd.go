// Package sd implements sequential dependencies X →_g Y (paper §4.4, Golab
// et al. [48]) and their conditional variant CSDs (§4.4.5): when tuples are
// sorted on X, the distance between Y values of consecutive tuples must lie
// in the interval g. ODs are the SDs with g = [0, ∞) or (−∞, 0],
// witnessing the OD → SD edge of the family tree.
package sd

import (
	"fmt"
	"math"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/relation"
)

// Interval is the gap interval g = [Lo, Hi] (use ±Inf for open ends).
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether d ∈ g.
func (g Interval) Contains(d float64) bool { return d >= g.Lo && d <= g.Hi }

// String renders the interval.
func (g Interval) String() string {
	lo := "-∞"
	if !math.IsInf(g.Lo, -1) {
		lo = fmt.Sprintf("%g", g.Lo)
	}
	hi := "+∞"
	if !math.IsInf(g.Hi, 1) {
		hi = fmt.Sprintf("%g", g.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// Increasing is the OD-style gap [0, ∞).
func Increasing() Interval { return Interval{Lo: 0, Hi: math.Inf(1)} }

// Decreasing is the OD-style gap (−∞, 0].
func Decreasing() Interval { return Interval{Lo: math.Inf(-1), Hi: 0} }

// SD is a sequential dependency X →_g Y. X orders the tuples; Y is the
// measured attribute; consecutive Y deltas (in X order, later minus
// earlier) must lie in G.
type SD struct {
	// X are the ordering columns (lexicographic sort).
	X []int
	// Y is the measured column.
	Y int
	// G is the gap interval.
	G Interval
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// Must builds an SD from attribute names, panicking on unknown names.
func Must(schema *relation.Schema, x []string, y string, g Interval) SD {
	xi, err := schema.Indices(x...)
	if err != nil {
		panic(err)
	}
	return SD{X: xi, Y: schema.MustIndex(y), G: g, Schema: schema}
}

// Kind implements deps.Dependency.
func (s SD) Kind() string { return "SD" }

// String renders the SD in the paper's notation.
func (s SD) String() string {
	var names []string
	if s.Schema != nil {
		names = s.Schema.Names()
	}
	n := func(c int) string {
		if names != nil && c < len(names) {
			return names[c]
		}
		return fmt.Sprintf("a%d", c)
	}
	xs := make([]string, len(s.X))
	for i, c := range s.X {
		xs[i] = n(c)
	}
	return fmt.Sprintf("%s ->_%s %s", strings.Join(xs, ","), s.G, n(s.Y))
}

// deltas returns the consecutive (rowEarlier, rowLater, delta) triples in X
// order.
func (s SD) deltas(r *relation.Relation) (idx []int, d []float64) {
	idx = r.SortedIndex(s.X)
	if len(idx) < 2 {
		return idx, nil
	}
	d = make([]float64, len(idx)-1)
	for k := 1; k < len(idx); k++ {
		d[k-1] = r.Value(idx[k], s.Y).Num() - r.Value(idx[k-1], s.Y).Num()
	}
	return idx, d
}

// Holds implements deps.Dependency.
func (s SD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(s, r)
}

// Violations implements deps.Dependency: consecutive pairs (in X order)
// whose Y delta falls outside g.
func (s SD) Violations(r *relation.Relation, limit int) []deps.Violation {
	idx, d := s.deltas(r)
	var out []deps.Violation
	for k, delta := range d {
		if !s.G.Contains(delta) {
			out = append(out, deps.Pair(idx[k], idx[k+1], "consecutive delta %g outside %s", delta, s.G))
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// Confidence computes the SD confidence of [48]: the fraction of tuples in
// the largest subset that can be completed into a satisfying sequence using
// deletions *and insertions* — an out-of-range delta between two kept
// tuples is repairable when some number of inserted tuples splits it into
// in-range steps (t_j reachable from t_i iff ∃k ≥ 1 with
// k·Lo ≤ y_j − y_i ≤ k·Hi). Computed by an O(n²) longest-chain dynamic
// program over the X-sorted tuples.
func (s SD) Confidence(r *relation.Relation) float64 {
	n := r.Rows()
	if n == 0 {
		return 1
	}
	idx, _ := s.deltas(r)
	y := make([]float64, n)
	for k, row := range idx {
		y[k] = r.Value(row, s.Y).Num()
	}
	best := make([]int, n)
	overall := 0
	for i := 0; i < n; i++ {
		best[i] = 1
		for j := 0; j < i; j++ {
			if s.G.Reachable(y[i]-y[j]) && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > overall {
			overall = best[i]
		}
	}
	return float64(overall) / float64(n)
}

// Reachable reports whether a total delta can be decomposed into k ≥ 1
// consecutive steps that each lie in the interval, i.e. ∃k ≥ 1 with
// k·Lo ≤ d ≤ k·Hi. The search is bounded at k = 1024 splits, far beyond
// any realistic repair.
func (g Interval) Reachable(d float64) bool {
	for k := 1.0; k <= 1024; k++ {
		lo, hi := k*g.Lo, k*g.Hi
		if d >= lo && d <= hi {
			return true
		}
		// Once the window has moved past d on both monotone ends, stop.
		if g.Lo > 0 && lo > d {
			return false
		}
		if g.Hi < 0 && hi < d {
			return false
		}
	}
	return false
}
