package sd

import (
	"math"
	"testing"

	"deptree/internal/deps/od"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestSD1OnTable7(t *testing.T) {
	// sd1: nights →_[100,200] subtotal (paper §4.4.1): deltas 180, 170, 160.
	r := gen.Table7()
	s := Must(r.Schema(), []string{"nights"}, "subtotal", Interval{Lo: 100, Hi: 200})
	if !s.Holds(r) {
		t.Errorf("sd1 must hold on r7; violations: %v", s.Violations(r, 0))
	}
	if got := s.Confidence(r); got != 1 {
		t.Errorf("confidence = %v, want 1", got)
	}
}

func TestSDViolation(t *testing.T) {
	r := gen.Table7().Clone()
	// Make the t3→t4 subtotal delta −140: outside [100,200] and not
	// repairable by insertions (negative delta, positive gap).
	r.SetValue(3, r.Schema().MustIndex("subtotal"), relation.Int(400))
	s := Must(r.Schema(), []string{"nights"}, "subtotal", Interval{Lo: 100, Hi: 200})
	vs := s.Violations(r, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 2 || vs[0].Rows[1] != 3 {
		t.Fatalf("violations = %v, want (t3,t4)", vs)
	}
	if s.Confidence(r) >= 1 {
		t.Error("confidence must drop below 1")
	}
	if got := s.Violations(r, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestSD2DecreasingEqualsOD(t *testing.T) {
	// sd2: nights →_(−∞,0] avg/night expresses od1 (paper §4.4.2).
	r := gen.Table7()
	s := Must(r.Schema(), []string{"nights"}, "avg/night", Decreasing())
	if !s.Holds(r) {
		t.Errorf("sd2 must hold on r7; violations: %v", s.Violations(r, 0))
	}
	o := od.OD{
		LHS:    []od.Marked{od.Asc(r.Schema(), "nights")},
		RHS:    []od.Marked{od.Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	if s.Holds(r) != o.Holds(r) {
		t.Error("SD with (−∞,0] and OD disagree on r7")
	}
}

func TestODEmbeddingEdgeOnSeries(t *testing.T) {
	// Fig 1 edge OD → SD: on strictly increasing X (no ties), the SD with
	// g = [0, ∞) equals the ascending OD. (With ties on X the two notations
	// diverge: ODs constrain all pairs, SDs only consecutive sorted tuples.)
	for seed := int64(0); seed < 30; seed++ {
		r := gen.Series(15, -5, 5, 0.5, seed)
		s := Must(r.Schema(), []string{"seq"}, "value", Increasing())
		o := od.OD{
			LHS:    []od.Marked{od.Asc(r.Schema(), "seq")},
			RHS:    []od.Marked{od.Asc(r.Schema(), "value")},
			Schema: r.Schema(),
		}
		if s.Holds(r) != o.Holds(r) {
			t.Fatalf("seed %d: SD[0,∞).Holds=%v but OD.Holds=%v", seed, s.Holds(r), o.Holds(r))
		}
	}
}

func TestPollingAudit(t *testing.T) {
	// §4.4.4: pollnum →_[9,11] time detects too-frequent polls and gaps.
	r := gen.Series(100, 9, 11, 0, 99)
	s := Must(r.Schema(), []string{"seq"}, "value", Interval{Lo: 9, Hi: 11})
	if !s.Holds(r) {
		t.Error("clean polling series must satisfy the SD")
	}
	noisy := gen.Series(100, 9, 11, 0.15, 100)
	if s.Holds(noisy) {
		t.Error("noisy polling series must violate the SD")
	}
	conf := s.Confidence(noisy)
	if conf <= 0.5 || conf >= 1 {
		t.Errorf("confidence = %v, want in (0.5, 1)", conf)
	}
}

func TestConfidenceEdgeCases(t *testing.T) {
	r := gen.Table7().Select(func(int) bool { return false })
	s := Must(gen.Table7().Schema(), []string{"nights"}, "subtotal", Increasing())
	if got := s.Confidence(r); got != 1 {
		t.Errorf("empty confidence = %v", got)
	}
	one := gen.Table7().Select(func(i int) bool { return i == 0 })
	if got := s.Confidence(one); got != 1 {
		t.Errorf("singleton confidence = %v", got)
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{Lo: 100, Hi: 200}).String(); got != "[100,200]" {
		t.Errorf("String = %q", got)
	}
	if got := Increasing().String(); got != "[0,+∞]" {
		t.Errorf("String = %q", got)
	}
	if got := Decreasing().String(); got != "[-∞,0]" {
		t.Errorf("String = %q", got)
	}
	if !Increasing().Contains(math.Inf(1)) || Increasing().Contains(-1) {
		t.Error("Contains wrong")
	}
}

func TestCSDConditional(t *testing.T) {
	// A series whose step changes regime: [9,11] for seq < 50, [18,22]
	// afterwards. The unconditional SD fails; the CSD with two tableau
	// spans and per-regime check on the first span holds.
	s := relation.NewSchema(
		relation.Attribute{Name: "seq", Kind: relation.KindInt},
		relation.Attribute{Name: "value", Kind: relation.KindFloat},
	)
	r := relation.New("regime", s)
	v := 0.0
	for i := 0; i < 100; i++ {
		_ = r.Append([]relation.Value{relation.Int(i), relation.Float(v)})
		if i < 50 {
			v += 10
		} else {
			v += 20
		}
	}
	plain := Must(s, []string{"seq"}, "value", Interval{Lo: 9, Hi: 11})
	if plain.Holds(r) {
		t.Fatal("unconditional SD must fail across regimes")
	}
	c := CSD{SD: plain.withGap(Interval{Lo: 9, Hi: 11}), Tableau: []Span{{Lo: 0, Hi: 50}}}
	if !c.Holds(r) {
		t.Errorf("CSD restricted to the first regime must hold; violations: %v", c.Violations(r, 0))
	}
	c2 := CSD{SD: plain.withGap(Interval{Lo: 18, Hi: 22}), Tableau: []Span{{Lo: 51, Hi: 99}}}
	if !c2.Holds(r) {
		t.Errorf("CSD restricted to the second regime must hold; violations: %v", c2.Violations(r, 0))
	}
}

// withGap returns a copy of the SD with a different gap interval.
func (s SD) withGap(g Interval) SD {
	s.G = g
	return s
}

func TestSDEmbeddingIntoCSD(t *testing.T) {
	// SD → CSD: the empty tableau reproduces the SD.
	for seed := int64(0); seed < 20; seed++ {
		r := gen.Series(20, 9, 11, 0.3, seed)
		s := Must(r.Schema(), []string{"seq"}, "value", Interval{Lo: 9, Hi: 11})
		c := FromSD(s)
		if s.Holds(r) != c.Holds(r) {
			t.Fatalf("seed %d: SD.Holds=%v but CSD.Holds=%v", seed, s.Holds(r), c.Holds(r))
		}
	}
}

func TestCSDSpanBoundary(t *testing.T) {
	// Pairs straddling two different spans are unconstrained.
	r := gen.Series(10, 100, 100, 0, 1) // step 100
	s := Must(r.Schema(), []string{"seq"}, "value", Interval{Lo: 9, Hi: 11})
	c := CSD{SD: s, Tableau: []Span{{Lo: 0, Hi: 4}, {Lo: 5, Hi: 9}}}
	// Every within-span delta is 100, outside [9,11]: violations everywhere
	// except across the boundary.
	vs := c.Violations(r, 0)
	if len(vs) != 8 {
		t.Errorf("violations = %d, want 8 (9 consecutive pairs minus the straddle)", len(vs))
	}
}

func TestStringers(t *testing.T) {
	r := gen.Table7()
	s := Must(r.Schema(), []string{"nights"}, "subtotal", Interval{Lo: 100, Hi: 200})
	if s.Kind() != "SD" {
		t.Error("Kind")
	}
	if got := s.String(); got != "nights ->_[100,200] subtotal" {
		t.Errorf("String = %q", got)
	}
	c := CSD{SD: s, Tableau: []Span{{Lo: 0, Hi: 10}}}
	if c.Kind() != "CSD" {
		t.Error("CSD Kind")
	}
	if got := c.String(); got != "nights ->_[100,200] subtotal on [0,10]" {
		t.Errorf("CSD String = %q", got)
	}
	if FromSD(s).String() != s.String() {
		t.Error("unconditional CSD renders as the SD")
	}
}
