package dd

// Subsumption reasoning for differential dependencies (paper §3.3.3): full
// DD implication is co-NP-complete [86], but the syntactic subsumption
// order — looser LHS and tighter RHS — is a sound, cheap fragment that
// powers the minimality notion of DD discovery ("minimal DDs" are the
// subsumption-maximal valid ones) and lets rule sets be reduced.

// impliesFunc reports whether satisfying differential function a implies
// satisfying b, for constraints over the same column and metric. It is the
// containment of distance ranges: e.g. (≤3) implies (≤5), (≥10) implies
// (≥7), (=4) implies (≤5).
func impliesFunc(a, b DiffFunc) bool {
	if a.Col != b.Col || a.Metric.Name() != b.Metric.Name() {
		return false
	}
	switch a.Op {
	case OpEq: // d = t_a
		return b.Op.Eval(a.Threshold, b.Threshold)
	case OpLe: // d ≤ t_a
		switch b.Op {
		case OpLe:
			return b.Threshold >= a.Threshold
		case OpLt:
			return b.Threshold > a.Threshold
		}
	case OpLt: // d < t_a
		switch b.Op {
		case OpLe, OpLt:
			return b.Threshold >= a.Threshold
		}
	case OpGe: // d ≥ t_a
		switch b.Op {
		case OpGe:
			return b.Threshold <= a.Threshold
		case OpGt:
			return b.Threshold < a.Threshold
		}
	case OpGt: // d > t_a
		switch b.Op {
		case OpGe, OpGt:
			return b.Threshold <= a.Threshold
		}
	}
	return false
}

// ImpliesPattern reports whether every tuple pair compatible with pattern
// p is compatible with pattern q (sound syntactic check: each constraint
// of q is implied by some constraint of p).
func ImpliesPattern(p, q Pattern) bool {
	for _, qf := range q {
		ok := false
		for _, pf := range p {
			if impliesFunc(pf, qf) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Subsumes reports whether d1 logically entails d2 by subsumption: any
// pair satisfying d2's LHS satisfies d1's LHS (d2 conditions are tighter),
// and any pair satisfying d1's RHS satisfies d2's RHS (d2 conclusions are
// looser). If d1 holds on an instance, so does d2 — a property the test
// suite verifies on random data.
func Subsumes(d1, d2 DD) bool {
	return ImpliesPattern(d2.LHS, d1.LHS) && ImpliesPattern(d1.RHS, d2.RHS)
}

// Reduce drops the DDs subsumed by another DD in the set, returning the
// subsumption-maximal core (order preserved; ties keep the earlier rule).
func Reduce(dds []DD) []DD {
	var out []DD
	for i, d := range dds {
		redundant := false
		for j, e := range dds {
			if i == j {
				continue
			}
			if Subsumes(e, d) && !(Subsumes(d, e) && j > i) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, d)
		}
	}
	return out
}
