package dd

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/cfd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Condition is a categorical equality condition A = a restricting a CDD to
// a subset of tuples.
type Condition struct {
	Col   int
	Value relation.Value
}

// CDD is a conditional differential dependency (paper §3.3.5): a DD that
// holds only among tuples matching all categorical conditions. CDDs extend
// both DDs (conditions added) and CFDs (equality relaxed to differential
// functions), the two inbound edges of Fig 1.
type CDD struct {
	// Conditions select the tuple subset (conjunction of constants).
	Conditions []Condition
	// DD is the embedded differential dependency.
	DD DD
}

// FromDD embeds a DD as the condition-free CDD (Fig 1: DD → CDD).
func FromDD(d DD) CDD { return CDD{DD: d} }

// FromCFD embeds a constant-conditioned CFD as a CDD (Fig 1: CFD → CDD):
// constant X cells become conditions, wildcard X cells become distance-0
// differential functions, and Y attributes become distance-0 functions.
// CFDs with constant Y cells additionally condition on the Y constant,
// which CDDs cannot express pairwise; such CFDs are rejected.
func FromCFD(c cfd.CFD) (CDD, error) {
	out := CDD{DD: DD{Schema: c.Schema}}
	for k, col := range c.X {
		cell := c.Pattern[k]
		switch {
		case cell.IsWildcard():
			out.DD.LHS = append(out.DD.LHS, DiffFunc{Col: col, Metric: metric.Equality{}, Op: OpLe, Threshold: 0})
		case cell.IsClassic():
			out.Conditions = append(out.Conditions, Condition{Col: col, Value: cell.Conds[0].Const})
		default:
			return CDD{}, fmt.Errorf("cdd: eCFD cell %s not expressible as a CDD condition", cell)
		}
	}
	for k, col := range c.Y {
		cell := c.Pattern[len(c.X)+k]
		if !cell.IsWildcard() {
			return CDD{}, fmt.Errorf("cdd: constant RHS cell %s not expressible in a pairwise CDD", cell)
		}
		out.DD.RHS = append(out.DD.RHS, DiffFunc{Col: col, Metric: metric.Equality{}, Op: OpLe, Threshold: 0})
	}
	return out, nil
}

// Kind implements deps.Dependency.
func (c CDD) Kind() string { return "CDD" }

// String renders the CDD.
func (c CDD) String() string {
	var names []string
	if c.DD.Schema != nil {
		names = c.DD.Schema.Names()
	}
	conds := make([]string, len(c.Conditions))
	for i, cond := range c.Conditions {
		n := fmt.Sprintf("a%d", cond.Col)
		if names != nil && cond.Col < len(names) {
			n = names[cond.Col]
		}
		conds[i] = fmt.Sprintf("%s=%v", n, cond.Value)
	}
	if len(conds) == 0 {
		return c.DD.String()
	}
	return fmt.Sprintf("[%s] %s", strings.Join(conds, ", "), c.DD.String())
}

// matches reports whether row i satisfies every condition.
func (c CDD) matches(r *relation.Relation, i int) bool {
	for _, cond := range c.Conditions {
		if !r.Value(i, cond.Col).Equal(cond.Value) {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency.
func (c CDD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(c, r)
}

// Violations implements deps.Dependency: DD violations restricted to pairs
// where both tuples match the conditions.
func (c CDD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if c.DD.Schema != nil {
		names = c.DD.Schema.Names()
	}
	var matching []int
	for i := 0; i < r.Rows(); i++ {
		if c.matches(r, i) {
			matching = append(matching, i)
		}
	}
	for a := 0; a < len(matching); a++ {
		for b := a + 1; b < len(matching); b++ {
			i, j := matching[a], matching[b]
			if c.DD.LHS.Compatible(r, i, j) && !c.DD.RHS.Compatible(r, i, j) {
				out = append(out, deps.Pair(i, j,
					"conditioned pair satisfies %s but not %s",
					c.DD.LHS.String(names), c.DD.RHS.String(names)))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
