package dd

import (
	"math/rand"
	"strings"
	"testing"

	"deptree/internal/deps/cfd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/mfd"
	"deptree/internal/deps/ned"
	"deptree/internal/gen"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

func TestDD1OnTable6(t *testing.T) {
	// dd1: name(≤1), street(≤5) → address(≤5) (paper §3.3.1).
	r := gen.Table6()
	s := r.Schema()
	d := DD{
		LHS:    Pattern{F(s, "name", OpLe, 1), F(s, "street", OpLe, 5)},
		RHS:    Pattern{F(s, "address", OpLe, 5)},
		Schema: s,
	}
	if !d.Holds(r) {
		t.Errorf("dd1 must hold on r6; violations: %v", d.Violations(r, 0))
	}
	// The paper's worked pair: t2 and t6 satisfy both sides.
	if !d.LHS.Compatible(r, 1, 5) || !d.RHS.Compatible(r, 1, 5) {
		t.Error("t2/t6 must be compatible with both patterns")
	}
}

func TestDD2DissimilarSemantics(t *testing.T) {
	// dd2: street(≥10) → address(≥5) (paper §3.3.1): dissimilar streets
	// must have dissimilar addresses.
	r := gen.Table6()
	s := r.Schema()
	d := DD{
		LHS:    Pattern{F(s, "street", OpGe, 10)},
		RHS:    Pattern{F(s, "address", OpGe, 5)},
		Schema: s,
	}
	if !d.Holds(r) {
		t.Errorf("dd2 must hold on r6; violations: %v", d.Violations(r, 0))
	}
	// Corrupt: make one tuple's street very distant from t2's while the
	// two share an address — dissimilar streets, similar addresses.
	r2 := r.Clone()
	r2.SetValue(0, s.MustIndex("street"), relation.String("Zxqwvutsrqponm Boulevard"))
	r2.SetValue(0, s.MustIndex("address"), r.Value(1, s.MustIndex("address")))
	if d.Holds(r2) {
		t.Error("dd2 must fail once dissimilar streets share an address")
	}
}

func TestNEDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge NED → DD: all-≤ differential functions reproduce the NED.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 50; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 20, Seed: rng.Int63(), VarietyRate: 0.4})
		s := r.Schema()
		n := ned.NED{
			LHS:    ned.Predicate{ned.T(s, "name", 2)},
			RHS:    ned.Predicate{ned.T(s, "region", 6)},
			Schema: s,
		}
		d := FromNED(n)
		if n.Holds(r) != d.Holds(r) {
			t.Fatalf("trial %d: NED.Holds=%v but DD.Holds=%v", trial, n.Holds(r), d.Holds(r))
		}
	}
}

func TestFDThroughFullChain(t *testing.T) {
	// Transitive chain FD → MFD → NED → DD.
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		d := FromNED(ned.FromMFD(mfd.FromFD(f)))
		if f.Holds(r) != d.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but DD.Holds=%v", trial, f.Holds(r), d.Holds(r))
		}
	}
}

func TestRangeOpEval(t *testing.T) {
	cases := []struct {
		op   RangeOp
		d, t float64
		want bool
	}{
		{OpEq, 5, 5, true},
		{OpEq, 5, 4, false},
		{OpLt, 3, 5, true},
		{OpLe, 5, 5, true},
		{OpGt, 6, 5, true},
		{OpGe, 5, 5, true},
		{OpGe, 4, 5, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.d, c.t); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.d, c.op, c.t, got, c.want)
		}
	}
	nan := metric.Absolute{}.Distance(relation.String("x"), relation.Int(1))
	if OpGe.Eval(nan, 0) || OpLe.Eval(nan, 1e18) {
		t.Error("NaN distances must satisfy no differential function")
	}
}

func TestSupportConfidence(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	d := DD{
		LHS:    Pattern{F(s, "name", OpLe, 1)},
		RHS:    Pattern{F(s, "price", OpLe, 1)},
		Schema: s,
	}
	support, conf := d.SupportConfidence(r)
	if support == 0 {
		t.Fatal("identical names must support the LHS")
	}
	if conf <= 0 || conf > 1 {
		t.Errorf("confidence = %v", conf)
	}
}

func TestCDDConditionsRestrict(t *testing.T) {
	// The paper's §3.3.5 example: in region "San Jose", tuples with similar
	// names must have similar addresses.
	r := gen.Table6()
	s := r.Schema()
	c := CDD{
		Conditions: []Condition{{Col: s.MustIndex("region"), Value: relation.String("San Jose")}},
		DD: DD{
			LHS:    Pattern{F(s, "name", OpLe, 1)},
			RHS:    Pattern{F(s, "address", OpLe, 5)},
			Schema: s,
		},
	}
	if !c.Holds(r) {
		t.Errorf("CDD must hold; violations: %v", c.Violations(r, 0))
	}
	// Corrupt a San Jose tuple's address: violation appears.
	r2 := r.Clone()
	r2.SetValue(5, s.MustIndex("address"), relation.String("Absolutely Elsewhere 123456"))
	vs := c.Violations(r2, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 1 || vs[0].Rows[1] != 5 {
		t.Fatalf("violations = %v, want (t2,t6)", vs)
	}
	// The same corruption outside the condition is ignored.
	r3 := r.Clone()
	r3.SetValue(5, s.MustIndex("region"), relation.String("Nowhere"))
	r3.SetValue(5, s.MustIndex("address"), relation.String("Absolutely Elsewhere 123456"))
	if !c.Holds(r3) {
		t.Error("tuples outside the condition must not violate")
	}
}

func TestDDEmbeddingIntoCDD(t *testing.T) {
	// Fig 1 edge DD → CDD: condition-free CDD ≡ DD.
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 40; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), ErrorRate: 0.3})
		s := r.Schema()
		d := DD{
			LHS:    Pattern{F(s, "address", OpLe, 0)},
			RHS:    Pattern{F(s, "region", OpLe, 0)},
			Schema: s,
		}
		c := FromDD(d)
		if d.Holds(r) != c.Holds(r) {
			t.Fatalf("trial %d: DD.Holds=%v but CDD.Holds=%v", trial, d.Holds(r), c.Holds(r))
		}
	}
}

func TestCFDEmbeddingIntoCDD(t *testing.T) {
	// Fig 1 edge CFD → CDD: constant-condition CFDs translate exactly.
	r := gen.Table5()
	c := cfd.Must(r.Schema(), []string{"region", "name"}, []string{"address"},
		[]cfd.Cell{cfd.Const(relation.String("Jackson")), cfd.Wildcard(), cfd.Wildcard()})
	conv, err := FromCFD(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Holds(r) != conv.Holds(r) {
		t.Error("CFD and its CDD embedding disagree on r5")
	}
	// Corrupt so the CFD fails; the CDD must fail identically.
	r2 := r.Clone()
	r2.SetValue(1, r.Schema().MustIndex("address"), relation.String("999 Elsewhere"))
	if c.Holds(r2) != conv.Holds(r2) {
		t.Error("CFD and CDD embedding disagree on corrupted r5")
	}
	// RHS constants are not expressible.
	bad := cfd.Must(r.Schema(), []string{"region"}, []string{"rate"},
		[]cfd.Cell{cfd.Const(relation.String("Jackson")), cfd.Const(relation.Int(230))})
	if _, err := FromCFD(bad); err == nil {
		t.Error("constant RHS must be rejected")
	}
	// eCFD cells are not expressible.
	ext := cfd.Must(r.Schema(), []string{"rate"}, []string{"address"},
		[]cfd.Cell{cfd.Pred(cfd.OpLe, relation.Int(200)), cfd.Wildcard()})
	if _, err := FromCFD(ext); err == nil {
		t.Error("eCFD cells must be rejected")
	}
}

func TestStringers(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	d := DD{
		LHS:    Pattern{F(s, "name", OpLe, 1), F(s, "street", OpLe, 5)},
		RHS:    Pattern{F(s, "address", OpLe, 5)},
		Schema: s,
	}
	if d.Kind() != "DD" {
		t.Error("Kind")
	}
	if got := d.String(); got != "name(<=1), street(<=5) -> address(<=5)" {
		t.Errorf("String = %q", got)
	}
	c := CDD{
		Conditions: []Condition{{Col: s.MustIndex("region"), Value: relation.String("San Jose")}},
		DD:         d,
	}
	if c.Kind() != "CDD" {
		t.Error("CDD Kind")
	}
	if !strings.HasPrefix(c.String(), "[region=San Jose] ") {
		t.Errorf("CDD String = %q", c.String())
	}
	if FromDD(d).String() != d.String() {
		t.Error("condition-free CDD renders as the DD")
	}
}
