package dd

import (
	"math/rand"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/metric"
)

func f(col int, op RangeOp, t float64) DiffFunc {
	return DiffFunc{Col: col, Metric: metric.Levenshtein{}, Op: op, Threshold: t}
}

func TestImpliesFunc(t *testing.T) {
	cases := []struct {
		a, b DiffFunc
		want bool
	}{
		{f(0, OpLe, 3), f(0, OpLe, 5), true},
		{f(0, OpLe, 5), f(0, OpLe, 3), false},
		{f(0, OpLe, 3), f(0, OpLt, 4), true},
		{f(0, OpLe, 3), f(0, OpLt, 3), false},
		{f(0, OpLt, 3), f(0, OpLe, 3), true},
		{f(0, OpGe, 10), f(0, OpGe, 7), true},
		{f(0, OpGe, 7), f(0, OpGe, 10), false},
		{f(0, OpGt, 7), f(0, OpGe, 7), true},
		{f(0, OpGe, 7), f(0, OpGt, 7), false},
		{f(0, OpEq, 4), f(0, OpLe, 5), true},
		{f(0, OpEq, 6), f(0, OpLe, 5), false},
		{f(0, OpEq, 6), f(0, OpGe, 5), true},
		{f(0, OpLe, 3), f(1, OpLe, 5), false}, // different column
		{f(0, OpLe, 3), f(0, OpGe, 1), false}, // direction flip unsound
	}
	for _, c := range cases {
		if got := impliesFunc(c.a, c.b); got != c.want {
			t.Errorf("implies(%v, %v) = %v, want %v",
				c.a.String(nil), c.b.String(nil), got, c.want)
		}
	}
}

func TestImpliesFuncSemanticSoundness(t *testing.T) {
	// Whenever impliesFunc says yes, every distance satisfying a satisfies
	// b — checked over a grid of distances and random constraints.
	rng := rand.New(rand.NewSource(15))
	ops := []RangeOp{OpEq, OpLt, OpLe, OpGt, OpGe}
	for trial := 0; trial < 500; trial++ {
		a := f(0, ops[rng.Intn(len(ops))], float64(rng.Intn(8)))
		b := f(0, ops[rng.Intn(len(ops))], float64(rng.Intn(8)))
		if !impliesFunc(a, b) {
			continue
		}
		for d := 0.0; d <= 10; d += 0.5 {
			if a.Op.Eval(d, a.Threshold) && !b.Op.Eval(d, b.Threshold) {
				t.Fatalf("unsound: %v implies %v but d=%v separates them",
					a.String(nil), b.String(nil), d)
			}
		}
	}
}

func TestSubsumesSemanticSoundness(t *testing.T) {
	// Subsumes(d1, d2) and d1 holds ⇒ d2 holds, on random instances.
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 300 && checked < 40; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 12, Seed: rng.Int63(), VarietyRate: 0.4, ErrorRate: 0.3})
		s := r.Schema()
		t1 := float64(rng.Intn(5))
		t2 := float64(rng.Intn(8))
		d1 := DD{
			LHS:    Pattern{F(s, "name", OpLe, t1+2)},
			RHS:    Pattern{F(s, "region", OpLe, t2)},
			Schema: s,
		}
		d2 := DD{
			LHS:    Pattern{F(s, "name", OpLe, t1)},
			RHS:    Pattern{F(s, "region", OpLe, t2+3)},
			Schema: s,
		}
		if !Subsumes(d1, d2) {
			t.Fatal("constructed subsumption should hold syntactically")
		}
		if d1.Holds(r) {
			checked++
			if !d2.Holds(r) {
				t.Fatalf("trial %d: d1 holds but subsumed d2 fails", trial)
			}
		}
	}
	if checked == 0 {
		t.Skip("no instance satisfied d1; adjust generator")
	}
}

func TestSubsumesDirection(t *testing.T) {
	// The stronger rule covers more pairs (looser LHS) and promises more
	// (tighter RHS); it entails the weaker rule with tighter LHS and
	// looser RHS — never the other way around.
	s := gen.Table6().Schema()
	strong := DD{
		LHS:    Pattern{F(s, "name", OpLe, 5)},
		RHS:    Pattern{F(s, "address", OpLe, 5)},
		Schema: s,
	}
	weak := DD{
		LHS:    Pattern{F(s, "name", OpLe, 1)},
		RHS:    Pattern{F(s, "address", OpLe, 10)},
		Schema: s,
	}
	if !Subsumes(strong, weak) {
		t.Error("strong rule must subsume the weak one")
	}
	if Subsumes(weak, strong) {
		t.Error("subsumption is not symmetric here")
	}
}

func TestReduce(t *testing.T) {
	s := gen.Table6().Schema()
	strong := DD{
		LHS:    Pattern{F(s, "name", OpLe, 5)},
		RHS:    Pattern{F(s, "address", OpLe, 5)},
		Schema: s,
	}
	weak := DD{
		LHS:    Pattern{F(s, "name", OpLe, 1)},
		RHS:    Pattern{F(s, "address", OpLe, 9)},
		Schema: s,
	}
	unrelated := DD{
		LHS:    Pattern{F(s, "street", OpLe, 2)},
		RHS:    Pattern{F(s, "zip", OpLe, 0)},
		Schema: s,
	}
	got := Reduce([]DD{weak, strong, unrelated})
	if len(got) != 2 {
		t.Fatalf("Reduce kept %d rules, want 2: %v", len(got), got)
	}
	if got[0].String() != strong.String() && got[1].String() != strong.String() {
		t.Error("strong rule lost")
	}
	// Duplicates: exactly one survives.
	dup := Reduce([]DD{strong, strong})
	if len(dup) != 1 {
		t.Errorf("duplicate reduction kept %d", len(dup))
	}
}
