// Package dd implements differential dependencies (paper §3.3, Song & Chen
// [86]) and their conditional extension CDDs (§3.3.5, Kwashie et al. [66]).
//
// A DD φ[X] → φ[Y] constrains pairs of tuples by differential functions:
// ranges of metric distances specified with {=, <, >, ≤, ≥}. Unlike NEDs,
// differential functions express "dissimilar" semantics too (e.g.
// street(≥10)). NEDs are the DDs whose differential functions are all
// upper bounds, witnessing the NED → DD edge of the family tree.
package dd

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/ned"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// RangeOp is the comparison of a differential function.
type RangeOp int

// Differential function operators over metric distances.
const (
	OpEq RangeOp = iota // distance = t
	OpLt                // distance < t
	OpLe                // distance ≤ t
	OpGt                // distance > t
	OpGe                // distance ≥ t
)

// String renders the operator.
func (o RangeOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("RangeOp(%d)", int(o))
	}
}

// Eval applies the operator.
func (o RangeOp) Eval(d, t float64) bool {
	if d != d { // NaN distance: incomparable values never satisfy
		return false
	}
	switch o {
	case OpEq:
		return d == t
	case OpLt:
		return d < t
	case OpLe:
		return d <= t
	case OpGt:
		return d > t
	case OpGe:
		return d >= t
	default:
		return false
	}
}

// DiffFunc is a differential function φ[A]: a restriction on the metric
// distance of two tuples on attribute A.
type DiffFunc struct {
	Col       int
	Metric    metric.Metric
	Op        RangeOp
	Threshold float64
}

// Compatible reports whether rows i and j satisfy the distance restriction,
// (t1, t2) ≍ φ[A] in the paper's notation.
func (f DiffFunc) Compatible(r *relation.Relation, i, j int) bool {
	return f.Op.Eval(f.Metric.Distance(r.Value(i, f.Col), r.Value(j, f.Col)), f.Threshold)
}

// String renders the differential function as "street(<=5)".
func (f DiffFunc) String(names []string) string {
	n := fmt.Sprintf("a%d", f.Col)
	if names != nil && f.Col < len(names) {
		n = names[f.Col]
	}
	return fmt.Sprintf("%s(%s%.3g)", n, f.Op, f.Threshold)
}

// Pattern is a differential function over a set of attributes φ[X]: a
// conjunction of single-attribute differential functions.
type Pattern []DiffFunc

// Compatible reports whether rows i and j satisfy every restriction.
func (p Pattern) Compatible(r *relation.Relation, i, j int) bool {
	for _, f := range p {
		if !f.Compatible(r, i, j) {
			return false
		}
	}
	return true
}

// String renders the pattern.
func (p Pattern) String(names []string) string {
	parts := make([]string, len(p))
	for i, f := range p {
		parts[i] = f.String(names)
	}
	return strings.Join(parts, ", ")
}

// F builds a differential function with the default metric for the
// attribute's kind.
func F(schema *relation.Schema, name string, op RangeOp, threshold float64) DiffFunc {
	i := schema.MustIndex(name)
	return DiffFunc{Col: i, Metric: metric.ForKind(schema.Attr(i).Kind), Op: op, Threshold: threshold}
}

// DD is a differential dependency φ[X] → φ[Y].
type DD struct {
	LHS, RHS Pattern
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromNED embeds an NED as the special-case DD whose differential functions
// all express "similar" (≤) semantics (Fig 1: NED → DD).
func FromNED(n ned.NED) DD {
	d := DD{Schema: n.Schema}
	for _, t := range n.LHS {
		d.LHS = append(d.LHS, DiffFunc{Col: t.Col, Metric: t.Metric, Op: OpLe, Threshold: t.Threshold})
	}
	for _, t := range n.RHS {
		d.RHS = append(d.RHS, DiffFunc{Col: t.Col, Metric: t.Metric, Op: OpLe, Threshold: t.Threshold})
	}
	return d
}

// Kind implements deps.Dependency.
func (d DD) Kind() string { return "DD" }

// String renders the DD in the paper's notation.
func (d DD) String() string {
	var names []string
	if d.Schema != nil {
		names = d.Schema.Names()
	}
	return fmt.Sprintf("%s -> %s", d.LHS.String(names), d.RHS.String(names))
}

// Holds implements deps.Dependency.
func (d DD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(d, r)
}

// Violations implements deps.Dependency: pairs compatible with φ[X] but not
// with φ[Y]. DD semantics quantify over ordered pairs, but all metrics are
// symmetric, so unordered enumeration suffices.
func (d DD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if d.Schema != nil {
		names = d.Schema.Names()
	}
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if d.LHS.Compatible(r, i, j) && !d.RHS.Compatible(r, i, j) {
				out = append(out, deps.Pair(i, j,
					"satisfy %s but not %s", d.LHS.String(names), d.RHS.String(names)))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// SupportConfidence returns the pair support of φ[X] and the fraction of
// supporting pairs that satisfy φ[Y], the measures used by DD discovery.
func (d DD) SupportConfidence(r *relation.Relation) (support int, confidence float64) {
	good := 0
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if d.LHS.Compatible(r, i, j) {
				support++
				if d.RHS.Compatible(r, i, j) {
					good++
				}
			}
		}
	}
	if support == 0 {
		return 0, 1
	}
	return support, float64(good) / float64(support)
}
