// Package od implements order dependencies X → Y over *marked attributes*
// (paper §4.2, Dong & Hull [28]): each attribute carries an ordering mark
// (A≤ ascending or A≥ descending), and whenever two tuples are ordered on
// all marked X attributes they must be ordered on all marked Y attributes.
//
// OFDs are the ODs whose marks are all ≤, witnessing the OFD → OD edge of
// the family tree.
package od

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/ofd"
	"deptree/internal/relation"
)

// Marked is a marked attribute A≤ or A≥.
type Marked struct {
	Col int
	// Desc marks descending order (A≥): t1[A] ≥ t2[A].
	Desc bool
}

// Asc builds an ascending marked attribute.
func Asc(schema *relation.Schema, name string) Marked {
	return Marked{Col: schema.MustIndex(name)}
}

// Desc builds a descending marked attribute.
func Desc(schema *relation.Schema, name string) Marked {
	return Marked{Col: schema.MustIndex(name), Desc: true}
}

// String renders the marked attribute.
func (m Marked) String(names []string) string {
	n := fmt.Sprintf("a%d", m.Col)
	if names != nil && m.Col < len(names) {
		n = names[m.Col]
	}
	if m.Desc {
		return n + "≥"
	}
	return n + "≤"
}

// OD is an order dependency over marked attribute lists.
type OD struct {
	LHS, RHS []Marked
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromOFD embeds a pointwise OFD as the all-ascending OD (Fig 1: OFD → OD).
func FromOFD(o ofd.OFD) OD {
	out := OD{Schema: o.Schema}
	o.LHS.Each(func(c int) { out.LHS = append(out.LHS, Marked{Col: c}) })
	o.RHS.Each(func(c int) { out.RHS = append(out.RHS, Marked{Col: c}) })
	return out
}

// Kind implements deps.Dependency.
func (o OD) Kind() string { return "OD" }

// String renders the OD.
func (o OD) String() string {
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	render := func(ms []Marked) string {
		parts := make([]string, len(ms))
		for i, m := range ms {
			parts[i] = m.String(names)
		}
		return strings.Join(parts, ",")
	}
	return fmt.Sprintf("%s -> %s", render(o.LHS), render(o.RHS))
}

// ordered reports whether t_i [marked] t_j: every marked attribute is
// ordered in its marked direction.
func ordered(r *relation.Relation, i, j int, ms []Marked) bool {
	for _, m := range ms {
		cmp := r.Value(i, m.Col).Compare(r.Value(j, m.Col))
		if m.Desc {
			if cmp < 0 {
				return false
			}
		} else if cmp > 0 {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency.
func (o OD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(o, r)
}

// Violations implements deps.Dependency: ordered pairs satisfying the
// marked LHS ordering but not the RHS ordering.
func (o OD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			if ordered(r, i, j, o.LHS) && !ordered(r, i, j, o.RHS) {
				lhs := make([]string, len(o.LHS))
				for k, m := range o.LHS {
					lhs[k] = m.String(names)
				}
				rhs := make([]string, len(o.RHS))
				for k, m := range o.RHS {
					rhs[k] = m.String(names)
				}
				out = append(out, deps.Pair(i, j, "%s ordered but %s not",
					strings.Join(lhs, ","), strings.Join(rhs, ",")))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
