// Package od implements order dependencies X → Y over *marked attributes*
// (paper §4.2, Dong & Hull [28]): each attribute carries an ordering mark
// (A≤ ascending or A≥ descending), and whenever two tuples are ordered on
// all marked X attributes they must be ordered on all marked Y attributes.
//
// OFDs are the ODs whose marks are all ≤, witnessing the OFD → OD edge of
// the family tree.
package od

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/ofd"
	"deptree/internal/relation"
)

// Marked is a marked attribute A≤ or A≥.
type Marked struct {
	Col int
	// Desc marks descending order (A≥): t1[A] ≥ t2[A].
	Desc bool
}

// Asc builds an ascending marked attribute.
func Asc(schema *relation.Schema, name string) Marked {
	return Marked{Col: schema.MustIndex(name)}
}

// Desc builds a descending marked attribute.
func Desc(schema *relation.Schema, name string) Marked {
	return Marked{Col: schema.MustIndex(name), Desc: true}
}

// String renders the marked attribute.
func (m Marked) String(names []string) string {
	n := fmt.Sprintf("a%d", m.Col)
	if names != nil && m.Col < len(names) {
		n = names[m.Col]
	}
	if m.Desc {
		return n + "≥"
	}
	return n + "≤"
}

// OD is an order dependency over marked attribute lists.
type OD struct {
	LHS, RHS []Marked
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromOFD embeds a pointwise OFD as the all-ascending OD (Fig 1: OFD → OD).
func FromOFD(o ofd.OFD) OD {
	out := OD{Schema: o.Schema}
	o.LHS.Each(func(c int) { out.LHS = append(out.LHS, Marked{Col: c}) })
	o.RHS.Each(func(c int) { out.RHS = append(out.RHS, Marked{Col: c}) })
	return out
}

// Kind implements deps.Dependency.
func (o OD) Kind() string { return "OD" }

// String renders the OD.
func (o OD) String() string {
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	render := func(ms []Marked) string {
		parts := make([]string, len(ms))
		for i, m := range ms {
			parts[i] = m.String(names)
		}
		return strings.Join(parts, ",")
	}
	return fmt.Sprintf("%s -> %s", render(o.LHS), render(o.RHS))
}

// ordered reports whether t_i [marked] t_j: every marked attribute is
// ordered in its marked direction.
func ordered(r *relation.Relation, i, j int, ms []Marked) bool {
	for _, m := range ms {
		cmp := r.Value(i, m.Col).Compare(r.Value(j, m.Col))
		if m.Desc {
			if cmp < 0 {
				return false
			}
		} else if cmp > 0 {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency. Single-attribute ODs over columns on
// which Compare is a total preorder are decided by a sort-and-scan fast
// path in O(n log n); every other shape falls back to the O(n²) pair
// scan. Both routes decide the same predicate (no violating ordered
// pair), so the fast path never changes discovery output.
func (o OD) Holds(r *relation.Relation) bool {
	if len(o.LHS) == 1 && len(o.RHS) == 1 {
		if ok, holds := o.holdsSorted(r); ok {
			return holds
		}
	}
	return deps.HoldsByViolations(o, r)
}

// columnTotal reports whether Compare restricted to the column's values is
// a total preorder. Within one column (one declared kind plus nulls) the
// only way transitivity fails is a NaN float, which Compare treats as
// equal to every numeric.
func columnTotal(r *relation.Relation, col int) bool {
	for row := 0; row < r.Rows(); row++ {
		v := r.Value(row, col)
		if v.IsNumeric() && math.IsNaN(v.Num()) {
			return false
		}
	}
	return true
}

// holdsSorted decides a single-attribute OD by sorting rows on the marked
// LHS and scanning once: within an LHS-tie group every RHS value must
// Compare-equal (both pair orders are LHS-ordered), and consecutive
// groups' RHS values must follow the RHS mark (transitivity extends the
// adjacent check to all group pairs). ok=false means the fast path does
// not apply (a NaN broke totality) and the caller must pair-scan.
func (o OD) holdsSorted(r *relation.Relation) (ok, holds bool) {
	l, rm := o.LHS[0], o.RHS[0]
	// Fail-fast pre-pass: any violating pair decides Holds, and ODs that
	// fail usually fail between neighbors, so check consecutive rows (both
	// orientations) in O(n) before paying for the sort. This is exact
	// regardless of Compare totality — a witnessed violation is a violation.
	for i := 0; i+1 < r.Rows(); i++ {
		if ordered(r, i, i+1, o.LHS) && !ordered(r, i, i+1, o.RHS) {
			return true, false
		}
		if ordered(r, i+1, i, o.LHS) && !ordered(r, i+1, i, o.RHS) {
			return true, false
		}
	}
	if !columnTotal(r, l.Col) || !columnTotal(r, rm.Col) {
		return false, false
	}
	n := r.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cmpL := func(i, j int) int {
		c := r.Value(i, l.Col).Compare(r.Value(j, l.Col))
		if l.Desc {
			return -c
		}
		return c
	}
	cmpR := func(i, j int) int {
		c := r.Value(i, rm.Col).Compare(r.Value(j, rm.Col))
		if rm.Desc {
			return -c
		}
		return c
	}
	sort.SliceStable(idx, func(a, b int) bool { return cmpL(idx[a], idx[b]) < 0 })
	for start := 0; start < n; {
		end := start + 1
		for end < n && cmpL(idx[start], idx[end]) == 0 {
			if r.Value(idx[start], rm.Col).Compare(r.Value(idx[end], rm.Col)) != 0 {
				return true, false
			}
			end++
		}
		if end < n && cmpR(idx[start], idx[end]) > 0 {
			return true, false
		}
		start = end
	}
	return true, true
}

// Violations implements deps.Dependency: ordered pairs satisfying the
// marked LHS ordering but not the RHS ordering.
func (o OD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			if ordered(r, i, j, o.LHS) && !ordered(r, i, j, o.RHS) {
				lhs := make([]string, len(o.LHS))
				for k, m := range o.LHS {
					lhs[k] = m.String(names)
				}
				rhs := make([]string, len(o.RHS))
				for k, m := range o.RHS {
					rhs[k] = m.String(names)
				}
				out = append(out, deps.Pair(i, j, "%s ordered but %s not",
					strings.Join(lhs, ","), strings.Join(rhs, ",")))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
