package od

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/relation"
)

// LexOD is a list-based (lexicographic) order dependency in the style the
// OD-discovery literature uses (Langer & Naumann [67], Szlichta et al.
// [99],[101]): X̄ orders ȳ lexicographically — sorting the relation by
// the marked list X̄ also sorts it by Ȳ. Contrast with the pointwise OD
// of this package, where every marked attribute must be ordered
// simultaneously; a single-attribute LexOD coincides with the pointwise
// OD, which the tests check.
type LexOD struct {
	LHS, RHS []Marked
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// Kind implements deps.Dependency.
func (o LexOD) Kind() string { return "OD" }

// String renders the LexOD in list notation.
func (o LexOD) String() string {
	var names []string
	if o.Schema != nil {
		names = o.Schema.Names()
	}
	render := func(ms []Marked) string {
		parts := make([]string, len(ms))
		for i, m := range ms {
			parts[i] = m.String(names)
		}
		return "[" + strings.Join(parts, ",") + "]"
	}
	return fmt.Sprintf("%s ~> %s", render(o.LHS), render(o.RHS))
}

// lexCompare compares rows i and j under the marked list: the first
// non-tie decides, with descending marks inverting the comparison.
func lexCompare(r *relation.Relation, i, j int, ms []Marked) int {
	for _, m := range ms {
		cmp := r.Value(i, m.Col).Compare(r.Value(j, m.Col))
		if m.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

// Holds implements deps.Dependency.
func (o LexOD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(o, r)
}

// Violations implements deps.Dependency: ordered pairs with
// t_i ≺_X̄ t_j (strictly or tied) but t_i ≻_Ȳ t_j. Following the
// standard semantics, X̄-ties must not be Ȳ-inverted either, i.e.
// lexCompare(X̄) ≤ 0 must imply lexCompare(Ȳ) ≤ 0... ties on X̄ with
// strict Ȳ order in both directions would contradict antisymmetry, so
// the implemented rule is: X̄ ≤ 0 ⇒ Ȳ ≤ 0 evaluated on ordered pairs.
func (o LexOD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			if lexCompare(r, i, j, o.LHS) <= 0 && lexCompare(r, i, j, o.RHS) > 0 {
				out = append(out, deps.Pair(i, j, "lexicographically X̄-ordered but Ȳ-inverted"))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
