package od

import (
	"math/rand"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestLexODOnTable7(t *testing.T) {
	r := gen.Table7()
	// [nights≤] ~> [subtotal≤, taxes≤]: sorting by nights sorts by the
	// (subtotal, taxes) list.
	o := LexOD{
		LHS:    []Marked{Asc(r.Schema(), "nights")},
		RHS:    []Marked{Asc(r.Schema(), "subtotal"), Asc(r.Schema(), "taxes")},
		Schema: r.Schema(),
	}
	if !o.Holds(r) {
		t.Errorf("LexOD must hold on r7; violations: %v", o.Violations(r, 0))
	}
}

func TestLexODSingleAttrCoincidesWithPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		r := gen.Series(12, -5, 5, 0.5, rng.Int63())
		for _, desc := range []bool{false, true} {
			lex := LexOD{
				LHS:    []Marked{{Col: 0}},
				RHS:    []Marked{{Col: 1, Desc: desc}},
				Schema: r.Schema(),
			}
			point := OD{
				LHS:    []Marked{{Col: 0}},
				RHS:    []Marked{{Col: 1, Desc: desc}},
				Schema: r.Schema(),
			}
			if lex.Holds(r) != point.Holds(r) {
				t.Fatalf("trial %d desc=%v: LexOD=%v pointwise=%v",
					trial, desc, lex.Holds(r), point.Holds(r))
			}
		}
	}
}

func TestLexODDiffersFromPointwiseOnLists(t *testing.T) {
	// (a, b) lexicographic vs pointwise diverge when a ties break on b.
	s := relation.NewSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("lx", s, [][]relation.Value{
		{relation.Int(1), relation.Int(9), relation.Int(10)},
		{relation.Int(2), relation.Int(1), relation.Int(20)},
	})
	lex := LexOD{
		LHS:    []Marked{Asc(s, "a"), Asc(s, "b")},
		RHS:    []Marked{Asc(s, "y")},
		Schema: s,
	}
	point := OD{
		LHS:    []Marked{Asc(s, "a"), Asc(s, "b")},
		RHS:    []Marked{Asc(s, "y")},
		Schema: s,
	}
	// Lexicographically t1 < t2 (a decides) and y increases: holds.
	if !lex.Holds(r) {
		t.Error("LexOD must hold: a decides the order")
	}
	// Pointwise the pair is incomparable (a up, b down): also holds but
	// vacuously — flip y to witness the difference.
	r2 := r.Clone()
	r2.SetValue(1, s.MustIndex("y"), relation.Int(5))
	if lex.Holds(r2) {
		t.Error("LexOD must fail once y inverts against the lex order")
	}
	if !point.Holds(r2) {
		t.Error("pointwise OD must hold vacuously on the incomparable pair")
	}
}

func TestLexODTiesForceRHSTies(t *testing.T) {
	s := relation.NewSchema(
		relation.Attribute{Name: "x", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("tie", s, [][]relation.Value{
		{relation.Int(1), relation.Int(10)},
		{relation.Int(1), relation.Int(20)},
	})
	o := LexOD{LHS: []Marked{Asc(s, "x")}, RHS: []Marked{Asc(s, "y")}, Schema: s}
	// X̄ tie with strict Ȳ order: the (t2,t1) direction violates.
	if o.Holds(r) {
		t.Error("X̄-tied pair with differing Ȳ must violate (FD embedding)")
	}
	if vs := o.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestLexODString(t *testing.T) {
	r := gen.Table7()
	o := LexOD{
		LHS:    []Marked{Asc(r.Schema(), "nights")},
		RHS:    []Marked{Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	if o.Kind() != "OD" {
		t.Error("Kind")
	}
	if got := o.String(); got != "[nights≤] ~> [avg/night≥]" {
		t.Errorf("String = %q", got)
	}
}
