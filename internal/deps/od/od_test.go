package od

import (
	"math"
	"math/rand"
	"testing"

	"deptree/internal/deps"
	"deptree/internal/deps/ofd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestOD1OnTable7(t *testing.T) {
	// od1: nights≤ → avg/night≥ (paper §4.2.1): more nights, lower rate.
	r := gen.Table7()
	o := OD{
		LHS:    []Marked{Asc(r.Schema(), "nights")},
		RHS:    []Marked{Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	if !o.Holds(r) {
		t.Errorf("od1 must hold on r7; violations: %v", o.Violations(r, 0))
	}
}

func TestODViolation(t *testing.T) {
	r := gen.Table7().Clone()
	// Raise t3's avg/night above t2's: descending order broken.
	r.SetValue(2, r.Schema().MustIndex("avg/night"), relation.Int(200))
	o := OD{
		LHS:    []Marked{Asc(r.Schema(), "nights")},
		RHS:    []Marked{Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	vs := o.Violations(r, 0)
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	// Pair (t2,t3): nights 2≤3 but 185 < 200.
	found := false
	for _, v := range vs {
		if v.Rows[0] == 1 && v.Rows[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v must include (t2,t3)", vs)
	}
	if got := o.Violations(r, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestOFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge OFD → OD: all-ascending marks reproduce the pointwise OFD.
	r := gen.Table7()
	f := ofd.Must(r.Schema(), []string{"subtotal"}, []string{"taxes"}, ofd.Pointwise)
	o := FromOFD(f)
	if f.Holds(r) != o.Holds(r) {
		t.Error("OFD and its OD embedding disagree on r7")
	}
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 50; trial++ {
		rr := gen.Series(12, -5, 5, 0.5, rng.Int63())
		f2 := ofd.Must(rr.Schema(), []string{"seq"}, []string{"value"}, ofd.Pointwise)
		o2 := FromOFD(f2)
		if f2.Holds(rr) != o2.Holds(rr) {
			t.Fatalf("trial %d: OFD.Holds=%v but OD.Holds=%v", trial, f2.Holds(rr), o2.Holds(rr))
		}
	}
}

func TestRankSalaryApplication(t *testing.T) {
	// §4.2.4: rank → salary lets an index on rank serve salary queries.
	s := relation.NewSchema(
		relation.Attribute{Name: "rank", Kind: relation.KindInt},
		relation.Attribute{Name: "salary", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("emp", s, [][]relation.Value{
		{relation.Int(1), relation.Int(50)},
		{relation.Int(2), relation.Int(60)},
		{relation.Int(3), relation.Int(60)},
		{relation.Int(4), relation.Int(90)},
	})
	o := OD{LHS: []Marked{Asc(s, "rank")}, RHS: []Marked{Asc(s, "salary")}, Schema: s}
	if !o.Holds(r) {
		t.Error("rank → salary must hold (ties allowed)")
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table7()
	o := OD{
		LHS:    []Marked{Asc(r.Schema(), "nights")},
		RHS:    []Marked{Desc(r.Schema(), "avg/night")},
		Schema: r.Schema(),
	}
	if o.Kind() != "OD" {
		t.Error("Kind")
	}
	if got := o.String(); got != "nights≤ -> avg/night≥" {
		t.Errorf("String = %q", got)
	}
}

// TestHoldsSortedMatchesPairScan checks the single-attribute sort-and-scan
// fast path against the O(n²) pair-scan oracle over random relations with
// every mark combination, nulls, ties, and (via NaN) the totality
// fallback.
func TestHoldsSortedMatchesPairScan(t *testing.T) {
	s := relation.NewSchema(
		relation.Attribute{Name: "l", Kind: relation.KindFloat},
		relation.Attribute{Name: "r", Kind: relation.KindFloat},
	)
	rng := rand.New(rand.NewSource(23))
	val := func(withNaN bool) relation.Value {
		switch rng.Intn(8) {
		case 0:
			return relation.Null(relation.KindFloat)
		case 1:
			if withNaN {
				return relation.Float(math.NaN())
			}
		}
		return relation.Float(float64(rng.Intn(5)))
	}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(12)
		withNaN := trial%3 == 0
		rows := make([][]relation.Value, n)
		for i := range rows {
			rows[i] = []relation.Value{val(withNaN), val(withNaN)}
		}
		r := relation.MustFromRows("rand", s, rows)
		for _, lDesc := range []bool{false, true} {
			for _, rDesc := range []bool{false, true} {
				o := OD{
					LHS:    []Marked{{Col: 0, Desc: lDesc}},
					RHS:    []Marked{{Col: 1, Desc: rDesc}},
					Schema: s,
				}
				fast := o.Holds(r)
				slow := deps.HoldsByViolations(o, r)
				if fast != slow {
					t.Fatalf("trial %d (lDesc=%v rDesc=%v): fast=%v pair-scan=%v rows=%v",
						trial, lDesc, rDesc, fast, slow, rows)
				}
			}
		}
	}
}
