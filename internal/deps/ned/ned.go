// Package ned implements neighborhood dependencies (paper §3.2, Bassée &
// Wijsen [4]): constraints between neighborhood predicates — per-attribute
// distance thresholds on both sides. If two tuples are within α_i on every
// LHS attribute, they must be within β_j on every RHS attribute.
//
// MFDs are the NEDs whose LHS thresholds are all 0 (equality), witnessing
// the MFD → NED edge of the family tree.
package ned

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/mfd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Predicate is a neighborhood predicate A_1^{α_1} ... A_n^{α_n}: a
// conjunction of per-attribute distance thresholds.
type Predicate []Term

// Term is one attribute with its closeness function and threshold.
type Term struct {
	Col       int
	Metric    metric.Metric
	Threshold float64
}

// Agree reports whether rows i and j agree on the predicate: distance ≤
// threshold on every term. NaN distances (incomparable values) never agree.
func (p Predicate) Agree(r *relation.Relation, i, j int) bool {
	for _, t := range p {
		d := t.Metric.Distance(r.Value(i, t.Col), r.Value(j, t.Col))
		if !(d <= t.Threshold) { // NaN fails
			return false
		}
	}
	return true
}

// String renders the predicate as "name^1 address^5".
func (p Predicate) String(names []string) string {
	parts := make([]string, len(p))
	for i, t := range p {
		n := fmt.Sprintf("a%d", t.Col)
		if names != nil && t.Col < len(names) {
			n = names[t.Col]
		}
		parts[i] = fmt.Sprintf("%s^%.3g", n, t.Threshold)
	}
	return strings.Join(parts, " ")
}

// NED is a neighborhood dependency LHS → RHS between two predicates.
type NED struct {
	LHS, RHS Predicate
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// T builds a term with the default metric for the attribute's kind.
func T(schema *relation.Schema, name string, threshold float64) Term {
	i := schema.MustIndex(name)
	return Term{Col: i, Metric: metric.ForKind(schema.Attr(i).Kind), Threshold: threshold}
}

// FromMFD embeds an MFD as the special-case NED with LHS thresholds 0
// (Fig 1: MFD → NED).
func FromMFD(m mfd.MFD) NED {
	n := NED{Schema: m.Schema}
	m.LHS.Each(func(c int) {
		n.LHS = append(n.LHS, Term{Col: c, Metric: metric.Equality{}, Threshold: 0})
	})
	for _, d := range m.RHS {
		n.RHS = append(n.RHS, Term{Col: d.Col, Metric: d.Metric, Threshold: d.Delta})
	}
	return n
}

// Kind implements deps.Dependency.
func (n NED) Kind() string { return "NED" }

// String renders the NED in the paper's superscript notation.
func (n NED) String() string {
	var names []string
	if n.Schema != nil {
		names = n.Schema.Names()
	}
	return fmt.Sprintf("%s -> %s", n.LHS.String(names), n.RHS.String(names))
}

// Holds implements deps.Dependency.
func (n NED) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(n, r)
}

// Violations implements deps.Dependency: pairs agreeing on the LHS
// predicate but not the RHS predicate. Validation is inherently pairwise
// (O(n²)): neighborhoods are not equivalence classes, so partitions do not
// apply.
func (n NED) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if n.Schema != nil {
		names = n.Schema.Names()
	}
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if n.LHS.Agree(r, i, j) && !n.RHS.Agree(r, i, j) {
				out = append(out, deps.Pair(i, j,
					"agree on %s but not on %s", n.LHS.String(names), n.RHS.String(names)))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// SupportConfidence returns the number of pairs agreeing on the LHS
// predicate (support) and the fraction of those also agreeing on the RHS
// (confidence) — the discovery objectives of §3.2.3.
func (n NED) SupportConfidence(r *relation.Relation) (support int, confidence float64) {
	good := 0
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if n.LHS.Agree(r, i, j) {
				support++
				if n.RHS.Agree(r, i, j) {
					good++
				}
			}
		}
	}
	if support == 0 {
		return 0, 1
	}
	return support, float64(good) / float64(support)
}
