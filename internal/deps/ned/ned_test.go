package ned

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/deps/mfd"
	"deptree/internal/gen"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

func ned1(r *relation.Relation) NED {
	// ned1: name^1 address^5 → street^5 (paper §3.2.1).
	s := r.Schema()
	return NED{
		LHS:    Predicate{T(s, "name", 1), T(s, "address", 5)},
		RHS:    Predicate{T(s, "street", 5)},
		Schema: s,
	}
}

func TestNED1OnTable6(t *testing.T) {
	r := gen.Table6()
	n := ned1(r)
	if !n.Holds(r) {
		t.Errorf("ned1 must hold on r6; violations: %v", n.Violations(r, 0))
	}
	// t2 and t6 agree on the LHS predicate (paper's worked example).
	if !n.LHS.Agree(r, 1, 5) {
		t.Error("t2 and t6 must agree on name^1 address^5")
	}
	if !n.RHS.Agree(r, 1, 5) {
		t.Error("t2 and t6 must agree on street^5")
	}
}

func TestNEDViolation(t *testing.T) {
	r := gen.Table6().Clone()
	// Corrupt t6's street far away: the (t2, t6) pair now violates.
	r.SetValue(5, r.Schema().MustIndex("street"), relation.String("Completely Different Blvd 99"))
	n := ned1(r)
	vs := n.Violations(r, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 1 || vs[0].Rows[1] != 5 {
		t.Fatalf("violations = %v, want pair (t2,t6)", vs)
	}
	if vs := n.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestMFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge MFD → NED: LHS thresholds 0 reproduce the MFD exactly.
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(20, []int{3, 4}, rng.Int63())
		m := mfd.Must(r.Schema(), []string{"c0"}, []string{"c1"}, 1)
		// Swap the default string metric for equality so distances are 0/1.
		m.RHS[0].Metric = metric.Equality{}
		n := FromMFD(m)
		if m.Holds(r) != n.Holds(r) {
			t.Fatalf("trial %d: MFD.Holds=%v but NED.Holds=%v", trial, m.Holds(r), n.Holds(r))
		}
	}
}

func TestFDThroughMFDEmbedding(t *testing.T) {
	// Transitive edge FD → MFD → NED.
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		n := FromMFD(mfd.FromFD(f))
		if f.Holds(r) != n.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but NED.Holds=%v", trial, f.Holds(r), n.Holds(r))
		}
	}
}

func TestSupportConfidence(t *testing.T) {
	r := gen.Table6()
	n := ned1(r)
	support, conf := n.SupportConfidence(r)
	if support == 0 {
		t.Fatal("t2/t6 should support the LHS predicate")
	}
	if conf != 1 {
		t.Errorf("confidence = %v, want 1 (ned1 holds)", conf)
	}
	// A predicate nothing satisfies.
	strict := NED{
		LHS:    Predicate{T(r.Schema(), "name", -1)},
		RHS:    Predicate{T(r.Schema(), "street", 0)},
		Schema: r.Schema(),
	}
	s0, c0 := strict.SupportConfidence(r)
	if s0 != 0 || c0 != 1 {
		t.Errorf("empty support: %d, %v", s0, c0)
	}
}

func TestNullsNeverAgree(t *testing.T) {
	s := relation.Strings("a", "b")
	r := relation.MustFromRows("n", s, [][]relation.Value{
		{relation.Null(relation.KindString), relation.String("x")},
		{relation.Null(relation.KindString), relation.String("y")},
	})
	n := NED{LHS: Predicate{T(s, "a", 5)}, RHS: Predicate{T(s, "b", 0)}, Schema: s}
	// Null distances are NaN: the pair does not agree on the LHS, so there
	// is no violation.
	if !n.Holds(r) {
		t.Error("null LHS values must not produce violations")
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table6()
	n := ned1(r)
	if n.Kind() != "NED" {
		t.Error("Kind")
	}
	if got := n.String(); got != "name^1 address^5 -> street^5" {
		t.Errorf("String = %q", got)
	}
}
