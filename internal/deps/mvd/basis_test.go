package mvd

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestDependencyBasisTextbook(t *testing.T) {
	// R(A,B,C,D) with A ↠ B: basis of {A} is {B}, {C,D}.
	mvds := []MVD{{LHS: attrset.Of(0), RHS: attrset.Of(1), NumAttrs: 4}}
	basis := DependencyBasis(attrset.Of(0), mvds, 4)
	if len(basis) != 2 || basis[0] != attrset.Of(1) || basis[1] != attrset.Of(2, 3) {
		t.Errorf("basis = %v, want [{B} {C,D}]", basis)
	}
	// With A ↠ B and A ↠ C the basis splits to {B}, {C}, {D}.
	mvds2 := append(mvds, MVD{LHS: attrset.Of(0), RHS: attrset.Of(2), NumAttrs: 4})
	basis2 := DependencyBasis(attrset.Of(0), mvds2, 4)
	if len(basis2) != 3 {
		t.Errorf("basis = %v, want three singleton-ish blocks", basis2)
	}
	// Basis of the full set is empty.
	if got := DependencyBasis(attrset.Full(4), mvds, 4); got != nil {
		t.Errorf("basis of R = %v", got)
	}
}

func TestImpliesComplementationAndAugmentation(t *testing.T) {
	// Complementation: A ↠ B implies A ↠ CD over R(A,B,C,D).
	sigma := []MVD{{LHS: attrset.Of(0), RHS: attrset.Of(1), NumAttrs: 4}}
	if !Implies(sigma, MVD{LHS: attrset.Of(0), RHS: attrset.Of(2, 3), NumAttrs: 4}) {
		t.Error("complementation failed")
	}
	// Reflexivity / trivial: A ↠ A.
	if !Implies(sigma, MVD{LHS: attrset.Of(0), RHS: attrset.Of(0), NumAttrs: 4}) {
		t.Error("trivial MVD not implied")
	}
	// Union: A ↠ B and A ↠ C imply A ↠ BC.
	sigma2 := append(sigma, MVD{LHS: attrset.Of(0), RHS: attrset.Of(2), NumAttrs: 4})
	if !Implies(sigma2, MVD{LHS: attrset.Of(0), RHS: attrset.Of(1, 2), NumAttrs: 4}) {
		t.Error("union failed")
	}
	// A ↠ B alone does not imply A ↠ C.
	if Implies(sigma, MVD{LHS: attrset.Of(0), RHS: attrset.Of(2), NumAttrs: 4}) {
		t.Error("unsound implication")
	}
}

// TestImplicationSoundOnModels: for random instances r, take Σ = some MVDs
// valid in r; every MVD implied by Σ must also be valid in r (soundness of
// the inference against arbitrary models).
func TestImplicationSoundOnModels(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 4
	full := attrset.Full(n)
	for trial := 0; trial < 25; trial++ {
		r := gen.Categorical(10, []int{2, 2, 2, 2}, rng.Int63())
		// Collect all valid single-LHS MVDs as Σ.
		var sigma []MVD
		for a := 0; a < n; a++ {
			x := attrset.Single(a)
			full.Minus(x).ProperNonemptySubsets(func(y attrset.Set) {
				m := MVD{LHS: x, RHS: y, NumAttrs: n, Schema: r.Schema()}
				if m.Holds(r) {
					sigma = append(sigma, m)
				}
			})
		}
		// Every implied MVD with any LHS must hold in r.
		full.Subsets(func(x attrset.Set) {
			if x.Len() > 2 {
				return
			}
			full.Minus(x).ProperNonemptySubsets(func(y attrset.Set) {
				m := MVD{LHS: x, RHS: y, NumAttrs: n, Schema: r.Schema()}
				if Implies(sigma, m) && !m.Holds(r) {
					t.Fatalf("trial %d: implied MVD %v fails on the model", trial, m)
				}
			})
		})
	}
}

func TestImpliesMatchesFHDIntuition(t *testing.T) {
	// On the textbook course/book/lecturer instance, course ↠ book is in
	// Σ; implication gives course ↠ lecturer by complementation, and the
	// instance satisfies it.
	s := relation.Strings("course", "book", "lecturer")
	r := relation.New("c", s)
	for _, b := range []string{"S", "N"} {
		for _, l := range []string{"J", "W"} {
			_ = r.Append([]relation.Value{relation.String("AHA"), relation.String(b), relation.String(l)})
		}
	}
	sigma := []MVD{Must(s, []string{"course"}, []string{"book"})}
	implied := MVD{LHS: attrset.Of(0), RHS: attrset.Of(2), NumAttrs: 3, Schema: s}
	if !Implies(sigma, implied) {
		t.Error("complement not implied")
	}
	if !implied.Holds(r) {
		t.Error("model check failed")
	}
}
