// Package mvd implements multivalued dependencies X ↠ Y (paper §2.6, Fagin
// [30]) together with their hierarchical generalization FHDs (§2.6.5) and
// statistical relaxation AMVDs (§2.6.6).
//
// An MVD X ↠ Y with Z = R − X − Y holds iff r = π_XY(r) ⋈ π_XZ(r):
// within every X-group the Y-values and Z-values combine freely. MVDs are
// tuple-generating dependencies — they require the presence of tuples —
// in contrast to the equality-generating FDs.
package mvd

import (
	"fmt"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/relation"
)

// MVD is a multivalued dependency X ↠ Y over a scheme with NumAttrs
// attributes; Z is implicitly R − X − Y.
type MVD struct {
	// LHS is X; RHS is Y. They must be disjoint.
	LHS, RHS attrset.Set
	// NumAttrs is |R|, needed to derive Z.
	NumAttrs int
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// New builds an MVD from attribute names.
func New(schema *relation.Schema, lhs, rhs []string) (MVD, error) {
	l, err := schema.Indices(lhs...)
	if err != nil {
		return MVD{}, fmt.Errorf("mvd: %w", err)
	}
	r, err := schema.Indices(rhs...)
	if err != nil {
		return MVD{}, fmt.Errorf("mvd: %w", err)
	}
	m := MVD{LHS: attrset.Of(l...), RHS: attrset.Of(r...).Minus(attrset.Of(l...)), NumAttrs: schema.Len(), Schema: schema}
	return m, nil
}

// Must is New for statically-known dependencies; it panics on error.
func Must(schema *relation.Schema, lhs, rhs []string) MVD {
	m, err := New(schema, lhs, rhs)
	if err != nil {
		panic(err)
	}
	return m
}

// FromFD embeds an FD X → Y as the MVD X ↠ Y (Fig 1: FD → MVD — every FD
// is an MVD whose Y-value set per (X, Z) has size 1).
func FromFD(lhs, rhs attrset.Set, numAttrs int, schema *relation.Schema) MVD {
	return MVD{LHS: lhs, RHS: rhs.Minus(lhs), NumAttrs: numAttrs, Schema: schema}
}

// Z returns the complement attribute set R − X − Y.
func (m MVD) Z() attrset.Set {
	return attrset.Full(m.NumAttrs).Minus(m.LHS).Minus(m.RHS)
}

// Kind implements deps.Dependency.
func (m MVD) Kind() string { return "MVD" }

// String renders the MVD.
func (m MVD) String() string {
	var names []string
	if m.Schema != nil {
		names = m.Schema.Names()
	}
	return fmt.Sprintf("%s ->> %s", m.LHS.Names(names), m.RHS.Names(names))
}

// Holds implements deps.Dependency: r = π_XY(r) ⋈ π_XZ(r), checked
// group-wise by comparing distinct (Y,Z) combinations against
// |Y-set| × |Z-set| per X-group.
func (m MVD) Holds(r *relation.Relation) bool {
	distinct, product := m.countCombos(r)
	return distinct == product
}

// SpuriousRatio returns the AMVD accuracy measure: the fraction of spurious
// tuples introduced by joining the two projections,
// (|π_XY ⋈ π_XZ| − |r|) / |π_XY ⋈ π_XZ| over distinct tuples (§2.6.6).
func (m MVD) SpuriousRatio(r *relation.Relation) float64 {
	distinct, product := m.countCombos(r)
	if product == 0 {
		return 0
	}
	return float64(product-distinct) / float64(product)
}

// countCombos returns, summed over X-groups, the number of distinct (Y,Z)
// combinations present and the size |Y-set| × |Z-set| of the join.
func (m MVD) countCombos(r *relation.Relation) (distinct, product int) {
	xCodes, xCard := r.GroupCodes(m.LHS.Cols())
	yCodes, _ := r.GroupCodes(m.RHS.Cols())
	zCodes, _ := r.GroupCodes(m.Z().Cols())
	type pair struct{ a, b int }
	ySets := make([]map[int]bool, xCard)
	zSets := make([]map[int]bool, xCard)
	combos := make([]map[pair]bool, xCard)
	for g := 0; g < xCard; g++ {
		ySets[g] = map[int]bool{}
		zSets[g] = map[int]bool{}
		combos[g] = map[pair]bool{}
	}
	for row, g := range xCodes {
		ySets[g][yCodes[row]] = true
		zSets[g][zCodes[row]] = true
		combos[g][pair{yCodes[row], zCodes[row]}] = true
	}
	for g := 0; g < xCard; g++ {
		distinct += len(combos[g])
		product += len(ySets[g]) * len(zSets[g])
	}
	return distinct, product
}

// Violations implements deps.Dependency: for each missing (Y, Z)
// combination in an X-group, report the witness pair (t1, t2) whose swap
// tuple is absent.
func (m MVD) Violations(r *relation.Relation, limit int) []deps.Violation {
	xCodes, _ := r.GroupCodes(m.LHS.Cols())
	yCodes, _ := r.GroupCodes(m.RHS.Cols())
	zCodes, _ := r.GroupCodes(m.Z().Cols())
	type pair struct{ y, z int }
	// Group rows by X; record existing (y,z) combos and a representative row
	// per (x,y) and (x,z).
	groups := make(map[int][]int)
	for row, g := range xCodes {
		groups[g] = append(groups[g], row)
	}
	var out []deps.Violation
	var names []string
	if m.Schema != nil {
		names = m.Schema.Names()
	}
	// Deterministic group order: by smallest row.
	order := make([]int, 0, len(groups))
	for g := range groups {
		order = append(order, g)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && groups[order[j]][0] < groups[order[j-1]][0]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, g := range order {
		rows := groups[g]
		combos := map[pair]bool{}
		for _, row := range rows {
			combos[pair{yCodes[row], zCodes[row]}] = true
		}
		for a := 0; a < len(rows); a++ {
			for b := 0; b < len(rows); b++ {
				if a == b {
					continue
				}
				t1, t2 := rows[a], rows[b]
				if !combos[pair{yCodes[t1], zCodes[t2]}] {
					out = append(out, deps.Pair(t1, t2,
						"missing swap tuple: %s of t%d with %s of t%d",
						m.RHS.Names(names), t1+1, m.Z().Names(names), t2+1))
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}
