package mvd

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestMVD1OnTable5(t *testing.T) {
	// mvd1: address, rate ->> region (paper §2.6.1) holds on r5.
	r := gen.Table5()
	m := Must(r.Schema(), []string{"address", "rate"}, []string{"region"})
	if !m.Holds(r) {
		t.Error("mvd1 must hold on r5")
	}
	if m.SpuriousRatio(r) != 0 {
		t.Error("exact MVD has spurious ratio 0")
	}
}

func TestMVDTextbookCase(t *testing.T) {
	// course ->> book, independent of lecturer. Classic 4NF example.
	s := relation.Strings("course", "book", "lecturer")
	rows := [][]relation.Value{
		{relation.String("AHA"), relation.String("Silberschatz"), relation.String("John")},
		{relation.String("AHA"), relation.String("Nederpelt"), relation.String("John")},
		{relation.String("AHA"), relation.String("Silberschatz"), relation.String("William")},
		{relation.String("AHA"), relation.String("Nederpelt"), relation.String("William")},
		{relation.String("OSO"), relation.String("Silberschatz"), relation.String("Bob")},
	}
	r := relation.MustFromRows("courses", s, rows)
	m := Must(s, []string{"course"}, []string{"book"})
	if !m.Holds(r) {
		t.Error("course ->> book must hold on the complete product")
	}
	// Remove one combination: now the product is incomplete.
	broken := r.Select(func(i int) bool { return i != 3 })
	if m.Holds(broken) {
		t.Error("course ->> book must fail with a missing combination")
	}
	vs := m.Violations(broken, 0)
	if len(vs) == 0 {
		t.Fatal("expected violations on broken instance")
	}
	// The violation involves rows of the AHA group.
	for _, v := range vs {
		for _, row := range v.Rows {
			if !broken.Value(row, 0).Equal(relation.String("AHA")) {
				t.Errorf("violation row t%d outside the AHA group", row+1)
			}
		}
	}
	if got := m.Violations(broken, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → MVD: if the FD holds, the MVD holds (one Y per X).
	// The converse is false in general, so only implication is checked.
	rng := rand.New(rand.NewSource(91))
	holdCount := 0
	for trial := 0; trial < 80; trial++ {
		r := gen.Categorical(15, []int{3, 2, 2}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		m := FromFD(f.LHS, f.RHS, r.Cols(), r.Schema())
		if f.Holds(r) {
			holdCount++
			if !m.Holds(r) {
				t.Fatalf("trial %d: FD holds but MVD fails — FD ⊆ MVD broken", trial)
			}
		}
	}
	if holdCount == 0 {
		t.Skip("no FD-holding instance generated; adjust generator")
	}
}

func TestMVDNotImpliedByFDViolation(t *testing.T) {
	// An instance where the MVD holds but the FD does not: two Y values per
	// X combined freely with Z.
	s := relation.Strings("x", "y", "z")
	r := relation.MustFromRows("m", s, [][]relation.Value{
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("2"), relation.String("p")},
		{relation.String("a"), relation.String("1"), relation.String("q")},
		{relation.String("a"), relation.String("2"), relation.String("q")},
	})
	f := fd.Must(s, []string{"x"}, []string{"y"})
	m := Must(s, []string{"x"}, []string{"y"})
	if f.Holds(r) {
		t.Error("FD should fail")
	}
	if !m.Holds(r) {
		t.Error("MVD should hold (free combination)")
	}
}

func TestFHDSingleBlockEqualsMVD(t *testing.T) {
	// Fig 1 edge MVD → FHD: with k=1, FHD ≡ MVD.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(12, []int{2, 2, 2}, rng.Int63())
		m := Must(r.Schema(), []string{"c0"}, []string{"c1"})
		h := FromMVD(m)
		if m.Holds(r) != h.Holds(r) {
			t.Fatalf("trial %d: MVD.Holds=%v but FHD(k=1).Holds=%v",
				trial, m.Holds(r), h.Holds(r))
		}
	}
}

func TestFHDMultiBlock(t *testing.T) {
	// X : {Y1; Y2} on a relation where all three blocks combine freely.
	s := relation.Strings("x", "y1", "y2", "z")
	r := relation.New("h", s)
	for _, y1 := range []string{"a", "b"} {
		for _, y2 := range []string{"c", "d"} {
			for _, z := range []string{"e", "f"} {
				_ = r.Append([]relation.Value{
					relation.String("k"), relation.String(y1), relation.String(y2), relation.String(z),
				})
			}
		}
	}
	h := FHD{LHS: attrset.Of(0), Blocks: []attrset.Set{attrset.Of(1), attrset.Of(2)}, NumAttrs: 4, Schema: s}
	if !h.Holds(r) {
		t.Error("complete product must satisfy the FHD")
	}
	broken := r.Select(func(i int) bool { return i != 5 })
	if h.Holds(broken) {
		t.Error("FHD must fail with a missing combination")
	}
	if vs := h.Violations(broken, 0); len(vs) != 1 {
		t.Errorf("violations = %v, want 1 group", vs)
	}
	if vs := h.Violations(r, 0); vs != nil {
		t.Errorf("no violations expected on complete product, got %v", vs)
	}
}

func TestAMVD(t *testing.T) {
	s := relation.Strings("x", "y", "z")
	r := relation.MustFromRows("a", s, [][]relation.Value{
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("2"), relation.String("p")},
		{relation.String("a"), relation.String("1"), relation.String("q")},
		// missing (a, 2, q): join introduces 1 spurious tuple out of 4.
	})
	m := Must(s, []string{"x"}, []string{"y"})
	if got := m.SpuriousRatio(r); got != 0.25 {
		t.Errorf("spurious ratio = %v, want 1/4", got)
	}
	a := AMVD{MVD: m, MaxSpurious: 0.25}
	if !a.Holds(r) {
		t.Error("ε=0.25 should tolerate one spurious tuple")
	}
	exact := FromMVDExact(m)
	if exact.Holds(r) {
		t.Error("ε=0 must reject the incomplete product")
	}
	if vs := exact.Violations(r, 0); len(vs) == 0 {
		t.Error("expected violations")
	}
	if vs := a.Violations(r, 0); vs != nil {
		t.Error("holding AMVD must report no violations")
	}
}

func TestAMVDExactEqualsMVDEdge(t *testing.T) {
	// Fig 1 edge MVD → AMVD: ε=0 AMVD ≡ MVD.
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 50; trial++ {
		r := gen.Categorical(12, []int{2, 2, 2}, rng.Int63())
		m := Must(r.Schema(), []string{"c0"}, []string{"c1"})
		a := FromMVDExact(m)
		if m.Holds(r) != a.Holds(r) {
			t.Fatalf("trial %d: MVD.Holds=%v but AMVD(ε=0).Holds=%v",
				trial, m.Holds(r), a.Holds(r))
		}
	}
}

func TestStringers(t *testing.T) {
	r := gen.Table5()
	m := Must(r.Schema(), []string{"address", "rate"}, []string{"region"})
	if m.Kind() != "MVD" {
		t.Error("Kind")
	}
	if got := m.String(); got != "address,rate ->> region" {
		t.Errorf("String = %q", got)
	}
	h := FromMVD(m)
	if h.Kind() != "FHD" {
		t.Error("FHD Kind")
	}
	if got := h.String(); got != "address,rate : {region}" {
		t.Errorf("FHD String = %q", got)
	}
	a := FromMVDExact(m)
	if a.Kind() != "AMVD" {
		t.Error("AMVD Kind")
	}
}

func TestNewErrors(t *testing.T) {
	s := relation.Strings("a", "b")
	if _, err := New(s, []string{"zzz"}, []string{"b"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}
