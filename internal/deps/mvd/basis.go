package mvd

import (
	"sort"

	"deptree/internal/attrset"
)

// DependencyBasis computes the dependency basis of X with respect to a set
// of MVDs over n attributes, by Beeri's refinement algorithm: start from
// the single block R − X and repeatedly split blocks using each MVD
// W ↠ Z whose LHS misses the block — the classical fixpoint underlying
// MVD implication (§2.6; Beeri, Fagin & Howard [6] axiomatize the logic).
// The result is the unique partition of R − X such that the MVDs implied
// by Σ with LHS X are exactly X ↠ (union of blocks).
func DependencyBasis(x attrset.Set, mvds []MVD, n int) []attrset.Set {
	full := attrset.Full(n)
	basis := []attrset.Set{full.Minus(x)}
	if basis[0].IsEmpty() {
		return nil
	}
	// Σ acts through both Y and its complement; materialize both forms.
	type rule struct{ w, z attrset.Set }
	var rules []rule
	for _, m := range mvds {
		z1 := m.RHS.Minus(m.LHS)
		z2 := full.Minus(m.LHS).Minus(m.RHS)
		rules = append(rules, rule{w: m.LHS, z: z1}, rule{w: m.LHS, z: z2})
	}
	for changed := true; changed; {
		changed = false
		for _, rl := range rules {
			for i := 0; i < len(basis); i++ {
				b := basis[i]
				// Split b by Z when the rule's LHS is disjoint from b and
				// Z cuts b properly.
				if b.Intersects(rl.w) {
					continue
				}
				inter := b.Intersect(rl.z)
				if inter.IsEmpty() || inter == b {
					continue
				}
				basis[i] = inter
				basis = append(basis, b.Minus(inter))
				changed = true
			}
		}
	}
	sort.Slice(basis, func(i, j int) bool { return basis[i] < basis[j] })
	return basis
}

// Implies reports whether the MVD set logically implies X ↠ Y over n
// attributes (pure MVD implication, no FDs): Y − X must be a union of
// dependency-basis blocks of X.
func Implies(mvds []MVD, m MVD) bool {
	target := m.RHS.Minus(m.LHS)
	if target.IsEmpty() {
		return true // trivial MVD
	}
	rest := target
	for _, b := range DependencyBasis(m.LHS, mvds, m.NumAttrs) {
		if b.SubsetOf(target) {
			rest = rest.Minus(b)
		}
	}
	return rest.IsEmpty()
}
