package mvd

import (
	"fmt"
	"strings"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/relation"
)

// FHD is a full hierarchical dependency X : {Y_1, ..., Y_k} (paper §2.6.5,
// Delobel [27]): the relation decomposes losslessly into π_XY1, ..., π_XYk
// and π_X(R−XY1...Yk). With k = 1 an FHD is exactly the MVD X ↠ Y_1,
// witnessing the MVD → FHD edge of the family tree.
type FHD struct {
	// LHS is X.
	LHS attrset.Set
	// Blocks are the Y_i, pairwise disjoint and disjoint from X.
	Blocks []attrset.Set
	// NumAttrs is |R|.
	NumAttrs int
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromMVD embeds an MVD as the single-block FHD (Fig 1: MVD → FHD).
func FromMVD(m MVD) FHD {
	return FHD{LHS: m.LHS, Blocks: []attrset.Set{m.RHS}, NumAttrs: m.NumAttrs, Schema: m.Schema}
}

// Kind implements deps.Dependency.
func (f FHD) Kind() string { return "FHD" }

// String renders the FHD.
func (f FHD) String() string {
	var names []string
	if f.Schema != nil {
		names = f.Schema.Names()
	}
	blocks := make([]string, len(f.Blocks))
	for i, b := range f.Blocks {
		blocks[i] = b.Names(names)
	}
	return fmt.Sprintf("%s : {%s}", f.LHS.Names(names), strings.Join(blocks, "; "))
}

// Rest returns R − X − Y1 − ... − Yk.
func (f FHD) Rest() attrset.Set {
	rest := attrset.Full(f.NumAttrs).Minus(f.LHS)
	for _, b := range f.Blocks {
		rest = rest.Minus(b)
	}
	return rest
}

// Holds implements deps.Dependency: within every X-group, the distinct
// combinations over (Y_1, ..., Y_k, Rest) must equal the product of the
// per-block distinct counts — i.e. the hierarchical join is lossless.
func (f FHD) Holds(r *relation.Relation) bool {
	distinct, product := f.countCombos(r)
	return distinct == product
}

func (f FHD) countCombos(r *relation.Relation) (distinct, product int) {
	xCodes, xCard := r.GroupCodes(f.LHS.Cols())
	blocks := make([][]int, 0, len(f.Blocks)+1)
	for _, b := range f.Blocks {
		codes, _ := r.GroupCodes(b.Cols())
		blocks = append(blocks, codes)
	}
	if rest := f.Rest(); !rest.IsEmpty() {
		codes, _ := r.GroupCodes(rest.Cols())
		blocks = append(blocks, codes)
	}
	perGroupSets := make([]map[int]map[int]bool, len(blocks)) // block -> group -> set
	for i := range perGroupSets {
		perGroupSets[i] = map[int]map[int]bool{}
	}
	comboSet := make(map[string]bool)
	var key strings.Builder
	for row, g := range xCodes {
		key.Reset()
		fmt.Fprintf(&key, "%d", g)
		for i, codes := range blocks {
			fmt.Fprintf(&key, ",%d", codes[row])
			set := perGroupSets[i][g]
			if set == nil {
				set = map[int]bool{}
				perGroupSets[i][g] = set
			}
			set[codes[row]] = true
		}
		comboSet[key.String()] = true
	}
	distinct = len(comboSet)
	for g := 0; g < xCard; g++ {
		p := 1
		for i := range blocks {
			p *= len(perGroupSets[i][g])
		}
		product += p
	}
	return distinct, product
}

// Violations implements deps.Dependency. FHD violations are groups whose
// combination count falls short of the product; the group's rows witness
// the missing join tuples.
func (f FHD) Violations(r *relation.Relation, limit int) []deps.Violation {
	if f.Holds(r) {
		return nil
	}
	// Report per-X-group shortfalls.
	xCodes, xCard := r.GroupCodes(f.LHS.Cols())
	groups := make([][]int, xCard)
	for row, g := range xCodes {
		groups[g] = append(groups[g], row)
	}
	var out []deps.Violation
	for _, rows := range groups {
		if len(rows) < 2 {
			continue
		}
		sub := r.Select(func(row int) bool {
			for _, x := range rows {
				if x == row {
					return true
				}
			}
			return false
		})
		d, p := f.countCombos(sub)
		if d != p {
			out = append(out, deps.Violation{
				Rows: rows,
				Msg:  fmt.Sprintf("X-group decomposes with %d of %d required combinations", d, p),
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// AMVD is an approximate multivalued dependency ε-MVD (paper §2.6.6, Kenig
// et al. [59]): the MVD holds up to a bounded fraction of spurious tuples
// introduced by the decomposition join. With ε = 0 it is the exact MVD,
// witnessing the MVD → AMVD edge of the family tree.
type AMVD struct {
	MVD
	// MaxSpurious is the accuracy threshold ε ≥ 0.
	MaxSpurious float64
}

// FromMVDExact embeds an MVD as the ε=0 AMVD (Fig 1: MVD → AMVD).
func FromMVDExact(m MVD) AMVD { return AMVD{MVD: m} }

// Kind implements deps.Dependency.
func (a AMVD) Kind() string { return "AMVD" }

// String renders the AMVD.
func (a AMVD) String() string {
	return fmt.Sprintf("%s (ε=%.3g)", a.MVD.String(), a.MaxSpurious)
}

// Holds implements deps.Dependency: SpuriousRatio ≤ ε.
func (a AMVD) Holds(r *relation.Relation) bool {
	return a.SpuriousRatio(r) <= a.MaxSpurious
}

// Violations implements deps.Dependency, delegating to the exact MVD when
// the ratio exceeds the threshold.
func (a AMVD) Violations(r *relation.Relation, limit int) []deps.Violation {
	if a.Holds(r) {
		return nil
	}
	return a.MVD.Violations(r, limit)
}
