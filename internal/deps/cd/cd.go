// Package cd implements comparable dependencies (paper §3.4, Song, Chen &
// Yu [91],[92]) for dataspaces: constraints over *synonym attribute pairs*
// from heterogeneous sources. A similarity function θ(A_i, A_j) matches two
// tuples if any of the three operator slots — (A_i,A_i), (A_i,A_j),
// (A_j,A_j) — evaluates within its threshold; a CD states that tuples
// similar w.r.t. all LHS similarity functions must be similar w.r.t. the
// RHS function.
//
// NEDs are the CDs whose similarity functions are defined on a single
// attribute (A_i = A_j), witnessing the NED → CD edge of the family tree.
package cd

import (
	"fmt"
	"math"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/ned"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// SimilarityFunc is θ(A_i, A_j): a pair of (possibly identical) synonym
// columns with distance thresholds for the ii, ij and jj combinations.
// A negative threshold disables a slot.
type SimilarityFunc struct {
	// I and J are the synonym columns (I == J for single-attribute
	// functions).
	I, J int
	// Metric measures value distance across both columns' domains.
	Metric metric.Metric
	// TII, TIJ, TJJ are the three slot thresholds.
	TII, TIJ, TJJ float64
}

// Theta builds a two-attribute similarity function with the default string
// metric.
func Theta(schema *relation.Schema, ai, aj string, tii, tij, tjj float64) SimilarityFunc {
	i, j := schema.MustIndex(ai), schema.MustIndex(aj)
	return SimilarityFunc{I: i, J: j, Metric: metric.ForKind(schema.Attr(i).Kind), TII: tii, TIJ: tij, TJJ: tjj}
}

// Single builds a one-attribute similarity function (the NED special case).
func Single(schema *relation.Schema, a string, t float64) SimilarityFunc {
	i := schema.MustIndex(a)
	return SimilarityFunc{I: i, J: i, Metric: metric.ForKind(schema.Attr(i).Kind), TII: t, TIJ: -1, TJJ: -1}
}

// Similar reports whether rows a and b are similar w.r.t. θ: at least one
// slot evaluates true (paper §3.4.1). Null values never match.
func (f SimilarityFunc) Similar(r *relation.Relation, a, b int) bool {
	check := func(col1, col2 int, t float64) bool {
		if t < 0 {
			return false
		}
		v1, v2 := r.Value(a, col1), r.Value(b, col2)
		if v1.IsNull() || v2.IsNull() {
			return false
		}
		d := f.Metric.Distance(v1, v2)
		if math.IsNaN(d) {
			return false
		}
		return d <= t
	}
	// Slot (i,i): both tuples on A_i. Slot (j,j): both on A_j.
	// Slot (i,j): either orientation across the synonym pair.
	return check(f.I, f.I, f.TII) ||
		check(f.J, f.J, f.TJJ) ||
		check(f.I, f.J, f.TIJ) || check(f.J, f.I, f.TIJ)
}

// String renders the similarity function.
func (f SimilarityFunc) String(names []string) string {
	n := func(c int) string {
		if names != nil && c < len(names) {
			return names[c]
		}
		return fmt.Sprintf("a%d", c)
	}
	if f.I == f.J {
		return fmt.Sprintf("θ(%s≈%.3g)", n(f.I), f.TII)
	}
	return fmt.Sprintf("θ(%s,%s)[%.3g,%.3g,%.3g]", n(f.I), n(f.J), f.TII, f.TIJ, f.TJJ)
}

// CD is a comparable dependency ⋀θ(A_i, A_j) → θ(B_i, B_j).
type CD struct {
	LHS []SimilarityFunc
	RHS SimilarityFunc
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromNED embeds an NED as a CD over single-attribute similarity functions
// (Fig 1: NED → CD).
func FromNED(n ned.NED) (CD, error) {
	if len(n.RHS) != 1 {
		return CD{}, fmt.Errorf("cd: CD has a single RHS similarity function, NED has %d", len(n.RHS))
	}
	c := CD{Schema: n.Schema}
	for _, t := range n.LHS {
		c.LHS = append(c.LHS, SimilarityFunc{I: t.Col, J: t.Col, Metric: t.Metric, TII: t.Threshold, TIJ: -1, TJJ: -1})
	}
	rt := n.RHS[0]
	c.RHS = SimilarityFunc{I: rt.Col, J: rt.Col, Metric: rt.Metric, TII: rt.Threshold, TIJ: -1, TJJ: -1}
	return c, nil
}

// Kind implements deps.Dependency.
func (c CD) Kind() string { return "CD" }

// String renders the CD.
func (c CD) String() string {
	var names []string
	if c.Schema != nil {
		names = c.Schema.Names()
	}
	parts := make([]string, len(c.LHS))
	for i, f := range c.LHS {
		parts[i] = f.String(names)
	}
	return fmt.Sprintf("%s -> %s", strings.Join(parts, " ∧ "), c.RHS.String(names))
}

// Holds implements deps.Dependency.
func (c CD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(c, r)
}

// Violations implements deps.Dependency: pairs similar on every LHS
// function but dissimilar on the RHS function.
func (c CD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	var names []string
	if c.Schema != nil {
		names = c.Schema.Names()
	}
	for i := 0; i < r.Rows(); i++ {
	pairs:
		for j := i + 1; j < r.Rows(); j++ {
			for _, f := range c.LHS {
				if !f.Similar(r, i, j) {
					continue pairs
				}
			}
			if !c.RHS.Similar(r, i, j) {
				out = append(out, deps.Pair(i, j,
					"similar on LHS functions but not on %s", c.RHS.String(names)))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// G3 computes the error measure used by CD discovery validation (§3.4.3):
// the minimum fraction of tuples to remove so the CD holds. Violating pairs
// form a graph; the measure is a minimum vertex cover, approximated greedily
// by removing highest-degree tuples (exact computation is NP-complete [91]).
func (c CD) G3(r *relation.Relation) float64 {
	if r.Rows() == 0 {
		return 0
	}
	adj := make(map[int]map[int]bool)
	for _, v := range c.Violations(r, 0) {
		i, j := v.Rows[0], v.Rows[1]
		if adj[i] == nil {
			adj[i] = map[int]bool{}
		}
		if adj[j] == nil {
			adj[j] = map[int]bool{}
		}
		adj[i][j] = true
		adj[j][i] = true
	}
	removed := 0
	for {
		best, deg := -1, 0
		for v, ns := range adj {
			if len(ns) > deg {
				best, deg = v, len(ns)
			}
		}
		if best < 0 {
			break
		}
		removed++
		for n := range adj[best] {
			delete(adj[n], best)
			if len(adj[n]) == 0 {
				delete(adj, n)
			}
		}
		delete(adj, best)
	}
	return float64(removed) / float64(r.Rows())
}
