package cd

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/ned"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// cd1 is the paper's §3.4.1 example over the dataspace fixture:
// θ(region, city) → θ(addr, post). The paper quotes post/post distance 5;
// exact Levenshtein gives 6, so the jj threshold is 6 here — the semantics
// under test (synonym-slot matching) are unchanged.
func cd1(r *relation.Relation) CD {
	s := r.Schema()
	return CD{
		LHS:    []SimilarityFunc{Theta(s, "region", "city", 5, 5, 5)},
		RHS:    Theta(s, "addr", "post", 7, 9, 6),
		Schema: s,
	}
}

func TestCD1OnDataspace(t *testing.T) {
	r := gen.Dataspace()
	c := cd1(r)
	// t1/t2: region vs city "Petersburg"/"St Petersburg" distance 3 ≤ 5.
	if !c.LHS[0].Similar(r, 0, 1) {
		t.Error("t1/t2 must agree on θ(region, city)")
	}
	// t1/t2 RHS: addr vs post identical → similar.
	if !c.RHS.Similar(r, 0, 1) {
		t.Error("t1/t2 must agree on θ(addr, post)")
	}
	// t2/t3: city(t2) vs region(t3) identical → similar on LHS.
	if !c.LHS[0].Similar(r, 1, 2) {
		t.Error("t2/t3 must agree on θ(region, city) via the ij slot")
	}
	if !c.Holds(r) {
		t.Errorf("cd1 must hold; violations: %v", c.Violations(r, 0))
	}
}

func TestCDViolation(t *testing.T) {
	r := gen.Dataspace().Clone()
	// Push t3's post far away: the (t2,t3) pair still agrees on the LHS
	// but now misses every RHS slot.
	r.SetValue(2, r.Schema().MustIndex("post"), relation.String("Totally Unrelated Address 42"))
	c := cd1(r)
	vs := c.Violations(r, 0)
	// Both (t1,t3) (similar regions via the ii slot) and (t2,t3) (city/region
	// ij slot) lose their RHS similarity.
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want (t1,t3) and (t2,t3)", vs)
	}
	if vs[0].Rows[0] != 0 || vs[0].Rows[1] != 2 || vs[1].Rows[0] != 1 || vs[1].Rows[1] != 2 {
		t.Fatalf("violations = %v, want (t1,t3) and (t2,t3)", vs)
	}
	if vs := c.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestNullsNeverSimilar(t *testing.T) {
	r := gen.Dataspace()
	c := cd1(r)
	// t1 has null city, t3 has null city: the jj slot must not match nulls.
	f := c.LHS[0]
	if f.Similar(r, 0, 0) && r.Value(0, r.Schema().MustIndex("city")).IsNull() &&
		!f.Similar(r, 0, 0) {
		t.Error("unreachable")
	}
	s := relation.Strings("a", "b")
	rr := relation.MustFromRows("n", s, [][]relation.Value{
		{relation.Null(relation.KindString), relation.Null(relation.KindString)},
		{relation.Null(relation.KindString), relation.Null(relation.KindString)},
	})
	g := SimilarityFunc{I: 0, J: 1, Metric: nullMetric{}, TII: 100, TIJ: 100, TJJ: 100}
	if g.Similar(rr, 0, 1) {
		t.Error("null values must never be similar")
	}
}

type nullMetric struct{}

func (nullMetric) Distance(a, b relation.Value) float64 { return 0 }
func (nullMetric) Name() string                         { return "zero" }

func TestNEDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge NED → CD: single-attribute similarity functions.
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 50; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), VarietyRate: 0.4, ErrorRate: 0.2})
		s := r.Schema()
		n := ned.NED{
			LHS:    ned.Predicate{ned.T(s, "address", 0)},
			RHS:    ned.Predicate{ned.T(s, "region", 4)},
			Schema: s,
		}
		c, err := FromNED(n)
		if err != nil {
			t.Fatal(err)
		}
		if n.Holds(r) != c.Holds(r) {
			t.Fatalf("trial %d: NED.Holds=%v but CD.Holds=%v", trial, n.Holds(r), c.Holds(r))
		}
	}
}

func TestFromNEDRejectsMultiRHS(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	n := ned.NED{
		LHS:    ned.Predicate{ned.T(s, "name", 1)},
		RHS:    ned.Predicate{ned.T(s, "street", 5), ned.T(s, "zip", 0)},
		Schema: s,
	}
	if _, err := FromNED(n); err == nil {
		t.Error("multi-attribute RHS must be rejected")
	}
}

func TestG3(t *testing.T) {
	r := gen.Dataspace().Clone()
	r.SetValue(2, r.Schema().MustIndex("post"), relation.String("Totally Unrelated Address 42"))
	c := cd1(r)
	// One violating pair: removing one tuple of three fixes it.
	if got := c.G3(r); got != 1.0/3 {
		t.Errorf("g3 = %v, want 1/3", got)
	}
	clean := gen.Dataspace()
	if got := cd1(clean).G3(clean); got != 0 {
		t.Errorf("clean g3 = %v, want 0", got)
	}
	empty := clean.Select(func(int) bool { return false })
	if got := cd1(empty).G3(empty); got != 0 {
		t.Errorf("empty g3 = %v", got)
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Dataspace()
	c := cd1(r)
	if c.Kind() != "CD" {
		t.Error("Kind")
	}
	if got := c.String(); got != "θ(region,city)[5,5,5] -> θ(addr,post)[7,9,6]" {
		t.Errorf("String = %q", got)
	}
	single := Single(r.Schema(), "name", 2)
	if got := single.String(r.Schema().Names()); got != "θ(name≈2)" {
		t.Errorf("Single String = %q", got)
	}
}
