package pfd

import (
	"math"
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
)

func mk(t *testing.T, lhs, rhs string) PFD {
	t.Helper()
	r := gen.Table5()
	p := PFD{Schema: r.Schema()}
	p.LHS = p.LHS.Add(r.Schema().MustIndex(lhs))
	p.RHS = p.RHS.Add(r.Schema().MustIndex(rhs))
	return p
}

func TestProbabilityOnTable5(t *testing.T) {
	r := gen.Table5()
	addrRegion := mk(t, "address", "region")
	// Paper §2.2.1: P(V1)=1, P(V2)=1/2, P = 3/4.
	if got := addrRegion.Probability(r); got != 0.75 {
		t.Errorf("P(address→region, r5) = %v, want 3/4", got)
	}
	if got := addrRegion.PerValue(r, 0); got != 1 {
		t.Errorf("P(V1) = %v, want 1", got)
	}
	if got := addrRegion.PerValue(r, 2); got != 0.5 {
		t.Errorf("P(V2) = %v, want 1/2", got)
	}
	nameAddr := mk(t, "name", "address")
	if got := nameAddr.Probability(r); got != 0.5 {
		t.Errorf("P(name→address, r5) = %v, want 1/2", got)
	}
}

func TestHoldsThreshold(t *testing.T) {
	r := gen.Table5()
	p := mk(t, "address", "region")
	p.MinProb = 0.75
	if !p.Holds(r) {
		t.Error("P=3/4 ≥ 0.75 should hold")
	}
	p.MinProb = 0.76
	if p.Holds(r) {
		t.Error("P=3/4 < 0.76 should not hold")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → PFD: FD holds iff the p=1 embedding holds.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		p := FromFD(f)
		if f.Holds(r) != p.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but PFD(p=1).Holds=%v",
				trial, f.Holds(r), p.Holds(r))
		}
	}
}

func TestViolationsAreMinorityTuples(t *testing.T) {
	r := gen.Table5()
	p := mk(t, "address", "region")
	p.MinProb = 1
	vs := p.Violations(r, 0)
	// Group "6030 Gateway Boulevard E" = {t3, t4} with tied region values;
	// exactly one of the two is the minority.
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly 1", vs)
	}
	row := vs[0].Rows[0]
	if row != 2 && row != 3 {
		t.Errorf("violating row = t%d, want t3 or t4", row+1)
	}
	if got := p.Violations(r, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestNoViolationsWhenHolds(t *testing.T) {
	r := gen.Table5()
	p := mk(t, "address", "region")
	p.MinProb = 0.5
	if vs := p.Violations(r, 0); vs != nil {
		t.Errorf("holds ⇒ no violations, got %v", vs)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := gen.Table5().Select(func(int) bool { return false })
	p := mk(t, "address", "region")
	p.MinProb = 1
	if !p.Holds(r) {
		t.Error("empty relation satisfies every PFD")
	}
}

func TestProbabilityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		r := gen.Categorical(30, []int{4, 3}, rng.Int63())
		p := PFD{Schema: r.Schema()}
		p.LHS = p.LHS.Add(0)
		p.RHS = p.RHS.Add(1)
		prob := p.Probability(r)
		if prob <= 0 || prob > 1 {
			t.Fatalf("trial %d: P = %v outside (0,1]", trial, prob)
		}
		if math.IsNaN(prob) {
			t.Fatal("NaN probability")
		}
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table5()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	p := FromFD(f)
	if p.Kind() != "PFD" {
		t.Error("Kind")
	}
	if got := p.String(); got != "address ->_{p=1} region" {
		t.Errorf("String = %q", got)
	}
}
