// Package pfd implements probabilistic functional dependencies X →_p Y
// (paper §2.2, [104]): per distinct X-value V_X, the probability that a
// tuple carries the majority Y-value,
//
//	P(X → Y, V_X) = |V_Y, V_X| / |V_X|,
//
// averaged over all distinct X-values,
//
//	P(X → Y, r) = Σ P(X → Y, V_X) / |D_X|.
//
// A PFD holds when P ≥ p. FDs are exactly the PFDs with p = 1, witnessing
// the FD → PFD edge of the family tree.
package pfd

import (
	"fmt"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// PFD is a probabilistic functional dependency X →_p Y.
type PFD struct {
	// LHS and RHS are the attribute sets X and Y.
	LHS, RHS attrset.Set
	// MinProb is the threshold p ∈ (0, 1].
	MinProb float64
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the special-case PFD with p = 1 (Fig 1: FD → PFD).
func FromFD(f fd.FD) PFD {
	return PFD{LHS: f.LHS, RHS: f.RHS, MinProb: 1, Schema: f.Schema}
}

// Kind implements deps.Dependency.
func (p PFD) Kind() string { return "PFD" }

// String renders the PFD in the paper's notation.
func (p PFD) String() string {
	var names []string
	if p.Schema != nil {
		names = p.Schema.Names()
	}
	return fmt.Sprintf("%s ->_{p=%.3g} %s", p.LHS.Names(names), p.MinProb, p.RHS.Names(names))
}

// Probability computes P(X → Y, r): the mean over distinct X-values of the
// per-value majority fraction. An empty relation has probability 1.
func (p PFD) Probability(r *relation.Relation) float64 {
	if r.Rows() == 0 {
		return 1
	}
	xCodes, xCard := r.GroupCodes(p.LHS.Cols())
	yCodes, _ := r.GroupCodes(p.RHS.Cols())
	// For each X-value: count per Y-value, track group size and max.
	type key struct{ x, y int }
	counts := make(map[key]int)
	sizes := make(map[int]int)
	for row := range xCodes {
		counts[key{xCodes[row], yCodes[row]}]++
		sizes[xCodes[row]]++
	}
	maxes := make(map[int]int)
	for k, c := range counts {
		if c > maxes[k.x] {
			maxes[k.x] = c
		}
	}
	sum := 0.0
	for x, size := range sizes {
		sum += float64(maxes[x]) / float64(size)
	}
	return sum / float64(xCard)
}

// PerValue computes P(X → Y, V_X) for the X-value of the given row.
func (p PFD) PerValue(r *relation.Relation, row int) float64 {
	xCodes, _ := r.GroupCodes(p.LHS.Cols())
	yCodes, _ := r.GroupCodes(p.RHS.Cols())
	target := xCodes[row]
	counts := make(map[int]int)
	size, max := 0, 0
	for i := range xCodes {
		if xCodes[i] != target {
			continue
		}
		size++
		counts[yCodes[i]]++
		if counts[yCodes[i]] > max {
			max = counts[yCodes[i]]
		}
	}
	return float64(max) / float64(size)
}

// Holds implements deps.Dependency: P(X → Y, r) ≥ p.
func (p PFD) Holds(r *relation.Relation) bool {
	return p.Probability(r) >= p.MinProb
}

// Violations implements deps.Dependency: when P < p, witnesses are the
// minority tuples — tuples whose Y-value is not the majority for their
// X-value.
func (p PFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	if p.Holds(r) {
		return nil
	}
	px := partition.Build(r, p.LHS)
	yCodes, _ := r.GroupCodes(p.RHS.Cols())
	prob := p.Probability(r)
	var out []deps.Violation
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		counts := make(map[int]int)
		for _, row := range class {
			counts[yCodes[row]]++
		}
		majority, best := -1, -1
		for y, c := range counts {
			if c > best {
				majority, best = y, c
			}
		}
		for _, row := range class {
			if yCodes[row] != majority {
				out = append(out, deps.Violation{
					Rows: []int{int(row)},
					Msg:  fmt.Sprintf("minority Y-value for its X-group (P=%.3f < %.3f)", prob, p.MinProb),
				})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
