package cfd

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestInconsistentConstantCFDs(t *testing.T) {
	// country=UK → capital=London vs country=UK → capital=Edinburgh: no
	// tuple with country UK can exist, so the set is unsatisfiable (for
	// nonempty instances containing such a tuple — the standard CFD
	// satisfiability notion).
	s := relation.Strings("country", "capital")
	c1 := Must(s, []string{"country"}, []string{"capital"},
		[]Cell{Const(relation.String("UK")), Const(relation.String("London"))})
	c2 := Must(s, []string{"country"}, []string{"capital"},
		[]Cell{Const(relation.String("UK")), Const(relation.String("Edinburgh"))})
	ok, conflict := Consistent([]CFD{c1, c2}, s)
	if ok {
		t.Fatal("contradictory constants must be inconsistent")
	}
	if conflict == nil || conflict.Attr != s.MustIndex("capital") {
		t.Errorf("conflict = %v", conflict)
	}
	if conflict.String() == "" {
		t.Error("empty conflict string")
	}
}

func TestChainedInconsistency(t *testing.T) {
	// a=1 → b=2; b=2 → c=3; a=1 → c=4: conflict derived transitively.
	s := relation.Strings("a", "b", "c")
	r1 := Must(s, []string{"a"}, []string{"b"},
		[]Cell{Const(relation.String("1")), Const(relation.String("2"))})
	r2 := Must(s, []string{"b"}, []string{"c"},
		[]Cell{Const(relation.String("2")), Const(relation.String("3"))})
	r3 := Must(s, []string{"a"}, []string{"c"},
		[]Cell{Const(relation.String("1")), Const(relation.String("4"))})
	if ok, _ := Consistent([]CFD{r1, r2, r3}, s); ok {
		t.Error("transitive conflict not detected")
	}
	// Without the contradicting rule the chain is fine.
	if ok, _ := Consistent([]CFD{r1, r2}, s); !ok {
		t.Error("consistent chain rejected")
	}
}

func TestConsistentSets(t *testing.T) {
	s := gen.Table5().Schema()
	c1 := Must(s, []string{"region", "name"}, []string{"address"},
		[]Cell{Const(relation.String("Jackson")), Wildcard(), Wildcard()})
	c2 := Must(s, []string{"region"}, []string{"rate"},
		[]Cell{Const(relation.String("El Paso")), Const(relation.Int(189))})
	if ok, conflict := Consistent([]CFD{c1, c2}, s); !ok {
		t.Errorf("compatible rules flagged: %v", conflict)
	}
	// Variable CFDs alone are always satisfiable.
	v := FromFD([]int{0}, []int{1}, s)
	if ok, _ := Consistent([]CFD{v}, s); !ok {
		t.Error("variable CFD flagged")
	}
	// Empty set.
	if ok, _ := Consistent(nil, s); !ok {
		t.Error("empty set flagged")
	}
}

func TestDifferentConditionsNoConflict(t *testing.T) {
	// country=UK → capital=London and country=FR → capital=Paris touch the
	// same attribute under disjoint conditions: consistent.
	s := relation.Strings("country", "capital")
	c1 := Must(s, []string{"country"}, []string{"capital"},
		[]Cell{Const(relation.String("UK")), Const(relation.String("London"))})
	c2 := Must(s, []string{"country"}, []string{"capital"},
		[]Cell{Const(relation.String("FR")), Const(relation.String("Paris"))})
	if ok, conflict := Consistent([]CFD{c1, c2}, s); !ok {
		t.Errorf("disjoint conditions flagged: %v", conflict)
	}
}

func TestECFDCellsAreNotChased(t *testing.T) {
	// Predicate cells are hypothesis-only: the test stays sound (no false
	// inconsistency) even with inequality conditions present.
	s := gen.Table5().Schema()
	e := Must(s, []string{"rate"}, []string{"region"},
		[]Cell{Pred(OpLe, relation.Int(200)), Const(relation.String("El Paso"))})
	c := Must(s, []string{"rate"}, []string{"region"},
		[]Cell{Pred(OpGt, relation.Int(200)), Const(relation.String("Jackson"))})
	if ok, conflict := Consistent([]CFD{e, c}, s); !ok {
		t.Errorf("eCFD rules with disjoint ranges flagged: %v", conflict)
	}
}
