package cfd

import (
	"fmt"

	"deptree/internal/relation"
)

// Consistency analysis for CFDs (paper §2.5.3): unlike FDs, a set of CFDs
// can be *unsatisfiable* — no nonempty instance satisfies all of them —
// because constant patterns can force contradictory values (Bohannon et
// al. [11] study the satisfiability problem; for CFDs without finite-
// domain attributes a chase-style test suffices).
//
// The implemented test chases a single symbolic tuple: wildcards denote
// unconstrained values drawn from an infinite domain, constants pin a
// cell. Starting from each rule's LHS pattern as a hypothesis, applying
// constant-RHS rules to fixpoint either converges or derives two distinct
// constants for one attribute — a witness of inconsistency. The test is
// sound and complete for constant-pattern CFDs over infinite domains, the
// fragment where the published conflicts arise; variable (wildcard-RHS)
// CFDs alone are always satisfiable.

// cellState is the chased knowledge about one attribute.
type cellState struct {
	known bool
	value relation.Value
}

// Conflict describes an inconsistency witness: the hypothesis tuple and
// the two rules forcing different constants on one attribute.
type Conflict struct {
	// Attr is the contested column.
	Attr int
	// A and B are the clashing constants.
	A, B relation.Value
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("attribute %d forced to both %v and %v", c.Attr, c.A, c.B)
}

// Consistent reports whether the CFD set is satisfiable by some nonempty
// instance, returning a conflict witness when it is not. Only classic
// cells (constants, wildcards) participate in chasing; predicate cells
// (eCFD inequalities) are treated as unconstrained hypotheses, keeping the
// test sound (it may miss eCFD-only conflicts, never inventing one).
func Consistent(cfds []CFD, schema *relation.Schema) (bool, *Conflict) {
	// For each rule, hypothesize a tuple matching its LHS constants, then
	// chase all rules to fixpoint.
	for _, seed := range cfds {
		state := make([]cellState, schema.Len())
		ok := true
		for k, col := range seed.X {
			cell := seed.Pattern[k]
			if cell.IsClassic() && !cell.IsWildcard() {
				if conflictAssign(state, col, cell.Conds[0].Const) != nil {
					ok = false
				}
			}
		}
		if !ok {
			continue // seed self-contradictory LHS (duplicate column); skip
		}
		if conflict := chase(state, cfds); conflict != nil {
			return false, conflict
		}
	}
	return true, nil
}

// chase applies constant-RHS rules whose LHS is entailed by the current
// state until fixpoint or conflict.
func chase(state []cellState, cfds []CFD) *Conflict {
	for changed := true; changed; {
		changed = false
		for _, c := range cfds {
			if !lhsEntailed(state, c) {
				continue
			}
			for k, col := range c.Y {
				cell := c.Pattern[len(c.X)+k]
				if cell.IsWildcard() || !cell.IsClassic() {
					continue
				}
				v := cell.Conds[0].Const
				switch {
				case !state[col].known:
					state[col] = cellState{known: true, value: v}
					changed = true
				case !state[col].value.Equal(v):
					return &Conflict{Attr: col, A: state[col].value, B: v}
				}
			}
		}
	}
	return nil
}

// lhsEntailed reports whether the symbolic tuple necessarily matches the
// rule's LHS pattern: every constant cell must equal a KNOWN state value.
// Wildcard cells always match; unknown cells do not entail constants
// (the tuple could take any other value).
func lhsEntailed(state []cellState, c CFD) bool {
	for k, col := range c.X {
		cell := c.Pattern[k]
		if cell.IsWildcard() {
			continue
		}
		if !cell.IsClassic() {
			return false // predicate cells: not chased
		}
		if !state[col].known || !state[col].value.Equal(cell.Conds[0].Const) {
			return false
		}
	}
	return true
}

// conflictAssign sets a state cell, reporting a conflict when it is
// already pinned to a different constant.
func conflictAssign(state []cellState, col int, v relation.Value) *Conflict {
	if state[col].known && !state[col].value.Equal(v) {
		return &Conflict{Attr: col, A: state[col].value, B: v}
	}
	state[col] = cellState{known: true, value: v}
	return nil
}
