package cfd

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestCFD1OnTable5(t *testing.T) {
	// cfd1: region=Jackson, name=_ -> address=_ (paper §2.5.1).
	r := gen.Table5()
	c := Must(r.Schema(), []string{"region", "name"}, []string{"address"},
		[]Cell{Const(relation.String("Jackson")), Wildcard(), Wildcard()})
	if !c.Holds(r) {
		t.Error("cfd1 must hold on r5 (t1, t2 share the Jackson Hyatt address)")
	}
	if got := c.Support(r); got != 2 {
		t.Errorf("support = %d, want 2 (t1, t2)", got)
	}
}

func TestCFDDetectsConditionalViolation(t *testing.T) {
	r := gen.Table5().Clone()
	// Corrupt t2's address so the Jackson condition is violated.
	addr := r.Schema().MustIndex("address")
	r.SetValue(1, addr, relation.String("999 Elsewhere"))
	c := Must(r.Schema(), []string{"region", "name"}, []string{"address"},
		[]Cell{Const(relation.String("Jackson")), Wildcard(), Wildcard()})
	vs := c.Violations(r, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 0 || vs[0].Rows[1] != 1 {
		t.Fatalf("violations = %v, want pair (t1,t2)", vs)
	}
}

func TestConstantRHSPattern(t *testing.T) {
	// region=Jackson -> rate=230: t2 (rate 250) is a single-tuple violation.
	r := gen.Table5()
	c := Must(r.Schema(), []string{"region"}, []string{"rate"},
		[]Cell{Const(relation.String("Jackson")), Const(relation.Int(230))})
	vs := c.Violations(r, 0)
	// t2 fails the RHS pattern; also the pair (t1,t2) differs on rate.
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	if len(vs[0].Rows) != 1 || vs[0].Rows[0] != 1 {
		t.Errorf("single-tuple violation = %v, want t2", vs[0])
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → CFD: all-wildcard pattern behaves exactly like the FD.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		c := FromFD(f.LHS.Cols(), f.RHS.Cols(), r.Schema())
		if f.Holds(r) != c.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but CFD(wildcards).Holds=%v",
				trial, f.Holds(r), c.Holds(r))
		}
		if c.Kind() != "CFD" {
			t.Fatal("wildcard CFD must not be extended")
		}
		if got := c.Support(r); got != r.Rows() {
			t.Fatalf("wildcard support = %d, want all rows", got)
		}
	}
}

func TestECFD1OnTable5(t *testing.T) {
	// ecfd1: rate≤200, name=_ -> address=_ (paper §2.5.5): holds on r5,
	// where only t3, t4 have rate ≤ 200 and they share the address.
	r := gen.Table5()
	e := Must(r.Schema(), []string{"rate", "name"}, []string{"address"},
		[]Cell{Pred(OpLe, relation.Int(200)), Wildcard(), Wildcard()})
	if e.Kind() != "eCFD" {
		t.Error("inequality pattern must make it an eCFD")
	}
	if !e.Holds(r) {
		t.Error("ecfd1 must hold on r5")
	}
	if got := e.Support(r); got != 2 {
		t.Errorf("support = %d, want 2 (t3, t4)", got)
	}
	// Break it: different address for t4 at the same rate.
	r2 := r.Clone()
	r2.SetValue(3, r.Schema().MustIndex("rate"), relation.Int(189))
	r2.SetValue(3, r.Schema().MustIndex("address"), relation.String("somewhere else"))
	if e.Holds(r2) {
		t.Error("ecfd1 must fail after corrupting t4")
	}
}

func TestDisjunctiveCell(t *testing.T) {
	r := gen.Table5()
	// region ∈ {Jackson, El Paso} as a disjunctive condition.
	cell := AnyOf(
		Cond{Op: OpEq, Const: relation.String("Jackson")},
		Cond{Op: OpEq, Const: relation.String("El Paso")},
	)
	c := Must(r.Schema(), []string{"region"}, []string{"name"},
		[]Cell{cell, Wildcard()})
	if got := c.Support(r); got != 3 {
		t.Errorf("support = %d, want 3 (t1, t2, t3)", got)
	}
	if !c.Extended() {
		t.Error("disjunction must make it extended")
	}
}

func TestOpEval(t *testing.T) {
	v200, v300 := relation.Int(200), relation.Int(300)
	cases := []struct {
		op   Op
		a, b relation.Value
		want bool
	}{
		{OpEq, v200, v200, true},
		{OpNe, v200, v300, true},
		{OpLt, v200, v300, true},
		{OpLe, v200, v200, true},
		{OpGt, v300, v200, true},
		{OpGe, v200, v300, false},
		{OpLt, relation.Null(relation.KindInt), v200, false},
		{OpEq, relation.Null(relation.KindInt), relation.Null(relation.KindInt), true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	s := relation.Strings("a", "b")
	if _, err := New(s, []string{"zzz"}, []string{"b"}, []Cell{Wildcard(), Wildcard()}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := New(s, []string{"a"}, []string{"b"}, []Cell{Wildcard()}); err == nil {
		t.Error("short pattern should fail")
	}
}

func TestString(t *testing.T) {
	r := gen.Table5()
	c := Must(r.Schema(), []string{"region", "name"}, []string{"address"},
		[]Cell{Const(relation.String("Jackson")), Wildcard(), Wildcard()})
	if got := c.String(); got != "region=Jackson, name=_ -> address=_" {
		t.Errorf("String = %q", got)
	}
	e := Must(r.Schema(), []string{"rate"}, []string{"address"},
		[]Cell{Pred(OpLe, relation.Int(200)), Wildcard()})
	if got := e.String(); got != "rate(<=200) -> address=_" {
		t.Errorf("eCFD String = %q", got)
	}
}

func TestViolationLimit(t *testing.T) {
	r := gen.Table1()
	c := FromFD([]int{r.Schema().MustIndex("address")}, []int{r.Schema().MustIndex("region")}, r.Schema())
	if vs := c.Violations(r, 1); len(vs) != 1 {
		t.Errorf("limit 1: got %d", len(vs))
	}
	if vs := c.Violations(r, 0); len(vs) != 2 {
		t.Errorf("all: got %d, want 2", len(vs))
	}
}
