// Package cfd implements conditional functional dependencies (paper §2.5,
// Bohannon et al. [11], Fan et al. [34]) and their extension eCFDs (§2.5.5,
// Bravo et al. [14]).
//
// A CFD (X → Y, t_p) embeds a standard FD that holds only on the subset of
// tuples matching the pattern tuple t_p, whose cells are constants or the
// unnamed wildcard '_'. eCFDs generalize pattern cells to predicates
// 'op a' with op ∈ {=, ≠, <, ≤, >, ≥} and disjunctions of such predicates.
package cfd

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/relation"
)

// Op is a comparison operator usable in eCFD pattern cells.
type Op int

// The negation-closed operator set of the paper.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Eval applies the operator to Compare/Equal results on (v, c).
func (o Op) Eval(v, c relation.Value) bool {
	switch o {
	case OpEq:
		return v.Equal(c)
	case OpNe:
		return !v.Equal(c)
	}
	if v.IsNull() || c.IsNull() {
		return false
	}
	cmp := v.Compare(c)
	switch o {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Cond is a single predicate 'op a' of an eCFD pattern cell.
type Cond struct {
	Op    Op
	Const relation.Value
}

// Cell is one pattern-tuple entry. An empty Conds list is the unnamed
// wildcard '_'; a non-empty list matches if ANY condition holds (the
// disjunction extension of eCFDs). Classic CFDs use only wildcard cells and
// singleton {= a} cells.
type Cell struct {
	Conds []Cond
}

// Wildcard is the unnamed-variable pattern cell '_'.
func Wildcard() Cell { return Cell{} }

// Const is the classic constant pattern cell '= a'.
func Const(v relation.Value) Cell { return Cell{Conds: []Cond{{Op: OpEq, Const: v}}} }

// Pred is a single-predicate eCFD cell 'op a'.
func Pred(op Op, v relation.Value) Cell { return Cell{Conds: []Cond{{Op: op, Const: v}}} }

// AnyOf is a disjunctive eCFD cell.
func AnyOf(conds ...Cond) Cell { return Cell{Conds: conds} }

// IsWildcard reports whether the cell is '_'.
func (c Cell) IsWildcard() bool { return len(c.Conds) == 0 }

// Matches reports whether value v matches the cell.
func (c Cell) Matches(v relation.Value) bool {
	if c.IsWildcard() {
		return true
	}
	for _, cond := range c.Conds {
		if cond.Op.Eval(v, cond.Const) {
			return true
		}
	}
	return false
}

// IsClassic reports whether the cell is expressible in a classic CFD
// (wildcard or a single equality constant).
func (c Cell) IsClassic() bool {
	return c.IsWildcard() || (len(c.Conds) == 1 && c.Conds[0].Op == OpEq)
}

// String renders the cell.
func (c Cell) String() string {
	if c.IsWildcard() {
		return "_"
	}
	parts := make([]string, len(c.Conds))
	for i, cond := range c.Conds {
		parts[i] = fmt.Sprintf("%s%v", cond.Op, cond.Const)
	}
	return strings.Join(parts, "|")
}

// CFD is a conditional functional dependency (X → Y, t_p). With only
// classic cells it is a CFD proper; with inequality or disjunctive cells it
// is an eCFD. X and Y are ordered column lists; the pattern tuple covers X
// then Y.
type CFD struct {
	// X and Y are the determinant and dependent column indices.
	X, Y []int
	// Pattern is the pattern tuple t_p: len(X)+len(Y) cells, X cells first.
	Pattern []Cell
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// New assembles and validates a CFD.
func New(schema *relation.Schema, x, y []string, pattern []Cell) (CFD, error) {
	xi, err := schema.Indices(x...)
	if err != nil {
		return CFD{}, fmt.Errorf("cfd: %w", err)
	}
	yi, err := schema.Indices(y...)
	if err != nil {
		return CFD{}, fmt.Errorf("cfd: %w", err)
	}
	if len(pattern) != len(xi)+len(yi) {
		return CFD{}, fmt.Errorf("cfd: pattern has %d cells for %d attributes", len(pattern), len(xi)+len(yi))
	}
	return CFD{X: xi, Y: yi, Pattern: pattern, Schema: schema}, nil
}

// Must is New for statically-known dependencies; it panics on error.
func Must(schema *relation.Schema, x, y []string, pattern []Cell) CFD {
	c, err := New(schema, x, y, pattern)
	if err != nil {
		panic(err)
	}
	return c
}

// FromFD embeds a plain FD as a CFD whose pattern tuple is all wildcards
// (Fig 1: FD → CFD). The FD's attribute sets are ordered ascending.
func FromFD(x, y []int, schema *relation.Schema) CFD {
	pattern := make([]Cell, len(x)+len(y))
	return CFD{X: x, Y: y, Pattern: pattern, Schema: schema}
}

// Extended reports whether the CFD uses eCFD-only cells (non-equality
// operators or disjunction).
func (c CFD) Extended() bool {
	for _, cell := range c.Pattern {
		if !cell.IsClassic() {
			return true
		}
	}
	return false
}

// Kind implements deps.Dependency: "CFD", or "eCFD" when extended cells are
// present.
func (c CFD) Kind() string {
	if c.Extended() {
		return "eCFD"
	}
	return "CFD"
}

// String renders the dependency in the paper's readable notation, e.g.
// "region=Jackson, name=_ -> address=_".
func (c CFD) String() string {
	var names []string
	if c.Schema != nil {
		names = c.Schema.Names()
	}
	attr := func(i int) string {
		if names != nil && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("a%d", i)
	}
	var b strings.Builder
	for k, col := range c.X {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s%s", attr(col), cellSuffix(c.Pattern[k]))
	}
	b.WriteString(" -> ")
	for k, col := range c.Y {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s%s", attr(col), cellSuffix(c.Pattern[len(c.X)+k]))
	}
	return b.String()
}

func cellSuffix(c Cell) string {
	if c.IsWildcard() {
		return "=_"
	}
	if len(c.Conds) == 1 && c.Conds[0].Op == OpEq {
		return fmt.Sprintf("=%v", c.Conds[0].Const)
	}
	return "(" + c.String() + ")"
}

// MatchesLHS reports whether row i matches every X pattern cell.
func (c CFD) MatchesLHS(r *relation.Relation, i int) bool {
	for k, col := range c.X {
		if !c.Pattern[k].Matches(r.Value(i, col)) {
			return false
		}
	}
	return true
}

// matchesRHS reports whether row i matches every Y pattern cell.
func (c CFD) matchesRHS(r *relation.Relation, i int) bool {
	for k, col := range c.Y {
		if !c.Pattern[len(c.X)+k].Matches(r.Value(i, col)) {
			return false
		}
	}
	return true
}

// Support counts the tuples matching the LHS pattern — the coverage measure
// central to CFD discovery (§2.5.3).
func (c CFD) Support(r *relation.Relation) int {
	n := 0
	for i := 0; i < r.Rows(); i++ {
		if c.MatchesLHS(r, i) {
			n++
		}
	}
	return n
}

// Holds implements deps.Dependency.
func (c CFD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(c, r)
}

// Violations implements deps.Dependency. Following Fan et al.'s semantics,
// a violation is either (a) a single tuple matching t_p[X] whose Y values
// fail t_p[Y] — only possible with constant/predicate RHS cells — or (b) a
// pair of tuples matching t_p[X], equal on X, but unequal on Y.
func (c CFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	add := func(v deps.Violation) bool {
		out = append(out, v)
		return limit > 0 && len(out) >= limit
	}
	// Single-tuple check against RHS pattern constants.
	hasRHSPattern := false
	for k := range c.Y {
		if !c.Pattern[len(c.X)+k].IsWildcard() {
			hasRHSPattern = true
			break
		}
	}
	var matching []int
	for i := 0; i < r.Rows(); i++ {
		if !c.MatchesLHS(r, i) {
			continue
		}
		matching = append(matching, i)
		if hasRHSPattern && !c.matchesRHS(r, i) {
			if add(deps.Violation{Rows: []int{i}, Msg: "Y values fail the pattern tuple"}) {
				return out
			}
		}
	}
	// Pairwise check: group matching rows by X-values.
	groups := make(map[string][]int)
	var key strings.Builder
	for _, i := range matching {
		key.Reset()
		for _, col := range c.X {
			key.WriteString(r.Value(i, col).Key())
			key.WriteByte('\x1f')
		}
		groups[key.String()] = append(groups[key.String()], i)
	}
	for _, rows := range matching2groups(groups) {
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				if !equalOn(r, rows[a], rows[b], c.Y) {
					if add(deps.Pair(rows[a], rows[b], "match pattern, agree on X, differ on Y")) {
						return out
					}
				}
			}
		}
	}
	return out
}

// matching2groups returns the groups in deterministic (first-row) order.
func matching2groups(groups map[string][]int) [][]int {
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	// Sort by first row for stable output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalOn(r *relation.Relation, i, j int, cols []int) bool {
	for _, c := range cols {
		if !r.Value(i, c).Equal(r.Value(j, c)) {
			return false
		}
	}
	return true
}
