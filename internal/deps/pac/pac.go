// Package pac implements probabilistic approximate constraints (paper §3.5,
// Korn, Muthukrishnan & Zhu [63]): distance tolerances combined with a
// confidence factor. A PAC X_Δ →^δ Y_ε requires that among tuple pairs
// within Δ on every X attribute, at least a δ fraction are within ε on each
// Y attribute. NEDs are the PACs with δ = 1, witnessing the NED → PAC edge
// of the family tree.
package pac

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/ned"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Tolerance is one attribute with its distance tolerance (Δ on the LHS,
// ε on the RHS).
type Tolerance struct {
	Col       int
	Metric    metric.Metric
	Tolerance float64
}

// T builds a tolerance with the default metric for the attribute's kind.
func T(schema *relation.Schema, name string, tol float64) Tolerance {
	i := schema.MustIndex(name)
	return Tolerance{Col: i, Metric: metric.ForKind(schema.Attr(i).Kind), Tolerance: tol}
}

// PAC is a probabilistic approximate constraint X_Δ →^δ Y_ε.
type PAC struct {
	// LHS carries the Δ tolerances; RHS the ε tolerances.
	LHS, RHS []Tolerance
	// Confidence is the requirement δ ∈ (0, 1].
	Confidence float64
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromNED embeds an NED as the δ=1 PAC (Fig 1: NED → PAC).
func FromNED(n ned.NED) PAC {
	p := PAC{Confidence: 1, Schema: n.Schema}
	for _, t := range n.LHS {
		p.LHS = append(p.LHS, Tolerance{Col: t.Col, Metric: t.Metric, Tolerance: t.Threshold})
	}
	for _, t := range n.RHS {
		p.RHS = append(p.RHS, Tolerance{Col: t.Col, Metric: t.Metric, Tolerance: t.Threshold})
	}
	return p
}

// Kind implements deps.Dependency.
func (p PAC) Kind() string { return "PAC" }

// String renders the PAC in the paper's subscript notation, e.g.
// "price_100 ->^0.9 tax_10".
func (p PAC) String() string {
	var names []string
	if p.Schema != nil {
		names = p.Schema.Names()
	}
	render := func(ts []Tolerance) string {
		parts := make([]string, len(ts))
		for i, t := range ts {
			n := fmt.Sprintf("a%d", t.Col)
			if names != nil && t.Col < len(names) {
				n = names[t.Col]
			}
			parts[i] = fmt.Sprintf("%s_%.3g", n, t.Tolerance)
		}
		return strings.Join(parts, " ")
	}
	return fmt.Sprintf("%s ->^%.3g %s", render(p.LHS), p.Confidence, render(p.RHS))
}

// within reports whether rows i, j are within tolerance on every listed
// attribute.
func within(r *relation.Relation, i, j int, ts []Tolerance) bool {
	for _, t := range ts {
		d := t.Metric.Distance(r.Value(i, t.Col), r.Value(j, t.Col))
		if !(d <= t.Tolerance) { // NaN fails
			return false
		}
	}
	return true
}

// Probability computes Pr(|t_i[B]−t_j[B]| ≤ ε ∀B | LHS within Δ): the
// fraction of Δ-close pairs that are also ε-close. No supporting pairs
// yields probability 1 (vacuous constraint).
func (p PAC) Probability(r *relation.Relation) float64 {
	support, good := 0, 0
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if within(r, i, j, p.LHS) {
				support++
				if within(r, i, j, p.RHS) {
					good++
				}
			}
		}
	}
	if support == 0 {
		return 1
	}
	return float64(good) / float64(support)
}

// Holds implements deps.Dependency: Probability ≥ δ.
func (p PAC) Holds(r *relation.Relation) bool {
	return p.Probability(r) >= p.Confidence
}

// Violations implements deps.Dependency: when the probability falls below
// δ, witnesses are the Δ-close pairs that miss the ε tolerances.
func (p PAC) Violations(r *relation.Relation, limit int) []deps.Violation {
	prob := p.Probability(r)
	if prob >= p.Confidence {
		return nil
	}
	var out []deps.Violation
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if within(r, i, j, p.LHS) && !within(r, i, j, p.RHS) {
				out = append(out, deps.Pair(i, j, "Δ-close pair outside ε (Pr=%.3f < δ=%.3g)", prob, p.Confidence))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
