package pac

import (
	"math"
	"math/rand"
	"testing"

	"deptree/internal/deps/ned"
	"deptree/internal/gen"
)

func pac1(t *testing.T) (PAC, *testing.T) {
	t.Helper()
	r := gen.Table6()
	s := r.Schema()
	return PAC{
		LHS:        []Tolerance{T(s, "price", 100)},
		RHS:        []Tolerance{T(s, "tax", 10)},
		Confidence: 0.9,
		Schema:     s,
	}, t
}

func TestPAC1OnTable6(t *testing.T) {
	// pac1: price_100 →^0.9 tax_10 (paper §3.5.1): 11 pairs within price
	// distance 100, 3 of them exceed tax distance 10 → Pr = 8/11 < 0.9.
	r := gen.Table6()
	p, _ := pac1(t)
	if got := p.Probability(r); math.Abs(got-8.0/11) > 1e-12 {
		t.Errorf("Pr = %v, want 8/11", got)
	}
	if p.Holds(r) {
		t.Error("pac1 must fail on r6 (paper: 0.727 < 0.9)")
	}
	vs := p.Violations(r, 0)
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3 pairs", len(vs))
	}
	if got := p.Violations(r, 2); len(got) != 2 {
		t.Error("limit not respected")
	}
}

func TestSupportCount(t *testing.T) {
	// Sanity-check the paper's "11 tuple pairs within price ≤ 100" claim.
	r := gen.Table6()
	p, _ := pac1(t)
	support := 0
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if within(r, i, j, p.LHS) {
				support++
			}
		}
	}
	if support != 11 {
		t.Errorf("support = %d, want 11 (paper §3.5.1)", support)
	}
}

func TestLowerConfidenceHolds(t *testing.T) {
	r := gen.Table6()
	p, _ := pac1(t)
	p.Confidence = 0.7
	if !p.Holds(r) {
		t.Error("Pr=8/11 ≥ 0.7 must hold")
	}
	if vs := p.Violations(r, 0); vs != nil {
		t.Errorf("holding PAC reports no violations, got %v", vs)
	}
}

func TestNEDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge NED → PAC: δ=1 reproduces the NED exactly.
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 50; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), ErrorRate: 0.3})
		s := r.Schema()
		n := ned.NED{
			LHS:    ned.Predicate{ned.T(s, "price", 50)},
			RHS:    ned.Predicate{ned.T(s, "tax", 5)},
			Schema: s,
		}
		p := FromNED(n)
		if n.Holds(r) != p.Holds(r) {
			t.Fatalf("trial %d: NED.Holds=%v but PAC(δ=1).Holds=%v", trial, n.Holds(r), p.Holds(r))
		}
	}
}

func TestVacuousPAC(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	p := PAC{
		LHS:        []Tolerance{T(s, "price", -1)}, // nothing is within negative tolerance
		RHS:        []Tolerance{T(s, "tax", 0)},
		Confidence: 1,
		Schema:     s,
	}
	if got := p.Probability(r); got != 1 {
		t.Errorf("vacuous Pr = %v, want 1", got)
	}
	if !p.Holds(r) {
		t.Error("vacuous PAC holds")
	}
}

func TestStringAndKind(t *testing.T) {
	p, _ := pac1(t)
	if p.Kind() != "PAC" {
		t.Error("Kind")
	}
	if got := p.String(); got != "price_100 ->^0.9 tax_10" {
		t.Errorf("String = %q", got)
	}
}
