package mfd

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestMFD1OnTable6(t *testing.T) {
	// mfd1: name, region →^500 price (paper §3.1.1): t2 and t6 agree on
	// name and region; their price distance 0 ≤ 500.
	r := gen.Table6()
	m := Must(r.Schema(), []string{"name", "region"}, []string{"price"}, 500)
	if !m.Holds(r) {
		t.Error("mfd1 must hold on r6")
	}
	// Tighten δ to 0 on a corrupted copy to force a violation.
	r2 := r.Clone()
	r2.SetValue(5, r.Schema().MustIndex("price"), relation.Int(900))
	tight := Must(r.Schema(), []string{"name", "region"}, []string{"price"}, 500)
	if tight.Holds(r2) {
		t.Error("price distance 600 > 500 must violate")
	}
	vs := tight.Violations(r2, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 1 || vs[0].Rows[1] != 5 {
		t.Fatalf("violations = %v, want pair (t2,t6)", vs)
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → MFD: δ=0 with the equality metric behaves as the FD.
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		m := FromFD(f)
		if f.Holds(r) != m.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but MFD(δ=0).Holds=%v",
				trial, f.Holds(r), m.Holds(r))
		}
	}
}

func TestStringMetricRHS(t *testing.T) {
	// address → region with a string metric: "Chicago" vs "Chicago, IL" are
	// within edit distance 4, so the MFD with δ=4 accepts what the FD
	// rejects — the paper's variety argument (§1.2).
	r := gen.Table1()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	if f.Holds(r) {
		t.Fatal("FD must fail on Table 1")
	}
	m := Must(r.Schema(), []string{"address"}, []string{"region"}, 4)
	vs := m.Violations(r, 0)
	// t5/t6 ("Chicago"/"Chicago, IL", distance 4) are now fine; t3/t4
	// ("Boston"/"Chicago, MA", distance > 4) remain a true violation.
	if len(vs) != 1 || vs[0].Rows[0] != 2 || vs[0].Rows[1] != 3 {
		t.Fatalf("violations = %v, want only (t3,t4)", vs)
	}
}

func TestDiameter(t *testing.T) {
	r := gen.Table1()
	m := Must(r.Schema(), []string{"address"}, []string{"price"}, 0)
	// Prices agree within every address group except none — all equal.
	if d := m.Diameter(r, 0); d != 0 {
		t.Errorf("price diameter = %v, want 0", d)
	}
	m2 := Must(r.Schema(), []string{"star"}, []string{"price"}, 0)
	// star=5 group: prices 599 and 0 → diameter 599.
	if d := m2.Diameter(r, 0); d != 599 {
		t.Errorf("price diameter by star = %v, want 599", d)
	}
}

func TestViolationLimit(t *testing.T) {
	r := gen.Table1()
	m := Must(r.Schema(), []string{"address"}, []string{"region"}, 0)
	all := m.Violations(r, 0)
	if len(all) != 2 {
		t.Fatalf("violations = %d, want 2", len(all))
	}
	if vs := m.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestNewErrors(t *testing.T) {
	s := relation.Strings("a", "b")
	if _, err := New(s, []string{"zzz"}, []string{"b"}, 1); err == nil {
		t.Error("unknown LHS should fail")
	}
	if _, err := New(s, []string{"a"}, []string{"zzz"}, 1); err == nil {
		t.Error("unknown RHS should fail")
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table6()
	m := Must(r.Schema(), []string{"name", "region"}, []string{"price"}, 500)
	if m.Kind() != "MFD" {
		t.Error("Kind")
	}
	if got := m.String(); got != "name,region ->^δ price(δ=500)" {
		t.Errorf("String = %q", got)
	}
}
