// Package mfd implements metric functional dependencies X →^δ Y (paper
// §3.1, Koudas et al. [64]): tuples that agree exactly on X must be within
// metric distance δ on Y. With δ = 0 an MFD is exactly an FD, witnessing
// the FD → MFD edge of the family tree.
package mfd

import (
	"fmt"
	"strings"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/metric"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// MFD is a metric functional dependency X →^δ Y. The metric applies
// per-attribute on Y; the dependency is violated when any Y attribute
// exceeds δ.
type MFD struct {
	// LHS is the determinant set X (compared by strict equality).
	LHS attrset.Set
	// RHS lists the dependent columns Y with their metrics.
	RHS []Dependent
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// Dependent is one Y attribute with its metric and threshold δ.
type Dependent struct {
	Col    int
	Metric metric.Metric
	Delta  float64
}

// New builds an MFD with the library default metric per attribute kind.
func New(schema *relation.Schema, lhs []string, rhs []string, delta float64) (MFD, error) {
	l, err := schema.Indices(lhs...)
	if err != nil {
		return MFD{}, fmt.Errorf("mfd: %w", err)
	}
	m := MFD{LHS: attrset.Of(l...), Schema: schema}
	for _, name := range rhs {
		i := schema.Index(name)
		if i < 0 {
			return MFD{}, fmt.Errorf("mfd: no attribute %q", name)
		}
		m.RHS = append(m.RHS, Dependent{Col: i, Metric: metric.ForKind(schema.Attr(i).Kind), Delta: delta})
	}
	return m, nil
}

// Must is New for statically-known dependencies; it panics on error.
func Must(schema *relation.Schema, lhs []string, rhs []string, delta float64) MFD {
	m, err := New(schema, lhs, rhs, delta)
	if err != nil {
		panic(err)
	}
	return m
}

// FromFD embeds an FD as the δ=0 MFD under the discrete equality metric
// (Fig 1: FD → MFD).
func FromFD(f fd.FD) MFD {
	m := MFD{LHS: f.LHS, Schema: f.Schema}
	f.RHS.Each(func(c int) {
		m.RHS = append(m.RHS, Dependent{Col: c, Metric: metric.Equality{}, Delta: 0})
	})
	return m
}

// Kind implements deps.Dependency.
func (m MFD) Kind() string { return "MFD" }

// String renders the MFD.
func (m MFD) String() string {
	var names []string
	if m.Schema != nil {
		names = m.Schema.Names()
	}
	parts := make([]string, len(m.RHS))
	for i, d := range m.RHS {
		n := fmt.Sprintf("a%d", d.Col)
		if names != nil && d.Col < len(names) {
			n = names[d.Col]
		}
		parts[i] = fmt.Sprintf("%s(δ=%.3g)", n, d.Delta)
	}
	return fmt.Sprintf("%s ->^δ %s", m.LHS.Names(names), strings.Join(parts, ","))
}

// Holds implements deps.Dependency. Verification follows §3.1.3: group by
// X, then check that every group's diameter on each Y attribute is ≤ δ —
// O(n²) pairwise within groups.
func (m MFD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(m, r)
}

// Violations implements deps.Dependency: pairs equal on X whose Y distance
// exceeds δ.
func (m MFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	px := partition.Build(r, m.LHS)
	var out []deps.Violation
	var names []string
	if m.Schema != nil {
		names = m.Schema.Names()
	}
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		for a := 0; a < len(class); a++ {
			for b := a + 1; b < len(class); b++ {
				for _, d := range m.RHS {
					dist := d.Metric.Distance(r.Value(int(class[a]), d.Col), r.Value(int(class[b]), d.Col))
					if dist != dist || dist > d.Delta { // NaN counts as violation
						n := fmt.Sprintf("a%d", d.Col)
						if names != nil && d.Col < len(names) {
							n = names[d.Col]
						}
						out = append(out, deps.Pair(int(class[a]), int(class[b]),
							"equal on %s but %s distance %.3g > δ=%.3g",
							m.LHS.Names(names), n, dist, d.Delta))
						if limit > 0 && len(out) >= limit {
							return out
						}
						break // one violation per pair
					}
				}
			}
		}
	}
	return out
}

// Diameter returns, for diagnostic use, the maximum Y-distance within any
// X-group for the i-th dependent attribute — the quantity the §3.1.3
// verification compares against δ.
func (m MFD) Diameter(r *relation.Relation, i int) float64 {
	px := partition.Build(r, m.LHS)
	d := m.RHS[i]
	max := 0.0
	for ci := 0; ci < px.NumClasses(); ci++ {
		class := px.Class(ci)
		for a := 0; a < len(class); a++ {
			for b := a + 1; b < len(class); b++ {
				dist := d.Metric.Distance(r.Value(int(class[a]), d.Col), r.Value(int(class[b]), d.Col))
				if dist == dist && dist > max {
					max = dist
				}
			}
		}
	}
	return max
}
