package md

import (
	"math/rand"
	"strings"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// md1 is the paper's §3.7.1 example: street≈(5), region≈(2) → zip⇌.
func md1(r *relation.Relation) MD {
	s := r.Schema()
	return MD{
		LHS:    []SimAttr{Sim(s, "street", 5), Sim(s, "region", 2)},
		RHS:    []int{s.MustIndex("zip")},
		Schema: s,
	}
}

func TestMD1OnTable6(t *testing.T) {
	r := gen.Table6()
	m := md1(r)
	// The paper's worked pair: t5 and t6 have similar streets and regions,
	// and their zips are identified.
	if !m.SimilarLHS(r, 4, 5) {
		t.Error("t5/t6 must be similar on street and region")
	}
	if !m.Holds(r) {
		t.Errorf("md1 must hold on r6; violations: %v", m.Violations(r, 0))
	}
	matches := m.Matches(r)
	found := false
	for _, p := range matches {
		if p[0] == 4 && p[1] == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("Matches %v must include (t5,t6)", matches)
	}
}

func TestMDViolation(t *testing.T) {
	r := gen.Table6().Clone()
	r.SetValue(5, r.Schema().MustIndex("zip"), relation.String("00000"))
	m := md1(r)
	vs := m.Violations(r, 0)
	// Pairs (t2,t6) and (t5,t6) are similar; both now fail on zip.
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	if vs := m.Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → MD: equality similarity reproduces the FD.
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		m := FromFD(f)
		if f.Holds(r) != m.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but MD(=).Holds=%v",
				trial, f.Holds(r), m.Holds(r))
		}
	}
}

func TestSupportConfidence(t *testing.T) {
	r := gen.Table6()
	m := md1(r)
	support, conf := m.SupportConfidence(r)
	if support <= 0 || support > 1 {
		t.Errorf("support = %v", support)
	}
	if conf != 1 {
		t.Errorf("confidence = %v, want 1 (md1 holds)", conf)
	}
	// Empty relation.
	empty := r.Select(func(int) bool { return false })
	s0, c0 := m.SupportConfidence(empty)
	if s0 != 0 || c0 != 1 {
		t.Errorf("empty: %v, %v", s0, c0)
	}
}

func TestCMDConditionsRestrict(t *testing.T) {
	r := gen.Table6().Clone()
	r.SetValue(5, r.Schema().MustIndex("zip"), relation.String("00000"))
	m := md1(r)
	// Condition source = s2: only pairs within source s2 are checked, so
	// the (t2, t6) violation (t6 is s1) disappears; (t5, t6) also involves
	// t6, leaving no violation among s2 tuples... t5 is s2 and t6 is s1, so
	// the only remaining candidate pair is within {t2, t4, t5}.
	c := CMD{
		MD:         m,
		Conditions: []Condition{{Col: r.Schema().MustIndex("source"), Value: relation.String("s2")}},
	}
	if !c.Holds(r) {
		t.Errorf("CMD restricted to s2 must hold; violations: %v", c.Violations(r, 0))
	}
	// Condition source = s1 with a corrupted s1 pair.
	r2 := gen.Table6().Clone()
	r2.SetValue(2, r2.Schema().MustIndex("street"), r2.Value(0, r2.Schema().MustIndex("street")))
	r2.SetValue(2, r2.Schema().MustIndex("zip"), relation.String("99999"))
	c2 := CMD{
		MD:         md1(r2),
		Conditions: []Condition{{Col: r2.Schema().MustIndex("source"), Value: relation.String("s1")}},
	}
	vs := c2.Violations(r2, 0)
	if len(vs) != 1 || vs[0].Rows[0] != 0 || vs[0].Rows[1] != 2 {
		t.Fatalf("violations = %v, want (t1,t3)", vs)
	}
}

func TestMDEmbeddingIntoCMD(t *testing.T) {
	// Fig 1 edge MD → CMD: condition-free CMD ≡ MD.
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 40; trial++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 15, Seed: rng.Int63(), DuplicateRate: 0.4, ErrorRate: 0.2})
		s := r.Schema()
		m := MD{
			LHS:    []SimAttr{Sim(s, "name", 2)},
			RHS:    []int{s.MustIndex("region")},
			Schema: s,
		}
		c := FromMD(m)
		if m.Holds(r) != c.Holds(r) {
			t.Fatalf("trial %d: MD.Holds=%v but CMD.Holds=%v", trial, m.Holds(r), c.Holds(r))
		}
	}
}

func TestCMDG3(t *testing.T) {
	r := gen.Table6().Clone()
	r.SetValue(5, r.Schema().MustIndex("zip"), relation.String("00000"))
	c := FromMD(md1(r))
	// Violating pairs (t2,t6), (t5,t6) share t6: removing it fixes both.
	if got := c.G3(r); got != 1.0/6 {
		t.Errorf("g3 = %v, want 1/6", got)
	}
	clean := gen.Table6()
	if got := FromMD(md1(clean)).G3(clean); got != 0 {
		t.Errorf("clean g3 = %v", got)
	}
	empty := clean.Select(func(int) bool { return false })
	if got := FromMD(md1(empty)).G3(empty); got != 0 {
		t.Errorf("empty g3 = %v", got)
	}
}

func TestStringers(t *testing.T) {
	r := gen.Table6()
	m := md1(r)
	if m.Kind() != "MD" {
		t.Error("Kind")
	}
	if got := m.String(); got != "street≈(5),region≈(2) -> zip⇌" {
		t.Errorf("String = %q", got)
	}
	c := CMD{MD: m, Conditions: []Condition{{Col: 0, Value: relation.String("s2")}}}
	if c.Kind() != "CMD" {
		t.Error("CMD Kind")
	}
	if !strings.HasPrefix(c.String(), "[source=s2] ") {
		t.Errorf("CMD String = %q", c.String())
	}
	if FromMD(m).String() != m.String() {
		t.Error("condition-free CMD renders as the MD")
	}
}
