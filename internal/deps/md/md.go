// Package md implements matching dependencies (paper §3.7, Fan et al.
// [33],[37]) and their conditional extension CMDs (§3.7.5, Wang et al.
// [110]).
//
// An MD X≈ → Y⇌ states that tuples similar on the X attributes (per
// per-attribute similarity operators) should be *identified* on the Y
// attributes. As a declarative matching rule it is judged by support and
// confidence; as an integrity constraint, a violation is a similar pair
// whose Y values are not identical.
package md

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// SimAttr is one determinant attribute with its similarity operator ≈:
// metric distance within MaxDist (0 meaning strict equality).
type SimAttr struct {
	Col     int
	Metric  metric.Metric
	MaxDist float64
}

// Sim builds a similarity attribute with the default metric.
func Sim(schema *relation.Schema, name string, maxDist float64) SimAttr {
	i := schema.MustIndex(name)
	return SimAttr{Col: i, Metric: metric.ForKind(schema.Attr(i).Kind), MaxDist: maxDist}
}

// MD is a matching dependency X≈ → Y⇌. Y attributes use the matching
// operator ⇌: values must be identified (equal after matching).
type MD struct {
	// LHS are the similarity-compared determinant attributes.
	LHS []SimAttr
	// RHS are the columns to identify.
	RHS []int
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the MD whose similarity operators are strict
// equality (Fig 1: FD → MD).
func FromFD(f fd.FD) MD {
	m := MD{Schema: f.Schema}
	f.LHS.Each(func(c int) {
		m.LHS = append(m.LHS, SimAttr{Col: c, Metric: metric.Equality{}, MaxDist: 0})
	})
	m.RHS = f.RHS.Cols()
	return m
}

// Kind implements deps.Dependency.
func (m MD) Kind() string { return "MD" }

// String renders the MD in the paper's notation.
func (m MD) String() string {
	var names []string
	if m.Schema != nil {
		names = m.Schema.Names()
	}
	n := func(c int) string {
		if names != nil && c < len(names) {
			return names[c]
		}
		return fmt.Sprintf("a%d", c)
	}
	lhs := make([]string, len(m.LHS))
	for i, a := range m.LHS {
		lhs[i] = fmt.Sprintf("%s≈(%.3g)", n(a.Col), a.MaxDist)
	}
	rhs := make([]string, len(m.RHS))
	for i, c := range m.RHS {
		rhs[i] = n(c) + "⇌"
	}
	return fmt.Sprintf("%s -> %s", strings.Join(lhs, ","), strings.Join(rhs, ","))
}

// SimilarLHS reports whether rows i and j are similar on every determinant
// attribute.
func (m MD) SimilarLHS(r *relation.Relation, i, j int) bool {
	for _, a := range m.LHS {
		d := a.Metric.Distance(r.Value(i, a.Col), r.Value(j, a.Col))
		if !(d <= a.MaxDist) { // NaN fails
			return false
		}
	}
	return true
}

// identified reports whether rows i and j agree on all RHS columns.
func (m MD) identified(r *relation.Relation, i, j int) bool {
	for _, c := range m.RHS {
		if !r.Value(i, c).Equal(r.Value(j, c)) {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency.
func (m MD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(m, r)
}

// Violations implements deps.Dependency: similar pairs not identified on Y.
func (m MD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if m.SimilarLHS(r, i, j) && !m.identified(r, i, j) {
				out = append(out, deps.Pair(i, j, "similar on X but not identified on Y"))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// Matches enumerates the pairs the MD identifies as referring to the same
// entity — the record-matching application of §3.7.4.
func (m MD) Matches(r *relation.Relation) [][2]int {
	var out [][2]int
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if m.SimilarLHS(r, i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// SupportConfidence returns the discovery measures of §3.7.3: support is
// the fraction of tuple pairs similar on X, confidence the fraction of
// those already identified on Y.
func (m MD) SupportConfidence(r *relation.Relation) (support, confidence float64) {
	n := r.Rows()
	if n < 2 {
		return 0, 1
	}
	total := n * (n - 1) / 2
	sim, good := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.SimilarLHS(r, i, j) {
				sim++
				if m.identified(r, i, j) {
					good++
				}
			}
		}
	}
	if sim == 0 {
		return 0, 1
	}
	return float64(sim) / float64(total), float64(good) / float64(sim)
}

// CMD is a conditional matching dependency (§3.7.5): an MD restricted by
// equality conditions to a part of the relation, analogous to CFDs
// extending FDs. MDs are the condition-free CMDs (Fig 1: MD → CMD).
type CMD struct {
	MD
	// Conditions restrict the rule to tuples matching all constants.
	Conditions []Condition
}

// Condition is an equality condition A = a.
type Condition struct {
	Col   int
	Value relation.Value
}

// FromMD embeds an MD as the condition-free CMD (Fig 1: MD → CMD).
func FromMD(m MD) CMD { return CMD{MD: m} }

// Kind implements deps.Dependency.
func (c CMD) Kind() string { return "CMD" }

// String renders the CMD.
func (c CMD) String() string {
	if len(c.Conditions) == 0 {
		return c.MD.String()
	}
	var names []string
	if c.Schema != nil {
		names = c.Schema.Names()
	}
	conds := make([]string, len(c.Conditions))
	for i, cond := range c.Conditions {
		n := fmt.Sprintf("a%d", cond.Col)
		if names != nil && cond.Col < len(names) {
			n = names[cond.Col]
		}
		conds[i] = fmt.Sprintf("%s=%v", n, cond.Value)
	}
	return fmt.Sprintf("[%s] %s", strings.Join(conds, ", "), c.MD.String())
}

// matches reports whether row i satisfies all conditions.
func (c CMD) matches(r *relation.Relation, i int) bool {
	for _, cond := range c.Conditions {
		if !r.Value(i, cond.Col).Equal(cond.Value) {
			return false
		}
	}
	return true
}

// Holds implements deps.Dependency.
func (c CMD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(c, r)
}

// Violations implements deps.Dependency: MD violations among tuples
// matching the conditions.
func (c CMD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	for i := 0; i < r.Rows(); i++ {
		if !c.matches(r, i) {
			continue
		}
		for j := i + 1; j < r.Rows(); j++ {
			if !c.matches(r, j) {
				continue
			}
			if c.SimilarLHS(r, i, j) && !c.identified(r, i, j) {
				out = append(out, deps.Pair(i, j, "conditioned pair similar on X but not identified on Y"))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// G3 is the CMD error rate of [110]: the minimum fraction of tuples to
// remove so the CMD holds. Exact computation is NP-complete; a greedy
// vertex-cover approximation is used, mirroring cd.CD.G3.
func (c CMD) G3(r *relation.Relation) float64 {
	if r.Rows() == 0 {
		return 0
	}
	adj := make(map[int]map[int]bool)
	for _, v := range c.Violations(r, 0) {
		i, j := v.Rows[0], v.Rows[1]
		if adj[i] == nil {
			adj[i] = map[int]bool{}
		}
		if adj[j] == nil {
			adj[j] = map[int]bool{}
		}
		adj[i][j] = true
		adj[j][i] = true
	}
	removed := 0
	for {
		best, deg := -1, 0
		for v, ns := range adj {
			if len(ns) > deg {
				best, deg = v, len(ns)
			}
		}
		if best < 0 {
			break
		}
		removed++
		for n := range adj[best] {
			delete(adj[n], best)
			if len(adj[n]) == 0 {
				delete(adj, n)
			}
		}
		delete(adj, best)
	}
	return float64(removed) / float64(r.Rows())
}
