// Package nud implements numerical dependencies X →_k Y (paper §2.4, Grant
// & Minker [50]): each X-value may be associated with at most k distinct
// Y-values. FDs are exactly the NUDs with k = 1, witnessing the FD → NUD
// edge of the family tree.
//
// Despite the name, NUDs constrain *cardinalities*, not numeric domains;
// the paper files them under categorical data.
package nud

import (
	"fmt"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/relation"
)

// NUD is a numerical dependency X →_k Y.
type NUD struct {
	// LHS and RHS are the attribute sets X and Y.
	LHS, RHS attrset.Set
	// K is the weight: the maximum number of distinct Y-values per X-value
	// (k ≥ 1).
	K int
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the special-case NUD with k = 1 (Fig 1: FD → NUD).
func FromFD(f fd.FD) NUD {
	return NUD{LHS: f.LHS, RHS: f.RHS, K: 1, Schema: f.Schema}
}

// Kind implements deps.Dependency.
func (n NUD) Kind() string { return "NUD" }

// String renders the NUD in the paper's notation.
func (n NUD) String() string {
	var names []string
	if n.Schema != nil {
		names = n.Schema.Names()
	}
	return fmt.Sprintf("%s ->_{k=%d} %s", n.LHS.Names(names), n.K, n.RHS.Names(names))
}

// MaxFanout returns the largest number of distinct Y-values associated with
// a single X-value in r — the smallest k for which the NUD holds.
func (n NUD) MaxFanout(r *relation.Relation) int {
	if r.Rows() == 0 {
		return 0
	}
	xCodes, _ := r.GroupCodes(n.LHS.Cols())
	yCodes, _ := r.GroupCodes(n.RHS.Cols())
	type key struct{ x, y int }
	seen := make(map[key]bool)
	fanout := make(map[int]int)
	max := 0
	for row := range xCodes {
		k := key{xCodes[row], yCodes[row]}
		if !seen[k] {
			seen[k] = true
			fanout[k.x]++
			if fanout[k.x] > max {
				max = fanout[k.x]
			}
		}
	}
	return max
}

// Holds implements deps.Dependency: every X-value has at most K distinct
// Y-values.
func (n NUD) Holds(r *relation.Relation) bool {
	return n.MaxFanout(r) <= n.K
}

// Violations implements deps.Dependency: for each over-full X-group, one
// violation listing the rows carrying more than K distinct Y-values.
func (n NUD) Violations(r *relation.Relation, limit int) []deps.Violation {
	xCodes, xCard := r.GroupCodes(n.LHS.Cols())
	yCodes, _ := r.GroupCodes(n.RHS.Cols())
	groups := make([][]int, xCard)
	for row, x := range xCodes {
		groups[x] = append(groups[x], row)
	}
	var out []deps.Violation
	var names []string
	if n.Schema != nil {
		names = n.Schema.Names()
	}
	for _, rows := range groups {
		distinct := make(map[int][]int) // y-code -> representative rows
		for _, row := range rows {
			distinct[yCodes[row]] = append(distinct[yCodes[row]], row)
		}
		if len(distinct) <= n.K {
			continue
		}
		// One representative row per distinct Y-value, sorted for
		// deterministic output.
		var reps []int
		for _, rr := range distinct {
			reps = append(reps, rr[0])
		}
		sort.Ints(reps)
		out = append(out, deps.Violation{
			Rows: reps,
			Msg: fmt.Sprintf("%d distinct %s values for one %s value (k=%d)",
				len(distinct), n.RHS.Names(names), n.LHS.Names(names), n.K),
		})
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
	return out
}
