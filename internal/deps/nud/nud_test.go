package nud

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
)

func mk(t *testing.T, k int) NUD {
	t.Helper()
	r := gen.Table5()
	n := NUD{K: k, Schema: r.Schema()}
	n.LHS = n.LHS.Add(r.Schema().MustIndex("address"))
	n.RHS = n.RHS.Add(r.Schema().MustIndex("region"))
	return n
}

func TestNUD1OnTable5(t *testing.T) {
	// Paper §2.4.1: nud1: address →_2 region holds on r5 ("El Paso" has two
	// representation formats).
	r := gen.Table5()
	if !mk(t, 2).Holds(r) {
		t.Error("address →_2 region must hold on r5")
	}
	if mk(t, 1).Holds(r) {
		t.Error("address →_1 region must fail on r5")
	}
	if got := mk(t, 1).MaxFanout(r); got != 2 {
		t.Errorf("MaxFanout = %d, want 2", got)
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → NUD: FD holds iff the k=1 embedding holds.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(25, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		n := FromFD(f)
		if f.Holds(r) != n.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but NUD(k=1).Holds=%v",
				trial, f.Holds(r), n.Holds(r))
		}
	}
}

func TestViolations(t *testing.T) {
	r := gen.Table5()
	vs := mk(t, 1).Violations(r, 0)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1 group", vs)
	}
	// The violating group must contain representatives of rows t3 and t4.
	if len(vs[0].Rows) != 2 || vs[0].Rows[0] != 2 || vs[0].Rows[1] != 3 {
		t.Errorf("violating rows = %v, want [2 3]", vs[0].Rows)
	}
	if vs := mk(t, 2).Violations(r, 0); vs != nil {
		t.Errorf("k=2 holds, got violations %v", vs)
	}
	if vs := mk(t, 1).Violations(r, 1); len(vs) != 1 {
		t.Error("limit not respected")
	}
}

func TestEmptyRelation(t *testing.T) {
	r := gen.Table5().Select(func(int) bool { return false })
	if !mk(t, 1).Holds(r) {
		t.Error("empty relation satisfies every NUD")
	}
	if got := mk(t, 1).MaxFanout(r); got != 0 {
		t.Errorf("MaxFanout on empty = %d", got)
	}
}

func TestMaxFanoutMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		r := gen.Categorical(40, []int{3, 6}, rng.Int63())
		n := NUD{K: 1, Schema: r.Schema()}
		n.LHS = n.LHS.Add(0)
		n.RHS = n.RHS.Add(1)
		fanout := n.MaxFanout(r)
		for k := 1; k <= 7; k++ {
			n.K = k
			if got, want := n.Holds(r), k >= fanout; got != want {
				t.Fatalf("trial %d: k=%d fanout=%d Holds=%v", trial, k, fanout, got)
			}
		}
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table5()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	n := FromFD(f)
	if n.Kind() != "NUD" {
		t.Error("Kind")
	}
	if got := n.String(); got != "address ->_{k=1} region" {
		t.Errorf("String = %q", got)
	}
}
