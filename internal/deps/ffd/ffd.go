// Package ffd implements fuzzy functional dependencies X ⇝ Y (paper §3.6,
// Raju & Majumdar [79]): equality is replaced by a fuzzy resemblance
// relation EQUAL, and the FFD holds when, for every tuple pair,
//
//	µ_EQ(t1[X], t2[X]) ≤ µ_EQ(t1[Y], t2[Y]),
//
// i.e. Y values are at least as "equal" as X values. The tuple-level
// resemblance over an attribute set is the minimum of the per-attribute
// resemblances. With crisp {0,1} resemblances an FFD is exactly an FD,
// witnessing the FD → FFD edge of the family tree.
package ffd

import (
	"fmt"
	"strings"

	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Attr is one attribute with its resemblance relation.
type Attr struct {
	Col int
	Eq  metric.Resemblance
}

// A builds an attribute term.
func A(schema *relation.Schema, name string, eq metric.Resemblance) Attr {
	return Attr{Col: schema.MustIndex(name), Eq: eq}
}

// FFD is a fuzzy functional dependency X ⇝ Y.
type FFD struct {
	LHS, RHS []Attr
	// Schema names attributes for rendering.
	Schema *relation.Schema
}

// FromFD embeds an FD as the crisp-resemblance FFD (Fig 1: FD → FFD).
func FromFD(f fd.FD) FFD {
	out := FFD{Schema: f.Schema}
	f.LHS.Each(func(c int) { out.LHS = append(out.LHS, Attr{Col: c, Eq: metric.CrispEqual{}}) })
	f.RHS.Each(func(c int) { out.RHS = append(out.RHS, Attr{Col: c, Eq: metric.CrispEqual{}}) })
	return out
}

// Kind implements deps.Dependency.
func (f FFD) Kind() string { return "FFD" }

// String renders the FFD.
func (f FFD) String() string {
	var names []string
	if f.Schema != nil {
		names = f.Schema.Names()
	}
	render := func(as []Attr) string {
		parts := make([]string, len(as))
		for i, a := range as {
			n := fmt.Sprintf("a%d", a.Col)
			if names != nil && a.Col < len(names) {
				n = names[a.Col]
			}
			parts[i] = n
		}
		return strings.Join(parts, ",")
	}
	return fmt.Sprintf("%s ~> %s", render(f.LHS), render(f.RHS))
}

// mu computes µ_EQ(t_i[attrs], t_j[attrs]) = min over the attributes.
func mu(r *relation.Relation, i, j int, attrs []Attr) float64 {
	m := 1.0
	for _, a := range attrs {
		if v := a.Eq.Eq(r.Value(i, a.Col), r.Value(j, a.Col)); v < m {
			m = v
		}
	}
	return m
}

// MuLHS returns µ_EQ on the determinant attributes for a tuple pair.
func (f FFD) MuLHS(r *relation.Relation, i, j int) float64 { return mu(r, i, j, f.LHS) }

// MuRHS returns µ_EQ on the dependent attributes for a tuple pair.
func (f FFD) MuRHS(r *relation.Relation, i, j int) float64 { return mu(r, i, j, f.RHS) }

// Holds implements deps.Dependency.
func (f FFD) Holds(r *relation.Relation) bool {
	return deps.HoldsByViolations(f, r)
}

// Violations implements deps.Dependency: pairs with
// µ_EQ(X) > µ_EQ(Y) — X values more "equal" than Y values.
func (f FFD) Violations(r *relation.Relation, limit int) []deps.Violation {
	var out []deps.Violation
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			mx, my := f.MuLHS(r, i, j), f.MuRHS(r, i, j)
			if mx > my {
				out = append(out, deps.Pair(i, j, "µ_EQ(X)=%.4f > µ_EQ(Y)=%.4f", mx, my))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
