package ffd

import (
	"math/rand"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// ffd1 is the paper's §3.6.1 example: name, price ⇝ tax with crisp EQUAL on
// name, µ = 1/(1+|a−b|) on price and µ = 1/(1+10|a−b|) on tax.
func ffd1(r *relation.Relation) FFD {
	s := r.Schema()
	return FFD{
		LHS: []Attr{
			A(s, "name", metric.CrispEqual{}),
			A(s, "price", metric.InverseNumeric{Beta: 1}),
		},
		RHS:    []Attr{A(s, "tax", metric.InverseNumeric{Beta: 10})},
		Schema: s,
	}
}

func TestFFD1OnTable6(t *testing.T) {
	r := gen.Table6()
	f := ffd1(r)
	// The paper's worked pair t1/t2: µ(name)=1, µ(price)=1/2, µ(tax)=1/91,
	// so min(1, 1/2) > 1/91 — a conflict.
	if got := f.MuLHS(r, 0, 1); got != 0.5 {
		t.Errorf("µ_EQ(t1[X], t2[X]) = %v, want 1/2", got)
	}
	if got := f.MuRHS(r, 0, 1); got > 0.012 || got < 0.0109 {
		t.Errorf("µ_EQ(t1[Y], t2[Y]) = %v, want 1/91", got)
	}
	if f.Holds(r) {
		t.Error("ffd1 must fail on r6 (paper: t1/t2 conflict)")
	}
	vs := f.Violations(r, 0)
	found := false
	for _, v := range vs {
		if v.Rows[0] == 0 && v.Rows[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v must include (t1,t2)", vs)
	}
	if got := f.Violations(r, 1); len(got) != 1 {
		t.Error("limit not respected")
	}
}

func TestFDEmbeddingEdge(t *testing.T) {
	// Fig 1 edge FD → FFD: crisp resemblances reproduce the FD.
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 60; trial++ {
		r := gen.Categorical(20, []int{3, 3}, rng.Int63())
		f := fd.Must(r.Schema(), []string{"c0"}, []string{"c1"})
		ff := FromFD(f)
		if f.Holds(r) != ff.Holds(r) {
			t.Fatalf("trial %d: FD.Holds=%v but FFD(crisp).Holds=%v",
				trial, f.Holds(r), ff.Holds(r))
		}
	}
}

func TestFFD2CrispOnTable1(t *testing.T) {
	// ffd2: address ⇝ region with crisp EQUAL behaves exactly like fd1
	// (paper §3.6.2): fails on Table 1.
	r := gen.Table1()
	f := fd.Must(r.Schema(), []string{"address"}, []string{"region"})
	ff := FromFD(f)
	if ff.Holds(r) {
		t.Error("ffd2 must fail on Table 1, like fd1")
	}
	sub := r.Select(func(row int) bool { return row < 2 })
	if !ff.Holds(sub) {
		t.Error("ffd2 must hold on {t1,t2}")
	}
}

func TestMonotoneResemblance(t *testing.T) {
	// A more tolerant RHS resemblance (smaller β) turns the conflict into
	// satisfaction: with β=0 on tax, µ(tax) = 1 always.
	r := gen.Table6()
	f := ffd1(r)
	f.RHS[0].Eq = metric.InverseNumeric{Beta: 0}
	if !f.Holds(r) {
		t.Errorf("β=0 RHS must always hold; violations: %v", f.Violations(r, 0))
	}
}

func TestStringAndKind(t *testing.T) {
	r := gen.Table6()
	f := ffd1(r)
	if f.Kind() != "FFD" {
		t.Error("Kind")
	}
	if got := f.String(); got != "name,price ~> tax" {
		t.Errorf("String = %q", got)
	}
}

// TestFDEmbeddingEdgeProperty widens the FD → FFD degeneracy check to
// multi-attribute determinants over random categorical relations: for
// every candidate FD the crisp embedding must agree with the FD exactly.
func TestFDEmbeddingEdgeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	cols := []string{"c0", "c1", "c2"}
	var lhss [][]string
	for _, a := range cols {
		lhss = append(lhss, []string{a})
		for _, b := range cols {
			if a < b {
				lhss = append(lhss, []string{a, b})
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		r := gen.Categorical(16, []int{2, 3, 2}, rng.Int63())
		for _, lhs := range lhss {
			for _, rhs := range cols {
				skip := false
				for _, a := range lhs {
					if a == rhs {
						skip = true
					}
				}
				if skip {
					continue
				}
				f := fd.Must(r.Schema(), lhs, []string{rhs})
				ff := FromFD(f)
				if f.Holds(r) != ff.Holds(r) {
					t.Fatalf("trial %d, %v->%s: FD.Holds=%v but FFD(crisp).Holds=%v",
						trial, lhs, rhs, f.Holds(r), ff.Holds(r))
				}
			}
		}
	}
}
