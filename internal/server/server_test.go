package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deptree/internal/engine"
	"deptree/internal/gen"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// smallCSV is a handcrafted relation with a name->city violation (alpha
// maps to two cities), used by the validate/repair tests.
const smallCSV = "name,city,stars\nalpha,paris,3\nalpha,rome,3\nbeta,rome,4\ngamma,oslo,5\n"

// hotelsCSV renders the deterministic synthetic hotels relation, large
// enough that every discoverer schedules real pool work.
func hotelsCSV(t *testing.T) string {
	t.Helper()
	r := gen.Hotels(gen.HotelConfig{Rows: 40, Seed: 5, ErrorRate: 0.1})
	var buf bytes.Buffer
	if err := relation.WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON body and returns status plus raw response body.
func post(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// errCode decodes a structured error body and returns its code.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, body)
	}
	if eb.Error.Code == "" {
		t.Fatalf("error body missing code:\n%s", body)
	}
	return eb.Error.Code
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("draining readyz body = %q", body)
	}
	// healthz keeps answering 200: the process is alive, just not ready.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("draining healthz = %d, want 200", resp.StatusCode)
	}
}

func TestDiscoverRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxInputBytes: 1 << 20})
	url := ts.URL + "/v1/discover/"
	cases := []struct {
		name, algo, body string
		wantStatus       int
		wantCode         string
	}{
		{"unknown algo", "nope", mustJSON(t, DiscoverRequest{CSV: smallCSV}), 404, "unknown_algo"},
		{"malformed JSON", "tane", "{", 400, "bad_request"},
		{"trailing data", "tane", mustJSON(t, DiscoverRequest{CSV: smallCSV}) + "{}", 400, "bad_request"},
		{"unknown field", "tane", `{"csv":"a\n1\n","nope":1}`, 400, "bad_request"},
		{"missing csv", "tane", "{}", 400, "missing_csv"},
		{"bad csv", "tane", mustJSON(t, DiscoverRequest{CSV: "a,b\n1\n"}), 400, "invalid_csv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, url+tc.algo, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d\n%s", status, tc.wantStatus, body)
			}
			if code := errCode(t, body); code != tc.wantCode {
				t.Errorf("code = %q, want %q", code, tc.wantCode)
			}
		})
	}
}

func TestDiscoverRejectsOversizedCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxInputBytes: 64})
	status, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, DiscoverRequest{CSV: smallCSV}))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413\n%s", status, body)
	}
	if code := errCode(t, body); code != "input_too_large" {
		t.Errorf("code = %q, want input_too_large", code)
	}
}

func TestDiscoverRejectsTooManyRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxRows: 2})
	status, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, DiscoverRequest{CSV: smallCSV}))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413\n%s", status, body)
	}
	if code := errCode(t, body); code != "input_too_large" {
		t.Errorf("code = %q, want input_too_large", code)
	}
}

func TestDiscoverHappyPathMatchesRunner(t *testing.T) {
	csv := hotelsCSV(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	rel, err := relation.ReadCSVAuto("request", []byte(csv), relation.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			want, err := RunDiscover(context.Background(), rel, algo, RunParams{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			status, body := post(t, ts.URL+"/v1/discover/"+algo, mustJSON(t, DiscoverRequest{CSV: csv}))
			if status != 200 {
				t.Fatalf("status = %d\n%s", status, body)
			}
			var got discoverResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if got.Algo != algo || got.Partial || got.Count != len(want.Lines) {
				t.Errorf("response header mismatch: %+v", got)
			}
			if strings.Join(got.Results, "\n") != strings.Join(want.Lines, "\n") {
				t.Errorf("results diverge from runner:\n%v\nwant\n%v", got.Results, want.Lines)
			}
			// ?format=text is byte-identical to the runner's CLI rendering.
			status, text := post(t, ts.URL+"/v1/discover/"+algo+"?format=text", mustJSON(t, DiscoverRequest{CSV: csv}))
			if status != 200 || string(text) != want.Text() {
				t.Errorf("text response (status %d) diverges:\n%q\nwant\n%q", status, text, want.Text())
			}
		})
	}
}

func TestDiscoverPartialDeterministicAcrossWorkers(t *testing.T) {
	csv := hotelsCSV(t)
	_, ts := newTestServer(t, Config{Workers: 4})
	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			var bodies []string
			for _, workers := range []int{1, 4} {
				req := DiscoverRequest{CSV: csv}
				req.Workers = workers
				req.MaxTasks = 2
				status, body := post(t, ts.URL+"/v1/discover/"+algo, mustJSON(t, req))
				if status != 200 {
					t.Fatalf("workers=%d status = %d\n%s", workers, status, body)
				}
				bodies = append(bodies, string(body))
			}
			if bodies[0] != bodies[1] {
				t.Errorf("budget-truncated response depends on worker count:\nworkers=1: %s\nworkers=4: %s",
					bodies[0], bodies[1])
			}
		})
	}
	// tane with a 2-task budget on this input is guaranteed truncated:
	// the partial marker must survive to the JSON.
	req := DiscoverRequest{CSV: csv}
	req.MaxTasks = 2
	status, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, req))
	if status != 200 {
		t.Fatalf("status = %d\n%s", status, body)
	}
	var got discoverResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Partial || got.Reason != "max-tasks" {
		t.Errorf("partial = %v reason = %q, want true/max-tasks", got.Partial, got.Reason)
	}
}

func TestValidateAndRepairEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	status, body := post(t, ts.URL+"/v1/validate", mustJSON(t, ValidateRequest{CSV: smallCSV, FDs: "name->city"}))
	if status != 200 {
		t.Fatalf("validate status = %d\n%s", status, body)
	}
	var vr validateResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Rules != 1 || vr.Checked != 1 || vr.Partial {
		t.Errorf("validate header mismatch: %+v", vr)
	}
	if !strings.Contains(vr.Report, "g3 error:") {
		t.Errorf("report missing g3 line:\n%s", vr.Report)
	}

	status, body = post(t, ts.URL+"/v1/validate", mustJSON(t, ValidateRequest{CSV: smallCSV, FDs: "name->nosuch"}))
	if status != 400 || errCode(t, body) != "invalid_fd" {
		t.Errorf("bad FD: status %d code %s", status, errCode(t, body))
	}

	status, body = post(t, ts.URL+"/v1/repair", mustJSON(t, RepairRequest{CSV: smallCSV, FD: "name->city"}))
	if status != 200 {
		t.Fatalf("repair status = %d\n%s", status, body)
	}
	var rr repairResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Changes) == 0 || rr.Partial {
		t.Errorf("repair of a violated FD changed nothing: %+v", rr)
	}
	// The repaired instance must actually satisfy the FD.
	fixed, err := relation.ReadCSVAuto("fixed", []byte(rr.CSV), relation.Limits{})
	if err != nil {
		t.Fatalf("repaired CSV unreadable: %v", err)
	}
	f, err := ParseFD(fixed.Schema(), "name->city")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Holds(fixed) {
		t.Error("repaired instance still violates name->city")
	}

	status, body = post(t, ts.URL+"/v1/repair", mustJSON(t, RepairRequest{CSV: smallCSV, FD: "garbage"}))
	if status != 400 || errCode(t, body) != "invalid_fd" {
		t.Errorf("bad repair FD: status %d code %s", status, errCode(t, body))
	}
}

func TestAdmissionShedsWith429AndRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxConcurrency: 1, MaxQueue: 1})
	// Occupy the whole admission capacity directly, then queue one
	// request; the next concurrent one must shed fast with 429.
	if err := s.adm.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	body := mustJSON(t, DiscoverRequest{CSV: smallCSV})
	queued := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/discover/tane", "application/json", strings.NewReader(body))
		if err == nil {
			queued <- resp
		}
	}()
	waitQueued(t, s.adm, 1)

	resp, err := http.Post(ts.URL+"/v1/discover/tane", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	shed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429\n%s", resp.StatusCode, shed)
	}
	if code := errCode(t, shed); code != "saturated" {
		t.Errorf("shed code = %q, want saturated", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}

	s.adm.release(1)
	r2 := <-queued
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Errorf("queued request after release = %d\n%s", r2.StatusCode, b2)
	}
}

func TestEnginePanicTripsBreaker(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	_, ts := newTestServer(t, Config{
		Workers: 2, BreakerThreshold: 2, BreakerBackoff: time.Second,
		breakerNow: clk.now, breakerJitter: identityJitter,
	})
	body := mustJSON(t, DiscoverRequest{CSV: smallCSV})

	restore := engine.SetTaskHook(func(p *engine.Pool, task int) { panic("injected") })
	for i := 0; i < 2; i++ {
		status, respBody := post(t, ts.URL+"/v1/discover/tane", body)
		if status != http.StatusInternalServerError || errCode(t, respBody) != "engine_panic" {
			t.Fatalf("panic run %d: status %d code %s", i, status, errCode(t, respBody))
		}
	}
	restore()

	// Threshold reached: the breaker is open, requests fail fast with a
	// Retry-After even though the engine is healthy again.
	resp, err := http.Post(ts.URL+"/v1/discover/tane", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, rb) != "breaker_open" {
		t.Fatalf("open breaker: status %d code %s", resp.StatusCode, errCode(t, rb))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After header")
	}

	// Other endpoints are unaffected: breakers are per-endpoint.
	if status, _ := post(t, ts.URL+"/v1/discover/cords", body); status != 200 {
		t.Errorf("cords while tane breaker open = %d, want 200", status)
	}

	// After the backoff the half-open probe runs for real and closes the
	// breaker.
	clk.advance(2 * time.Second)
	if status, rb := post(t, ts.URL+"/v1/discover/tane", body); status != 200 {
		t.Fatalf("probe after backoff = %d\n%s", status, rb)
	}
	if status, _ := post(t, ts.URL+"/v1/discover/tane", body); status != 200 {
		t.Errorf("request after recovery = %d, want 200", status)
	}
}

func TestClientBudgetPartialIsNotABreakerFault(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, BreakerThreshold: 1})
	csv := hotelsCSV(t)
	// A client-requested task budget truncates the run: 200 partial:true,
	// and the breaker must stay closed even at threshold 1.
	req := DiscoverRequest{CSV: csv}
	req.MaxTasks = 2
	for i := 0; i < 3; i++ {
		status, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, req))
		if status != 200 {
			t.Fatalf("partial run %d: status %d\n%s", i, status, body)
		}
	}
	if st := s.breakers["discover.tane"].snapshotState(); st != breakerClosed {
		t.Errorf("breaker state after client-budget partials = %v, want closed", st)
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.BeginDrain()
	status, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, DiscoverRequest{CSV: smallCSV}))
	if status != http.StatusServiceUnavailable || errCode(t, body) != "draining" {
		t.Errorf("draining POST: status %d code %s", status, errCode(t, body))
	}
}

func TestMetricsEndpointExposesServerSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	post(t, ts.URL+"/v1/discover/tane", mustJSON(t, DiscoverRequest{CSV: smallCSV}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"deptree_server_discover_tane_requests_total 1",
		"deptree_server_admission_capacity",
		"deptree_server_discover_tane_breaker_trips_total 0",
		"deptree_server_inflight 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRunServesAndDrains(t *testing.T) {
	s := New(Config{Workers: 2, DrainGrace: 50 * time.Millisecond, DrainTimeout: 2 * time.Second, Obs: obs.New()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to answer.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, _ := post(t, base+"/v1/discover/tane", mustJSON(t, DiscoverRequest{CSV: smallCSV})); status != 200 {
		t.Fatalf("pre-drain request = %d", status)
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after ctx cancellation")
	}
	if !s.Draining() {
		t.Error("server not marked draining after Run returned")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still answering after drain completed")
	}
}
