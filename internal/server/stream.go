// Streaming discovery over HTTP: POST /v1/stream/{algo} is a
// chunked-ingest session protocol. The first request (no "session"
// field) creates a session from its CSV — schema inferred exactly as the
// one-shot endpoints infer it — and returns the session id; follow-ups
// name the session and append their CSV rows (header repeated, parsed
// with the session's kinds), each answered with the refreshed ruleset,
// its diff, and the chained relation fingerprint.
//
// Sessions run through the same hardening pipeline as every other
// engine endpoint (drain, per-algorithm breaker, weighted admission,
// metrics) plus their own admission control: a fixed session-table cap
// sheds creations with 429 once the server holds too much resident
// partition state. With a WAL configured (deptool serve -jobs-dir),
// creations and accepted batches are logged and fsynced before the
// response, and replayed through fresh sessions at startup — a stream
// survives a server restart with an identical fingerprint and ruleset.
// A WAL write failure poisons the whole subsystem (503s) rather than
// letting live state silently diverge from what a restart would rebuild.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"deptree/internal/obs"
	"deptree/internal/relation"
	"deptree/internal/stream"
)

// StreamRequest is the body of POST /v1/stream/{algo}. Approximate and
// sampling knobs are deliberately absent: incremental revalidation is
// exact-only (appends are only monotone for exact dependencies), so a
// request carrying max_err or sample_rows fails the strict decoder.
type StreamRequest struct {
	// CSV is this batch: header plus zero or more rows. On creation the
	// header fixes the session schema; on appends it must repeat it.
	CSV string `json:"csv"`
	// Session names an existing session to append to; empty creates one.
	Session string `json:"session,omitempty"`
	RunKnobs
}

// streamResponse is the JSON reply of POST /v1/stream/{algo}.
type streamResponse struct {
	Session     string   `json:"session"`
	Algo        string   `json:"algo"`
	Seq         int      `json:"seq"`
	Rows        int      `json:"rows"`
	TotalRows   int      `json:"total_rows"`
	Fingerprint string   `json:"fingerprint"`
	Count       int      `json:"count"`
	Results     []string `json:"results"`
	Added       []string `json:"added"`
	Removed     []string `json:"removed"`
	Partial     bool     `json:"partial"`
	Reason      string   `json:"reason,omitempty"`
}

func (sr streamResponse) writeJSON(w http.ResponseWriter) { writeJSONBody(w, sr) }
func (sr streamResponse) writeText(w http.ResponseWriter) {
	fmt.Fprintf(w, "session %s batch %d rows %d total %d\n", sr.Session, sr.Seq, sr.Rows, sr.TotalRows)
	for _, l := range sr.Added {
		fmt.Fprintf(w, "+ %s\n", l)
	}
	for _, l := range sr.Removed {
		fmt.Fprintf(w, "- %s\n", l)
	}
	fmt.Fprintf(w, "%d dependencies\n", sr.Count)
	if sr.Partial {
		fmt.Fprintf(w, "PARTIAL: %s\n", sr.Reason)
	}
}

// serverStream is one live session; its mutex serializes batches (the
// stream.Session contract) and orders WAL appends within the session.
type serverStream struct {
	mu   sync.Mutex
	id   string
	sess *stream.Session
}

// streamTable is the session registry: bounded map, monotone ids, and
// the optional WAL shared by every session.
type streamTable struct {
	mu     sync.Mutex
	max    int
	nextID int
	byID   map[string]*serverStream
	wal    *stream.WAL
	// broken poisons the subsystem after a WAL open/replay/append
	// failure: durable and live state can no longer be kept in lockstep,
	// so every stream request answers 503 until restart. Before
	// poisoning, one bounded reopen-and-verify of the WAL is attempted —
	// a transient write error heals there; real damage fails the
	// verification and the poisoning stands. The state is visible on
	// /readyz and the stream.wal_poisoned gauge.
	broken error

	gPoisoned *obs.Gauge
	cReopened *obs.Counter
}

func newStreamTable(max int, reg *obs.Registry) *streamTable {
	return &streamTable{
		max:       max,
		byID:      make(map[string]*serverStream),
		gPoisoned: reg.Gauge("stream.wal_poisoned"),
		cReopened: reg.Counter("stream.wal_reopen_recoveries"),
	}
}

func (t *streamTable) get(id string) *serverStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

func (t *streamTable) unavailable() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.broken
}

func (t *streamTable) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.poisonLocked(err)
}

func (t *streamTable) poisonLocked(err error) {
	if t.broken == nil {
		t.broken = err
	}
	t.gPoisoned.Set(1)
}

// walAppend runs one append against the shared WAL (a no-op without
// one). On failure it attempts the single bounded recovery — reopen the
// log from disk, re-verify every frame, retry the append once — and
// only poisons the subsystem when that fails too, so one transient disk
// hiccup does not permanently 503 the stream routes.
func (t *streamTable) walAppend(do func(w *stream.WAL) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.walAppendLocked(do)
}

func (t *streamTable) walAppendLocked(do func(w *stream.WAL) error) error {
	if t.wal == nil {
		return nil
	}
	err := do(t.wal)
	if err == nil {
		return nil
	}
	if rerr := t.wal.Reopen(); rerr != nil {
		err = fmt.Errorf("%w (reopen failed: %v)", err, rerr)
	} else if err2 := do(t.wal); err2 == nil {
		t.cReopened.Inc()
		return nil
	} else {
		err = err2
	}
	t.poisonLocked(err)
	return err
}

// register adds a replayed session under its logged id, keeping nextID
// past every replayed suffix. Replay ignores the cap: sessions that were
// admitted before a restart are not orphaned by a lower cap after one.
func (t *streamTable) register(id string, sess *stream.Session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byID[id] = &serverStream{id: id, sess: sess}
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "s")); err == nil && n > t.nextID {
		t.nextID = n
	}
}

// create admits a new session, logging it to the WAL before it becomes
// visible — a session the client learned the id of always survives a
// restart.
func (t *streamTable) create(algo string, schema *relation.Schema, opts stream.Options) (*serverStream, *apiError) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.broken != nil {
		return nil, &apiError{status: http.StatusServiceUnavailable, code: "stream_unavailable",
			msg: "stream subsystem unavailable: " + t.broken.Error()}
	}
	if len(t.byID) >= t.max {
		return nil, &apiError{status: http.StatusTooManyRequests, code: "stream_sessions_exhausted",
			msg: fmt.Sprintf("session table full (%d live sessions)", len(t.byID)), retryAfter: 1}
	}
	sess, err := stream.NewSession(algo, schema, opts)
	if err != nil {
		return nil, &apiError{status: http.StatusBadRequest, code: "streaming_unsupported", msg: err.Error()}
	}
	t.nextID++
	id := "s" + strconv.Itoa(t.nextID)
	if werr := t.walAppendLocked(func(w *stream.WAL) error {
		return w.AppendCreate(id, algo, schema)
	}); werr != nil {
		return nil, &apiError{status: http.StatusInternalServerError, code: "stream_wal_failed", msg: werr.Error()}
	}
	st := &serverStream{id: id, sess: sess}
	t.byID[id] = st
	return st, nil
}

func (t *streamTable) closeWAL() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal == nil {
		return nil
	}
	err := t.wal.Close()
	t.wal = nil
	return err
}

// streamOptions are the session-lifetime knobs: ingestion limits mirror
// the CSV endpoints (the row bound applies to the whole relation, so a
// stream cannot grow past what a one-shot request could post), while
// workers and budget are overwritten per batch from the request.
func (s *Server) streamOptions() stream.Options {
	return stream.Options{
		Workers: s.cfg.Workers,
		Limits:  relation.Limits{MaxRows: s.cfg.MaxRows, MaxFieldBytes: s.cfg.MaxFieldBytes},
		Obs:     s.reg,
	}
}

// openStreamWAL opens and replays the session log, rebuilding every
// session batch by batch — same rows, same chained fingerprints, same
// rulesets. Replay runs unbudgeted on the background context; a partial
// replayed sync (impossible short of an engine panic) heals on the
// session's next batch, but a record that fails to apply poisons the
// subsystem instead of resurrecting half a session.
func (s *Server) openStreamWAL(path string) error {
	wal, err := stream.OpenWALWith(path, stream.WALOptions{Quarantine: s.cfg.WALQuarantine})
	if err != nil {
		return err
	}
	err = wal.Replay(func(rec stream.WALRecord) error {
		switch rec.Op {
		case "create":
			schema, serr := rec.SchemaOf()
			if serr != nil {
				return serr
			}
			sess, serr := stream.NewSession(rec.Algo, schema, s.streamOptions())
			if serr != nil {
				return serr
			}
			s.streams.register(rec.Session, sess)
			return nil
		case "batch":
			st := s.streams.get(rec.Session)
			if st == nil {
				return fmt.Errorf("stream: wal batch for unknown session %q", rec.Session)
			}
			rows, rerr := rec.RowsOf()
			if rerr != nil {
				return rerr
			}
			_, rerr = st.sess.AppendBatch(context.Background(), rows)
			return rerr
		}
		return fmt.Errorf("stream: wal record with unknown op %q", rec.Op)
	})
	if err != nil {
		wal.Close()
		return err
	}
	s.streams.mu.Lock()
	s.streams.wal = wal
	s.streams.mu.Unlock()
	s.reg.Gauge("server.stream.sessions").Set(int64(len(s.streams.byID)))
	return nil
}

// streamEndpoints lists the per-algorithm breaker keys for the stream
// route: one per incremental discoverer.
func streamEndpoints() []string {
	var eps []string
	for _, a := range Algorithms() {
		if stream.Supported(a) {
			eps = append(eps, "stream."+a)
		}
	}
	return eps
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	algo := r.PathValue("algo")
	if !validAlgo[algo] {
		s.reg.Counter("server.stream.unknown_algo").Inc()
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_algo",
			msg: fmt.Sprintf("unknown algorithm %q (want one of %v)", algo, Algorithms())})
		return
	}
	if !stream.Supported(algo) {
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "streaming_unsupported",
			msg: fmt.Sprintf("algorithm %q has no incremental engine (want one of %v)", algo, streamEndpoints())})
		return
	}
	endpoint := "stream." + algo
	fail := func(e *apiError) {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, e)
	}
	if err := s.streams.unavailable(); err != nil {
		fail(&apiError{status: http.StatusServiceUnavailable, code: "stream_unavailable",
			msg: "stream subsystem unavailable: " + err.Error()})
		return
	}
	var req StreamRequest
	if e := s.decodeBody(w, r, &req); e != nil {
		fail(e)
		return
	}

	// Parse and validate outside the guarded pipeline: malformed input
	// must not feed the breaker or occupy admission slots.
	var (
		rows   [][]relation.Value
		schema *relation.Schema
		st     *serverStream
	)
	if req.Session == "" {
		rel, e := s.parseCSV("stream", req.CSV)
		if e != nil {
			fail(e)
			return
		}
		schema = rel.Schema()
		rows = streamTuples(rel)
	} else {
		st = s.streams.get(req.Session)
		if st == nil {
			fail(&apiError{status: http.StatusNotFound, code: "unknown_session",
				msg: fmt.Sprintf("no stream session %q (sessions do not survive a restart without -jobs-dir)", req.Session)})
			return
		}
		if st.sess.Algo() != algo {
			fail(&apiError{status: http.StatusBadRequest, code: "algo_mismatch",
				msg: fmt.Sprintf("session %s streams %q, not %q", st.id, st.sess.Algo(), algo)})
			return
		}
		var e *apiError
		rows, e = s.parseStreamBatch(st.sess.Schema(), req.CSV)
		if e != nil {
			fail(e)
			return
		}
	}

	spec := s.resolveBudget(req.RunKnobs, r.Header)
	s.guarded(w, r, endpoint, spec, func(ctx context.Context, p RunParams) (response, bool, string, *apiError) {
		if st == nil {
			var apiErr *apiError
			st, apiErr = s.streams.create(algo, schema, s.streamOptions())
			if apiErr != nil {
				return nil, false, "", apiErr
			}
			s.reg.Gauge("server.stream.sessions").Add(1)
		}
		return s.streamRunBatch(ctx, algo, st, rows, p)
	})
}

// streamRunBatch ingests one batch under the session lock: per-request
// run knobs, the engine sync, and — only after the appender accepted the
// rows — the fsynced WAL record, so the response implies durability.
func (s *Server) streamRunBatch(ctx context.Context, algo string, st *serverStream,
	rows [][]relation.Value, p RunParams) (response, bool, string, *apiError) {

	st.mu.Lock()
	defer st.mu.Unlock()
	st.sess.SetRun(p.Workers, p.Budget)
	res, err := st.sess.AppendBatch(ctx, rows)
	if err != nil {
		var tooLarge *relation.ErrInputTooLarge
		if errors.As(err, &tooLarge) {
			return nil, false, "", &apiError{status: http.StatusRequestEntityTooLarge, code: "input_too_large", msg: err.Error()}
		}
		return nil, false, "", &apiError{status: http.StatusBadRequest, code: "invalid_batch", msg: err.Error()}
	}
	if len(rows) > 0 {
		if werr := s.streams.walAppend(func(w *stream.WAL) error {
			return w.AppendBatch(st.id, res.Seq, rows)
		}); werr != nil {
			return nil, false, "", &apiError{status: http.StatusInternalServerError, code: "stream_wal_failed", msg: werr.Error()}
		}
		s.reg.Counter("server.stream.batches").Inc()
	}
	results := res.Lines
	if results == nil {
		results = []string{}
	}
	return streamResponse{
		Session: st.id, Algo: algo, Seq: res.Seq, Rows: res.Rows, TotalRows: res.TotalRows,
		Fingerprint: res.Fingerprint, Count: len(res.Lines), Results: results,
		Added: res.Added, Removed: res.Removed, Partial: res.Partial, Reason: res.Reason,
	}, res.Partial, res.Reason, nil
}

// parseStreamBatch decodes an append batch with the session's kinds and
// checks the repeated header against the session schema. Re-inferring
// kinds per batch would let a numeric-looking batch silently re-type a
// string column; parsing with the fixed kinds keeps every batch in the
// session's value domain (the appender re-checks anyway).
func (s *Server) parseStreamBatch(schema *relation.Schema, csv string) ([][]relation.Value, *apiError) {
	if csv == "" {
		return nil, &apiError{status: http.StatusBadRequest, code: "missing_csv", msg: "csv field is required"}
	}
	kinds := make([]relation.Kind, schema.Len())
	for i := range kinds {
		kinds[i] = schema.Attr(i).Kind
	}
	rel, err := relation.ReadCSVLimits("batch", strings.NewReader(csv), kinds, relation.Limits{
		MaxBytes:      s.cfg.MaxInputBytes,
		MaxRows:       s.cfg.MaxRows,
		MaxFieldBytes: s.cfg.MaxFieldBytes,
	})
	if err != nil {
		var tooLarge *relation.ErrInputTooLarge
		if errors.As(err, &tooLarge) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "input_too_large", msg: err.Error()}
		}
		return nil, &apiError{status: http.StatusBadRequest, code: "invalid_csv", msg: err.Error()}
	}
	for i := 0; i < schema.Len(); i++ {
		if got := rel.Schema().Attr(i).Name; got != schema.Attr(i).Name {
			return nil, &apiError{status: http.StatusBadRequest, code: "schema_mismatch",
				msg: fmt.Sprintf("batch header column %d is %q, session has %q", i, got, schema.Attr(i).Name)}
		}
	}
	return streamTuples(rel), nil
}

func streamTuples(r *relation.Relation) [][]relation.Value {
	rows := make([][]relation.Value, r.Rows())
	for i := range rows {
		rows[i] = r.Tuple(i)
	}
	return rows
}
