package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"deptree/internal/relation"
)

// apiError is one structured HTTP error: every non-200 the server emits
// carries a machine-readable code and message in a JSON body, so a
// client under shed/breaker pressure can tell "back off" from "fix your
// request" without parsing prose.
type apiError struct {
	status int
	code   string
	msg    string
	// retryAfter, when > 0, is emitted as the Retry-After header and in
	// the body (whole seconds).
	retryAfter int
}

func (e *apiError) Error() string { return fmt.Sprintf("%d %s: %s", e.status, e.code, e.msg) }

// errorBody is the wire form of an apiError.
type errorBody struct {
	Error struct {
		Code       string `json:"code"`
		Message    string `json:"message"`
		RetryAfter int    `json:"retry_after_seconds,omitempty"`
	} `json:"error"`
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	var body errorBody
	body.Error.Code = e.code
	body.Error.Message = e.msg
	body.Error.RetryAfter = e.retryAfter
	w.Header().Set("Content-Type", "application/json")
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(body)
}

// RunKnobs are the per-request execution knobs every POST body accepts.
// Each may instead arrive as a header (X-Deptool-Workers,
// X-Deptool-Timeout-Ms, X-Deptool-Max-Tasks); a nonzero body field wins.
// All values are clamped to the server's configured maxima — a request
// can tighten its budget, never widen it.
type RunKnobs struct {
	// Workers requests a worker count; clamped to the server pool size.
	// Output is identical for every worker count, so this only trades
	// latency against capacity.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs requests a wall-clock budget; clamped to the server's
	// max. On expiry the response is 200 with partial:true and the
	// deterministic prefix.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxTasks requests a task budget; clamped to the server's max.
	MaxTasks int64 `json:"max_tasks,omitempty"`
}

// DiscoverRequest is the body of POST /v1/discover/{algo}.
type DiscoverRequest struct {
	// CSV is the relation, inline: header row then data rows. Column
	// kinds are inferred exactly as the CLI infers them.
	CSV string `json:"csv"`
	// MaxErr is the g3 budget for approximate FDs (tane only).
	MaxErr float64 `json:"maxerr,omitempty"`
	// SampleRows > 0 selects sample-then-verify discovery (tane, fastfd,
	// od, lexod): candidates mined on a deterministic sample, verified on
	// the full relation before emission. 400 sampling_unsupported on
	// discoverers without support.
	SampleRows int `json:"sample_rows,omitempty"`
	// SampleSeed seeds the deterministic sample permutation.
	SampleSeed int64 `json:"sample_seed,omitempty"`
	RunKnobs
}

// ValidateRequest is the body of POST /v1/validate.
type ValidateRequest struct {
	CSV string `json:"csv"`
	// FDs is a ";"-separated list of "lhs1,lhs2->rhs" specs.
	FDs string `json:"fds"`
	RunKnobs
}

// RepairRequest is the body of POST /v1/repair.
type RepairRequest struct {
	CSV string `json:"csv"`
	// FD is a single "lhs->rhs" spec.
	FD string `json:"fd"`
	RunKnobs
}

// decodeBody decodes a JSON request body into dst under the server's
// byte bound. Unknown fields are rejected so a misspelled knob fails
// loudly instead of silently running with defaults.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) *apiError {
	// The JSON envelope around an at-most-MaxInputBytes CSV needs
	// headroom for quoting and the other fields.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxInputBytes+64<<10)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: "input_too_large",
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return &apiError{status: http.StatusBadRequest, code: "bad_request",
			msg: "malformed JSON body: " + err.Error()}
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return &apiError{status: http.StatusBadRequest, code: "bad_request",
			msg: "trailing data after JSON body"}
	}
	return nil
}

// parseCSV turns a request's inline CSV into a typed relation under the
// server's ingestion limits, mapping failures to 400/413.
func (s *Server) parseCSV(name, csv string) (*relation.Relation, *apiError) {
	if csv == "" {
		return nil, &apiError{status: http.StatusBadRequest, code: "missing_csv", msg: "csv field is required"}
	}
	rel, err := relation.ReadCSVAuto(name, []byte(csv), relation.Limits{
		MaxBytes:      s.cfg.MaxInputBytes,
		MaxRows:       s.cfg.MaxRows,
		MaxFieldBytes: s.cfg.MaxFieldBytes,
	})
	if err != nil {
		var tooLarge *relation.ErrInputTooLarge
		if errors.As(err, &tooLarge) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "input_too_large", msg: err.Error()}
		}
		return nil, &apiError{status: http.StatusBadRequest, code: "invalid_csv", msg: err.Error()}
	}
	return rel, nil
}

// headerInt reads a nonnegative integer header, 0 when absent or
// unparsable (budget headers fail soft: a garbled header means "use the
// server default", never a wider budget).
func headerInt(h http.Header, key string) int64 {
	v := h.Get(key)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// budgetSpec is the resolved execution envelope for one request: body
// knobs and headers folded together, clamped by server config.
type budgetSpec struct {
	workers int
	// weight is the admission cost, the effective worker count.
	weight  int64
	timeout time.Duration
	// clientTimeout marks a deadline the client asked for: its expiry is
	// graceful degradation (200 partial), not an engine fault, so it
	// never feeds the circuit breaker.
	clientTimeout bool
	maxTasks      int64
}

// resolveBudget folds the request knobs, the budget headers and the
// server config into the request's execution envelope.
func (s *Server) resolveBudget(k RunKnobs, h http.Header) budgetSpec {
	workers := k.Workers
	if workers <= 0 {
		workers = int(headerInt(h, "X-Deptool-Workers"))
	}
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	timeoutMs := k.TimeoutMs
	if timeoutMs <= 0 {
		timeoutMs = headerInt(h, "X-Deptool-Timeout-Ms")
	}
	spec := budgetSpec{
		workers: workers,
		weight:  s.adm.clampWeight(int64(workers)),
		timeout: s.cfg.DefaultTimeout,
	}
	if timeoutMs > 0 {
		req := time.Duration(timeoutMs) * time.Millisecond
		if req <= s.cfg.MaxTimeout {
			spec.timeout = req
			spec.clientTimeout = true
		} else {
			spec.timeout = s.cfg.MaxTimeout
		}
	}
	maxTasks := k.MaxTasks
	if maxTasks <= 0 {
		maxTasks = headerInt(h, "X-Deptool-Max-Tasks")
	}
	spec.maxTasks = s.cfg.MaxTasks
	if maxTasks > 0 && (s.cfg.MaxTasks == 0 || maxTasks < s.cfg.MaxTasks) {
		spec.maxTasks = maxTasks
	}
	return spec
}
