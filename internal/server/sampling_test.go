package server

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"deptree/internal/jobs"
	"deptree/internal/relation"
)

// TestDiscoverSamplingUnsupportedRejected: sample knobs on a discoverer
// without sample-then-verify support are a pre-admission 400 — the
// request never reaches the guarded pipeline, so the breaker counter
// stays untouched.
func TestDiscoverSamplingUnsupportedRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	status, body := post(t, ts.URL+"/v1/discover/cords",
		mustJSON(t, DiscoverRequest{CSV: smallCSV, SampleRows: 2}))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", status, body)
	}
	if code := errCode(t, body); code != "sampling_unsupported" {
		t.Errorf("code = %q, want sampling_unsupported", code)
	}
	if trips := s.reg.Counter("server.discover.cords.breaker.trips").Value(); trips != 0 {
		t.Errorf("breaker trips = %d, want 0", trips)
	}
	// The same knobs on a supported discoverer succeed.
	status, body = post(t, ts.URL+"/v1/discover/tane",
		mustJSON(t, DiscoverRequest{CSV: smallCSV, SampleRows: 2, SampleSeed: 1}))
	if status != http.StatusOK {
		t.Fatalf("tane sampled status = %d, want 200\n%s", status, body)
	}
}

// TestDiscoverSampledSubsetOfFull: a served sampled run emits a subset
// of the full run's lines, and a whole-relation "sample" reproduces it
// exactly.
func TestDiscoverSampledSubsetOfFull(t *testing.T) {
	csv := hotelsCSV(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	rel, err := relation.ReadCSVAuto("request", []byte(csv), relation.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"tane", "fastfd", "od", "lexod"} {
		t.Run(algo, func(t *testing.T) {
			full, err := RunDiscover(context.Background(), rel, algo, RunParams{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			fullSet := map[string]bool{}
			for _, l := range full.Lines {
				fullSet[l] = true
			}
			status, body := post(t, ts.URL+"/v1/discover/"+algo,
				mustJSON(t, DiscoverRequest{CSV: csv, SampleRows: rel.Rows() / 3, SampleSeed: 11}))
			if status != 200 {
				t.Fatalf("status = %d\n%s", status, body)
			}
			var got discoverResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			for _, line := range got.Results {
				if !fullSet[line] {
					t.Errorf("sampled run emitted %q, absent from full output", line)
				}
			}
			status, body = post(t, ts.URL+"/v1/discover/"+algo,
				mustJSON(t, DiscoverRequest{CSV: csv, SampleRows: rel.Rows(), SampleSeed: 11}))
			if status != 200 {
				t.Fatalf("trivial sample status = %d\n%s", status, body)
			}
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if strings.Join(got.Results, "\n") != strings.Join(full.Lines, "\n") {
				t.Errorf("whole-relation sample diverges from full run:\n%v\nwant\n%v", got.Results, full.Lines)
			}
		})
	}
}

// TestJobSamplingKnobs: sample knobs ride through job submission — an
// unsupported algo is rejected at submit time, and the knobs change the
// result-cache identity (same CSV, different sample → distinct jobs).
func TestJobSamplingKnobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	status, body := post(t, ts.URL+"/v1/jobs",
		mustJSON(t, JobRequest{Kind: "discover", Algo: "cords", CSV: smallCSV, SampleRows: 2}))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", status, body)
	}
	if code := errCode(t, body); code != "sampling_unsupported" {
		t.Errorf("code = %q, want sampling_unsupported", code)
	}

	submit := func(req JobRequest) jobs.View {
		t.Helper()
		status, body := post(t, ts.URL+"/v1/jobs", mustJSON(t, req))
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit status = %d\n%s", status, body)
		}
		var v jobs.View
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	wait := func(id string) jobs.View {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=5")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v jobs.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	fullJob := submit(JobRequest{Kind: "discover", Algo: "tane", CSV: smallCSV})
	sampled := submit(JobRequest{Kind: "discover", Algo: "tane", CSV: smallCSV, SampleRows: 2, SampleSeed: 5})
	fullDone, sampledDone := wait(fullJob.ID), wait(sampled.ID)
	if fullDone.State != jobs.StateDone || sampledDone.State != jobs.StateDone {
		t.Fatalf("job states: full=%s sampled=%s", fullDone.State, sampledDone.State)
	}
	fullSet := map[string]bool{}
	for _, l := range fullDone.Result.Lines {
		fullSet[l] = true
	}
	for _, l := range sampledDone.Result.Lines {
		if !fullSet[l] {
			t.Errorf("sampled job emitted %q, absent from full job output %v", l, fullDone.Result.Lines)
		}
	}

	// Distinct cache identity: a re-submission with the same sample knobs
	// may reuse the cached result, but the full-mode and sampled specs
	// must never collide.
	specFull := jobs.Spec{Kind: "discover", Algo: "tane", CSV: smallCSV}
	specSampled := jobs.Spec{Kind: "discover", Algo: "tane", CSV: smallCSV, SampleRows: 2, SampleSeed: 5}
	fpFull, err := specFull.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if specFull.CacheKey(fpFull) == specSampled.CacheKey(fpFull) {
		t.Error("full-mode and sampled specs share a cache key")
	}
	if !reflect.DeepEqual(specSampled.CacheKey(fpFull), specSampled.CacheKey(fpFull)) {
		t.Error("cache key not deterministic")
	}
}
