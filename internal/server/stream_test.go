package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/obs"
	"deptree/internal/relation"
	"deptree/internal/stream"
	"deptree/internal/wal"
)

func relationAppendFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// csvOf renders a relation to CSV (the wire format of every endpoint).
func csvOf(t *testing.T, r *relation.Relation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := relation.WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// batchCSV renders one append batch as CSV under the plan's schema.
func batchCSV(t *testing.T, schema *relation.Schema, rows [][]relation.Value) string {
	t.Helper()
	r := relation.New("batch", schema)
	for _, row := range rows {
		if err := r.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return csvOf(t, r)
}

func postStream(t *testing.T, url, algo, body string) (int, streamResponse, []byte) {
	t.Helper()
	status, raw := post(t, url+"/v1/stream/"+algo, body)
	var sr streamResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("stream response: %v\n%s", err, raw)
		}
	}
	return status, sr, raw
}

// TestStreamSessionLifecycle drives one session through base + drift
// batches and pins the final ruleset to a one-shot discover over the
// concatenation — the HTTP face of the differential guarantee.
func TestStreamSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	plan := gen.AppendBatches(gen.AppendConfig{BaseRows: 80, BatchRows: 30, Batches: 3, DriftAt: 2, Seed: 7})

	status, sr, raw := postStream(t, ts.URL, "tane", mustJSON(t, StreamRequest{CSV: csvOf(t, plan.Base)}))
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	if sr.Session != "s1" || sr.Seq != 1 || sr.TotalRows != plan.Base.Rows() || sr.Partial {
		t.Fatalf("create response: %+v", sr)
	}
	if len(sr.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q", sr.Fingerprint)
	}
	shadow := relation.New("shadow", plan.Base.Schema())
	for i := 0; i < plan.Base.Rows(); i++ {
		if err := shadow.Append(plan.Base.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	var last streamResponse
	for i, b := range plan.Batches {
		status, last, raw = postStream(t, ts.URL, "tane",
			mustJSON(t, StreamRequest{Session: "s1", CSV: batchCSV(t, plan.Base.Schema(), b)}))
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", i+1, status, raw)
		}
		if last.Seq != i+2 || last.Partial {
			t.Fatalf("batch %d response: %+v", i+1, last)
		}
		for _, row := range b {
			if err := shadow.Append(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The session's ruleset must equal a from-scratch discover over the
	// same bytes.
	status, raw = post(t, ts.URL+"/v1/discover/tane", mustJSON(t, map[string]string{"csv": csvOf(t, shadow)}))
	if status != http.StatusOK {
		t.Fatalf("discover: status %d: %s", status, raw)
	}
	var dr discoverResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last.Results, dr.Results) {
		t.Fatalf("stream != discover\nstream:   %q\ndiscover: %q", last.Results, dr.Results)
	}
	// The drift batch must have emitted a non-empty removal diff at some
	// point; at minimum the final batch carries a coherent count.
	if last.Count != len(last.Results) {
		t.Fatalf("count %d, results %d", last.Count, len(last.Results))
	}
}

func TestStreamRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ordered := gen.AppendBatches(gen.AppendConfig{BaseRows: 20, Batches: 1, Seed: 1})
	baseCSV := csvOf(t, ordered.Base)

	status, _, raw := postStream(t, ts.URL, "nope", `{"csv":"a\n1\n"}`)
	if status != http.StatusNotFound || errCode(t, raw) != "unknown_algo" {
		t.Fatalf("unknown algo: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "fastdc", `{"csv":"a\n1\n"}`)
	if status != http.StatusBadRequest || errCode(t, raw) != "streaming_unsupported" {
		t.Fatalf("unsupported algo: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "tane", `{"csv":"a\n1\n","session":"s99"}`)
	if status != http.StatusNotFound || errCode(t, raw) != "unknown_session" {
		t.Fatalf("unknown session: %d %s", status, raw)
	}
	// Approximate/sampling knobs are not incremental: the strict decoder
	// rejects them.
	status, _, raw = postStream(t, ts.URL, "tane", `{"csv":"a\n1\n","max_err":0.1}`)
	if status != http.StatusBadRequest || errCode(t, raw) != "bad_request" {
		t.Fatalf("max_err: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "tane", `{"csv":""}`)
	if status != http.StatusBadRequest || errCode(t, raw) != "missing_csv" {
		t.Fatalf("missing csv: %d %s", status, raw)
	}

	// Create one real session, then exercise append-side validation.
	status, sr, raw := postStream(t, ts.URL, "od", mustJSON(t, StreamRequest{CSV: baseCSV}))
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "tane", mustJSON(t, StreamRequest{Session: sr.Session, CSV: baseCSV}))
	if status != http.StatusBadRequest || errCode(t, raw) != "algo_mismatch" {
		t.Fatalf("algo mismatch: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "od", mustJSON(t, StreamRequest{Session: sr.Session, CSV: "x,y\n1,2\n"}))
	if status != http.StatusBadRequest {
		t.Fatalf("schema mismatch: %d %s", status, raw)
	}
}

func TestStreamSessionCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StreamMaxSessions: 1})
	status, _, raw := postStream(t, ts.URL, "od", `{"csv":"a,b\n1,2\n"}`)
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, raw)
	}
	status, _, raw = postStream(t, ts.URL, "od", `{"csv":"a,b\n1,2\n"}`)
	if status != http.StatusTooManyRequests || errCode(t, raw) != "stream_sessions_exhausted" {
		t.Fatalf("cap: %d %s", status, raw)
	}
}

// TestStreamWALRestart is the crash-recovery contract: a session created
// and fed on one server instance is replayed by the next one from the
// WAL with an identical fingerprint and ruleset, and keeps accepting
// batches.
func TestStreamWALRestart(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "stream.wal")
	plan := gen.AppendBatches(gen.AppendConfig{BaseRows: 60, BatchRows: 25, Batches: 3, DriftAt: 2, Seed: 9})
	headerOnly := batchCSV(t, plan.Base.Schema(), nil)

	s1, ts1 := newTestServer(t, Config{Workers: 2, StreamWALPath: walPath})
	status, _, raw := postStream(t, ts1.URL, "od", mustJSON(t, StreamRequest{CSV: csvOf(t, plan.Base)}))
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, raw)
	}
	status, before, raw := postStream(t, ts1.URL, "od",
		mustJSON(t, StreamRequest{Session: "s1", CSV: batchCSV(t, plan.Base.Schema(), plan.Batches[0])}))
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{Workers: 2, StreamWALPath: walPath})
	// A header-only append is a pure read of the replayed state.
	status, after, raw := postStream(t, ts2.URL, "od", mustJSON(t, StreamRequest{Session: "s1", CSV: headerOnly}))
	if status != http.StatusOK {
		t.Fatalf("post-restart read: %d %s", status, raw)
	}
	if after.Fingerprint != before.Fingerprint {
		t.Fatalf("fingerprint diverged across restart:\nbefore %s\nafter  %s", before.Fingerprint, after.Fingerprint)
	}
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatalf("ruleset diverged across restart:\nbefore %q\nafter  %q", before.Results, after.Results)
	}
	// The replayed session keeps streaming — ids must not collide either.
	status, sr, raw := postStream(t, ts2.URL, "od",
		mustJSON(t, StreamRequest{Session: "s1", CSV: batchCSV(t, plan.Base.Schema(), plan.Batches[1])}))
	if status != http.StatusOK || sr.Partial {
		t.Fatalf("post-restart batch: %d %s", status, raw)
	}
	status, s2r, raw := postStream(t, ts2.URL, "tane", mustJSON(t, StreamRequest{CSV: csvOf(t, plan.Base)}))
	if status != http.StatusOK {
		t.Fatalf("post-restart create: %d %s", status, raw)
	}
	if s2r.Session != "s2" {
		t.Fatalf("post-restart session id %q, want s2", s2r.Session)
	}
}

// TestStreamTextFormat checks the ?format=text rendering.
func TestStreamTextFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, raw := post(t, ts.URL+"/v1/stream/od?format=text", `{"csv":"a,b\n1,2\n2,3\n"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	want := "session s1 batch 1 rows 2 total 2\n"
	if !bytes.HasPrefix(raw, []byte(want)) {
		t.Fatalf("text output:\n%s", raw)
	}
	if !bytes.Contains(raw, []byte("dependencies\n")) {
		t.Fatalf("text output missing count line:\n%s", raw)
	}
}

// TestStreamTornWALTail plants a torn tail and checks the next server
// truncates it and still replays the clean prefix.
func TestStreamTornWALTail(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "stream.wal")
	s1, ts1 := newTestServer(t, Config{Workers: 1, StreamWALPath: walPath})
	status, _, raw := postStream(t, ts1.URL, "od", `{"csv":"a,b\n1,2\n2,3\n"}`)
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, raw)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := relationAppendFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	frame := wal.EncodeFrame([]byte(`{"op":"batch","session":"s1","cells":[["n:9"]]}`))
	f.Write(frame[:len(frame)/2]) // crash mid-frame
	f.Close()

	_, ts2 := newTestServer(t, Config{Workers: 1, StreamWALPath: walPath})
	status, sr, raw := postStream(t, ts2.URL, "od", `{"csv":"a,b\n","session":"s1"}`)
	if status != http.StatusOK {
		t.Fatalf("post-truncation read: %d %s", status, raw)
	}
	if sr.TotalRows != 2 {
		t.Fatalf("replayed rows %d, want 2", sr.TotalRows)
	}
}

// TestReadyzReportsPoisonedWAL checks the poisoned stream subsystem is
// visible where an operator looks: /readyz flips to 503 with a
// diagnostic and the stream.wal_poisoned gauge reads 1.
func TestReadyzReportsPoisonedWAL(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy readyz = %d, want 200", resp.StatusCode)
	}

	s.streams.fail(errors.New("disk on fire"))

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned readyz = %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("stream wal poisoned")) || !bytes.Contains(body, []byte("disk on fire")) {
		t.Fatalf("poisoned readyz body = %q", body)
	}
	if got := s.streams.gPoisoned.Value(); got != 1 {
		t.Fatalf("stream.wal_poisoned gauge = %d, want 1", got)
	}
}

// TestStreamWALAppendReopenRetry exercises the bounded recovery in
// walAppend: one transient append failure heals through reopen-and-
// verify plus a single retry (no poisoning, recovery counted); a
// persistent failure still poisons the table.
func TestStreamWALAppendReopenRetry(t *testing.T) {
	newTable := func(t *testing.T) *streamTable {
		t.Helper()
		w, err := stream.OpenWAL(filepath.Join(t.TempDir(), "stream.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Replay(nil); err != nil {
			t.Fatal(err)
		}
		tbl := newStreamTable(4, obs.New())
		tbl.wal = w
		t.Cleanup(func() { w.Close() })
		return tbl
	}

	t.Run("transient failure heals", func(t *testing.T) {
		tbl := newTable(t)
		calls := 0
		err := tbl.walAppend(func(w *stream.WAL) error {
			calls++
			if calls == 1 {
				return errors.New("transient write error")
			}
			return w.AppendCreate("s1", "od", relation.NewSchema(relation.Attribute{Name: "a", Kind: relation.KindString}))
		})
		if err != nil {
			t.Fatalf("walAppend after transient failure: %v", err)
		}
		if calls != 2 {
			t.Fatalf("append attempted %d times, want 2 (original + one retry)", calls)
		}
		if got := tbl.cReopened.Value(); got != 1 {
			t.Fatalf("stream.wal_reopen_recoveries = %d, want 1", got)
		}
		if err := tbl.unavailable(); err != nil {
			t.Fatalf("table poisoned after successful recovery: %v", err)
		}
	})

	t.Run("persistent failure poisons", func(t *testing.T) {
		tbl := newTable(t)
		calls := 0
		err := tbl.walAppend(func(w *stream.WAL) error {
			calls++
			return errors.New("disk is gone")
		})
		if err == nil {
			t.Fatal("walAppend succeeded despite persistent failure")
		}
		if calls != 2 {
			t.Fatalf("append attempted %d times, want exactly 2 (retry is bounded)", calls)
		}
		if tbl.unavailable() == nil {
			t.Fatal("table not poisoned after failed recovery")
		}
		if got := tbl.gPoisoned.Value(); got != 1 {
			t.Fatalf("stream.wal_poisoned gauge = %d, want 1", got)
		}
	})
}
