package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"deptree/internal/deps/fd"
	"deptree/internal/discovery/registry"
	"deptree/internal/engine"
	"deptree/internal/jobs"
	"deptree/internal/obs"
)

// Config tunes the server. The zero value gets production-safe defaults
// from withDefaults; every bound exists because discovery requests are
// exactly the long-tailed, memory-hungry workload that takes an
// unbounded server down.
type Config struct {
	// Workers is the engine worker-pool size and the per-request worker
	// cap (default runtime.NumCPU()).
	Workers int
	// MaxConcurrency is the admission semaphore capacity in worker
	// units (default Workers): admitted requests' effective worker
	// counts never sum past it.
	MaxConcurrency int64
	// MaxQueue bounds the admission wait queue in requests; the
	// MaxQueue+1-th concurrent waiter is shed with 429 (default 8).
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the request names
	// none (default 30s); MaxTimeout caps what a request may ask for
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxTasks caps any request's engine task budget (0 = unlimited).
	MaxTasks int64
	// MaxInputBytes bounds a request's CSV payload (default 16 MiB);
	// MaxRows and MaxFieldBytes bound its shape (0 = unlimited).
	MaxInputBytes int64
	MaxRows       int
	MaxFieldBytes int
	// DrainGrace is how long after BeginDrain the listener keeps
	// answering (readyz already 503, admissions already closed) so load
	// balancers stop routing before the socket closes (default 200ms).
	DrainGrace time.Duration
	// DrainTimeout bounds how long shutdown waits for in-flight
	// requests before cancelling their engine contexts (default 10s).
	DrainTimeout time.Duration
	// BreakerThreshold consecutive engine faults open an endpoint's
	// breaker (default 5); BreakerBackoff is the first open interval
	// (default 500ms), doubling per failed probe up to
	// BreakerMaxBackoff (default 30s).
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// BreakerJitterSeed seeds the breakers' reopen jitter (0 =
	// time-seeded). Chaos and recovery tests pin it so breaker reopen
	// schedules are deterministic.
	BreakerJitterSeed uint64
	// JobStore persists the async job queue (nil = a fresh in-memory
	// store; `deptool serve -jobs-dir` passes a WAL store so jobs
	// survive crashes).
	JobStore jobs.Store
	// JobQueue bounds the queued-job backlog (default 64); JobRunners
	// is the number of concurrent job executors (default 2); each
	// executing job still passes the admission semaphore, so runners
	// bound queue drain, not engine load.
	JobQueue   int
	JobRunners int
	// JobMaxAttempts / JobRetryBackoff / JobJitterSeed tune the
	// transient-failure retry loop (see jobs.Config).
	JobMaxAttempts  int
	JobRetryBackoff time.Duration
	JobJitterSeed   uint64
	// StreamMaxSessions caps live streaming sessions (default 16):
	// resident partition state per session is what the cap bounds, so
	// creations past it are shed with 429 until the server restarts.
	StreamMaxSessions int
	// StreamWALPath persists streaming sessions ("" = memory only):
	// creations and accepted batches are logged and fsynced before the
	// response and replayed at startup, so a stream session survives a
	// restart with identical fingerprint and ruleset.
	StreamWALPath string
	// WALQuarantine opts WAL replay into quarantine mode: mid-log
	// corruption is sidecarred to <wal>.quarantine and the verified
	// prefix stays live, instead of the default refuse-to-start. The
	// jobs store built by the CLI honours it too (see cmd/deptool).
	WALQuarantine bool
	// Obs receives every server and engine metric (nil = no-op).
	Obs *obs.Registry

	// breakerNow/breakerJitter are test seams for the breaker clock.
	breakerNow    func() time.Time
	breakerJitter func(time.Duration) time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = int64(c.Workers)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxInputBytes <= 0 {
		c.MaxInputBytes = 16 << 20
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 200 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.StreamMaxSessions <= 0 {
		c.StreamMaxSessions = 16
	}
	return c
}

// endpoints are the guarded POST endpoints, each with its own breaker.
func endpoints() []string {
	eps := []string{"validate", "repair"}
	for _, a := range Algorithms() {
		eps = append(eps, "discover."+a)
	}
	eps = append(eps, streamEndpoints()...)
	return eps
}

// Server is the hardened discovery service. Construct with New, serve
// either via Run (owns listener lifecycle and drain) or by mounting
// Handler on an http.Server.
type Server struct {
	cfg Config
	reg *obs.Registry
	adm *admission
	lat *latencyWindow

	breakers map[string]*breaker
	handler  http.Handler

	jobs    *jobs.Manager
	jobsErr error

	streams *streamTable

	draining   atomic.Bool
	baseCtx    context.Context
	cancelBase context.CancelFunc

	inflight *obs.Gauge
	panics   *obs.Counter
}

// New builds a Server from the config. The registry in cfg.Obs observes
// every request (per-endpoint request/error counters and latency
// histograms, in-flight gauge, shed and breaker-trip counters) and is
// served on GET /metrics in Prometheus text exposition.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		adm:      newAdmission(cfg.MaxConcurrency, cfg.MaxQueue, reg),
		lat:      &latencyWindow{},
		breakers: make(map[string]*breaker),
		inflight: reg.Gauge("server.inflight"),
		panics:   reg.Counter("server.handler.panics"),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	bcfg := breakerConfig{
		threshold:  cfg.BreakerThreshold,
		backoff:    cfg.BreakerBackoff,
		maxBackoff: cfg.BreakerMaxBackoff,
		jitterSeed: cfg.BreakerJitterSeed,
		now:        cfg.breakerNow,
		jitter:     cfg.breakerJitter,
	}
	for _, ep := range s.endpointsPreRegistered() {
		s.breakers[ep] = newBreaker(ep, bcfg, reg)
	}

	jm, jerr := jobs.New(jobs.Config{
		Store:        cfg.JobStore,
		Run:          s.runJob,
		Queue:        cfg.JobQueue,
		Runners:      cfg.JobRunners,
		MaxAttempts:  cfg.JobMaxAttempts,
		RetryBackoff: cfg.JobRetryBackoff,
		JitterSeed:   cfg.JobJitterSeed,
		Obs:          reg,
	})
	if jerr != nil {
		// A corrupt-beyond-replay store must not take the synchronous
		// endpoints down: the job routes answer 503 and JobsErr surfaces
		// the cause to the CLI.
		s.jobsErr = jerr
	} else {
		s.jobs = jm
	}

	s.streams = newStreamTable(cfg.StreamMaxSessions, reg)
	if cfg.StreamWALPath != "" {
		if err := s.openStreamWAL(cfg.StreamWALPath); err != nil {
			// Same posture as a corrupt job store: the stream routes
			// answer 503, everything else stays up.
			s.streams.fail(err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/discover/{algo}", s.handleDiscover)
	mux.HandleFunc("POST /v1/stream/{algo}", s.handleStream)
	mux.HandleFunc("POST /v1/validate", s.handleValidate)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.handler = s.recoverPanics(mux)
	return s
}

// endpointsPreRegistered registers the per-endpoint metrics at
// construction so a snapshot lists them even before traffic arrives,
// and returns the endpoint keys.
func (s *Server) endpointsPreRegistered() []string {
	eps := endpoints()
	for _, ep := range eps {
		s.reg.Counter("server." + ep + ".requests")
		s.reg.Counter("server." + ep + ".errors")
		s.reg.Histogram("server." + ep + ".seconds")
	}
	return eps
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether drain has begun (readyz is then 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain flips the server into drain mode: readyz answers 503, the
// job manager drains (running jobs re-queue, their state already durable
// in the store), the admission queue is flushed and closed, and new work
// is rejected with 503. Idempotent. In-flight requests keep running.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.reg.Counter("server.drain.begun").Inc()
		if s.jobs != nil {
			// Drain jobs before the admission queue: runners blocked in
			// admission unblock via their cancelled run contexts and
			// re-queue, so every queued and running job survives in the
			// store for the next process to replay.
			s.jobs.Drain()
		}
		s.adm.drain()
	}
}

// Close releases the job subsystem: drains its runners and closes the
// store (syncing the WAL). Run calls it as part of the drain sequence;
// tests that mount Handler directly call it in cleanup.
func (s *Server) Close() error {
	var err error
	if s.jobs != nil {
		err = s.jobs.Close()
	}
	if werr := s.streams.closeWAL(); err == nil {
		err = werr
	}
	return err
}

// Jobs exposes the job manager (nil when the store failed to open) for
// the CLI and tests.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// JobsErr reports why the job subsystem is unavailable, nil when it is
// healthy.
func (s *Server) JobsErr() error { return s.jobsErr }

// StreamErr reports why the stream subsystem is unavailable (WAL open,
// replay or append failure), nil when it is healthy.
func (s *Server) StreamErr() error { return s.streams.unavailable() }

// Run serves on ln until ctx is cancelled (the SIGTERM path), then
// executes the drain sequence: BeginDrain, a DrainGrace beat for load
// balancers to observe the 503 readyz, an http.Server.Shutdown bounded
// by DrainTimeout for in-flight requests, and finally cancellation of
// the remaining engine contexts plus a forced close. It returns nil on
// a clean drain, the drain error when the deadline fired, or the
// listener error if serving failed first.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{
		Handler: s.handler,
		BaseContext: func(net.Listener) context.Context {
			return s.baseCtx
		},
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		s.cancelBase()
		return err
	case <-ctx.Done():
	}

	s.BeginDrain()
	time.Sleep(s.cfg.DrainGrace)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	// Past the drain deadline: cancel the engine contexts of whatever is
	// still in flight so their pools unwind, then force-close.
	s.cancelBase()
	if err != nil {
		hs.Close()
	}
	<-serveErr // http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("server: drain deadline exceeded: %w", err)
	}
	return nil
}

// recoverPanics is the outermost safety net: a panic escaping a handler
// (not an engine task — those are already converted to PanicError by
// the pool) becomes a 500 with a structured body instead of a killed
// connection.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				writeAPIError(w, &apiError{status: http.StatusInternalServerError,
					code: "internal_panic", msg: fmt.Sprintf("handler panic: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if err := s.streams.unavailable(); err != nil {
		// A poisoned stream WAL means acknowledged durability is broken
		// for the stream routes: stop routing traffic here until the
		// operator intervenes (fsck, restart).
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "stream wal poisoned: %v\n", err)
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// response is one successful run's reply, renderable as JSON (default)
// or, with ?format=text, as the byte-identical CLI output.
type response interface {
	writeJSON(w http.ResponseWriter)
	writeText(w http.ResponseWriter)
}

func writeResponse(w http.ResponseWriter, r *http.Request, resp response) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		resp.writeText(w)
		return
	}
	resp.writeJSON(w)
}

func writeJSONBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// discoverResponse is the JSON reply of POST /v1/discover/{algo}.
type discoverResponse struct {
	Algo    string   `json:"algo"`
	Count   int      `json:"count"`
	Results []string `json:"results"`
	Partial bool     `json:"partial"`
	Reason  string   `json:"reason,omitempty"`

	out DiscoverOutput
}

func (d discoverResponse) writeJSON(w http.ResponseWriter) { writeJSONBody(w, d) }
func (d discoverResponse) writeText(w http.ResponseWriter) { io.WriteString(w, d.out.Text()) }

// validateResponse is the JSON reply of POST /v1/validate.
type validateResponse struct {
	Report  string `json:"report"`
	Checked int    `json:"checked"`
	Rules   int    `json:"rules"`
	Partial bool   `json:"partial"`
	Reason  string `json:"reason,omitempty"`

	out ValidateOutput
}

func (v validateResponse) writeJSON(w http.ResponseWriter) { writeJSONBody(w, v) }
func (v validateResponse) writeText(w http.ResponseWriter) { io.WriteString(w, v.out.Text()) }

// repairResponse is the JSON reply of POST /v1/repair.
type repairResponse struct {
	CSV     string   `json:"csv"`
	Changes []string `json:"changes"`
	Partial bool     `json:"partial"`
	Reason  string   `json:"reason,omitempty"`
}

func (rr repairResponse) writeJSON(w http.ResponseWriter) { writeJSONBody(w, rr) }
func (rr repairResponse) writeText(w http.ResponseWriter) {
	io.WriteString(w, rr.CSV)
	if rr.Partial {
		fmt.Fprintf(w, "PARTIAL: %s\n", rr.Reason)
	}
}

// engineFault classifies a run outcome for the circuit breaker: task
// panics always count; deadline expiry counts only when the deadline
// was server-imposed (a client that asked for a tight budget and got a
// partial result is the graceful-degradation path, not a fault).
func engineFault(partial bool, reason string, clientTimeout bool) bool {
	if !partial {
		return false
	}
	if engine.IsPanicReason(reason) {
		return true
	}
	return engine.IsDeadlineReason(reason) && !clientTimeout
}

// outcomeError maps a degraded run to its HTTP error, or nil for the
// 200 path (complete, or budget-truncated partial).
func outcomeError(partial bool, reason string) *apiError {
	switch {
	case partial && engine.IsPanicReason(reason):
		return &apiError{status: http.StatusInternalServerError, code: "engine_panic",
			msg: "engine task panicked: " + reason}
	case partial && reason == "cancelled":
		return &apiError{status: http.StatusServiceUnavailable, code: "cancelled",
			msg: "run cancelled before completion (server draining or client gone)"}
	default:
		return nil
	}
}

// guarded runs fn through the full hardening pipeline for one endpoint:
// drain check, circuit breaker, weighted admission, metrics, fault
// accounting. fn receives the request context (cancelled on server
// drain past the deadline) and the resolved RunParams, and reports the
// run's partial/reason outcome alongside its response.
func (s *Server) guarded(w http.ResponseWriter, r *http.Request, endpoint string, spec budgetSpec,
	fn func(ctx context.Context, p RunParams) (response, bool, string, *apiError)) {

	requests := s.reg.Counter("server." + endpoint + ".requests")
	errCount := s.reg.Counter("server." + endpoint + ".errors")
	latency := s.reg.Histogram("server." + endpoint + ".seconds")
	requests.Inc()
	fail := func(e *apiError) {
		errCount.Inc()
		writeAPIError(w, e)
	}

	if s.draining.Load() {
		fail(&apiError{status: http.StatusServiceUnavailable, code: "draining",
			msg: "server is draining", retryAfter: s.lat.retryAfterSeconds()})
		return
	}
	br := s.breakers[endpoint]
	done, retryIn, ok := br.allow()
	if !ok {
		after := int(retryIn/time.Second) + 1
		fail(&apiError{status: http.StatusServiceUnavailable, code: "breaker_open",
			msg: fmt.Sprintf("endpoint %s circuit breaker is open", endpoint), retryAfter: after})
		return
	}

	// Tie the request to the server's base context so drain past the
	// deadline cancels the engine run even when the handler is mounted
	// outside Run (tests, embedding).
	ctx, cancelReq := context.WithCancel(r.Context())
	defer cancelReq()
	stop := context.AfterFunc(s.baseCtx, cancelReq)
	defer stop()

	if err := s.adm.acquire(ctx, spec.weight); err != nil {
		done(breakerSkip) // shed before running: no engine outcome to record
		switch err {
		case errSaturated:
			fail(&apiError{status: http.StatusTooManyRequests, code: "saturated",
				msg: "admission queue full, retry later", retryAfter: s.lat.retryAfterSeconds()})
		case errDraining:
			fail(&apiError{status: http.StatusServiceUnavailable, code: "draining",
				msg: "server is draining", retryAfter: s.lat.retryAfterSeconds()})
		default: // client gave up while queued
			fail(&apiError{status: 499, code: "client_cancelled", msg: "client cancelled while queued"})
		}
		return
	}
	defer s.adm.release(spec.weight)

	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	resp, partial, reason, apiErr := fn(ctx, RunParams{
		Workers: spec.workers,
		Budget:  engine.Budget{Timeout: spec.timeout, MaxTasks: spec.maxTasks},
		Obs:     s.reg,
	})
	elapsed := time.Since(start).Seconds()
	latency.Observe(elapsed)
	s.lat.observe(elapsed)

	if engineFault(partial, reason, spec.clientTimeout) {
		done(breakerFault)
	} else {
		done(breakerOK)
	}
	if apiErr == nil {
		apiErr = outcomeError(partial, reason)
	}
	if apiErr != nil {
		fail(apiErr)
		return
	}
	writeResponse(w, r, resp)
}

// validAlgo is the algorithm-name dispatch set for the discover route.
var validAlgo = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Algorithms() {
		m[a] = true
	}
	return m
}()

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	algo := r.PathValue("algo")
	if !validAlgo[algo] {
		s.reg.Counter("server.discover.unknown_algo").Inc()
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_algo",
			msg: fmt.Sprintf("unknown algorithm %q (want one of %v)", algo, Algorithms())})
		return
	}
	var req DiscoverRequest
	if e := s.decodeBody(w, r, &req); e != nil {
		s.reg.Counter("server.discover." + algo + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	rel, e := s.parseCSV("request", req.CSV)
	if e != nil {
		s.reg.Counter("server.discover." + algo + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	// Sampling on an unsupported discoverer is a client error: reject it
	// before the guarded pipeline so it never feeds the breaker.
	if req.SampleRows > 0 {
		if a, ok := registry.Lookup(algo); !ok || !a.Sampling {
			s.reg.Counter("server.discover." + algo + ".errors").Inc()
			writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "sampling_unsupported",
				msg: fmt.Sprintf("algorithm %q does not support sample-then-verify (sample_rows)", algo)})
			return
		}
	}
	spec := s.resolveBudget(req.RunKnobs, r.Header)
	s.guarded(w, r, "discover."+algo, spec, func(ctx context.Context, p RunParams) (response, bool, string, *apiError) {
		p.MaxErr = req.MaxErr
		p.SampleRows = req.SampleRows
		p.SampleSeed = req.SampleSeed
		out, err := RunDiscover(ctx, rel, algo, p)
		if err != nil {
			if errors.Is(err, ErrSamplingUnsupported) {
				return nil, false, "", &apiError{status: http.StatusBadRequest, code: "sampling_unsupported", msg: err.Error()}
			}
			return nil, false, "", &apiError{status: http.StatusNotFound, code: "unknown_algo", msg: err.Error()}
		}
		results := out.Lines
		if results == nil {
			results = []string{}
		}
		return discoverResponse{
			Algo: algo, Count: len(out.Lines), Results: results,
			Partial: out.Partial, Reason: out.Reason, out: out,
		}, out.Partial, out.Reason, nil
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	const endpoint = "validate"
	var req ValidateRequest
	if e := s.decodeBody(w, r, &req); e != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	rel, e := s.parseCSV("request", req.CSV)
	if e != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	fds, err := ParseFDList(rel.Schema(), req.FDs)
	if err != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "invalid_fd", msg: err.Error()})
		return
	}
	spec := s.resolveBudget(req.RunKnobs, r.Header)
	s.guarded(w, r, endpoint, spec, func(ctx context.Context, p RunParams) (response, bool, string, *apiError) {
		out := RunValidate(ctx, rel, fds, p)
		return validateResponse{
			Report: out.Report, Checked: out.Completed, Rules: out.Rules,
			Partial: out.Partial, Reason: out.Reason, out: out,
		}, out.Partial, out.Reason, nil
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	const endpoint = "repair"
	var req RepairRequest
	if e := s.decodeBody(w, r, &req); e != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	rel, e := s.parseCSV("request", req.CSV)
	if e != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, e)
		return
	}
	f, err := ParseFD(rel.Schema(), req.FD)
	if err != nil {
		s.reg.Counter("server." + endpoint + ".errors").Inc()
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "invalid_fd", msg: err.Error()})
		return
	}
	spec := s.resolveBudget(req.RunKnobs, r.Header)
	s.guarded(w, r, endpoint, spec, func(ctx context.Context, p RunParams) (response, bool, string, *apiError) {
		out, rerr := RunRepair(ctx, rel, []fd.FD{f}, p)
		if rerr != nil {
			return nil, false, "", &apiError{status: http.StatusInternalServerError, code: "encode_failed", msg: rerr.Error()}
		}
		changes := out.Changes
		if changes == nil {
			changes = []string{}
		}
		return repairResponse{
			CSV: out.CSV, Changes: changes,
			Partial: out.Partial, Reason: out.Reason,
		}, out.Partial, out.Reason, nil
	})
}
