// Package server is the HTTP serving layer of the discovery engine: a
// JSON API over the five engine-wired discoverers plus validation and
// repair, hardened for the long-tailed, memory-hungry requests dependency
// discovery produces (a TANE lattice or FASTDC evidence set can blow up
// on a small input).
//
// Robustness is structural, not best-effort:
//
//   - every request runs under the engine's Budget/DiscoverContext
//     machinery with a per-request deadline, task cap and byte-bounded
//     input (request.go);
//   - admission control sizes concurrent work to the worker pool and
//     sheds overload with 429 + Retry-After instead of queueing without
//     bound (admission.go);
//   - a per-endpoint circuit breaker converts repeated engine
//     panics/timeouts into fast 503s with backoff instead of repeatedly
//     feeding a poisoned workload to the pool (breaker.go);
//   - budget-truncated runs degrade to 200 with partial:true and the
//     same deterministic prefix the CLI emits;
//   - SIGTERM drains: readiness flips, admissions stop, in-flight
//     requests finish up to a drain deadline, then the engine contexts
//     are cancelled (server.go).
//
// This file holds the shared runners: the single run-and-render path
// used by both `deptool discover/validate/repair` and the HTTP handlers,
// which is what makes a served response byte-identical to the CLI output
// for the same input and budget (cmd/deptool/serve_test.go proves it).
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"

	"deptree/internal/apps/detect"
	"deptree/internal/apps/repair"
	"deptree/internal/deps"
	"deptree/internal/deps/fd"
	"deptree/internal/discovery/registry"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// ErrUnknownAlgo is returned by RunDiscover for an algorithm name outside
// Algorithms(). The server maps it to 404.
var ErrUnknownAlgo = errors.New("server: unknown algorithm")

// ErrSamplingUnsupported is returned by RunDiscover when sample knobs are
// set for a discoverer without sample-then-verify support. The server
// maps it to 400.
var ErrSamplingUnsupported = errors.New("server: sampling not supported")

// Algorithms lists the discoverers RunDiscover accepts — the full
// registry, in the order the CLI documents the names.
func Algorithms() []string { return registry.Names() }

// RunParams carries the execution knobs shared by every runner.
type RunParams struct {
	// Workers is the engine worker count (<= 0 selects 1).
	Workers int
	// Budget bounds the run; exhausted budgets degrade to a Partial
	// output, never an error.
	Budget engine.Budget
	// MaxErr is the g3 budget for approximate FDs (tane only).
	MaxErr float64
	// SampleRows > 0 selects sample-then-verify mode on discoverers that
	// support it: candidates mined on a deterministic SampleRows-row
	// sample, verified exactly on the full relation before emission.
	SampleRows int
	// SampleSeed seeds the deterministic sample permutation.
	SampleSeed int64
	// Obs optionally receives the run's metrics; nil is a no-op.
	Obs *obs.Registry
}

// DiscoverOutput is one discovery run rendered as the CLI renders it.
type DiscoverOutput struct {
	// Lines holds one rendered dependency per line, in the CLI's order.
	Lines []string
	// Partial marks a budget/cancellation/panic-truncated run; Lines is
	// then the same deterministic prefix the CLI prints.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks",
	// "cancelled", "panic: ..."); empty when complete.
	Reason string
}

// Text renders the output exactly as `deptool discover` writes it to
// stdout: one dependency per line, then the PARTIAL marker line if the
// run was truncated.
func (o DiscoverOutput) Text() string {
	var b strings.Builder
	for _, line := range o.Lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if o.Partial {
		fmt.Fprintf(&b, "PARTIAL: %s\n", o.Reason)
	}
	return b.String()
}

// RunDiscover runs one named discoverer over the relation under the
// params, with the exact option mapping of `deptool discover` (fastdc
// caps at 2 predicates, od reports minimal ODs; see the registry for the
// full table). The returned lines are deterministic for any worker
// count, including under a MaxTasks budget.
func RunDiscover(ctx context.Context, r *relation.Relation, algo string, p RunParams) (DiscoverOutput, error) {
	a, ok := registry.Lookup(algo)
	if !ok {
		return DiscoverOutput{}, fmt.Errorf("%w %q", ErrUnknownAlgo, algo)
	}
	if p.SampleRows > 0 && !a.Sampling {
		return DiscoverOutput{}, fmt.Errorf("%w by %q", ErrSamplingUnsupported, algo)
	}
	res := a.Run(ctx, r, registry.RunOptions{
		Workers:    p.Workers,
		Budget:     p.Budget,
		MaxErr:     p.MaxErr,
		SampleRows: p.SampleRows,
		SampleSeed: p.SampleSeed,
		Obs:        p.Obs,
	})
	return DiscoverOutput{Lines: res.Lines, Partial: res.Partial, Reason: res.Reason}, nil
}

// ParseFD parses one "lhs1,lhs2->rhs" spec against a schema.
func ParseFD(schema *relation.Schema, spec string) (fd.FD, error) {
	parts := strings.SplitN(spec, "->", 2)
	if len(parts) != 2 {
		return fd.FD{}, fmt.Errorf("FD spec %q must be lhs->rhs", spec)
	}
	split := func(s string) []string {
		var out []string
		for _, x := range strings.Split(s, ",") {
			if x = strings.TrimSpace(x); x != "" {
				out = append(out, x)
			}
		}
		return out
	}
	return fd.New(schema, split(parts[0]), split(parts[1]))
}

// ParseFDList parses a ";"-separated list of FD specs, skipping empty
// entries. An empty list is an error: validate and repair need at least
// one rule.
func ParseFDList(schema *relation.Schema, specs string) ([]fd.FD, error) {
	var out []fd.FD
	for _, spec := range strings.Split(specs, ";") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		f, err := ParseFD(schema, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, errors.New("no FD specs given")
	}
	return out, nil
}

// ValidateOutput is one validation run rendered as the CLI renders it.
type ValidateOutput struct {
	// Report is the violation report plus the per-rule g3 error lines
	// for the completed prefix, exactly as `deptool validate` prints
	// them.
	Report string
	// Partial, Reason, Completed mirror detect.RunResult.
	Partial   bool
	Reason    string
	Completed int
	// Rules is the number of rules requested.
	Rules int
}

// Text renders the output exactly as `deptool validate` writes it to
// stdout, PARTIAL marker included.
func (o ValidateOutput) Text() string {
	if !o.Partial {
		return o.Report
	}
	return o.Report + fmt.Sprintf("PARTIAL: %s (checked %d of %d rules)\n", o.Reason, o.Completed, o.Rules)
}

// RunValidate checks the FDs against the relation with the exact option
// mapping of `deptool validate` (20 witnesses per rule).
func RunValidate(ctx context.Context, r *relation.Relation, fds []fd.FD, p RunParams) ValidateOutput {
	rules := make([]deps.Dependency, len(fds))
	for i, f := range fds {
		rules[i] = f
	}
	res := detect.RunContext(ctx, r, rules, detect.Options{
		PerRuleLimit: 20,
		Workers:      p.Workers,
		Budget:       p.Budget,
		Obs:          p.Obs,
	})
	var b strings.Builder
	b.WriteString(detect.Format(res.Reports))
	for i, f := range fds {
		if i >= res.Completed {
			break
		}
		fmt.Fprintf(&b, "g3 error: %.4f\n", f.G3(r))
	}
	return ValidateOutput{
		Report:    b.String(),
		Partial:   res.Partial,
		Reason:    res.Reason,
		Completed: res.Completed,
		Rules:     len(rules),
	}
}

// RepairOutput is one repair run: the repaired instance as CSV plus the
// applied changes, rendered as the CLI renders them.
type RepairOutput struct {
	// CSV is the repaired relation encoded exactly as `deptool repair`
	// writes it to stdout.
	CSV string
	// Changes holds one rendered cell change per entry, in application
	// order.
	Changes []string
	// Partial, Reason mirror repair.Result.
	Partial bool
	Reason  string
}

// RunRepair repairs the FDs' violations by in-class majority vote, the
// exact path of `deptool repair`.
func RunRepair(ctx context.Context, r *relation.Relation, fds []fd.FD, p RunParams) (RepairOutput, error) {
	res := repair.FDRepairContext(ctx, r, fds, repair.Options{
		Workers: p.Workers,
		Budget:  p.Budget,
		Obs:     p.Obs,
	})
	var buf bytes.Buffer
	if err := relation.WriteCSV(res.Repaired, &buf); err != nil {
		return RepairOutput{}, err
	}
	out := RepairOutput{CSV: buf.String(), Partial: res.Partial, Reason: res.Reason}
	for _, ch := range res.Changes {
		out.Changes = append(out.Changes, ch.String())
	}
	return out, nil
}
