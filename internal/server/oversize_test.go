package server

import (
	"net/http"
	"testing"
)

// TestOversizedInputNeverTripsBreaker is the regression pin for the
// ingest-side row ceiling: oversized input must be rejected as a typed
// 413 before the guarded pipeline ever runs, so it can never count as an
// engine fault and can never open the per-endpoint circuit breaker —
// an input-size problem is a client error, not a server fault. Before
// the relation-layer ceiling existed, a relation past int32 rows
// panicked inside partition construction, rode engine panic isolation
// out as engine_panic, and tripped the breaker.
func TestOversizedInputNeverTripsBreaker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxRows: 2, BreakerThreshold: 3})
	// Three data rows against MaxRows: 2 — structurally valid, just too
	// big. Hammer the endpoint well past the breaker threshold.
	big := "a,b\n1,2\n3,4\n5,6\n"
	for i := 0; i < 10; i++ {
		code, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, map[string]string{"csv": big}))
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized POST #%d = %d, want 413:\n%s", i, code, body)
		}
		if c := errCode(t, body); c != "input_too_large" {
			t.Fatalf("oversized POST #%d code = %q, want input_too_large", i, c)
		}
	}
	if n := s.reg.Counter("server.discover.tane.breaker.trips").Value(); n != 0 {
		t.Fatalf("breaker trips after oversized hammering = %d, want 0", n)
	}
	// The endpoint must still serve a well-formed request immediately: a
	// tripped breaker would answer 503 breaker_open here.
	code, body := post(t, ts.URL+"/v1/discover/tane", mustJSON(t, map[string]string{"csv": "a,b\n1,2\n3,4\n"}))
	if code != http.StatusOK {
		t.Fatalf("follow-up good request = %d, want 200:\n%s", code, body)
	}
}
