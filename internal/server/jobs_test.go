package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deptree/internal/jobs"
	"deptree/internal/obs"
)

// submitJob posts a job request and decodes the returned view.
func submitJob(t *testing.T, url, body string, hdr map[string]string) (int, jobs.View) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var v jobs.View
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("job view decode: %v\n%s", err, b)
		}
	}
	return resp.StatusCode, v
}

// getJob fetches a job, optionally long-polling.
func getJob(t *testing.T, url, id, query string) (int, jobs.View) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var v jobs.View
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("job view decode: %v\n%s", err, b)
		}
	}
	return resp.StatusCode, v
}

func TestJobSubmitDiscoverMatchesSyncEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	csv := hotelsCSV(t)

	// The synchronous endpoint's text rendering is the reference.
	code, syncBody := post(t, ts.URL+"/v1/discover/tane?format=text", mustJSON(t, map[string]any{"csv": csv}))
	if code != 200 {
		t.Fatalf("sync discover = %d: %s", code, syncBody)
	}

	code, v := submitJob(t, ts.URL, mustJSON(t, map[string]any{"kind": "discover", "algo": "tane", "csv": csv}), nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if v.ID == "" || v.Fingerprint == "" {
		t.Fatalf("submit view incomplete: %+v", v)
	}

	code, got := getJob(t, ts.URL, v.ID, "?wait=10s")
	if code != 200 || got.State != jobs.StateDone {
		t.Fatalf("wait = %d state=%s reason=%q", code, got.State, got.Reason)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(text) != string(syncBody) {
		t.Fatalf("job text result differs from sync endpoint:\njob:  %q\nsync: %q", text, syncBody)
	}
}

func TestJobSubmitValidateAndRepair(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, v := submitJob(t, ts.URL, mustJSON(t, map[string]any{
		"kind": "validate", "csv": smallCSV, "fds": "name->city"}), nil)
	if code != http.StatusAccepted {
		t.Fatalf("validate submit = %d", code)
	}
	_, got := getJob(t, ts.URL, v.ID, "?wait=10s")
	if got.State != jobs.StateDone || got.Result == nil || !strings.Contains(got.Result.Report, "name") {
		t.Fatalf("validate job = %+v", got)
	}

	code, v = submitJob(t, ts.URL, mustJSON(t, map[string]any{
		"kind": "repair", "csv": smallCSV, "fd": "name->city"}), nil)
	if code != http.StatusAccepted {
		t.Fatalf("repair submit = %d", code)
	}
	_, got = getJob(t, ts.URL, v.ID, "?wait=10s")
	if got.State != jobs.StateDone || got.Result == nil || got.Result.CSV == "" {
		t.Fatalf("repair job = %+v", got)
	}
}

func TestJobSubmitRejectsMalformedInput(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name, body, wantCode string
		wantStatus           int
	}{
		{"unknown kind", mustJSON(t, map[string]any{"kind": "mine", "csv": smallCSV}), "invalid_kind", 400},
		{"unknown algo", mustJSON(t, map[string]any{"kind": "discover", "algo": "nope", "csv": smallCSV}), "unknown_algo", 404},
		{"missing csv", mustJSON(t, map[string]any{"kind": "discover", "algo": "tane"}), "missing_csv", 400},
		{"ragged csv", mustJSON(t, map[string]any{"kind": "discover", "algo": "tane", "csv": "a,b\n1\n"}), "invalid_csv", 400},
		{"bad fd list", mustJSON(t, map[string]any{"kind": "validate", "csv": smallCSV, "fds": "nope->"}), "invalid_fd", 400},
		{"bad fd", mustJSON(t, map[string]any{"kind": "repair", "csv": smallCSV, "fd": "zzz->name"}), "invalid_fd", 400},
		{"unknown knob", `{"kind":"discover","algo":"tane","csv":"a\n1\n","wrokers":3}`, "bad_request", 400},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+"/v1/jobs", tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, status, tc.wantStatus, body)
			continue
		}
		if code := errCode(t, body); code != tc.wantCode {
			t.Errorf("%s: code = %s, want %s", tc.name, code, tc.wantCode)
		}
	}

	// Unknown job IDs 404 on both get and cancel.
	if status, body := post(t, ts.URL+"/v1/jobs/j999999-feedface/cancel", ""); status != 404 || errCode(t, body) != "unknown_job" {
		t.Errorf("cancel unknown = %d %s", status, body)
	}
	if status, _ := getJob(t, ts.URL, "j999999-feedface", ""); status != 404 {
		t.Errorf("get unknown = %d, want 404", status)
	}
}

func TestJobIdempotencyKeyOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := mustJSON(t, map[string]any{"kind": "discover", "algo": "tane", "csv": smallCSV})
	hdr := map[string]string{"Idempotency-Key": "req-7"}
	_, a := submitJob(t, ts.URL, body, hdr)
	_, b := submitJob(t, ts.URL, body, hdr)
	if a.ID != b.ID {
		t.Fatalf("idempotent resubmit created a new job: %s vs %s", a.ID, b.ID)
	}
}

func TestJobFingerprintCacheOverHTTP(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Config{Workers: 2, Obs: reg})
	body := mustJSON(t, map[string]any{"kind": "discover", "algo": "fastfd", "csv": smallCSV})

	_, a := submitJob(t, ts.URL, body, nil)
	if _, got := getJob(t, ts.URL, a.ID, "?wait=10s"); got.State != jobs.StateDone {
		t.Fatalf("first job state = %s", got.State)
	}

	code, b := submitJob(t, ts.URL, body, nil)
	if code != http.StatusOK {
		t.Fatalf("cache-hit submit = %d, want 200 (result inline)", code)
	}
	if !b.CacheHit || b.State != jobs.StateDone || b.Result == nil {
		t.Fatalf("cache-hit view = %+v", b)
	}
	if got := reg.Counter("jobs.cache.hits").Value(); got != 1 {
		t.Fatalf("jobs.cache.hits = %d, want 1", got)
	}
	// The Prometheus exposition carries the counter for the smoke test.
	resp, _ := http.Get(ts.URL + "/metrics")
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "deptree_jobs_cache_hits_total 1") {
		t.Fatalf("metrics missing deptree_jobs_cache_hits_total 1")
	}
	_ = s
}

func TestJobListAndCancelEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, a := submitJob(t, ts.URL, mustJSON(t, map[string]any{"kind": "discover", "algo": "tane", "csv": smallCSV}), nil)
	getJob(t, ts.URL, a.ID, "?wait=10s")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Count int         `json:"count"`
		Jobs  []jobs.View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Count != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != a.ID {
		t.Fatalf("list = %+v", list)
	}
	if list.Jobs[0].Result != nil {
		t.Fatal("list must omit result payloads")
	}

	// Cancelling a terminal job is a no-op 200.
	code, body := post(t, ts.URL+"/v1/jobs/"+a.ID+"/cancel", "")
	if code != 200 {
		t.Fatalf("cancel terminal = %d %s", code, body)
	}
	var cv jobs.View
	json.Unmarshal(body, &cv)
	if cv.State != jobs.StateDone {
		t.Fatalf("cancel of done job changed state to %s", cv.State)
	}
}

// TestDrainPersistsJobsAndRestartResumes is the graceful-drain × jobs
// interaction: with one job running (blocked in admission) and two
// queued, BeginDrain must flip readyz to 503, reject new submissions,
// leave all three jobs non-terminal in the WAL, and a restarted server
// over the same directory must replay and complete every one.
func TestDrainPersistsJobsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	w, err := jobs.OpenWAL(walPath, jobs.WALOptions{SyncEvery: 1, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Workers:    2,
		JobStore:   w,
		JobRunners: 1,
	})

	// Occupy the whole admission semaphore so the first job blocks in
	// acquire (state running), and the rest stay queued.
	if err := s.adm.acquire(context.Background(), s.cfg.MaxConcurrency); err != nil {
		t.Fatal(err)
	}

	var ids []string
	for _, algo := range []string{"tane", "fastfd", "cords"} {
		code, v := submitJob(t, ts.URL, mustJSON(t, map[string]any{
			"kind": "discover", "algo": algo, "csv": smallCSV}), nil)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", algo, code)
		}
		ids = append(ids, v.ID)
	}
	// Wait until the first job is running (blocked in admission).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, v := getJob(t, ts.URL, ids[0], ""); v.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never reached running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if code, body := post(t, ts.URL+"/v1/jobs", mustJSON(t, map[string]any{
		"kind": "discover", "algo": "od", "csv": smallCSV})); code != http.StatusServiceUnavailable || errCode(t, body) != "draining" {
		t.Fatalf("submit during drain = %d %s", code, body)
	}
	for _, id := range ids {
		if _, v := getJob(t, ts.URL, id, ""); v.State.Terminal() {
			t.Fatalf("job %s went terminal during drain: %s", id, v.State)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same WAL: all three jobs replay and complete.
	w2, err := jobs.OpenWAL(walPath, jobs.WALOptions{SyncEvery: 1, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.New()
	s2, _ := newTestServer(t, Config{Workers: 2, JobStore: w2, JobRunners: 1, Obs: reg2})
	if got := reg2.Counter("jobs.replayed").Value(); got != 3 {
		t.Fatalf("jobs.replayed = %d, want 3", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		v, ok := s2.Jobs().Wait(ctx, id, 30*time.Second)
		if !ok || v.State != jobs.StateDone {
			t.Fatalf("replayed job %s = %s (reason %q)", id, v.State, v.Reason)
		}
	}
}

// TestReadmeJobsEndpointTable keeps the README "Async jobs" quickstart
// in lockstep with the served routes, the same contract the registry
// enforces for the discover table.
func TestReadmeJobsEndpointTable(t *testing.T) {
	readme := ""
	for dir := "."; ; dir = filepath.Join(dir, "..") {
		p := filepath.Join(dir, "README.md")
		if b, err := os.ReadFile(p); err == nil {
			readme = string(b)
			break
		}
		if abs, _ := filepath.Abs(dir); abs == "/" {
			t.Fatal("README.md not found walking up from the package directory")
		}
	}
	for _, route := range []string{
		"`POST /v1/jobs`",
		"`GET /v1/jobs/{id}`",
		"`GET /v1/jobs`",
		"`POST /v1/jobs/{id}/cancel`",
	} {
		if !strings.Contains(readme, route) {
			t.Errorf("README is missing the async-jobs route %s", route)
		}
	}
	for _, state := range []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone,
		jobs.StatePartial, jobs.StateFailed, jobs.StateCancelled} {
		if !strings.Contains(readme, fmt.Sprintf("`%s`", state)) {
			t.Errorf("README is missing the job state `%s`", state)
		}
	}
}

// TestParseWaitMalformedAndOverflow pins parseWait against every
// malformed ?wait= shape: empty, zero, negative (both bare-number and
// duration syntax), unparseable, and bare numbers large enough that the
// naive seconds→Duration multiplication would overflow into a negative
// or wrapped value. Malformed or non-positive always means no-wait;
// anything positive is clamped to maxJobWait.
func TestParseWaitMalformedAndOverflow(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"-5", 0},
		{"-0", 0},
		{"5", 5 * time.Second},
		{"30", maxJobWait},
		{"31", maxJobWait},                      // clamp above the cap
		{"9223372036854775807", maxJobWait},     // MaxInt64 secs: naive multiply wraps negative
		{"9223372036854", maxJobWait},           // ~MaxInt64/1e9 secs: wraps past the cap
		{"99999999999999999999999999", 0},       // Atoi range error, ParseDuration error -> no-wait
		{"2s", 2 * time.Second},
		{"-2s", 0},
		{"0s", 0},
		{"500ms", 500 * time.Millisecond},
		{"0.5s", 500 * time.Millisecond},
		{"1h", maxJobWait},
		{"2540400h", maxJobWait},                // ParseDuration caps at MaxInt64 ns internally
		{"abc", 0},
		{"5x", 0},
		{" 5", 0},                               // no trimming: not a valid int or duration
		{"+5", 5 * time.Second},                 // Atoi accepts an explicit sign
	}
	for _, tc := range cases {
		if got := parseWait(tc.in); got != tc.want {
			t.Errorf("parseWait(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if got := parseWait(tc.in); got < 0 || got > maxJobWait {
			t.Errorf("parseWait(%q) = %v outside [0, %v]", tc.in, got, maxJobWait)
		}
	}
}
