package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"deptree/internal/deps/fd"
	"deptree/internal/discovery/registry"
	"deptree/internal/engine"
	"deptree/internal/jobs"
	"deptree/internal/relation"
)

// maxJobWait caps a GET /v1/jobs/{id}?wait= long-poll so a client cannot
// pin a connection indefinitely.
const maxJobWait = 30 * time.Second

// JobRequest is the body of POST /v1/jobs: one async run of any
// discoverer, validation or repair. Budget knobs resolve exactly as on
// the synchronous endpoints and are baked into the job, so a crash-time
// replay re-runs under the envelope the original admission granted.
type JobRequest struct {
	// Kind selects the runner: "discover", "validate" or "repair".
	Kind string `json:"kind"`
	// Algo is the registry discoverer name (discover only).
	Algo string `json:"algo,omitempty"`
	CSV  string `json:"csv"`
	// FDs is a ";"-separated list of "lhs1,lhs2->rhs" specs (validate).
	FDs string `json:"fds,omitempty"`
	// FD is a single "lhs->rhs" spec (repair).
	FD string `json:"fd,omitempty"`
	// MaxErr is the g3 budget for approximate FDs (tane only).
	MaxErr float64 `json:"maxerr,omitempty"`
	// SampleRows > 0 selects sample-then-verify discovery (discover
	// only, sampling-capable algorithms); SampleSeed seeds the sample.
	SampleRows int   `json:"sample_rows,omitempty"`
	SampleSeed int64 `json:"sample_seed,omitempty"`
	RunKnobs
}

// runJob executes one job attempt through the same admission gate and
// run-and-render path the synchronous endpoints use, so a job's complete
// result is byte-identical to the equivalent direct request. Admission
// saturation is backpressure (the manager re-queues with growing backoff
// and never burns retry budget — the queue exists to absorb exactly that
// spike); malformed specs and run errors are terminal.
func (s *Server) runJob(ctx context.Context, spec jobs.Spec) (jobs.Result, error) {
	rel, err := relation.ReadCSVAuto("job", []byte(spec.CSV), relation.Limits{
		MaxBytes:      s.cfg.MaxInputBytes,
		MaxRows:       s.cfg.MaxRows,
		MaxFieldBytes: s.cfg.MaxFieldBytes,
	})
	if err != nil {
		return jobs.Result{}, fmt.Errorf("invalid csv: %w", err)
	}
	weight := s.adm.clampWeight(int64(spec.Workers))
	if err := s.adm.acquire(ctx, weight); err != nil {
		if errors.Is(err, errSaturated) {
			return jobs.Result{}, jobs.Backpressure{Err: err}
		}
		// Draining or cancelled: the manager classifies and re-queues.
		return jobs.Result{}, err
	}
	defer s.adm.release(weight)

	p := RunParams{
		Workers: spec.Workers,
		Budget: engine.Budget{
			Timeout:  time.Duration(spec.TimeoutMs) * time.Millisecond,
			MaxTasks: spec.MaxTasks,
		},
		MaxErr:     spec.MaxErr,
		SampleRows: spec.SampleRows,
		SampleSeed: spec.SampleSeed,
		Obs:        s.reg,
	}
	switch spec.Kind {
	case "discover":
		out, err := RunDiscover(ctx, rel, spec.Algo, p)
		if err != nil {
			return jobs.Result{}, err
		}
		return jobs.Result{Lines: out.Lines, Partial: out.Partial, Reason: out.Reason}, nil
	case "validate":
		fds, err := ParseFDList(rel.Schema(), spec.FDs)
		if err != nil {
			return jobs.Result{}, err
		}
		out := RunValidate(ctx, rel, fds, p)
		return jobs.Result{Report: out.Text(), Partial: out.Partial, Reason: out.Reason}, nil
	case "repair":
		f, err := ParseFD(rel.Schema(), spec.FD)
		if err != nil {
			return jobs.Result{}, err
		}
		out, rerr := RunRepair(ctx, rel, []fd.FD{f}, p)
		if rerr != nil {
			return jobs.Result{}, rerr
		}
		return jobs.Result{CSV: out.CSV, Changes: out.Changes, Partial: out.Partial, Reason: out.Reason}, nil
	default:
		return jobs.Result{}, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// jobsOrFail returns the manager or writes the 503 explaining why the
// job subsystem is down (store failed to open/replay).
func (s *Server) jobsOrFail(w http.ResponseWriter) *jobs.Manager {
	if s.jobs != nil {
		return s.jobs
	}
	msg := "job subsystem unavailable"
	if s.jobsErr != nil {
		msg += ": " + s.jobsErr.Error()
	}
	writeAPIError(w, &apiError{status: http.StatusServiceUnavailable, code: "jobs_unavailable", msg: msg})
	return nil
}

func writeJobView(w http.ResponseWriter, status int, v jobs.View) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("server.jobs.requests").Inc()
	errCount := s.reg.Counter("server.jobs.errors")
	fail := func(e *apiError) {
		errCount.Inc()
		writeAPIError(w, e)
	}
	m := s.jobsOrFail(w)
	if m == nil {
		errCount.Inc()
		return
	}
	if s.draining.Load() {
		fail(&apiError{status: http.StatusServiceUnavailable, code: "draining",
			msg: "server is draining", retryAfter: s.lat.retryAfterSeconds()})
		return
	}
	var req JobRequest
	if e := s.decodeBody(w, r, &req); e != nil {
		fail(e)
		return
	}
	switch req.Kind {
	case "discover":
		if !validAlgo[req.Algo] {
			fail(&apiError{status: http.StatusNotFound, code: "unknown_algo",
				msg: fmt.Sprintf("unknown algorithm %q (want one of %v)", req.Algo, Algorithms())})
			return
		}
		if req.SampleRows > 0 {
			if a, ok := registry.Lookup(req.Algo); !ok || !a.Sampling {
				fail(&apiError{status: http.StatusBadRequest, code: "sampling_unsupported",
					msg: fmt.Sprintf("algorithm %q does not support sample-then-verify (sample_rows)", req.Algo)})
				return
			}
		}
	case "validate", "repair":
		// Rule specs are parsed below, against the schema.
	default:
		fail(&apiError{status: http.StatusBadRequest, code: "invalid_kind",
			msg: fmt.Sprintf("unknown job kind %q (want discover, validate or repair)", req.Kind)})
		return
	}
	// Malformed input is a terminal submit-time rejection, never a
	// queued job: parse the CSV (under the server's ingestion limits)
	// and the rule specs now.
	rel, e := s.parseCSV("job", req.CSV)
	if e != nil {
		fail(e)
		return
	}
	switch req.Kind {
	case "validate":
		if _, err := ParseFDList(rel.Schema(), req.FDs); err != nil {
			fail(&apiError{status: http.StatusBadRequest, code: "invalid_fd", msg: err.Error()})
			return
		}
	case "repair":
		if _, err := ParseFD(rel.Schema(), req.FD); err != nil {
			fail(&apiError{status: http.StatusBadRequest, code: "invalid_fd", msg: err.Error()})
			return
		}
	}
	bs := s.resolveBudget(req.RunKnobs, r.Header)
	spec := jobs.Spec{
		Kind: req.Kind, Algo: req.Algo, CSV: req.CSV,
		FDs: req.FDs, FD: req.FD, MaxErr: req.MaxErr,
		Workers:   bs.workers,
		TimeoutMs: bs.timeout.Milliseconds(),
		MaxTasks:  bs.maxTasks,
	}
	v, err := m.Submit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			fail(&apiError{status: http.StatusTooManyRequests, code: "jobs_queue_full",
				msg: "job queue full, retry later", retryAfter: s.lat.retryAfterSeconds()})
		case errors.Is(err, jobs.ErrDraining):
			fail(&apiError{status: http.StatusServiceUnavailable, code: "draining",
				msg: "server is draining", retryAfter: s.lat.retryAfterSeconds()})
		default:
			var tr jobs.Transient
			if errors.As(err, &tr) {
				fail(&apiError{status: http.StatusServiceUnavailable, code: "store_unavailable",
					msg: "job store write failed: " + err.Error(), retryAfter: 1})
				return
			}
			fail(&apiError{status: http.StatusBadRequest, code: "invalid_job", msg: err.Error()})
		}
		return
	}
	// A fresh submission is 202 Accepted; an idempotency or cache hit
	// that is already terminal answers 200 with the result inline.
	status := http.StatusAccepted
	if v.State.Terminal() {
		status = http.StatusOK
	}
	writeJobView(w, status, v)
}

// parseWait reads the ?wait= long-poll bound: a Go duration ("2s") or a
// plain number of seconds, clamped to [0, maxJobWait]. Anything
// malformed, negative or zero means no-wait; the clamp happens BEFORE
// the seconds→Duration multiplication so an overflowing bare number
// (e.g. "99999999999999") cannot wrap into a negative or tiny duration.
func parseWait(q string) time.Duration {
	if q == "" {
		return 0
	}
	if secs, err := strconv.Atoi(q); err == nil {
		if secs <= 0 {
			return 0
		}
		if secs > int(maxJobWait/time.Second) {
			return maxJobWait
		}
		return time.Duration(secs) * time.Second
	}
	d, err := time.ParseDuration(q)
	if err != nil || d <= 0 {
		return 0
	}
	if d > maxJobWait {
		d = maxJobWait
	}
	return d
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	m := s.jobsOrFail(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	wait := parseWait(r.URL.Query().Get("wait"))
	var v jobs.View
	var ok bool
	if wait > 0 {
		v, ok = m.Wait(r.Context(), id, wait)
	} else {
		v, ok = m.Get(id)
	}
	if !ok {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_job",
			msg: fmt.Sprintf("unknown job %q", id)})
		return
	}
	if r.URL.Query().Get("format") == "text" && v.State.Terminal() && v.Result != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, v.Result.Text())
		return
	}
	writeJobView(w, http.StatusOK, v)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	m := s.jobsOrFail(w)
	if m == nil {
		return
	}
	views := m.List()
	writeJSONBody(w, struct {
		Count int         `json:"count"`
		Jobs  []jobs.View `json:"jobs"`
	}{Count: len(views), Jobs: views})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	m := s.jobsOrFail(w)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	v, err := m.Cancel(id)
	if err != nil {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_job",
			msg: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJobView(w, http.StatusOK, v)
}
