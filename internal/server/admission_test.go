package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"deptree/internal/obs"
)

func newTestAdmission(capacity int64, maxQueue int) *admission {
	return newAdmission(capacity, maxQueue, obs.New())
}

func TestAdmissionImmediateGrant(t *testing.T) {
	a := newTestAdmission(4, 2)
	ctx := context.Background()
	if err := a.acquire(ctx, 3); err != nil {
		t.Fatalf("acquire(3): %v", err)
	}
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatalf("acquire(1): %v", err)
	}
	a.release(1)
	a.release(3)
	if a.inUse != 0 {
		t.Fatalf("inUse = %d after full release", a.inUse)
	}
}

func TestAdmissionClampWeight(t *testing.T) {
	a := newTestAdmission(4, 2)
	if got := a.clampWeight(0); got != 1 {
		t.Errorf("clampWeight(0) = %d, want 1", got)
	}
	if got := a.clampWeight(99); got != 4 {
		t.Errorf("clampWeight(99) = %d, want 4", got)
	}
	if got := a.clampWeight(3); got != 3 {
		t.Errorf("clampWeight(3) = %d, want 3", got)
	}
}

// acquireAsync starts an acquire in a goroutine and returns a channel
// carrying its result.
func acquireAsync(a *admission, ctx context.Context, weight int64) chan error {
	ch := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		ch <- a.acquire(ctx, weight)
	}()
	<-ready
	return ch
}

// waitQueued polls until the admission queue holds n waiters.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a.mu.Lock()
		l := a.waiters.Len()
		a.mu.Unlock()
		if l == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue length %d, want %d", l, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionShedWhenQueueFull(t *testing.T) {
	a := newTestAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	first := acquireAsync(a, ctx, 1)
	waitQueued(t, a, 1)
	// Queue is at its bound: the next concurrent waiter is shed, fast.
	if err := a.acquire(ctx, 1); !errors.Is(err, errSaturated) {
		t.Fatalf("overflow acquire = %v, want errSaturated", err)
	}
	if got := a.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	a.release(1)
	if err := <-first; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	a.release(1)
}

func TestAdmissionFIFOGrantOrder(t *testing.T) {
	a := newTestAdmission(2, 8)
	ctx := context.Background()
	if err := a.acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	chans := make([]chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		chans[i] = make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := a.acquire(ctx, 1)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			chans[i] <- err
		}()
		waitQueued(t, a, i+1)
	}
	// Release one unit at a time so exactly one waiter is granted per
	// release, making the FIFO order observable.
	for i := 0; i < 3; i++ {
		a.release(1)
		if err := <-chans[i]; err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("grant order %v, want [0 1 2]", order)
	}
}

func TestAdmissionDrainFlushesWaiters(t *testing.T) {
	a := newTestAdmission(1, 4)
	ctx := context.Background()
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	queued := acquireAsync(a, ctx, 1)
	waitQueued(t, a, 1)
	a.drain()
	if err := <-queued; !errors.Is(err, errDraining) {
		t.Fatalf("queued acquire after drain = %v, want errDraining", err)
	}
	if err := a.acquire(ctx, 1); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain acquire = %v, want errDraining", err)
	}
	// The in-flight grant still releases cleanly.
	a.release(1)
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newTestAdmission(1, 4)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := acquireAsync(a, ctx, 1)
	waitQueued(t, a, 1)
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	waitQueued(t, a, 0)
	// The abandoned slot must not leak capacity: a fresh waiter is
	// granted as soon as the holder releases.
	next := acquireAsync(a, context.Background(), 1)
	waitQueued(t, a, 1)
	a.release(1)
	if err := <-next; err != nil {
		t.Fatal(err)
	}
	a.release(1)
}

func TestLatencyWindowRetryAfter(t *testing.T) {
	var l latencyWindow
	if got := l.retryAfterSeconds(); got != 1 {
		t.Errorf("empty window retry-after = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		l.observe(2.3)
	}
	if got := l.p50(); got != 2.3 {
		t.Errorf("p50 = %v, want 2.3", got)
	}
	if got := l.retryAfterSeconds(); got != 3 {
		t.Errorf("retry-after = %d, want ceil(2.3) = 3", got)
	}
	// The window is a ring: enough fast observations displace the slow
	// ones entirely.
	for i := 0; i < 64; i++ {
		l.observe(0.2)
	}
	if got := l.retryAfterSeconds(); got != 1 {
		t.Errorf("retry-after after fast window = %d, want 1", got)
	}
}

// TestRetryAfterColdStartAndClamp pins the estimator's degenerate ends:
// an empty window (cold start — no request has completed yet) yields the
// documented fallback rather than p50-of-nothing, and a window full of
// pathologically slow runs is clamped to the maximum.
func TestRetryAfterColdStartAndClamp(t *testing.T) {
	var cold latencyWindow
	if got := cold.retryAfterSeconds(); got != retryAfterFallbackSeconds {
		t.Errorf("cold-start retry-after = %d, want fallback %d", got, retryAfterFallbackSeconds)
	}

	var tiny latencyWindow
	tiny.observe(0.001) // sub-second p50 still rounds up to the minimum
	if got := tiny.retryAfterSeconds(); got != retryAfterFallbackSeconds {
		t.Errorf("sub-second retry-after = %d, want %d", got, retryAfterFallbackSeconds)
	}

	var slow latencyWindow
	for i := 0; i < 64; i++ {
		slow.observe(120.0) // two-minute discovery runs
	}
	if got := slow.retryAfterSeconds(); got != retryAfterMaxSeconds {
		t.Errorf("pathological retry-after = %d, want clamp %d", got, retryAfterMaxSeconds)
	}
}
