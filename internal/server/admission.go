package server

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sort"
	"sync"

	"deptree/internal/obs"
)

// errSaturated is the shed signal: the semaphore is full and the bounded
// wait queue is too. The handler maps it to 429 with a Retry-After
// derived from the observed p50 latency.
var errSaturated = errors.New("server: saturated (admission queue full)")

// errDraining rejects work arriving after shutdown began. The handler
// maps it to 503.
var errDraining = errors.New("server: draining")

// admission is a weighted semaphore sized to the engine worker pool with
// a bounded FIFO wait queue. A request's weight is its effective worker
// count, so admitted work never oversubscribes the pool: one 8-worker
// discovery and eight 1-worker ones cost the same capacity. When the
// queue is full the request is shed immediately — the server's answer to
// overload is a fast 429, never an unbounded backlog.
type admission struct {
	capacity int64
	maxQueue int

	mu      sync.Mutex
	inUse   int64
	closed  bool
	waiters *list.List // of *waiter, FIFO

	inUseGauge *obs.Gauge
	queueGauge *obs.Gauge
	shed       *obs.Counter
}

// waiter is one queued acquisition. err is set before ready is closed:
// nil for a grant, errDraining when drain flushes the queue.
type waiter struct {
	weight int64
	ready  chan struct{}
	err    error
}

func newAdmission(capacity int64, maxQueue int, reg *obs.Registry) *admission {
	a := &admission{
		capacity:   capacity,
		maxQueue:   maxQueue,
		waiters:    list.New(),
		inUseGauge: reg.Gauge("server.admission.in_use"),
		queueGauge: reg.Gauge("server.admission.queued"),
		shed:       reg.Counter("server.admission.shed"),
	}
	reg.Gauge("server.admission.capacity").Set(capacity)
	return a
}

// clampWeight bounds a requested weight to [1, capacity] so a request
// can never be unsatisfiable.
func (a *admission) clampWeight(w int64) int64 {
	if w < 1 {
		return 1
	}
	if w > a.capacity {
		return a.capacity
	}
	return w
}

// acquire claims weight units, queueing FIFO when the semaphore is full.
// It returns nil on a grant, errSaturated when the wait queue is full,
// errDraining after close, or the context error if the caller gives up
// while queued. The caller must release the same weight after a grant.
func (a *admission) acquire(ctx context.Context, weight int64) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errDraining
	}
	if a.waiters.Len() == 0 && a.inUse+weight <= a.capacity {
		a.inUse += weight
		a.inUseGauge.Set(a.inUse)
		a.mu.Unlock()
		return nil
	}
	if a.waiters.Len() >= a.maxQueue {
		a.shed.Inc()
		a.mu.Unlock()
		return errSaturated
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.queueGauge.Set(int64(a.waiters.Len()))
	a.mu.Unlock()

	select {
	case <-w.ready:
		return w.err
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: hand the capacity back
			// (or to the next waiter) and report the cancellation.
			if w.err == nil {
				a.releaseLocked(weight)
			}
			a.mu.Unlock()
		default:
			a.waiters.Remove(elem)
			a.queueGauge.Set(int64(a.waiters.Len()))
			a.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release hands weight units back and grants queued waiters in FIFO
// order while they fit.
func (a *admission) release(weight int64) {
	a.mu.Lock()
	a.releaseLocked(weight)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(weight int64) {
	a.inUse -= weight
	for a.waiters.Len() > 0 {
		head := a.waiters.Front()
		w := head.Value.(*waiter)
		if a.inUse+w.weight > a.capacity {
			break
		}
		a.waiters.Remove(head)
		a.inUse += w.weight
		close(w.ready)
	}
	a.queueGauge.Set(int64(a.waiters.Len()))
	a.inUseGauge.Set(a.inUse)
}

// drain stops admissions: every queued waiter fails with errDraining and
// every future acquire returns it. In-flight grants keep their capacity
// until they release.
func (a *admission) drain() {
	a.mu.Lock()
	a.closed = true
	for a.waiters.Len() > 0 {
		head := a.waiters.Front()
		w := head.Value.(*waiter)
		a.waiters.Remove(head)
		w.err = errDraining
		close(w.ready)
	}
	a.queueGauge.Set(0)
	a.mu.Unlock()
}

// latencyWindow tracks recent request durations so the shed path can
// compute a Retry-After that reflects the workload actually being
// served: under saturation, capacity frees up roughly once per median
// request.
type latencyWindow struct {
	mu  sync.Mutex
	buf [64]float64
	n   int // filled entries, <= len(buf)
	idx int // next write position
}

func (l *latencyWindow) observe(seconds float64) {
	l.mu.Lock()
	l.buf[l.idx] = seconds
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p50 returns the median of the window, or 0 when empty.
func (l *latencyWindow) p50() float64 {
	l.mu.Lock()
	vals := append([]float64(nil), l.buf[:l.n]...)
	l.mu.Unlock()
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// retryAfterFallbackSeconds is the Retry-After before any request has
// completed (cold start): the window is empty, p50-of-nothing carries no
// signal, so the server advises the shortest honest interval rather than
// an arbitrary one.
const retryAfterFallbackSeconds = 1

// retryAfterMaxSeconds caps the advice: even a pathological p50 (a
// window full of two-minute discovery runs) must not tell clients to go
// away for minutes — capacity frees per-request, not per-window.
const retryAfterMaxSeconds = 60

// retryAfterSeconds converts the observed p50 into a whole-second
// Retry-After value, clamped to [retryAfterFallbackSeconds,
// retryAfterMaxSeconds]; an empty window yields the fallback.
func (l *latencyWindow) retryAfterSeconds() int {
	p := l.p50()
	if p <= 0 {
		return retryAfterFallbackSeconds
	}
	s := int(math.Ceil(p))
	if s < retryAfterFallbackSeconds {
		s = retryAfterFallbackSeconds
	}
	if s > retryAfterMaxSeconds {
		s = retryAfterMaxSeconds
	}
	return s
}
