package server

import (
	"math/rand/v2"
	"sync"
	"time"

	"deptree/internal/obs"
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	// breakerClosed passes requests and counts consecutive faults.
	breakerClosed breakerState = iota
	// breakerOpen rejects requests until the backoff expires.
	breakerOpen
	// breakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening with a longer backoff.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breakerConfig tunes one endpoint's breaker. now and jitter are
// injectable for tests; production uses time.Now and ±25% uniform
// jitter (decorrelating the reopen instants of replicas that tripped on
// the same poisoned workload).
type breakerConfig struct {
	// threshold is the consecutive-fault count that opens a closed
	// breaker.
	threshold int
	// backoff is the first open interval; each failed probe doubles it
	// up to maxBackoff.
	backoff    time.Duration
	maxBackoff time.Duration
	// jitterSeed seeds the default jitter's private generator (0 =
	// time-seeded). Chaos and recovery tests pin it so breaker reopen
	// schedules replay deterministically; the global math/rand state is
	// never touched either way.
	jitterSeed uint64
	now        func() time.Time
	jitter     func(time.Duration) time.Duration
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.threshold <= 0 {
		c.threshold = 5
	}
	if c.backoff <= 0 {
		c.backoff = 500 * time.Millisecond
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.jitter == nil {
		c.jitter = seededJitter(c.jitterSeed)
	}
	return c
}

// seededJitter builds the default reopen jitter — uniform in
// [0.75d, 1.25d) — over a private seeded generator (seed 0 =
// time-seeded). Each breaker owns its own generator, so pinning the seed
// makes one endpoint's reopen schedule reproducible regardless of what
// other endpoints (or anything else in the process) draw.
func seededJitter(seed uint64) func(time.Duration) time.Duration {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d))
	return func(d time.Duration) time.Duration {
		if d <= 0 {
			return d
		}
		mu.Lock()
		defer mu.Unlock()
		return d*3/4 + time.Duration(rng.Int64N(int64(d)/2+1))
	}
}

// breaker shields one endpoint: repeated engine faults (recovered task
// panics, server-imposed deadline blowups) open it, turning a workload
// that reliably kills the pool into fast 503s instead of repeated
// damage. After a jittered exponential backoff a single half-open probe
// decides whether to close again.
type breaker struct {
	cfg breakerConfig

	trips    *obs.Counter
	rejected *obs.Counter

	mu          sync.Mutex
	state       breakerState
	consecutive int
	curBackoff  time.Duration
	openUntil   time.Time
	probing     bool
}

func newBreaker(endpoint string, cfg breakerConfig, reg *obs.Registry) *breaker {
	return &breaker{
		cfg:      cfg.withDefaults(),
		trips:    reg.Counter("server." + endpoint + ".breaker.trips"),
		rejected: reg.Counter("server." + endpoint + ".breaker.rejected"),
	}
}

// breakerOutcome is what one allowed request reports back.
type breakerOutcome int

const (
	// breakerOK: the run completed without an engine fault.
	breakerOK breakerOutcome = iota
	// breakerFault: the run ended in an engine fault (task panic,
	// server-imposed deadline blowup).
	breakerFault
	// breakerSkip: the request never ran (shed by admission, client
	// cancelled while queued); it carries no signal about the engine.
	breakerSkip
)

// allow decides whether a request may proceed. When it may, done is
// non-nil and must be called exactly once with the request's outcome.
// When it may not, retryAfter is how long until the breaker will
// consider a probe.
func (b *breaker) allow() (done func(breakerOutcome), retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	switch b.state {
	case breakerOpen:
		if now.Before(b.openUntil) {
			b.rejected.Inc()
			return nil, b.openUntil.Sub(now), false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return b.doneFunc(true), 0, true
	case breakerHalfOpen:
		if b.probing {
			b.rejected.Inc()
			return nil, b.curBackoff, false
		}
		b.probing = true
		return b.doneFunc(true), 0, true
	default: // closed
		return b.doneFunc(false), 0, true
	}
}

// doneFunc builds the outcome recorder for one allowed request; probe
// marks the half-open probe, whose outcome alone moves the state.
func (b *breaker) doneFunc(probe bool) func(breakerOutcome) {
	var once sync.Once
	return func(out breakerOutcome) {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if probe {
				b.probing = false
				switch out {
				case breakerFault:
					b.reopenLocked(true)
				case breakerOK:
					b.state = breakerClosed
					b.consecutive = 0
					b.curBackoff = 0
				default:
					// The probe never ran; stay half-open so the next
					// request probes again.
				}
				return
			}
			if b.state != breakerClosed || out == breakerSkip {
				// A pre-trip in-flight request finished after the state
				// moved on, or the request never ran; neither drives
				// the machine.
				return
			}
			if out == breakerOK {
				b.consecutive = 0
				return
			}
			b.consecutive++
			if b.consecutive >= b.cfg.threshold {
				b.reopenLocked(false)
			}
		})
	}
}

// reopenLocked trips the breaker: the first trip opens for the base
// backoff, each failed probe doubles the interval up to the cap, and the
// actual reopen instant is jittered.
func (b *breaker) reopenLocked(probeFailed bool) {
	if probeFailed && b.curBackoff > 0 {
		b.curBackoff *= 2
		if b.curBackoff > b.cfg.maxBackoff {
			b.curBackoff = b.cfg.maxBackoff
		}
	} else if b.curBackoff == 0 {
		b.curBackoff = b.cfg.backoff
	}
	b.state = breakerOpen
	b.consecutive = 0
	b.openUntil = b.cfg.now().Add(b.cfg.jitter(b.curBackoff))
	b.trips.Inc()
}

// snapshotState reports the current state for readyz and tests.
func (b *breaker) snapshotState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
