package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deptree/internal/obs"
)

// FuzzDiscoverRequest throws arbitrary bytes at the discover endpoint
// under tight server limits and asserts the hardening contract: the
// handler never panics, every rejection is a 4xx with a structured error
// body, and nothing reaches a 5xx (there is no engine fault to surface —
// only malformed or oversized input).
func FuzzDiscoverRequest(f *testing.F) {
	f.Add(`{"csv":"a,b\n1,2\n"}`)
	f.Add(`{"csv":"a,b\n1,2\n","workers":2,"max_tasks":1}`)
	f.Add(`{"csv":""}`)
	f.Add(`{`)
	f.Add(`{"csv":"a\n1\n"}{"csv":"a\n1\n"}`)
	f.Add(`{"csv":"a,b\n1\n"}`)
	f.Add(`{"nope":true}`)
	f.Add(`{"csv":"` + strings.Repeat("x,", 40) + `y\n"}`)
	f.Add("\x00\xff\xfe")
	f.Add(`{"csv":"a,b\n\"unterminated`)

	s := New(Config{
		Workers:        2,
		MaxInputBytes:  4096,
		MaxRows:        64,
		MaxFieldBytes:  256,
		DefaultTimeout: 2 * time.Second,
		MaxTasks:       64,
		Obs:            obs.New(),
	})

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/discover/tane", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req) // a panic here fails the fuzz run
		resp := w.Result()
		if resp.StatusCode >= 500 {
			t.Fatalf("malformed input produced %d:\n%.200s", resp.StatusCode, w.Body.String())
		}
		if resp.StatusCode != 200 {
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("status %d without structured error body (%v):\n%.200s",
					resp.StatusCode, err, w.Body.String())
			}
			if resp.StatusCode != http.StatusBadRequest &&
				resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("unexpected rejection status %d (code %s)", resp.StatusCode, eb.Error.Code)
			}
		}
	})
}
