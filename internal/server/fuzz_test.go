package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deptree/internal/obs"
)

// FuzzDiscoverRequest throws arbitrary bytes at every registered
// discover route under tight server limits and asserts the hardening
// contract: the handler never panics, every rejection is a 4xx with a
// structured error body, and nothing reaches a 5xx (there is no engine
// fault to surface — only malformed or oversized input). The route is
// part of the fuzzed input: algoIdx indexes Algorithms() modulo its
// length, so the corpus explores all fifteen endpoints and the fuzzer
// can shift any crashing body onto any route.
func FuzzDiscoverRequest(f *testing.F) {
	// One well-formed seed per registered route, so every endpoint is in
	// the initial corpus, plus the malformed-body seeds on a spread of
	// routes.
	for i := range Algorithms() {
		f.Add(`{"csv":"a,b\n1,2\n"}`, uint8(i))
	}
	f.Add(`{"csv":"a,b\n1,2\n","workers":2,"max_tasks":1}`, uint8(0))
	f.Add(`{"csv":""}`, uint8(1))
	f.Add(`{`, uint8(5))
	f.Add(`{"csv":"a\n1\n"}{"csv":"a\n1\n"}`, uint8(6))
	f.Add(`{"csv":"a,b\n1\n"}`, uint8(9))
	f.Add(`{"nope":true}`, uint8(11))
	f.Add(`{"csv":"`+strings.Repeat("x,", 40)+`y\n"}`, uint8(13))
	f.Add("\x00\xff\xfe", uint8(14))
	f.Add(`{"csv":"a,b\n\"unterminated`, uint8(255))

	s := New(Config{
		Workers:        2,
		MaxInputBytes:  4096,
		MaxRows:        64,
		MaxFieldBytes:  256,
		DefaultTimeout: 2 * time.Second,
		MaxTasks:       64,
		Obs:            obs.New(),
	})
	algos := Algorithms()

	f.Fuzz(func(t *testing.T, body string, algoIdx uint8) {
		algo := algos[int(algoIdx)%len(algos)]
		req := httptest.NewRequest("POST", "/v1/discover/"+algo, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req) // a panic here fails the fuzz run
		resp := w.Result()
		if resp.StatusCode >= 500 {
			t.Fatalf("%s: malformed input produced %d:\n%.200s", algo, resp.StatusCode, w.Body.String())
		}
		if resp.StatusCode != 200 {
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("%s: status %d without structured error body (%v):\n%.200s",
					algo, resp.StatusCode, err, w.Body.String())
			}
			if resp.StatusCode != http.StatusBadRequest &&
				resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s: unexpected rejection status %d (code %s)", algo, resp.StatusCode, eb.Error.Code)
			}
		}
	})
}
