package server

import (
	"testing"
	"time"

	"deptree/internal/obs"
)

// fakeClock is a manually advanced breaker clock; tests also pin jitter
// to the identity so open intervals are exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                { return c.t }
func (c *fakeClock) advance(d time.Duration)       { c.t = c.t.Add(d) }
func identityJitter(d time.Duration) time.Duration { return d }

func newTestBreaker(threshold int, backoff, maxBackoff time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker("test", breakerConfig{
		threshold:  threshold,
		backoff:    backoff,
		maxBackoff: maxBackoff,
		now:        clk.now,
		jitter:     identityJitter,
	}, obs.New())
	return b, clk
}

// mustAllow asserts the breaker admits a request and returns its done
// callback.
func mustAllow(t *testing.T, b *breaker) func(breakerOutcome) {
	t.Helper()
	done, _, ok := b.allow()
	if !ok {
		t.Fatalf("breaker rejected in state %v", b.snapshotState())
	}
	return done
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, time.Minute)
	for i := 0; i < 2; i++ {
		mustAllow(t, b)(breakerFault)
	}
	if got := b.snapshotState(); got != breakerClosed {
		t.Fatalf("state after 2 faults = %v, want closed", got)
	}
	mustAllow(t, b)(breakerFault)
	if got := b.snapshotState(); got != breakerOpen {
		t.Fatalf("state after 3 faults = %v, want open", got)
	}
	if _, retry, ok := b.allow(); ok || retry != time.Second {
		t.Fatalf("open breaker: ok=%v retry=%v, want rejected with 1s", ok, retry)
	}
	if got := b.trips.Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, time.Minute)
	mustAllow(t, b)(breakerFault)
	mustAllow(t, b)(breakerFault)
	mustAllow(t, b)(breakerOK)
	mustAllow(t, b)(breakerFault)
	mustAllow(t, b)(breakerFault)
	if got := b.snapshotState(); got != breakerClosed {
		t.Fatalf("state = %v, want closed (OK reset the streak)", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, time.Minute)
	mustAllow(t, b)(breakerFault) // trips immediately
	clk.advance(time.Second)
	probeDone := mustAllow(t, b) // backoff expired: half-open probe
	if got := b.snapshotState(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	// Only one probe at a time: a concurrent request is rejected.
	if _, _, ok := b.allow(); ok {
		t.Fatal("second request admitted while probe in flight")
	}
	probeDone(breakerOK)
	if got := b.snapshotState(); got != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// A recovered breaker starts a fresh fault streak from the base
	// backoff.
	mustAllow(t, b)(breakerFault)
	if _, retry, ok := b.allow(); ok || retry != time.Second {
		t.Fatalf("re-trip: ok=%v retry=%v, want rejected with base 1s backoff", ok, retry)
	}
}

func TestBreakerFailedProbeDoublesBackoff(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, 3*time.Second)
	mustAllow(t, b)(breakerFault)
	wantBackoffs := []time.Duration{2 * time.Second, 3 * time.Second, 3 * time.Second} // doubles, then caps
	cur := time.Second
	for i, want := range wantBackoffs {
		clk.advance(cur)
		mustAllow(t, b)(breakerFault) // failed probe
		_, retry, ok := b.allow()
		if ok {
			t.Fatalf("round %d: breaker admitted right after failed probe", i)
		}
		if retry != want {
			t.Fatalf("round %d: retry = %v, want %v", i, retry, want)
		}
		cur = want
	}
}

func TestBreakerSkippedProbeStaysHalfOpen(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, time.Minute)
	mustAllow(t, b)(breakerFault)
	clk.advance(time.Second)
	probeDone := mustAllow(t, b)
	probeDone(breakerSkip) // probe never ran (shed by admission)
	if got := b.snapshotState(); got != breakerHalfOpen {
		t.Fatalf("state after skipped probe = %v, want half-open", got)
	}
	// The next request probes again immediately — no new backoff.
	probeDone = mustAllow(t, b)
	probeDone(breakerOK)
	if got := b.snapshotState(); got != breakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerSkipDoesNotResetClosedStreak(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second, time.Minute)
	mustAllow(t, b)(breakerFault)
	mustAllow(t, b)(breakerSkip) // shed request carries no engine signal
	mustAllow(t, b)(breakerFault)
	if got := b.snapshotState(); got != breakerOpen {
		t.Fatalf("state = %v, want open (skip must not reset the streak)", got)
	}
}

func TestBreakerDoneIdempotent(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second, time.Minute)
	done := mustAllow(t, b)
	done(breakerFault)
	done(breakerFault) // second call must be a no-op
	if got := b.snapshotState(); got != breakerClosed {
		t.Fatalf("state = %v, want closed (one fault counted once)", got)
	}
}

func TestBreakerLateDoneAfterTripIgnored(t *testing.T) {
	b, _ := newTestBreaker(1, time.Second, time.Minute)
	slow := mustAllow(t, b) // in flight before the trip
	mustAllow(t, b)(breakerFault)
	if got := b.snapshotState(); got != breakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	slow(breakerOK) // pre-trip request finishing late must not close it
	if got := b.snapshotState(); got != breakerOpen {
		t.Fatalf("state after late OK = %v, want still open", got)
	}
}

// TestSeededJitterDeterministic pins the breaker's default jitter to a
// private seeded generator: the same seed replays the same reopen
// schedule (what the chaos/recovery suites rely on), every draw stays in
// the documented [0.75d, 1.25d] band, and the global math/rand state is
// never consulted.
func TestSeededJitterDeterministic(t *testing.T) {
	a := seededJitter(7)
	b := seededJitter(7)
	d := 400 * time.Millisecond
	for i := 0; i < 32; i++ {
		ja, jb := a(d), b(d)
		if ja != jb {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, ja, jb)
		}
		if ja < d*3/4 || ja > d*5/4 {
			t.Fatalf("draw %d: jitter %v outside [0.75d, 1.25d] for d=%v", i, ja, d)
		}
	}
	if a(0) != 0 {
		t.Fatal("jitter of 0 must be 0")
	}

	// Distinct seeds must not share a schedule.
	c := seededJitter(8)
	same := true
	base := seededJitter(7)
	for i := 0; i < 16; i++ {
		if base(d) != c(d) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter schedules")
	}
}

// TestBreakerConfigJitterSeedThreaded proves Config.BreakerJitterSeed
// reaches the breakers: two servers with the same seed open and reopen
// on identical schedules under a pinned clock.
func TestBreakerJitterSeedThreaded(t *testing.T) {
	mkBreaker := func(seed uint64) *breaker {
		clk := &fakeClock{t: time.Unix(0, 0)}
		cfg := breakerConfig{threshold: 1, backoff: time.Second,
			maxBackoff: time.Minute, jitterSeed: seed, now: clk.now}
		return newBreaker("x", cfg, nil)
	}
	b1, b2 := mkBreaker(99), mkBreaker(99)
	mustAllow(t, b1)(breakerFault)
	mustAllow(t, b2)(breakerFault)
	u1 := func(b *breaker) time.Time { b.mu.Lock(); defer b.mu.Unlock(); return b.openUntil }
	if !u1(b1).Equal(u1(b2)) {
		t.Fatalf("same seed, different reopen instants: %v vs %v", u1(b1), u1(b2))
	}
}
