package attrset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := Of(0, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(3) || s.Has(1) {
		t.Error("Has wrong")
	}
	if got := s.Add(1).Len(); got != 4 {
		t.Errorf("Add: %d", got)
	}
	if got := s.Remove(3).Len(); got != 2 {
		t.Errorf("Remove: %d", got)
	}
	if got := s.Remove(1); got != s {
		t.Errorf("Remove absent changed set")
	}
	cols := s.Cols()
	want := []int{0, 3, 5}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("Cols = %v", cols)
		}
	}
	if s.First() != 0 || Empty.First() != -1 {
		t.Error("First wrong")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(0, 1, 2), Of(2, 3)
	if a.Union(b) != Of(0, 1, 2, 3) {
		t.Error("Union")
	}
	if a.Intersect(b) != Of(2) {
		t.Error("Intersect")
	}
	if a.Minus(b) != Of(0, 1) {
		t.Error("Minus")
	}
	if !Of(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf")
	}
	if !a.Intersects(b) || Of(0).Intersects(Of(1)) {
		t.Error("Intersects")
	}
	if !Empty.IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty")
	}
}

func TestFull(t *testing.T) {
	if Full(0) != Empty {
		t.Error("Full(0)")
	}
	if Full(3) != Of(0, 1, 2) {
		t.Error("Full(3)")
	}
	if Full(64).Len() != 64 {
		t.Error("Full(64)")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Empty.Add(64) },
		func() { Empty.Add(-1) },
		func() { Empty.Remove(64) },
		func() { Full(65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSubsetsEnumeratesAll(t *testing.T) {
	s := Of(1, 3, 4)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) {
		if !sub.SubsetOf(s) {
			t.Errorf("non-subset %v emitted", sub)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
	})
	if len(seen) != 8 {
		t.Errorf("got %d subsets, want 8", len(seen))
	}
	n := 0
	s.ProperNonemptySubsets(func(Set) { n++ })
	if n != 6 {
		t.Errorf("proper nonempty subsets = %d, want 6", n)
	}
}

func TestImmediateSubsets(t *testing.T) {
	s := Of(0, 2)
	var subs []Set
	s.ImmediateSubsets(func(sub Set) { subs = append(subs, sub) })
	if len(subs) != 2 || subs[0] != Of(2) || subs[1] != Of(0) {
		t.Errorf("ImmediateSubsets = %v", subs)
	}
}

func TestSubsetsCountProperty(t *testing.T) {
	f := func(raw uint16) bool {
		s := Set(raw)
		n := 0
		s.Subsets(func(Set) { n++ })
		return n == 1<<s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Set(a), Set(b), Set(c)
		return x.Union(y) == y.Union(x) && x.Union(y.Union(z)) == x.Union(y).Union(z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		u := Full(64)
		x, y := Set(a), Set(b)
		return u.Minus(x.Union(y)) == u.Minus(x).Intersect(u.Minus(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	names := []string{"a", "b", "c"}
	if got := Of(0, 2).Names(names); got != "a,c" {
		t.Errorf("Names = %q", got)
	}
	if got := Empty.Names(names); got != "∅" {
		t.Errorf("empty Names = %q", got)
	}
	if got := Of(5).Names(names); got != "?" {
		t.Errorf("out-of-range Names = %q", got)
	}
}

func TestNextLevel(t *testing.T) {
	// Level 1 over 3 attributes -> all 3 pairs.
	l2 := NextLevel(Singletons(3))
	if len(l2) != 3 {
		t.Fatalf("level 2 size = %d, want 3", len(l2))
	}
	// Drop {0,1}: then {0,1,2} lacks a subset and level 3 is empty.
	var pruned []Set
	for _, s := range l2 {
		if s != Of(0, 1) {
			pruned = append(pruned, s)
		}
	}
	if l3 := NextLevel(pruned); len(l3) != 0 {
		t.Errorf("pruned level 3 = %v, want empty", l3)
	}
	if l3 := NextLevel(l2); len(l3) != 1 || l3[0] != Of(0, 1, 2) {
		t.Errorf("level 3 = %v", l3)
	}
}

func TestNextLevelMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 5
		k := 2
		// Random subset of the size-k level.
		var level []Set
		var all []Set
		Full(n).Subsets(func(s Set) {
			if s.Len() == k && rng.Intn(2) == 0 {
				level = append(level, s)
			}
			if s.Len() == k+1 {
				all = append(all, s)
			}
		})
		present := map[Set]bool{}
		for _, s := range level {
			present[s] = true
		}
		want := map[Set]bool{}
		for _, s := range all {
			ok := true
			s.ImmediateSubsets(func(sub Set) {
				if !present[sub] {
					ok = false
				}
			})
			if ok {
				want[s] = true
			}
		}
		got := NextLevel(level)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d candidates, want %d", trial, len(got), len(want))
		}
		for _, s := range got {
			if !want[s] {
				t.Fatalf("trial %d: unexpected candidate %v", trial, s)
			}
		}
	}
}
