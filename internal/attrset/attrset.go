// Package attrset provides compact attribute sets (X, Y ⊆ R in the paper's
// notation, Table 4) and the lattice enumeration primitives used by
// level-wise discovery algorithms such as TANE, CTANE and the MVD search.
//
// Sets are 64-bit bitmasks, so relations are limited to 64 attributes. That
// comfortably covers the profiling workloads in the dependency-discovery
// literature (the widest common benchmark tables have ~60 columns), and the
// limit is enforced at construction.
package attrset

import (
	"math/bits"
	"strings"
)

// MaxAttrs is the maximum number of attributes an AttrSet can address.
const MaxAttrs = 64

// Set is an immutable attribute set over column indices 0..63.
type Set uint64

// Empty is the empty attribute set.
const Empty Set = 0

// Of builds a set from the given column indices. It panics on an index
// outside [0, MaxAttrs): attribute indices come from a Schema, so an
// out-of-range index is a programming error.
func Of(cols ...int) Set {
	var s Set
	for _, c := range cols {
		s = s.Add(c)
	}
	return s
}

// Single returns the singleton set {c}.
func Single(c int) Set { return Of(c) }

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set {
	if n < 0 || n > MaxAttrs {
		panic("attrset: size out of range")
	}
	if n == MaxAttrs {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s ∪ {c}.
func (s Set) Add(c int) Set {
	if c < 0 || c >= MaxAttrs {
		panic("attrset: column index out of range")
	}
	return s | Set(1)<<uint(c)
}

// Remove returns s \ {c}.
func (s Set) Remove(c int) Set {
	if c < 0 || c >= MaxAttrs {
		panic("attrset: column index out of range")
	}
	return s &^ (Set(1) << uint(c))
}

// Has reports whether c ∈ s.
func (s Set) Has(c int) bool {
	return c >= 0 && c < MaxAttrs && s&(Set(1)<<uint(c)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Cols returns the member column indices in ascending order.
func (s Set) Cols() []int {
	out := make([]int, 0, s.Len())
	for t := uint64(s); t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(t))
	}
	return out
}

// First returns the smallest member, or -1 if empty.
func (s Set) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Each calls f for every member in ascending order.
func (s Set) Each(f func(c int)) {
	for t := uint64(s); t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(t))
	}
}

// Subsets calls f for every subset of s, including ∅ and s itself. The
// enumeration order is not specified. Use with care: there are 2^|s| calls.
func (s Set) Subsets(f func(sub Set)) {
	u := uint64(s)
	sub := uint64(0)
	for {
		f(Set(sub))
		if sub == u {
			return
		}
		sub = (sub - u) & u
	}
}

// ProperNonemptySubsets calls f for every T with ∅ ⊂ T ⊂ s.
func (s Set) ProperNonemptySubsets(f func(sub Set)) {
	s.Subsets(func(sub Set) {
		if sub != 0 && sub != s {
			f(sub)
		}
	})
}

// ImmediateSubsets calls f for each subset of s with one member removed
// (the lower covers of s in the lattice).
func (s Set) ImmediateSubsets(f func(sub Set)) {
	s.Each(func(c int) { f(s.Remove(c)) })
}

// Names renders the set using the given attribute names, joined by commas.
func (s Set) Names(names []string) string {
	var b strings.Builder
	first := true
	s.Each(func(c int) {
		if !first {
			b.WriteString(",")
		}
		first = false
		if c < len(names) {
			b.WriteString(names[c])
		} else {
			b.WriteString("?")
		}
	})
	if first {
		return "∅"
	}
	return b.String()
}

// NextLevel generates the apriori candidate sets of size k+1 from the given
// size-k level: a set of size k+1 is emitted iff all of its size-k subsets
// are present in the level. This is the candidate generation step shared by
// TANE, CTANE and the MVD level-wise search.
func NextLevel(level []Set) []Set {
	present := make(map[Set]bool, len(level))
	for _, s := range level {
		present[s] = true
	}
	seen := make(map[Set]bool)
	var out []Set
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			u := level[i].Union(level[j])
			if u.Len() != level[i].Len()+1 || seen[u] {
				continue
			}
			seen[u] = true
			ok := true
			u.ImmediateSubsets(func(sub Set) {
				if !present[sub] {
					ok = false
				}
			})
			if ok {
				out = append(out, u)
			}
		}
	}
	return out
}

// Singletons returns the n singleton sets {0}, ..., {n-1}.
func Singletons(n int) []Set {
	out := make([]Set, n)
	for i := range out {
		out[i] = Single(i)
	}
	return out
}
