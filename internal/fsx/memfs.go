package fsx

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory FS that models the two-level durability of a
// real disk: every file has its current content (what a live process
// reads) and its synced content (what survives a crash). Writes land in
// the current content only; File.Sync promotes it to synced. Directory
// entries have the same split — a created or renamed file whose parent
// was never SyncDir'd reverts on crash, which is exactly the bug class
// a missing parent-directory fsync produces on a real filesystem.
//
// Crash simulates a power cut: current state is discarded and the
// synced state (optionally plus a caller-chosen prefix of each file's
// unsynced appended tail, to model partial page writeback — the torn
// tails WAL replay must repair) becomes the new state.
type MemFS struct {
	mu sync.Mutex
	// files is the live namespace: path -> node.
	files map[string]*memNode
	// dirs is the set of live directories.
	dirs map[string]bool
	// syncedEntries is the durable namespace: dir -> entry name -> node.
	// SyncDir(dir) snapshots the live entries of dir into it.
	syncedEntries map[string]map[string]*memNode
	// syncedDirs are directories whose existence is durable.
	syncedDirs map[string]bool
}

type memNode struct {
	data   []byte // current content
	synced []byte // content after a crash
}

// NewMemFS returns an empty in-memory filesystem with a durable root.
func NewMemFS() *MemFS {
	return &MemFS{
		files:         make(map[string]*memNode),
		dirs:          map[string]bool{".": true, "/": true},
		syncedEntries: make(map[string]map[string]*memNode),
		syncedDirs:    map[string]bool{".": true, "/": true},
	}
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	node, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		if !m.dirs[filepath.Dir(name)] {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		node = &memNode{}
		m.files[name] = node
	case flag&os.O_TRUNC != 0:
		node.data = nil
	}
	f := &memFile{fs: m, node: node, name: name, append: flag&os.O_APPEND != 0}
	if flag&os.O_APPEND == 0 {
		f.off = 0
	}
	return f, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(node.data))
	copy(out, node.data)
	return out, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	node, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	m.files[newpath] = node
	delete(m.files, oldpath)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if node, ok := m.files[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(node.data))}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// SyncDir makes dir's current entries (and the directory itself)
// durable: creations, renames and removals issued so far survive Crash.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	for p := dir; ; p = filepath.Dir(p) {
		m.syncedDirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	entries := make(map[string]*memNode)
	for name, node := range m.files {
		if filepath.Dir(name) == dir {
			entries[filepath.Base(name)] = node
		}
	}
	m.syncedEntries[dir] = entries
	return nil
}

// Crash simulates a power cut. Every file reverts to its synced
// content; if keep is non-nil and the file's current content is its
// synced content plus an appended tail, keep(pending) bytes of that
// unsynced tail survive (modelling partial page writeback — this is how
// torn WAL tails are produced). Directory entries revert to their last
// SyncDir snapshot: files created or renamed into a never-synced
// directory vanish entirely.
func (m *MemFS) Crash(keep func(pending int) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	files := make(map[string]*memNode)
	for dir, entries := range m.syncedEntries {
		if !m.syncedDirs[dir] {
			continue
		}
		for base, node := range entries {
			files[filepath.Join(dir, base)] = node
		}
	}
	for _, node := range files {
		n := len(node.synced)
		if keep != nil && len(node.data) > n && bytes.Equal(node.data[:n], node.synced) {
			n += keep(len(node.data) - n)
			node.synced = append([]byte(nil), node.data[:n]...)
		}
		node.data = append([]byte(nil), node.synced...)
	}
	m.files = files
	m.dirs = make(map[string]bool)
	for d := range m.syncedDirs {
		m.dirs[d] = true
	}
}

// Paths lists the live file paths in sorted order (tests).
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Corrupt flips the byte at off in name's current AND synced content,
// simulating at-rest media corruption (a bit flip that survives
// restarts). It reports whether the offset was in range.
func (m *MemFS) Corrupt(name string, off int64, xor byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[filepath.Clean(name)]
	if !ok || off < 0 || off >= int64(len(node.data)) {
		return false
	}
	node.data[off] ^= xor
	if off < int64(len(node.synced)) {
		// synced may be shorter (unsynced tail); flip what exists.
		node.synced[off] ^= xor
	}
	return true
}

type memFile struct {
	fs     *MemFS
	node   *memNode
	name   string
	off    int64
	append bool
	closed bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.append {
		f.off = int64(len(f.node.data))
	}
	end := f.off + int64(len(p))
	if end > int64(len(f.node.data)) {
		// Extend with zeros when writing past EOF (sparse semantics).
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[f.off:], p)
	f.off = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.node.data)) + offset
	}
	return f.off, nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	for int64(len(f.node.data)) < size {
		f.node.data = append(f.node.data, 0)
	}
	f.node.data = f.node.data[:size]
	return nil
}

func (f *memFile) Name() string { return f.name }

type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() fs.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
