package fsx

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestOSRoundTrip exercises the production FS on a real temp dir: the
// interface must behave exactly like package os for the ops the WAL
// layer issues.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "f.log")
	if err := OS.MkdirAll(Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(Dir(path)); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	next := filepath.Join(dir, "sub", "g.log")
	if err := OS.Rename(path, next); err != nil {
		t.Fatal(err)
	}
	if st, err := OS.Stat(next); err != nil || st.Size() != 5 {
		t.Fatalf("stat after rename: %v, %v", st, err)
	}
	if err := OS.Remove(next); err != nil {
		t.Fatal(err)
	}
}

func writeMem(t *testing.T, m *MemFS, path, content string, sync bool) {
	t.Helper()
	f, err := m.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
}

// TestMemFSCrashLosesUnsynced: synced bytes survive a crash, unsynced
// bytes are gone, and a file whose parent dir was never synced vanishes
// entirely even though its data was fsynced.
func TestMemFSCrashLosesUnsynced(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	writeMem(t, m, "d/synced.log", "durable", true)
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Appended after the sync: lost at crash.
	writeMem(t, m, "d/synced.log", "+tail", false)
	// File fsync'd but the dir entry never was: the whole file is lost.
	if err := m.MkdirAll("e", 0o755); err != nil {
		t.Fatal(err)
	}
	writeMem(t, m, "e/orphan.log", "gone", true)

	m.Crash(nil)

	data, err := m.ReadFile("d/synced.log")
	if err != nil || string(data) != "durable" {
		t.Fatalf("after crash: %q, %v", data, err)
	}
	if _, err := m.ReadFile("e/orphan.log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphan survived missing dir fsync: %v", err)
	}
	if got := m.Paths(); !reflect.DeepEqual(got, []string{"d/synced.log"}) {
		t.Fatalf("paths after crash: %v", got)
	}
}

// TestMemFSCrashKeepsPartialTail: the keep callback retains a prefix of
// the unsynced tail — the torn-write generator.
func TestMemFSCrashKeepsPartialTail(t *testing.T) {
	m := NewMemFS()
	writeMem(t, m, "w.log", "base", true)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	writeMem(t, m, "w.log", "unsynced-tail", false)
	m.Crash(func(pending int) int { return 3 })
	data, _ := m.ReadFile("w.log")
	if string(data) != "baseuns" {
		t.Fatalf("after partial crash: %q", data)
	}
}

// TestMemFSRenameDurability: a rename is durable only after SyncDir.
func TestMemFSRenameDurability(t *testing.T) {
	m := NewMemFS()
	writeMem(t, m, "a.log", "one", true)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("a.log", "b.log"); err != nil {
		t.Fatal(err)
	}
	m.Crash(nil)
	if _, err := m.ReadFile("a.log"); err != nil {
		t.Fatalf("unsynced rename lost the old entry: %v", err)
	}
	if _, err := m.ReadFile("b.log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("unsynced rename survived crash")
	}
	// Now with the dir fsync: the rename sticks.
	if err := m.Rename("a.log", "b.log"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.Crash(nil)
	if data, err := m.ReadFile("b.log"); err != nil || string(data) != "one" {
		t.Fatalf("synced rename: %q, %v", data, err)
	}
}

// TestMemFSTruncateAndSeek: the read/seek/truncate surface the WAL
// repair path uses.
func TestMemFSTruncateAndSeek(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("t.log", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil || string(data) != "0123" {
		t.Fatalf("after truncate: %q, %v", data, err)
	}
	f.Close()
}

// TestMemFSCorrupt flips one byte in both live and synced content.
func TestMemFSCorrupt(t *testing.T) {
	m := NewMemFS()
	writeMem(t, m, "c.log", "abcd", true)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupt("c.log", 1, 0xFF) {
		t.Fatal("corrupt rejected in-range offset")
	}
	if m.Corrupt("c.log", 99, 0xFF) {
		t.Fatal("corrupt accepted out-of-range offset")
	}
	m.Crash(nil)
	data, _ := m.ReadFile("c.log")
	if data[1] != 'b'^0xFF {
		t.Fatalf("flip did not survive crash: %q", data)
	}
}

// TestFaultFSDeterministic: the same seed over the same op sequence
// injects the same faults.
func TestFaultFSDeterministic(t *testing.T) {
	run := func(seed uint64) []string {
		m := NewMemFS()
		ff := NewFaultFS(m, seed)
		ff.SetProfile(FaultProfile{WriteErr: 0.2, ShortWrite: 0.2, SyncErr: 0.3})
		f, err := ff.OpenFile("x.log", os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for i := 0; i < 50; i++ {
			_, werr := f.Write([]byte(fmt.Sprintf("rec-%02d", i)))
			serr := f.Sync()
			trace = append(trace, fmt.Sprintf("%v/%v", werr != nil, serr != nil))
		}
		return trace
	}
	if !reflect.DeepEqual(run(7), run(7)) {
		t.Fatal("same seed produced different fault schedules")
	}
	if reflect.DeepEqual(run(7), run(8)) {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

// TestFaultFSShortWriteDeliversPrefix: a short write lands a strict
// prefix and returns the typed injected error.
func TestFaultFSShortWriteDeliversPrefix(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, 1)
	ff.SetProfile(FaultProfile{ShortWrite: 1})
	f, err := ff.OpenFile("s.log", os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	var inj *InjectedError
	if !errors.As(werr, &inj) || inj.Op != "short-write" {
		t.Fatalf("short write error = %v", werr)
	}
	if n < 0 || n >= 10 {
		t.Fatalf("short write delivered %d bytes, want strict prefix", n)
	}
	data, _ := m.ReadFile("s.log")
	if len(data) != n {
		t.Fatalf("on-disk %d bytes, reported %d", len(data), n)
	}
}

// TestFaultFSRenameAndDirSync: injected rename/dir-sync failures are
// typed and counted.
func TestFaultFSRenameAndDirSync(t *testing.T) {
	m := NewMemFS()
	writeMem(t, m, "r.log", "x", true)
	ff := NewFaultFS(m, 2)
	ff.SetProfile(FaultProfile{RenameErr: 1, DirSyncErr: 1})
	var inj *InjectedError
	if err := ff.Rename("r.log", "r2.log"); !errors.As(err, &inj) {
		t.Fatalf("rename fault = %v", err)
	}
	if err := ff.SyncDir("."); !errors.As(err, &inj) {
		t.Fatalf("syncdir fault = %v", err)
	}
	counts := ff.Counts()
	if counts["rename"] != 1 || counts["syncdir"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Disarm: ops pass through again.
	ff.SetProfile(FaultProfile{})
	if err := ff.Rename("r.log", "r2.log"); err != nil {
		t.Fatal(err)
	}
}
