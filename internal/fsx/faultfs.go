package fsx

import (
	"fmt"
	"io/fs"
	"math/rand/v2"
	"sync"
)

// InjectedError is the typed error every injected fault returns, so
// tests (and retry classifiers) can tell injected faults from real
// filesystem errors with errors.As.
type InjectedError struct {
	// Op names the faulted operation: "write", "short-write", "sync",
	// "rename", "syncdir", "open".
	Op string
	// Path is the file the fault hit.
	Path string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fsx: injected %s fault on %s", e.Op, e.Path)
}

// FaultProfile sets the per-operation fault probabilities in [0,1].
// The zero profile injects nothing.
type FaultProfile struct {
	// WriteErr fails a Write outright (ENOSPC-style: no bytes land).
	WriteErr float64
	// ShortWrite delivers a strict prefix of the buffer, then errors —
	// the torn-frame generator.
	ShortWrite float64
	// SyncErr fails File.Sync; the data stays in the (simulated) page
	// cache, so a following Crash loses it.
	SyncErr float64
	// RenameErr fails Rename (the compaction swap).
	RenameErr float64
	// DirSyncErr fails SyncDir.
	DirSyncErr float64
}

// FaultFS wraps a base FS with a deterministic seeded fault schedule:
// the same seed and the same operation sequence produce the same
// faults, which is what makes a torture-run failure replayable. Faults
// are drawn independently per operation from the active profile;
// SetProfile swaps profiles mid-run (e.g. a clean bootstrap phase
// followed by a storm).
type FaultFS struct {
	base FS

	mu      sync.Mutex
	rng     *rand.Rand
	profile FaultProfile
	counts  map[string]int
}

// NewFaultFS wraps base with a seeded injector. The zero profile is
// installed; call SetProfile to arm it.
func NewFaultFS(base FS, seed uint64) *FaultFS {
	return &FaultFS{
		base:   base,
		rng:    rand.New(rand.NewPCG(seed, 0x6c62272e07bb0142)),
		counts: make(map[string]int),
	}
}

// SetProfile swaps the active fault profile.
func (f *FaultFS) SetProfile(p FaultProfile) {
	f.mu.Lock()
	f.profile = p
	f.mu.Unlock()
}

// Counts returns a copy of the injected-fault counters keyed by op.
func (f *FaultFS) Counts() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// roll draws one fault decision; it also advances the RNG when p is 0
// so arming a probability never shifts the schedule of the other ops.
func (f *FaultFS) roll(op string, p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	hit := f.rng.Float64() < p
	if hit {
		f.counts[op]++
	}
	return hit
}

// shortLen picks how many of n bytes a short write delivers: a strict
// prefix, possibly empty.
func (f *FaultFS) shortLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return f.rng.IntN(n)
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.roll("rename", f.profile.RenameErr) {
		return &InjectedError{Op: "rename", Path: newpath}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) { return f.base.Stat(name) }

func (f *FaultFS) SyncDir(dir string) error {
	if f.roll("syncdir", f.profile.DirSyncErr) {
		return &InjectedError{Op: "syncdir", Path: dir}
	}
	return f.base.SyncDir(dir)
}

type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	switch {
	case ff.fs.roll("write", ff.fs.profile.WriteErr):
		return 0, &InjectedError{Op: "write", Path: ff.Name()}
	case ff.fs.roll("short-write", ff.fs.profile.ShortWrite):
		n := ff.fs.shortLen(len(p))
		if n > 0 {
			if wn, err := ff.File.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, &InjectedError{Op: "short-write", Path: ff.Name()}
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.roll("sync", ff.fs.profile.SyncErr) {
		return &InjectedError{Op: "sync", Path: ff.Name()}
	}
	return ff.File.Sync()
}
