// Package fsx is the durability seam between the WAL layer and the
// operating system: a minimal filesystem interface (open, write, sync,
// rename, dir-sync) with three implementations — the real OS, an
// in-memory filesystem that models the page cache precisely enough to
// simulate crashes that lose unsynced data, and a deterministic seeded
// fault injector that wraps either. Storage code written against FS
// instead of package os can be driven through short writes, fsync
// failures, ENOSPC, lost renames and post-crash data loss in ordinary
// unit tests, which is what the disk-fault torture suite does.
package fsx

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File durable storage needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Name reports the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the WAL layer is written against. All
// paths are interpreted as the OS would interpret them.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (O_CREATE,
	// O_RDWR, O_APPEND, O_TRUNC honoured).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. Durability of
	// the rename itself requires a SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates the directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat reports file metadata.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making previously-issued creations,
	// renames and removals of its entries durable. A crash before
	// SyncDir may lose the entry even when the file's data was synced.
	SyncDir(dir string) error
}

// OS is the production FS: package os underneath, SyncDir by opening
// the directory and fsyncing it.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems reject fsync on directories; the rename is still
	// atomic there, so a sync error on the handle is not fatal.
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Dir returns the parent directory of path, mirroring filepath.Dir, so
// callers do not need both fsx and path/filepath for the common
// "sync my parent" move.
func Dir(path string) string { return filepath.Dir(path) }
