// Package nedisc implements neighborhood-dependency discovery after Bassée
// & Wijsen [4] (paper §3.2.3): given the target right-hand-side predicate,
// find left-hand-side neighborhood predicates with sufficient support and
// confidence. The general problem is NP-hard in the number of attributes;
// the implementation searches single- and two-attribute LHS predicates
// over data-derived candidate thresholds, which is the regime the original
// evaluation covers.
package nedisc

import (
	"context"
	"sort"

	"deptree/internal/deps/ned"
	"deptree/internal/engine"
	"deptree/internal/metric"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures NED discovery.
type Options struct {
	// RHS is the target predicate.
	RHS ned.Predicate
	// LHSCols are the candidate attributes (default: all not in RHS).
	LHSCols []int
	// MinSupport is the minimum number of agreeing pairs (default 1).
	MinSupport int
	// MinConfidence is the required confidence (default 1).
	MinConfidence float64
	// MaxThresholds caps candidate thresholds per attribute (default 6).
	MaxThresholds int
	// MaxLHS bounds the predicate width (1 or 2; default 2).
	MaxLHS int
	// Workers fans the per-combination searches across goroutines; output
	// is identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the combination enumeration (singles, then pairs).
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 1
	}
	if o.MaxThresholds == 0 {
		o.MaxThresholds = 6
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	return o
}

// Result is an NED discovery outcome; a Partial run covers a
// deterministic prefix of the combination enumeration (singles in column
// order, then pairs in lexicographic order).
type Result struct {
	NEDs []ned.NED
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of attribute combinations searched.
	Completed int
}

// batch is the fixed MapBudget stripe width over attribute combinations.
// Fixed so the truncation point is worker-independent.
const batch = 8

// Discover searches LHS predicates for the target RHS and returns NEDs
// meeting the support and confidence requirements. For each attribute
// combination only the loosest admissible thresholds are kept (maximal
// generality, as in P-neighborhood prediction where wider neighborhoods
// mean more usable neighbors).
func Discover(r *relation.Relation, opts Options) []ned.NED {
	return DiscoverContext(context.Background(), r, opts).NEDs
}

// DiscoverContext is Discover under a context and Options.Budget. The
// pairwise distance precompute fans out per column; the threshold search
// fans out per attribute combination. Combinations never prune each
// other, so any prefix of the combination order is a prefix of the full
// output.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	n := r.Rows()
	if n < 2 {
		return Result{}
	}
	cols := opts.LHSCols
	if cols == nil {
		inRHS := map[int]bool{}
		for _, t := range opts.RHS {
			inRHS[t.Col] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !inRHS[c] {
				cols = append(cols, c)
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "nedisc")
	run.SetAttr("rows", n)
	run.SetAttr("columns", len(cols))
	defer run.End()

	// Precompute pairwise distances (one pool task per column, writing to
	// its own pre-allocated slice) and RHS agreement (shared, sequential).
	preSpan := run.Child(obs.KindPhase, "pair-precompute")
	pairCount := n * (n - 1) / 2
	metrics := map[int]metric.Metric{}
	dist := map[int][]float64{}
	for _, c := range cols {
		metrics[c] = metric.ForKind(r.Schema().Attr(c).Kind)
		dist[c] = make([]float64, pairCount)
	}
	rhs := make([]bool, 0, pairCount)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rhs = append(rhs, opts.RHS.Agree(r, i, j))
		}
	}
	preErr := pool.ForEach(len(cols), func(ci int) {
		c := cols[ci]
		m := metrics[c]
		d := dist[c]
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d[k] = m.Distance(r.Value(i, c), r.Value(j, c))
				k++
			}
		}
	})
	preSpan.End()
	if preErr != nil {
		// Budget tripped before any combination was searched: the
		// deterministic empty prefix.
		return Result{Partial: true, Reason: engine.Reason(preErr)}
	}
	thresholds := map[int][]float64{}
	for _, c := range cols {
		thresholds[c] = candidateThresholds(dist[c], opts.MaxThresholds)
	}
	admissible := func(terms []ned.Term) (int, float64) {
		support, good := 0, 0
		for k := range rhs {
			ok := true
			for _, t := range terms {
				if !(dist[t.Col][k] <= t.Threshold) {
					ok = false
					break
				}
			}
			if ok {
				support++
				if rhs[k] {
					good++
				}
			}
		}
		if support == 0 {
			return 0, 1
		}
		return support, float64(good) / float64(support)
	}
	// maximal returns the loosest admissible threshold combination for one
	// attribute combination, or ok=false.
	maximal := func(combCols []int) ([]ned.Term, bool) {
		lists := make([][]float64, len(combCols))
		for i, c := range combCols {
			lists[i] = thresholds[c]
		}
		type combo struct {
			ts    []float64
			total float64
		}
		var combos []combo
		var build func(prefix []float64, depth int)
		build = func(prefix []float64, depth int) {
			if depth == len(lists) {
				total := 0.0
				for _, t := range prefix {
					total += t
				}
				combos = append(combos, combo{ts: append([]float64(nil), prefix...), total: total})
				return
			}
			for _, t := range lists[depth] {
				build(append(prefix, t), depth+1)
			}
		}
		build(nil, 0)
		sort.Slice(combos, func(a, b int) bool { return combos[a].total > combos[b].total })
		for _, cb := range combos {
			terms := make([]ned.Term, len(combCols))
			for i, c := range combCols {
				terms[i] = ned.Term{Col: c, Metric: metrics[c], Threshold: cb.ts[i]}
			}
			if support, conf := admissible(terms); support >= opts.MinSupport && conf >= opts.MinConfidence {
				return terms, true
			}
		}
		return nil, false
	}
	// Enumerate combinations in the sequential order: singles, then pairs.
	var cands [][]int
	for _, c := range cols {
		if len(thresholds[c]) > 0 {
			cands = append(cands, []int{c})
		}
	}
	if opts.MaxLHS >= 2 {
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				if len(thresholds[cols[i]]) > 0 && len(thresholds[cols[j]]) > 0 {
					cands = append(cands, []int{cols[i], cols[j]})
				}
			}
		}
	}
	run.SetAttr("candidates", len(cands))
	type hit struct {
		terms []ned.Term
		ok    bool
	}
	searchSpan := run.Child(obs.KindPhase, "threshold-search")
	hits, done, err := engine.MapBudget(pool, len(cands), batch, func(i int) hit {
		terms, ok := maximal(cands[i])
		return hit{terms: terms, ok: ok}
	})
	searchSpan.SetAttr("completed", done)
	searchSpan.End()
	reg.Counter("nedisc.candidates.checked").Add(int64(done))

	var out []ned.NED
	for i := 0; i < done; i++ {
		if hits[i].ok {
			out = append(out, ned.NED{LHS: hits[i].terms, RHS: opts.RHS, Schema: r.Schema()})
		}
	}
	reg.Counter("nedisc.neds.valid").Add(int64(len(out)))
	res := Result{NEDs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

func candidateThresholds(dist []float64, k int) []float64 {
	clean := make([]float64, 0, len(dist))
	for _, d := range dist {
		if d == d {
			clean = append(clean, d)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	seen := map[float64]bool{}
	var out []float64
	for i := 0; i < k; i++ {
		div := k - 1
		if div < 1 {
			div = 1
		}
		v := clean[i*(len(clean)-1)/div]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
