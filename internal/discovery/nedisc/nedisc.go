// Package nedisc implements neighborhood-dependency discovery after Bassée
// & Wijsen [4] (paper §3.2.3): given the target right-hand-side predicate,
// find left-hand-side neighborhood predicates with sufficient support and
// confidence. The general problem is NP-hard in the number of attributes;
// the implementation searches single- and two-attribute LHS predicates
// over data-derived candidate thresholds, which is the regime the original
// evaluation covers.
package nedisc

import (
	"sort"

	"deptree/internal/deps/ned"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Options configures NED discovery.
type Options struct {
	// RHS is the target predicate.
	RHS ned.Predicate
	// LHSCols are the candidate attributes (default: all not in RHS).
	LHSCols []int
	// MinSupport is the minimum number of agreeing pairs (default 1).
	MinSupport int
	// MinConfidence is the required confidence (default 1).
	MinConfidence float64
	// MaxThresholds caps candidate thresholds per attribute (default 6).
	MaxThresholds int
	// MaxLHS bounds the predicate width (1 or 2; default 2).
	MaxLHS int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 1
	}
	if o.MaxThresholds == 0 {
		o.MaxThresholds = 6
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	return o
}

// Discover searches LHS predicates for the target RHS and returns NEDs
// meeting the support and confidence requirements. For each attribute
// combination only the loosest admissible thresholds are kept (maximal
// generality, as in P-neighborhood prediction where wider neighborhoods
// mean more usable neighbors).
func Discover(r *relation.Relation, opts Options) []ned.NED {
	opts = opts.withDefaults()
	n := r.Rows()
	if n < 2 {
		return nil
	}
	cols := opts.LHSCols
	if cols == nil {
		inRHS := map[int]bool{}
		for _, t := range opts.RHS {
			inRHS[t.Col] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !inRHS[c] {
				cols = append(cols, c)
			}
		}
	}
	// Precompute pairwise distances and RHS agreement.
	type pairData struct {
		dist map[int][]float64
		rhs  []bool
	}
	pd := pairData{dist: map[int][]float64{}}
	metrics := map[int]metric.Metric{}
	for _, c := range cols {
		metrics[c] = metric.ForKind(r.Schema().Attr(c).Kind)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pd.rhs = append(pd.rhs, opts.RHS.Agree(r, i, j))
			for _, c := range cols {
				pd.dist[c] = append(pd.dist[c], metrics[c].Distance(r.Value(i, c), r.Value(j, c)))
			}
		}
	}
	thresholds := map[int][]float64{}
	for _, c := range cols {
		thresholds[c] = candidateThresholds(pd.dist[c], opts.MaxThresholds)
	}
	admissible := func(terms []ned.Term) (int, float64) {
		support, good := 0, 0
		for k := range pd.rhs {
			ok := true
			for _, t := range terms {
				if !(pd.dist[t.Col][k] <= t.Threshold) {
					ok = false
					break
				}
			}
			if ok {
				support++
				if pd.rhs[k] {
					good++
				}
			}
		}
		if support == 0 {
			return 0, 1
		}
		return support, float64(good) / float64(support)
	}
	var out []ned.NED
	addMaximal := func(mk func(ts []float64) []ned.Term, lists [][]float64) {
		// Scan threshold combinations from loosest to tightest; keep the
		// first (loosest) admissible one per attribute combination.
		type combo struct {
			ts    []float64
			total float64
		}
		var combos []combo
		var build func(prefix []float64, depth int)
		build = func(prefix []float64, depth int) {
			if depth == len(lists) {
				total := 0.0
				for _, t := range prefix {
					total += t
				}
				combos = append(combos, combo{ts: append([]float64(nil), prefix...), total: total})
				return
			}
			for _, t := range lists[depth] {
				build(append(prefix, t), depth+1)
			}
		}
		build(nil, 0)
		sort.Slice(combos, func(a, b int) bool { return combos[a].total > combos[b].total })
		for _, cb := range combos {
			terms := mk(cb.ts)
			support, conf := admissible(terms)
			if support >= opts.MinSupport && conf >= opts.MinConfidence {
				out = append(out, ned.NED{LHS: terms, RHS: opts.RHS, Schema: r.Schema()})
				return
			}
		}
	}
	for _, c := range cols {
		c := c
		if len(thresholds[c]) == 0 {
			continue
		}
		addMaximal(func(ts []float64) []ned.Term {
			return []ned.Term{{Col: c, Metric: metrics[c], Threshold: ts[0]}}
		}, [][]float64{thresholds[c]})
	}
	if opts.MaxLHS >= 2 {
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				c1, c2 := cols[i], cols[j]
				if len(thresholds[c1]) == 0 || len(thresholds[c2]) == 0 {
					continue
				}
				addMaximal(func(ts []float64) []ned.Term {
					return []ned.Term{
						{Col: c1, Metric: metrics[c1], Threshold: ts[0]},
						{Col: c2, Metric: metrics[c2], Threshold: ts[1]},
					}
				}, [][]float64{thresholds[c1], thresholds[c2]})
			}
		}
	}
	return out
}

func candidateThresholds(dist []float64, k int) []float64 {
	clean := make([]float64, 0, len(dist))
	for _, d := range dist {
		if d == d {
			clean = append(clean, d)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	seen := map[float64]bool{}
	var out []float64
	for i := 0; i < k; i++ {
		div := k - 1
		if div < 1 {
			div = 1
		}
		v := clean[i*(len(clean)-1)/div]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
