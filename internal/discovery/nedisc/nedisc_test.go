package nedisc

import (
	"testing"

	"deptree/internal/deps/ned"
	"deptree/internal/gen"
)

func TestDiscoverOnTable6(t *testing.T) {
	// Target: street^5 — the RHS of the paper's ned1.
	r := gen.Table6()
	s := r.Schema()
	opts := Options{
		RHS:           ned.Predicate{ned.T(s, "street", 5)},
		LHSCols:       []int{s.MustIndex("name"), s.MustIndex("address")},
		MinConfidence: 1,
	}
	neds := Discover(r, opts)
	if len(neds) == 0 {
		t.Fatal("no NEDs discovered")
	}
	for _, n := range neds {
		if !n.Holds(r) {
			t.Errorf("discovered NED %v does not hold", n)
		}
		if _, conf := n.SupportConfidence(r); conf < 1 {
			t.Errorf("NED %v confidence < 1", n)
		}
	}
	// A two-attribute predicate (the ned1 shape) must be among them.
	hasPair := false
	for _, n := range neds {
		if len(n.LHS) == 2 {
			hasPair = true
		}
	}
	if !hasPair {
		t.Errorf("no two-attribute LHS found: %v", neds)
	}
}

func TestMinSupportRespected(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	opts := Options{
		RHS:        ned.Predicate{ned.T(s, "street", 5)},
		LHSCols:    []int{s.MustIndex("name")},
		MinSupport: 2,
	}
	for _, n := range Discover(r, opts) {
		if support, _ := n.SupportConfidence(r); support < 2 {
			t.Errorf("NED %v support %d < 2", n, support)
		}
	}
}

func TestMaxLHSOne(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	opts := Options{
		RHS:     ned.Predicate{ned.T(s, "street", 5)},
		LHSCols: []int{s.MustIndex("name"), s.MustIndex("address")},
		MaxLHS:  1,
	}
	for _, n := range Discover(r, opts) {
		if len(n.LHS) != 1 {
			t.Errorf("NED %v wider than MaxLHS=1", n)
		}
	}
}

func TestPNeighborhoodImputation(t *testing.T) {
	// The §3.2.4 use: predict a region from address neighbors. Discovery
	// on synthetic duplicates should find an address-based NED for region.
	r := gen.Hotels(gen.HotelConfig{Rows: 80, Seed: 41, DuplicateRate: 0.3})
	s := r.Schema()
	opts := Options{
		RHS:           ned.Predicate{ned.T(s, "region", 4)},
		LHSCols:       []int{s.MustIndex("address")},
		MinConfidence: 1,
	}
	neds := Discover(r, opts)
	if len(neds) == 0 {
		t.Fatal("no address-based NED for region")
	}
}

func TestTinyRelation(t *testing.T) {
	r := gen.Table6().Select(func(i int) bool { return i == 0 })
	opts := Options{RHS: ned.Predicate{ned.T(gen.Table6().Schema(), "street", 5)}}
	if got := Discover(r, opts); got != nil {
		t.Errorf("single row: %v", got)
	}
}
