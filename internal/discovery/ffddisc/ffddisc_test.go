package ffddisc

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

func TestDiscoverFindsCrispFDs(t *testing.T) {
	// With crisp resemblances, FFD discovery degenerates to FD discovery:
	// address→region holds on clean hotels and must be found.
	r := gen.Hotels(gen.HotelConfig{Rows: 40, Seed: 91})
	s := r.Schema()
	res := map[int]metric.Resemblance{}
	for c := 0; c < s.Len(); c++ {
		res[c] = metric.CrispEqual{}
	}
	ffds := Discover(r, Options{Resemblances: res, MaxLHS: 1})
	found := false
	for _, f := range ffds {
		if !f.Holds(r) {
			t.Errorf("discovered FFD %v does not hold", f)
		}
		if f.String() == "address ~> region" {
			found = true
		}
	}
	if !found {
		t.Errorf("address ~> region missing: %v", ffds)
	}
}

func TestDiscoverFuzzyOnTable6(t *testing.T) {
	// With the paper's resemblances, FFD discovery on r6 must not return
	// name,price ~> tax (the §3.6.1 conflict) but may return others.
	r := gen.Table6()
	s := r.Schema()
	res := map[int]metric.Resemblance{
		s.MustIndex("price"): metric.InverseNumeric{Beta: 1},
		s.MustIndex("tax"):   metric.InverseNumeric{Beta: 10},
	}
	ffds := Discover(r, Options{Resemblances: res, MaxLHS: 2})
	for _, f := range ffds {
		if !f.Holds(r) {
			t.Errorf("discovered FFD %v does not hold", f)
		}
		if f.String() == "name,price ~> tax" {
			t.Error("the ffd1 conflict of §3.6.1 was discovered as valid")
		}
	}
}

func TestDiscoverMinimality(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 30, Seed: 93})
	ffds := Discover(r, Options{MaxLHS: 2})
	// No 2-attribute FFD may coexist with a valid 1-attribute sub-FFD on
	// the same RHS (pruning guarantee).
	single := map[[2]int]bool{}
	for _, f := range ffds {
		if len(f.LHS) == 1 {
			single[[2]int{f.LHS[0].Col, f.RHS[0].Col}] = true
		}
	}
	for _, f := range ffds {
		if len(f.LHS) != 2 {
			continue
		}
		for _, a := range f.LHS {
			if single[[2]int{a.Col, f.RHS[0].Col}] {
				t.Errorf("non-minimal FFD %v: sub-FFD on column %d already valid", f, a.Col)
			}
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 25, Seed: 95, ErrorRate: 0.2})
	inc := NewIncremental(r.Schema(), Options{})
	for i := 0; i < r.Rows(); i++ {
		if err := inc.AddTuple(r.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch := Discover(r, Options{MaxLHS: 1})
	got := map[string]bool{}
	for _, f := range inc.Current() {
		got[f.String()] = true
		if !f.Holds(inc.Relation()) {
			t.Errorf("incremental survivor %v does not hold", f)
		}
	}
	want := map[string]bool{}
	for _, f := range batch {
		want[f.String()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("incremental %v != batch %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("incremental missing %s", k)
		}
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc := NewIncremental(relation.Strings("a", "b"), Options{})
	if err := inc.AddTuple([]relation.Value{relation.String("x")}); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestTinyRelation(t *testing.T) {
	r := gen.Table6().Select(func(i int) bool { return i == 0 })
	if got := Discover(r, Options{}); got != nil {
		t.Errorf("single row: %v", got)
	}
}
