// Package ffddisc implements fuzzy-FD discovery (paper §3.6.3): the
// TANE-style mining of Wang & Chen [109] — find the non-trivial FFDs with
// a single RHS attribute by checking every tuple pair against the EQUAL
// resemblance relations — and the incremental variant of Wang, Shen & Hong
// [108], which maintains the discovered set as tuples arrive and only
// compares each new tuple against the existing ones, avoiding database
// re-scans.
package ffddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/ffd"
	"deptree/internal/engine"
	"deptree/internal/metric"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures FFD discovery.
type Options struct {
	// Resemblances assigns the EQUAL relation per column; nil entries (or
	// a nil map) default to CrispEqual for strings and
	// InverseNumeric{Beta: 1} for numeric columns.
	Resemblances map[int]metric.Resemblance
	// MaxLHS bounds the determinant attribute count (default 2).
	MaxLHS int
	// Workers fans candidate validation across goroutines; output is
	// identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the level-wise candidate enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults(r *relation.Relation) Options {
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	res := map[int]metric.Resemblance{}
	for c := 0; c < r.Cols(); c++ {
		if o.Resemblances != nil && o.Resemblances[c] != nil {
			res[c] = o.Resemblances[c]
			continue
		}
		if r.Schema().Attr(c).Kind == relation.KindString {
			res[c] = metric.CrispEqual{}
		} else {
			res[c] = metric.InverseNumeric{Beta: 1}
		}
	}
	o.Resemblances = res
	return o
}

// Result is an FFD discovery outcome; a Partial run covers a
// deterministic prefix of the level-wise candidate enumeration.
type Result struct {
	FFDs []ffd.FFD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of candidates validated.
	Completed int
}

// batch is the fixed MapBudget stripe width over candidates. Fixed so the
// truncation point is worker-independent.
const batch = 8

// Discover returns the minimal valid FFDs with ≤ MaxLHS determinant
// attributes and a single dependent attribute, checking every tuple pair
// (the [109] small-to-large strategy: an FFD with a sub-LHS already valid
// is pruned as non-minimal, since adding determinant attributes can only
// lower µ_EQ(X) and weaken the constraint).
func Discover(r *relation.Relation, opts Options) []ffd.FFD {
	return DiscoverContext(context.Background(), r, opts).FFDs
}

// DiscoverContext is Discover under a context and Options.Budget. Level-1
// candidates are mutually independent and validate in parallel; level-2
// minimality pruning consults only the complete level-1 result, so a
// budget that trips during level 1 ends the run there (running level 2
// against a partial level-1 key set would not be prefix-deterministic).
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults(r)
	n := r.Cols()
	if n == 0 || r.Rows() < 2 {
		return Result{}
	}
	mk := func(cols []int, rhs int) ffd.FFD {
		out := ffd.FFD{Schema: r.Schema()}
		for _, c := range cols {
			out.LHS = append(out.LHS, ffd.Attr{Col: c, Eq: opts.Resemblances[c]})
		}
		out.RHS = []ffd.Attr{{Col: rhs, Eq: opts.Resemblances[rhs]}}
		return out
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "ffddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("columns", n)
	defer run.End()

	var found []ffd.FFD
	foundKey := map[string]bool{}
	completed := 0

	// Level 1: all ordered (a, b) pairs.
	type pair struct{ a, b int }
	var l1 []pair
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				l1 = append(l1, pair{a, b})
			}
		}
	}
	l1Span := run.Child(obs.KindPhase, "level-1")
	hits1, done1, err := engine.MapBudget(pool, len(l1), batch, func(i int) bool {
		return mk([]int{l1[i].a}, l1[i].b).Holds(r)
	})
	l1Span.SetAttr("completed", done1)
	l1Span.End()
	completed += done1
	for i := 0; i < done1; i++ {
		if hits1[i] {
			found = append(found, mk([]int{l1[i].a}, l1[i].b))
			foundKey[key([]int{l1[i].a}, l1[i].b)] = true
		}
	}

	// Level 2 with minimality pruning against the full level-1 set.
	if err == nil && opts.MaxLHS >= 2 {
		type trip struct{ a, b, rhs int }
		var l2 []trip
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for rhs := 0; rhs < n; rhs++ {
					if rhs == a || rhs == b {
						continue
					}
					if foundKey[key([]int{a}, rhs)] || foundKey[key([]int{b}, rhs)] {
						continue
					}
					l2 = append(l2, trip{a, b, rhs})
				}
			}
		}
		l2Span := run.Child(obs.KindPhase, "level-2")
		var hits2 []bool
		var done2 int
		hits2, done2, err = engine.MapBudget(pool, len(l2), batch, func(i int) bool {
			return mk([]int{l2[i].a, l2[i].b}, l2[i].rhs).Holds(r)
		})
		l2Span.SetAttr("completed", done2)
		l2Span.End()
		completed += done2
		for i := 0; i < done2; i++ {
			if hits2[i] {
				found = append(found, mk([]int{l2[i].a, l2[i].b}, l2[i].rhs))
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].String() < found[j].String() })
	reg.Counter("ffddisc.candidates.checked").Add(int64(completed))
	reg.Counter("ffddisc.ffds.valid").Add(int64(len(found)))
	res := Result{FFDs: found, Completed: completed}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

func key(cols []int, rhs int) string {
	s := ""
	for _, c := range cols {
		s += string(rune('A' + c))
	}
	return s + ">" + string(rune('A'+rhs))
}

// Incremental maintains candidate single-attribute FFDs as tuples arrive
// (the pair-wise incremental search of [108]): each AddTuple compares the
// new tuple against all previous ones only, eliminating candidates whose
// EQUAL inequality fails on some new pair — no re-scan of old pairs.
type Incremental struct {
	r    *relation.Relation
	opts Options
	// alive[a][b] tracks whether a→b is still a candidate.
	alive map[[2]int]bool
}

// NewIncremental starts an incremental session over an empty relation with
// the given schema.
func NewIncremental(schema *relation.Schema, opts Options) *Incremental {
	r := relation.New("incremental", schema)
	opts = opts.withDefaults(r)
	inc := &Incremental{r: r, opts: opts, alive: map[[2]int]bool{}}
	for a := 0; a < schema.Len(); a++ {
		for b := 0; b < schema.Len(); b++ {
			if a != b {
				inc.alive[[2]int{a, b}] = true
			}
		}
	}
	return inc
}

// AddTuple appends a tuple and prunes candidates using only the new pairs.
func (inc *Incremental) AddTuple(row []relation.Value) error {
	if err := inc.r.Append(row); err != nil {
		return err
	}
	newRow := inc.r.Rows() - 1
	for cand, ok := range inc.alive {
		if !ok {
			continue
		}
		a, b := cand[0], cand[1]
		eqA, eqB := inc.opts.Resemblances[a], inc.opts.Resemblances[b]
		for i := 0; i < newRow; i++ {
			muX := eqA.Eq(inc.r.Value(i, a), inc.r.Value(newRow, a))
			muY := eqB.Eq(inc.r.Value(i, b), inc.r.Value(newRow, b))
			if muX > muY {
				inc.alive[cand] = false
				break
			}
		}
	}
	return nil
}

// Current returns the surviving single-attribute FFDs.
func (inc *Incremental) Current() []ffd.FFD {
	var out []ffd.FFD
	var keys [][2]int
	for cand, ok := range inc.alive {
		if ok {
			keys = append(keys, cand)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, cand := range keys {
		out = append(out, ffd.FFD{
			LHS:    []ffd.Attr{{Col: cand[0], Eq: inc.opts.Resemblances[cand[0]]}},
			RHS:    []ffd.Attr{{Col: cand[1], Eq: inc.opts.Resemblances[cand[1]]}},
			Schema: inc.r.Schema(),
		})
	}
	return out
}

// Relation exposes the accumulated instance (for validation in tests).
func (inc *Incremental) Relation() *relation.Relation { return inc.r }
