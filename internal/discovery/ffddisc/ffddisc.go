// Package ffddisc implements fuzzy-FD discovery (paper §3.6.3): the
// TANE-style mining of Wang & Chen [109] — find the non-trivial FFDs with
// a single RHS attribute by checking every tuple pair against the EQUAL
// resemblance relations — and the incremental variant of Wang, Shen & Hong
// [108], which maintains the discovered set as tuples arrive and only
// compares each new tuple against the existing ones, avoiding database
// re-scans.
package ffddisc

import (
	"sort"

	"deptree/internal/deps/ffd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Options configures FFD discovery.
type Options struct {
	// Resemblances assigns the EQUAL relation per column; nil entries (or
	// a nil map) default to CrispEqual for strings and
	// InverseNumeric{Beta: 1} for numeric columns.
	Resemblances map[int]metric.Resemblance
	// MaxLHS bounds the determinant attribute count (default 2).
	MaxLHS int
}

func (o Options) withDefaults(r *relation.Relation) Options {
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	res := map[int]metric.Resemblance{}
	for c := 0; c < r.Cols(); c++ {
		if o.Resemblances != nil && o.Resemblances[c] != nil {
			res[c] = o.Resemblances[c]
			continue
		}
		if r.Schema().Attr(c).Kind == relation.KindString {
			res[c] = metric.CrispEqual{}
		} else {
			res[c] = metric.InverseNumeric{Beta: 1}
		}
	}
	o.Resemblances = res
	return o
}

// Discover returns the minimal valid FFDs with ≤ MaxLHS determinant
// attributes and a single dependent attribute, checking every tuple pair
// (the [109] small-to-large strategy: an FFD with a sub-LHS already valid
// is pruned as non-minimal, since adding determinant attributes can only
// lower µ_EQ(X) and weaken the constraint).
func Discover(r *relation.Relation, opts Options) []ffd.FFD {
	opts = opts.withDefaults(r)
	n := r.Cols()
	if n == 0 || r.Rows() < 2 {
		return nil
	}
	mk := func(cols []int, rhs int) ffd.FFD {
		out := ffd.FFD{Schema: r.Schema()}
		for _, c := range cols {
			out.LHS = append(out.LHS, ffd.Attr{Col: c, Eq: opts.Resemblances[c]})
		}
		out.RHS = []ffd.Attr{{Col: rhs, Eq: opts.Resemblances[rhs]}}
		return out
	}
	var found []ffd.FFD
	foundKey := map[string]bool{}
	valid := func(cols []int, rhs int) bool {
		return mk(cols, rhs).Holds(r)
	}
	// Level 1.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if valid([]int{a}, b) {
				f := mk([]int{a}, b)
				found = append(found, f)
				foundKey[key([]int{a}, b)] = true
			}
		}
	}
	// Level 2 with minimality pruning.
	if opts.MaxLHS >= 2 {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for rhs := 0; rhs < n; rhs++ {
					if rhs == a || rhs == b {
						continue
					}
					if foundKey[key([]int{a}, rhs)] || foundKey[key([]int{b}, rhs)] {
						continue
					}
					if valid([]int{a, b}, rhs) {
						found = append(found, mk([]int{a, b}, rhs))
					}
				}
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].String() < found[j].String() })
	return found
}

func key(cols []int, rhs int) string {
	s := ""
	for _, c := range cols {
		s += string(rune('A' + c))
	}
	return s + ">" + string(rune('A'+rhs))
}

// Incremental maintains candidate single-attribute FFDs as tuples arrive
// (the pair-wise incremental search of [108]): each AddTuple compares the
// new tuple against all previous ones only, eliminating candidates whose
// EQUAL inequality fails on some new pair — no re-scan of old pairs.
type Incremental struct {
	r    *relation.Relation
	opts Options
	// alive[a][b] tracks whether a→b is still a candidate.
	alive map[[2]int]bool
}

// NewIncremental starts an incremental session over an empty relation with
// the given schema.
func NewIncremental(schema *relation.Schema, opts Options) *Incremental {
	r := relation.New("incremental", schema)
	opts = opts.withDefaults(r)
	inc := &Incremental{r: r, opts: opts, alive: map[[2]int]bool{}}
	for a := 0; a < schema.Len(); a++ {
		for b := 0; b < schema.Len(); b++ {
			if a != b {
				inc.alive[[2]int{a, b}] = true
			}
		}
	}
	return inc
}

// AddTuple appends a tuple and prunes candidates using only the new pairs.
func (inc *Incremental) AddTuple(row []relation.Value) error {
	if err := inc.r.Append(row); err != nil {
		return err
	}
	newRow := inc.r.Rows() - 1
	for cand, ok := range inc.alive {
		if !ok {
			continue
		}
		a, b := cand[0], cand[1]
		eqA, eqB := inc.opts.Resemblances[a], inc.opts.Resemblances[b]
		for i := 0; i < newRow; i++ {
			muX := eqA.Eq(inc.r.Value(i, a), inc.r.Value(newRow, a))
			muY := eqB.Eq(inc.r.Value(i, b), inc.r.Value(newRow, b))
			if muX > muY {
				inc.alive[cand] = false
				break
			}
		}
	}
	return nil
}

// Current returns the surviving single-attribute FFDs.
func (inc *Incremental) Current() []ffd.FFD {
	var out []ffd.FFD
	var keys [][2]int
	for cand, ok := range inc.alive {
		if ok {
			keys = append(keys, cand)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, cand := range keys {
		out = append(out, ffd.FFD{
			LHS:    []ffd.Attr{{Col: cand[0], Eq: inc.opts.Resemblances[cand[0]]}},
			RHS:    []ffd.Attr{{Col: cand[1], Eq: inc.opts.Resemblances[cand[1]]}},
			Schema: inc.r.Schema(),
		})
	}
	return out
}

// Relation exposes the accumulated instance (for validation in tests).
func (inc *Incremental) Relation() *relation.Relation { return inc.r }
