package fastdc

import (
	"sort"

	"deptree/internal/deps/dc"
	"deptree/internal/relation"
)

// BFASTDC-style bitwise evidence processing (Pena & de Almeida [78],
// paper §4.3.4): evidence sets are packed into uint64 words and cover
// checks become AND/mask operations, cutting both memory and the inner
// loop of the minimal-cover search.

// BitEvidence is one distinct evidence set as a packed bitmask.
type BitEvidence struct {
	// Words holds ⌈|space|/64⌉ packed predicate bits.
	Words []uint64
	// Count is the multiplicity over ordered tuple pairs.
	Count int
}

// has reports whether predicate p is in the evidence set.
func (e BitEvidence) has(p int) bool {
	return e.Words[p/64]&(1<<(p%64)) != 0
}

// EvidenceSetsBitset computes the distinct evidence sets in packed form.
func EvidenceSetsBitset(r *relation.Relation, space []dc.Predicate) []BitEvidence {
	words := (len(space) + 63) / 64
	seen := map[string]int{}
	var out []BitEvidence
	buf := make([]uint64, words)
	key := make([]byte, words*8)
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			for w := range buf {
				buf[w] = 0
			}
			for p, pred := range space {
				if pred.Eval(r, i, j) {
					buf[p/64] |= 1 << (p % 64)
				}
			}
			for w, v := range buf {
				for b := 0; b < 8; b++ {
					key[w*8+b] = byte(v >> (8 * b))
				}
			}
			k := string(key)
			if idx, ok := seen[k]; ok {
				out[idx].Count++
				continue
			}
			seen[k] = len(out)
			out = append(out, BitEvidence{Words: append([]uint64(nil), buf...), Count: 1})
		}
	}
	return out
}

// DiscoverBitset is Discover on the bitwise path; it returns the same
// minimal DCs (a property the tests check) with the packed evidence
// representation driving the cover search.
func DiscoverBitset(r *relation.Relation, opts Options) []dc.DC {
	opts = opts.withDefaults()
	if r.Rows() < 2 {
		return nil
	}
	space := PredicateSpace(r, opts.CrossColumn)
	evidence := EvidenceSetsBitset(r, space)
	totalPairs := 0
	for _, e := range evidence {
		totalPairs += e.Count
	}
	budget := int(opts.MaxViolations * float64(totalPairs))
	words := (len(space) + 63) / 64

	var covers [][]int
	isSupersetOfCover := func(sel []int) bool {
		for _, c := range covers {
			if containsAll(sel, c) {
				return true
			}
		}
		return false
	}
	// selMask mirrors sel as a packed mask for the AND-based check.
	selMask := make([]uint64, words)
	var dfs func(sel []int, startAt int)
	dfs = func(sel []int, startAt int) {
		violating := 0
		for _, e := range evidence {
			all := true
			for w := range selMask {
				if e.Words[w]&selMask[w] != selMask[w] {
					all = false
					break
				}
			}
			if all {
				violating += e.Count
			}
		}
		if len(sel) > 0 && violating <= budget {
			if !isSupersetOfCover(sel) {
				covers = append(covers, append([]int(nil), sel...))
			}
			return
		}
		if len(sel) >= opts.MaxPredicates {
			return
		}
		for p := startAt; p < len(space); p++ {
			next := append(sel, p)
			if isSupersetOfCover(next) {
				continue
			}
			selMask[p/64] |= 1 << (p % 64)
			dfs(next, p+1)
			selMask[p/64] &^= 1 << (p % 64)
		}
	}
	dfs(nil, 0)
	var minimal [][]int
	for i, c := range covers {
		keep := true
		for j, d := range covers {
			if i != j && len(d) < len(c) && containsAll(c, d) {
				keep = false
				break
			}
		}
		if keep {
			minimal = append(minimal, c)
		}
	}
	out := make([]dc.DC, 0, len(minimal))
	for _, cover := range minimal {
		preds := make([]dc.Predicate, 0, len(cover))
		for _, pi := range cover {
			preds = append(preds, space[pi])
		}
		out = append(out, dc.DC{Predicates: preds, Schema: r.Schema()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
