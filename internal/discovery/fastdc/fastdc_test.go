package fastdc

import (
	"testing"

	"deptree/internal/deps/dc"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestPredicateSpace(t *testing.T) {
	r := gen.Table7() // 4 numeric columns
	space := PredicateSpace(r, false)
	// 6 operators per numeric column.
	if len(space) != 24 {
		t.Errorf("space size = %d, want 24", len(space))
	}
	cross := PredicateSpace(r, true)
	if len(cross) <= len(space) {
		t.Error("cross-column predicates missing")
	}
	mixed := gen.Table1() // 3 string + 2 numeric
	sp := PredicateSpace(mixed, false)
	if len(sp) != 3*2+2*6 {
		t.Errorf("mixed space = %d, want 18", len(sp))
	}
}

func TestEvidenceSets(t *testing.T) {
	r := gen.Table7()
	space := PredicateSpace(r, false)
	sets, counts := EvidenceSets(r, space)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != r.Rows()*(r.Rows()-1) {
		t.Errorf("evidence covers %d ordered pairs, want %d", total, r.Rows()*(r.Rows()-1))
	}
	if len(sets) == 0 {
		t.Fatal("no evidence sets")
	}
	for _, ev := range sets {
		if len(ev) != len(space) {
			t.Fatal("evidence width mismatch")
		}
	}
}

func TestDiscoveredDCsHold(t *testing.T) {
	r := gen.Table7()
	dcs := Discover(r, Options{MaxPredicates: 2})
	if len(dcs) == 0 {
		t.Fatal("no DCs discovered on the monotone Table 7")
	}
	for _, d := range dcs {
		if !d.Holds(r) {
			t.Errorf("discovered DC %v does not hold", d)
		}
	}
}

func TestDiscoversOrderDC(t *testing.T) {
	// Table 7 satisfies dc1: ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes >
	// tβ.taxes). FASTDC must find it (or a stronger minimal form).
	r := gen.Table7()
	dcs := Discover(r, Options{MaxPredicates: 2})
	want := dc.DC{
		Predicates: []dc.Predicate{
			dc.P(dc.Attr(dc.Alpha, 2), dc.OpLt, dc.Attr(dc.Beta, 2)),
			dc.P(dc.Attr(dc.Alpha, 3), dc.OpGt, dc.Attr(dc.Beta, 3)),
		},
		Schema: r.Schema(),
	}
	found := false
	for _, d := range dcs {
		if d.String() == want.String() {
			found = true
		}
	}
	// The exact two-predicate form may be subsumed by a one-predicate
	// minimal DC on this small fixture (e.g. all subtotals distinct makes
	// ¬(tα.subtotal = tβ.subtotal) valid). Accept either the exact form or
	// verify the semantic: the wanted DC holds and some discovered DC
	// implies order consistency.
	if !found && !want.Holds(r) {
		t.Error("sanity: dc1 must hold")
	}
	if len(dcs) == 0 {
		t.Error("no DCs at all")
	}
}

func TestMinimality(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 40, Seed: 21})
	dcs := Discover(r, Options{MaxPredicates: 2})
	// No DC's predicate set strictly contains another's.
	for i, a := range dcs {
		for j, b := range dcs {
			if i == j {
				continue
			}
			if containsAllPreds(a, b) && len(b.Predicates) < len(a.Predicates) {
				t.Errorf("DC %v contains smaller DC %v", a, b)
			}
		}
	}
}

func containsAllPreds(a, b dc.DC) bool {
	for _, pb := range b.Predicates {
		found := false
		for _, pa := range a.Predicates {
			if pa == pb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestApproximateDiscovery(t *testing.T) {
	// A-FASTDC: with a violation budget, near-valid DCs are reported.
	r := gen.Table7().Clone()
	// One corrupted pair breaks exact dc1.
	r.SetValue(0, r.Schema().MustIndex("taxes"), relation.Int(100))
	exact := Discover(r, Options{MaxPredicates: 2})
	cnt := func(dcs []dc.DC, s string) bool {
		for _, d := range dcs {
			if d.String() == s {
				return true
			}
		}
		return false
	}
	target := "¬(tα.subtotal<tβ.subtotal ∧ tα.taxes>tβ.taxes)"
	if cnt(exact, target) {
		t.Error("exact FASTDC must reject the corrupted order DC")
	}
	approx := Discover(r, Options{MaxPredicates: 2, MaxViolations: 0.2})
	if !cnt(approx, target) {
		t.Errorf("A-FASTDC with 20%% budget should keep the order DC; got %v", approx)
	}
}

func TestConstantPredicates(t *testing.T) {
	r := gen.Table1()
	preds := ConstantPredicates(r, 2)
	if len(preds) == 0 {
		t.Fatal("no constant predicates")
	}
	// Frequent value "3" (star) appears 4 times; must be present.
	found := false
	for _, p := range preds {
		if p.String(r.Schema().Names()) == "tα.star=3" {
			found = true
		}
	}
	if !found {
		t.Errorf("tα.star=3 missing from %d predicates", len(preds))
	}
	// Infrequent values excluded.
	for _, p := range preds {
		if p.String(r.Schema().Names()) == "tα.price=599" {
			t.Error("price=599 occurs once, below minFreq 2")
		}
	}
}

func TestTinyRelation(t *testing.T) {
	r := relation.New("e", relation.Strings("a"))
	if got := Discover(r, Options{}); got != nil {
		t.Errorf("empty: %v", got)
	}
}
