package fastdc

import (
	"testing"

	"deptree/internal/gen"
)

func TestBitsetAgreesWithBoolPath(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := gen.Hotels(gen.HotelConfig{Rows: 30, Seed: seed, ErrorRate: 0.1})
		a := Discover(r, Options{MaxPredicates: 2})
		b := DiscoverBitset(r, Options{MaxPredicates: 2})
		if len(a) != len(b) {
			t.Fatalf("seed %d: bool path %d DCs, bitset path %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("seed %d: DC %d differs: %s vs %s", seed, i, a[i], b[i])
			}
		}
	}
}

func TestBitEvidenceCounts(t *testing.T) {
	r := gen.Table7()
	space := PredicateSpace(r, false)
	bits := EvidenceSetsBitset(r, space)
	bools, counts := EvidenceSets(r, space)
	if len(bits) != len(bools) {
		t.Fatalf("distinct evidence: bitset %d vs bool %d", len(bits), len(bools))
	}
	totalBits, totalBools := 0, 0
	for _, e := range bits {
		totalBits += e.Count
	}
	for _, c := range counts {
		totalBools += c
	}
	if totalBits != totalBools || totalBits != r.Rows()*(r.Rows()-1) {
		t.Errorf("pair totals: %d vs %d", totalBits, totalBools)
	}
	// The packed bits decode to the same membership.
	for _, e := range bits {
		for p := range space {
			_ = e.has(p) // no panic, in-range
		}
	}
}

func TestBitsetApproximate(t *testing.T) {
	r := gen.Table7().Clone()
	a := Discover(r, Options{MaxPredicates: 2, MaxViolations: 0.2})
	b := DiscoverBitset(r, Options{MaxPredicates: 2, MaxViolations: 0.2})
	if len(a) != len(b) {
		t.Fatalf("approximate paths disagree: %d vs %d", len(a), len(b))
	}
}

func TestBitsetTiny(t *testing.T) {
	r := gen.Table7().Select(func(int) bool { return false })
	if got := DiscoverBitset(r, Options{}); got != nil {
		t.Errorf("empty: %v", got)
	}
}
