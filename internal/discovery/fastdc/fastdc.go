// Package fastdc implements FASTDC (Chu, Ilyas & Papotti [19], paper
// §4.3.4): denial-constraint discovery via a predicate space, evidence
// sets, and minimal set covers.
//
// The pipeline: (1) build the space of two-tuple predicates over the
// schema ({=, ≠} everywhere, plus {<, ≤, >, ≥} and cross-column
// comparisons on numeric attributes); (2) compute the evidence set of each
// tuple pair — the predicates it satisfies; (3) every minimal set of
// predicates that "covers" all evidence sets (hits their complements)
// denies an impossible combination, yielding a valid minimal DC. The
// approximate variant A-FASTDC allows a bounded fraction of violating
// pairs, and C-FASTDC adds constant predicates.
package fastdc

import (
	"context"
	"errors"
	"sort"

	"deptree/internal/deps/dc"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures FASTDC.
type Options struct {
	// MaxPredicates bounds the number of predicates in a DC (default 3).
	MaxPredicates int
	// MaxViolations is the A-FASTDC budget: the fraction of tuple pairs a
	// DC may deny and still be reported (0 = exact FASTDC).
	MaxViolations float64
	// CrossColumn enables tα.A vs tβ.B predicates between numeric columns
	// of the same kind.
	CrossColumn bool
	// Workers stripes the O(n²) evidence-set construction across
	// goroutines. 0 or 1 runs the exact sequential path; stripes are
	// merged in row order so the evidence sets (and hence the DCs) are
	// identical for every worker count.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates the evidence scan to a prefix of the first-tuple
	// row range and the Result reports Partial.
	Budget engine.Budget
	// Obs optionally receives the run's metrics (fastdc.* counters, the
	// evidence-scan and cover-search phase latencies) and its run/phase
	// spans. Nil is a full no-op; observation never changes output.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxPredicates == 0 {
		o.MaxPredicates = 3
	}
	return o
}

// Result is a FASTDC run's outcome. Partial DC discovery is inherently
// weaker than partial FD discovery: a DC validated against a row prefix
// may be violated by an unscanned pair, so a Partial result is a
// sample-style approximation — the DCs that hold on every pair whose
// first tuple lies in the scanned prefix — not a sound subset of the full
// answer. RowsCovered reports that prefix; it is deterministic for any
// worker count under a MaxTasks budget (fixed stripe and batch widths).
type Result struct {
	DCs []dc.DC
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// RowsCovered is the first-tuple row prefix the evidence scan
	// completed (== Rows() on a full run).
	RowsCovered int
}

// Discover runs FASTDC and returns minimal valid DCs, sorted by rendered
// form for determinism.
func Discover(r *relation.Relation, opts Options) []dc.DC {
	return DiscoverContext(context.Background(), r, opts).DCs
}

// DiscoverContext is Discover under a context and Options.Budget.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	if r.Rows() < 2 {
		return Result{}
	}
	reg := opts.Obs
	run := reg.StartSpan(obs.KindRun, "fastdc")
	run.SetAttr("rows", r.Rows())
	defer run.End()

	space := PredicateSpace(r, opts.CrossColumn)
	run.SetAttr("predicates", len(space))
	reg.Counter("fastdc.predicates").Add(int64(len(space)))
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	evSpan := run.Child(obs.KindPhase, "evidence-scan")
	evTimer := reg.Histogram("fastdc.evidence.seconds").Start()
	evidence, counts, rowsCovered, evErr := evidencePrefix(r, space, pool)
	evTimer()
	evSpan.SetAttr("sets", len(evidence))
	evSpan.SetAttr("rows_covered", rowsCovered)
	evSpan.End()
	reg.Counter("fastdc.evidence.sets").Add(int64(len(evidence)))
	reg.Counter("fastdc.rows.covered").Add(int64(rowsCovered))
	if len(evidence) == 0 && evErr != nil {
		run.SetAttr("stop", engine.Reason(evErr))
		return Result{Partial: true, Reason: engine.Reason(evErr)}
	}
	// The cover search runs on the submitting goroutine, outside the
	// pool's task accounting: MaxTasks only meters evidence stripes, so
	// a max-tasks stop still searches the scanned prefix; deadline,
	// cancellation and panics abort the search promptly.
	stop := func() bool {
		err := pool.Err()
		return err != nil && !errors.Is(err, engine.ErrMaxTasks)
	}
	coverSpan := run.Child(obs.KindPhase, "cover-search")
	coverTimer := reg.Histogram("fastdc.covers.seconds").Start()
	covers, aborted := minimalCovers(space, evidence, counts, opts, stop)
	coverTimer()
	coverSpan.SetAttr("covers", len(covers))
	coverSpan.SetAttr("aborted", aborted)
	coverSpan.End()
	out := make([]dc.DC, 0, len(covers))
	for _, cover := range covers {
		preds := make([]dc.Predicate, 0, len(cover))
		for _, pi := range cover {
			preds = append(preds, space[pi])
		}
		out = append(out, dc.DC{Predicates: preds, Schema: r.Schema()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	res := Result{DCs: out, RowsCovered: rowsCovered}
	if evErr != nil || aborted {
		res.Partial = true
		err := evErr
		if err == nil {
			err = pool.Err()
		}
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
		if aborted {
			// An aborted cover search may have missed covers entirely;
			// report the prefix scan but no unsound DC list.
			res.DCs = nil
		}
	}
	reg.Counter("fastdc.dcs.found").Add(int64(len(res.DCs)))
	return res
}

// PredicateSpace builds the two-tuple predicate space: for every column,
// tα.A {=, ≠} tβ.A; for numeric columns additionally {<, ≤, >, ≥}; and,
// when crossColumn is set, tα.A vs tβ.B for distinct numeric columns.
func PredicateSpace(r *relation.Relation, crossColumn bool) []dc.Predicate {
	var space []dc.Predicate
	numericOps := []dc.Op{dc.OpEq, dc.OpNe, dc.OpLt, dc.OpLe, dc.OpGt, dc.OpGe}
	stringOps := []dc.Op{dc.OpEq, dc.OpNe}
	for c := 0; c < r.Cols(); c++ {
		ops := stringOps
		if r.Schema().Attr(c).Kind != relation.KindString {
			ops = numericOps
		}
		for _, op := range ops {
			space = append(space, dc.P(dc.Attr(dc.Alpha, c), op, dc.Attr(dc.Beta, c)))
		}
	}
	if crossColumn {
		for c1 := 0; c1 < r.Cols(); c1++ {
			if r.Schema().Attr(c1).Kind == relation.KindString {
				continue
			}
			for c2 := 0; c2 < r.Cols(); c2++ {
				if c1 == c2 || r.Schema().Attr(c2).Kind == relation.KindString {
					continue
				}
				for _, op := range []dc.Op{dc.OpLt, dc.OpGt} {
					space = append(space, dc.P(dc.Attr(dc.Alpha, c1), op, dc.Attr(dc.Beta, c2)))
				}
			}
		}
	}
	return space
}

// evidenceKey is a bitset over predicate indices (≤ 64 predicates per
// word; a slice of words covers larger spaces).
type evidenceKey string

// EvidenceSets computes the distinct evidence sets over all ordered tuple
// pairs plus their multiplicities. The evidence set of a pair is the set
// of space predicates it satisfies.
func EvidenceSets(r *relation.Relation, space []dc.Predicate) ([][]bool, []int) {
	sets, counts, _ := evidenceStripe(r, space, 0, r.Rows())
	return sets, counts
}

// evidenceStripes is the fixed stripe count for the evidence scan and
// evidenceBatch the budget batch width. Both are worker-independent: the
// stripe boundaries, the order stripes are merged in, and the point where
// a MaxTasks budget trips depend only on the row count, so evidence sets
// — full or prefix — are identical for every worker count.
const (
	evidenceStripes = 64
	evidenceBatch   = 8
)

// evidencePrefix stripes the first-tuple index range across the pool;
// each stripe deduplicates locally, and completed stripes are merged in
// row order. On a budget/cancellation stop it returns the evidence of the
// longest completed stripe prefix plus the first-tuple row bound that
// prefix covers, with the stopping error.
func evidencePrefix(r *relation.Relation, space []dc.Predicate, pool *engine.Pool) ([][]bool, []int, int, error) {
	rows := r.Rows()
	stripes := min(evidenceStripes, rows)
	if stripes == 0 {
		return nil, nil, 0, nil
	}
	type stripeOut struct {
		sets   [][]bool
		counts []int
		keys   []evidenceKey
	}
	parts, done, err := engine.MapBudget(pool, stripes, evidenceBatch, func(s int) stripeOut {
		lo := s * rows / stripes
		hi := (s + 1) * rows / stripes
		sets, counts, keys := evidenceStripe(r, space, lo, hi)
		return stripeOut{sets: sets, counts: counts, keys: keys}
	})
	seen := map[evidenceKey]int{}
	var sets [][]bool
	var counts []int
	for _, part := range parts {
		for i, k := range part.keys {
			if idx, ok := seen[k]; ok {
				counts[idx] += part.counts[i]
				continue
			}
			seen[k] = len(sets)
			sets = append(sets, part.sets[i])
			counts = append(counts, part.counts[i])
		}
	}
	return sets, counts, done * rows / stripes, err
}

// evidenceStripe computes the deduplicated evidence sets of the ordered
// pairs (i, j) with lo <= i < hi, j ranging over all rows. It also returns
// the dedupe key per set so stripes can be merged.
func evidenceStripe(r *relation.Relation, space []dc.Predicate, lo, hi int) ([][]bool, []int, []evidenceKey) {
	seen := map[evidenceKey]int{}
	var sets [][]bool
	var counts []int
	var keys []evidenceKey
	buf := make([]bool, len(space))
	keyBuf := make([]byte, (len(space)+7)/8)
	for i := lo; i < hi; i++ {
		for j := 0; j < r.Rows(); j++ {
			if i == j {
				continue
			}
			for b := range keyBuf {
				keyBuf[b] = 0
			}
			for p, pred := range space {
				sat := pred.Eval(r, i, j)
				buf[p] = sat
				if sat {
					keyBuf[p/8] |= 1 << (p % 8)
				}
			}
			k := evidenceKey(keyBuf)
			if idx, ok := seen[k]; ok {
				counts[idx]++
				continue
			}
			seen[k] = len(sets)
			sets = append(sets, append([]bool(nil), buf...))
			counts = append(counts, 1)
			keys = append(keys, k)
		}
	}
	return sets, counts, keys
}

// minimalCovers finds the minimal predicate sets P such that for every
// evidence set E (up to the A-FASTDC violation budget), some p ∈ P is NOT
// in E — then ¬(∧P) holds on the instance. Depth-first search with
// minimality pruning against found covers. The search space is
// exponential in the predicate count — the classic worker-pinning case —
// so stop (when non-nil) is polled periodically; a true return abandons
// the search and reports aborted.
func minimalCovers(space []dc.Predicate, evidence [][]bool, counts []int, opts Options, stop func() bool) (_ [][]int, aborted bool) {
	totalPairs := 0
	for _, c := range counts {
		totalPairs += c
	}
	budget := int(opts.MaxViolations * float64(totalPairs))
	var covers [][]int
	isSupersetOfCover := func(sel []int) bool {
		for _, c := range covers {
			if containsAll(sel, c) {
				return true
			}
		}
		return false
	}
	const stopCheckEvery = 1024
	steps := 0
	var dfs func(sel []int, startAt int)
	dfs = func(sel []int, startAt int) {
		if aborted {
			return
		}
		if steps++; stop != nil && steps%stopCheckEvery == 0 && stop() {
			aborted = true
			return
		}
		// Count uncovered pairs: evidence sets containing ALL selected
		// predicates (the denied conjunction can be satisfied).
		violating := 0
		for e, ev := range evidence {
			all := true
			for _, p := range sel {
				if !ev[p] {
					all = false
					break
				}
			}
			if all {
				violating += counts[e]
			}
		}
		if len(sel) > 0 && violating <= budget {
			if !isSupersetOfCover(sel) {
				covers = append(covers, append([]int(nil), sel...))
			}
			return
		}
		if len(sel) >= opts.MaxPredicates {
			return
		}
		for p := startAt; p < len(space); p++ {
			// Skip predicates on the same operand pair as an already
			// selected one with a redundant relationship (same column pair
			// and operator family) — a light-weight stand-in for the
			// implication-based pruning of the original.
			next := append(sel, p)
			if isSupersetOfCover(next) {
				continue
			}
			dfs(next, p+1)
		}
	}
	dfs(nil, 0)
	if aborted {
		return nil, true
	}
	// Final minimality pass: drop covers containing smaller covers.
	var minimal [][]int
	for i, c := range covers {
		keep := true
		for j, d := range covers {
			if i != j && len(d) < len(c) && containsAll(c, d) {
				keep = false
				break
			}
		}
		if keep {
			minimal = append(minimal, c)
		}
	}
	return minimal, false
}

// containsAll reports whether sorted slice a contains all elements of b.
func containsAll(a, b []int) bool {
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i == len(a) || a[i] != x {
			return false
		}
	}
	return true
}

// ConstantPredicates builds the C-FASTDC constant predicate space: tα.A op
// c for the frequent constants of each column (at least minFreq
// occurrences).
func ConstantPredicates(r *relation.Relation, minFreq int) []dc.Predicate {
	var out []dc.Predicate
	for c := 0; c < r.Cols(); c++ {
		// Dictionary-encode the column and count per code instead of per key
		// string. A code's representative is its last occurrence, matching
		// the map-overwrite semantics of the string-keyed implementation
		// (Key-equal values may still differ as Value instances).
		codes, card := r.Codes(c)
		freq := make([]int, card)
		rep := make([]relation.Value, card)
		keys := make([]string, card)
		for row, code := range codes {
			v := r.Value(row, c)
			if freq[code] == 0 {
				keys[code] = v.Key()
			}
			freq[code]++
			rep[code] = v
		}
		order := make([]int, card)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
		ops := []dc.Op{dc.OpEq, dc.OpNe}
		if r.Schema().Attr(c).Kind != relation.KindString {
			ops = append(ops, dc.OpLt, dc.OpGt)
		}
		for _, code := range order {
			if freq[code] < minFreq {
				continue
			}
			for _, op := range ops {
				out = append(out, dc.P(dc.Attr(dc.Alpha, c), op, dc.Const(rep[code])))
			}
		}
	}
	return out
}
