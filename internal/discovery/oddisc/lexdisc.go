package oddisc

import (
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/relation"
)

// LexOptions configures lexicographic OD discovery.
type LexOptions struct {
	// Columns restricts the searched attributes (default: numeric columns).
	Columns []int
	// MaxWidth bounds the marked-list length on each side (default 2).
	MaxWidth int
}

// DiscoverLex finds valid lexicographic ODs X̄ ~> Ȳ with list widths up
// to MaxWidth, in the level-wise spirit of Langer & Naumann [67]: lists
// grow by appending attributes, and a candidate is pruned when a prefix
// pair is already valid (a valid X̄ ~> Ȳ implies validity of every
// extension of X̄ with the same Ȳ — appending to the LHS only refines
// ties). Only ascending LHS lists are enumerated (descending LHS mirrors
// to the swapped pair); RHS attributes carry either mark.
func DiscoverLex(r *relation.Relation, opts LexOptions) []od.LexOD {
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if r.Schema().Attr(c).Kind != relation.KindString {
				cols = append(cols, c)
			}
		}
	}
	maxWidth := opts.MaxWidth
	if maxWidth == 0 {
		maxWidth = 2
	}
	// Enumerate LHS lists (ordered, no repeats) up to maxWidth.
	var lhsLists [][]od.Marked
	var buildLHS func(cur []od.Marked)
	buildLHS = func(cur []od.Marked) {
		if len(cur) > 0 {
			lhsLists = append(lhsLists, append([]od.Marked(nil), cur...))
		}
		if len(cur) == maxWidth {
			return
		}
		for _, c := range cols {
			used := false
			for _, m := range cur {
				if m.Col == c {
					used = true
				}
			}
			if !used {
				buildLHS(append(cur, od.Marked{Col: c}))
			}
		}
	}
	buildLHS(nil)
	sort.SliceStable(lhsLists, func(i, j int) bool { return len(lhsLists[i]) < len(lhsLists[j]) })

	// valid prefixes: map canonical rendering of (LHS prefix, RHS) pairs.
	type key struct {
		lhs string
		rhs string
	}
	validPrefix := map[key]bool{}
	names := r.Schema().Names()
	render := func(ms []od.Marked) string {
		s := ""
		for _, m := range ms {
			s += m.String(names) + ";"
		}
		return s
	}
	var out []od.LexOD
	for _, lhs := range lhsLists {
		for _, c := range cols {
			inLHS := false
			for _, m := range lhs {
				if m.Col == c {
					inLHS = true
				}
			}
			if inLHS {
				continue
			}
			for _, desc := range []bool{false, true} {
				rhs := []od.Marked{{Col: c, Desc: desc}}
				// Prefix pruning: if any proper prefix of lhs already
				// orders rhs, this candidate is implied.
				implied := false
				for plen := 1; plen < len(lhs); plen++ {
					if validPrefix[key{render(lhs[:plen]), render(rhs)}] {
						implied = true
						break
					}
				}
				if implied {
					continue
				}
				cand := od.LexOD{LHS: lhs, RHS: rhs, Schema: r.Schema()}
				if cand.Holds(r) {
					validPrefix[key{render(lhs), render(rhs)}] = true
					out = append(out, cand)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
