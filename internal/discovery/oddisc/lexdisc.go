package oddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// LexOptions configures lexicographic OD discovery.
type LexOptions struct {
	// Columns restricts the searched attributes (default: numeric columns).
	Columns []int
	// MaxWidth bounds the marked-list length on each side (default 2).
	MaxWidth int
	// Workers fans candidate validation across goroutines; output is
	// identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the width-level candidate enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

// LexResult is a lexicographic OD discovery outcome; a Partial run covers
// a deterministic prefix of the width-level candidate enumeration.
type LexResult struct {
	ODs []od.LexOD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of candidates validated.
	Completed int
}

// lexBatch is the fixed MapBudget stripe width over lexicographic OD
// candidates. Fixed so the truncation point is worker-independent.
const lexBatch = 8

// DiscoverLex finds valid lexicographic ODs X̄ ~> Ȳ with list widths up
// to MaxWidth, in the level-wise spirit of Langer & Naumann [67]: lists
// grow by appending attributes, and a candidate is pruned when a prefix
// pair is already valid (a valid X̄ ~> Ȳ implies validity of every
// extension of X̄ with the same Ȳ — appending to the LHS only refines
// ties). Only ascending LHS lists are enumerated (descending LHS mirrors
// to the swapped pair); RHS attributes carry either mark.
func DiscoverLex(r *relation.Relation, opts LexOptions) []od.LexOD {
	return DiscoverLexContext(context.Background(), r, opts).ODs
}

// DiscoverLexContext is DiscoverLex under a context and LexOptions.Budget.
// Prefix pruning only ever consults strictly shorter LHS lists, so
// candidates sharing an LHS width never prune each other: each width
// level fans its validity checks out in parallel and replays the
// completed prefix in the sequential order before the next width starts.
func DiscoverLexContext(ctx context.Context, r *relation.Relation, opts LexOptions) LexResult {
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if r.Schema().Attr(c).Kind != relation.KindString {
				cols = append(cols, c)
			}
		}
	}
	maxWidth := opts.MaxWidth
	if maxWidth == 0 {
		maxWidth = 2
	}
	// Enumerate LHS lists (ordered, no repeats) up to maxWidth.
	var lhsLists [][]od.Marked
	var buildLHS func(cur []od.Marked)
	buildLHS = func(cur []od.Marked) {
		if len(cur) > 0 {
			lhsLists = append(lhsLists, append([]od.Marked(nil), cur...))
		}
		if len(cur) == maxWidth {
			return
		}
		for _, c := range cols {
			used := false
			for _, m := range cur {
				if m.Col == c {
					used = true
				}
			}
			if !used {
				buildLHS(append(cur, od.Marked{Col: c}))
			}
		}
	}
	buildLHS(nil)
	sort.SliceStable(lhsLists, func(i, j int) bool { return len(lhsLists[i]) < len(lhsLists[j]) })

	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "lexdisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("lhs-lists", len(lhsLists))
	defer run.End()
	checkSpan := run.Child(obs.KindPhase, "candidate-validation")

	// valid prefixes: map canonical rendering of (LHS prefix, RHS) pairs.
	type key struct {
		lhs string
		rhs string
	}
	validPrefix := map[key]bool{}
	names := r.Schema().Names()
	render := func(ms []od.Marked) string {
		s := ""
		for _, m := range ms {
			s += m.String(names) + ";"
		}
		return s
	}
	type cand struct {
		lhs []od.Marked
		rhs []od.Marked
	}
	var out []od.LexOD
	completed := 0
	var stopErr error
	for lo := 0; lo < len(lhsLists) && stopErr == nil; {
		// One width level: the run of LHS lists with equal length.
		hi := lo
		for hi < len(lhsLists) && len(lhsLists[hi]) == len(lhsLists[lo]) {
			hi++
		}
		// Collect the level's surviving candidates in sequential order;
		// pruning consults only strictly shorter prefixes, all settled.
		var cands []cand
		for _, lhs := range lhsLists[lo:hi] {
			for _, c := range cols {
				inLHS := false
				for _, m := range lhs {
					if m.Col == c {
						inLHS = true
					}
				}
				if inLHS {
					continue
				}
				for _, desc := range []bool{false, true} {
					rhs := []od.Marked{{Col: c, Desc: desc}}
					implied := false
					for plen := 1; plen < len(lhs); plen++ {
						if validPrefix[key{render(lhs[:plen]), render(rhs)}] {
							implied = true
							break
						}
					}
					if !implied {
						cands = append(cands, cand{lhs: lhs, rhs: rhs})
					}
				}
			}
		}
		hits, done, err := engine.MapBudget(pool, len(cands), lexBatch, func(i int) bool {
			return (od.LexOD{LHS: cands[i].lhs, RHS: cands[i].rhs, Schema: r.Schema()}).Holds(r)
		})
		completed += done
		for i := 0; i < done; i++ {
			if hits[i] {
				validPrefix[key{render(cands[i].lhs), render(cands[i].rhs)}] = true
				out = append(out, od.LexOD{LHS: cands[i].lhs, RHS: cands[i].rhs, Schema: r.Schema()})
			}
		}
		if err != nil {
			stopErr = err
		}
		lo = hi
	}
	checkSpan.SetAttr("completed", completed)
	checkSpan.End()
	reg.Counter("lexdisc.candidates.checked").Add(int64(completed))

	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	reg.Counter("lexdisc.ods.valid").Add(int64(len(out)))
	res := LexResult{ODs: out, Completed: completed}
	if stopErr != nil {
		res.Partial = true
		res.Reason = engine.Reason(stopErr)
		run.SetAttr("stop", res.Reason)
	}
	return res
}
