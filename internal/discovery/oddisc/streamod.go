package oddisc

import (
	"context"
	"math"
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/engine"
	"deptree/internal/relation"
)

// Incremental OD revalidation under appends. Validity of an OD is
// anti-monotone in the rows: a violating pair survives every append, so
// the valid set only SHRINKS as batches arrive and no re-discovery is
// ever needed — the maintenance problem is exactly "which held ODs did
// this batch break". Stream answers it locally: each column keeps its
// rows sorted by the order-preserving numKey, a batch folds in by one
// O(n+delta) merge, and because the old rows keep their relative order,
// every adjacent pair of OLD rows in the new order was already adjacent
// (and already checked) before. Only adjacent pairs involving an
// appended row can witness a fresh violation, so each held OD is
// re-decided by scanning those pairs alone — the order-compatibility
// neighbor check restricted to rows adjacent to the inserted ranks.
// Transitivity of the total preorder extends the adjacent-pair check to
// all pairs, exactly as in orderCompatible.
//
// The decomposition needs numKey order = Compare order, which a NaN
// breaks; a column that has seen a NaN is marked non-total and every
// held OD touching it falls back to the exact od.Holds pair logic.

// colStream is one column's incrementally maintained ordering.
type colStream struct {
	keys   []uint64 // per row, numKey
	sorted []int32  // rows ascending by key; stale once total is false
	total  bool
}

// Stream maintains the full valid OD set of one relation under appends.
// It is created over the relation's current rows (running a from-scratch
// discovery) and then advanced batch by batch: Ingest folds appended
// rows into the per-column orders, Revalidate drops the held ODs the
// uncommitted rows broke. The two are split so a cancelled Revalidate
// can be retried — Ingest is cheap and deterministic, and Revalidate
// does not commit on cancellation. Not safe for concurrent use.
type Stream struct {
	r       *relation.Relation
	cols    []int
	streams map[int]*colStream
	held    []od.OD // full valid set, sorted by String
	// dirtyRow is the first row no committed Revalidate has covered
	// (-1 when clean).
	dirtyRow int
}

// NewStream runs from-scratch discovery over r's current rows and wraps
// the result for incremental maintenance. A budget-truncated discovery
// returns (nil, res): a partial valid set cannot seed a maintenance
// invariant, so the caller must retry with a workable budget.
func NewStream(ctx context.Context, r *relation.Relation, opts Options) (*Stream, Result) {
	res := DiscoverContext(ctx, r, opts)
	if res.Partial {
		return nil, res
	}
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if r.Schema().Attr(c).Kind != relation.KindString {
				cols = append(cols, c)
			}
		}
	}
	s := &Stream{r: r, cols: cols, streams: make(map[int]*colStream, len(cols)), held: res.ODs, dirtyRow: -1}
	for _, c := range cols {
		s.streams[c] = buildColStream(r, c, 0, nil)
	}
	return s, res
}

// Held returns the current full valid OD set (not a minimal cover),
// sorted by String. Callers must not modify it.
func (s *Stream) Held() []od.OD { return s.held }

// buildColStream extends (or creates) a column's stream with rows
// [oldRows, r.Rows()): keys for the delta, then one merge pass.
func buildColStream(r *relation.Relation, col, oldRows int, cs *colStream) *colStream {
	n := r.Rows()
	if cs == nil {
		cs = &colStream{total: true}
	}
	vals := r.Column(col)
	for row := oldRows; row < n; row++ {
		v := vals[row]
		if v.IsNumeric() && math.IsNaN(v.Num()) {
			cs.total = false
		}
		cs.keys = append(cs.keys, numKey(v))
	}
	if !cs.total {
		return cs // sorted is stale and unused behind the totality gate
	}
	delta := make([]int32, 0, n-oldRows)
	for row := oldRows; row < n; row++ {
		delta = append(delta, int32(row))
	}
	sort.Slice(delta, func(a, b int) bool {
		ka, kb := cs.keys[delta[a]], cs.keys[delta[b]]
		if ka != kb {
			return ka < kb
		}
		return delta[a] < delta[b]
	})
	merged := make([]int32, 0, n)
	i, j := 0, 0
	for i < len(cs.sorted) && j < len(delta) {
		if cs.keys[cs.sorted[i]] <= cs.keys[delta[j]] {
			merged = append(merged, cs.sorted[i])
			i++
		} else {
			merged = append(merged, delta[j])
			j++
		}
	}
	merged = append(merged, cs.sorted[i:]...)
	merged = append(merged, delta[j:]...)
	cs.sorted = merged
	return cs
}

// Ingest folds rows [oldRows, r.Rows()) into the per-column orders and
// marks them dirty for the next Revalidate. It never fails and is not
// cancellable (one merge per column).
func (s *Stream) Ingest(oldRows int) {
	if oldRows >= s.r.Rows() {
		return
	}
	for _, c := range s.cols {
		s.streams[c] = buildColStream(s.r, c, oldRows, s.streams[c])
	}
	if s.dirtyRow < 0 || oldRows < s.dirtyRow {
		s.dirtyRow = oldRows
	}
}

// Revalidate re-decides every held OD against the ingested rows and
// drops the broken ones, returning the removed ODs. On cancellation it
// commits nothing and reports Partial with the engine's stop token; the
// rows stay dirty and a retry re-checks from the same state.
func (s *Stream) Revalidate(ctx context.Context) (removed []od.OD, res Result) {
	if s.dirtyRow < 0 {
		return nil, Result{ODs: s.held, Completed: len(s.held)}
	}
	// Adjacent pairs involving a dirty row, per LHS column, computed
	// lazily: only columns appearing as a held LHS pay the scan.
	pairIdx := make(map[int][]int32)
	pairsFor := func(col int) []int32 {
		if ps, ok := pairIdx[col]; ok {
			return ps
		}
		cs := s.streams[col]
		var ps []int32
		for i := 0; i+1 < len(cs.sorted); i++ {
			if int(cs.sorted[i]) >= s.dirtyRow || int(cs.sorted[i+1]) >= s.dirtyRow {
				ps = append(ps, int32(i))
			}
		}
		pairIdx[col] = ps
		return ps
	}
	kept := make([]od.OD, 0, len(s.held))
	for done, o := range s.held {
		if err := ctx.Err(); err != nil {
			return nil, Result{ODs: s.held, Partial: true, Reason: engine.Reason(err), Completed: done}
		}
		if s.survives(o, pairsFor) {
			kept = append(kept, o)
		} else {
			removed = append(removed, o)
		}
	}
	s.held = kept
	s.dirtyRow = -1
	return removed, Result{ODs: s.held, Completed: len(kept) + len(removed)}
}

// survives decides one held OD against the dirty rows: the localized
// adjacent-pair check when both columns are numKey-total, the exact pair
// logic otherwise.
func (s *Stream) survives(o od.OD, pairsFor func(col int) []int32) bool {
	a, b := s.streams[o.LHS[0].Col], s.streams[o.RHS[0].Col]
	if a == nil || b == nil || !a.total || !b.total {
		return o.Holds(s.r)
	}
	desc := o.RHS[0].Desc
	for _, i := range pairsFor(o.LHS[0].Col) {
		x, y := a.sorted[i], a.sorted[i+1]
		if a.keys[x] == a.keys[y] {
			if b.keys[x] != b.keys[y] {
				return false
			}
			continue
		}
		// x strictly precedes y on the LHS: the RHS must not regress.
		if desc {
			if b.keys[x] < b.keys[y] {
				return false
			}
		} else if b.keys[x] > b.keys[y] {
			return false
		}
	}
	return true
}
