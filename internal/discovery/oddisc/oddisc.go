// Package oddisc implements order dependency discovery (paper §4.2.3)
// after Langer & Naumann [67] and the set-based FASTOD of Szlichta et al.
// [99]: a level-wise traversal over marked-attribute candidates that
// reports the minimal valid ODs. The implementation covers the pairwise
// (single-attribute-per-side) core that both papers build on, with both
// ascending and descending marks, plus conditional pruning of ODs implied
// by already-found ones.
package oddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures OD discovery.
type Options struct {
	// Columns restricts the searched attributes (default: all numeric
	// columns; string columns order lexicographically, which is rarely
	// meaningful, so they are opt-in).
	Columns []int
	// Workers fans the pairwise O(n²) candidate checks out across
	// goroutines. 0 or 1 runs the exact sequential path; candidates are
	// enumerated and collected in a fixed order, so output is identical
	// for every worker count.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates the check to a prefix of the candidate ODs and
	// the Result reports Partial.
	Budget engine.Budget
	// Obs optionally receives the run's metrics (oddisc.* counters, the
	// candidate-check phase latency) and its run/phase spans. Nil is a
	// full no-op; observation never changes output.
	Obs *obs.Registry
}

// Result is an OD discovery outcome. A Partial result covers a
// deterministic prefix of the candidate enumeration order.
type Result struct {
	ODs []od.OD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// Completed is the number of candidate ODs checked.
	Completed int
}

// Discover returns the valid ODs of the forms A≤ → B≤ and A≤ → B≥ over
// the candidate columns (the A≥ variants are mirror images — t_α and t_β
// swap — and are omitted as implied).
func Discover(r *relation.Relation, opts Options) []od.OD {
	return DiscoverContext(context.Background(), r, opts).ODs
}

// DiscoverContext is Discover under a context and Options.Budget.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if r.Schema().Attr(c).Kind != relation.KindString {
				cols = append(cols, c)
			}
		}
	}
	var cands []od.OD
	for _, a := range cols {
		for _, b := range cols {
			if a == b {
				continue
			}
			for _, desc := range []bool{false, true} {
				cands = append(cands, od.OD{
					LHS:    []od.Marked{{Col: a}},
					RHS:    []od.Marked{{Col: b, Desc: desc}},
					Schema: r.Schema(),
				})
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "oddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("candidates", len(cands))
	defer run.End()

	checkSpan := run.Child(obs.KindPhase, "candidate-checks")
	checkTimer := reg.Histogram("oddisc.checks.seconds").Start()
	valid, done, err := engine.MapBudget(pool, len(cands), 0, func(i int) bool { return cands[i].Holds(r) })
	checkTimer()
	checkSpan.SetAttr("completed", done)
	checkSpan.End()
	reg.Counter("oddisc.candidates.checked").Add(int64(done))
	var out []od.OD
	for i := 0; i < done; i++ {
		if valid[i] {
			out = append(out, cands[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	reg.Counter("oddisc.ods.valid").Add(int64(len(out)))
	res := Result{ODs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// Minimal filters an OD list to those not implied by another listed OD via
// transitivity (A≤→B≤ and B≤→C≤ imply A≤→C≤). Axiomatic implication for
// ODs is co-NP-complete in general [101]; for the single-attribute ODs
// produced by Discover, transitive closure over the two mark polarities is
// sound and complete.
func Minimal(ods []od.OD) []od.OD {
	// Build a reachability graph over marked attributes: node = (col,
	// desc), edge per OD.
	type nd struct {
		col  int
		desc bool
	}
	adj := map[nd][]nd{}
	for _, o := range ods {
		if len(o.LHS) != 1 || len(o.RHS) != 1 {
			continue
		}
		u := nd{o.LHS[0].Col, o.LHS[0].Desc}
		v := nd{o.RHS[0].Col, o.RHS[0].Desc}
		adj[u] = append(adj[u], v)
		// The mirrored form: ¬u → ¬v.
		mu := nd{o.LHS[0].Col, !o.LHS[0].Desc}
		mv := nd{o.RHS[0].Col, !o.RHS[0].Desc}
		adj[mu] = append(adj[mu], mv)
	}
	reaches := func(from, to nd, skip [2]nd) bool {
		visited := map[nd]bool{from: true}
		stack := []nd{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[cur] {
				if cur == skip[0] && next == skip[1] {
					continue
				}
				if next == to {
					return true
				}
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var out []od.OD
	for _, o := range ods {
		if len(o.LHS) != 1 || len(o.RHS) != 1 {
			out = append(out, o)
			continue
		}
		u := nd{o.LHS[0].Col, o.LHS[0].Desc}
		v := nd{o.RHS[0].Col, o.RHS[0].Desc}
		if !reaches(u, v, [2]nd{u, v}) {
			out = append(out, o)
		}
	}
	return out
}
