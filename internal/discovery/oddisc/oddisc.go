// Package oddisc implements order dependency discovery (paper §4.2.3)
// after Langer & Naumann [67] and the set-based FASTOD of Szlichta et al.
// [99]: single-attribute-per-side candidates with both ascending and
// descending marks, plus conditional pruning of ODs implied by
// already-found ones. The default core is set-based through order
// compatibility (setod.go, per the Godfrey/Golab/Kargar/Srivastava
// errata note): FD ∧ order-compatibility decided over per-column rank
// arrays built once, against which the retained pairwise core
// (DiscoverPairwiseContext) serves as the exact oracle. Lexicographic
// OD discovery (lexdisc.go) is unchanged by the core choice.
package oddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/od"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures OD discovery.
type Options struct {
	// Columns restricts the searched attributes (default: all numeric
	// columns; string columns order lexicographically, which is rarely
	// meaningful, so they are opt-in).
	Columns []int
	// Workers fans the pairwise O(n²) candidate checks out across
	// goroutines. 0 or 1 runs the exact sequential path; candidates are
	// enumerated and collected in a fixed order, so output is identical
	// for every worker count.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates the check to a prefix of the candidate ODs and
	// the Result reports Partial.
	Budget engine.Budget
	// Obs optionally receives the run's metrics (oddisc.* counters, the
	// candidate-check phase latency) and its run/phase spans. Nil is a
	// full no-op; observation never changes output.
	Obs *obs.Registry
}

// Result is an OD discovery outcome. A Partial result covers a
// deterministic prefix of the candidate enumeration order.
type Result struct {
	ODs []od.OD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// Completed is the number of candidate ODs checked.
	Completed int
}

// Discover returns the valid ODs of the forms A≤ → B≤ and A≤ → B≥ over
// the candidate columns (the A≥ variants are mirror images — t_α and t_β
// swap — and are omitted as implied).
func Discover(r *relation.Relation, opts Options) []od.OD {
	return DiscoverContext(context.Background(), r, opts).ODs
}

// DiscoverContext is Discover under a context and Options.Budget. It
// runs the set-based core (setod.go): an O(n) neighbor fail-fast
// pre-pass per candidate, then — for survivors — a linear
// order-compatibility scan over lazily built per-column orders (at most
// one ascending sort per column for the whole run), with the exact
// od.Holds pair logic as the fallback for columns where a NaN breaks
// Compare totality. Output is identical to the retained pairwise core
// for every input and worker count.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	return discover(ctx, r, opts, true)
}

// DiscoverPairwiseContext is the retained pairwise core — one od.Holds
// check per candidate, no shared per-column preparation. It decides the
// same predicate as DiscoverContext and exists as the differential/fuzz
// oracle and the benchmark baseline for the set-based path.
func DiscoverPairwiseContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	return discover(ctx, r, opts, false)
}

func discover(ctx context.Context, r *relation.Relation, opts Options, setBased bool) Result {
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if r.Schema().Attr(c).Kind != relation.KindString {
				cols = append(cols, c)
			}
		}
	}
	var cands []od.OD
	for _, a := range cols {
		for _, b := range cols {
			if a == b {
				continue
			}
			for _, desc := range []bool{false, true} {
				cands = append(cands, od.OD{
					LHS:    []od.Marked{{Col: a}},
					RHS:    []od.Marked{{Col: b, Desc: desc}},
					Schema: r.Schema(),
				})
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "oddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("candidates", len(cands))
	defer run.End()

	check := func(i int) bool { return cands[i].Holds(r) }
	var orders *colOrders
	if setBased {
		// Column orders are built lazily inside the first candidate
		// check that survives the fail-fast pre-pass on each column, so
		// budget tasks remain candidate checks — exactly as in the
		// pairwise core — and MaxTasks truncation keeps the same
		// deterministic candidate-prefix semantics across both cores.
		orders = newColOrders(r, cols, reg)
		fallbacks := reg.Counter("oddisc.setod.fallbacks")
		check = func(i int) bool { return setHolds(r, cands[i], orders, fallbacks, true) }
	}

	checkSpan := run.Child(obs.KindPhase, "candidate-checks")
	checkTimer := reg.Histogram("oddisc.checks.seconds").Start()
	valid, done, err := engine.MapBudget(pool, len(cands), 0, check)
	checkTimer()
	checkSpan.SetAttr("completed", done)
	if orders != nil {
		checkSpan.SetAttr("columns-sorted", int(orders.built.Load()))
	}
	checkSpan.End()
	reg.Counter("oddisc.candidates.checked").Add(int64(done))
	var out []od.OD
	for i := 0; i < done; i++ {
		if valid[i] {
			out = append(out, cands[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	reg.Counter("oddisc.ods.valid").Add(int64(len(out)))
	res := Result{ODs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// Minimal reduces an OD list to a canonical cover: a subset with the
// same transitive closure (A≤→B≤ and B≤→C≤ imply A≤→C≤) from which no
// further OD can be dropped. Axiomatic implication for ODs is
// co-NP-complete in general [101]; for the single-attribute ODs produced
// by Discover, transitive closure over the two mark polarities is sound
// and complete.
//
// Redundant ODs are removed greedily, one at a time, re-checking
// implication against the REMAINING graph after each removal. Checking
// every OD against the full graph and dropping all redundant ones at
// once would be unsound on cycles: in a clique of order-equivalent
// columns every edge is individually implied by the others, so the
// simultaneous rule would delete the entire clique and lose its closure.
// The greedy order is the input order, so sorted discovery output yields
// a deterministic cover.
func Minimal(ods []od.OD) []od.OD {
	type nd struct {
		col  int
		desc bool
	}
	type edge struct{ u, v nd }
	edges := make([]edge, len(ods))
	simple := make([]bool, len(ods))
	enabled := make([]bool, len(ods))
	for i, o := range ods {
		enabled[i] = true
		if len(o.LHS) != 1 || len(o.RHS) != 1 {
			continue
		}
		simple[i] = true
		edges[i] = edge{
			nd{o.LHS[0].Col, o.LHS[0].Desc},
			nd{o.RHS[0].Col, o.RHS[0].Desc},
		}
	}
	// reaches runs a DFS over the enabled simple ODs' edges — each OD
	// contributes its edge and the mirrored form ¬u → ¬v (reverse the
	// tuple pair and both marks flip).
	reaches := func(from, to nd) bool {
		adj := map[nd][]nd{}
		for i, e := range edges {
			if !enabled[i] || !simple[i] {
				continue
			}
			adj[e.u] = append(adj[e.u], e.v)
			mu, mv := nd{e.u.col, !e.u.desc}, nd{e.v.col, !e.v.desc}
			adj[mu] = append(adj[mu], mv)
		}
		visited := map[nd]bool{from: true}
		stack := []nd{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[cur] {
				if next == to {
					return true
				}
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var out []od.OD
	for i, o := range ods {
		if !simple[i] {
			out = append(out, o)
			continue
		}
		enabled[i] = false
		if reaches(edges[i].u, edges[i].v) {
			continue // implied by the remaining cover; stays removed
		}
		enabled[i] = true
		out = append(out, o)
	}
	return out
}
