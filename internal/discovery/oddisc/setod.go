package oddisc

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"deptree/internal/deps/od"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Set-based OD checking through order compatibility, after the
// Godfrey/Golab/Kargar/Srivastava errata note on discovering ODs via
// order compatibility: a single-attribute OD A≤ → B≤ holds iff the FD
// A → B holds (rows equal on A are equal on B — both orders of an A-tie
// are LHS-ordered, so the RHS must be ordered both ways, i.e. equal) AND
// A≤ ~ B≤ are order compatible (B never decreases as A increases). The
// two halves factor over one ascending sort per COLUMN instead of one
// sort per CANDIDATE: colOrder precomputes each column's sorted row
// order and dense Compare-ranks once, and every candidate check is then
// a linear scan over the LHS column's sorted order.
//
// Two things keep the per-candidate cost at or below the pairwise
// core's. First, every check opens with the same O(n) neighbor
// fail-fast pre-pass od.Holds uses — a violating adjacent pair decides
// the candidate without touching any column order, and invalid ODs
// almost always fail between neighbors. Second, column orders are built
// lazily (one sync.Once per column), so a column only pays its sort
// once some candidate survives the pre-pass on it; refuted-everywhere
// columns are never sorted at all.
//
// The decomposition is only sound when Compare is a total preorder on
// both columns; a NaN breaks totality (Compare treats it as equal to
// every numeric), so candidates touching a non-total column fall back to
// the exact od.Holds pair logic — the same predicate, decided the slow
// way. Discovery output is therefore identical to the retained pairwise
// core (DiscoverPairwiseContext), which the differential and fuzz suites
// pin.

// colOrder is one column's precomputed ordering: rows sorted ascending
// by Compare, each row's dense rank in that order (Compare-equal values
// share a rank), and whether Compare is total on the column.
type colOrder struct {
	sorted []int32
	rank   []int32
	total  bool
}

// numKey maps a numeric-or-null Value to a uint64 whose unsigned order
// equals Compare order: nulls first (key 0), then floats via the
// order-preserving bits trick (non-negative → bits with the sign bit
// set; negative → complemented bits). Sound only on NaN-free columns —
// the totality scan rejects those before any key is taken — and -0 is
// normalized to +0 so key equality coincides with Compare equality.
func numKey(v relation.Value) uint64 {
	if v.IsNull() {
		return 0
	}
	f := v.Num()
	if f == 0 {
		f = 0 // collapse -0 onto +0; Compare treats them as equal
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// buildColOrder sorts one column and assigns dense ascending ranks.
// Numeric columns sort by uint64 keys (numKey) instead of repeated
// interface Compare calls — at a million rows that is the difference
// between a cheap integer sort and tens of millions of Value.Compare
// dispatches. Non-numeric columns keep the generic Compare sort.
func buildColOrder(r *relation.Relation, col int) *colOrder {
	n := r.Rows()
	vals := r.Column(col)
	co := &colOrder{sorted: make([]int32, n), rank: make([]int32, n), total: true}
	numeric := true
	for row := 0; row < n; row++ {
		co.sorted[row] = int32(row)
		v := vals[row]
		if v.IsNull() {
			continue
		}
		if !v.IsNumeric() {
			numeric = false
		} else if math.IsNaN(v.Num()) {
			co.total = false
		}
	}
	if !co.total {
		return co
	}
	if numeric {
		keys := make([]uint64, n)
		for row := 0; row < n; row++ {
			keys[row] = numKey(vals[row])
		}
		sort.Slice(co.sorted, func(a, b int) bool {
			return keys[co.sorted[a]] < keys[co.sorted[b]]
		})
		rank := int32(0)
		for i, row := range co.sorted {
			if i > 0 && keys[row] != keys[co.sorted[i-1]] {
				rank++
			}
			co.rank[row] = rank
		}
		return co
	}
	sort.SliceStable(co.sorted, func(a, b int) bool {
		return vals[co.sorted[a]].Compare(vals[co.sorted[b]]) < 0
	})
	rank := int32(0)
	for i, row := range co.sorted {
		if i > 0 && vals[row].Compare(vals[co.sorted[i-1]]) != 0 {
			rank++
		}
		co.rank[row] = rank
	}
	return co
}

// colOrders hands out per-column orderings on demand. Each column is
// built at most once (sync.Once), concurrently safe because candidate
// checks fan out across engine workers and two checks may race to the
// same column. Budget semantics are unchanged from the pairwise core:
// budget tasks are candidate checks, and a build simply rides inside
// the first check that needs its column.
type colOrders struct {
	r     *relation.Relation
	reg   *obs.Registry
	slots map[int]*colOrderSlot
	built atomic.Int64
}

type colOrderSlot struct {
	once sync.Once
	co   *colOrder
}

// newColOrders prepares lazy slots for the candidate columns. reg may
// be nil; when present each build's latency lands in the
// oddisc.setod.prep.seconds histogram.
func newColOrders(r *relation.Relation, cols []int, reg *obs.Registry) *colOrders {
	slots := make(map[int]*colOrderSlot, len(cols))
	for _, c := range cols {
		slots[c] = &colOrderSlot{}
	}
	return &colOrders{r: r, reg: reg, slots: slots}
}

// get returns the column's ordering, building it on first use. Columns
// outside the prepared candidate set return nil (callers fall back to
// the exact pair logic).
func (cs *colOrders) get(col int) *colOrder {
	s := cs.slots[col]
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		stop := cs.reg.Histogram("oddisc.setod.prep.seconds").Start()
		s.co = buildColOrder(cs.r, col)
		stop()
		cs.built.Add(1)
	})
	return s.co
}

// rhsViolated reports whether an RHS Compare outcome violates the RHS
// mark for an LHS-ordered pair: ascending marks forbid cmp > 0,
// descending marks forbid cmp < 0 (mirroring od.Holds' pair logic).
func rhsViolated(cmp int, desc bool) bool {
	if desc {
		return cmp < 0
	}
	return cmp > 0
}

// neighborViolation is the O(n) fail-fast pre-pass for an asc-LHS
// single-attribute candidate: scan consecutive rows in both
// orientations and report a witnessed violating pair. Exact regardless
// of Compare totality — a witnessed violation is a violation — so it
// runs before the totality gate.
func neighborViolation(av, bv []relation.Value, desc bool) bool {
	for i := 0; i+1 < len(av); i++ {
		ca := av[i].Compare(av[i+1])
		cb := bv[i].Compare(bv[i+1])
		if ca <= 0 && rhsViolated(cb, desc) {
			return true
		}
		if ca >= 0 && rhsViolated(-cb, desc) {
			return true
		}
	}
	return false
}

// setHolds decides one 1×1 asc-LHS candidate with the set-based
// machinery: optionally the neighbor pre-pass, then the
// order-compatibility scan over lazily built column orders, with the
// exact od.Holds pair logic as the fallback when a NaN broke totality.
// Discovery enables the pre-pass (candidates are mostly invalid, and
// invalid ones usually fail between neighbors); verification disables
// it (sample-mined candidates are mostly valid, so the pre-pass would
// be a second O(n) scan on top of the rank scan that decides them).
// fallbacks may be nil.
func setHolds(r *relation.Relation, o od.OD, orders *colOrders, fallbacks *obs.Counter, prepass bool) bool {
	l, rm := o.LHS[0], o.RHS[0]
	if prepass && neighborViolation(r.Column(l.Col), r.Column(rm.Col), rm.Desc) {
		return false
	}
	a, b := orders.get(l.Col), orders.get(rm.Col)
	if a == nil || b == nil || !a.total || !b.total {
		fallbacks.Inc()
		return o.Holds(r)
	}
	return orderCompatible(a, b, rm.Desc)
}

// Verifier decides candidate ODs against one fixed relation using the
// set-based machinery. Column orders are built lazily and memoized, so
// a batch of Holds calls pays one sort per touched column; the lazy
// slots are sync.Once-guarded, making a Verifier safe for concurrent
// use — the sample-then-verify driver fans verification out across
// engine workers.
type Verifier struct {
	r      *relation.Relation
	orders *colOrders
}

// NewVerifier prepares lazy column orders for every non-string column
// of r (the same candidate space Discover searches by default).
func NewVerifier(r *relation.Relation) *Verifier {
	var cols []int
	for c := 0; c < r.Cols(); c++ {
		if r.Schema().Attr(c).Kind != relation.KindString {
			cols = append(cols, c)
		}
	}
	return &Verifier{r: r, orders: newColOrders(r, cols, nil)}
}

// Holds decides one candidate OD against the verifier's relation.
func (v *Verifier) Holds(o od.OD) bool {
	if len(o.LHS) == 1 && len(o.RHS) == 1 && !o.LHS[0].Desc {
		return setHolds(v.r, o, v.orders, nil, false)
	}
	return o.Holds(v.r)
}

// orderCompatible decides A≤ → B≤ (desc=false) or A≤ → B≥ (desc=true)
// from the precomputed orders in one linear scan over a's sorted rows:
// within each equal-A group the B-rank must be constant (the FD half),
// and across groups the B-rank must be monotone in the marked direction
// (the order-compatibility half). Transitivity of the total preorder
// extends the adjacent-group check to all pairs.
func orderCompatible(a, b *colOrder, desc bool) bool {
	n := len(a.sorted)
	var prevB int32
	for i := 0; i < n; {
		row := a.sorted[i]
		ar, gb := a.rank[row], b.rank[row]
		j := i + 1
		for ; j < n; j++ {
			next := a.sorted[j]
			if a.rank[next] != ar {
				break
			}
			if b.rank[next] != gb {
				return false
			}
		}
		if i > 0 {
			if desc {
				if gb > prevB {
					return false
				}
			} else if gb < prevB {
				return false
			}
		}
		prevB = gb
		i = j
	}
	return true
}
