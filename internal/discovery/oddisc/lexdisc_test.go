package oddisc

import (
	"strings"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestDiscoverLexOnTable7(t *testing.T) {
	r := gen.Table7()
	ods := DiscoverLex(r, LexOptions{MaxWidth: 2})
	if len(ods) == 0 {
		t.Fatal("no lexicographic ODs discovered")
	}
	byString := map[string]bool{}
	for _, o := range ods {
		byString[o.String()] = true
		if !o.Holds(r) {
			t.Errorf("discovered LexOD %v does not hold", o)
		}
	}
	for _, want := range []string{
		"[nights≤] ~> [subtotal≤]",
		"[nights≤] ~> [avg/night≥]",
	} {
		if !byString[want] {
			t.Errorf("missing %q; got %v", want, ods)
		}
	}
}

func TestDiscoverLexPrefixPruning(t *testing.T) {
	// On Table 7 [nights≤] already orders subtotal; the 2-wide extensions
	// [nights≤, X] ~> [subtotal≤] are implied and must not be re-reported.
	r := gen.Table7()
	for _, o := range DiscoverLex(r, LexOptions{MaxWidth: 2}) {
		if len(o.LHS) == 2 && o.LHS[0].Col == r.Schema().MustIndex("nights") &&
			strings.Contains(o.String(), "~> [subtotal≤]") {
			t.Errorf("implied extension reported: %v", o)
		}
	}
}

func TestDiscoverLexNeedsCompositeLHS(t *testing.T) {
	// y follows (a, b) lexicographically but neither attribute alone.
	s := relation.NewSchema(
		relation.Attribute{Name: "a", Kind: relation.KindInt},
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "y", Kind: relation.KindInt},
	)
	r := relation.MustFromRows("lx", s, [][]relation.Value{
		{relation.Int(1), relation.Int(2), relation.Int(10)},
		{relation.Int(1), relation.Int(5), relation.Int(20)},
		{relation.Int(2), relation.Int(1), relation.Int(30)},
		{relation.Int(2), relation.Int(4), relation.Int(40)},
	})
	ods := DiscoverLex(r, LexOptions{MaxWidth: 2})
	found := false
	for _, o := range ods {
		if o.String() == "[a≤,b≤] ~> [y≤]" {
			found = true
		}
		if o.String() == "[b≤] ~> [y≤]" {
			t.Error("b alone does not order y")
		}
	}
	if !found {
		t.Errorf("[a≤,b≤] ~> [y≤] missing: %v", ods)
	}
}
