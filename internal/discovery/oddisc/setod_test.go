package oddisc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deptree/internal/deps/od"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// odStrings renders a result for order-insensitive-free comparison (the
// output is already sorted by String).
func odStrings(ods []od.OD) []string {
	out := make([]string, len(ods))
	for i, o := range ods {
		out[i] = o.String()
	}
	return out
}

func sameODs(t *testing.T, label string, set, pair Result) {
	t.Helper()
	a, b := odStrings(set.ODs), odStrings(pair.ODs)
	if len(a) != len(b) {
		t.Fatalf("%s: set-based found %d ODs, pairwise %d:\n set=%v\n pair=%v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: OD %d differs: set=%q pair=%q", label, i, a[i], b[i])
		}
	}
	if set.Partial != pair.Partial || set.Completed != pair.Completed {
		t.Fatalf("%s: partials diverge: set=(%v,%d) pair=(%v,%d)",
			label, set.Partial, set.Completed, pair.Partial, pair.Completed)
	}
}

// nastyRelation builds a small numeric relation mixing NaN, ±Inf, nulls
// and ties — every shape that stresses Compare totality and the
// set-based FD/order-compatibility decomposition.
func nastyRelation(rng *rand.Rand, rows, cols int) *relation.Relation {
	attrs := make([]relation.Attribute, cols)
	for c := range attrs {
		attrs[c] = relation.Attribute{Name: fmt.Sprintf("c%d", c), Kind: relation.KindFloat}
	}
	r := relation.New("nasty", relation.NewSchema(attrs...))
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0, 1, -1, 2.5}
	for i := 0; i < rows; i++ {
		row := make([]relation.Value, cols)
		for c := range row {
			switch rng.Intn(10) {
			case 0:
				row[c] = relation.Null(relation.KindFloat)
			case 1, 2, 3:
				row[c] = relation.Float(specials[rng.Intn(len(specials))])
			default:
				row[c] = relation.Float(float64(rng.Intn(5)))
			}
		}
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}

// TestSetBasedMatchesPairwiseOracle is the property test pinning the
// set-based core to the retained pairwise oracle: identical output on
// NaN/±Inf/null mixes, for every worker count, including the soundness
// check that every reported OD actually holds.
func TestSetBasedMatchesPairwiseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		rows := 2 + rng.Intn(30)
		cols := 2 + rng.Intn(4)
		r := nastyRelation(rng, rows, cols)
		for _, workers := range []int{1, 2, 4, 7} {
			opts := Options{Workers: workers}
			set := DiscoverContext(context.Background(), r, opts)
			pair := DiscoverPairwiseContext(context.Background(), r, opts)
			sameODs(t, fmt.Sprintf("trial %d workers %d", trial, workers), set, pair)
			for _, o := range set.ODs {
				if !o.Holds(r) {
					t.Fatalf("trial %d: set-based emitted invalid OD %v", trial, o)
				}
			}
		}
	}
}

// TestSetBasedMatchesPairwiseOnCorpora runs both cores over the seeded
// generator corpora the differential harness uses.
func TestSetBasedMatchesPairwiseOnCorpora(t *testing.T) {
	corpora := map[string]*relation.Relation{
		"table7": gen.Table7(),
		"series": gen.Series(80, -10, 10, 0.3, 7),
		"hotels": gen.Hotels(gen.HotelConfig{Rows: 60, Seed: 3, ErrorRate: 0.05}),
	}
	for name, r := range corpora {
		for _, workers := range []int{1, 4} {
			set := DiscoverContext(context.Background(), r, Options{Workers: workers})
			pair := DiscoverPairwiseContext(context.Background(), r, Options{Workers: workers})
			sameODs(t, fmt.Sprintf("%s workers %d", name, workers), set, pair)
		}
	}
}

// FuzzSetODAgainstPairwise drives the two cores with fuzzer-shaped
// float relations: bytes decode to a column-major float matrix with
// NaN/±Inf/null escapes.
func FuzzSetODAgainstPairwise(f *testing.F) {
	f.Add([]byte{2, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{3, 0, 0, 0, 255, 254, 253, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cols := 2 + int(data[0])%3
		data = data[1:]
		rows := len(data) / cols
		if rows < 2 {
			return
		}
		if rows > 40 {
			rows = 40
		}
		attrs := make([]relation.Attribute, cols)
		for c := range attrs {
			attrs[c] = relation.Attribute{Name: fmt.Sprintf("c%d", c), Kind: relation.KindFloat}
		}
		r := relation.New("fuzz", relation.NewSchema(attrs...))
		for i := 0; i < rows; i++ {
			row := make([]relation.Value, cols)
			for c := range row {
				b := data[i*cols+c]
				switch b {
				case 255:
					row[c] = relation.Float(math.NaN())
				case 254:
					row[c] = relation.Float(math.Inf(1))
				case 253:
					row[c] = relation.Float(math.Inf(-1))
				case 252:
					row[c] = relation.Null(relation.KindFloat)
				default:
					row[c] = relation.Float(float64(b % 7))
				}
			}
			if err := r.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 3} {
			set := DiscoverContext(context.Background(), r, Options{Workers: workers})
			pair := DiscoverPairwiseContext(context.Background(), r, Options{Workers: workers})
			sameODs(t, fmt.Sprintf("workers %d", workers), set, pair)
		}
	})
}
