package oddisc

import (
	"testing"

	"deptree/internal/gen"
)

func TestDiscoverOnTable7(t *testing.T) {
	r := gen.Table7()
	ods := Discover(r, Options{})
	if len(ods) == 0 {
		t.Fatal("no ODs discovered on the monotone Table 7")
	}
	byString := map[string]bool{}
	for _, o := range ods {
		byString[o.String()] = true
		if !o.Holds(r) {
			t.Errorf("discovered OD %v does not hold", o)
		}
	}
	// The paper's od1 (nights≤ → avg/night≥) and ofd1-as-OD
	// (subtotal≤ → taxes≤) must be found.
	for _, want := range []string{
		"nights≤ -> avg/night≥",
		"subtotal≤ -> taxes≤",
		"nights≤ -> subtotal≤",
	} {
		if !byString[want] {
			t.Errorf("missing OD %q; got %v", want, ods)
		}
	}
}

func TestDiscoverRejectsNonOrder(t *testing.T) {
	// Random series with violations: seq → value must not be reported.
	r := gen.Series(50, -5, 5, 0.5, 77)
	for _, o := range Discover(r, Options{}) {
		if o.String() == "seq≤ -> value≤" || o.String() == "seq≤ -> value≥" {
			t.Errorf("non-monotone OD reported: %v", o)
		}
	}
}

func TestMinimalPrunesTransitive(t *testing.T) {
	r := gen.Table7()
	ods := Discover(r, Options{})
	minimal := Minimal(ods)
	if len(minimal) >= len(ods) {
		t.Errorf("Minimal did not prune: %d -> %d", len(ods), len(minimal))
	}
	// All pruned ODs still hold (soundness of transitive implication).
	for _, o := range ods {
		if !o.Holds(r) {
			t.Errorf("OD %v invalid", o)
		}
	}
}

// TestMinimalKeepsCliqueClosure: in a clique of mutually
// order-equivalent columns every OD is individually implied by the
// others, so a cover that drops all simultaneously-redundant ODs would
// delete the whole clique and lose its closure. The greedy cover must
// keep a cycle that still implies every discovered OD.
func TestMinimalKeepsCliqueClosure(t *testing.T) {
	// Three mutually order-equivalent columns (ord=3, no tail noise).
	r := gen.LargeWide(300, 3, 0, 1)
	ods := Discover(r, Options{})
	if len(ods) != 6 {
		t.Fatalf("expected the 6 ODs of a 3-clique, got %v", ods)
	}
	minimal := Minimal(ods)
	if len(minimal) == 0 {
		t.Fatal("canonical cover is empty: clique closure lost")
	}
	// Closure preservation: every discovered OD is reachable through the
	// cover's edges (each edge also contributes its mark-flipped mirror).
	type nd struct {
		col  int
		desc bool
	}
	adj := map[nd][]nd{}
	for _, o := range minimal {
		u, v := nd{o.LHS[0].Col, o.LHS[0].Desc}, nd{o.RHS[0].Col, o.RHS[0].Desc}
		adj[u] = append(adj[u], v)
		adj[nd{u.col, !u.desc}] = append(adj[nd{u.col, !u.desc}], nd{v.col, !v.desc})
	}
	reaches := func(from, to nd) bool {
		visited := map[nd]bool{from: true}
		stack := []nd{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[cur] {
				if next == to {
					return true
				}
				if !visited[next] {
					visited[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	for _, o := range ods {
		u, v := nd{o.LHS[0].Col, o.LHS[0].Desc}, nd{o.RHS[0].Col, o.RHS[0].Desc}
		if !reaches(u, v) {
			t.Errorf("cover %v does not imply discovered OD %v", minimal, o)
		}
	}
}

func TestColumnsOption(t *testing.T) {
	r := gen.Table7()
	s := r.Schema()
	ods := Discover(r, Options{Columns: []int{s.MustIndex("nights"), s.MustIndex("subtotal")}})
	for _, o := range ods {
		for _, m := range append(o.LHS, o.RHS...) {
			if m.Col != s.MustIndex("nights") && m.Col != s.MustIndex("subtotal") {
				t.Errorf("OD %v uses a column outside the restriction", o)
			}
		}
	}
}
