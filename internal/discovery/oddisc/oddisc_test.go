package oddisc

import (
	"testing"

	"deptree/internal/gen"
)

func TestDiscoverOnTable7(t *testing.T) {
	r := gen.Table7()
	ods := Discover(r, Options{})
	if len(ods) == 0 {
		t.Fatal("no ODs discovered on the monotone Table 7")
	}
	byString := map[string]bool{}
	for _, o := range ods {
		byString[o.String()] = true
		if !o.Holds(r) {
			t.Errorf("discovered OD %v does not hold", o)
		}
	}
	// The paper's od1 (nights≤ → avg/night≥) and ofd1-as-OD
	// (subtotal≤ → taxes≤) must be found.
	for _, want := range []string{
		"nights≤ -> avg/night≥",
		"subtotal≤ -> taxes≤",
		"nights≤ -> subtotal≤",
	} {
		if !byString[want] {
			t.Errorf("missing OD %q; got %v", want, ods)
		}
	}
}

func TestDiscoverRejectsNonOrder(t *testing.T) {
	// Random series with violations: seq → value must not be reported.
	r := gen.Series(50, -5, 5, 0.5, 77)
	for _, o := range Discover(r, Options{}) {
		if o.String() == "seq≤ -> value≤" || o.String() == "seq≤ -> value≥" {
			t.Errorf("non-monotone OD reported: %v", o)
		}
	}
}

func TestMinimalPrunesTransitive(t *testing.T) {
	r := gen.Table7()
	ods := Discover(r, Options{})
	minimal := Minimal(ods)
	if len(minimal) >= len(ods) {
		t.Errorf("Minimal did not prune: %d -> %d", len(ods), len(minimal))
	}
	// All pruned ODs still hold (soundness of transitive implication).
	for _, o := range ods {
		if !o.Holds(r) {
			t.Errorf("OD %v invalid", o)
		}
	}
}

func TestColumnsOption(t *testing.T) {
	r := gen.Table7()
	s := r.Schema()
	ods := Discover(r, Options{Columns: []int{s.MustIndex("nights"), s.MustIndex("subtotal")}})
	for _, o := range ods {
		for _, m := range append(o.LHS, o.RHS...) {
			if m.Col != s.MustIndex("nights") && m.Col != s.MustIndex("subtotal") {
				t.Errorf("OD %v uses a column outside the restriction", o)
			}
		}
	}
}
