package mvddisc

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestDiscoverTextbookMVD(t *testing.T) {
	// course ->> book independent of lecturer.
	s := relation.Strings("course", "book", "lecturer")
	r := relation.New("courses", s)
	for _, course := range []string{"AHA", "OSO"} {
		for _, book := range []string{"S", "N"} {
			for _, lect := range []string{"John", "Will"} {
				_ = r.Append([]relation.Value{
					relation.String(course), relation.String(book), relation.String(lect),
				})
			}
		}
	}
	mvds := Discover(r, Options{MaxLHS: 1})
	found := false
	for _, m := range mvds {
		if m.LHS == 1 && (m.RHS == 2 || m.RHS == 4) { // course ->> book (or lecturer)
			found = true
		}
		if !m.Holds(r) {
			t.Errorf("discovered MVD %v does not hold", m)
		}
	}
	if !found {
		t.Errorf("course ->> book not discovered: %v", mvds)
	}
}

func TestDiscoverOnTable5(t *testing.T) {
	// mvd1: address, rate ->> region holds on r5 (paper §2.6.1).
	r := gen.Table5()
	mvds := Discover(r, Options{MaxLHS: 2})
	for _, m := range mvds {
		if !m.Holds(r) {
			t.Errorf("discovered MVD %v does not hold", m)
		}
	}
}

func TestAllDiscoveredHold(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := gen.Categorical(20, []int{2, 2, 2, 2}, seed)
		for _, m := range Discover(r, Options{MaxLHS: 2}) {
			if !m.Holds(r) {
				t.Fatalf("seed %d: MVD %v does not hold", seed, m)
			}
		}
	}
}

func TestComplementNotDoubleReported(t *testing.T) {
	s := relation.Strings("x", "y", "z")
	r := relation.MustFromRows("c", s, [][]relation.Value{
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("2"), relation.String("p")},
		{relation.String("a"), relation.String("1"), relation.String("q")},
		{relation.String("a"), relation.String("2"), relation.String("q")},
	})
	mvds := Discover(r, Options{MaxLHS: 1})
	// x ->> y and x ->> z are the same MVD; only one form is reported.
	count := 0
	for _, m := range mvds {
		if m.LHS == 1 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("complement pair reported %d times: %v", count, mvds)
	}
}

func TestTooFewAttributes(t *testing.T) {
	r := gen.Categorical(10, []int{2, 2}, 1)
	if got := Discover(r, Options{}); got != nil {
		t.Errorf("2-attribute relation has no interesting MVDs: %v", got)
	}
}

func TestAMVDDiscoveryOption(t *testing.T) {
	// An incomplete product: exact discovery rejects x ->> y, the ε-MVD
	// search [59] admits it.
	s := relation.Strings("x", "y", "z")
	r := relation.MustFromRows("a", s, [][]relation.Value{
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("2"), relation.String("p")},
		{relation.String("a"), relation.String("1"), relation.String("q")},
	})
	exact := Discover(r, Options{MaxLHS: 1})
	for _, m := range exact {
		if m.LHS == 1 {
			t.Errorf("exact discovery accepted %v on the incomplete product", m)
		}
	}
	approx := Discover(r, Options{MaxLHS: 1, MaxSpurious: 0.25})
	found := false
	for _, m := range approx {
		if m.LHS == 1 {
			found = true
			if got := m.SpuriousRatio(r); got > 0.25 {
				t.Errorf("AMVD %v ratio %v exceeds budget", m, got)
			}
		}
	}
	if !found {
		t.Errorf("ε=0.25 should admit x ->> y: %v", approx)
	}
}
