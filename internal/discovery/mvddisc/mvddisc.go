// Package mvddisc implements MVD discovery after Savnik & Flach [82]
// (paper §2.6.3): a search of the hypothesis space of MVDs X ↠ Y ordered
// by the generalization relation. The top-down strategy enumerates
// candidate LHS sets level-wise from the most general (smallest X) to more
// specific ones, pruning specializations of already-valid MVDs (every MVD
// implied by a found one is skipped), and validates candidates against the
// relation.
package mvddisc

import (
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/mvd"
	"deptree/internal/relation"
)

// Options configures MVD discovery.
type Options struct {
	// MaxLHS bounds |X| (default 2).
	MaxLHS int
	// MaxSpurious turns the search into AMVD discovery [59] (§2.6.6): an
	// MVD is accepted when its spurious-tuple ratio is ≤ the threshold.
	// 0 keeps exact MVD discovery.
	MaxSpurious float64
}

func (o Options) withDefaults() Options {
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	return o
}

// Discover returns valid, non-trivial MVDs X ↠ Y with |X| ≤ MaxLHS,
// reporting only the most general ones: an MVD is skipped when it is
// implied by reflexivity/augmentation from a smaller found one
// (X' ⊆ X with Y equal modulo the extra X attributes), or when its
// complement form was already reported (X ↠ Y ≡ X ↠ R−X−Y).
func Discover(r *relation.Relation, opts Options) []mvd.MVD {
	opts = opts.withDefaults()
	n := r.Cols()
	if n < 3 || r.Rows() == 0 {
		return nil // an MVD needs X, Y, Z all nonempty to be interesting
	}
	full := attrset.Full(n)
	var found []mvd.MVD
	reported := map[[2]attrset.Set]bool{}

	isImplied := func(x, y attrset.Set) bool {
		// Complement symmetry: X ↠ Y ⟺ X ↠ Z.
		z := full.Minus(x).Minus(y)
		if reported[[2]attrset.Set{x, y}] || reported[[2]attrset.Set{x, z}] {
			return true
		}
		// Augmentation from a more general found MVD: X' ↠ Y' with
		// X' ⊆ X and Y = Y' − X (the extra LHS attributes absorbed).
		for _, m := range found {
			if m.LHS.SubsetOf(x) {
				if m.RHS.Minus(x) == y || full.Minus(m.LHS).Minus(m.RHS).Minus(x) == y {
					return true
				}
			}
		}
		return false
	}

	var lhsSets []attrset.Set
	full.Subsets(func(s attrset.Set) {
		if s.Len() >= 1 && s.Len() <= opts.MaxLHS && n-s.Len() >= 2 {
			lhsSets = append(lhsSets, s)
		}
	})
	sort.Slice(lhsSets, func(i, j int) bool {
		if lhsSets[i].Len() != lhsSets[j].Len() {
			return lhsSets[i].Len() < lhsSets[j].Len()
		}
		return lhsSets[i] < lhsSets[j]
	})
	for _, x := range lhsSets {
		rest := full.Minus(x)
		// Enumerate Y ⊂ rest, nonempty, proper (Z nonempty), canonical form
		// (Y containing the smallest attribute of rest) to halve the space.
		first := rest.First()
		var ys []attrset.Set
		rest.ProperNonemptySubsets(func(y attrset.Set) {
			if y.Has(first) {
				ys = append(ys, y)
			}
		})
		sort.Slice(ys, func(i, j int) bool {
			if ys[i].Len() != ys[j].Len() {
				return ys[i].Len() < ys[j].Len()
			}
			return ys[i] < ys[j]
		})
		for _, y := range ys {
			if isImplied(x, y) {
				continue
			}
			m := mvd.MVD{LHS: x, RHS: y, NumAttrs: n, Schema: r.Schema()}
			if m.SpuriousRatio(r) <= opts.MaxSpurious {
				found = append(found, m)
				reported[[2]attrset.Set{x, y}] = true
			}
		}
	}
	return found
}
