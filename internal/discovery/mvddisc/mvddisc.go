// Package mvddisc implements MVD discovery after Savnik & Flach [82]
// (paper §2.6.3): a search of the hypothesis space of MVDs X ↠ Y ordered
// by the generalization relation. The top-down strategy enumerates
// candidate LHS sets level-wise from the most general (smallest X) to more
// specific ones, pruning specializations of already-valid MVDs (every MVD
// implied by a found one is skipped), and validates candidates against the
// relation.
package mvddisc

import (
	"context"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/mvd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures MVD discovery.
type Options struct {
	// MaxLHS bounds |X| (default 2).
	MaxLHS int
	// MaxSpurious turns the search into AMVD discovery [59] (§2.6.6): an
	// MVD is accepted when its spurious-tuple ratio is ≤ the threshold.
	// 0 keeps exact MVD discovery.
	MaxSpurious float64
	// Workers fans candidate validation across goroutines; output is
	// identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the (X, Y) candidate enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	return o
}

// Result is an MVD discovery outcome; a Partial run covers a
// deterministic prefix of the (X, Y) candidate enumeration.
type Result struct {
	MVDs []mvd.MVD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of candidates validated.
	Completed int
}

// batch is the fixed MapBudget stripe width over Y candidates within one
// LHS group. Fixed so the truncation point is worker-independent.
const batch = 8

// Discover returns valid, non-trivial MVDs X ↠ Y with |X| ≤ MaxLHS,
// reporting only the most general ones: an MVD is skipped when it is
// implied by reflexivity/augmentation from a smaller found one
// (X' ⊆ X with Y equal modulo the extra X attributes), or when its
// complement form was already reported (X ↠ Y ≡ X ↠ R−X−Y).
func Discover(r *relation.Relation, opts Options) []mvd.MVD {
	return DiscoverContext(context.Background(), r, opts).MVDs
}

// DiscoverContext is Discover under a context and Options.Budget. LHS
// groups run sequentially (found MVDs prune later, more specific
// candidates) while validation within one group fans out: the canonical-Y
// form (Y always contains rest.First()) means no same-group candidate can
// imply another — the complement Z lacks rest.First() and is never
// enumerated, and augmentation from a same-X find reduces to the
// identical candidate — so the parallel filter-then-validate pass is
// output-identical to the sequential scan.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	n := r.Cols()
	if n < 3 || r.Rows() == 0 {
		return Result{} // an MVD needs X, Y, Z all nonempty to be interesting
	}
	full := attrset.Full(n)
	var found []mvd.MVD
	reported := map[[2]attrset.Set]bool{}

	isImplied := func(x, y attrset.Set) bool {
		// Complement symmetry: X ↠ Y ⟺ X ↠ Z.
		z := full.Minus(x).Minus(y)
		if reported[[2]attrset.Set{x, y}] || reported[[2]attrset.Set{x, z}] {
			return true
		}
		// Augmentation from a more general found MVD: X' ↠ Y' with
		// X' ⊆ X and Y = Y' − X (the extra LHS attributes absorbed).
		for _, m := range found {
			if m.LHS.SubsetOf(x) {
				if m.RHS.Minus(x) == y || full.Minus(m.LHS).Minus(m.RHS).Minus(x) == y {
					return true
				}
			}
		}
		return false
	}

	var lhsSets []attrset.Set
	full.Subsets(func(s attrset.Set) {
		if s.Len() >= 1 && s.Len() <= opts.MaxLHS && n-s.Len() >= 2 {
			lhsSets = append(lhsSets, s)
		}
	})
	sort.Slice(lhsSets, func(i, j int) bool {
		if lhsSets[i].Len() != lhsSets[j].Len() {
			return lhsSets[i].Len() < lhsSets[j].Len()
		}
		return lhsSets[i] < lhsSets[j]
	})

	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "mvddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("lhs-groups", len(lhsSets))
	defer run.End()
	searchSpan := run.Child(obs.KindPhase, "candidate-validation")

	completed := 0
	var stopErr error
	for _, x := range lhsSets {
		rest := full.Minus(x)
		// Enumerate Y ⊂ rest, nonempty, proper (Z nonempty), canonical form
		// (Y containing the smallest attribute of rest) to halve the space.
		first := rest.First()
		var ys []attrset.Set
		rest.ProperNonemptySubsets(func(y attrset.Set) {
			if y.Has(first) {
				ys = append(ys, y)
			}
		})
		sort.Slice(ys, func(i, j int) bool {
			if ys[i].Len() != ys[j].Len() {
				return ys[i].Len() < ys[j].Len()
			}
			return ys[i] < ys[j]
		})
		// Filter against cross-group implication first; the surviving
		// candidates are mutually independent and validate in parallel.
		var cands []attrset.Set
		for _, y := range ys {
			if !isImplied(x, y) {
				cands = append(cands, y)
			}
		}
		hits, done, err := engine.MapBudget(pool, len(cands), batch, func(i int) bool {
			m := mvd.MVD{LHS: x, RHS: cands[i], NumAttrs: n, Schema: r.Schema()}
			return m.SpuriousRatio(r) <= opts.MaxSpurious
		})
		completed += done
		for i := 0; i < done; i++ {
			if hits[i] {
				found = append(found, mvd.MVD{LHS: x, RHS: cands[i], NumAttrs: n, Schema: r.Schema()})
				reported[[2]attrset.Set{x, cands[i]}] = true
			}
		}
		if err != nil {
			stopErr = err
			break
		}
	}
	searchSpan.SetAttr("completed", completed)
	searchSpan.End()
	reg.Counter("mvddisc.candidates.checked").Add(int64(completed))
	reg.Counter("mvddisc.mvds.valid").Add(int64(len(found)))
	res := Result{MVDs: found, Completed: completed}
	if stopErr != nil {
		res.Partial = true
		res.Reason = engine.Reason(stopErr)
		run.SetAttr("stop", res.Reason)
	}
	return res
}
