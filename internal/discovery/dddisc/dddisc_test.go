package dddisc

import (
	"testing"

	"deptree/internal/deps/dd"
	"deptree/internal/gen"
)

func TestDiscoverOnTable6(t *testing.T) {
	// Target: address(≤5). The paper's dd1 uses name(≤1), street(≤5) —
	// single-attribute discovery should find valid thresholds for name and
	// street among others.
	r := gen.Table6()
	s := r.Schema()
	opts := Options{RHS: dd.F(s, "address", dd.OpLe, 5)}
	dds := Discover(r, opts)
	if len(dds) == 0 {
		t.Fatal("no DDs discovered")
	}
	for _, d := range dds {
		if !d.Holds(r) {
			t.Errorf("discovered DD %v does not hold", d)
		}
		if _, conf := d.SupportConfidence(r); conf != 1 {
			t.Errorf("DD %v confidence %v != 1", d, conf)
		}
	}
}

func TestThresholdsAreMaximal(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	opts := Options{RHS: dd.F(s, "address", dd.OpLe, 5), MaxThresholds: 16}
	for _, d := range Discover(r, opts) {
		// Raising the threshold to the next candidate must break validity
		// or the DD was not maximal. Compare against a DD with a slightly
		// larger threshold from the candidate pool: simply check +1.
		looser := d
		looser.LHS = dd.Pattern{{
			Col:       d.LHS[0].Col,
			Metric:    d.LHS[0].Metric,
			Op:        dd.OpLe,
			Threshold: d.LHS[0].Threshold + 1,
		}}
		if _, conf := looser.SupportConfidence(r); conf == 1 {
			// Permissible when the next *observed* distance is beyond +1;
			// verify via holding: the looser DD must not also hold with
			// support strictly greater, otherwise the choice was not
			// maximal among candidates.
			sTight, _ := d.SupportConfidence(r)
			sLoose, _ := looser.SupportConfidence(r)
			if sLoose > sTight {
				t.Errorf("DD %v not maximal: +1 still valid with more support", d)
			}
		}
	}
}

func TestMinSupport(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	opts := Options{RHS: dd.F(s, "address", dd.OpLe, 5), MinSupport: 3}
	for _, d := range Discover(r, opts) {
		if support, _ := d.SupportConfidence(r); support < 3 {
			t.Errorf("DD %v support %d < 3", d, support)
		}
	}
}

func TestParameterFreeThresholds(t *testing.T) {
	dists := []float64{0, 1, 1, 2, 5, 9}
	ts := quantileThresholds(dists, 4)
	if len(ts) == 0 || ts[0] != 0 || ts[len(ts)-1] != 9 {
		t.Errorf("thresholds = %v, want to span [0,9]", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("thresholds not strictly increasing: %v", ts)
		}
	}
	if got := quantileThresholds(nil, 4); got != nil {
		t.Errorf("empty distances: %v", got)
	}
}

func TestTinyRelation(t *testing.T) {
	r := gen.Table6().Select(func(i int) bool { return i == 0 })
	opts := Options{RHS: dd.F(gen.Table6().Schema(), "address", dd.OpLe, 5)}
	if got := Discover(r, opts); got != nil {
		t.Errorf("single row: %v", got)
	}
}

func TestSyntheticDuplicates(t *testing.T) {
	// With near-duplicates injected, name similarity should imply region
	// similarity at some threshold.
	r := gen.Hotels(gen.HotelConfig{Rows: 60, Seed: 12, DuplicateRate: 0.3})
	s := r.Schema()
	opts := Options{
		RHS:     dd.F(s, "region", dd.OpLe, 6),
		LHSCols: []int{s.MustIndex("address")},
	}
	dds := Discover(r, opts)
	if len(dds) == 0 {
		t.Fatal("no DD for address → region similarity")
	}
	for _, d := range dds {
		if !d.Holds(r) {
			t.Errorf("DD %v does not hold", d)
		}
	}
}
