// Package dddisc implements differential dependency discovery after Song &
// Chen [86],[88],[89] (paper §3.3.3): given a target RHS differential
// function, search the left-hand-side threshold space for minimal DDs with
// full confidence and sufficient support.
//
// Candidate thresholds are determined from the data in the parameter-free
// style of [88]: the observed pairwise distances on each attribute form the
// candidate set, so no distance thresholds need to be specified manually —
// the aspect the paper highlights as the key difficulty of metric
// dependencies (§1.4.2).
package dddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/dd"
	"deptree/internal/engine"
	"deptree/internal/metric"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures DD discovery.
type Options struct {
	// RHS is the target differential function φ[Y].
	RHS dd.DiffFunc
	// LHSCols are the attributes considered for φ[X] (defaults to all
	// except the RHS column).
	LHSCols []int
	// MinSupport is the minimum number of pairs matching φ[X] (default 1).
	MinSupport int
	// MaxThresholds caps the candidate thresholds per attribute, taken as
	// quantiles of the observed distance distribution (default 8).
	MaxThresholds int
	// Workers fans the per-attribute searches across goroutines; output
	// is identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the candidate attributes.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	if o.MaxThresholds == 0 {
		o.MaxThresholds = 8
	}
	return o
}

// Result is a DD discovery outcome; Partial runs cover a deterministic
// prefix of the candidate-attribute order.
type Result struct {
	DDs []dd.DD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of candidate attributes searched.
	Completed int
}

// batch is the fixed MapBudget stripe width: each task is one attribute's
// full O(n²) distance scan plus threshold search — heavy, so stripes stay
// narrow. Fixed so the truncation point is worker-independent.
const batch = 2

// Discover returns DDs φ[X] → φ[Y] with confidence 1 and support ≥
// MinSupport, where every LHS function is of the "similar" form
// A(≤ threshold) and thresholds are maximal: raising any threshold to the
// next candidate would break the dependency or its confidence. Maximal
// thresholds make the DD most general, mirroring the minimality notion of
// [86] (a DD with looser LHS subsumes tighter ones).
func Discover(r *relation.Relation, opts Options) []dd.DD {
	return DiscoverContext(context.Background(), r, opts).DDs
}

// DiscoverContext is Discover under a context and Options.Budget. Each
// candidate attribute is one pool task computing its pairwise distances,
// candidate thresholds and maximal admissible threshold; the shared RHS
// compatibility vector is computed once up front.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	n := r.Rows()
	if n < 2 {
		return Result{}
	}
	cols := opts.LHSCols
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if c != opts.RHS.Col {
				cols = append(cols, c)
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "dddisc")
	run.SetAttr("rows", n)
	run.SetAttr("candidates", len(cols))
	defer run.End()

	// Shared RHS compatibility per tuple pair, in (i,j) i<j order.
	rhsSpan := run.Child(obs.KindPhase, "rhs-compat")
	pairCount := n * (n - 1) / 2
	rhsOK := make([]bool, 0, pairCount)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rhsOK = append(rhsOK, opts.RHS.Compatible(r, i, j))
		}
	}
	rhsSpan.End()

	type hit struct {
		best float64
		ok   bool
	}
	searchSpan := run.Child(obs.KindPhase, "threshold-search")
	hits, done, err := engine.MapBudget(pool, len(cols), batch, func(k int) hit {
		c := cols[k]
		m := metric.ForKind(r.Schema().Attr(c).Kind)
		dist := make([]float64, 0, pairCount)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dist = append(dist, m.Distance(r.Value(i, c), r.Value(j, c)))
			}
		}
		h := hit{best: -1}
		for _, t := range quantileThresholds(dist, opts.MaxThresholds) {
			support, conf := evaluate(dist, t, rhsOK)
			if support >= opts.MinSupport && conf == 1 {
				if !h.ok || t > h.best {
					h.best = t
					h.ok = true
				}
			}
		}
		return h
	})
	searchSpan.SetAttr("completed", done)
	searchSpan.End()
	reg.Counter("dddisc.candidates.checked").Add(int64(done))

	var out []dd.DD
	for k := 0; k < done; k++ {
		if hits[k].ok {
			c := cols[k]
			out = append(out, dd.DD{
				LHS:    dd.Pattern{{Col: c, Metric: metric.ForKind(r.Schema().Attr(c).Kind), Op: dd.OpLe, Threshold: hits[k].best}},
				RHS:    dd.Pattern{opts.RHS},
				Schema: r.Schema(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LHS[0].Col < out[j].LHS[0].Col })
	reg.Counter("dddisc.dds.valid").Add(int64(len(out)))
	res := Result{DDs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// evaluate computes support (pairs with distance ≤ t) and confidence
// (fraction of those satisfying the RHS).
func evaluate(dist []float64, t float64, rhsOK []bool) (int, float64) {
	support, good := 0, 0
	for k, d := range dist {
		if d <= t { // NaN fails
			support++
			if rhsOK[k] {
				good++
			}
		}
	}
	if support == 0 {
		return 0, 1
	}
	return support, float64(good) / float64(support)
}

// quantileThresholds extracts up to k distinct candidate thresholds from
// the observed distances (NaNs dropped), spread across the distribution.
func quantileThresholds(dist []float64, k int) []float64 {
	clean := make([]float64, 0, len(dist))
	for _, d := range dist {
		if d == d {
			clean = append(clean, d)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	seen := map[float64]bool{}
	var out []float64
	for i := 0; i < k; i++ {
		idx := i * (len(clean) - 1) / max(1, k-1)
		v := clean[idx]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
