// Package dddisc implements differential dependency discovery after Song &
// Chen [86],[88],[89] (paper §3.3.3): given a target RHS differential
// function, search the left-hand-side threshold space for minimal DDs with
// full confidence and sufficient support.
//
// Candidate thresholds are determined from the data in the parameter-free
// style of [88]: the observed pairwise distances on each attribute form the
// candidate set, so no distance thresholds need to be specified manually —
// the aspect the paper highlights as the key difficulty of metric
// dependencies (§1.4.2).
package dddisc

import (
	"sort"

	"deptree/internal/deps/dd"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Options configures DD discovery.
type Options struct {
	// RHS is the target differential function φ[Y].
	RHS dd.DiffFunc
	// LHSCols are the attributes considered for φ[X] (defaults to all
	// except the RHS column).
	LHSCols []int
	// MinSupport is the minimum number of pairs matching φ[X] (default 1).
	MinSupport int
	// MaxThresholds caps the candidate thresholds per attribute, taken as
	// quantiles of the observed distance distribution (default 8).
	MaxThresholds int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	if o.MaxThresholds == 0 {
		o.MaxThresholds = 8
	}
	return o
}

// Discover returns DDs φ[X] → φ[Y] with confidence 1 and support ≥
// MinSupport, where every LHS function is of the "similar" form
// A(≤ threshold) and thresholds are maximal: raising any threshold to the
// next candidate would break the dependency or its confidence. Maximal
// thresholds make the DD most general, mirroring the minimality notion of
// [86] (a DD with looser LHS subsumes tighter ones).
func Discover(r *relation.Relation, opts Options) []dd.DD {
	opts = opts.withDefaults()
	n := r.Rows()
	if n < 2 {
		return nil
	}
	cols := opts.LHSCols
	if cols == nil {
		for c := 0; c < r.Cols(); c++ {
			if c != opts.RHS.Col {
				cols = append(cols, c)
			}
		}
	}
	// Pairwise distances per candidate attribute and for the RHS.
	pairCount := n * (n - 1) / 2
	dists := make(map[int][]float64, len(cols))
	metrics := make(map[int]metric.Metric, len(cols))
	for _, c := range cols {
		metrics[c] = metric.ForKind(r.Schema().Attr(c).Kind)
		dists[c] = make([]float64, 0, pairCount)
	}
	rhsOK := make([]bool, 0, pairCount)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rhsOK = append(rhsOK, opts.RHS.Compatible(r, i, j))
			for _, c := range cols {
				dists[c] = append(dists[c], metrics[c].Distance(r.Value(i, c), r.Value(j, c)))
			}
		}
	}
	// Candidate thresholds per attribute: distinct distance quantiles.
	candidates := make(map[int][]float64, len(cols))
	for _, c := range cols {
		candidates[c] = quantileThresholds(dists[c], opts.MaxThresholds)
	}
	var out []dd.DD
	// Single-attribute LHS: find the maximal threshold with confidence 1.
	for _, c := range cols {
		best := -1.0
		haveBest := false
		for _, t := range candidates[c] {
			support, conf := evaluate(dists[c], t, rhsOK)
			if support >= opts.MinSupport && conf == 1 {
				if !haveBest || t > best {
					best = t
					haveBest = true
				}
			}
		}
		if haveBest {
			out = append(out, dd.DD{
				LHS:    dd.Pattern{{Col: c, Metric: metrics[c], Op: dd.OpLe, Threshold: best}},
				RHS:    dd.Pattern{opts.RHS},
				Schema: r.Schema(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LHS[0].Col < out[j].LHS[0].Col })
	return out
}

// evaluate computes support (pairs with distance ≤ t) and confidence
// (fraction of those satisfying the RHS).
func evaluate(dist []float64, t float64, rhsOK []bool) (int, float64) {
	support, good := 0, 0
	for k, d := range dist {
		if d <= t { // NaN fails
			support++
			if rhsOK[k] {
				good++
			}
		}
	}
	if support == 0 {
		return 0, 1
	}
	return support, float64(good) / float64(support)
}

// quantileThresholds extracts up to k distinct candidate thresholds from
// the observed distances (NaNs dropped), spread across the distribution.
func quantileThresholds(dist []float64, k int) []float64 {
	clean := make([]float64, 0, len(dist))
	for _, d := range dist {
		if d == d {
			clean = append(clean, d)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	seen := map[float64]bool{}
	var out []float64
	for i := 0; i < k; i++ {
		idx := i * (len(clean) - 1) / max(1, k-1)
		v := clean[idx]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
