package sampling

import (
	"context"
	"reflect"
	"testing"

	"deptree/internal/engine"
	"deptree/internal/gen"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

func rowsOf(r *relation.Relation, col int) []string {
	out := make([]string, r.Rows())
	for i := range out {
		out[i] = r.Value(i, col).String()
	}
	return out
}

func TestSampleDeterministicAndOrdered(t *testing.T) {
	r := gen.Categorical(200, []int{50, 50}, 7)
	a := Sample(r, 40, 3)
	b := Sample(r, 40, 3)
	if a == r || b == r {
		t.Fatal("strict sample returned the full relation")
	}
	if a.Rows() != 40 || b.Rows() != 40 {
		t.Fatalf("sample sizes %d/%d, want 40", a.Rows(), b.Rows())
	}
	if !reflect.DeepEqual(rowsOf(a, 0), rowsOf(b, 0)) {
		t.Fatal("same (rows, seed) produced different samples")
	}
	c := Sample(r, 40, 4)
	if reflect.DeepEqual(rowsOf(a, 0), rowsOf(c, 0)) {
		t.Fatal("different seeds produced identical samples (vanishingly unlikely)")
	}
	if a.Schema() != r.Schema() {
		t.Fatal("sample does not share the relation's schema")
	}
}

func TestSampleTrivialCases(t *testing.T) {
	r := gen.Table7()
	n := r.Rows()
	for _, rows := range []int{0, -1, n, n + 5} {
		if got := Sample(r, rows, 1); got != r {
			t.Fatalf("Sample(rows=%d) did not return the relation itself", rows)
		}
	}
}

func TestRunTrivialSampleSkipsVerification(t *testing.T) {
	r := gen.Table7()
	reg := obs.New()
	verifyCalls := 0
	res := Run(context.Background(), r, Options{Rows: 0, Obs: reg},
		func(ctx context.Context, s *relation.Relation) ([]int, bool, string) {
			if s != r {
				t.Fatal("trivial sample is not the relation itself")
			}
			return []int{1, 2, 3}, false, ""
		},
		func(int) bool { verifyCalls++; return false })
	if verifyCalls != 0 {
		t.Fatalf("verification ran %d times on a trivial sample", verifyCalls)
	}
	if res.Sampled || res.Partial || len(res.Verified) != 3 || res.Candidates != 3 || res.Refuted != 0 {
		t.Fatalf("unexpected trivial result %+v", res)
	}
	if got := reg.Counter("sampling.verified").Value(); got != 3 {
		t.Fatalf("sampling.verified = %d, want 3", got)
	}
}

func TestRunPartitionsVerifiedAndRefuted(t *testing.T) {
	r := gen.Categorical(100, []int{10}, 1)
	reg := obs.New()
	res := Run(context.Background(), r, Options{Rows: 10, Seed: 2, Workers: 3, Obs: reg},
		func(ctx context.Context, s *relation.Relation) ([]int, bool, string) {
			if s.Rows() != 10 {
				t.Fatalf("sample has %d rows, want 10", s.Rows())
			}
			return []int{0, 1, 2, 3, 4, 5}, false, ""
		},
		func(c int) bool { return c%2 == 0 })
	if !res.Sampled || res.Partial {
		t.Fatalf("unexpected result state %+v", res)
	}
	if !reflect.DeepEqual(res.Verified, []int{0, 2, 4}) || res.Refuted != 3 || res.Candidates != 6 {
		t.Fatalf("unexpected partition %+v", res)
	}
	for name, want := range map[string]int64{
		"sampling.candidates": 6, "sampling.verified": 3, "sampling.refuted": 3,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestRunBudgetTruncatesVerificationDeterministically(t *testing.T) {
	r := gen.Categorical(100, []int{10}, 1)
	cands := make([]int, 50)
	for i := range cands {
		cands[i] = i
	}
	discover := func(ctx context.Context, s *relation.Relation) ([]int, bool, string) {
		return cands, false, ""
	}
	verify := func(c int) bool { return c%3 != 0 }
	var first []int
	for _, workers := range []int{1, 2, 5} {
		res := Run(context.Background(), r,
			Options{Rows: 10, Seed: 1, Workers: workers, Budget: engine.Budget{MaxTasks: 20}},
			discover, verify)
		if !res.Partial || res.Reason != "max-tasks" {
			t.Fatalf("workers=%d: want partial max-tasks, got %+v", workers, res)
		}
		if len(res.Verified)+res.Refuted > 20 {
			t.Fatalf("workers=%d: budget exceeded: %d decided", workers, len(res.Verified)+res.Refuted)
		}
		if first == nil {
			first = res.Verified
		} else if !reflect.DeepEqual(first, res.Verified) {
			t.Fatalf("workers=%d: verified prefix diverged: %v vs %v", workers, res.Verified, first)
		}
	}
}

func TestRunPropagatesDiscoveryPartial(t *testing.T) {
	r := gen.Categorical(50, []int{5}, 1)
	res := Run(context.Background(), r, Options{Rows: 10, Seed: 1},
		func(ctx context.Context, s *relation.Relation) ([]int, bool, string) {
			return []int{1}, true, "deadline"
		},
		func(int) bool { return true })
	if !res.Partial || res.Reason != "deadline" {
		t.Fatalf("discovery partial not propagated: %+v", res)
	}
}

func TestRunCancelledContext(t *testing.T) {
	r := gen.Categorical(50, []int{5}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(ctx, r, Options{Rows: 10, Seed: 1},
		func(ctx context.Context, s *relation.Relation) ([]int, bool, string) {
			return []int{1, 2}, false, ""
		},
		func(int) bool { return true })
	if !res.Partial {
		t.Fatalf("cancelled run not partial: %+v", res)
	}
	if res.Reason != "cancelled" {
		t.Fatalf("reason = %q, want cancelled", res.Reason)
	}
}

func TestSampleRowOrderPreserved(t *testing.T) {
	// Build a relation whose single column is the row index; the sample's
	// values must be strictly increasing.
	attrs := []relation.Attribute{{Name: "i", Kind: relation.KindInt}}
	r := relation.New("seq", relation.NewSchema(attrs...))
	for i := 0; i < 300; i++ {
		if err := r.Append([]relation.Value{relation.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := Sample(r, 50, 9)
	prev := int64(-1)
	for i := 0; i < s.Rows(); i++ {
		v := s.Value(i, 0).Num()
		if int64(v) <= prev {
			t.Fatalf("sample rows out of original order at %d: %v after %d", i, v, prev)
		}
		prev = int64(v)
	}
	if s.Rows() != 50 {
		t.Fatalf("sample rows = %d, want 50", s.Rows())
	}
}
