// Package sampling implements the sample-then-verify discovery driver:
// discover candidates on a deterministic seeded row sample, then confirm
// every surviving candidate against the full relation before emitting
// it. It is the standard scale move for million-row discovery (after
// De & Kambhampati's probabilistic-FD mining): the expensive search runs
// on k ≪ n rows, and only the (few) candidates it proposes pay the
// exact full-relation verification — the counting G3/partition
// machinery for FDs, the set-based order-compatibility scan for ODs.
//
// The guarantee is one-sided by construction: sampling may MISS
// dependencies (a dependency invisible on the sample is never proposed),
// but it never EMITS an unverified one — every returned candidate passed
// its exact check on the full relation. For dependency classes defined
// by ∀-pair conditions (FD, OD), validity on the full relation implies
// validity on any row subset, so the verified output is always a subset
// of full-relation discovery's output, and for fixed candidate spaces
// (pairwise ODs) it is exactly equal.
//
// Determinism: the sample is a pure function of (relation, Rows, Seed) —
// an injected *rand.Rand permutation, the convention of internal/gen —
// and verification fans out through engine.MapBudget with the engine's
// fixed-stripe batching, so a budget-truncated verification still yields
// a deterministic candidate prefix for every worker count.
package sampling

import (
	"context"
	"math/rand"
	"sort"

	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures one sample-then-verify run.
type Options struct {
	// Rows is the sample size. <= 0 or >= the relation's rows means no
	// sampling: discovery runs on the full relation and verification is
	// skipped (the candidates are already exact).
	Rows int
	// Seed seeds the sample's deterministic permutation. The same
	// (relation, Rows, Seed) always selects the same rows.
	Seed int64
	// Workers fans the verification checks out across the engine pool.
	Workers int
	// Budget bounds the verification fan-out (the discovery phase runs
	// under the discoverer's own budget, passed by the caller's closure).
	// An exhausted budget truncates verification to a deterministic
	// candidate prefix and marks the result Partial.
	Budget engine.Budget
	// Obs receives the sampling.candidates / sampling.verified /
	// sampling.refuted counters and the run span. Nil is a no-op.
	Obs *obs.Registry
}

// Result is a sample-then-verify outcome for candidate type T.
type Result[T any] struct {
	// Verified holds the candidates that passed exact verification on
	// the full relation, in discovery order.
	Verified []T
	// Candidates is the number of candidates the sample proposed.
	Candidates int
	// Refuted is the number of candidates the full relation rejected —
	// sampling artifacts that held on the sample only.
	Refuted int
	// Sampled reports whether a strict sample was used (false when Rows
	// covered the whole relation and discovery was exact).
	Sampled bool
	// Partial marks a truncated run: the sample discovery stopped early,
	// or the verification budget ran out. Verified then covers a
	// deterministic prefix of the candidates.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
}

// Sample returns the deterministic seeded row sample: rows rows chosen
// by a seeded permutation, kept in ascending row order so order-sensitive
// dependency classes (ODs, SDs) see rows in their original sequence.
// When rows <= 0 or rows >= the relation's size, the relation itself is
// returned (callers compare pointers to detect the trivial case).
func Sample(r *relation.Relation, rows int, seed int64) *relation.Relation {
	n := r.Rows()
	if rows <= 0 || rows >= n {
		return r
	}
	rng := rand.New(rand.NewSource(seed))
	picked := rng.Perm(n)[:rows]
	sort.Ints(picked)
	keep := make([]bool, n)
	for _, i := range picked {
		keep[i] = true
	}
	return r.Select(func(row int) bool { return keep[row] })
}

// Run executes one sample-then-verify pass: discover proposes candidates
// on the sample (returning its own partial/reason state), verify decides
// one candidate exactly against the full relation. Only verified
// candidates are returned; refuted ones are counted and dropped.
func Run[T any](ctx context.Context, full *relation.Relation, opts Options,
	discover func(ctx context.Context, sample *relation.Relation) ([]T, bool, string),
	verify func(cand T) bool) Result[T] {

	reg := opts.Obs
	sample := Sample(full, opts.Rows, opts.Seed)

	span := reg.StartSpan(obs.KindRun, "sampling")
	span.SetAttr("rows", full.Rows())
	span.SetAttr("sample_rows", sample.Rows())
	defer span.End()

	cands, partial, reason := discover(ctx, sample)
	reg.Counter("sampling.candidates").Add(int64(len(cands)))

	if sample == full {
		// Trivial sample: discovery was exact, nothing to verify.
		reg.Counter("sampling.verified").Add(int64(len(cands)))
		return Result[T]{Verified: cands, Candidates: len(cands), Partial: partial, Reason: reason}
	}

	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()
	verifySpan := span.Child(obs.KindPhase, "verify")
	ok, done, err := engine.MapBudget(pool, len(cands), 0, func(i int) bool { return verify(cands[i]) })
	verifySpan.SetAttr("completed", done)
	verifySpan.End()

	res := Result[T]{Candidates: len(cands), Sampled: true, Partial: partial, Reason: reason}
	for i := 0; i < done; i++ {
		if ok[i] {
			res.Verified = append(res.Verified, cands[i])
		} else {
			res.Refuted++
		}
	}
	reg.Counter("sampling.verified").Add(int64(len(res.Verified)))
	reg.Counter("sampling.refuted").Add(int64(res.Refuted))
	if err != nil {
		res.Partial = true
		if res.Reason == "" {
			res.Reason = engine.Reason(err)
		}
	}
	return res
}
