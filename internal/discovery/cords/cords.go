// Package cords implements the CORDS approach of Ilyas et al. [55] (paper
// §2.1.3) for discovering soft functional dependencies and correlations
// between column pairs: sample the relation, estimate per-column and
// pairwise distinct counts from the sample (the role the system catalog
// plays in the original), compute the SFD strength, and run a robust
// chi-square analysis on the contingency table of frequent values to flag
// correlated columns.
package cords

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/sfd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures a CORDS run.
type Options struct {
	// SampleSize bounds the number of rows examined (0 = whole relation).
	// CORDS' point is that the sample size needed is essentially
	// independent of |r|.
	SampleSize int
	// MinStrength is the SFD strength threshold s (default 0.95).
	MinStrength float64
	// ChiSquareLevel is the significance threshold for the correlation
	// statistic; the default 0.01 flags pairs whose chi-square exceeds the
	// critical value for the contingency table's degrees of freedom.
	ChiSquareLevel float64
	// MaxCategories caps the contingency-table dimensions (frequent-value
	// bucketing, as in the original; default 20).
	MaxCategories int
	// Seed drives sampling.
	Seed int64
	// Workers fans the per-column-pair analyses out across goroutines.
	// 0 or 1 runs the exact sequential path; the sample is drawn once up
	// front, so the statistics are identical for every worker count.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates the analysis to a prefix of the column pairs and
	// the Result reports Partial.
	Budget engine.Budget
	// Obs optionally receives the run's metrics (cords.* counters, the
	// pair-analysis phase latency) and its run/phase spans. Nil is a
	// full no-op; observation never changes output.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinStrength == 0 {
		o.MinStrength = 0.95
	}
	if o.MaxCategories == 0 {
		o.MaxCategories = 20
	}
	if o.ChiSquareLevel == 0 {
		o.ChiSquareLevel = 0.01
	}
	return o
}

// Correlation is a flagged column pair with its statistics.
type Correlation struct {
	// Col1, Col2 are the column indices (Col1 determines Col2 for the SFD
	// reading).
	Col1, Col2 int
	// Strength is the SFD strength measure on the sample.
	Strength float64
	// ChiSquare is the correlation statistic on the bucketed contingency
	// table.
	ChiSquare float64
	// Correlated marks pairs whose chi-square analysis rejects
	// independence.
	Correlated bool
}

// Result bundles discovered SFDs and flagged correlations. A Partial
// result covers a deterministic prefix of the column pairs (fixed
// enumeration order, fixed fan-out batches), so any two budget-truncated
// runs of the same input agree regardless of worker count.
type Result struct {
	SFDs         []sfd.SFD
	Correlations []Correlation
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// Completed is the number of ordered column pairs analyzed.
	Completed int
}

// Discover runs CORDS over all column pairs.
func Discover(r *relation.Relation, opts Options) Result {
	return DiscoverContext(context.Background(), r, opts)
}

// DiscoverContext is Discover under a context and Options.Budget.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	sample := sampleRows(r, opts.SampleSize, opts.Seed)
	n := r.Cols()
	type pair struct{ c1, c2 int }
	pairs := make([]pair, 0, n*(n-1))
	for c1 := 0; c1 < n; c1++ {
		for c2 := 0; c2 < n; c2++ {
			if c1 != c2 {
				pairs = append(pairs, pair{c1, c2})
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "cords")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("sample", len(sample))
	run.SetAttr("pairs", len(pairs))
	defer run.End()

	// Dictionary-encode every column once up front: each pair analysis then
	// runs on integer codes and counting arrays instead of string-keyed hash
	// maps. Codes are bijective with Value.Key() strings per column, so all
	// statistics (and the frequent-value tie-breaks) are unchanged.
	cols := make([]colData, n)
	for c := 0; c < n; c++ {
		cols[c] = encodeColumn(r, c)
	}

	pairSpan := run.Child(obs.KindPhase, "pair-analysis")
	pairTimer := reg.Histogram("cords.pairs.seconds").Start()
	corrs, done, err := engine.MapBudget(pool, len(pairs), 0, func(i int) Correlation {
		return analyze(sample, &cols[pairs[i].c1], &cols[pairs[i].c2], pairs[i].c1, pairs[i].c2, opts)
	})
	pairTimer()
	pairSpan.SetAttr("completed", done)
	pairSpan.End()
	reg.Counter("cords.pairs.analyzed").Add(int64(done))
	res := Result{Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	for _, corr := range corrs {
		res.Correlations = append(res.Correlations, corr)
		if corr.Correlated {
			reg.Counter("cords.pairs.correlated").Inc()
		}
		if corr.Strength >= opts.MinStrength {
			res.SFDs = append(res.SFDs, sfd.SFD{
				LHS:         attrset.Single(corr.Col1),
				RHS:         attrset.Single(corr.Col2),
				MinStrength: opts.MinStrength,
				Schema:      r.Schema(),
			})
		}
	}
	reg.Counter("cords.sfds.found").Add(int64(len(res.SFDs)))
	return res
}

// sampleRows draws a uniform sample of row indices without replacement.
func sampleRows(r *relation.Relation, size int, seed int64) []int {
	n := r.Rows()
	if size <= 0 || size >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:size]
	sort.Ints(perm)
	return perm
}

// colData is one dictionary-encoded column: per-row codes, the code
// cardinality, and each code's Value.Key() string (codes and keys are
// bijective, so ordering by key is ordering by value identity).
type colData struct {
	codes []int
	card  int
	keys  []string
}

// encodeColumn dictionary-encodes column c and records a representative
// key per code for frequent-value tie-breaking.
func encodeColumn(r *relation.Relation, c int) colData {
	codes, card := r.Codes(c)
	keys := make([]string, card)
	seen := make([]bool, card)
	for row, code := range codes {
		if !seen[code] {
			seen[code] = true
			keys[code] = r.Value(row, c).Key()
		}
	}
	return colData{codes: codes, card: card, keys: keys}
}

// analyze computes strength and the chi-square statistic for one ordered
// column pair over the sample, entirely on integer codes: counting arrays
// for per-column distincts, packed-and-sorted code pairs for the pairwise
// distinct count, and array-indexed contingency cells.
func analyze(sample []int, d1, d2 *colData, c1, c2 int, opts Options) Correlation {
	cnt1 := make([]int, d1.card)
	cnt2 := make([]int, d2.card)
	packed := make([]int64, 0, len(sample))
	for _, row := range sample {
		k1, k2 := d1.codes[row], d2.codes[row]
		cnt1[k1]++
		cnt2[k2]++
		packed = append(packed, int64(k1)*int64(d2.card)+int64(k2))
	}
	distinct1 := 0
	for _, c := range cnt1 {
		if c > 0 {
			distinct1++
		}
	}
	sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
	pairDistinct := 0
	for i, p := range packed {
		if i == 0 || p != packed[i-1] {
			pairDistinct++
		}
	}
	corr := Correlation{Col1: c1, Col2: c2}
	if pairDistinct > 0 {
		corr.Strength = float64(distinct1) / float64(pairDistinct)
	} else {
		corr.Strength = 1
	}
	// Bucket to the MaxCategories most frequent values per column.
	top1 := topCodes(cnt1, d1.keys, opts.MaxCategories)
	top2 := topCodes(cnt2, d2.keys, opts.MaxCategories)
	idx1 := index(top1, d1.card)
	idx2 := index(top2, d2.card)
	rows, cols := len(top1), len(top2)
	if rows < 2 || cols < 2 {
		// A constant column is trivially dependent; chi-square undefined.
		corr.Correlated = corr.Strength >= opts.MinStrength
		return corr
	}
	table := make([][]float64, rows)
	for i := range table {
		table[i] = make([]float64, cols)
	}
	total := 0.0
	for _, row := range sample {
		i := idx1[d1.codes[row]]
		j := idx2[d2.codes[row]]
		if i >= 0 && j >= 0 {
			table[i][j]++
			total++
		}
	}
	if total == 0 {
		return corr
	}
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	for i := range table {
		for j := range table[i] {
			rowSum[i] += table[i][j]
			colSum[j] += table[i][j]
		}
	}
	chi := 0.0
	for i := range table {
		for j := range table[i] {
			expected := rowSum[i] * colSum[j] / total
			if expected > 0 {
				d := table[i][j] - expected
				chi += d * d / expected
			}
		}
	}
	corr.ChiSquare = chi
	dof := float64((rows - 1) * (cols - 1))
	// Normal approximation to the chi-square critical value at the 0.01
	// level: χ² > dof + 2.33·sqrt(2·dof) (Wilson–Hilferty would be finer;
	// CORDS itself uses a robust cutoff, not an exact test).
	critical := dof + 2.33*math.Sqrt(2*dof)
	corr.Correlated = chi > critical
	return corr
}

// topCodes returns the up-to-k codes with the highest sample counts,
// ordered by count descending then key ascending — the same total order
// the string-keyed implementation used, since keys are distinct per code.
func topCodes(cnt []int, keys []string, k int) []int {
	codes := make([]int, 0, len(cnt))
	for c, n := range cnt {
		if n > 0 {
			codes = append(codes, c)
		}
	}
	sort.Slice(codes, func(i, j int) bool {
		if cnt[codes[i]] != cnt[codes[j]] {
			return cnt[codes[i]] > cnt[codes[j]]
		}
		return keys[codes[i]] < keys[codes[j]]
	})
	if len(codes) > k {
		codes = codes[:k]
	}
	return codes
}

// index maps code → contingency-table index for the top codes, −1
// elsewhere.
func index(top []int, card int) []int {
	out := make([]int, card)
	for i := range out {
		out[i] = -1
	}
	for i, c := range top {
		out[c] = i
	}
	return out
}
