package cords

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestDiscoverFindsPlantedSFD(t *testing.T) {
	// address → region holds exactly on clean hotels: strength 1.
	r := gen.Hotels(gen.HotelConfig{Rows: 400, Seed: 1})
	res := Discover(r, Options{MinStrength: 0.95})
	addr := r.Schema().MustIndex("address")
	region := r.Schema().MustIndex("region")
	found := false
	for _, s := range res.SFDs {
		if s.LHS.Has(addr) && s.RHS.Has(region) {
			found = true
		}
	}
	if !found {
		t.Error("address → region SFD not discovered")
	}
}

func TestSoftDependencySurvivesNoise(t *testing.T) {
	// With a small error rate the FD breaks but the SFD remains.
	r := gen.Hotels(gen.HotelConfig{Rows: 400, Seed: 2, ErrorRate: 0.02})
	res := Discover(r, Options{MinStrength: 0.9})
	addr := r.Schema().MustIndex("address")
	region := r.Schema().MustIndex("region")
	found := false
	for _, s := range res.SFDs {
		if s.LHS.Has(addr) && s.RHS.Has(region) {
			found = true
		}
	}
	if !found {
		t.Error("soft address → region should survive 2% noise")
	}
}

func TestChiSquareFlagsCorrelation(t *testing.T) {
	// star is a function of (region, addr) construction and price depends
	// on star: the (star, price-band) pair must be flagged; two independent
	// random columns must not.
	r := gen.Hotels(gen.HotelConfig{Rows: 500, Seed: 3})
	res := Discover(r, Options{})
	star := r.Schema().MustIndex("star")
	price := r.Schema().MustIndex("price")
	nights := r.Schema().MustIndex("nights")
	var starPrice, starNights *Correlation
	for i := range res.Correlations {
		c := &res.Correlations[i]
		if c.Col1 == star && c.Col2 == price {
			starPrice = c
		}
		if c.Col1 == star && c.Col2 == nights {
			starNights = c
		}
	}
	if starPrice == nil || starNights == nil {
		t.Fatal("correlation entries missing")
	}
	if !starPrice.Correlated {
		t.Errorf("star/price should be flagged (χ²=%.1f)", starPrice.ChiSquare)
	}
	if starNights.Correlated {
		t.Errorf("star/nights are independent (χ²=%.1f)", starNights.ChiSquare)
	}
}

func TestSamplingIsScalable(t *testing.T) {
	// The sample bound caps work: results from a 200-row sample of a large
	// relation still find the planted SFD.
	r := gen.Hotels(gen.HotelConfig{Rows: 3000, Seed: 4})
	res := Discover(r, Options{SampleSize: 200, Seed: 7})
	addr := r.Schema().MustIndex("address")
	region := r.Schema().MustIndex("region")
	found := false
	for _, s := range res.SFDs {
		if s.LHS.Has(addr) && s.RHS.Has(region) {
			found = true
		}
	}
	if !found {
		t.Error("sampled run lost the planted SFD")
	}
}

func TestEmptyRelation(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	res := Discover(r, Options{})
	if len(res.SFDs) == 0 {
		// Vacuous strength 1 admits everything; either behaviour is
		// acceptable as long as it does not panic. Nothing to assert
		// beyond stability.
		t.Log("no SFDs on empty relation")
	}
}

func TestSampleRows(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 100, Seed: 5})
	s := sampleRows(r, 10, 1)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sample not strictly increasing")
		}
	}
	if got := sampleRows(r, 0, 1); len(got) != 100 {
		t.Errorf("full sample size %d", len(got))
	}
	if got := sampleRows(r, 500, 1); len(got) != 100 {
		t.Errorf("oversized sample size %d", len(got))
	}
}
