// Package sddisc implements sequential-dependency discovery (paper §4.4.3)
// and the CSD tableau construction (§4.4.5) after Golab et al. [48].
//
// SD discovery fits a gap interval to the consecutive deltas of an ordered
// relation so that the SD reaches a target confidence. CSD tableau
// construction is the polynomial-time highlight of the paper's Fig 3: an
// exact dynamic program, quadratic in the number of candidate intervals,
// that selects disjoint X-spans ("good" intervals, where the embedded SD
// holds with confidence ≥ c) maximizing total coverage.
package sddisc

import (
	"context"
	"sort"

	"deptree/internal/deps/sd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures SD discovery.
type Options struct {
	// MinConfidence is the confidence an SD must reach to be reported,
	// and the confidence FitInterval targets (default 0.9).
	MinConfidence float64
	// Workers fans the per-pair fits across goroutines; output is
	// identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the (X, Y) pair enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

// Result is an SD discovery outcome.
type Result struct {
	SDs []sd.SD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of (X, Y) candidate pairs fitted.
	Completed int
}

// batch is the fixed MapBudget stripe width over candidate pairs; each
// task is a sort plus an O(n²) confidence DP. Fixed so the truncation
// point is worker-independent.
const batch = 4

// Discover fits gap intervals over every ordered pair of distinct numeric
// columns (X orders, Y measures) and reports the SDs whose fitted interval
// reaches MinConfidence — the single-attribute-X instantiation of Golab et
// al.'s discovery problem, with the interval chosen by FitInterval's
// central-quantile heuristic.
func Discover(r *relation.Relation, opts Options) []sd.SD {
	return DiscoverContext(context.Background(), r, opts).SDs
}

// DiscoverContext is Discover under a context and Options.Budget.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	if opts.MinConfidence == 0 {
		opts.MinConfidence = 0.9
	}
	var numeric []int
	for c := 0; c < r.Cols(); c++ {
		if k := r.Schema().Attr(c).Kind; k == relation.KindInt || k == relation.KindFloat {
			numeric = append(numeric, c)
		}
	}
	type pair struct{ x, y int }
	var pairs []pair
	for _, x := range numeric {
		for _, y := range numeric {
			if x != y {
				pairs = append(pairs, pair{x, y})
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, maxInt(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "sddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("candidates", len(pairs))
	defer run.End()

	type hit struct {
		s  sd.SD
		ok bool
	}
	fitSpan := run.Child(obs.KindPhase, "interval-fit")
	hits, done, err := engine.MapBudget(pool, len(pairs), batch, func(i int) hit {
		p := pairs[i]
		g := FitInterval(r, []int{p.x}, p.y, opts.MinConfidence)
		s := sd.SD{X: []int{p.x}, Y: p.y, G: g, Schema: r.Schema()}
		if s.Confidence(r) < opts.MinConfidence {
			return hit{}
		}
		return hit{s: s, ok: true}
	})
	fitSpan.SetAttr("completed", done)
	fitSpan.End()
	reg.Counter("sddisc.pairs.fitted").Add(int64(done))

	var out []sd.SD
	for i := 0; i < done; i++ {
		if hits[i].ok {
			out = append(out, hits[i].s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X[0] != out[j].X[0] {
			return out[i].X[0] < out[j].X[0]
		}
		return out[i].Y < out[j].Y
	})
	reg.Counter("sddisc.sds.valid").Add(int64(len(out)))
	res := Result{SDs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FitInterval returns the tightest gap interval g containing at least
// confidence·(n−1) of the consecutive Y-deltas when tuples are ordered by
// X: the interval spanning the delta distribution's central quantiles.
func FitInterval(r *relation.Relation, x []int, y int, confidence float64) sd.Interval {
	idx := r.SortedIndex(x)
	if len(idx) < 2 {
		return sd.Interval{}
	}
	deltas := make([]float64, 0, len(idx)-1)
	for k := 1; k < len(idx); k++ {
		deltas = append(deltas, r.Value(idx[k], y).Num()-r.Value(idx[k-1], y).Num())
	}
	sort.Float64s(deltas)
	if confidence >= 1 {
		return sd.Interval{Lo: deltas[0], Hi: deltas[len(deltas)-1]}
	}
	// Drop (1−confidence)/2 mass from each tail.
	drop := int(float64(len(deltas)) * (1 - confidence) / 2)
	lo, hi := drop, len(deltas)-1-drop
	if lo > hi {
		lo, hi = 0, len(deltas)-1
	}
	return sd.Interval{Lo: deltas[lo], Hi: deltas[hi]}
}

// Candidate is one candidate tableau span with its quality.
type Candidate struct {
	Span sd.Span
	// Confidence of the embedded SD restricted to the span.
	Confidence float64
	// Size is the number of tuples covered.
	Size int
}

// TableauDP constructs a CSD tableau for the embedded SD: from the sorted
// distinct X values it forms the O(k²) candidate intervals between
// breakpoints, marks those where the SD holds with confidence ≥ minConf
// ("good" intervals), and selects a disjoint subset maximizing tuple
// coverage by exact dynamic programming — quadratic in the number of
// candidate intervals, the polynomial-time discovery case of Fig 3.
func TableauDP(r *relation.Relation, s sd.SD, minConf float64, maxBreakpoints int) []sd.Span {
	idx := r.SortedIndex(s.X)
	n := len(idx)
	if n < 2 {
		return nil
	}
	// Breakpoints: distinct X values (downsampled to maxBreakpoints).
	var xs []float64
	last := 0.0
	for k, row := range idx {
		v := r.Value(row, s.X[0]).Num()
		if k == 0 || v != last {
			xs = append(xs, v)
			last = v
		}
	}
	if maxBreakpoints > 1 && len(xs) > maxBreakpoints {
		step := float64(len(xs)-1) / float64(maxBreakpoints-1)
		var ds []float64
		for i := 0; i < maxBreakpoints; i++ {
			ds = append(ds, xs[int(float64(i)*step+0.5)])
		}
		xs = ds
	}
	// Pre-extract the X-sorted (x, y) series once; each candidate interval
	// is then a contiguous slice of it, and confidence is computed directly
	// on the y-slice.
	sortedX := make([]float64, n)
	sortedY := make([]float64, n)
	for k, row := range idx {
		sortedX[k] = r.Value(row, s.X[0]).Num()
		sortedY[k] = r.Value(row, s.Y).Num()
	}
	lowerBound := func(v float64) int {
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if sortedX[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	upperBound := func(v float64) int {
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if sortedX[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Candidate intervals [xs[i], xs[j]]: evaluate confidence of the
	// restricted SD on the contiguous row slice.
	type cand struct {
		i, j int
		size int
	}
	var good []cand
	for i := 0; i < len(xs); i++ {
		for j := i; j < len(xs); j++ {
			lo, hi := lowerBound(xs[i]), upperBound(xs[j])
			size := hi - lo
			if size < 2 {
				continue
			}
			if confidenceSlice(sortedY[lo:hi], s.G) >= minConf {
				good = append(good, cand{i: i, j: j, size: size})
			}
		}
	}
	if len(good) == 0 {
		return nil
	}
	// Weighted interval scheduling DP over disjoint candidates: order by
	// right endpoint; best[k] = max coverage using candidates[0..k].
	sort.Slice(good, func(a, b int) bool {
		if good[a].j != good[b].j {
			return good[a].j < good[b].j
		}
		return good[a].i < good[b].i
	})
	best := make([]int, len(good)+1)
	choose := make([]bool, len(good))
	prev := make([]int, len(good))
	for k, c := range good {
		// Latest candidate ending before c starts.
		p := 0
		for q := k - 1; q >= 0; q-- {
			if good[q].j < c.i {
				p = q + 1
				break
			}
		}
		prev[k] = p
		with := best[p] + c.size
		without := best[k]
		if with > without {
			best[k+1] = with
			choose[k] = true
		} else {
			best[k+1] = without
		}
	}
	// Backtrack.
	var spans []sd.Span
	for k := len(good) - 1; k >= 0; {
		if choose[k] {
			spans = append(spans, sd.Span{Lo: xs[good[k].i], Hi: xs[good[k].j]})
			k = prev[k] - 1
		} else {
			k--
		}
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].Lo < spans[b].Lo })
	return spans
}

// confidenceSlice mirrors sd.SD.Confidence on a pre-sorted Y slice: the
// longest insertion-repairable chain over the gap interval, divided by the
// slice length.
func confidenceSlice(ys []float64, g sd.Interval) float64 {
	n := len(ys)
	if n == 0 {
		return 1
	}
	best := make([]int, n)
	overall := 0
	for i := 0; i < n; i++ {
		best[i] = 1
		for j := 0; j < i; j++ {
			if g.Reachable(ys[i]-ys[j]) && best[j]+1 > best[i] {
				best[i] = best[j] + 1
			}
		}
		if best[i] > overall {
			overall = best[i]
		}
	}
	return float64(overall) / float64(n)
}
