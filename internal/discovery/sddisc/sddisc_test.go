package sddisc

import (
	"testing"

	"deptree/internal/deps/sd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestFitIntervalCleanSeries(t *testing.T) {
	r := gen.Series(200, 9, 11, 0, 31)
	g := FitInterval(r, []int{0}, 1, 1.0)
	if g.Lo < 9 || g.Hi > 11 {
		t.Errorf("fitted interval %v outside [9,11]", g)
	}
	s := sd.SD{X: []int{0}, Y: 1, G: g, Schema: r.Schema()}
	if !s.Holds(r) {
		t.Error("SD with fitted interval must hold")
	}
}

func TestFitIntervalTrimsOutliers(t *testing.T) {
	r := gen.Series(300, 9, 11, 0.1, 32)
	full := FitInterval(r, []int{0}, 1, 1.0)
	trimmed := FitInterval(r, []int{0}, 1, 0.8)
	if trimmed.Hi-trimmed.Lo >= full.Hi-full.Lo {
		t.Errorf("trimmed interval %v not tighter than full %v", trimmed, full)
	}
	if trimmed.Lo < 8 || trimmed.Hi > 12 {
		t.Errorf("trimmed interval %v should land near [9,11]", trimmed)
	}
}

func TestFitIntervalTiny(t *testing.T) {
	r := gen.Series(1, 9, 11, 0, 33)
	if g := FitInterval(r, []int{0}, 1, 1); g != (sd.Interval{}) {
		t.Errorf("single row: %v", g)
	}
}

// regimeSeries builds a series whose step is 10 for seq < 50 and 20 after,
// with a chaotic middle gap — the CSD workload of §4.4.5.
func regimeSeries() *relation.Relation {
	s := relation.NewSchema(
		relation.Attribute{Name: "seq", Kind: relation.KindInt},
		relation.Attribute{Name: "value", Kind: relation.KindFloat},
	)
	r := relation.New("regime", s)
	v := 0.0
	for i := 0; i < 100; i++ {
		_ = r.Append([]relation.Value{relation.Int(i), relation.Float(v)})
		switch {
		case i < 45:
			v += 10
		case i < 55:
			v -= 100 // chaotic middle
		default:
			v += 10
		}
	}
	return r
}

func TestTableauDPFindsGoodSpans(t *testing.T) {
	r := regimeSeries()
	s := sd.Must(r.Schema(), []string{"seq"}, "value", sd.Interval{Lo: 9, Hi: 11})
	if s.Holds(r) {
		t.Fatal("sanity: the unconditional SD must fail")
	}
	spans := TableauDP(r, s, 1.0, 20)
	if len(spans) == 0 {
		t.Fatal("tableau empty")
	}
	covered := 0
	for _, span := range spans {
		sub := r.Select(func(row int) bool { return span.Contains(r.Value(row, 0).Num()) })
		if s.Confidence(sub) < 1 {
			t.Errorf("span %v has confidence < 1", span)
		}
		covered += sub.Rows()
	}
	// The two clean regimes together cover ≥ 80 tuples.
	if covered < 80 {
		t.Errorf("tableau covers %d tuples, want ≥ 80", covered)
	}
	// Spans are disjoint and sorted.
	for i := 1; i < len(spans); i++ {
		if spans[i].Lo <= spans[i-1].Hi {
			t.Errorf("spans overlap: %v", spans)
		}
	}
}

func TestTableauDPWholeRangeWhenClean(t *testing.T) {
	r := gen.Series(80, 9, 11, 0, 34)
	s := sd.Must(r.Schema(), []string{"seq"}, "value", sd.Interval{Lo: 9, Hi: 11})
	spans := TableauDP(r, s, 1.0, 10)
	if len(spans) != 1 {
		t.Fatalf("clean series tableau = %v, want one span", spans)
	}
	sub := r.Select(func(row int) bool { return spans[0].Contains(r.Value(row, 0).Num()) })
	if sub.Rows() != r.Rows() {
		t.Errorf("span covers %d of %d tuples", sub.Rows(), r.Rows())
	}
}

func TestTableauDPTiny(t *testing.T) {
	r := gen.Series(1, 9, 11, 0, 35)
	s := sd.Must(r.Schema(), []string{"seq"}, "value", sd.Interval{Lo: 9, Hi: 11})
	if spans := TableauDP(r, s, 1, 10); spans != nil {
		t.Errorf("single row: %v", spans)
	}
}
