package cfddisc

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestConstantCFDsOnTable5(t *testing.T) {
	r := gen.Table5()
	cfds := ConstantCFDs(r, Options{MinSupport: 2})
	if len(cfds) == 0 {
		t.Fatal("no constant CFDs mined")
	}
	// Every mined CFD must hold and meet support.
	for _, c := range cfds {
		if !c.Holds(r) {
			t.Errorf("mined CFD %v does not hold", c)
		}
		if c.Support(r) < 2 {
			t.Errorf("mined CFD %v support < 2", c)
		}
	}
	// region=Jackson → rate is NOT constant (230 vs 250), so no such rule.
	for _, c := range cfds {
		s := c.String()
		if s == "region=Jackson -> rate=230" || s == "region=Jackson -> rate=250" {
			t.Errorf("inconsistent rule mined: %v", s)
		}
	}
	// name=Hyatt → nothing: all four tuples share name but no other column
	// is constant across them... region differs, address differs, rate
	// differs. Check none mined with LHS name only.
	for _, c := range cfds {
		if len(c.X) == 1 && r.Schema().Attr(c.X[0]).Name == "name" {
			t.Errorf("name=Hyatt implies nothing, got %v", c)
		}
	}
}

func TestConstantCFDsMinimality(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 80, Seed: 9})
	cfds := ConstantCFDs(r, Options{MinSupport: 3, MaxLHS: 2})
	// No rule's LHS pattern may contain another rule with the same
	// conclusion.
	for i, a := range cfds {
		for j, b := range cfds {
			if i == j {
				continue
			}
			if a.String() == b.String() {
				t.Errorf("duplicate rule %v", a)
			}
		}
	}
	for _, c := range cfds {
		if !c.Holds(r) {
			t.Errorf("mined CFD %v does not hold", c)
		}
	}
}

func TestGreedyTableauCoversCleanGroups(t *testing.T) {
	// Table 1: address → region has two violating groups (t3/t4 addr and
	// t5/t6 addr each split regions 50/50) and two clean ones.
	r := gen.Table1()
	x := []int{r.Schema().MustIndex("address")}
	a := r.Schema().MustIndex("region")
	tableau := GreedyTableau(r, x, a, 1.0, 1.0)
	// Admissible at conf=1: the two clean groups (t1/t2 and t7/t8 have
	// distinct addresses... t7 "No.7, West Lake Rd." and t8 "#7, West Lake
	// Rd." differ, so they are singleton groups). Groups: {t1,t2} clean,
	// {t3,t4} conf 0.5, {t5,t6} conf 0.5, {t7}, {t8} singletons conf 1.
	if len(tableau) != 3 {
		t.Fatalf("tableau size = %d, want 3 admissible patterns", len(tableau))
	}
	for _, c := range tableau {
		if !c.Holds(r) {
			t.Errorf("tableau row %v does not hold", c)
		}
	}
}

func TestGreedyTableauConfidence(t *testing.T) {
	// At conf=0.5 the dirty groups become admissible too.
	r := gen.Table1()
	x := []int{r.Schema().MustIndex("address")}
	a := r.Schema().MustIndex("region")
	tableau := GreedyTableau(r, x, a, 0.5, 1.0)
	if len(tableau) != 5 {
		t.Fatalf("tableau size = %d, want 5", len(tableau))
	}
	// Partial coverage stops early: the greedy picks largest groups first.
	partial := GreedyTableau(r, x, a, 0.5, 0.5)
	if len(partial) >= len(tableau) {
		t.Errorf("partial coverage should select fewer patterns (%d vs %d)", len(partial), len(tableau))
	}
}

func TestGreedyTableauEmpty(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	if got := GreedyTableau(r, []int{0}, 1, 1, 1); got != nil {
		t.Errorf("empty relation: %v", got)
	}
}

func TestConstantCFDsEmptyAndSmall(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	if got := ConstantCFDs(r, Options{}); got != nil {
		t.Errorf("empty relation: %v", got)
	}
	_ = r.Append([]relation.Value{relation.String("x"), relation.String("y")})
	if got := ConstantCFDs(r, Options{MinSupport: 2}); got != nil {
		t.Errorf("single row with support 2: %v", got)
	}
}

func TestConstantCFDsSupportThreshold(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 120, Seed: 10})
	for _, c := range ConstantCFDs(r, Options{MinSupport: 5, MaxLHS: 1}) {
		if got := c.Support(r); got < 5 {
			t.Errorf("rule %v support %d < 5", c, got)
		}
	}
}
