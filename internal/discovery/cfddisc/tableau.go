package cfddisc

import (
	"fmt"
	"strings"

	"deptree/internal/deps/cfd"
	"deptree/internal/relation"
)

// ParseTableau parses a textual pattern tableau into one CFD per pattern
// row, sharing a single embedded FD. The grammar is
//
//	spec     := header ':' row (';' row)*
//	header   := attrList '->' attrList
//	row      := cellList '->' cellList
//	cell     := '_' | literal
//
// e.g. "name,region->price: _,Boston->299; West Wood,_->499". Attribute
// and cell lists are comma-separated; '_' is the wildcard cell; constant
// cells are parsed against the attribute's kind (so "299" in an int
// column is the integer constant). Whitespace around every token is
// trimmed. The cell count of every row must match the header width.
func ParseTableau(schema *relation.Schema, spec string) ([]cfd.CFD, error) {
	head, body, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("cfddisc: tableau %q missing ':' between embedded FD and rows", spec)
	}
	xNames, yNames, err := parseAttrLists(head)
	if err != nil {
		return nil, err
	}
	cols := make([]int, 0, len(xNames)+len(yNames))
	for _, name := range append(append([]string{}, xNames...), yNames...) {
		i := schema.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("cfddisc: no attribute %q in schema", name)
		}
		cols = append(cols, i)
	}
	var out []cfd.CFD
	for _, row := range strings.Split(body, ";") {
		if strings.TrimSpace(row) == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(row, "->")
		if !ok {
			return nil, fmt.Errorf("cfddisc: tableau row %q missing '->'", strings.TrimSpace(row))
		}
		cellSpecs := append(splitTrim(lhs), splitTrim(rhs)...)
		if len(cellSpecs) != len(cols) {
			return nil, fmt.Errorf("cfddisc: tableau row %q has %d cells for %d attributes",
				strings.TrimSpace(row), len(cellSpecs), len(cols))
		}
		cells := make([]cfd.Cell, len(cellSpecs))
		for i, cs := range cellSpecs {
			if cs == "_" {
				cells[i] = cfd.Wildcard()
				continue
			}
			v, err := relation.Parse(cs, schema.Attr(cols[i]).Kind)
			if err != nil {
				return nil, fmt.Errorf("cfddisc: tableau cell %q for %s: %w",
					cs, schema.Attr(cols[i]).Name, err)
			}
			cells[i] = cfd.Const(v)
		}
		c, err := cfd.New(schema, xNames, yNames, cells)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cfddisc: tableau %q has no pattern rows", spec)
	}
	return out, nil
}

// parseAttrLists splits the "x1,x2->y1" header of a tableau spec.
func parseAttrLists(head string) (x, y []string, err error) {
	lhs, rhs, ok := strings.Cut(head, "->")
	if !ok {
		return nil, nil, fmt.Errorf("cfddisc: tableau header %q missing '->'", strings.TrimSpace(head))
	}
	x, y = splitTrim(lhs), splitTrim(rhs)
	if len(x) == 0 || len(y) == 0 {
		return nil, nil, fmt.Errorf("cfddisc: tableau header %q needs attributes on both sides", strings.TrimSpace(head))
	}
	return x, y, nil
}

// splitTrim splits on commas and trims whitespace, keeping empty cells
// out (a trailing comma is tolerated, an interior empty cell is caught by
// the width check).
func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
