// Package cfddisc implements CFD discovery (paper §2.5.3): CFDMiner-style
// mining of minimal constant CFDs [35],[36], and the greedy near-optimal
// tableau construction of Golab et al. [49] for a given embedded FD.
// Generating an optimal tableau is NP-complete [49]; the greedy algorithm
// trades optimality for a logarithmic approximation, which the benchmarks
// exercise.
package cfddisc

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"deptree/internal/attrset"
	"deptree/internal/deps/cfd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures constant-CFD mining.
type Options struct {
	// MinSupport is the minimum number of tuples a pattern must match
	// (default 2).
	MinSupport int
	// MaxLHS bounds the number of constant attributes in a pattern
	// (default 3).
	MaxLHS int
	// Workers fans the per-pattern conclusion checks across goroutines;
	// output is identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the level-wise pattern enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 3
	}
	return o
}

// item is one (column, value) constant of a pattern.
type item struct {
	col int
	key string
}

// pattern is a sorted constant itemset.
type pattern []item

func (p pattern) cols() attrset.Set {
	var s attrset.Set
	for _, it := range p {
		s = s.Add(it.col)
	}
	return s
}

func (p pattern) id() string {
	var b strings.Builder
	for _, it := range p {
		b.WriteString(strconv.Itoa(it.col))
		b.WriteByte(':')
		b.WriteString(it.key)
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Result is a constant-CFD mining outcome; a Partial run covers a
// deterministic prefix of the level-wise pattern enumeration.
type Result struct {
	CFDs []cfd.CFD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of pattern nodes whose conclusions were
	// checked.
	Completed int
}

// batch is the fixed MapBudget stripe width over pattern nodes. Fixed so
// the truncation point is worker-independent.
const batch = 8

// ConstantCFDs mines minimal constant CFDs (X = t_p → A = a): patterns of
// constants whose matching tuples all share one A value, with support ≥
// MinSupport, and no sub-pattern already implying the same conclusion.
func ConstantCFDs(r *relation.Relation, opts Options) []cfd.CFD {
	return DiscoverContext(context.Background(), r, opts).CFDs
}

// DiscoverContext is ConstantCFDs under a context and Options.Budget.
// Within one level the per-node conclusion scans are independent and fan
// out; the minimality bookkeeping then replays the completed node prefix
// in the sequential order, so results are byte-identical to the
// sequential miner at any worker count. Growing the next level stays
// sequential (it needs the full current level).
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return Result{}
	}
	// rowsOf maps a pattern id to its matching rows; level-wise growth.
	type node struct {
		pat  pattern
		rows []int
	}
	// Level 1: single items.
	var level []node
	for c := 0; c < n; c++ {
		groups := map[string][]int{}
		for row := 0; row < r.Rows(); row++ {
			k := r.Value(row, c).Key()
			groups[k] = append(groups[k], row)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(groups[k]) >= opts.MinSupport {
				level = append(level, node{pat: pattern{{col: c, key: k}}, rows: groups[k]})
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "cfddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("level-1", len(level))
	defer run.End()
	mineSpan := run.Child(obs.KindPhase, "pattern-mining")

	// implied records conclusions already derived from some sub-pattern:
	// map from conclusion (col, valueKey) to the list of pattern ids.
	type conclusion struct {
		col int
		key string
	}
	impliedBy := map[conclusion][]pattern{}
	var results []cfd.CFD
	addResult := func(p pattern, col int, rows []int) {
		// Minimality: some sub-pattern already implies this conclusion?
		key := r.Value(rows[0], col).Key()
		for _, prev := range impliedBy[conclusion{col, key}] {
			if subPattern(prev, p) {
				return
			}
		}
		impliedBy[conclusion{col, key}] = append(impliedBy[conclusion{col, key}], p)
		// Assemble the CFD: X constants → A = a.
		x := make([]string, len(p))
		cells := make([]cfd.Cell, 0, len(p)+1)
		for i, it := range p {
			x[i] = r.Schema().Attr(it.col).Name
			cells = append(cells, cfd.Const(r.Value(rows[0], it.col)))
		}
		y := []string{r.Schema().Attr(col).Name}
		cells = append(cells, cfd.Const(r.Value(rows[0], col)))
		c, err := cfd.New(r.Schema(), x, y, cells)
		if err != nil {
			panic(err) // constructed from schema: cannot fail
		}
		results = append(results, c)
	}
	completed := 0
	var stopErr error
	for depth := 1; depth <= opts.MaxLHS && len(level) > 0; depth++ {
		// Fan out: each node independently finds its conclusion columns
		// (ascending), the order the sequential miner visits them in.
		concl, done, err := engine.MapBudget(pool, len(level), batch, func(i int) []int {
			nd := level[i]
			cols := nd.pat.cols()
			var out []int
			for a := 0; a < n; a++ {
				if cols.Has(a) {
					continue
				}
				k0 := r.Value(nd.rows[0], a).Key()
				same := true
				for _, row := range nd.rows[1:] {
					if r.Value(row, a).Key() != k0 {
						same = false
						break
					}
				}
				if same {
					out = append(out, a)
				}
			}
			return out
		})
		completed += done
		// Replay the completed prefix sequentially for minimality.
		for i := 0; i < done; i++ {
			for _, a := range concl[i] {
				addResult(level[i].pat, a, level[i].rows)
			}
		}
		if err != nil {
			stopErr = err
			break
		}
		// Grow: combine nodes sharing all but one item.
		seen := map[string]bool{}
		var next []node
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				merged, ok := mergePatterns(level[i].pat, level[j].pat)
				if !ok || seen[merged.id()] {
					continue
				}
				seen[merged.id()] = true
				rows := intersectSorted(level[i].rows, level[j].rows)
				if len(rows) >= opts.MinSupport {
					next = append(next, node{pat: merged, rows: rows})
				}
			}
		}
		level = next
	}
	mineSpan.SetAttr("completed", completed)
	mineSpan.End()
	reg.Counter("cfddisc.nodes.checked").Add(int64(completed))
	reg.Counter("cfddisc.cfds.valid").Add(int64(len(results)))
	res := Result{CFDs: results, Completed: completed}
	if stopErr != nil {
		res.Partial = true
		res.Reason = engine.Reason(stopErr)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// subPattern reports whether a ⊆ b as item sets.
func subPattern(a, b pattern) bool {
	i := 0
	for _, it := range b {
		if i < len(a) && a[i] == it {
			i++
		}
	}
	return i == len(a)
}

// mergePatterns unions two same-size patterns differing in exactly one
// item, producing a size+1 pattern; ok is false otherwise or when the
// union binds one column twice.
func mergePatterns(a, b pattern) (pattern, bool) {
	merged := append(pattern{}, a...)
	added := 0
	for _, it := range b {
		if !containsItem(merged, it) {
			merged = append(merged, it)
			added++
		}
	}
	if added != 1 {
		return nil, false
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].col != merged[j].col {
			return merged[i].col < merged[j].col
		}
		return merged[i].key < merged[j].key
	})
	// One column, one constant.
	for i := 1; i < len(merged); i++ {
		if merged[i].col == merged[i-1].col {
			return nil, false
		}
	}
	return merged, true
}

func containsItem(p pattern, it item) bool {
	for _, x := range p {
		if x == it {
			return true
		}
	}
	return false
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// GreedyTableau builds a near-optimal pattern tableau for the embedded FD
// X → A following Golab et al. [49]: candidate patterns are the distinct
// X-values (as constant rows) plus the all-wildcard row; a pattern is
// admissible when the FD holds with confidence ≥ minConf on its matching
// tuples; patterns are picked greedily by marginal tuple coverage until
// coverage ≥ minCover of the admissible tuples.
func GreedyTableau(r *relation.Relation, x []int, a int, minConf, minCover float64) []cfd.CFD {
	if r.Rows() == 0 {
		return nil
	}
	xCodes, xCard := r.GroupCodes(x)
	aCodes, _ := r.Codes(a)
	groups := make([][]int, xCard)
	for row, g := range xCodes {
		groups[g] = append(groups[g], row)
	}
	// Admissible groups: confidence = majority fraction ≥ minConf.
	type candidate struct {
		rows []int
		conf float64
	}
	var cands []candidate
	admissibleTotal := 0
	for _, rows := range groups {
		counts := map[int]int{}
		best := 0
		for _, row := range rows {
			counts[aCodes[row]]++
			if counts[aCodes[row]] > best {
				best = counts[aCodes[row]]
			}
		}
		conf := float64(best) / float64(len(rows))
		if conf >= minConf {
			cands = append(cands, candidate{rows: rows, conf: conf})
			admissibleTotal += len(rows)
		}
	}
	if admissibleTotal == 0 {
		return nil
	}
	// Greedy selection by coverage.
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].rows) != len(cands[j].rows) {
			return len(cands[i].rows) > len(cands[j].rows)
		}
		return cands[i].rows[0] < cands[j].rows[0]
	})
	covered := 0
	var out []cfd.CFD
	xNames := make([]string, len(x))
	for i, c := range x {
		xNames[i] = r.Schema().Attr(c).Name
	}
	aName := r.Schema().Attr(a).Name
	for _, cand := range cands {
		if float64(covered) >= minCover*float64(admissibleTotal) {
			break
		}
		cells := make([]cfd.Cell, 0, len(x)+1)
		for _, c := range x {
			cells = append(cells, cfd.Const(r.Value(cand.rows[0], c)))
		}
		cells = append(cells, cfd.Wildcard())
		c, err := cfd.New(r.Schema(), xNames, []string{aName}, cells)
		if err != nil {
			panic(err)
		}
		out = append(out, c)
		covered += len(cand.rows)
	}
	return out
}
