package cfddisc

import (
	"sort"

	"deptree/internal/deps/cfd"
	"deptree/internal/relation"
)

// GeneralOptions configures CTANE-style general CFD discovery.
type GeneralOptions struct {
	// RHS is the dependent column; < 0 searches every column.
	RHS int
	// MinSupport is the minimum number of tuples matching the LHS pattern
	// (default 2).
	MinSupport int
	// MaxLHS bounds the determinant attribute count (default 2).
	MaxLHS int
	// MaxConstants bounds how many frequent constants per attribute are
	// tried in patterns (default 5).
	MaxConstants int
}

func (o GeneralOptions) withDefaults() GeneralOptions {
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	if o.MaxConstants == 0 {
		o.MaxConstants = 5
	}
	return o
}

// GeneralCFDs discovers minimal general CFDs (X → A, t_p) with mixed
// wildcard/constant LHS cells and a wildcard RHS cell, in the spirit of
// CTANE [35],[36]: the search lattice ranges over attribute sets *and*
// pattern tuples, a pattern being more general when it has fewer
// constants. A discovered CFD is reported only if no more-general pattern
// over the same or a smaller attribute set already yields a valid rule.
func GeneralCFDs(r *relation.Relation, opts GeneralOptions) []cfd.CFD {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return nil
	}
	rhsCols := []int{opts.RHS}
	if opts.RHS < 0 {
		rhsCols = rhsCols[:0]
		for c := 0; c < n; c++ {
			rhsCols = append(rhsCols, c)
		}
	}
	// Frequent constants per column.
	freqConsts := make([][]relation.Value, n)
	for c := 0; c < n; c++ {
		counts := map[string]int{}
		rep := map[string]relation.Value{}
		for row := 0; row < r.Rows(); row++ {
			v := r.Value(row, c)
			counts[v.Key()]++
			rep[v.Key()] = v
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if counts[keys[i]] != counts[keys[j]] {
				return counts[keys[i]] > counts[keys[j]]
			}
			return keys[i] < keys[j]
		})
		for i, k := range keys {
			if i >= opts.MaxConstants || counts[k] < opts.MinSupport {
				break
			}
			freqConsts[c] = append(freqConsts[c], rep[k])
		}
	}

	type node struct {
		cols  []int      // LHS attributes, ascending
		cells []cfd.Cell // aligned pattern cells (wildcard or constant)
	}
	// Enumerate LHS attribute sets up to MaxLHS, then patterns over them
	// ordered by constant count (more general first).
	var attrSets [][]int
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) > 0 {
			attrSets = append(attrSets, append([]int(nil), cur...))
		}
		if len(cur) == opts.MaxLHS {
			return
		}
		for c := start; c < n; c++ {
			build(c+1, append(cur, c))
		}
	}
	build(0, nil)
	sort.Slice(attrSets, func(i, j int) bool {
		if len(attrSets[i]) != len(attrSets[j]) {
			return len(attrSets[i]) < len(attrSets[j])
		}
		for k := range attrSets[i] {
			if attrSets[i][k] != attrSets[j][k] {
				return attrSets[i][k] < attrSets[j][k]
			}
		}
		return false
	})

	var results []cfd.CFD
	// found[rhs] collects accepted (cols, cells) for generality pruning.
	found := map[int][]node{}

	moreGeneral := func(a node, b node) bool {
		// a is at least as general as b: a's attributes ⊆ b's and, on the
		// shared attributes, every constant of a appears in b (wildcards
		// generalize constants).
		for i, ca := range a.cols {
			pos := -1
			for j, cb := range b.cols {
				if cb == ca {
					pos = j
					break
				}
			}
			if pos < 0 {
				return false
			}
			if !a.cells[i].IsWildcard() {
				if b.cells[pos].IsWildcard() {
					return false
				}
				if !a.cells[i].Conds[0].Const.Equal(b.cells[pos].Conds[0].Const) {
					return false
				}
			}
		}
		return true
	}

	for _, cols := range attrSets {
		// Pattern enumeration: each attribute is wildcard or a frequent
		// constant. Order by number of constants ascending.
		var patterns [][]cfd.Cell
		var pat func(i int, cur []cfd.Cell)
		pat = func(i int, cur []cfd.Cell) {
			if i == len(cols) {
				patterns = append(patterns, append([]cfd.Cell(nil), cur...))
				return
			}
			pat(i+1, append(cur, cfd.Wildcard()))
			for _, v := range freqConsts[cols[i]] {
				pat(i+1, append(cur, cfd.Const(v)))
			}
		}
		pat(0, nil)
		sort.SliceStable(patterns, func(i, j int) bool {
			return constCount(patterns[i]) < constCount(patterns[j])
		})
		for _, cells := range patterns {
			nd := node{cols: cols, cells: cells}
			for _, a := range rhsCols {
				if contains(cols, a) {
					continue
				}
				// Generality pruning against accepted rules.
				pruned := false
				for _, prev := range found[a] {
					if moreGeneral(prev, nd) {
						pruned = true
						break
					}
				}
				if pruned {
					continue
				}
				cand := assemble(r, cols, cells, a)
				if cand.Support(r) < opts.MinSupport {
					continue
				}
				if cand.Holds(r) {
					results = append(results, cand)
					found[a] = append(found[a], nd)
				}
			}
		}
	}
	return results
}

func constCount(cells []cfd.Cell) int {
	n := 0
	for _, c := range cells {
		if !c.IsWildcard() {
			n++
		}
	}
	return n
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func assemble(r *relation.Relation, cols []int, cells []cfd.Cell, rhs int) cfd.CFD {
	x := make([]string, len(cols))
	for i, c := range cols {
		x[i] = r.Schema().Attr(c).Name
	}
	all := append(append([]cfd.Cell{}, cells...), cfd.Wildcard())
	c, err := cfd.New(r.Schema(), x, []string{r.Schema().Attr(rhs).Name}, all)
	if err != nil {
		panic(err) // constructed from the schema: cannot fail
	}
	return c
}

// RangeECFDs discovers eCFDs whose condition is a numeric range on one
// attribute (in the spirit of discovering CFDs with built-in predicates
// [114]): for a numeric condition column B and embedded FD X → A, it finds
// maximal-coverage intervals [lo, hi] of B values on which the FD holds,
// and emits eCFDs (B∈[lo,hi], X → A). Candidate interval endpoints are the
// distinct B values; the search mirrors the CSD tableau DP.
func RangeECFDs(r *relation.Relation, condCol int, x []int, a int, minSupport int) []cfd.CFD {
	if r.Rows() == 0 {
		return nil
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	// Distinct sorted condition values.
	var vals []float64
	seen := map[float64]bool{}
	for row := 0; row < r.Rows(); row++ {
		v := r.Value(row, condCol).Num()
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	// Valid maximal intervals: expand [i, j] while the conditioned FD
	// holds; greedily take the longest valid interval starting at each i,
	// skipping intervals inside an already-taken one.
	holdsOn := func(lo, hi float64) (bool, int) {
		sub := r.Select(func(row int) bool {
			v := r.Value(row, condCol).Num()
			return v >= lo && v <= hi
		})
		if sub.Rows() < minSupport {
			return false, sub.Rows()
		}
		emb := cfd.FromFD(x, []int{a}, r.Schema())
		return emb.Holds(sub), sub.Rows()
	}
	var out []cfd.CFD
	covered := -1
	for i := 0; i < len(vals); i++ {
		if i <= covered {
			continue
		}
		best := -1
		for j := i; j < len(vals); j++ {
			if ok, _ := holdsOn(vals[i], vals[j]); ok {
				best = j
			} else if best >= 0 {
				break
			}
		}
		if best < 0 {
			continue
		}
		// Assemble the eCFD: B ≥ lo AND B ≤ hi via two condition columns
		// is not expressible in one cell; use a disjunctive cell when the
		// interval is a single point, otherwise a pair of predicate cells
		// on the same attribute (allowed: X may repeat a column? No —
		// schema indices must be unique). Represent the range with the
		// conjunction of ≥lo on the condition cell and a second check via
		// an eCFD whose cell uses ≤hi when lo is the global minimum, ≥lo
		// when hi is the global maximum, or an explicit disjunction of
		// equality conditions over the covered distinct values otherwise.
		var cell cfd.Cell
		switch {
		case i == 0 && best == len(vals)-1:
			cell = cfd.Wildcard()
		case i == 0:
			cell = cfd.Pred(cfd.OpLe, relation.Float(vals[best]))
		case best == len(vals)-1:
			cell = cfd.Pred(cfd.OpGe, relation.Float(vals[i]))
		default:
			var conds []cfd.Cond
			for k := i; k <= best; k++ {
				conds = append(conds, cfd.Cond{Op: cfd.OpEq, Const: relation.Float(vals[k])})
			}
			cell = cfd.AnyOf(conds...)
		}
		names := make([]string, 0, len(x)+1)
		cells := make([]cfd.Cell, 0, len(x)+2)
		names = append(names, r.Schema().Attr(condCol).Name)
		cells = append(cells, cell)
		for _, c := range x {
			names = append(names, r.Schema().Attr(c).Name)
			cells = append(cells, cfd.Wildcard())
		}
		cells = append(cells, cfd.Wildcard())
		e, err := cfd.New(r.Schema(), names, []string{r.Schema().Attr(a).Name}, cells)
		if err != nil {
			panic(err)
		}
		out = append(out, e)
		covered = best
	}
	return out
}
