package cfddisc

import (
	"strings"
	"testing"

	"deptree/internal/relation"
)

// FuzzParseTableau throws arbitrary tableau specs at the pattern-tableau
// parser: it must return a structured error or a non-empty CFD list with
// round-trippable renderings — and never panic. The seed corpus covers
// every grammar error the parser documents (missing ':', missing '->',
// unknown attribute, wrong cell count, zero rows, unparsable literal)
// plus binary junk.
func FuzzParseTableau(f *testing.F) {
	f.Add("name,region->price: _,Boston->299; West Wood,_->499")
	f.Add("name->price: _->299")
	f.Add("name,region->price")                 // missing ':'
	f.Add("name,region price: _,Boston 299")    // header missing '->'
	f.Add("nope->price: _->299")                // unknown attribute
	f.Add("name,region->price: _->299")         // wrong cell count
	f.Add("name->price:")                       // zero rows
	f.Add("name->price: ;;; ")                  // only empty rows
	f.Add("name->price: _->notanumber")         // unparsable int literal
	f.Add("region->name: Boston->_,_")          // extra cells
	f.Add("name , region -> price : _ , _ -> _")
	f.Add(":")
	f.Add("")
	f.Add("\x00\xff->\xfe: _->_")
	f.Add(strings.Repeat("a,", 100) + "b->c: _->_")

	schema := relation.NewSchema(
		relation.Attribute{Name: "name", Kind: relation.KindString},
		relation.Attribute{Name: "region", Kind: relation.KindString},
		relation.Attribute{Name: "price", Kind: relation.KindInt},
	)

	f.Fuzz(func(t *testing.T, spec string) {
		cfds, err := ParseTableau(schema, spec) // a panic here fails the fuzz run
		if err != nil {
			if cfds != nil {
				t.Fatalf("error %v alongside non-nil result", err)
			}
			return
		}
		if len(cfds) == 0 {
			t.Fatalf("nil error with empty tableau for spec %q", spec)
		}
		for _, c := range cfds {
			if c.String() == "" {
				t.Fatalf("parsed CFD renders empty for spec %q", spec)
			}
		}
	})
}
