package cfddisc

import (
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestGeneralCFDsOnTable5(t *testing.T) {
	// On r5 the plain FD region → address holds (the two El Paso variants
	// are singleton groups), so CTANE reports the wildcard rule and the
	// generality pruning suppresses conditioned variants like the paper's
	// cfd1 — which r5 satisfies but does not *require*.
	r := gen.Table5()
	addr := r.Schema().MustIndex("address")
	cfds := GeneralCFDs(r, GeneralOptions{RHS: addr, MinSupport: 2, MaxLHS: 2})
	if len(cfds) == 0 {
		t.Fatal("no general CFDs discovered")
	}
	foundWildcard := false
	for _, c := range cfds {
		if !c.Holds(r) {
			t.Errorf("discovered CFD %v does not hold", c)
		}
		if c.Support(r) < 2 {
			t.Errorf("CFD %v under-supported", c)
		}
		if c.String() == "region=_ -> address=_" {
			foundWildcard = true
		}
		if c.String() == "region=Jackson -> address=_" {
			t.Errorf("conditioned rule %v not pruned by the wildcard rule", c)
		}
	}
	if !foundWildcard {
		t.Errorf("region=_ -> address=_ missing; got %v", cfds)
	}
}

func TestGeneralCFDsGeneralityPruning(t *testing.T) {
	// When the plain FD holds, no conditioned variant of it is reported.
	r := gen.Hotels(gen.HotelConfig{Rows: 80, Seed: 51})
	region := r.Schema().MustIndex("region")
	addr := r.Schema().MustIndex("address")
	cfds := GeneralCFDs(r, GeneralOptions{RHS: region, MinSupport: 2, MaxLHS: 1})
	sawWildcardAddr := false
	for _, c := range cfds {
		if len(c.X) == 1 && c.X[0] == addr {
			if c.Pattern[0].IsWildcard() {
				sawWildcardAddr = true
			} else if sawWildcardAddr {
				t.Errorf("conditioned rule %v reported although the plain FD holds", c)
			}
		}
	}
	if !sawWildcardAddr {
		t.Error("address=_ -> region missing on clean data")
	}
}

func TestGeneralCFDsConditionalOnly(t *testing.T) {
	// Instance where x → y holds only under cond=a.
	s := relation.Strings("cond", "x", "y")
	rows := [][]relation.Value{
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("1"), relation.String("p")},
		{relation.String("a"), relation.String("2"), relation.String("q")},
		{relation.String("b"), relation.String("1"), relation.String("p")},
		{relation.String("b"), relation.String("1"), relation.String("r")},
		{relation.String("b"), relation.String("2"), relation.String("s")},
	}
	r := relation.MustFromRows("c", s, rows)
	y := s.MustIndex("y")
	cfds := GeneralCFDs(r, GeneralOptions{RHS: y, MinSupport: 2, MaxLHS: 2})
	found := false
	for _, c := range cfds {
		if c.String() == "cond=a, x=_ -> y=_" {
			found = true
		}
		if c.String() == "x=_ -> y=_" {
			t.Error("unconditioned x→y must not hold")
		}
	}
	if !found {
		t.Errorf("conditional rule missing: %v", cfds)
	}
}

func TestRangeECFDs(t *testing.T) {
	// rate ≤ 200 conditions the paper's ecfd1 on r5: name → address holds
	// exactly on the low-rate tuples.
	r := gen.Table5()
	s := r.Schema()
	out := RangeECFDs(r, s.MustIndex("rate"), []int{s.MustIndex("name")}, s.MustIndex("address"), 2)
	if len(out) == 0 {
		t.Fatal("no range eCFDs discovered")
	}
	for _, e := range out {
		if !e.Holds(r) {
			t.Errorf("range eCFD %v does not hold", e)
		}
	}
	// The low-rate interval must be found (rates 189,189 share an address;
	// 230/250 are singletons in their groups... name→address fails on the
	// full relation, so some strict sub-interval is reported).
	full := false
	for _, e := range out {
		if e.Pattern[0].IsWildcard() {
			full = true
		}
	}
	if full {
		t.Error("full-range condition reported although the FD fails globally")
	}
}

func TestRangeECFDsCleanData(t *testing.T) {
	// When the FD holds globally, the whole range is one wildcard rule.
	r := gen.Hotels(gen.HotelConfig{Rows: 60, Seed: 53})
	s := r.Schema()
	out := RangeECFDs(r, s.MustIndex("price"), []int{s.MustIndex("address")}, s.MustIndex("region"), 2)
	if len(out) != 1 {
		t.Fatalf("rules = %v, want a single full-range rule", out)
	}
	if !out[0].Pattern[0].IsWildcard() {
		t.Errorf("full range should be wildcard: %v", out[0])
	}
}

func TestRangeECFDsEmpty(t *testing.T) {
	r := relation.New("e", relation.NewSchema(
		relation.Attribute{Name: "b", Kind: relation.KindInt},
		relation.Attribute{Name: "x", Kind: relation.KindString},
		relation.Attribute{Name: "y", Kind: relation.KindString},
	))
	if out := RangeECFDs(r, 0, []int{1}, 2, 2); out != nil {
		t.Errorf("empty relation: %v", out)
	}
}
