package registry

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

// samplingAlgos returns the registered discoverers that support
// sample-then-verify mode.
func samplingAlgos(t *testing.T) []Algo {
	t.Helper()
	var out []Algo
	for _, a := range All() {
		if a.Sampling {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		t.Fatal("no sampling-capable discoverers registered")
	}
	return out
}

func lineSet(lines []string) map[string]bool {
	m := make(map[string]bool, len(lines))
	for _, l := range lines {
		m[l] = true
	}
	return m
}

// samplingCorpora are the seeded generator relations the differential
// suite runs over: categorical shapes (FD-rich), a planted FD with
// noise, a monotone series (OD-rich) and the paper's running example.
func samplingCorpora() map[string]*relation.Relation {
	return map[string]*relation.Relation{
		"table7":      gen.Table7(),
		"categorical": gen.Categorical(300, []int{8, 5, 3}, 11),
		"withfd":      gen.WithFD(250, []int{10, 6}, 0.1, 5),
		"series":      gen.Series(200, -5, 10, 0.2, 7),
	}
}

// TestSamplingExpectedAlgos pins the sampling-capable set: exactly the
// four discoverers whose dependency classes admit exact full-relation
// verification through the counting/order machinery.
func TestSamplingExpectedAlgos(t *testing.T) {
	want := map[string]bool{"tane": true, "fastfd": true, "od": true, "lexod": true}
	got := map[string]bool{}
	for _, a := range samplingAlgos(t) {
		got[a.Name] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sampling-capable set = %v, want %v", got, want)
	}
}

// TestSampleModeNeverEmitsUnverified is the core one-sided guarantee:
// for every sampling-capable discoverer and corpus, every line emitted
// in sample mode also appears in the full-relation run's output. (The
// converse — sample mode may miss dependencies — is permitted.)
func TestSampleModeNeverEmitsUnverified(t *testing.T) {
	for name, r := range samplingCorpora() {
		for _, a := range samplingAlgos(t) {
			full := a.Run(context.Background(), r, RunOptions{Workers: 2})
			if full.Partial {
				t.Fatalf("%s/%s: full run unexpectedly partial: %s", a.Name, name, full.Reason)
			}
			fullSet := lineSet(full.Lines)
			for _, sampleRows := range []int{r.Rows() / 10, r.Rows() / 3, r.Rows() - 1} {
				if sampleRows < 2 {
					continue
				}
				got := a.Run(context.Background(), r, RunOptions{
					Workers: 2, SampleRows: sampleRows, SampleSeed: 42,
				})
				if got.Partial {
					t.Fatalf("%s/%s rows=%d: sample run unexpectedly partial: %s",
						a.Name, name, sampleRows, got.Reason)
				}
				for _, line := range got.Lines {
					if !fullSet[line] {
						t.Fatalf("%s/%s rows=%d: sample mode emitted %q, absent from full output %v",
							a.Name, name, sampleRows, line, full.Lines)
					}
				}
			}
		}
	}
}

// TestSampleModeODExact pins the stronger guarantee for the pairwise-OD
// discoverer: its candidate space is fixed (every single-attribute pair,
// both polarities), so verified sample-mode output is EXACTLY the full
// run's output — sampling can only propose a superset of the valid ODs,
// and verification trims it back to equality.
func TestSampleModeODExact(t *testing.T) {
	a, ok := Lookup("od")
	if !ok {
		t.Fatal("od not registered")
	}
	for name, r := range samplingCorpora() {
		full := a.Run(context.Background(), r, RunOptions{Workers: 2})
		for _, sampleRows := range []int{5, r.Rows() / 4, r.Rows() / 2} {
			if sampleRows < 2 {
				continue
			}
			got := a.Run(context.Background(), r, RunOptions{
				Workers: 2, SampleRows: sampleRows, SampleSeed: 7,
			})
			if !reflect.DeepEqual(got.Lines, full.Lines) {
				t.Fatalf("od/%s rows=%d: sample output diverges from full:\n sample=%v\n full=%v",
					name, sampleRows, got.Lines, full.Lines)
			}
		}
	}
}

// TestSampleModeTrivialEqualsFull: a sample covering the whole relation
// must reproduce the full run byte-for-byte — no verification pass, no
// reordering.
func TestSampleModeTrivialEqualsFull(t *testing.T) {
	r := gen.Table7()
	for _, a := range samplingAlgos(t) {
		full := a.Run(context.Background(), r, RunOptions{Workers: 2})
		for _, sampleRows := range []int{r.Rows(), r.Rows() + 100} {
			got := a.Run(context.Background(), r, RunOptions{
				Workers: 2, SampleRows: sampleRows, SampleSeed: 3,
			})
			if !reflect.DeepEqual(got.Lines, full.Lines) || got.Partial != full.Partial {
				t.Fatalf("%s: trivial sample diverges from full:\n sample=%v\n full=%v",
					a.Name, got.Lines, full.Lines)
			}
		}
	}
}

// TestSampleModeDeterministic: identical (relation, rows, seed) must
// yield identical output for every worker count; a different seed may
// differ (different sample) but must stay sound, which
// TestSampleModeNeverEmitsUnverified already covers.
func TestSampleModeDeterministic(t *testing.T) {
	r := gen.WithFD(200, []int{12, 4}, 0.15, 9)
	for _, a := range samplingAlgos(t) {
		var first []string
		for _, workers := range []int{1, 2, 4, 7} {
			got := a.Run(context.Background(), r, RunOptions{
				Workers: workers, SampleRows: 40, SampleSeed: 13,
			})
			if got.Partial {
				t.Fatalf("%s workers=%d: unexpectedly partial: %s", a.Name, workers, got.Reason)
			}
			if first == nil {
				first = got.Lines
			} else if !reflect.DeepEqual(first, got.Lines) {
				t.Fatalf("%s workers=%d: output diverged:\n got=%v\n want=%v",
					a.Name, workers, got.Lines, first)
			}
		}
	}
}

// TestSampleModeVerifiedHoldOnFull re-checks every emitted line the hard
// way for the FD discoverers: parse it back and confirm it holds (g3 =
// 0) on the full relation. This closes the loop independently of the
// full-run subset check.
func TestSampleModeVerifiedHoldOnFull(t *testing.T) {
	r := gen.WithFD(300, []int{15, 5}, 0.2, 21)
	for _, algoName := range []string{"tane", "fastfd"} {
		a, ok := Lookup(algoName)
		if !ok {
			t.Fatalf("%s not registered", algoName)
		}
		got := a.Run(context.Background(), r, RunOptions{Workers: 2, SampleRows: 30, SampleSeed: 4})
		for _, line := range got.Lines {
			f, err := parseFDLine(r, line)
			if err != nil {
				t.Fatalf("%s: cannot parse emitted line %q: %v", algoName, line, err)
			}
			if !f.Holds(r) {
				t.Fatalf("%s: emitted FD %q does not hold on the full relation", algoName, line)
			}
		}
	}
}

// parseFDLine parses one rendered FD line ("lhs1,lhs2 -> rhs") back
// against the relation's schema.
func parseFDLine(r *relation.Relation, line string) (fd.FD, error) {
	parts := strings.SplitN(line, "->", 2)
	if len(parts) != 2 {
		return fd.FD{}, fmt.Errorf("line %q is not lhs -> rhs", line)
	}
	split := func(s string) []string {
		var out []string
		for _, x := range strings.Split(s, ",") {
			if x = strings.TrimSpace(x); x != "" {
				out = append(out, x)
			}
		}
		return out
	}
	return fd.New(r.Schema(), split(parts[0]), split(parts[1]))
}
