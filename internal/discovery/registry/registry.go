// Package registry is the single enrollment point for every discoverer
// in the family tree: each algorithm registers a name, its dependency
// class, and a context-aware runner that maps engine-level results to the
// rendered lines the CLI and server emit. The server's endpoint table,
// the CLI's algo dispatch, and the differential/chaos/fuzz harnesses all
// iterate this table, so adding an algorithm here enrolls it everywhere
// at once — the completeness test in internal/engine proves no endpoint
// escapes the harnesses.
package registry

import (
	"context"
	"fmt"

	"deptree/internal/deps/dd"
	"deptree/internal/deps/fd"
	"deptree/internal/deps/ned"
	"deptree/internal/deps/od"
	"deptree/internal/discovery/cddisc"
	"deptree/internal/discovery/cfddisc"
	"deptree/internal/discovery/cords"
	"deptree/internal/discovery/dddisc"
	"deptree/internal/discovery/fastdc"
	"deptree/internal/discovery/fastfd"
	"deptree/internal/discovery/ffddisc"
	"deptree/internal/discovery/mddisc"
	"deptree/internal/discovery/mvddisc"
	"deptree/internal/discovery/nedisc"
	"deptree/internal/discovery/oddisc"
	"deptree/internal/discovery/pfddisc"
	"deptree/internal/discovery/sampling"
	"deptree/internal/discovery/sddisc"
	"deptree/internal/discovery/tane"
	"deptree/internal/engine"
	"deptree/internal/metric"
	"deptree/internal/obs"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// RunOptions carries the execution knobs every registered runner
// understands.
type RunOptions struct {
	// Workers is the engine worker count (<= 0 selects 1).
	Workers int
	// Budget bounds the run; exhausted budgets degrade to a Partial
	// output, never an error.
	Budget engine.Budget
	// MaxErr is the g3 budget for approximate FDs (tane only).
	MaxErr float64
	// SampleRows > 0 selects sample-then-verify mode on discoverers with
	// Sampling: candidates are mined on a deterministic SampleRows-row
	// sample and only those verified exactly on the full relation are
	// emitted. Discoverers without Sampling ignore the knobs; callers
	// (server, CLI) reject the combination up front with a typed error.
	SampleRows int
	// SampleSeed seeds the deterministic sample permutation.
	SampleSeed int64
	// Obs optionally receives the run's metrics; nil is a no-op.
	Obs *obs.Registry
}

// samplingOptions maps the run knobs to the sampling driver's options.
func samplingOptions(o RunOptions) sampling.Options {
	return sampling.Options{
		Rows: o.SampleRows, Seed: o.SampleSeed,
		Workers: o.Workers, Budget: o.Budget, Obs: o.Obs,
	}
}

// fdVerifier builds the exact-verification predicate sampled FD
// discovery applies to each candidate — the same validity criterion tane
// uses per lattice level: exact partition refinement, or g3 within the
// error budget. All verifications share one partition cache over the
// full relation, so each attribute set is hashed from row values at most
// once and multi-attribute partitions come from cached products; without
// the cache every verified FD would rebuild its partitions from scratch,
// which at a million rows costs more than full-mode discovery.
func fdVerifier(r *relation.Relation, maxErr float64) func(fd.FD) bool {
	cache := engine.NewPartitionCache(r, 0)
	return func(f fd.FD) bool {
		px := cache.Get(f.LHS)
		if maxErr > 0 {
			codes, _ := r.GroupCodes(f.RHS.Cols())
			return px.G3(codes) <= maxErr
		}
		return partition.Refines(px, cache.Get(f.LHS.Union(f.RHS)))
	}
}

// Output is one discovery run rendered as the CLI renders it: one
// dependency per line, plus the truncation state.
type Output struct {
	// Lines holds one rendered dependency per line, in the CLI's order.
	Lines []string
	// Partial marks a budget/cancellation/panic-truncated run; Lines is
	// then a deterministic prefix of the full run's lines.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
}

// Algo is one registered discoverer.
type Algo struct {
	// Name is the endpoint and CLI name (POST /v1/discover/{Name},
	// deptool discover -algo {Name}).
	Name string
	// Class is the dependency class of the family tree the algorithm
	// mines (FD, CFD, MD, ...).
	Class string
	// Doc is a one-line description for the README endpoint table.
	Doc string
	// Sampling marks discoverers that honor RunOptions.SampleRows with
	// the sample-then-verify driver. Call sites reject sample knobs on
	// discoverers without it.
	Sampling bool
	// Incremental marks discoverers with an append-aware revalidation
	// engine in internal/stream (deptool stream, POST /v1/stream/{algo}):
	// the last ruleset is held and each append batch re-decides only what
	// the delta could have changed, with output proven byte-identical to
	// a from-scratch run after every batch. A lockstep test in
	// internal/stream pins this flag to the engines that actually exist.
	Incremental bool
	// Run executes the discoverer over the relation under the options.
	// Lines are deterministic for any worker count, including under a
	// MaxTasks budget.
	Run func(ctx context.Context, r *relation.Relation, o RunOptions) Output
}

// render maps a discovery result slice to output lines via fmt.Sprint
// (every dependency type carries a String method).
func render[T fmt.Stringer](xs []T, partial bool, reason string) Output {
	out := Output{Partial: partial, Reason: reason}
	for _, x := range xs {
		out.Lines = append(out.Lines, fmt.Sprint(x))
	}
	return out
}

// lastCol returns the default RHS column for RHS-directed discoverers:
// the relation's last column, the conventional "measure" position of the
// fixtures and the documented servable default.
func lastCol(r *relation.Relation) int { return r.Cols() - 1 }

// algos is the registry, in the order the CLI documents the names: the
// five original engine-wired discoverers first, then the rest of the
// family tree.
var algos = []Algo{
	{
		Name: "tane", Class: "FD",
		Doc:      "TANE partition-based (approximate) FD discovery",
		Sampling: true, Incremental: true,
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if o.SampleRows > 0 {
				res := sampling.Run(ctx, r, samplingOptions(o),
					func(ctx context.Context, s *relation.Relation) ([]fd.FD, bool, string) {
						dr := tane.DiscoverContext(ctx, s, tane.Options{MaxError: o.MaxErr, Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
						return dr.FDs, dr.Partial, dr.Reason
					},
					fdVerifier(r, o.MaxErr))
				return render(res.Verified, res.Partial, res.Reason)
			}
			res := tane.DiscoverContext(ctx, r, tane.Options{MaxError: o.MaxErr, Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.FDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "fastfd", Class: "FD",
		Doc:      "FastFD difference-set FD discovery",
		Sampling: true, Incremental: true,
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if o.SampleRows > 0 {
				res := sampling.Run(ctx, r, samplingOptions(o),
					func(ctx context.Context, s *relation.Relation) ([]fd.FD, bool, string) {
						dr := fastfd.DiscoverContext(ctx, s, fastfd.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
						return dr.FDs, dr.Partial, dr.Reason
					},
					fdVerifier(r, 0))
				return render(res.Verified, res.Partial, res.Reason)
			}
			res := fastfd.DiscoverContext(ctx, r, fastfd.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.FDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "cords", Class: "SFD",
		Doc: "CORDS soft-FD (correlation) discovery",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := cords.DiscoverContext(ctx, r, cords.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.SFDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "fastdc", Class: "DC",
		Doc: "FastDC denial-constraint discovery (2-predicate)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := fastdc.DiscoverContext(ctx, r, fastdc.Options{MaxPredicates: 2, Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.DCs, res.Partial, res.Reason)
		},
	},
	{
		Name: "od", Class: "OD",
		Doc:      "Set-based order dependency discovery (minimal ODs)",
		Sampling: true, Incremental: true,
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if o.SampleRows > 0 {
				// One set-based verifier over the full relation: per-column
				// rank arrays are built once, each candidate check is a
				// linear scan. Minimality is re-derived over the verified
				// set, since verification can thin the transitive structure.
				verifier := oddisc.NewVerifier(r)
				res := sampling.Run(ctx, r, samplingOptions(o),
					func(ctx context.Context, s *relation.Relation) ([]od.OD, bool, string) {
						dr := oddisc.DiscoverContext(ctx, s, oddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
						return dr.ODs, dr.Partial, dr.Reason
					},
					verifier.Holds)
				return render(oddisc.Minimal(res.Verified), res.Partial, res.Reason)
			}
			res := oddisc.DiscoverContext(ctx, r, oddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(oddisc.Minimal(res.ODs), res.Partial, res.Reason)
		},
	},
	{
		Name: "lexod", Class: "OD",
		Doc:      "Lexicographic order dependency discovery",
		Sampling: true, Incremental: true,
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if o.SampleRows > 0 {
				res := sampling.Run(ctx, r, samplingOptions(o),
					func(ctx context.Context, s *relation.Relation) ([]od.LexOD, bool, string) {
						dr := oddisc.DiscoverLexContext(ctx, s, oddisc.LexOptions{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
						return dr.ODs, dr.Partial, dr.Reason
					},
					func(c od.LexOD) bool { return c.Holds(r) })
				return render(res.Verified, res.Partial, res.Reason)
			}
			res := oddisc.DiscoverLexContext(ctx, r, oddisc.LexOptions{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.ODs, res.Partial, res.Reason)
		},
	},
	{
		Name: "cfd", Class: "CFD",
		Doc: "CFDMiner-style minimal constant CFD mining",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := cfddisc.DiscoverContext(ctx, r, cfddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.CFDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "pfd", Class: "pFD",
		Doc: "Probabilistic FD discovery (majority-probability counting)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := pfddisc.DiscoverContext(ctx, r, pfddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.PFDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "ffd", Class: "FFD",
		Doc: "Fuzzy FD discovery over resemblance relations",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := ffddisc.DiscoverContext(ctx, r, ffddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.FFDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "md", Class: "MD",
		Doc: "Matching dependency discovery (RHS: last column)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := mddisc.DiscoverContext(ctx, r, mddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.MDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "dd", Class: "DD",
		Doc: "Differential dependency discovery (RHS: last column, equality)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if r.Cols() == 0 {
				return Output{}
			}
			c := lastCol(r)
			res := dddisc.DiscoverContext(ctx, r, dddisc.Options{
				RHS:     dd.DiffFunc{Col: c, Metric: metric.ForKind(r.Schema().Attr(c).Kind), Op: dd.OpLe, Threshold: 0},
				Workers: o.Workers, Budget: o.Budget, Obs: o.Obs,
			})
			return render(res.DDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "ned", Class: "NED",
		Doc: "Neighborhood dependency discovery (RHS: last column)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			if r.Cols() == 0 {
				return Output{}
			}
			c := lastCol(r)
			res := nedisc.DiscoverContext(ctx, r, nedisc.Options{
				RHS:     ned.Predicate{{Col: c, Metric: metric.ForKind(r.Schema().Attr(c).Kind), Threshold: 0}},
				Workers: o.Workers, Budget: o.Budget, Obs: o.Obs,
			})
			return render(res.NEDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "cd", Class: "CD",
		Doc: "Comparable dependency discovery (pay-as-you-go session)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := cddisc.DiscoverContext(ctx, r, cddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.CDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "mvd", Class: "MVD",
		Doc: "Multivalued dependency discovery (top-down search)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := mvddisc.DiscoverContext(ctx, r, mvddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.MVDs, res.Partial, res.Reason)
		},
	},
	{
		Name: "sd", Class: "SD",
		Doc: "Sequential dependency discovery (fitted gap intervals)",
		Run: func(ctx context.Context, r *relation.Relation, o RunOptions) Output {
			res := sddisc.DiscoverContext(ctx, r, sddisc.Options{Workers: o.Workers, Budget: o.Budget, Obs: o.Obs})
			return render(res.SDs, res.Partial, res.Reason)
		},
	},
}

// All returns every registered discoverer in documentation order.
func All() []Algo { return algos }

// Names returns the registered names in documentation order.
func Names() []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.Name
	}
	return out
}

// Lookup resolves a name to its Algo.
func Lookup(name string) (Algo, bool) {
	for _, a := range algos {
		if a.Name == name {
			return a, true
		}
	}
	return Algo{}, false
}
