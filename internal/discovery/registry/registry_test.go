package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryWellFormed pins the enrollment invariants: unique names,
// a class and one-line doc per algorithm, and Lookup agreeing with All.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Class == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("registry entry %+v is missing a field", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate registry name %q", a.Name)
		}
		seen[a.Name] = true
		got, ok := Lookup(a.Name)
		if !ok || got.Name != a.Name {
			t.Errorf("Lookup(%q) = %+v, %v", a.Name, got, ok)
		}
	}
	if _, ok := Lookup("no-such-algo"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if len(Names()) != len(All()) {
		t.Errorf("Names() has %d entries, All() has %d", len(Names()), len(All()))
	}
}

// TestReadmeEndpointTable keeps the README's served-endpoint table in
// lockstep with the registry: every registered algorithm must appear as
// a table row with its class and doc line, so the documentation cannot
// silently drift from the set actually served and tested.
func TestReadmeEndpointTable(t *testing.T) {
	readme := ""
	for dir := "."; ; dir = filepath.Join(dir, "..") {
		p := filepath.Join(dir, "README.md")
		if b, err := os.ReadFile(p); err == nil {
			readme = string(b)
			break
		}
		if abs, _ := filepath.Abs(dir); abs == "/" {
			t.Fatal("README.md not found walking up from the package directory")
		}
	}
	for _, a := range All() {
		row := fmt.Sprintf("| `%s` | %s | %s |", a.Name, a.Class, a.Doc)
		if !strings.Contains(readme, row) {
			t.Errorf("README endpoint table is missing the row:\n%s", row)
		}
	}
}
