package cddisc

import (
	"testing"

	"deptree/internal/deps/cd"
	"deptree/internal/gen"
)

func TestPayAsYouGoSession(t *testing.T) {
	r := gen.Dataspace()
	s := r.Schema()
	sess := NewSession(r, Options{MinSupport: 1, MaxError: 0})
	// First function: nothing to pair with yet.
	added := sess.AddFunction(cd.Theta(s, "region", "city", 5, 5, 5))
	if len(added) != 0 {
		t.Errorf("first function produced CDs without partners: %v", added)
	}
	// Second function θ(addr, post): the paper's cd1 should emerge.
	added = sess.AddFunction(cd.Theta(s, "addr", "post", 7, 9, 6))
	if len(added) == 0 {
		t.Fatal("no CDs after the second function")
	}
	foundCD1 := false
	for _, c := range added {
		if !c.Holds(r) {
			t.Errorf("discovered CD %v does not hold (g3 > 0 reported as 0)", c)
		}
		if c.String() == "θ(region,city)[5,5,5] -> θ(addr,post)[7,9,6]" {
			foundCD1 = true
		}
	}
	if !foundCD1 {
		t.Errorf("cd1 not discovered: %v", added)
	}
	if len(sess.Found()) != len(added) {
		t.Error("session did not accumulate")
	}
	if len(sess.Functions()) != 2 {
		t.Error("functions not recorded")
	}
}

func TestIncrementalGrowth(t *testing.T) {
	// Each AddFunction only evaluates candidates involving the new θ; the
	// accumulated set equals what a batch over all functions would report.
	r := gen.Dataspace()
	s := r.Schema()
	thetas := []cd.SimilarityFunc{
		cd.Theta(s, "region", "city", 5, 5, 5),
		cd.Theta(s, "addr", "post", 7, 9, 6),
		cd.Single(s, "name", 2),
	}
	sess := NewSession(r, Options{MinSupport: 1, MaxLHS: 1})
	for _, th := range thetas {
		sess.AddFunction(th)
	}
	// Batch: evaluate every ordered single-LHS pair directly.
	batch := map[string]bool{}
	for _, a := range thetas {
		for _, b := range thetas {
			if a == b {
				continue
			}
			c := cd.CD{LHS: []cd.SimilarityFunc{a}, RHS: b, Schema: s}
			if c.G3(r) == 0 && sessionSupport(sess, a) >= 1 {
				batch[c.String()] = true
			}
		}
	}
	got := map[string]bool{}
	for _, c := range sess.Found() {
		if len(c.LHS) == 1 {
			got[c.String()] = true
		}
	}
	if len(got) != len(batch) {
		t.Fatalf("incremental %v != batch %v", got, batch)
	}
	for k := range batch {
		if !got[k] {
			t.Fatalf("incremental missing %s", k)
		}
	}
}

func sessionSupport(s *Session, f cd.SimilarityFunc) int {
	return s.lhsSupport([]cd.SimilarityFunc{f})
}

func TestErrorBudget(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 20, Seed: 97, ErrorRate: 0.3})
	s := r.Schema()
	strict := NewSession(r, Options{MaxError: 0})
	strict.AddFunction(cd.Single(s, "address", 0))
	strictAdded := strict.AddFunction(cd.Single(s, "region", 4))
	loose := NewSession(r, Options{MaxError: 0.3})
	loose.AddFunction(cd.Single(s, "address", 0))
	looseAdded := loose.AddFunction(cd.Single(s, "region", 4))
	if len(looseAdded) < len(strictAdded) {
		t.Errorf("error budget lost CDs: %d vs %d", len(looseAdded), len(strictAdded))
	}
}
