// Package cddisc implements the pay-as-you-go discovery of comparable
// dependencies (Song, Chen & Yu [92], paper §3.4.3): comparison functions
// over synonym attribute pairs are identified incrementally (in dataspaces
// they surface as users map sources), and each newly identified function
// θ generates new candidate CDs against the already-known functions —
// without re-evaluating the dependencies discovered so far.
package cddisc

import (
	"sort"

	"deptree/internal/deps/cd"
	"deptree/internal/relation"
)

// Options configures CD discovery.
type Options struct {
	// MinSupport is the minimum number of LHS-similar tuple pairs
	// (default 1).
	MinSupport int
	// MaxError is the g3 budget e: a CD is kept when the (greedy) g3 error
	// is ≤ e (default 0: exact CDs only). Exact validation is NP-complete
	// [91]; the greedy vertex-cover approximation of cd.CD.G3 is used.
	MaxError float64
	// MaxLHS bounds the number of LHS similarity functions (default 2).
	MaxLHS int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	return o
}

// Session is a pay-as-you-go discovery session: comparison functions are
// added over time and the discovered CD set grows monotonically.
type Session struct {
	r      *relation.Relation
	opts   Options
	thetas []cd.SimilarityFunc
	found  []cd.CD
}

// NewSession starts a session over a dataspace relation.
func NewSession(r *relation.Relation, opts Options) *Session {
	return &Session{r: r, opts: opts.withDefaults()}
}

// Found returns the CDs discovered so far.
func (s *Session) Found() []cd.CD { return s.found }

// Functions returns the comparison functions identified so far.
func (s *Session) Functions() []cd.SimilarityFunc { return s.thetas }

// AddFunction registers a newly identified comparison function θ and
// generates the new dependencies involving it: θ as the RHS of known-LHS
// combinations, and θ as an LHS member for known RHS functions — exactly
// the incremental step of [92]. It returns the CDs added by this call.
func (s *Session) AddFunction(theta cd.SimilarityFunc) []cd.CD {
	var added []cd.CD
	try := func(lhs []cd.SimilarityFunc, rhs cd.SimilarityFunc) {
		cand := cd.CD{LHS: lhs, RHS: rhs, Schema: s.r.Schema()}
		support := s.lhsSupport(lhs)
		if support < s.opts.MinSupport {
			return
		}
		if cand.G3(s.r) <= s.opts.MaxError {
			added = append(added, cand)
		}
	}
	// New function as RHS of every known single- and two-function LHS.
	for i, a := range s.thetas {
		try([]cd.SimilarityFunc{a}, theta)
		if s.opts.MaxLHS >= 2 {
			for _, b := range s.thetas[i+1:] {
				try([]cd.SimilarityFunc{a, b}, theta)
			}
		}
	}
	// New function as LHS for every known RHS.
	for _, b := range s.thetas {
		try([]cd.SimilarityFunc{theta}, b)
		if s.opts.MaxLHS >= 2 {
			for _, a := range s.thetas {
				if a != b && a != theta {
					try([]cd.SimilarityFunc{theta, a}, b)
				}
			}
		}
	}
	s.thetas = append(s.thetas, theta)
	sort.Slice(added, func(i, j int) bool { return added[i].String() < added[j].String() })
	s.found = append(s.found, added...)
	return added
}

// lhsSupport counts pairs similar w.r.t. all LHS functions.
func (s *Session) lhsSupport(lhs []cd.SimilarityFunc) int {
	support := 0
	for i := 0; i < s.r.Rows(); i++ {
	pairs:
		for j := i + 1; j < s.r.Rows(); j++ {
			for _, f := range lhs {
				if !f.Similar(s.r, i, j) {
					continue pairs
				}
			}
			support++
		}
	}
	return support
}
