package mddisc

import (
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/gen"
)

func TestDiscoverOnTable6(t *testing.T) {
	// md1's shape: street similarity should determine zip identification.
	r := gen.Table6()
	s := r.Schema()
	opts := Options{
		RHS:           []int{s.MustIndex("zip")},
		LHSCols:       []int{s.MustIndex("street"), s.MustIndex("address")},
		MinSupport:    0.05,
		MinConfidence: 1,
		Thresholds:    []float64{0, 1, 2, 3, 4, 5},
	}
	mds := Discover(r, opts)
	if len(mds) == 0 {
		t.Fatal("no MDs discovered")
	}
	for _, m := range mds {
		support, conf := m.SupportConfidence(r)
		if support < 0.05 || conf < 1 {
			t.Errorf("MD %v: support=%v conf=%v", m, support, conf)
		}
	}
}

func TestFirstKApproximation(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 400, Seed: 13, DuplicateRate: 0.3})
	s := r.Schema()
	opts := Options{
		RHS:           []int{s.MustIndex("region")},
		LHSCols:       []int{s.MustIndex("address")},
		MinSupport:    0.0001,
		MinConfidence: 0.95,
	}
	exact := Discover(r, opts)
	opts.FirstK = 150
	approx := Discover(r, opts)
	// The approximation evaluates on a prefix; for stationary synthetic
	// data it should find the same LHS attributes.
	if len(exact) != len(approx) {
		t.Errorf("exact %v vs first-k %v", exact, approx)
	}
}

func TestRelativeCandidateKeys(t *testing.T) {
	// On clean hotels, address alone identifies region (address → region
	// holds), so {address} is an RCK for RHS {region}.
	r := gen.Hotels(gen.HotelConfig{Rows: 150, Seed: 14})
	s := r.Schema()
	addr := s.MustIndex("address")
	opts := Options{
		RHS:           []int{s.MustIndex("region")},
		LHSCols:       []int{s.MustIndex("name"), addr, s.MustIndex("star")},
		MinConfidence: 1,
	}
	keys := RelativeCandidateKeys(r, opts)
	foundAddr := false
	for _, k := range keys {
		if k == attrset.Single(addr) {
			foundAddr = true
		}
	}
	if !foundAddr {
		t.Errorf("RCKs = %v, want {address} among them", keys)
	}
	// Minimality: no key contains another.
	for i := range keys {
		for j := range keys {
			if i != j && keys[i].SubsetOf(keys[j]) {
				t.Errorf("key %v contains key %v", keys[j], keys[i])
			}
		}
	}
}

func TestRCKNeedsCombination(t *testing.T) {
	// star alone does not determine region, but star+address trivially
	// does (address suffices) — check a case where a pair is needed:
	// name+star where name alone is ambiguous due to duplicates.
	r := gen.Hotels(gen.HotelConfig{Rows: 150, Seed: 15, ErrorRate: 0.1})
	s := r.Schema()
	opts := Options{
		RHS:           []int{s.MustIndex("region")},
		LHSCols:       []int{s.MustIndex("star"), s.MustIndex("nights")},
		MinConfidence: 0.99,
	}
	keys := RelativeCandidateKeys(r, opts)
	// star/nights cannot identify region on errorful data: likely empty.
	for _, k := range keys {
		if k.Len() > 2 {
			t.Errorf("key %v larger than the candidate pool", k)
		}
	}
}

func TestDiscoveredThresholdIsMaximal(t *testing.T) {
	r := gen.Table6()
	s := r.Schema()
	opts := Options{
		RHS:           []int{s.MustIndex("zip")},
		LHSCols:       []int{s.MustIndex("street")},
		MinSupport:    0.01,
		MinConfidence: 1,
		Thresholds:    []float64{0, 1, 2, 3, 4, 5},
	}
	mds := Discover(r, opts)
	if len(mds) != 1 {
		t.Fatalf("mds = %v", mds)
	}
	got := mds[0].LHS[0].MaxDist
	// street distances in r6: "12th St."/"12th Str" = 1 share zip; check
	// that the chosen threshold admits at least distance 1.
	if got < 1 {
		t.Errorf("threshold = %v, want ≥ 1", got)
	}
}

func TestDefaultLHSColumns(t *testing.T) {
	// Nil LHSCols defaults to every non-RHS column for both entry points.
	r := gen.Hotels(gen.HotelConfig{Rows: 40, Seed: 16})
	s := r.Schema()
	opts := Options{RHS: []int{s.MustIndex("region")}, MinSupport: 0.0001, MinConfidence: 1}
	mds := Discover(r, opts)
	for _, m := range mds {
		if m.LHS[0].Col == s.MustIndex("region") {
			t.Errorf("RHS column leaked into LHS: %v", m)
		}
	}
	keys := RelativeCandidateKeys(r, opts)
	for _, k := range keys {
		if k.Has(s.MustIndex("region")) {
			t.Errorf("RHS column in RCK %v", k)
		}
	}
	if len(keys) == 0 {
		t.Error("clean data should have at least one RCK (address)")
	}
}
