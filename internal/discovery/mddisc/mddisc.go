// Package mddisc implements matching dependency discovery after Song &
// Chen [85],[87] (paper §3.7.3): exact discovery of MDs meeting support
// and confidence requirements over candidate similarity thresholds, a
// statistical first-k approximation with the same interface, and relative
// candidate keys (RCKs) [90] — minimal determinant attribute sets whose MD
// meets the requirements.
package mddisc

import (
	"context"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/md"
	"deptree/internal/engine"
	"deptree/internal/metric"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures MD discovery.
type Options struct {
	// RHS are the columns to identify (default: the last column — the
	// documented servable default used by `deptool discover -algo md`).
	RHS []int
	// LHSCols are the candidate determinant attributes (defaults to all
	// columns not in RHS).
	LHSCols []int
	// MinSupport is the minimum fraction of tuple pairs matching the LHS
	// (default 0.01).
	MinSupport float64
	// MinConfidence is the minimum fraction of matching pairs identified
	// on the RHS (default 0.9).
	MinConfidence float64
	// Thresholds are the candidate similarity thresholds per attribute
	// kind; default {0, 1, 2, 3} for strings, {0} for numerics.
	Thresholds []float64
	// FirstK, when > 0, evaluates support/confidence on only the first K
	// tuples — the statistical approximation of [87] with bounded relative
	// error for stationary tuple order.
	FirstK int
	// Workers fans the per-attribute threshold searches out across
	// goroutines. 0 or 1 runs the exact sequential path; output is
	// identical for every worker count.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates discovery to a prefix of the candidate attributes
	// and the Result reports Partial.
	Budget engine.Budget
	// Obs optionally receives the run's metrics and spans. Nil is a full
	// no-op; observation never changes output.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 0.01
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.9
	}
	if o.Thresholds == nil {
		o.Thresholds = []float64{0, 1, 2, 3}
	}
	return o
}

// Result is an MD discovery outcome. A Partial result covers a
// deterministic prefix of the candidate-attribute enumeration order.
type Result struct {
	MDs []md.MD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// Completed is the number of candidate attributes searched.
	Completed int
}

// batch is the fixed MapBudget stripe width: candidate attributes are
// heavy units (each scans all tuple pairs per threshold), so truncation
// keeps per-attribute granularity. Fixed per algorithm so the truncation
// point is worker-independent.
const batch = 4

// Discover returns single-attribute-LHS MDs meeting the support and
// confidence requirements, each with the maximal admissible threshold (the
// most general matching rule).
func Discover(r *relation.Relation, opts Options) []md.MD {
	return DiscoverContext(context.Background(), r, opts).MDs
}

// DiscoverContext is Discover under a context and Options.Budget.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	eval := r
	if opts.FirstK > 0 && opts.FirstK < r.Rows() {
		eval = r.Select(func(row int) bool { return row < opts.FirstK })
	}
	rhsCols := opts.RHS
	if rhsCols == nil && r.Cols() > 0 {
		rhsCols = []int{r.Cols() - 1}
	}
	cols := opts.LHSCols
	if cols == nil {
		rhs := map[int]bool{}
		for _, c := range rhsCols {
			rhs[c] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !rhs[c] {
				cols = append(cols, c)
			}
		}
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "mddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("candidates", len(cols))
	defer run.End()

	type hit struct {
		best float64
		ok   bool
	}
	searchSpan := run.Child(obs.KindPhase, "threshold-search")
	hits, done, err := engine.MapBudget(pool, len(cols), batch, func(i int) hit {
		c := cols[i]
		m := metric.ForKind(r.Schema().Attr(c).Kind)
		h := hit{best: -1}
		for _, t := range opts.Thresholds {
			cand := md.MD{
				LHS:    []md.SimAttr{{Col: c, Metric: m, MaxDist: t}},
				RHS:    rhsCols,
				Schema: r.Schema(),
			}
			support, conf := cand.SupportConfidence(eval)
			if support >= opts.MinSupport && conf >= opts.MinConfidence {
				if !h.ok || t > h.best {
					h.best = t
					h.ok = true
				}
			}
		}
		return h
	})
	searchSpan.SetAttr("completed", done)
	searchSpan.End()
	reg.Counter("mddisc.candidates.checked").Add(int64(done))

	var out []md.MD
	for i := 0; i < done; i++ {
		if hits[i].ok {
			out = append(out, md.MD{
				LHS:    []md.SimAttr{{Col: cols[i], Metric: metric.ForKind(r.Schema().Attr(cols[i]).Kind), MaxDist: hits[i].best}},
				RHS:    rhsCols,
				Schema: r.Schema(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LHS[0].Col < out[j].LHS[0].Col })
	reg.Counter("mddisc.mds.valid").Add(int64(len(out)))
	res := Result{MDs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// RelativeCandidateKeys finds the minimal attribute sets X (within
// LHSCols, at equality thresholds) such that the MD X≈ → RHS⇌ meets the
// confidence requirement — the RCKs of [90] that remove redundant
// matching-rule semantics. Search is level-wise; supersets of found keys
// are pruned.
func RelativeCandidateKeys(r *relation.Relation, opts Options) []attrset.Set {
	opts = opts.withDefaults()
	cols := opts.LHSCols
	if cols == nil {
		rhs := map[int]bool{}
		for _, c := range opts.RHS {
			rhs[c] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !rhs[c] {
				cols = append(cols, c)
			}
		}
	}
	mkMD := func(x attrset.Set) md.MD {
		m := md.MD{RHS: opts.RHS, Schema: r.Schema()}
		x.Each(func(c int) {
			m.LHS = append(m.LHS, md.SimAttr{Col: c, Metric: metric.ForKind(r.Schema().Attr(c).Kind), MaxDist: 0})
		})
		return m
	}
	var keys []attrset.Set
	level := make([]attrset.Set, 0, len(cols))
	for _, c := range cols {
		level = append(level, attrset.Single(c))
	}
	for len(level) > 0 {
		var next []attrset.Set
		for _, x := range level {
			covered := false
			for _, k := range keys {
				if k.SubsetOf(x) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			_, conf := mkMD(x).SupportConfidence(r)
			if conf >= opts.MinConfidence {
				keys = append(keys, x)
			} else {
				next = append(next, x)
			}
		}
		level = attrset.NextLevel(next)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
