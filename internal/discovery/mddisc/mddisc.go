// Package mddisc implements matching dependency discovery after Song &
// Chen [85],[87] (paper §3.7.3): exact discovery of MDs meeting support
// and confidence requirements over candidate similarity thresholds, a
// statistical first-k approximation with the same interface, and relative
// candidate keys (RCKs) [90] — minimal determinant attribute sets whose MD
// meets the requirements.
package mddisc

import (
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/md"
	"deptree/internal/metric"
	"deptree/internal/relation"
)

// Options configures MD discovery.
type Options struct {
	// RHS are the columns to identify.
	RHS []int
	// LHSCols are the candidate determinant attributes (defaults to all
	// columns not in RHS).
	LHSCols []int
	// MinSupport is the minimum fraction of tuple pairs matching the LHS
	// (default 0.01).
	MinSupport float64
	// MinConfidence is the minimum fraction of matching pairs identified
	// on the RHS (default 0.9).
	MinConfidence float64
	// Thresholds are the candidate similarity thresholds per attribute
	// kind; default {0, 1, 2, 3} for strings, {0} for numerics.
	Thresholds []float64
	// FirstK, when > 0, evaluates support/confidence on only the first K
	// tuples — the statistical approximation of [87] with bounded relative
	// error for stationary tuple order.
	FirstK int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 0.01
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.9
	}
	if o.Thresholds == nil {
		o.Thresholds = []float64{0, 1, 2, 3}
	}
	return o
}

// Discover returns single-attribute-LHS MDs meeting the support and
// confidence requirements, each with the maximal admissible threshold (the
// most general matching rule).
func Discover(r *relation.Relation, opts Options) []md.MD {
	opts = opts.withDefaults()
	eval := r
	if opts.FirstK > 0 && opts.FirstK < r.Rows() {
		eval = r.Select(func(row int) bool { return row < opts.FirstK })
	}
	cols := opts.LHSCols
	if cols == nil {
		rhs := map[int]bool{}
		for _, c := range opts.RHS {
			rhs[c] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !rhs[c] {
				cols = append(cols, c)
			}
		}
	}
	var out []md.MD
	for _, c := range cols {
		m := metric.ForKind(r.Schema().Attr(c).Kind)
		best := -1.0
		haveBest := false
		for _, t := range opts.Thresholds {
			cand := md.MD{
				LHS:    []md.SimAttr{{Col: c, Metric: m, MaxDist: t}},
				RHS:    opts.RHS,
				Schema: r.Schema(),
			}
			support, conf := cand.SupportConfidence(eval)
			if support >= opts.MinSupport && conf >= opts.MinConfidence {
				if !haveBest || t > best {
					best = t
					haveBest = true
				}
			}
		}
		if haveBest {
			out = append(out, md.MD{
				LHS:    []md.SimAttr{{Col: c, Metric: m, MaxDist: best}},
				RHS:    opts.RHS,
				Schema: r.Schema(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LHS[0].Col < out[j].LHS[0].Col })
	return out
}

// RelativeCandidateKeys finds the minimal attribute sets X (within
// LHSCols, at equality thresholds) such that the MD X≈ → RHS⇌ meets the
// confidence requirement — the RCKs of [90] that remove redundant
// matching-rule semantics. Search is level-wise; supersets of found keys
// are pruned.
func RelativeCandidateKeys(r *relation.Relation, opts Options) []attrset.Set {
	opts = opts.withDefaults()
	cols := opts.LHSCols
	if cols == nil {
		rhs := map[int]bool{}
		for _, c := range opts.RHS {
			rhs[c] = true
		}
		for c := 0; c < r.Cols(); c++ {
			if !rhs[c] {
				cols = append(cols, c)
			}
		}
	}
	mkMD := func(x attrset.Set) md.MD {
		m := md.MD{RHS: opts.RHS, Schema: r.Schema()}
		x.Each(func(c int) {
			m.LHS = append(m.LHS, md.SimAttr{Col: c, Metric: metric.ForKind(r.Schema().Attr(c).Kind), MaxDist: 0})
		})
		return m
	}
	var keys []attrset.Set
	level := make([]attrset.Set, 0, len(cols))
	for _, c := range cols {
		level = append(level, attrset.Single(c))
	}
	for len(level) > 0 {
		var next []attrset.Set
		for _, x := range level {
			covered := false
			for _, k := range keys {
				if k.SubsetOf(x) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			_, conf := mkMD(x).SupportConfidence(r)
			if conf >= opts.MinConfidence {
				keys = append(keys, x)
			} else {
				next = append(next, x)
			}
		}
		level = attrset.NextLevel(next)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
