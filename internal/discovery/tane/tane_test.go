package tane

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/gen"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// bruteForceMinimalFDs enumerates all minimal FDs (including ∅ → A) by
// exhaustive search — the oracle TANE and FastFD are tested against.
func bruteForceMinimalFDs(r *relation.Relation) map[[2]attrset.Set]bool {
	n := r.Cols()
	holds := func(x attrset.Set, a int) bool {
		px := partition.Build(r, x)
		pxa := partition.Build(r, x.Add(a))
		return partition.Refines(px, pxa)
	}
	out := map[[2]attrset.Set]bool{}
	var all []attrset.Set
	attrset.Full(n).Subsets(func(s attrset.Set) { all = append(all, s) })
	for a := 0; a < n; a++ {
		for _, x := range all {
			if x.Has(a) || !holds(x, a) {
				continue
			}
			minimal := true
			x.ImmediateSubsets(func(sub attrset.Set) {
				if holds(sub, a) {
					minimal = false
				}
			})
			if minimal {
				out[[2]attrset.Set{x, attrset.Single(a)}] = true
			}
		}
	}
	return out
}

func asSet(fds []fd.FD) map[[2]attrset.Set]bool {
	out := map[[2]attrset.Set]bool{}
	for _, f := range fds {
		out[[2]attrset.Set{f.LHS, f.RHS}] = true
	}
	return out
}

func TestDiscoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		r := gen.Categorical(20, []int{2, 3, 2, 4}, rng.Int63())
		got := asSet(Discover(r, Options{}))
		want := bruteForceMinimalFDs(r)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d FDs found, want %d\n got: %v\nwant: %v",
				trial, len(got), len(want), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing FD %v", trial, k)
			}
		}
	}
}

func TestDiscoverWithKeyColumn(t *testing.T) {
	// A unique id column: id → everything must be discovered despite key
	// pruning.
	s := relation.Strings("id", "a", "b")
	r := relation.MustFromRows("k", s, [][]relation.Value{
		{relation.String("1"), relation.String("x"), relation.String("p")},
		{relation.String("2"), relation.String("x"), relation.String("q")},
		{relation.String("3"), relation.String("y"), relation.String("p")},
	})
	got := asSet(Discover(r, Options{}))
	want := bruteForceMinimalFDs(r)
	if len(got) != len(want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
	idToA := [2]attrset.Set{attrset.Of(0), attrset.Of(1)}
	if !got[idToA] {
		t.Error("id → a missing")
	}
}

func TestDiscoverConstantColumn(t *testing.T) {
	s := relation.Strings("a", "c")
	r := relation.MustFromRows("c", s, [][]relation.Value{
		{relation.String("x"), relation.String("k")},
		{relation.String("y"), relation.String("k")},
	})
	got := asSet(Discover(r, Options{}))
	if !got[[2]attrset.Set{attrset.Empty, attrset.Of(1)}] {
		t.Errorf("∅ → c missing: %v", got)
	}
}

func TestDiscoverOnTable1(t *testing.T) {
	r := gen.Table1()
	fds := Discover(r, Options{})
	// fd1 address → region does NOT hold; but address → star does.
	addr := attrset.Single(r.Schema().MustIndex("address"))
	region := attrset.Single(r.Schema().MustIndex("region"))
	star := attrset.Single(r.Schema().MustIndex("star"))
	got := asSet(fds)
	if got[[2]attrset.Set{addr, region}] {
		t.Error("address → region must not be discovered on dirty Table 1")
	}
	if !got[[2]attrset.Set{addr, star}] {
		t.Error("address → star should be discovered")
	}
	// Every discovered FD actually holds.
	for _, f := range fds {
		if !f.Holds(r) {
			t.Errorf("discovered FD %v does not hold", f)
		}
	}
}

func TestApproximateDiscovery(t *testing.T) {
	// Table 5: g3(address→region) = 1/4, so ε=0.25 admits it, ε=0.2 not.
	r := gen.Table5()
	addr := attrset.Single(r.Schema().MustIndex("address"))
	region := attrset.Single(r.Schema().MustIndex("region"))
	key := [2]attrset.Set{addr, region}
	if got := asSet(Discover(r, Options{MaxError: 0.25})); !got[key] {
		t.Errorf("ε=0.25 must discover address→region; got %v", got)
	}
	if got := asSet(Discover(r, Options{MaxError: 0.2})); got[key] {
		t.Error("ε=0.2 must reject address→region")
	}
}

func TestApproximateDiscoveredFDsHaveBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		r := gen.Categorical(40, []int{3, 3, 3}, rng.Int63())
		eps := 0.15
		for _, f := range Discover(r, Options{MaxError: eps}) {
			if g3 := f.G3(r); g3 > eps {
				t.Fatalf("trial %d: discovered AFD %v has g3=%v > ε=%v", trial, f, g3, eps)
			}
		}
	}
}

func TestMaxLHS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := gen.Categorical(30, []int{2, 2, 2, 2, 2}, rng.Int63())
	for _, f := range Discover(r, Options{MaxLHS: 1}) {
		if f.LHS.Len() > 1 {
			t.Errorf("FD %v exceeds MaxLHS=1", f)
		}
	}
}

func TestPlantedFDRecovered(t *testing.T) {
	r := gen.WithFD(300, []int{4, 4}, 0, 7)
	got := asSet(Discover(r, Options{}))
	// x0,x1 → y is planted; it (or a smaller subset implying it) must
	// appear.
	found := false
	for k := range got {
		if k[1] == attrset.Single(2) && k[0].SubsetOf(attrset.Of(0, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("planted FD not recovered: %v", got)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	if fds := Discover(r, Options{}); len(fds) != 0 {
		t.Errorf("empty relation: %v", fds)
	}
}
