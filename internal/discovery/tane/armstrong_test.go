package tane

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/discovery/fastfd"
)

// TestDiscoveryRecoversArmstrongCover closes the inference↔discovery loop:
// running TANE (and FastFD) on an Armstrong relation for Σ recovers an FD
// set equivalent to Σ.
func TestDiscoveryRecoversArmstrongCover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 4
		var sigma []fd.FD
		for k := 0; k < 3; k++ {
			lhs := attrset.Set(rng.Intn(1<<n) | (1 << rng.Intn(n)))
			rhs := attrset.Single(rng.Intn(n))
			if rhs.SubsetOf(lhs) {
				continue
			}
			sigma = append(sigma, fd.FD{LHS: lhs, RHS: rhs})
		}
		r, err := fd.ArmstrongRelation(n, sigma)
		if err != nil {
			t.Fatal(err)
		}
		discovered := Discover(r, Options{})
		if !fd.Equivalent(discovered, sigma) {
			t.Fatalf("trial %d: TANE cover %v not equivalent to Σ %v", trial, discovered, sigma)
		}
		discovered2 := fastfd.Discover(r)
		if !fd.Equivalent(discovered2, sigma) {
			t.Fatalf("trial %d: FastFD cover %v not equivalent to Σ %v", trial, discovered2, sigma)
		}
	}
}
