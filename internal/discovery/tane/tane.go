// Package tane implements the TANE algorithm of Huhtala et al. [53],[54]
// (paper §1.4.2, §2.3.3): level-wise discovery of minimal functional
// dependencies — and, with a nonzero error budget ε, of approximate FDs
// under the g3 measure — over stripped partitions.
//
// The implementation follows the original pruning rules: RHS candidate sets
// C+(X), key pruning, and apriori level generation, with partition products
// computed incrementally level to level through a shared
// engine.PartitionCache. Candidate validation at each lattice level fans
// out across an engine.Pool; per-node results are collected positionally,
// so the discovered FD set is identical for every worker count (the
// differential harness in internal/engine asserts this).
package tane

import (
	"context"
	"fmt"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// Options configures a TANE run.
type Options struct {
	// MaxError is the g3 budget ε: 0 discovers exact FDs, > 0 approximate
	// FDs with g3 ≤ ε (§2.3.3).
	MaxError float64
	// MaxLHS bounds the determinant size (0 = no bound).
	MaxLHS int
	// Workers fans lattice-level candidate validation out across
	// goroutines. 0 or 1 runs the exact sequential path; the output is
	// the same either way.
	Workers int
	// Budget bounds the run (deadline, task count, cache bytes); the
	// zero value is unlimited. An exhausted budget stops the lattice
	// walk at a level boundary and the run reports a Partial Result.
	Budget engine.Budget
	// Cache optionally supplies a shared partition cache (for example to
	// reuse partitions across several discovery runs over the same
	// relation). When nil a private cache is used, byte-bounded by
	// Budget.MaxCacheBytes. The cache must have been built over the same
	// relation passed to Discover.
	Cache *engine.PartitionCache
	// Obs optionally receives the run's metrics (tane.* counters, the
	// tane.level.seconds histogram, engine.* pool counters) and its
	// run/phase spans. Nil is a full no-op; observation never changes
	// discovery output.
	Obs *obs.Registry
}

// Result is a TANE run's outcome. A run that exhausts its budget (or is
// cancelled, or loses a worker to a panic) degrades to a Partial result:
// FDs holds every minimal FD whose validation completed — whole lattice
// levels, so the set is deterministic for any worker count under a
// MaxTasks budget — rather than nothing.
type Result struct {
	FDs []fd.FD
	// Partial marks a truncated run; FDs then covers only the completed
	// lattice levels.
	Partial bool
	// Reason is the stable token for what stopped the run ("deadline",
	// "max-tasks", "cancelled", "panic: ..."); empty when complete.
	Reason string
	// Levels is the number of lattice levels whose validation completed.
	Levels int
}

// node carries per-lattice-node state: the stripped partition π_X and the
// RHS candidate set C+(X).
type node struct {
	part *partition.Partition
	cand attrset.Set
}

// Discover runs TANE over the relation and returns the minimal
// (approximate) FDs with singleton right-hand sides, sorted for
// deterministic output. It runs without a context; budget-aware callers
// use DiscoverContext.
func Discover(r *relation.Relation, opts Options) []fd.FD {
	return DiscoverContext(context.Background(), r, opts).FDs
}

// DiscoverContext is Discover under a context and Options.Budget: the
// lattice walk stops as soon as the context is cancelled, the deadline
// fires, the task budget runs out, or a worker panics, and the Result
// reports the FDs of the completed levels with Partial set.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	n := r.Cols()
	if n == 0 || n > attrset.MaxAttrs || r.Rows() == 0 {
		return Result{}
	}
	reg := opts.Obs
	cache := opts.Cache
	if cache == nil {
		cache = engine.NewPartitionCacheBudget(r, 0, opts.Budget.MaxCacheBytes)
		cache.SetObserver(reg)
	}
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "tane")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("cols", n)
	defer run.End()
	var levelSpan *obs.Span

	// partial finalizes a truncated run: everything committed so far —
	// whole fan-out phases, so identical for every worker count under a
	// MaxTasks budget — plus the stop reason.
	partial := func(results []fd.FD, levels int, err error) Result {
		sortFDs(results)
		reason := engine.Reason(err)
		levelSpan.SetAttr("stop", reason)
		levelSpan.End()
		run.SetAttr("stop", reason)
		reg.Counter("tane.fds.found").Add(int64(len(results)))
		return Result{FDs: results, Partial: true, Reason: reason, Levels: levels}
	}

	fullSet := attrset.Full(n)
	var results []fd.FD

	colCodes := make([][]int, n)
	for c := 0; c < n; c++ {
		colCodes[c], _ = r.Codes(c)
	}

	// Level 1 plus the ∅ → A checks (constant columns).
	prev := make(map[attrset.Set]*node, n)
	var constCols attrset.Set
	for c := 0; c < n; c++ {
		if err := pool.Err(); err != nil {
			return partial(nil, 0, err)
		}
		p := cache.Get(attrset.Single(c))
		prev[attrset.Single(c)] = &node{part: p, cand: fullSet}
		if r.Rows() > 0 && p.Cardinality() == 1 {
			results = append(results, fd.FD{LHS: attrset.Empty, RHS: attrset.Single(c), Schema: r.Schema()})
			constCols = constCols.Add(c)
		}
	}
	for _, info := range prev {
		info.cand = info.cand.Minus(constCols)
	}

	level := 1
	completed := 1 // singleton level is done once prev is seeded
	for len(prev) > 0 {
		if opts.MaxLHS > 0 && level > opts.MaxLHS+1 {
			break
		}
		levelSpan = run.Child(obs.KindPhase, fmt.Sprintf("level-%d", level))
		levelTimer := reg.Histogram("tane.level.seconds").Start()
		// Deterministic node order for fan-out and the pruning outputs.
		nodes := make([]attrset.Set, 0, len(prev))
		for x := range prev {
			nodes = append(nodes, x)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

		if level >= 2 {
			// Check X\A → A for each X at this level and A ∈ X ∩ C+(X).
			// Nodes are independent: each task reads shared partitions via
			// the cache and returns its FDs plus the updated C+(X).
			type validated struct {
				fds  []fd.FD
				cand attrset.Set
			}
			checked, err := engine.MapErr(pool, len(nodes), func(i int) validated {
				x := nodes[i]
				info := prev[x]
				cand := info.cand
				var fds []fd.FD
				rhs := x.Intersect(cand)
				rhs.Each(func(a int) {
					xa := x.Remove(a)
					pxa := cache.Get(xa)
					var valid bool
					if opts.MaxError == 0 {
						valid = partition.Refines(pxa, info.part)
					} else {
						valid = pxa.G3(colCodes[a]) <= opts.MaxError
					}
					if !valid {
						return
					}
					fds = append(fds, fd.FD{LHS: xa, RHS: attrset.Single(a), Schema: r.Schema()})
					cand = cand.Remove(a)
					if opts.MaxError == 0 {
						cand = cand.Minus(fullSet.Minus(x))
					}
				})
				return validated{fds: fds, cand: cand}
			})
			if err != nil {
				return partial(results, completed, err)
			}
			for i, x := range nodes {
				prev[x].cand = checked[i].cand
				results = append(results, checked[i].fds...)
			}
		}
		// Prune, then generate the next level via apriori + partition
		// products of cached sub-partitions.
		type pruned struct {
			fds  []fd.FD
			keep bool
		}
		outcome, err := engine.MapErr(pool, len(nodes), func(i int) pruned {
			x := nodes[i]
			info := prev[x]
			if info.cand.IsEmpty() {
				return pruned{}
			}
			if opts.MaxError == 0 && info.part.IsKey() {
				// TANE's key-pruning rule: before deleting a key node X,
				// output X → A for each A ∈ C+(X) \ X that no immediate
				// subset already determines (FDs are monotone in the LHS,
				// so immediate-subset minimality is full minimality). The
				// original paper phrases this via sibling C+ sets; those
				// may themselves have been pruned, so the check is done
				// directly on partitions.
				var fds []fd.FD
				info.cand.Minus(x).Each(func(a int) {
					minimal := true
					x.Each(func(b int) {
						if !minimal {
							return
						}
						sub := x.Remove(b)
						psub := cache.Get(sub)
						psuba := cache.Get(sub.Add(a))
						if partition.Refines(psub, psuba) {
							minimal = false
						}
					})
					if minimal {
						fds = append(fds, fd.FD{LHS: x, RHS: attrset.Single(a), Schema: r.Schema()})
					}
				})
				return pruned{fds: fds}
			}
			return pruned{keep: true}
		})
		if err != nil {
			return partial(results, completed, err)
		}
		var keep []attrset.Set
		for i, x := range nodes {
			results = append(results, outcome[i].fds...)
			if outcome[i].keep {
				keep = append(keep, x)
			}
		}
		cands := attrset.NextLevel(keep)
		nexts, err := engine.MapErr(pool, len(cands), func(i int) *node {
			x := cands[i]
			cand := fullSet
			x.ImmediateSubsets(func(sub attrset.Set) {
				if info, ok := prev[sub]; ok {
					cand = cand.Intersect(info.cand)
				}
			})
			if cand.IsEmpty() {
				return nil
			}
			return &node{part: cache.Get(x), cand: cand}
		})
		if err != nil {
			return partial(results, completed, err)
		}
		next := make(map[attrset.Set]*node)
		for i, x := range cands {
			if nexts[i] != nil {
				next[x] = nexts[i]
			}
		}
		prev = next
		completed = level
		level++
		levelTimer()
		levelSpan.SetAttr("nodes", len(nodes))
		levelSpan.SetAttr("next", len(next))
		levelSpan.End()
		reg.Counter("tane.levels.completed").Inc()
	}
	sortFDs(results)
	reg.Counter("tane.fds.found").Add(int64(len(results)))
	return Result{FDs: results, Levels: completed}
}

func sortFDs(fds []fd.FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}
