// Package tane implements the TANE algorithm of Huhtala et al. [53],[54]
// (paper §1.4.2, §2.3.3): level-wise discovery of minimal functional
// dependencies — and, with a nonzero error budget ε, of approximate FDs
// under the g3 measure — over stripped partitions.
//
// The implementation follows the original pruning rules: RHS candidate sets
// C+(X), key pruning, and apriori level generation, with partition products
// computed incrementally level to level.
package tane

import (
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// Options configures a TANE run.
type Options struct {
	// MaxError is the g3 budget ε: 0 discovers exact FDs, > 0 approximate
	// FDs with g3 ≤ ε (§2.3.3).
	MaxError float64
	// MaxLHS bounds the determinant size (0 = no bound).
	MaxLHS int
}

// node carries per-lattice-node state: the stripped partition π_X and the
// RHS candidate set C+(X).
type node struct {
	part *partition.Partition
	cand attrset.Set
}

// Discover runs TANE over the relation and returns the minimal
// (approximate) FDs with singleton right-hand sides, sorted for
// deterministic output.
func Discover(r *relation.Relation, opts Options) []fd.FD {
	n := r.Cols()
	if n == 0 || n > attrset.MaxAttrs || r.Rows() == 0 {
		return nil
	}
	fullSet := attrset.Full(n)
	var results []fd.FD

	colCodes := make([][]int, n)
	for c := 0; c < n; c++ {
		colCodes[c], _ = r.Codes(c)
	}

	// Level 1 plus the ∅ → A checks (constant columns).
	prev := make(map[attrset.Set]*node, n)
	var constCols attrset.Set
	for c := 0; c < n; c++ {
		p := partition.Build(r, attrset.Single(c))
		prev[attrset.Single(c)] = &node{part: p, cand: fullSet}
		if r.Rows() > 0 && p.Cardinality() == 1 {
			results = append(results, fd.FD{LHS: attrset.Empty, RHS: attrset.Single(c), Schema: r.Schema()})
			constCols = constCols.Add(c)
		}
	}
	for _, info := range prev {
		info.cand = info.cand.Minus(constCols)
	}

	level := 1
	for len(prev) > 0 {
		if opts.MaxLHS > 0 && level > opts.MaxLHS+1 {
			break
		}
		if level >= 2 {
			// Check X\A → A for each X at this level and A ∈ X ∩ C+(X).
			for x, info := range prev {
				rhs := x.Intersect(info.cand)
				rhs.Each(func(a int) {
					xa := x.Remove(a)
					pxa := partition.Build(r, xa)
					var valid bool
					if opts.MaxError == 0 {
						valid = partition.Refines(pxa, info.part)
					} else {
						valid = pxa.G3(colCodes[a]) <= opts.MaxError
					}
					if !valid {
						return
					}
					results = append(results, fd.FD{LHS: xa, RHS: attrset.Single(a), Schema: r.Schema()})
					info.cand = info.cand.Remove(a)
					if opts.MaxError == 0 {
						info.cand = info.cand.Minus(fullSet.Minus(x))
					}
				})
			}
		}
		// Prune, then generate the next level via apriori + partition
		// products of two immediate subsets.
		var keep []attrset.Set
		// Deterministic node order for the key-pruning outputs.
		nodes := make([]attrset.Set, 0, len(prev))
		for x := range prev {
			nodes = append(nodes, x)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, x := range nodes {
			info := prev[x]
			if info.cand.IsEmpty() {
				continue
			}
			if opts.MaxError == 0 && info.part.IsKey() {
				// TANE's key-pruning rule: before deleting a key node X,
				// output X → A for each A ∈ C+(X) \ X that no immediate
				// subset already determines (FDs are monotone in the LHS,
				// so immediate-subset minimality is full minimality). The
				// original paper phrases this via sibling C+ sets; those
				// may themselves have been pruned, so the check is done
				// directly on partitions.
				info.cand.Minus(x).Each(func(a int) {
					minimal := true
					x.Each(func(b int) {
						if !minimal {
							return
						}
						sub := x.Remove(b)
						psub := partition.Build(r, sub)
						psuba := partition.Build(r, sub.Add(a))
						if partition.Refines(psub, psuba) {
							minimal = false
						}
					})
					if minimal {
						results = append(results, fd.FD{LHS: x, RHS: attrset.Single(a), Schema: r.Schema()})
					}
				})
				continue
			}
			keep = append(keep, x)
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		next := make(map[attrset.Set]*node)
		for _, x := range attrset.NextLevel(keep) {
			cand := fullSet
			var parts []*partition.Partition
			x.ImmediateSubsets(func(sub attrset.Set) {
				if info, ok := prev[sub]; ok {
					cand = cand.Intersect(info.cand)
					if len(parts) < 2 {
						parts = append(parts, info.part)
					}
				}
			})
			if cand.IsEmpty() {
				continue
			}
			var p *partition.Partition
			if len(parts) == 2 {
				p = parts[0].Product(parts[1])
			} else {
				p = partition.Build(r, x)
			}
			next[x] = &node{part: p, cand: cand}
		}
		prev = next
		level++
	}
	sortFDs(results)
	return results
}

func sortFDs(fds []fd.FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}
