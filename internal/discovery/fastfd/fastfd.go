// Package fastfd implements FastFD (Wyss, Giannella & Robertson [112],
// paper §1.4.2): depth-first FD discovery from difference sets. Agree sets
// are computed over tuple pairs; for each candidate RHS attribute A the
// minimal covers of the difference sets containing A yield the minimal FDs
// X → A. The per-RHS cover searches are independent and fan out across an
// engine.Pool; results are collected in RHS order, so output is identical
// for every worker count.
package fastfd

import (
	"context"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/partition"
	"deptree/internal/relation"
)

// Options configures a FastFD run.
type Options struct {
	// Workers fans the per-RHS difference-set searches out across
	// goroutines. 0 or 1 runs the exact sequential path.
	Workers int
	// Budget bounds the run; the zero value is unlimited. An exhausted
	// budget truncates the search to a prefix of the RHS attributes and
	// the run reports a Partial Result.
	Budget engine.Budget
	// Obs optionally receives the run's metrics (fastfd.* counters, the
	// agree-set and cover-search phase latencies) and its run/phase
	// spans. Nil is a full no-op; observation never changes output.
	Obs *obs.Registry
}

// Result is a FastFD run's outcome. A Partial result covers the FDs of
// the first Completed RHS attributes only — a deterministic prefix for
// any worker count under a MaxTasks budget.
type Result struct {
	FDs []fd.FD
	// Partial marks a truncated run.
	Partial bool
	// Reason is the stable stop token ("deadline", "max-tasks", ...).
	Reason string
	// Completed is the number of RHS attributes fully searched.
	Completed int
}

// rhsBatch is the fan-out stripe width for the per-RHS cover searches.
// Fixed (worker-independent) so a budget-truncated run covers the same
// RHS prefix for every worker count; small because each cover search is
// heavy and relations rarely exceed a few dozen columns.
const rhsBatch = 4

// Discover returns the minimal exact FDs with singleton RHS. Results agree
// with TANE on every instance (a property the test suite checks).
func Discover(r *relation.Relation) []fd.FD {
	return DiscoverOpts(r, Options{})
}

// DiscoverOpts is Discover with explicit options.
func DiscoverOpts(r *relation.Relation, opts Options) []fd.FD {
	return DiscoverContext(context.Background(), r, opts).FDs
}

// DiscoverContext is DiscoverOpts under a context and Options.Budget,
// reporting budget-truncated runs as a Partial prefix instead of failing.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	n := r.Cols()
	if n == 0 || n > attrset.MaxAttrs {
		return Result{}
	}
	full := attrset.Full(n)

	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "fastfd")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("cols", n)
	defer run.End()

	agreeSpan := run.Child(obs.KindPhase, "agree-sets")
	agreeTimer := reg.Histogram("fastfd.agree.seconds").Start()
	agree, err := agreeSets(r, pool)
	agreeTimer()
	agreeSpan.SetAttr("sets", len(agree))
	agreeSpan.End()
	reg.Counter("fastfd.agree_sets").Add(int64(len(agree)))
	if err != nil {
		run.SetAttr("stop", engine.Reason(err))
		return Result{Partial: true, Reason: engine.Reason(err)}
	}
	// Deterministic agree-set order, shared by every RHS search.
	agreeList := make([]attrset.Set, 0, len(agree))
	for ag := range agree {
		agreeList = append(agreeList, ag)
	}
	sort.Slice(agreeList, func(i, j int) bool { return agreeList[i] < agreeList[j] })

	// stop aborts a pinned cover search once the run is cancelled; the
	// aborted task does not count as completed, so its batch is excluded
	// from the partial prefix.
	stop := func() {
		if err := pool.Err(); err != nil {
			engine.Abort(err)
		}
	}
	coverSpan := run.Child(obs.KindPhase, "rhs-covers")
	coverTimer := reg.Histogram("fastfd.covers.seconds").Start()
	perRHS, done, runErr := engine.MapBudget(pool, n, rhsBatch, func(a int) []fd.FD {
		// Difference sets for RHS a: D_A = {R \ ag \ {a} : pair disagrees
		// on a}, i.e. attributes that could "explain" the disagreement.
		var diffs []attrset.Set
		for _, ag := range agreeList {
			if !ag.Has(a) {
				diffs = append(diffs, full.Minus(ag).Remove(a))
			}
		}
		var out []fd.FD
		if len(diffs) == 0 {
			// No *somewhere-agreeing* pair disagrees on a. Two cases:
			// (1) column a is constant — then ∅ → a;
			// (2) column a varies, but every pair that disagrees on a
			//     agrees on nothing at all — then for every attribute B,
			//     all pairs agreeing on B agree on a, so every {B} → a is
			//     a (minimal) FD.
			if r.Rows() > 0 {
				if _, card := r.Codes(a); card == 1 {
					return []fd.FD{{LHS: attrset.Empty, RHS: attrset.Single(a), Schema: r.Schema()}}
				}
			}
			if r.Rows() > 1 {
				for b := 0; b < n; b++ {
					if b != a {
						out = append(out, fd.FD{LHS: attrset.Single(b), RHS: attrset.Single(a), Schema: r.Schema()})
					}
				}
			}
			return out
		}
		// Minimal covers: minimal X hitting every difference set.
		covers := minimalHittingSets(diffs, full.Remove(a), stop)
		for _, x := range covers {
			out = append(out, fd.FD{LHS: x, RHS: attrset.Single(a), Schema: r.Schema()})
		}
		return out
	})
	coverTimer()
	coverSpan.SetAttr("completed", done)
	coverSpan.End()
	reg.Counter("fastfd.rhs.completed").Add(int64(done))
	var results []fd.FD
	for _, fds := range perRHS {
		results = append(results, fds...)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].LHS != results[j].LHS {
			return results[i].LHS < results[j].LHS
		}
		return results[i].RHS < results[j].RHS
	})
	reg.Counter("fastfd.fds.found").Add(int64(len(results)))
	if runErr != nil {
		run.SetAttr("stop", engine.Reason(runErr))
		return Result{FDs: results, Partial: true, Reason: engine.Reason(runErr), Completed: done}
	}
	return Result{FDs: results, Completed: n}
}

// agreeSets computes the set of agree sets ag(t1,t2) over all tuple pairs
// that agree on at least one attribute. Pairs are enumerated per stripped
// partition class to skip pairs agreeing nowhere. The pair sweep is
// quadratic, so it polls the pool between classes and stops early once
// the run's deadline fires or it is cancelled.
func agreeSets(r *relation.Relation, pool *engine.Pool) (map[attrset.Set]bool, error) {
	n := r.Cols()
	codes := make([][]int, n)
	for c := 0; c < n; c++ {
		codes[c], _ = r.Codes(c)
	}
	out := make(map[attrset.Set]bool)
	seen := make(map[[2]int]bool)
	for c := 0; c < n; c++ {
		p := partition.FromCodes(codes[c], distinct(codes[c]))
		for ci := 0; ci < p.NumClasses(); ci++ {
			class := p.Class(ci)
			if err := pool.Err(); err != nil {
				return nil, err
			}
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					key := [2]int{int(class[i]), int(class[j])}
					if seen[key] {
						continue
					}
					seen[key] = true
					var ag attrset.Set
					for col := 0; col < n; col++ {
						if codes[col][class[i]] == codes[col][class[j]] {
							ag = ag.Add(col)
						}
					}
					out[ag] = true
				}
			}
		}
	}
	return out, nil
}

func distinct(codes []int) int {
	max := -1
	for _, c := range codes {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// minimalHittingSets enumerates the minimal subsets of universe that
// intersect every set in diffs, by depth-first search with subset pruning.
// A set failing to hit some difference set (because that set is empty)
// yields no cover at all: an empty difference set means the FD cannot hold
// with any LHS. The DFS is worst-case exponential — this is where an
// adversarial input pins a worker — so stop (which may not return) is
// polled every stopCheckEvery expansions.
func minimalHittingSets(diffs []attrset.Set, universe attrset.Set, stop func()) []attrset.Set {
	for _, d := range diffs {
		if d.IsEmpty() {
			return nil
		}
	}
	// Order difference sets by size for better branching.
	sorted := append([]attrset.Set(nil), diffs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Len() < sorted[j].Len() })
	var covers []attrset.Set
	const stopCheckEvery = 1024
	steps := 0
	var dfs func(current attrset.Set, idx int)
	dfs = func(current attrset.Set, idx int) {
		if steps++; stop != nil && steps%stopCheckEvery == 0 {
			stop()
		}
		// Find the first uncovered difference set.
		for idx < len(sorted) && sorted[idx].Intersects(current) {
			idx++
		}
		if idx == len(sorted) {
			// current hits everything; keep if minimal vs found covers.
			for _, c := range covers {
				if c.SubsetOf(current) {
					return
				}
			}
			covers = append(covers, current)
			return
		}
		candidates := sorted[idx].Intersect(universe)
		candidates.Each(func(b int) {
			next := current.Add(b)
			// Prune: a known cover inside next means non-minimal.
			for _, c := range covers {
				if c.SubsetOf(next) {
					return
				}
			}
			dfs(next, idx+1)
		})
	}
	dfs(attrset.Empty, 0)
	// Final minimality filter (DFS ordering can admit supersets found
	// before their subsets).
	var minimal []attrset.Set
	for i, c := range covers {
		keep := true
		for j, d := range covers {
			if i != j && d.SubsetOf(c) && d != c {
				keep = false
				break
			}
		}
		if keep {
			minimal = append(minimal, c)
		}
	}
	sort.Slice(minimal, func(i, j int) bool { return minimal[i] < minimal[j] })
	return minimal
}
