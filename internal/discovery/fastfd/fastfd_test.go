package fastfd

import (
	"math/rand"
	"testing"

	"deptree/internal/attrset"
	"deptree/internal/deps/fd"
	"deptree/internal/discovery/tane"
	"deptree/internal/gen"
	"deptree/internal/relation"
)

func asSet(fds []fd.FD) map[[2]attrset.Set]bool {
	out := map[[2]attrset.Set]bool{}
	for _, f := range fds {
		out[[2]attrset.Set{f.LHS, f.RHS}] = true
	}
	return out
}

func TestAgreesWithTANE(t *testing.T) {
	// FastFD and TANE are independent algorithms for the same problem;
	// they must produce identical minimal FD sets.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		r := gen.Categorical(25, []int{2, 3, 2, 3}, rng.Int63())
		got := asSet(Discover(r))
		want := asSet(tane.Discover(r, tane.Options{}))
		if len(got) != len(want) {
			t.Fatalf("trial %d: FastFD %d FDs, TANE %d\n fastfd: %v\n tane: %v",
				trial, len(got), len(want), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: FastFD missing %v", trial, k)
			}
		}
	}
}

func TestAgreesWithTANEOnFixtures(t *testing.T) {
	for _, r := range []*relation.Relation{gen.Table1(), gen.Table5(), gen.Table6(), gen.Table7()} {
		got := asSet(Discover(r))
		want := asSet(tane.Discover(r, tane.Options{}))
		if len(got) != len(want) {
			t.Fatalf("%s: FastFD %v != TANE %v", r.Name(), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: FastFD missing %v", r.Name(), k)
			}
		}
	}
}

func TestDiscoveredFDsHold(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 60, Seed: 5, VarietyRate: 0.2})
	for _, f := range Discover(r) {
		if !f.Holds(r) {
			t.Errorf("discovered FD %v does not hold", f)
		}
	}
}

func TestDiscoveredFDsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		r := gen.Categorical(20, []int{2, 2, 3}, rng.Int63())
		for _, f := range Discover(r) {
			f := f
			f.LHS.ImmediateSubsets(func(sub attrset.Set) {
				smaller := fd.FD{LHS: sub, RHS: f.RHS, Schema: f.Schema}
				if smaller.Holds(r) {
					t.Errorf("trial %d: FD %v not minimal", trial, f)
				}
			})
		}
	}
}

func TestNoAgreementCase(t *testing.T) {
	// All tuples pairwise disagree everywhere: every {B} → a holds.
	s := relation.Strings("a", "b")
	r := relation.MustFromRows("d", s, [][]relation.Value{
		{relation.String("1"), relation.String("x")},
		{relation.String("2"), relation.String("y")},
		{relation.String("3"), relation.String("z")},
	})
	got := asSet(Discover(r))
	if !got[[2]attrset.Set{attrset.Of(0), attrset.Of(1)}] || !got[[2]attrset.Set{attrset.Of(1), attrset.Of(0)}] {
		t.Errorf("pairwise-distinct relation: %v", got)
	}
}

func TestConstantColumn(t *testing.T) {
	s := relation.Strings("a", "c")
	r := relation.MustFromRows("c", s, [][]relation.Value{
		{relation.String("x"), relation.String("k")},
		{relation.String("y"), relation.String("k")},
	})
	got := asSet(Discover(r))
	if !got[[2]attrset.Set{attrset.Empty, attrset.Of(1)}] {
		t.Errorf("∅ → c missing: %v", got)
	}
}

func TestEmptyAndSingleRow(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	if fds := Discover(r); len(fds) != 0 {
		t.Errorf("empty relation: %v", fds)
	}
	_ = r.Append([]relation.Value{relation.String("x"), relation.String("y")})
	fds := Discover(r)
	// Single row: every column is constant; ∅ → a and ∅ → b.
	got := asSet(fds)
	if !got[[2]attrset.Set{attrset.Empty, attrset.Of(0)}] || !got[[2]attrset.Set{attrset.Empty, attrset.Of(1)}] {
		t.Errorf("single row: %v", got)
	}
}
