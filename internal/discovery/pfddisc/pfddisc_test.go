package pfddisc

import (
	"math"
	"testing"

	"deptree/internal/gen"
	"deptree/internal/relation"
)

func TestDiscoverOnTable5(t *testing.T) {
	// P(address→region) = 3/4 on r5: discovered at p=0.75, not at p=0.8.
	r := gen.Table5()
	addr := r.Schema().MustIndex("address")
	region := r.Schema().MustIndex("region")
	got := Discover(r, Options{MinProb: 0.75})
	found := false
	for _, p := range got {
		if p.LHS.Has(addr) && p.RHS.Has(region) {
			found = true
		}
	}
	if !found {
		t.Errorf("address →_0.75 region not discovered: %v", got)
	}
	got = Discover(r, Options{MinProb: 0.8})
	for _, p := range got {
		if p.LHS.Has(addr) && p.RHS.Has(region) {
			t.Error("address → region must not pass p=0.8")
		}
	}
}

func TestDiscoveredPFDsMeetThreshold(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 200, Seed: 3, ErrorRate: 0.1})
	for _, p := range Discover(r, Options{MinProb: 0.9}) {
		if got := p.Probability(r); got < 0.9 {
			t.Errorf("PFD %v has P=%v < 0.9", p, got)
		}
	}
}

func TestMaxLHSLattice(t *testing.T) {
	r := gen.Hotels(gen.HotelConfig{Rows: 100, Seed: 4})
	for _, p := range Discover(r, Options{MinProb: 0.99, MaxLHS: 2}) {
		if p.LHS.Len() > 2 {
			t.Errorf("PFD %v exceeds MaxLHS", p)
		}
	}
}

func TestMergeSources(t *testing.T) {
	// Weighted average of per-source probabilities.
	got := MergeSources([]SourceProbability{
		{Rows: 100, Prob: 1.0},
		{Rows: 100, Prob: 0.5},
	})
	if got != 0.75 {
		t.Errorf("merge = %v, want 0.75", got)
	}
	if MergeSources(nil) != 1 {
		t.Error("empty merge must be vacuous 1")
	}
	got = MergeSources([]SourceProbability{
		{Rows: 300, Prob: 0.9},
		{Rows: 100, Prob: 0.5},
	})
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("weighted merge = %v, want 0.8", got)
	}
}

func TestDiscoverMultiSource(t *testing.T) {
	r := gen.Table6()
	src := r.Schema().MustIndex("source")
	got := DiscoverMultiSource(r, src, Options{MinProb: 0.9})
	// price → tax holds exactly within each source (same values repeat).
	price := r.Schema().MustIndex("price")
	tax := r.Schema().MustIndex("tax")
	found := false
	for _, p := range got {
		if p.LHS.Has(price) && p.RHS.Has(tax) {
			found = true
		}
		if p.LHS.Has(src) || p.RHS.Has(src) {
			t.Errorf("source column leaked into %v", p)
		}
	}
	if !found {
		t.Errorf("price → tax not discovered across sources: %v", got)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := relation.New("e", relation.Strings("a", "b"))
	if got := Discover(r, Options{}); got != nil {
		t.Errorf("empty relation: %v", got)
	}
	if got := DiscoverMultiSource(r, 0, Options{}); got != nil {
		t.Errorf("empty multi-source: %v", got)
	}
}
