// Package pfddisc implements the counting-based PFD discovery of Wang et
// al. [104] (paper §2.2.3): for candidate column pairs, compute the
// per-value majority probability and keep PFDs whose average meets the
// threshold. Two variants are provided, mirroring the paper's two
// algorithms: single-source discovery over one relation, and multi-source
// discovery that merges per-source PFDs weighted by source size — the
// pay-as-you-go integration setting.
package pfddisc

import (
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/pfd"
	"deptree/internal/relation"
)

// Options configures PFD discovery.
type Options struct {
	// MinProb is the threshold p for keeping a PFD (default 0.8).
	MinProb float64
	// MaxLHS bounds determinant size (default 1; the original generates
	// per-column-pair PFDs, TANE-style lattice expansion is used above 1).
	MaxLHS int
}

func (o Options) withDefaults() Options {
	if o.MinProb == 0 {
		o.MinProb = 0.8
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 1
	}
	return o
}

// Discover returns the PFDs X →_p Y with P(X → Y, r) ≥ p, X limited to
// MaxLHS attributes, Y a single attribute, sorted deterministically.
func Discover(r *relation.Relation, opts Options) []pfd.PFD {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return nil
	}
	var out []pfd.PFD
	level := attrset.Singletons(n)
	for size := 1; size <= opts.MaxLHS && len(level) > 0; size++ {
		for _, x := range level {
			for a := 0; a < n; a++ {
				if x.Has(a) {
					continue
				}
				cand := pfd.PFD{LHS: x, RHS: attrset.Single(a), MinProb: opts.MinProb, Schema: r.Schema()}
				if cand.Probability(r) >= opts.MinProb {
					out = append(out, cand)
				}
			}
		}
		level = attrset.NextLevel(level)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}

// SourceProbability is the per-source probability of one FD, used by the
// multi-source merge.
type SourceProbability struct {
	// Rows is the source size (the merge weight).
	Rows int
	// Prob is P(X → Y) within the source.
	Prob float64
}

// MergeSources combines per-source probabilities into a single PFD
// probability, weighting each source by its tuple count — the paper's
// second algorithm, which merges PFDs obtained from each source instead of
// merging the data.
func MergeSources(sources []SourceProbability) float64 {
	total := 0
	sum := 0.0
	for _, s := range sources {
		total += s.Rows
		sum += float64(s.Rows) * s.Prob
	}
	if total == 0 {
		return 1
	}
	return sum / float64(total)
}

// DiscoverMultiSource splits the relation by a source column, discovers the
// probability of X → A per source, and keeps PFDs whose merged probability
// meets the threshold. X ranges over single attributes excluding the source
// column.
func DiscoverMultiSource(r *relation.Relation, sourceCol int, opts Options) []pfd.PFD {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return nil
	}
	// Split by source value.
	codes, card := r.Codes(sourceCol)
	subs := make([]*relation.Relation, card)
	for s := 0; s < card; s++ {
		s := s
		subs[s] = r.Select(func(row int) bool { return codes[row] == s })
	}
	var out []pfd.PFD
	for x := 0; x < n; x++ {
		if x == sourceCol {
			continue
		}
		for a := 0; a < n; a++ {
			if a == x || a == sourceCol {
				continue
			}
			cand := pfd.PFD{LHS: attrset.Single(x), RHS: attrset.Single(a), MinProb: opts.MinProb, Schema: r.Schema()}
			var probs []SourceProbability
			for _, sub := range subs {
				if sub.Rows() == 0 {
					continue
				}
				probs = append(probs, SourceProbability{Rows: sub.Rows(), Prob: cand.Probability(sub)})
			}
			if MergeSources(probs) >= opts.MinProb {
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}
