// Package pfddisc implements the counting-based PFD discovery of Wang et
// al. [104] (paper §2.2.3): for candidate column pairs, compute the
// per-value majority probability and keep PFDs whose average meets the
// threshold. Two variants are provided, mirroring the paper's two
// algorithms: single-source discovery over one relation, and multi-source
// discovery that merges per-source PFDs weighted by source size — the
// pay-as-you-go integration setting.
//
// The probability semantics follow De & Kambhampati ("Defining and Mining
// Functional Dependencies in Probabilistic Databases"): P(X → A) is the
// expected fraction of tuples whose A value agrees with the majority of
// their X-class — the "possible worlds" degree of satisfaction collapsed
// to per-class majority counting, which is what pfd.PFD.Probability
// computes.
package pfddisc

import (
	"context"
	"sort"

	"deptree/internal/attrset"
	"deptree/internal/deps/pfd"
	"deptree/internal/engine"
	"deptree/internal/obs"
	"deptree/internal/relation"
)

// Options configures PFD discovery.
type Options struct {
	// MinProb is the threshold p for keeping a PFD (default 0.8).
	MinProb float64
	// MaxLHS bounds determinant size (default 1; the original generates
	// per-column-pair PFDs, TANE-style lattice expansion is used above 1).
	MaxLHS int
	// Workers fans candidate probability checks across goroutines; output
	// is identical for every worker count.
	Workers int
	// Budget bounds the run; exhaustion truncates to a deterministic
	// prefix of the level-wise candidate enumeration.
	Budget engine.Budget
	// Obs optionally receives metrics and spans; nil is a no-op.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinProb == 0 {
		o.MinProb = 0.8
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 1
	}
	return o
}

// Result is a PFD discovery outcome; a Partial run covers a deterministic
// prefix of the level-wise candidate enumeration.
type Result struct {
	PFDs []pfd.PFD
	// Partial marks a run truncated by budget, cancellation or panic.
	Partial bool
	// Reason is the stable stop token; empty when complete.
	Reason string
	// Completed is the number of candidates checked.
	Completed int
}

// batch is the fixed MapBudget stripe width over candidates. Fixed so the
// truncation point is worker-independent.
const batch = 8

// Discover returns the PFDs X →_p Y with P(X → Y, r) ≥ p, X limited to
// MaxLHS attributes, Y a single attribute, sorted deterministically.
func Discover(r *relation.Relation, opts Options) []pfd.PFD {
	return DiscoverContext(context.Background(), r, opts).PFDs
}

// DiscoverContext is Discover under a context and Options.Budget. The
// level-wise enumeration has no cross-candidate pruning (levels expand
// unconditionally), so the whole candidate list is enumerated up front
// and checked in one deterministic fan-out.
func DiscoverContext(ctx context.Context, r *relation.Relation, opts Options) Result {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return Result{}
	}
	type cand struct {
		x attrset.Set
		a int
	}
	var cands []cand
	level := attrset.Singletons(n)
	for size := 1; size <= opts.MaxLHS && len(level) > 0; size++ {
		for _, x := range level {
			for a := 0; a < n; a++ {
				if !x.Has(a) {
					cands = append(cands, cand{x, a})
				}
			}
		}
		level = attrset.NextLevel(level)
	}
	reg := opts.Obs
	pool := engine.NewObserved(ctx, max(opts.Workers, 1), 0, opts.Budget, reg)
	defer pool.Close()

	run := reg.StartSpan(obs.KindRun, "pfddisc")
	run.SetAttr("rows", r.Rows())
	run.SetAttr("candidates", len(cands))
	defer run.End()

	checkSpan := run.Child(obs.KindPhase, "probability-check")
	hits, done, err := engine.MapBudget(pool, len(cands), batch, func(i int) bool {
		c := pfd.PFD{LHS: cands[i].x, RHS: attrset.Single(cands[i].a), MinProb: opts.MinProb, Schema: r.Schema()}
		return c.Probability(r) >= opts.MinProb
	})
	checkSpan.SetAttr("completed", done)
	checkSpan.End()
	reg.Counter("pfddisc.candidates.checked").Add(int64(done))

	var out []pfd.PFD
	for i := 0; i < done; i++ {
		if hits[i] {
			out = append(out, pfd.PFD{LHS: cands[i].x, RHS: attrset.Single(cands[i].a), MinProb: opts.MinProb, Schema: r.Schema()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	reg.Counter("pfddisc.pfds.valid").Add(int64(len(out)))
	res := Result{PFDs: out, Completed: done}
	if err != nil {
		res.Partial = true
		res.Reason = engine.Reason(err)
		run.SetAttr("stop", res.Reason)
	}
	return res
}

// SourceProbability is the per-source probability of one FD, used by the
// multi-source merge.
type SourceProbability struct {
	// Rows is the source size (the merge weight).
	Rows int
	// Prob is P(X → Y) within the source.
	Prob float64
}

// MergeSources combines per-source probabilities into a single PFD
// probability, weighting each source by its tuple count — the paper's
// second algorithm, which merges PFDs obtained from each source instead of
// merging the data.
func MergeSources(sources []SourceProbability) float64 {
	total := 0
	sum := 0.0
	for _, s := range sources {
		total += s.Rows
		sum += float64(s.Rows) * s.Prob
	}
	if total == 0 {
		return 1
	}
	return sum / float64(total)
}

// DiscoverMultiSource splits the relation by a source column, discovers the
// probability of X → A per source, and keeps PFDs whose merged probability
// meets the threshold. X ranges over single attributes excluding the source
// column.
func DiscoverMultiSource(r *relation.Relation, sourceCol int, opts Options) []pfd.PFD {
	opts = opts.withDefaults()
	n := r.Cols()
	if n == 0 || r.Rows() == 0 {
		return nil
	}
	// Split by source value.
	codes, card := r.Codes(sourceCol)
	subs := make([]*relation.Relation, card)
	for s := 0; s < card; s++ {
		s := s
		subs[s] = r.Select(func(row int) bool { return codes[row] == s })
	}
	var out []pfd.PFD
	for x := 0; x < n; x++ {
		if x == sourceCol {
			continue
		}
		for a := 0; a < n; a++ {
			if a == x || a == sourceCol {
				continue
			}
			cand := pfd.PFD{LHS: attrset.Single(x), RHS: attrset.Single(a), MinProb: opts.MinProb, Schema: r.Schema()}
			var probs []SourceProbability
			for _, sub := range subs {
				if sub.Rows() == 0 {
					continue
				}
				probs = append(probs, SourceProbability{Rows: sub.Rows(), Prob: cand.Probability(sub)})
			}
			if MergeSources(probs) >= opts.MinProb {
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}
