// Package jobs is the durable async job subsystem behind the serving
// layer: discovery (any registry algorithm), validation and repair runs
// submitted as jobs, executed on a bounded work queue, and persisted
// behind one Store interface so a process crash never silently loses
// work.
//
// The design is event-sourced: every state transition is one appended
// Record, and a Manager is just the fold of its store's records. The
// in-memory store keeps the records in a slice; the WAL store appends
// them as JSONL with batched fsync (wal.go). On restart the manager
// replays the store, re-enqueues every job that was queued or running
// at crash time in its original submission order, and serves completed
// results without recompute.
//
// Failure taxonomy (DESIGN.md "Job lifecycle, WAL format & crash
// recovery"):
//
//   - transient: panic-isolated task errors (engine.IsPanicReason) and
//     store write faults — retried with jittered exponential backoff up
//     to MaxAttempts, then terminal failed;
//   - backpressure: admission saturation — the job waits out the load
//     spike in the queue with growing (capped) backoff and burns no
//     retry budget, because a queue that fails jobs under the very load
//     it exists to absorb is no queue at all;
//   - terminal: malformed input (rejected at submit), run errors, and
//     budget exhaustion (deadline/max-tasks → the partial state, which
//     carries the same deterministic prefix the CLI prints);
//   - neither: a run cancelled by drain is re-queued, not failed — the
//     next process replays it from the WAL and re-runs it to the same
//     byte-identical result.
//
// Content-addressed dataset fingerprints (SHA-256 of the canonical CSV
// bytes) key a result cache: a complete (non-partial) result is cached
// under (fingerprint, kind, algo, params), so re-submitting discovery
// over an unchanged relation is a cache hit that never touches the
// queue.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"deptree/internal/relation"
)

// State is one job's lifecycle position: queued → running → {done,
// partial, failed, cancelled}. A drain or crash moves running back to
// queued (via WAL replay) instead of to a terminal state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"      // complete result
	StatePartial   State = "partial"   // budget-truncated deterministic prefix
	StateFailed    State = "failed"    // terminal error (retries exhausted or run error)
	StateCancelled State = "cancelled" // client-requested cancel
)

// Terminal reports whether the state is final; Wait unblocks on it and
// retries never leave it.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StatePartial, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is one job's full submission: what to run and under which
// resolved budget. The serving layer resolves (clamps) the budget knobs
// at submit time and bakes them in, so a WAL replay after a crash
// re-runs the job under exactly the envelope the original admission
// granted.
type Spec struct {
	// Kind selects the runner: "discover", "validate" or "repair".
	Kind string `json:"kind"`
	// Algo is the registry discoverer name (discover only).
	Algo string `json:"algo,omitempty"`
	// CSV is the inline relation, exactly as submitted.
	CSV string `json:"csv"`
	// FDs is the ";"-separated FD list (validate only).
	FDs string `json:"fds,omitempty"`
	// FD is the single FD spec (repair only).
	FD string `json:"fd,omitempty"`
	// MaxErr is the g3 budget for approximate FDs (tane only).
	MaxErr float64 `json:"maxerr,omitempty"`
	// SampleRows/SampleSeed select sample-then-verify discovery (discover
	// only, sampling-capable algorithms). Zero means full-relation mode,
	// which is also how pre-sampling WAL records replay.
	SampleRows int   `json:"sample_rows,omitempty"`
	SampleSeed int64 `json:"sample_seed,omitempty"`
	// Workers/TimeoutMs/MaxTasks are the resolved engine budget.
	Workers   int   `json:"workers,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	MaxTasks  int64 `json:"max_tasks,omitempty"`
}

// Fingerprint returns the content-addressed identity of the spec's
// dataset: the SHA-256 of the canonical CSV encoding (parse then
// re-encode), so two submissions of the same relation in different
// surface formatting share one fingerprint. Unparsable CSV is an error:
// malformed input is a terminal submit-time rejection, never a queued
// job.
func (s Spec) Fingerprint() (string, error) {
	rel, err := relation.ReadCSVAuto("job", []byte(s.CSV), relation.Limits{})
	if err != nil {
		return "", fmt.Errorf("jobs: fingerprint: %w", err)
	}
	var buf bytes.Buffer
	if err := relation.WriteCSV(rel, &buf); err != nil {
		return "", fmt.Errorf("jobs: fingerprint: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// CacheKey is the result-cache key for the spec under the given dataset
// fingerprint: everything that determines a *complete* run's output.
// Budget knobs (workers, timeout, max-tasks) are deliberately excluded —
// the engine's determinism contract makes complete output identical for
// any worker count, and only complete results are ever cached, so the
// budget cannot have bound. Sample knobs ARE included: a sampled run's
// complete output depends on which rows the (rows, seed) pair selected.
func (s Spec) CacheKey(fingerprint string) string {
	return strings.Join([]string{
		fingerprint, s.Kind, s.Algo,
		fmt.Sprintf("%g", s.MaxErr), s.FDs, s.FD,
		fmt.Sprintf("%d", s.SampleRows), fmt.Sprintf("%d", s.SampleSeed),
	}, "\x1f")
}

// Result is one finished run's payload, covering all three kinds: Lines
// for discover, Report for validate, CSV+Changes for repair. Partial
// and Reason mirror the engine's Result contract — a partial result is
// the deterministic budget-truncated prefix.
type Result struct {
	Lines   []string `json:"lines,omitempty"`
	Report  string   `json:"report,omitempty"`
	CSV     string   `json:"csv,omitempty"`
	Changes []string `json:"changes,omitempty"`
	Partial bool     `json:"partial,omitempty"`
	Reason  string   `json:"reason,omitempty"`
}

// Text renders the result as the CLI renders the same run: one
// dependency per line (discover), the validation report, or the
// repaired CSV, with the PARTIAL marker line when truncated.
func (r Result) Text() string {
	var b strings.Builder
	for _, line := range r.Lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString(r.Report)
	b.WriteString(r.CSV)
	for _, ch := range r.Changes {
		b.WriteString(ch)
		b.WriteByte('\n')
	}
	if r.Partial {
		fmt.Fprintf(&b, "PARTIAL: %s\n", r.Reason)
	}
	return b.String()
}

// Transient marks an error as retryable: the manager backs off and
// re-attempts instead of failing the job terminally, up to MaxAttempts.
// Store write faults wrap themselves in it.
type Transient struct{ Err error }

func (t Transient) Error() string { return "transient: " + t.Err.Error() }
func (t Transient) Unwrap() error { return t.Err }

// Backpressure marks an error as pure load-shedding (admission
// saturation): the manager re-queues the job and backs off — with a
// delay that grows while the saturation persists — without counting the
// attempt against MaxAttempts. A durable job must absorb a load spike,
// not fail terminally because of one.
type Backpressure struct{ Err error }

func (b Backpressure) Error() string { return "backpressure: " + b.Err.Error() }
func (b Backpressure) Unwrap() error { return b.Err }
