package jobs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"deptree/internal/fsx"
	"deptree/internal/wal"
)

// WALOptions tunes the on-disk store.
type WALOptions struct {
	// SyncEvery fsyncs after this many appends (default 8). 1 makes
	// every Append a synchronous commit.
	SyncEvery int
	// SyncInterval bounds how long an unsynced append may sit in the OS
	// page cache before a background fsync (default 100ms; < 0
	// disables the background flusher — tests that inspect the file
	// synchronously use SyncEvery=1 instead).
	SyncInterval time.Duration
	// FS is the filesystem the log lives on (nil = the real OS). The
	// torture suite passes a fault-injecting fsx.FS.
	FS fsx.FS
	// Quarantine opts replay into recovering from mid-log corruption by
	// sidecarring the damaged suffix instead of refusing to start; see
	// wal.Options.Quarantine.
	Quarantine bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// WALStore is the durable Store: a typed codec over the shared
// checksummed record log in internal/wal, with group-committed fsync.
// Every Append issues the OS write before returning — a SIGKILLed
// process loses nothing it acknowledged — and fsync is batched (every
// SyncEvery records, and at least every SyncInterval) so a power cut
// loses at most one batch, never corrupts the prefix. Replay
// distinguishes a clean torn tail (truncated and counted) from mid-log
// corruption, which surfaces as a typed *wal.ErrCorruptRecord instead
// of silently truncating acknowledged records — unless Quarantine is
// set, which sidecars the damage and keeps the verified prefix.
// Pre-framing JSONL logs are migrated in place on first replay.
type WALStore struct {
	log  *wal.Log
	opts WALOptions

	mu       sync.Mutex
	dirty    int // appends since last fsync
	closed   bool
	replayed bool
	fault    FaultHook

	appends int64
	syncs   int64

	flushStop chan struct{}
	flushDone chan struct{}
}

// ErrNotReplayed is returned by Append before Replay has run: until the
// log's contents are verified (and any torn tail truncated), an append
// could land after damage and be unreachable. It is the shared
// wal.ErrNotReplayed sentinel.
var ErrNotReplayed = wal.ErrNotReplayed

// OpenWAL opens (creating if absent) the framed log at path. Creation
// fsyncs the parent directory, so a crash immediately after cannot lose
// the log file.
func OpenWAL(path string, opts WALOptions) (*WALStore, error) {
	opts = opts.withDefaults()
	l, err := wal.Open(path, wal.Options{FS: opts.FS, Quarantine: opts.Quarantine})
	if err != nil {
		return nil, err
	}
	w := &WALStore{log: l, opts: opts}
	if opts.SyncInterval > 0 {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// SetFaultHook installs a chaos fault hook (nil uninstalls).
func (w *WALStore) SetFaultHook(h FaultHook) {
	w.mu.Lock()
	w.fault = h
	w.mu.Unlock()
}

// flushLoop is the group-commit ticker: an unsynced batch never waits
// longer than SyncInterval for its fsync.
func (w *WALStore) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

func (w *WALStore) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: wal append: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if !w.replayed {
		return ErrNotReplayed
	}
	if w.fault != nil {
		if ferr := w.fault("append", rec); ferr != nil {
			return Transient{ferr}
		}
	}
	if err := w.log.Append(payload, false); err != nil {
		return Transient{fmt.Errorf("jobs: wal append: %w", err)}
	}
	w.appends++
	w.dirty++
	if w.dirty >= w.opts.SyncEvery {
		return w.syncLocked()
	}
	return nil
}

func (w *WALStore) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if w.dirty == 0 {
		return nil
	}
	if w.fault != nil {
		if ferr := w.fault("sync", Record{}); ferr != nil {
			return Transient{ferr}
		}
	}
	return w.syncLocked()
}

func (w *WALStore) syncLocked() error {
	if err := w.log.Sync(); err != nil {
		return Transient{fmt.Errorf("jobs: wal sync: %w", err)}
	}
	w.dirty = 0
	w.syncs++
	return nil
}

// Replay verifies and decodes the log. A clean torn tail is truncated
// and counted (TruncatedTail); mid-log corruption returns the typed
// *wal.ErrCorruptRecord with the damaged offset (or is quarantined when
// the store was opened with Quarantine). A frame that passes its
// checksum but fails to decode is a writer bug, reported as an error
// with its offset — the checksum guarantees those are the bytes that
// were acknowledged.
func (w *WALStore) Replay() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrStoreClosed
	}
	var recs []Record
	err := w.log.Replay(func(payload []byte) error {
		var rec Record
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			return fmt.Errorf("jobs: wal replay: undecodable record: %w", derr)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	w.replayed = true
	return recs, nil
}

// Compact atomically replaces the log with the snapshot (temp file,
// fsync, rename, directory fsync — all inside wal.ReplaceWith).
func (w *WALStore) Compact(snapshot []Record) error {
	payloads := make([][]byte, 0, len(snapshot))
	for _, rec := range snapshot {
		p, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		payloads = append(payloads, p)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if err := w.log.ReplaceWith(payloads); err != nil {
		return err
	}
	w.dirty = 0
	return nil
}

// TruncatedTail reports how many torn tails Replay truncated.
func (w *WALStore) TruncatedTail() int { return w.log.TornTail() }

// Quarantined reports how many corrupt suffixes replay sidecared
// (always 0 unless the store was opened with Quarantine).
func (w *WALStore) Quarantined() int { return w.log.Quarantined() }

// Migrated reports whether Replay converted a pre-framing JSONL log.
func (w *WALStore) Migrated() bool { return w.log.Migrated() }

// Stats reports append/sync totals for observability.
func (w *WALStore) Stats() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

func (w *WALStore) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	if w.dirty > 0 {
		w.syncLocked()
	}
	w.closed = true
	err := w.log.Close()
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	return err
}
