package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WALOptions tunes the on-disk store.
type WALOptions struct {
	// SyncEvery fsyncs after this many appends (default 8). 1 makes
	// every Append a synchronous commit.
	SyncEvery int
	// SyncInterval bounds how long an unsynced append may sit in the OS
	// page cache before a background fsync (default 100ms; < 0
	// disables the background flusher — tests that inspect the file
	// synchronously use SyncEvery=1 instead).
	SyncInterval time.Duration
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// WALStore is the durable Store: an append-only JSONL write-ahead log
// with group-committed fsync. Every Append issues the OS write before
// returning — a SIGKILLed process loses nothing it acknowledged — and
// fsync is batched (every SyncEvery records, and at least every
// SyncInterval) so a power cut loses at most one batch, never corrupts
// the prefix. Replay tolerates a torn tail: a final record cut mid-line
// by a crash is dropped and the file truncated back to the last whole
// record before new appends land.
type WALStore struct {
	path string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	dirty    int // appends since last fsync
	closed   bool
	replayed bool
	fault    FaultHook

	// truncatedTail counts torn tail records dropped at Replay; the
	// manager exports it as jobs.wal.truncated_tail.
	truncatedTail int
	appends       int64
	syncs         int64

	flushStop chan struct{}
	flushDone chan struct{}
}

// ErrNotReplayed is returned by Append before Replay has run: until the
// log's torn tail (if any) is truncated, an append could concatenate
// onto a partial record and destroy both.
var ErrNotReplayed = errors.New("jobs: wal append before replay")

// OpenWAL opens (creating if absent) the JSONL log at path. The file is
// opened O_APPEND so every write lands at the current end regardless of
// any seek position — a caller can never overwrite the log prefix.
func OpenWAL(path string, opts WALOptions) (*WALStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WALStore{path: path, opts: opts, f: f}
	if opts.SyncInterval > 0 {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// SetFaultHook installs a chaos fault hook (nil uninstalls).
func (w *WALStore) SetFaultHook(h FaultHook) {
	w.mu.Lock()
	w.fault = h
	w.mu.Unlock()
}

// flushLoop is the group-commit ticker: an unsynced batch never waits
// longer than SyncInterval for its fsync.
func (w *WALStore) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

func (w *WALStore) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: wal append: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if !w.replayed {
		return ErrNotReplayed
	}
	if w.fault != nil {
		if ferr := w.fault("append", rec); ferr != nil {
			return Transient{ferr}
		}
	}
	if _, err := w.f.Write(line); err != nil {
		return Transient{fmt.Errorf("jobs: wal append: %w", err)}
	}
	w.appends++
	w.dirty++
	if w.dirty >= w.opts.SyncEvery {
		return w.syncLocked()
	}
	return nil
}

func (w *WALStore) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if w.dirty == 0 {
		return nil
	}
	if w.fault != nil {
		if ferr := w.fault("sync", Record{}); ferr != nil {
			return Transient{ferr}
		}
	}
	return w.syncLocked()
}

func (w *WALStore) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return Transient{fmt.Errorf("jobs: wal sync: %w", err)}
	}
	w.dirty = 0
	w.syncs++
	return nil
}

// Replay decodes the log, dropping a torn tail: the valid prefix is
// every whole line that parses as a Record; anything after the first
// torn or unparsable line is discarded and the file truncated to the
// prefix so subsequent appends never concatenate onto a partial record.
func (w *WALStore) Replay() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrStoreClosed
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	valid := 0 // byte length of the valid prefix
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn tail: the crash landed mid-write.
			w.truncatedTail++
			break
		}
		line := data[off : off+nl]
		var rec Record
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &rec); err != nil {
				// A corrupt record ends the trustworthy prefix.
				w.truncatedTail++
				break
			}
			recs = append(recs, rec)
		}
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		if err := w.f.Truncate(int64(valid)); err != nil {
			return nil, fmt.Errorf("jobs: wal truncate torn tail: %w", err)
		}
	}
	w.replayed = true
	return recs, nil
}

// Compact atomically replaces the log with the snapshot: records are
// written to a temp file, fsynced, and renamed over the log, then the
// directory is fsynced so the rename itself survives a crash.
func (w *WALStore) Compact(snapshot []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range snapshot {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(w.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = nf
	w.dirty = 0
	old.Close()
	return nil
}

// TruncatedTail reports how many torn/corrupt tail records Replay
// dropped.
func (w *WALStore) TruncatedTail() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncatedTail
}

// Stats reports append/sync totals for observability.
func (w *WALStore) Stats() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

func (w *WALStore) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	if w.dirty > 0 {
		w.syncLocked()
	}
	w.closed = true
	err := w.f.Close()
	w.mu.Unlock()
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	return err
}
