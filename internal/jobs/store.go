package jobs

import (
	"errors"
	"sync"
)

// RecordType enumerates the event-sourced transitions a store holds.
type RecordType string

const (
	// RecSubmit creates a job (spec, fingerprint, idempotency key).
	RecSubmit RecordType = "submit"
	// RecStart marks one execution attempt beginning.
	RecStart RecordType = "start"
	// RecRetry marks an attempt that failed transiently and will rerun.
	RecRetry RecordType = "retry"
	// RecResult sets a terminal state, with the result payload for
	// done/partial.
	RecResult RecordType = "result"
	// RecCancel records a client cancellation request.
	RecCancel RecordType = "cancel"
)

// Record is one appended state transition. The WAL serializes records
// as JSONL, one per line; replay folds them back into jobs in Seq
// order. Wall-clock times are deliberately absent — replay must be
// deterministic, and the API's informational timestamps live only in
// memory.
type Record struct {
	Type RecordType `json:"type"`
	// ID names the job every record but submit refers back to.
	ID string `json:"id"`
	// Seq is the submission sequence number (submit records only); it
	// fixes the re-enqueue order across restarts.
	Seq int64 `json:"seq,omitempty"`
	// Spec, Fingerprint, IdemKey ride on submit records.
	Spec        *Spec  `json:"spec,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
	IdemKey     string `json:"idem,omitempty"`
	// CacheHit marks a submit answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Attempt is the 1-based attempt number (start/retry records).
	Attempt int `json:"attempt,omitempty"`
	// State is the terminal state a result record sets.
	State State `json:"state,omitempty"`
	// Result is the payload for done/partial result records.
	Result *Result `json:"result,omitempty"`
	// Reason is the failure/retry reason token.
	Reason string `json:"reason,omitempty"`
}

// ErrStoreClosed is returned by Append/Sync after Close.
var ErrStoreClosed = errors.New("jobs: store closed")

// Store persists job state transitions. Implementations must be safe
// for concurrent use; Append durability is backend-defined (the memory
// store survives nothing, the WAL store survives process death for
// every returned Append and OS death for every Sync).
type Store interface {
	// Append durably adds one record.
	Append(rec Record) error
	// Sync flushes any batched durability work (fsync for the WAL).
	Sync() error
	// Replay returns every live record in append order. Called once,
	// before the first Append.
	Replay() ([]Record, error)
	// Compact atomically replaces the record history with the given
	// snapshot (the manager's minimal re-derivation of current state).
	Compact(snapshot []Record) error
	// Close releases the store; the WAL syncs first.
	Close() error
}

// FaultHook is the chaos seam on a store: installed via a faultable
// store (SetFaultHook on MemStore/WALStore), it observes every Append
// and Sync and may return an error to inject a write fault. Production
// code never installs one.
type FaultHook func(op string, rec Record) error

// MemStore is the in-memory Store: a record slice behind a mutex. It
// gives the job service its full semantics minus durability — a process
// restart starts empty.
type MemStore struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
	fault  FaultHook
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// SetFaultHook installs a chaos fault hook (nil uninstalls).
func (m *MemStore) SetFaultHook(h FaultHook) {
	m.mu.Lock()
	m.fault = h
	m.mu.Unlock()
}

func (m *MemStore) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if m.fault != nil {
		if err := m.fault("append", rec); err != nil {
			return err
		}
	}
	m.recs = append(m.recs, rec)
	return nil
}

func (m *MemStore) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if m.fault != nil {
		if err := m.fault("sync", Record{}); err != nil {
			return err
		}
	}
	return nil
}

func (m *MemStore) Replay() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.recs))
	copy(out, m.recs)
	return out, nil
}

func (m *MemStore) Compact(snapshot []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	m.recs = append([]Record(nil), snapshot...)
	return nil
}

func (m *MemStore) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}
